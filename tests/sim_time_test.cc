#include "sim/time.h"

#include <gtest/gtest.h>

#include "sim/data_rate.h"

namespace ecnsharp {
namespace {

TEST(TimeTest, FactoriesAgree) {
  EXPECT_EQ(Time::Microseconds(1), Time::Nanoseconds(1000));
  EXPECT_EQ(Time::Milliseconds(1), Time::Microseconds(1000));
  EXPECT_EQ(Time::Seconds(1), Time::Milliseconds(1000));
  EXPECT_EQ(Time::FromSeconds(1.5), Time::Milliseconds(1500));
  EXPECT_EQ(Time::FromMicroseconds(2.5), Time::Nanoseconds(2500));
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::Microseconds(10);
  const Time b = Time::Microseconds(4);
  EXPECT_EQ(a + b, Time::Microseconds(14));
  EXPECT_EQ(a - b, Time::Microseconds(6));
  EXPECT_EQ(a * 3, Time::Microseconds(30));
  EXPECT_EQ(3 * a, Time::Microseconds(30));
  EXPECT_EQ(a / 2, Time::Microseconds(5));
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ(a * 0.5, Time::Microseconds(5));
}

TEST(TimeTest, CompoundAssignment) {
  Time t = Time::Microseconds(1);
  t += Time::Microseconds(2);
  EXPECT_EQ(t, Time::Microseconds(3));
  t -= Time::Microseconds(5);
  EXPECT_EQ(t, Time::Microseconds(-2));
  EXPECT_TRUE(t.IsNegative());
}

TEST(TimeTest, Comparisons) {
  EXPECT_LT(Time::Microseconds(1), Time::Microseconds(2));
  EXPECT_GE(Time::Milliseconds(1), Time::Microseconds(1000));
  EXPECT_TRUE(Time::Zero().IsZero());
  EXPECT_TRUE(Time::Nanoseconds(1).IsPositive());
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(Time::Milliseconds(1500).ToSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::Microseconds(2).ToMicroseconds(), 2.0);
  EXPECT_DOUBLE_EQ(Time::Nanoseconds(500).ToMicroseconds(), 0.5);
}

TEST(TimeTest, ToStringPicksUnit) {
  EXPECT_EQ(Time::Nanoseconds(5).ToString(), "5ns");
  EXPECT_EQ(Time::Microseconds(137).ToString(), "137.000us");
  EXPECT_EQ(Time::Milliseconds(2).ToString(), "2.000ms");
  EXPECT_EQ(Time::Seconds(3).ToString(), "3.000s");
}

TEST(DataRateTest, TransmissionTime) {
  const DataRate r = DataRate::GigabitsPerSecond(10);
  // 1500 bytes at 10 Gbps = 1.2 us.
  EXPECT_EQ(r.TransmissionTime(1500), Time::Nanoseconds(1200));
  EXPECT_EQ(r.TransmissionTime(0), Time::Zero());
}

TEST(DataRateTest, BytesIn) {
  const DataRate r = DataRate::GigabitsPerSecond(10);
  EXPECT_EQ(r.BytesIn(Time::Microseconds(1)), 1250);
  EXPECT_EQ(r.BytesIn(Time::Seconds(1)), 1250000000);
}

TEST(DataRateTest, Scaling) {
  const DataRate r = DataRate::GigabitsPerSecond(10) * 0.5;
  EXPECT_EQ(r.bps(), 5000000000LL);
  EXPECT_DOUBLE_EQ(r.ToGbps(), 5.0);
}

}  // namespace
}  // namespace ecnsharp
