// CUBIC sender and mixed-congestion-control runs: flow completion and
// FlowRecord stamping for explicitly-CUBIC flows, loss recovery under a
// drop-tail bottleneck, the classic-ECN stance, and the cc_mix harness
// plumbing (per-controller FCT splits, determinism, default gating).
#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.h"
#include "harness/schemes.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"
#include "topo/dumbbell.h"
#include "transport/tcp_sender.h"

namespace ecnsharp {
namespace {

TEST(CubicSenderTest, ExplicitCubicFlowCompletesAndStampsRecord) {
  Simulator sim;
  DumbbellConfig config;
  Dumbbell topo(sim, config,
                MakeFifoDisc(Scheme::kEcnSharp, SchemeParams()));
  bool done = false;
  topo.sender_stack(0).StartFlow(
      topo.receiver_address(), 2'000'000,
      [&done](const FlowRecord& record) {
        done = true;
        EXPECT_EQ(record.cc, CcKind::kCubic);
        EXPECT_EQ(record.size_bytes, 2'000'000u);
        EXPECT_GT(record.Fct().ToMicroseconds(), 0.0);
      },
      0, CcKind::kCubic);
  sim.RunUntil(Time::Seconds(10));
  EXPECT_TRUE(done);
}

TEST(CubicSenderTest, DefaultStanceIsNonEctSoEcnSharpNeverMarksIt) {
  // cubic_ecn_mode defaults to kNone: CUBIC cross-traffic sends non-ECT
  // packets, so even an ECN#-marking bottleneck cannot signal it.
  Simulator sim;
  DumbbellConfig config;
  Dumbbell topo(sim, config,
                MakeFifoDisc(Scheme::kEcnSharp, SchemeParams()));
  int done = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    topo.sender_stack(i).StartFlow(
        topo.receiver_address(), 1'000'000,
        [&done](const FlowRecord&) { ++done; }, 0, CcKind::kCubic);
  }
  sim.RunUntil(Time::Seconds(10));
  EXPECT_EQ(done, 3);
  EXPECT_EQ(topo.bottleneck_port().queue_disc().stats().ce_marked, 0u);
}

TEST(CubicSenderTest, ClassicEcnStanceGetsMarkedAndStillCompletes) {
  Simulator sim;
  DumbbellConfig config;
  config.tcp.cubic_ecn_mode = EcnMode::kClassic;
  Dumbbell topo(sim, config,
                MakeFifoDisc(Scheme::kEcnSharp, SchemeParams()));
  int done = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    topo.sender_stack(i).StartFlow(
        topo.receiver_address(), 1'000'000,
        [&done](const FlowRecord& record) {
          ++done;
          EXPECT_EQ(record.cc, CcKind::kCubic);
        },
        0, CcKind::kCubic);
  }
  sim.RunUntil(Time::Seconds(10));
  EXPECT_EQ(done, 3);
  EXPECT_GT(topo.bottleneck_port().queue_disc().stats().ce_marked, 0u);
}

TEST(CubicSenderTest, RecoversFromDropsUnderSmallDropTailBuffer) {
  // Loss is CUBIC's native signal: a ~20-packet drop-tail bottleneck forces
  // overflow drops, and every flow must still complete via fast recovery
  // (or, worst case, RTO) without wedging.
  Simulator sim;
  DumbbellConfig config;
  Dumbbell topo(sim, config,
                std::make_unique<FifoQueueDisc>(30'000, nullptr));
  int done = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    topo.sender_stack(i).StartFlow(
        topo.receiver_address(), 1'000'000,
        [&done](const FlowRecord&) { ++done; }, 0, CcKind::kCubic);
  }
  sim.RunUntil(Time::Seconds(30));
  EXPECT_EQ(done, 4);
  EXPECT_GT(topo.bottleneck_port().queue_disc().stats().dropped_overflow, 0u);
}

// ------------------------------ cc_mix harness ------------------------------

TEST(CcMixTest, DefaultRunLeavesPerCcSplitsEmpty) {
  DumbbellExperimentConfig config;
  config.flows = 40;
  config.seed = 11;
  const ExperimentResult result = RunDumbbell(config);
  EXPECT_EQ(result.flows_completed, 40u);
  // cc_mix == 0: the per-controller breakdown stays zeroed (and is omitted
  // from JSON export), keeping default records byte-identical.
  EXPECT_EQ(result.cubic_fct.count, 0u);
  EXPECT_EQ(result.newreno_fct.count, 0u);
  EXPECT_EQ(result.cubic_bytes, 0u);
  EXPECT_EQ(result.newreno_bytes, 0u);
}

TEST(CcMixTest, FullCubicMixDrivesEveryFlowWithCubic) {
  DumbbellExperimentConfig config;
  config.flows = 40;
  config.seed = 11;
  config.cc_mix = 1.0;
  const ExperimentResult result = RunDumbbell(config);
  EXPECT_EQ(result.flows_completed, 40u);
  EXPECT_EQ(result.cubic_fct.count, 40u);
  EXPECT_EQ(result.newreno_fct.count, 0u);
  EXPECT_GT(result.cubic_bytes, 0u);
  EXPECT_EQ(result.newreno_bytes, 0u);
}

TEST(CcMixTest, HalfMixSplitsFlowsAcrossBothControllers) {
  DumbbellExperimentConfig config;
  config.flows = 80;
  config.seed = 11;
  config.cc_mix = 0.5;
  const ExperimentResult result = RunDumbbell(config);
  EXPECT_EQ(result.flows_completed, 80u);
  EXPECT_GT(result.cubic_fct.count, 0u);
  EXPECT_GT(result.newreno_fct.count, 0u);
  EXPECT_EQ(result.cubic_fct.count + result.newreno_fct.count, 80u);
  EXPECT_GT(result.cubic_bytes, 0u);
  EXPECT_GT(result.newreno_bytes, 0u);
}

TEST(CcMixTest, SameSeedMixedRunIsDeterministic) {
  DumbbellExperimentConfig config;
  config.flows = 60;
  config.seed = 23;
  config.cc_mix = 0.5;
  config.buffer_policy.kind = BufferPolicyKind::kDynamicThreshold;
  config.buffer_policy.alpha = 1.0;
  config.buffer_policy.total_bytes = 1 << 20;
  const ExperimentResult a = RunDumbbell(config);
  const ExperimentResult b = RunDumbbell(config);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_DOUBLE_EQ(a.overall.avg_us, b.overall.avg_us);
  EXPECT_DOUBLE_EQ(a.cubic_fct.avg_us, b.cubic_fct.avg_us);
  EXPECT_DOUBLE_EQ(a.newreno_fct.avg_us, b.newreno_fct.avg_us);
  EXPECT_EQ(a.cubic_bytes, b.cubic_bytes);
  EXPECT_EQ(a.newreno_bytes, b.newreno_bytes);
}

TEST(CcMixTest, LeafSpineMixedRunWithDtPoolCompletes) {
  LeafSpineExperimentConfig config;
  config.params = SimulationSchemeParams();
  config.topo.spines = 2;
  config.topo.leaves = 2;
  config.topo.hosts_per_leaf = 4;
  config.flows = 60;
  config.load = 0.4;
  config.seed = 7;
  config.cc_mix = 0.5;
  config.buffer_policy.kind = BufferPolicyKind::kDynamicThreshold;
  config.buffer_policy.alpha = 1.0;
  const ExperimentResult result = RunLeafSpine(config);
  EXPECT_EQ(result.flows_completed, 60u);
  EXPECT_GT(result.cubic_fct.count, 0u);
  EXPECT_GT(result.newreno_fct.count, 0u);
  EXPECT_EQ(result.cubic_fct.count + result.newreno_fct.count, 60u);
}

TEST(CcMixTest, FatTreeMixedRunWithHeadroomPoolCompletes) {
  FatTreeExperimentConfig config;
  config.topo.k = 4;
  config.flows = 40;
  config.load = 0.3;
  config.seed = 5;
  config.cc_mix = 0.5;
  config.buffer_policy.kind = BufferPolicyKind::kDtHeadroom;
  config.buffer_policy.alpha = 2.0;
  const ExperimentResult result = RunFatTree(config);
  EXPECT_EQ(result.flows_completed, 40u);
  EXPECT_GT(result.cubic_fct.count, 0u);
  EXPECT_GT(result.newreno_fct.count, 0u);
  EXPECT_EQ(result.cubic_fct.count + result.newreno_fct.count, 40u);
}

}  // namespace
}  // namespace ecnsharp
