// CSV export, fairness index, pacing, and queue-length ECN# tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>

#include "core/ecn_sharp.h"
#include "net/host.h"
#include "net/switch_node.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"
#include "stats/csv_export.h"
#include "stats/fairness.h"
#include "stats/queue_monitor.h"
#include "transport/tcp_stack.h"

namespace ecnsharp {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CsvExportTest, FctCsvRoundTrip) {
  FctCollector collector;
  FlowRecord record;
  record.size_bytes = 12345;
  record.start_time = Time::Zero();
  record.completion_time = Time::FromMicroseconds(678.5);
  record.timeouts = 2;
  collector.Record(record);

  const std::string path = ::testing::TempDir() + "/fct.csv";
  ASSERT_TRUE(WriteFctCsv(path, collector));
  const std::string content = ReadAll(path);
  EXPECT_NE(content.find("size_bytes,fct_us,timeouts"), std::string::npos);
  EXPECT_NE(content.find("12345,678.500,2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvExportTest, QueueTraceCsv) {
  Simulator sim;
  FifoQueueDisc disc(1 << 20, nullptr);
  QueueMonitor monitor(sim, disc, Time::Microseconds(10));
  monitor.Run(Time::Zero(), Time::Microseconds(20));
  auto pkt = std::make_unique<Packet>();
  pkt->size_bytes = 1500;
  disc.Enqueue(std::move(pkt), Time::Zero());
  sim.Run();

  const std::string path = ::testing::TempDir() + "/queue.csv";
  ASSERT_TRUE(WriteQueueTraceCsv(path, monitor));
  const std::string content = ReadAll(path);
  EXPECT_NE(content.find("time_us,packets,bytes"), std::string::npos);
  EXPECT_NE(content.find("10.000,1,1500"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvExportTest, BadPathFails) {
  FctCollector collector;
  EXPECT_FALSE(WriteFctCsv("/nonexistent-dir/x/y.csv", collector));
}

TEST(FairnessTest, JainIndexProperties) {
  EXPECT_DOUBLE_EQ(JainIndex({5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({1.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({}), 0.0);
  EXPECT_DOUBLE_EQ(JainIndex({0.0, 0.0}), 0.0);
  // One flow hogging: index -> 1/n.
  EXPECT_NEAR(JainIndex({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  // Mild imbalance stays high.
  EXPECT_GT(JainIndex({4.0, 5.0, 6.0}), 0.95);
}

// ------------------------------ pacing -------------------------------------

class SinkWithTimes : public PacketSink {
 public:
  explicit SinkWithTimes(Simulator& sim) : sim_(sim) {}
  void HandlePacket(std::unique_ptr<Packet>) override {
    times_.push_back(sim_.Now());
  }
  const std::vector<Time>& times() const { return times_; }

 private:
  Simulator& sim_;
  std::vector<Time> times_;
};

TEST(PacingTest, SpacesInitialWindow) {
  Simulator sim;
  SinkWithTimes sink(sim);
  Host host(sim, 0);
  auto nic = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(100), Time::Zero(),
      std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
  nic->ConnectTo(sink);
  host.AttachNic(std::move(nic));

  TcpConfig config;
  config.pacing = true;
  config.initial_pacing_rate = DataRate::GigabitsPerSecond(10);
  config.init_cwnd_segments = 10;
  TcpSender sender(host, config, FlowKey{0, 1, 9, 80}, 20 * 1460, 0,
                   nullptr);
  sender.Start();
  sim.RunFor(Time::Microseconds(2));
  // At ~1.17 us per 1460B payload at 10G, only a couple of segments have
  // left — not the whole 10-segment window.
  EXPECT_LE(sink.times().size(), 3u);
  sim.RunFor(Time::Microseconds(20));
  EXPECT_GE(sink.times().size(), 9u);
  // Consecutive paced sends are spaced, not back-to-back.
  ASSERT_GE(sink.times().size(), 3u);
  EXPECT_GE(sink.times()[2] - sink.times()[1], Time::Nanoseconds(1000));
}

TEST(PacingTest, PacedFlowStillCompletes) {
  // Full stack round trip with pacing on.
  Simulator sim;
  SwitchNode sw(sim, "sw");
  Host a(sim, 0);
  Host b(sim, 1);
  for (Host* h : {&a, &b}) {
    auto nic = std::make_unique<EgressPort>(
        sim, DataRate::GigabitsPerSecond(10), Time::Microseconds(5),
        std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
    nic->ConnectTo(sw);
    h->AttachNic(std::move(nic));
    auto port = std::make_unique<EgressPort>(
        sim, DataRate::GigabitsPerSecond(10), Time::Microseconds(5),
        std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
    port->ConnectTo(*h);
    sw.AddRoute(h->address(), sw.AddPort(std::move(port)));
  }
  TcpConfig config;
  config.pacing = true;
  TcpStack stack_a(a, config);
  TcpStack stack_b(b, config);
  std::optional<FlowRecord> done;
  stack_a.StartFlow(1, 3'000'000,
                    [&done](const FlowRecord& r) { done = r; });
  sim.RunUntil(Time::Seconds(5));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->timeouts, 0u);
}

// ------------------------- queue-length ECN# -------------------------------

TEST(EcnSharpQlenTest, InstantaneousMarkOnQueueLength) {
  EcnSharpQlenConfig config;
  config.ins_target_bytes = 10'000;
  config.pst_target_bytes = 3'000;
  EcnSharpQlenAqm aqm(config);
  Packet pkt;
  pkt.size_bytes = 1500;
  pkt.ecn = EcnCodepoint::kEct0;
  EXPECT_TRUE(aqm.AllowEnqueue(pkt, QueueSnapshot{8, 12'000}, Time::Zero()));
  EXPECT_TRUE(pkt.IsCeMarked());
}

TEST(EcnSharpQlenTest, PersistentMarkOnSustainedBacklog) {
  EcnSharpQlenConfig config;
  config.ins_target_bytes = 100'000;
  config.pst_target_bytes = 3'000;
  config.pst_interval = Time::FromMicroseconds(100);
  EcnSharpQlenAqm aqm(config);
  int marks = 0;
  for (int t_us = 0; t_us < 1000; t_us += 5) {
    Packet pkt;
    pkt.size_bytes = 1500;
    pkt.ecn = EcnCodepoint::kEct0;
    aqm.AllowEnqueue(pkt, QueueSnapshot{4, 6'000}, Time::Microseconds(t_us));
    if (pkt.IsCeMarked()) ++marks;
  }
  EXPECT_GE(marks, 1);
  EXPECT_LE(marks, 30);  // conservative, time-paced
  EXPECT_TRUE(aqm.marker().marking_state());
}

TEST(EcnSharpQlenTest, ResetsWhenBacklogDrains) {
  EcnSharpQlenConfig config;
  config.pst_target_bytes = 3'000;
  config.pst_interval = Time::FromMicroseconds(100);
  EcnSharpQlenAqm aqm(config);
  for (int t_us = 0; t_us < 500; t_us += 5) {
    Packet pkt;
    pkt.size_bytes = 1500;
    pkt.ecn = EcnCodepoint::kEct0;
    aqm.AllowEnqueue(pkt, QueueSnapshot{4, 6'000}, Time::Microseconds(t_us));
  }
  ASSERT_TRUE(aqm.marker().marking_state());
  Packet pkt;
  pkt.size_bytes = 100;
  pkt.ecn = EcnCodepoint::kEct0;
  aqm.AllowEnqueue(pkt, QueueSnapshot{0, 0}, Time::Microseconds(505));
  EXPECT_FALSE(aqm.marker().marking_state());
}

}  // namespace
}  // namespace ecnsharp
