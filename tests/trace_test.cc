// Flight-recorder tracing subsystem tests: --trace spec parsing, the
// TraceRecorder ring (overwrite, per-kind totals), per-site counters and
// depth series, per-flow transport series, JSON/CSV export determinism,
// and the end-to-end RunDumbbell surface (result.trace).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/json.h"
#include "harness/trace_export.h"
#include "net/packet.h"
#include "net/queue_disc.h"
#include "sim/time.h"
#include "trace/trace_config.h"
#include "trace/trace_event.h"
#include "trace/trace_recorder.h"

namespace ecnsharp {
namespace {

// ---------------------------------------------------------------------------
// ParseTraceSpec
// ---------------------------------------------------------------------------

TEST(TraceSpecTest, AcceptsDefaultAliases) {
  for (const char* alias : {"on", "default", "1"}) {
    TraceConfig config;
    std::string error;
    ASSERT_TRUE(ParseTraceSpec(alias, &config, &error)) << alias << error;
    EXPECT_TRUE(config.enabled);
    EXPECT_EQ(config.ring_capacity, TraceConfig().ring_capacity);
    EXPECT_EQ(config.max_series_points, TraceConfig().max_series_points);
    EXPECT_TRUE(config.queue_series);
    EXPECT_TRUE(config.flow_series);
  }
}

TEST(TraceSpecTest, FullRaisesRingAndSeriesLimits) {
  TraceConfig config;
  ASSERT_TRUE(ParseTraceSpec("full", &config, nullptr));
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.ring_capacity, 1u << 20);
  EXPECT_EQ(config.max_series_points, 1u << 20);
}

TEST(TraceSpecTest, ParsesKeyValueTerms) {
  TraceConfig config;
  std::string error;
  ASSERT_TRUE(ParseTraceSpec("events:128,points:16,queue:off,flows:off",
                             &config, &error))
      << error;
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.ring_capacity, 128u);
  EXPECT_EQ(config.max_series_points, 16u);
  EXPECT_FALSE(config.queue_series);
  EXPECT_FALSE(config.flow_series);

  // Unmentioned fields keep defaults.
  ASSERT_TRUE(ParseTraceSpec("events:10", &config, &error));
  EXPECT_EQ(config.ring_capacity, 10u);
  EXPECT_TRUE(config.queue_series);
}

TEST(TraceSpecTest, RejectsDuplicateKeys) {
  // A repeated key is ambiguous (which value did the user mean?) — the
  // shared spec grammar rejects it rather than silently taking the last.
  TraceConfig config;
  std::string error;
  ASSERT_FALSE(ParseTraceSpec("events:10,events:20", &config, &error));
  EXPECT_EQ(error, "duplicate key 'events'");
  ASSERT_FALSE(ParseTraceSpec("queue:on,points:4,queue:off", &config, &error));
  EXPECT_EQ(error, "duplicate key 'queue'");
  // A failed parse leaves the output untouched.
  EXPECT_FALSE(config.enabled);
}

TEST(TraceSpecTest, RejectsMalformedSpecsWithAMessage) {
  const char* kBad[] = {
      "",               // empty
      "bogus:5",        // unknown key
      "events:0",       // zero capacity
      "events:999999999",  // > 8 digits
      "events:17000000",   // over the 16Mi cap
      "events:abc",     // non-numeric
      "events:",        // missing value
      ":5",             // missing key
      "queue:maybe",    // bad on/off
      "flows:2",        // bad on/off
      "noval",          // no colon
      "events:5,,queue:on",  // empty term
  };
  for (const char* spec : kBad) {
    TraceConfig config;
    std::string error;
    EXPECT_FALSE(ParseTraceSpec(spec, &config, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
  // The message names the offending key so CLI exit-2 output is actionable.
  TraceConfig config;
  std::string error;
  ASSERT_FALSE(ParseTraceSpec("bogus:5", &config, &error));
  EXPECT_EQ(error, "unknown trace key 'bogus'");
}

// ---------------------------------------------------------------------------
// TraceRecorder ring
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, RingOverwritesOldestButTotalsSurvive) {
  TraceConfig config;
  config.enabled = true;
  config.ring_capacity = 8;
  TraceRecorder recorder(config);

  for (int i = 0; i < 20; ++i) {
    recorder.OnScenarioAction(Time::FromMicroseconds(i), /*kind=*/0,
                              /*target=*/i);
  }

  EXPECT_EQ(recorder.total_events(), 20u);
  EXPECT_EQ(recorder.overwritten(), 12u);
  EXPECT_EQ(recorder.kind_count(TraceEventKind::kScenario), 20u);

  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest retained first: targets 12..19 in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, TraceEventKind::kScenario);
    EXPECT_EQ(events[i].b, 12u + i);
    EXPECT_EQ(events[i].at, Time::FromMicroseconds(12 + i));
  }
}

TEST(TraceRecorderTest, PortTapFillsCountersEventsAndDepthSeries) {
  TraceConfig config;
  config.enabled = true;
  TraceRecorder recorder(config);
  const std::uint16_t site = recorder.RegisterSite("bottleneck0");
  ASSERT_EQ(recorder.site_count(), 1u);
  EXPECT_EQ(recorder.site_label(site), "bottleneck0");
  PacketTracer* tap = recorder.PortTap(site);
  ASSERT_NE(tap, nullptr);
  // The tap address is stable across further registrations.
  recorder.RegisterSite("bottleneck1");
  EXPECT_EQ(tap, recorder.PortTap(site));

  Packet pkt;
  pkt.size_bytes = 1500;
  pkt.seq = 7;
  pkt.flow = FlowKey{1, 2, 10, 80};
  const QueueSnapshot one{1, 1500};
  const QueueSnapshot empty{0, 0};

  tap->OnEnqueue(pkt, Time::FromMicroseconds(1), one);
  tap->OnMark(pkt, Time::FromMicroseconds(2));
  tap->OnDequeue(pkt, Time::FromMicroseconds(2), empty,
                 Time::FromMicroseconds(1));
  tap->OnTransmit(pkt, Time::FromMicroseconds(3));
  tap->OnDrop(pkt, Time::FromMicroseconds(4), DropReason::kOverflow);
  tap->OnPurge(pkt, Time::FromMicroseconds(5), empty);

  const TraceSiteCounters& c = recorder.site_counters(site);
  EXPECT_EQ(c.enqueued, 1u);
  EXPECT_EQ(c.dequeued, 1u);
  EXPECT_EQ(c.transmitted, 1u);
  EXPECT_EQ(c.marks, 1u);
  EXPECT_EQ(c.purged, 1u);
  EXPECT_EQ(c.drops[static_cast<std::size_t>(DropReason::kOverflow)], 1u);
  EXPECT_EQ(c.drops[static_cast<std::size_t>(DropReason::kPurged)], 1u);
  EXPECT_EQ(c.DroppedTotal(), 2u);
  // The second site saw nothing.
  EXPECT_EQ(recorder.site_counters(1).enqueued, 0u);

  EXPECT_EQ(recorder.kind_count(TraceEventKind::kEnqueue), 1u);
  EXPECT_EQ(recorder.kind_count(TraceEventKind::kDrop), 2u);  // drop + purge
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kEnqueue);
  EXPECT_EQ(events[0].a, 7u);  // seq
  EXPECT_EQ(events[0].b, 1u);  // depth after
  EXPECT_EQ(events[0].site, site);
  EXPECT_EQ(events[0].flow, pkt.flow);
  EXPECT_EQ(events[2].kind, TraceEventKind::kDequeue);
  EXPECT_EQ(events[2].b, 1000u);  // sojourn ns
  EXPECT_EQ(events[5].kind, TraceEventKind::kDrop);
  EXPECT_EQ(events[5].reason, DropReason::kPurged);

  // Depth sampled on enqueue, dequeue, and purge.
  const auto& depth = recorder.depth_series(site);
  ASSERT_EQ(depth.size(), 3u);
  EXPECT_EQ(depth[0].packets, 1u);
  EXPECT_EQ(depth[0].bytes, 1500u);
  EXPECT_EQ(depth[1].packets, 0u);
}

TEST(TraceRecorderTest, SeriesCapSuppressesPointsNotEvents) {
  TraceConfig config;
  config.enabled = true;
  config.max_series_points = 4;
  TraceRecorder recorder(config);
  const std::uint16_t site = recorder.RegisterSite("bn");
  PacketTracer* tap = recorder.PortTap(site);

  Packet pkt;
  pkt.size_bytes = 100;
  for (int i = 0; i < 10; ++i) {
    tap->OnEnqueue(pkt, Time::FromMicroseconds(i),
                   QueueSnapshot{static_cast<std::uint32_t>(i + 1), 0});
  }
  EXPECT_EQ(recorder.depth_series(site).size(), 4u);
  EXPECT_EQ(recorder.suppressed_points(), 6u);
  // Events and counters are unaffected by the series cap.
  EXPECT_EQ(recorder.kind_count(TraceEventKind::kEnqueue), 10u);
  EXPECT_EQ(recorder.site_counters(site).enqueued, 10u);

  // Flow series respect the same cap (per series, cwnd and rtt separately).
  const FlowKey flow{1, 2, 3, 4};
  for (int i = 0; i < 6; ++i) {
    recorder.OnCwnd(flow, Time::FromMicroseconds(i), 1000.0 * i, 500.0);
  }
  EXPECT_EQ(recorder.flows().at(flow).cwnd.size(), 4u);
  EXPECT_EQ(recorder.suppressed_points(), 8u);
  EXPECT_EQ(recorder.kind_count(TraceEventKind::kCwnd), 6u);
}

TEST(TraceRecorderTest, DisabledQueueSeriesRecordsNoDepth) {
  TraceConfig config;
  config.enabled = true;
  config.queue_series = false;
  TraceRecorder recorder(config);
  const std::uint16_t site = recorder.RegisterSite("bn");
  Packet pkt;
  recorder.PortTap(site)->OnEnqueue(pkt, Time::Zero(), QueueSnapshot{1, 64});
  EXPECT_TRUE(recorder.depth_series(site).empty());
  EXPECT_EQ(recorder.suppressed_points(), 0u);
  // The event stream still sees the enqueue.
  EXPECT_EQ(recorder.kind_count(TraceEventKind::kEnqueue), 1u);
}

TEST(TraceRecorderTest, TransportSeriesAreKeyedDeterministically) {
  TraceConfig config;
  config.enabled = true;
  TraceRecorder recorder(config);
  const FlowKey late{9, 1, 1, 1};   // larger src — must sort second
  const FlowKey early{1, 9, 1, 1};

  recorder.OnCwnd(late, Time::FromMicroseconds(1), 3000.0, 1e9);
  recorder.OnRttSample(late, Time::FromMicroseconds(2),
                       Time::FromMicroseconds(80));
  recorder.OnRetransmit(early, Time::FromMicroseconds(3), 1460);
  recorder.OnRto(early, Time::FromMicroseconds(4), 2);
  recorder.OnRto(early, Time::FromMicroseconds(5), 3);

  ASSERT_EQ(recorder.flows().size(), 2u);
  auto it = recorder.flows().begin();
  EXPECT_EQ(it->first, early);  // FlowKeyLess order, not insertion order
  EXPECT_EQ(it->second.retransmits, 1u);
  EXPECT_EQ(it->second.rtos, 2u);
  ++it;
  EXPECT_EQ(it->first, late);
  ASSERT_EQ(it->second.cwnd.size(), 1u);
  EXPECT_DOUBLE_EQ(it->second.cwnd[0].cwnd_bytes, 3000.0);
  ASSERT_EQ(it->second.rtt.size(), 1u);
  EXPECT_EQ(it->second.rtt[0].sample, Time::FromMicroseconds(80));

  EXPECT_EQ(recorder.kind_count(TraceEventKind::kRetransmit), 1u);
  EXPECT_EQ(recorder.kind_count(TraceEventKind::kRto), 2u);
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

void FillRecorder(TraceRecorder& recorder) {
  const std::uint16_t site = recorder.RegisterSite("bottleneck0");
  PacketTracer* tap = recorder.PortTap(site);
  Packet pkt;
  pkt.size_bytes = 1500;
  pkt.flow = FlowKey{3, 4, 1000, 80};
  for (int i = 0; i < 5; ++i) {
    pkt.seq = static_cast<std::uint64_t>(i) * 1460;
    tap->OnEnqueue(pkt, Time::FromMicroseconds(2 * i),
                   QueueSnapshot{1, 1500});
    tap->OnDequeue(pkt, Time::FromMicroseconds(2 * i + 1), QueueSnapshot{0, 0},
                   Time::FromMicroseconds(1));
  }
  tap->OnDrop(pkt, Time::FromMicroseconds(11), DropReason::kOverflow);
  recorder.OnCwnd(pkt.flow, Time::FromMicroseconds(12), 4380.0, 1e9);
  recorder.OnScenarioAction(Time::FromMicroseconds(13), 2, -1);
}

TEST(TraceExportTest, JsonIsByteIdenticalAcrossIdenticalRecorders) {
  TraceConfig config;
  config.enabled = true;
  TraceRecorder a(config);
  TraceRecorder b(config);
  FillRecorder(a);
  FillRecorder(b);
  const std::string dump_a = TraceToJson(a).Dump();
  EXPECT_EQ(dump_a, TraceToJson(b).Dump());
  EXPECT_EQ(TraceToCsv(a), TraceToCsv(b));

  // The document carries the documented sections and wire names.
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(dump_a, &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("schema_version")->AsInt(0), 1);
  const Json* totals = parsed.Find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->Find("events")->AsInt(0), 13);
  const Json* sites = parsed.Find("sites");
  ASSERT_TRUE(sites != nullptr && sites->IsArray());
  ASSERT_EQ(sites->items().size(), 1u);
  EXPECT_EQ(sites->items()[0].Find("label")->AsString(), "bottleneck0");
  const Json* events = parsed.Find("events");
  ASSERT_TRUE(events != nullptr && events->IsArray());
  ASSERT_EQ(events->items().size(), 13u);
  EXPECT_EQ(events->items()[0].Find("kind")->AsString(), "enqueue");
  // Every kind appears in totals.kinds even when its count is zero.
  EXPECT_NE(dump_a.find("\"rtt_sample\""), std::string::npos);
  EXPECT_NE(dump_a.find("\"scenario\""), std::string::npos);
  EXPECT_NE(dump_a.find("\"overflow\""), std::string::npos);
}

TEST(TraceExportTest, CsvHasHeaderAndOneRowPerRetainedEvent) {
  TraceConfig config;
  config.enabled = true;
  TraceRecorder recorder(config);
  FillRecorder(recorder);
  const std::string csv = TraceToCsv(recorder);
  ASSERT_EQ(csv.rfind("at_ns,kind,site,reason,src,src_port,dst,dst_port,a,b\n",
                      0),
            0u);
  std::size_t lines = 0;
  for (char ch : csv) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1u + recorder.Events().size());
  EXPECT_NE(csv.find("overflow"), std::string::npos);
  EXPECT_NE(csv.find("scenario"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end through RunDumbbell
// ---------------------------------------------------------------------------

DumbbellExperimentConfig SmallTracedConfig() {
  DumbbellExperimentConfig config;
  config.flows = 30;
  config.seed = 2;
  config.trace.enabled = true;
  return config;
}

TEST(TraceSessionTest, DisabledTracingLeavesResultTraceNull) {
  DumbbellExperimentConfig config;
  config.flows = 10;
  config.seed = 3;
  const ExperimentResult r = RunDumbbell(config);
  EXPECT_EQ(r.trace, nullptr);
}

TEST(TraceSessionTest, DumbbellTraceMatchesBottleneckStats) {
  const ExperimentResult r = RunDumbbell(SmallTracedConfig());
  ASSERT_NE(r.trace, nullptr);
  const TraceRecorder& trace = *r.trace;
  ASSERT_EQ(trace.site_count(), 1u);
  EXPECT_EQ(trace.site_label(0), "bottleneck0");

  // The tap's aggregates are an independent tally of the same run — they
  // must agree with the queue disc's own counters exactly.
  const TraceSiteCounters& c = trace.site_counters(0);
  EXPECT_EQ(c.enqueued, r.bottleneck.enqueued);
  EXPECT_EQ(c.dequeued, r.bottleneck.dequeued);
  EXPECT_EQ(c.marks, r.bottleneck.ce_marked);
  EXPECT_EQ(c.purged, r.bottleneck.purged);
  EXPECT_EQ(c.drops[static_cast<std::size_t>(DropReason::kOverflow)],
            r.bottleneck.dropped_overflow);
  EXPECT_EQ(c.drops[static_cast<std::size_t>(DropReason::kAqm)],
            r.bottleneck.dropped_aqm);
  // Drained run: enqueued == dequeued + purged (+ 0 queued).
  EXPECT_EQ(c.enqueued, c.dequeued + c.purged);
  EXPECT_GT(c.enqueued, 0u);
  EXPECT_GT(c.transmitted, 0u);

  // Transport tracing produced per-flow series for the workload's flows.
  EXPECT_GT(trace.flows().size(), 0u);
  EXPECT_GT(trace.kind_count(TraceEventKind::kCwnd), 0u);
  EXPECT_GT(trace.kind_count(TraceEventKind::kRttSample), 0u);
  EXPECT_GT(trace.total_events(), trace.kind_count(TraceEventKind::kCwnd));
}

}  // namespace
}  // namespace ecnsharp
