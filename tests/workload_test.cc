// Workload CDFs, sampling statistics, and Poisson traffic generation.
#include <gtest/gtest.h>

#include <memory>

#include "sim/random.h"
#include "stats/fct_collector.h"
#include "stats/percentile.h"
#include "sched/fifo_queue_disc.h"
#include "topo/dumbbell.h"
#include "topo/rtt_variation.h"
#include "workload/empirical_cdf.h"
#include "workload/traffic_generator.h"

namespace ecnsharp {
namespace {

TEST(EmpiricalCdfTest, QuantileInterpolatesLinearly) {
  EmpiricalCdf cdf({{100.0, 0.0}, {200.0, 0.5}, {1000.0, 1.0}});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.25), 150.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 200.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.75), 600.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 1000.0);
}

TEST(EmpiricalCdfTest, AnalyticMeanMatchesSampling) {
  const EmpiricalCdf& cdf = WebSearchWorkload();
  Rng rng(1);
  double sum = 0.0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) sum += cdf.Sample(rng);
  const double sampled_mean = sum / kN;
  EXPECT_NEAR(sampled_mean / cdf.Mean(), 1.0, 0.02);
}

TEST(EmpiricalCdfTest, WebSearchShape) {
  const EmpiricalCdf& cdf = WebSearchWorkload();
  // Heavy-tailed: mean several hundred KB, median well under 100 KB
  // (~30% of flows are 1-packet queries, ~5% exceed 1 MB).
  EXPECT_GT(cdf.Mean(), 0.5e6);
  EXPECT_LT(cdf.Mean(), 1.0e6);
  EXPECT_LT(cdf.Quantile(0.5), 100e3);
  EXPECT_GT(cdf.Quantile(0.99), 2e6);
}

TEST(EmpiricalCdfTest, DataMiningShape) {
  const EmpiricalCdf& cdf = DataMiningWorkload();
  // Even heavier tail: ~80% of flows under 10 KB, mean several MB.
  EXPECT_LT(cdf.Quantile(0.8), 11e3);
  EXPECT_GT(cdf.Mean(), 5e6);
  EXPECT_GT(cdf.Quantile(0.999), 1e8);
}

TEST(EmpiricalCdfTest, SamplesStayWithinSupport) {
  const EmpiricalCdf& cdf = DataMiningWorkload();
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double s = cdf.Sample(rng);
    EXPECT_GE(s, cdf.points().front().value);
    EXPECT_LE(s, cdf.points().back().value);
  }
}

TEST(RttVariationTest, SamplesWithinRange) {
  Rng rng(3);
  const Time max_extra = Time::FromMicroseconds(160);
  for (int i = 0; i < 5000; ++i) {
    const Time extra = SampleRttExtra(rng, max_extra);
    EXPECT_GE(extra, Time::Zero());
    EXPECT_LE(extra, max_extra);
  }
}

TEST(RttVariationTest, MatchesLeafSpineCalibration) {
  // §5.3: base RTTs in [80, 240] us with mean ~137 us and p90 ~220 us.
  Rng rng(4);
  const Time base = Time::FromMicroseconds(80);
  const Time max_extra = Time::FromMicroseconds(160);
  std::vector<double> rtts;
  for (int i = 0; i < 50000; ++i) {
    rtts.push_back((base + SampleRttExtra(rng, max_extra)).ToMicroseconds());
  }
  EXPECT_NEAR(Mean(rtts), 137.0, 8.0);
  EXPECT_NEAR(Percentile(rtts, 90.0), 220.0, 10.0);
}

TEST(RttVariationTest, QuantilesAreDeterministicAndSorted) {
  const auto a = RttExtraQuantiles(7, Time::FromMicroseconds(140));
  const auto b = RttExtraQuantiles(7, Time::FromMicroseconds(140));
  ASSERT_EQ(a.size(), 7u);
  EXPECT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  // Mixture shape: smallest extra near 0, largest near the cap.
  EXPECT_LT(a.front(), Time::FromMicroseconds(30));
  EXPECT_GT(a.back(), Time::FromMicroseconds(110));
}

TEST(TrafficGeneratorTest, ArrivalRateMatchesLoadFormula) {
  Simulator sim;
  const EmpiricalCdf& cdf = WebSearchWorkload();
  TrafficConfig config;
  config.load = 0.5;
  config.reference_capacity = DataRate::GigabitsPerSecond(10);
  TrafficGenerator gen(
      sim, cdf, config, [](Rng&) { return std::make_pair(nullptr, 0u); },
      nullptr, Rng(1));
  // rate = load * C / (mean_size * 8).
  EXPECT_NEAR(gen.ArrivalRate(), 0.5 * 10e9 / (cdf.Mean() * 8.0), 1.0);
}

TEST(TrafficGeneratorTest, GeneratesOfferedLoadThroughDumbbell) {
  Simulator sim;
  DumbbellConfig topo_config;
  topo_config.senders = 7;
  Dumbbell topo(sim, topo_config,
                std::make_unique<FifoQueueDisc>(1ull << 24, nullptr));

  FctCollector collector;
  std::uint64_t total_bytes = 0;
  TrafficConfig config;
  config.load = 0.4;
  config.flow_count = 300;
  const std::uint32_t receiver = topo.receiver_address();
  TrafficGenerator gen(
      sim, WebSearchWorkload(), config,
      [&topo, receiver](Rng& r) {
        return std::make_pair(&topo.sender_stack(r.UniformInt(7)), receiver);
      },
      [&collector, &total_bytes](const FlowRecord& record) {
        collector.Record(record);
        total_bytes += record.size_bytes;
      },
      Rng(11));
  gen.Start();
  while (!gen.AllDone() && sim.Now() < Time::Seconds(60)) {
    sim.RunFor(Time::Milliseconds(10));
  }
  ASSERT_TRUE(gen.AllDone());
  EXPECT_EQ(collector.count(), 300u);
  // Realized utilization over the generation horizon should be in the
  // ballpark of the offered load (wide tolerance: 300 heavy-tailed flows).
  const double duration_s =
      static_cast<double>(config.flow_count) / gen.ArrivalRate();
  const double utilization = static_cast<double>(total_bytes) * 8.0 /
                             (duration_s * 10e9);
  EXPECT_GT(utilization, 0.15);
  EXPECT_LT(utilization, 1.0);
}

TEST(FctCollectorTest, BandsAndPercentiles) {
  FctCollector collector;
  const auto record = [&collector](std::uint64_t size, double fct_us,
                                   std::uint32_t timeouts = 0) {
    FlowRecord r;
    r.size_bytes = size;
    r.start_time = Time::Zero();
    r.completion_time = Time::FromMicroseconds(fct_us);
    r.timeouts = timeouts;
    collector.Record(r);
  };
  for (int i = 1; i <= 100; ++i) record(50'000, i * 10.0);  // short flows
  record(20'000'000, 5000.0, 2);                            // one large flow

  const FctSummary shorts = collector.ShortFlows();
  EXPECT_EQ(shorts.count, 100u);
  EXPECT_NEAR(shorts.avg_us, 505.0, 1.0);
  EXPECT_DOUBLE_EQ(shorts.p99_us, 990.0);
  EXPECT_DOUBLE_EQ(shorts.max_us, 1000.0);

  const FctSummary large = collector.LargeFlows();
  EXPECT_EQ(large.count, 1u);
  EXPECT_DOUBLE_EQ(large.avg_us, 5000.0);

  EXPECT_EQ(collector.Overall().count, 101u);
  EXPECT_EQ(collector.total_timeouts(), 2u);
}

TEST(PercentileTest, NearestRank) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 99.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 99.0), 42.0);
}

}  // namespace
}  // namespace ecnsharp
