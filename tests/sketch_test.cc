// Unit tests for the sketch telemetry subsystem: count-min, windowed rate
// ring, RTT min-filter sketch, queue EWMA, spec parsing, the telemetry
// aggregate (taps, heavy hitters, exact mirror), the sketch-driven ECN#
// estimator, and the session/CLI integration seams (tee tracers, export,
// FCT parity with sketches disabled).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/ecn_sharp.h"
#include "harness/experiment.h"
#include "harness/json.h"
#include "harness/sketch_export.h"
#include "hostpath/rtt_probe.h"
#include "net/packet.h"
#include "net/packet_tracer.h"
#include "sketch/count_min.h"
#include "sketch/estimator.h"
#include "sketch/queue_ewma.h"
#include "sketch/rate_sketch.h"
#include "sketch/rtt_sketch.h"
#include "sketch/sketch_config.h"
#include "sketch/telemetry.h"
#include "stats/percentile.h"
#include "trace/trace_recorder.h"
#include "trace/transport_tracer.h"

namespace ecnsharp {
namespace {

// --- Count-min ------------------------------------------------------------

TEST(CountMinTest, ExactWithoutCollisions) {
  CountMinSketch sketch(1024, 4, /*seed=*/7);
  sketch.Update(1, 100);
  sketch.Update(2, 250);
  sketch.Update(1, 50);
  EXPECT_EQ(sketch.Estimate(1), 150u);
  EXPECT_EQ(sketch.Estimate(2), 250u);
  EXPECT_EQ(sketch.Estimate(999), 0u);
  EXPECT_EQ(sketch.total_count(), 400u);
}

TEST(CountMinTest, EstimateNeverUndercounts) {
  // Tiny sketch, many keys: heavy collisions, but the one-sided guarantee
  // must hold for every key.
  CountMinSketch sketch(8, 2, /*seed=*/11);
  for (std::uint64_t key = 0; key < 100; ++key) sketch.Update(key, key + 1);
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_GE(sketch.Estimate(key), key + 1) << "key " << key;
  }
}

TEST(CountMinTest, UpdateReturnsNewEstimate) {
  CountMinSketch sketch(256, 4, /*seed=*/3);
  EXPECT_EQ(sketch.Update(42, 10), 10u);
  EXPECT_EQ(sketch.Update(42, 5), 15u);
}

TEST(CountMinTest, ClearResets) {
  CountMinSketch sketch(64, 4, /*seed=*/3);
  sketch.Update(42, 10);
  sketch.Clear();
  EXPECT_EQ(sketch.Estimate(42), 0u);
  EXPECT_EQ(sketch.total_count(), 0u);
}

TEST(CountMinTest, DepthIsClamped) {
  CountMinSketch deep(64, 99, /*seed=*/1);
  EXPECT_EQ(deep.depth(), 16u);
  CountMinSketch shallow(64, 0, /*seed=*/1);
  EXPECT_EQ(shallow.depth(), 1u);
}

TEST(CountMinTest, WidthForBudgetFitsAndIsPositive) {
  const std::size_t width = CountMinSketch::WidthForBudget(4096, 4);
  EXPECT_GE(width, 1u);
  CountMinSketch sketch(width, 4, /*seed=*/1);
  EXPECT_LE(sketch.MemoryBytes(), 4096u);
  // Degenerate budget still yields a working sketch.
  EXPECT_GE(CountMinSketch::WidthForBudget(0, 4), 1u);
}

// --- Windowed rate sketch -------------------------------------------------

TEST(RateSketchTest, EpochIndexIsExactIntegerDivision) {
  WindowedRateSketch sketch(64, 2, 4, Time::Milliseconds(5), 1.0, /*seed=*/1);
  EXPECT_EQ(sketch.EpochIndexFor(Time::Zero()), 0u);
  EXPECT_EQ(sketch.EpochIndexFor(Time::Milliseconds(4)), 0u);
  EXPECT_EQ(sketch.EpochIndexFor(Time::Milliseconds(5)), 1u);
  EXPECT_EQ(sketch.EpochIndexFor(Time::Milliseconds(14)), 2u);
}

TEST(RateSketchTest, SteadyRateIsRecovered) {
  // 1500 bytes every 100 us = 120 Mbit/s, no decay so every epoch weighs
  // the same and the estimate should sit on the true rate.
  WindowedRateSketch sketch(256, 4, 8, Time::Milliseconds(5), 1.0,
                            /*seed=*/2);
  Time now = Time::Zero();
  for (int i = 0; i < 400; ++i) {
    now += Time::FromMicroseconds(100);
    sketch.Update(77, 1500, now);
  }
  const double rate = sketch.EstimateRateBps(77, now);
  EXPECT_NEAR(rate, 120e6, 0.05 * 120e6);
  EXPECT_EQ(sketch.EstimateRateBps(12345, now), 0.0);
}

TEST(RateSketchTest, OldEpochsAgeOut) {
  WindowedRateSketch sketch(256, 4, 4, Time::Milliseconds(5), 1.0,
                            /*seed=*/2);
  sketch.Update(9, 100'000, Time::Milliseconds(1));
  EXPECT_GT(sketch.EstimateRateBps(9, Time::Milliseconds(1)), 0.0);
  // Advance far past the window: the flow's bytes must be gone.
  sketch.Update(10, 1, Time::Milliseconds(200));
  EXPECT_EQ(sketch.EstimateRateBps(9, Time::Milliseconds(200)), 0.0);
}

TEST(RateSketchTest, DecayWeightsRecentEpochsHigher) {
  WindowedRateSketch sketch(256, 4, 8, Time::Milliseconds(5), 0.5,
                            /*seed=*/2);
  EXPECT_DOUBLE_EQ(sketch.AgeWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.AgeWeight(1), 0.5);
  EXPECT_DOUBLE_EQ(sketch.AgeWeight(2), 0.25);
  EXPECT_DOUBLE_EQ(sketch.AgeWeight(8), 0.0);  // outside the ring
}

TEST(RateSketchTest, WindowSecondsMatchElapsedTimeEarlyOn) {
  WindowedRateSketch sketch(256, 4, 8, Time::Milliseconds(5), 1.0,
                            /*seed=*/2);
  // Mid-first-epoch: only the in-progress epoch contributes, pro-rated.
  const double s0 = sketch.WindowWeightedSeconds(Time::Milliseconds(2));
  EXPECT_NEAR(s0, 0.002, 1e-9);
  // After three full epochs + half of the fourth.
  const double s3 = sketch.WindowWeightedSeconds(Time::FromMicroseconds(17'500));
  EXPECT_NEAR(s3, 0.0175, 1e-9);
}

// --- Queue EWMA -----------------------------------------------------------

TEST(QueueEwmaTest, SeedsOnFirstSampleThenSmooths) {
  QueueOccupancyEwma ewma(0.5);
  EXPECT_EQ(ewma.samples(), 0u);
  ewma.Observe(10, 15'000);
  EXPECT_DOUBLE_EQ(ewma.ewma_packets(), 10.0);
  ewma.Observe(20, 30'000);
  EXPECT_DOUBLE_EQ(ewma.ewma_packets(), 15.0);
  EXPECT_DOUBLE_EQ(ewma.ewma_bytes(), 22'500.0);
  EXPECT_EQ(ewma.samples(), 2u);
  EXPECT_EQ(ewma.peak_packets(), 20u);
  EXPECT_EQ(ewma.peak_bytes(), 30'000u);
}

TEST(QueueEwmaTest, AlphaIsClamped) {
  QueueOccupancyEwma ewma(42.0);  // clamped to 1.0: tracks instantaneous
  ewma.Observe(10, 100);
  ewma.Observe(2, 20);
  EXPECT_DOUBLE_EQ(ewma.ewma_packets(), 2.0);
}

// --- RTT sketch -----------------------------------------------------------

TEST(RttSketchTest, AdmitsOnlyImprovingSamples) {
  WindowedRttSketch sketch(256, 4, 8, Time::Milliseconds(5), /*seed=*/5);
  const Time now = Time::Milliseconds(1);
  EXPECT_TRUE(sketch.AddSample(1, Time::FromMicroseconds(300), now));
  // Larger than the flow's current minimum: rejected.
  EXPECT_FALSE(sketch.AddSample(1, Time::FromMicroseconds(400), now));
  // Equal: rejected (strict improvement required).
  EXPECT_FALSE(sketch.AddSample(1, Time::FromMicroseconds(300), now));
  // Lower: admitted.
  EXPECT_TRUE(sketch.AddSample(1, Time::FromMicroseconds(120), now));
  EXPECT_EQ(sketch.SampleCount(now), 2u);
}

TEST(RttSketchTest, QuantileLandsNearAdmittedMinima) {
  WindowedRttSketch sketch(512, 4, 8, Time::Milliseconds(5), /*seed=*/5);
  const Time now = Time::Milliseconds(1);
  // 100 flows, base RTTs spread 100..199 us; after each flow's base is in,
  // offer a queue-inflated sample — it exceeds the flow's minimum, so the
  // admission gate must keep it out of the histogram.
  for (std::uint64_t f = 0; f < 100; ++f) {
    const double base_us = 100.0 + static_cast<double>(f);
    sketch.AddSample(f, Time::FromMicroseconds(base_us), now);
    EXPECT_FALSE(sketch.AddSample(f, Time::FromMicroseconds(base_us * 4), now));
  }
  // Geometric buckets have ~8% resolution: allow that plus the spread.
  EXPECT_NEAR(sketch.QuantileUs(50.0, now), 150.0, 150.0 * 0.30);
  const double p99 = sketch.QuantileUs(99.0, now);
  EXPECT_GE(p99, sketch.QuantileUs(50.0, now));
  // Well below the inflated 4x samples: they were never admitted.
  EXPECT_LT(p99, 250.0);
  EXPECT_GT(sketch.MeanUs(now), 0.0);
}

TEST(RttSketchTest, WindowTracksRttIncreases) {
  WindowedRttSketch sketch(256, 4, 4, Time::Milliseconds(5), /*seed=*/5);
  // Old low floor in epoch 0.
  sketch.AddSample(1, Time::FromMicroseconds(100), Time::Milliseconds(1));
  // Path change: only higher samples from epoch 10 on. Within the window
  // of epochs 10.. the old minimum is gone, so the new floor is admitted.
  EXPECT_TRUE(sketch.AddSample(1, Time::FromMicroseconds(500),
                               Time::Milliseconds(51)));
  const double p50 = sketch.QuantileUs(50.0, Time::Milliseconds(51));
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.10);
  EXPECT_EQ(sketch.SampleCount(Time::Milliseconds(51)), 1u);
}

TEST(RttSketchTest, EmptyWindowYieldsZero) {
  WindowedRttSketch sketch(256, 4, 8, Time::Milliseconds(5), /*seed=*/5);
  EXPECT_EQ(sketch.QuantileUs(90.0, Time::Zero()), 0.0);
  EXPECT_EQ(sketch.MeanUs(Time::Zero()), 0.0);
  EXPECT_EQ(sketch.SampleCount(Time::Zero()), 0u);
}

TEST(RttSketchTest, BucketRoundTrip) {
  for (const double us : {1.5, 10.0, 100.0, 1000.0, 250'000.0}) {
    const std::size_t bucket = WindowedRttSketch::BucketFor(us);
    const double mid = WindowedRttSketch::BucketMidUs(bucket);
    // The midpoint of the bucket containing `us` is within one gamma step.
    EXPECT_GT(mid, us / WindowedRttSketch::kGamma);
    EXPECT_LT(mid, us * WindowedRttSketch::kGamma);
  }
}

TEST(RttSketchTest, WidthForBudgetFits) {
  const std::size_t width = WindowedRttSketch::WidthForBudget(16'384, 4, 8);
  EXPECT_GE(width, 1u);
  WindowedRttSketch sketch(width, 4, 8, Time::Milliseconds(5), /*seed=*/5);
  EXPECT_LE(sketch.MemoryBytes(), 16'384u + 8 * 256 * sizeof(std::uint32_t));
}

// --- Spec parsing ---------------------------------------------------------

TEST(SketchSpecTest, OnEnablesDefaults) {
  SketchConfig config;
  std::string error;
  ASSERT_TRUE(ParseSketchSpec("on", &config, &error)) << error;
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.memory_kb, 64u);
  EXPECT_EQ(config.depth, 4u);
}

TEST(SketchSpecTest, FullOverride) {
  SketchConfig config;
  std::string error;
  ASSERT_TRUE(ParseSketchSpec(
      "mem:128,depth:6,epoch:2000,window:16,decay:50,hh:32,exact:on", &config,
      &error))
      << error;
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.memory_kb, 128u);
  EXPECT_EQ(config.depth, 6u);
  EXPECT_EQ(config.epoch, Time::FromMicroseconds(2000));
  EXPECT_EQ(config.window_epochs, 16u);
  EXPECT_DOUBLE_EQ(config.decay, 0.5);
  EXPECT_EQ(config.heavy_hitters, 32u);
  EXPECT_TRUE(config.track_exact);
}

TEST(SketchSpecTest, RejectsDuplicateKeys) {
  SketchConfig config;
  std::string error;
  EXPECT_FALSE(ParseSketchSpec("mem:64,mem:128", &config, &error));
  EXPECT_NE(error.find("duplicate key"), std::string::npos) << error;
  // Config untouched on failure.
  EXPECT_FALSE(config.enabled);
}

TEST(SketchSpecTest, RejectsUnknownKeysAndBadRanges) {
  SketchConfig config;
  std::string error;
  EXPECT_FALSE(ParseSketchSpec("bogus:1", &config, &error));
  EXPECT_FALSE(ParseSketchSpec("mem:0", &config, &error));
  EXPECT_FALSE(ParseSketchSpec("depth:17", &config, &error));
  EXPECT_FALSE(ParseSketchSpec("decay:0", &config, &error));
  EXPECT_FALSE(ParseSketchSpec("exact:maybe", &config, &error));
  EXPECT_FALSE(config.enabled);
}

// --- Telemetry aggregate --------------------------------------------------

Packet MakePacket(std::uint32_t src, std::uint32_t size) {
  Packet pkt;
  pkt.flow = FlowKey{src, 200, 4000, 80};
  pkt.size_bytes = size;
  return pkt;
}

TEST(TelemetryTest, SiteCountersAndEwmaThroughTap) {
  SketchConfig config;
  config.enabled = true;
  SketchTelemetry telemetry(config);
  const std::uint16_t site = telemetry.RegisterSite("port0");
  PacketTracer* tap = telemetry.PortTap(site);

  const Packet pkt = MakePacket(1, 1500);
  tap->OnEnqueue(pkt, Time::FromMicroseconds(10), QueueSnapshot{3, 4500});
  tap->OnDequeue(pkt, Time::FromMicroseconds(20), QueueSnapshot{2, 3000},
                 Time::FromMicroseconds(10));
  tap->OnTransmit(pkt, Time::FromMicroseconds(21));
  tap->OnMark(pkt, Time::FromMicroseconds(21));
  tap->OnDrop(pkt, Time::FromMicroseconds(22), DropReason::kOverflow);

  const SketchSiteCounters& counters = telemetry.site_counters(site);
  EXPECT_EQ(counters.enqueued, 1u);
  EXPECT_EQ(counters.enqueued_bytes, 1500u);
  EXPECT_EQ(counters.dequeued, 1u);
  EXPECT_EQ(counters.transmitted, 1u);
  EXPECT_EQ(counters.marks, 1u);
  EXPECT_EQ(counters.drops, 1u);
  EXPECT_EQ(telemetry.queue_ewma(site).samples(), 2u);
  EXPECT_EQ(telemetry.queue_ewma(site).peak_packets(), 3u);
  EXPECT_EQ(telemetry.packets_observed(), 1u);
  EXPECT_EQ(telemetry.last_update(), Time::FromMicroseconds(10));
  EXPECT_EQ(telemetry.site_label(site), "port0");
}

TEST(TelemetryTest, HeavyHittersFindTheHeavyFlows) {
  SketchConfig config;
  config.enabled = true;
  config.heavy_hitters = 4;
  SketchTelemetry telemetry(config);
  PacketTracer* tap = telemetry.PortTap(telemetry.RegisterSite("p"));

  Time now = Time::Zero();
  // Flows 0..3 send 50 packets each, flows 4..40 one packet each.
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t f = 0; f < 4; ++f) {
      now += Time::FromMicroseconds(10);
      tap->OnEnqueue(MakePacket(f, 1500), now, QueueSnapshot{1, 1500});
    }
  }
  for (std::uint32_t f = 4; f < 41; ++f) {
    now += Time::FromMicroseconds(10);
    tap->OnEnqueue(MakePacket(f, 100), now, QueueSnapshot{1, 100});
  }

  const auto hitters = telemetry.HeavyHitters();
  ASSERT_EQ(hitters.size(), 4u);
  for (const auto& hh : hitters) {
    EXPECT_LT(hh.flow.src, 4u);
    EXPECT_GE(hh.estimated_bytes, 50u * 1500u);
  }
}

TEST(TelemetryTest, ExactMirrorAgreesWithSketchOnLightLoad) {
  SketchConfig config;
  config.enabled = true;
  config.track_exact = true;
  SketchTelemetry telemetry(config);
  PacketTracer* tap = telemetry.PortTap(telemetry.RegisterSite("p"));

  Time now = Time::Zero();
  for (int i = 0; i < 200; ++i) {
    now += Time::FromMicroseconds(50);
    tap->OnEnqueue(MakePacket(7, 1500), now, QueueSnapshot{1, 1500});
  }
  const FlowKey flow{7, 200, 4000, 80};
  EXPECT_EQ(telemetry.ExactFlowBytes(flow), 200u * 1500u);
  // Conservative update: estimate >= exact; with one flow, equal.
  EXPECT_EQ(telemetry.EstimateFlowBytes(flow), 200u * 1500u);
  // Same windowing on both sides: rates agree.
  const double exact = telemetry.ExactRateBps(flow, now);
  const double est = telemetry.EstimateRateBps(flow, now);
  EXPECT_GT(exact, 0.0);
  EXPECT_NEAR(est, exact, exact * 1e-9);
  EXPECT_EQ(telemetry.ExactFlowCount(), 1u);
  const auto top = telemetry.ExactTopFlows(5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].estimated_bytes, 200u * 1500u);
}

TEST(TelemetryTest, MemoryBudgetIsRespected) {
  for (const std::size_t kb : {8u, 64u, 256u}) {
    SketchConfig config;
    config.enabled = true;
    config.memory_kb = kb;
    SketchTelemetry telemetry(config);
    // The flow-keyed state must stay within ~2x of the budget (the RTT
    // ring's fixed histograms dominate tiny budgets, so allow headroom at
    // 8 KB), and must scale with it.
    EXPECT_LE(telemetry.FlowSketchMemoryBytes(), kb * 1024 + 16 * 1024);
  }
  SketchConfig small, big;
  small.enabled = big.enabled = true;
  small.memory_kb = 16;
  big.memory_kb = 128;
  EXPECT_LT(SketchTelemetry(small).FlowSketchMemoryBytes(),
            SketchTelemetry(big).FlowSketchMemoryBytes());
}

TEST(TelemetryTest, RttSamplesFlowThroughTransportTracerSeam) {
  SketchConfig config;
  config.enabled = true;
  SketchTelemetry telemetry(config);
  TransportTracer& tracer = telemetry;
  const FlowKey flow{1, 2, 3, 4};
  tracer.OnRttSample(flow, Time::FromMicroseconds(10),
                     Time::FromMicroseconds(300));
  tracer.OnRttSample(flow, Time::FromMicroseconds(20),
                     Time::FromMicroseconds(450));
  EXPECT_EQ(telemetry.rtt_samples_offered(), 2u);
  EXPECT_EQ(telemetry.rtt_samples_admitted(), 1u);  // 450 > current min
  EXPECT_EQ(telemetry.last_update(), Time::FromMicroseconds(20));
}

// --- Estimator ------------------------------------------------------------

TEST(EstimatorTest, InvalidWithoutSamplesValidWithThem) {
  SketchConfig config;
  config.enabled = true;
  SketchTelemetry telemetry(config);
  EXPECT_FALSE(EstimateFromSketch(telemetry, Time::Zero()).valid);

  TransportTracer& tracer = telemetry;
  for (std::uint64_t f = 0; f < 50; ++f) {
    tracer.OnRttSample(FlowKey{static_cast<std::uint32_t>(f), 9, 1, 2},
                       Time::FromMicroseconds(100),
                       Time::FromMicroseconds(200.0 + static_cast<double>(f)));
  }
  const SketchRttEstimate estimate =
      EstimateFromSketch(telemetry, Time::FromMicroseconds(100));
  EXPECT_TRUE(estimate.valid);
  // A first sample can be rejected when the flow collides with lower
  // minima on every row, so admitted <= offered; the estimate reports the
  // telemetry's own admitted count.
  EXPECT_EQ(estimate.samples, telemetry.rtt_samples_admitted());
  EXPECT_GT(estimate.samples, 40u);
  EXPECT_EQ(estimate.offered, 50u);
  EXPECT_GT(estimate.p90_us, estimate.p50_us * 0.9);
  EXPECT_GE(estimate.p99_us, estimate.p90_us);
  EXPECT_GT(estimate.mean_us, 0.0);

  const EcnSharpConfig derived = SketchRuleOfThumb(estimate, 1.0);
  const EcnSharpConfig expected =
      RuleOfThumbConfig(Time::FromMicroseconds(estimate.p90_us),
                        Time::FromMicroseconds(estimate.mean_us), 1.0);
  EXPECT_EQ(derived.ins_target, expected.ins_target);
  EXPECT_EQ(derived.pst_target, expected.pst_target);
  EXPECT_EQ(derived.pst_interval, expected.pst_interval);
}

// --- NearestRank / RttStats metadata --------------------------------------

TEST(NearestRankTest, MatchesPercentileSortedSelection) {
  // PercentileSorted picks sorted[idx]; NearestRank must return idx + 1.
  const std::vector<double> sorted{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  for (const double p : {1.0, 50.0, 90.0, 99.0, 100.0}) {
    const std::size_t rank = NearestRank(sorted.size(), p);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, sorted.size());
    EXPECT_EQ(sorted[rank - 1], PercentileSorted(sorted, p)) << "p=" << p;
  }
  EXPECT_EQ(NearestRank(0, 90.0), 0u);
  EXPECT_EQ(NearestRank(1, 99.0), 1u);
}

TEST(RttStatsTest, CarriesPercentileRankMetadata) {
  std::vector<double> rtts;
  for (int i = 1; i <= 200; ++i) rtts.push_back(static_cast<double>(i));
  const RttStats stats = ComputeRttStats(rtts);
  EXPECT_EQ(stats.samples, 200u);
  EXPECT_EQ(stats.p90_rank, NearestRank(200, 90.0));
  EXPECT_EQ(stats.p99_rank, NearestRank(200, 99.0));
  // The rank names the order statistic the percentile value came from.
  EXPECT_DOUBLE_EQ(stats.p90_us, static_cast<double>(stats.p90_rank));

  const RttStats empty = ComputeRttStats({});
  EXPECT_EQ(empty.p90_rank, 0u);
  EXPECT_EQ(empty.p99_rank, 0u);
}

// --- Tee tracers ----------------------------------------------------------

class CountingTracer : public PacketTracer {
 public:
  void OnTransmit(const Packet&, Time) override { ++transmits; }
  void OnEnqueue(const Packet&, Time, const QueueSnapshot&) override {
    ++enqueues;
  }
  int transmits = 0;
  int enqueues = 0;
};

TEST(TeeTracerTest, ForwardsToBothAndToleratesNull) {
  CountingTracer a;
  CountingTracer b;
  TeeTracer tee(&a, &b);
  const Packet pkt = MakePacket(1, 100);
  tee.OnTransmit(pkt, Time::Zero());
  tee.OnEnqueue(pkt, Time::Zero(), QueueSnapshot{1, 100});
  EXPECT_EQ(a.transmits, 1);
  EXPECT_EQ(b.transmits, 1);
  EXPECT_EQ(a.enqueues, 1);
  EXPECT_EQ(b.enqueues, 1);

  TeeTracer half(&a, nullptr);
  half.OnTransmit(pkt, Time::Zero());  // must not crash
  EXPECT_EQ(a.transmits, 2);
}

class CountingTransportTracer : public TransportTracer {
 public:
  void OnRttSample(const FlowKey&, Time, Time) override { ++samples; }
  int samples = 0;
};

TEST(TeeTransportTracerTest, ForwardsToBothAndToleratesNull) {
  CountingTransportTracer a;
  CountingTransportTracer b;
  TeeTransportTracer tee(&a, &b);
  tee.OnRttSample(FlowKey{1, 2, 3, 4}, Time::Zero(),
                  Time::FromMicroseconds(100));
  EXPECT_EQ(a.samples, 1);
  EXPECT_EQ(b.samples, 1);
  TeeTransportTracer half(nullptr, &b);
  half.OnRttSample(FlowKey{1, 2, 3, 4}, Time::Zero(),
                   Time::FromMicroseconds(100));
  EXPECT_EQ(b.samples, 2);
}

// --- Experiment integration ----------------------------------------------

TEST(SketchIntegrationTest, DisabledByDefaultAndResultCarriesNoTelemetry) {
  DumbbellExperimentConfig config;
  config.flows = 40;
  config.load = 0.4;
  config.seed = 5;
  const ExperimentResult result = RunDumbbell(config);
  EXPECT_EQ(result.sketch, nullptr);
}

TEST(SketchIntegrationTest, EnablingSketchesDoesNotPerturbTheRun) {
  DumbbellExperimentConfig config;
  config.flows = 60;
  config.load = 0.5;
  config.seed = 7;
  const ExperimentResult plain = RunDumbbell(config);

  config.sketch.enabled = true;
  const ExperimentResult sketched = RunDumbbell(config);

  // Telemetry is passive: byte-identical simulation outcome.
  EXPECT_DOUBLE_EQ(plain.overall.avg_us, sketched.overall.avg_us);
  EXPECT_DOUBLE_EQ(plain.large_flows.avg_us, sketched.large_flows.avg_us);
  EXPECT_EQ(plain.flows_completed, sketched.flows_completed);
  EXPECT_EQ(plain.bottleneck.ce_marked, sketched.bottleneck.ce_marked);

  ASSERT_NE(sketched.sketch, nullptr);
  EXPECT_GT(sketched.sketch->packets_observed(), 0u);
  EXPECT_GT(sketched.sketch->rtt_samples_offered(), 0u);
  EXPECT_GT(sketched.sketch->site_count(), 0u);
}

TEST(SketchIntegrationTest, SketchCoexistsWithFlightRecorder) {
  DumbbellExperimentConfig config;
  config.flows = 40;
  config.load = 0.5;
  config.seed = 7;
  config.sketch.enabled = true;
  config.trace.enabled = true;
  const ExperimentResult result = RunDumbbell(config);
  ASSERT_NE(result.sketch, nullptr);
  ASSERT_NE(result.trace, nullptr);
  // Both observers saw the same port traffic through the tee.
  EXPECT_GT(result.sketch->packets_observed(), 0u);
  EXPECT_GT(result.trace->total_events(), 0u);
}

TEST(SketchIntegrationTest, SketchEstimatorRunCompletes) {
  LeafSpineExperimentConfig config;
  config.flows = 40;
  config.load = 0.5;
  config.seed = 3;
  config.sketch.enabled = true;
  config.estimator = EcnEstimator::kSketch;
  config.scheme = Scheme::kEcnSharp;
  ScenarioAction reest;
  reest.kind = ScenarioActionKind::kReestimateEcnSharp;
  reest.at = Time::Milliseconds(2);
  config.scenario.actions.push_back(reest);
  const ExperimentResult result = RunLeafSpine(config);
  EXPECT_EQ(result.flows_completed, 40u);
  ASSERT_NE(result.sketch, nullptr);
  EXPECT_GT(result.sketch->packets_observed(), 0u);
}

TEST(SketchExportTest, JsonIsDeterministicAndCarriesSchema) {
  SketchConfig config;
  config.enabled = true;
  SketchTelemetry telemetry(config);
  PacketTracer* tap = telemetry.PortTap(telemetry.RegisterSite("p0"));
  Time now = Time::Zero();
  for (int i = 0; i < 20; ++i) {
    now += Time::FromMicroseconds(100);
    tap->OnEnqueue(MakePacket(static_cast<std::uint32_t>(i % 3), 1500), now,
                   QueueSnapshot{1, 1500});
  }
  static_cast<TransportTracer&>(telemetry).OnRttSample(
      FlowKey{1, 200, 4000, 80}, now, Time::FromMicroseconds(250));

  const Json doc = SketchToJson(telemetry, now);
  const std::string dump = doc.Dump();
  EXPECT_EQ(dump, SketchToJson(telemetry, now).Dump());
  EXPECT_NE(doc.Find("config"), nullptr);
  EXPECT_NE(doc.Find("totals"), nullptr);
  EXPECT_NE(doc.Find("sites"), nullptr);
  EXPECT_NE(doc.Find("rtt_estimate"), nullptr);
  EXPECT_NE(doc.Find("heavy_hitters"), nullptr);
  const Json* totals = doc.Find("totals");
  EXPECT_EQ(totals->Find("packets_observed")->AsUInt(), 20u);
}

}  // namespace
}  // namespace ecnsharp
