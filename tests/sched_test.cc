// DWRR scheduler tests: classification, weighted sharing, work conservation,
// per-class AQM isolation.
#include "sched/dwrr_queue_disc.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "aqm/tcn.h"
#include "core/ecn_sharp.h"
#include "net/egress_port.h"
#include "sim/simulator.h"

namespace ecnsharp {
namespace {

std::unique_ptr<Packet> ClassedPacket(std::uint8_t cls,
                                      std::uint32_t bytes = 1500) {
  auto pkt = std::make_unique<Packet>();
  pkt->flow = FlowKey{0, 1, cls, 80};
  pkt->traffic_class = cls;
  pkt->size_bytes = bytes;
  pkt->ecn = EcnCodepoint::kEct0;
  return pkt;
}

DwrrQueueDisc MakeDwrr(std::vector<std::uint32_t> weights,
                       std::uint64_t capacity = 1ull << 24) {
  std::vector<DwrrQueueDisc::ClassConfig> classes;
  for (const std::uint32_t w : weights) {
    classes.push_back(DwrrQueueDisc::ClassConfig{w, nullptr});
  }
  return DwrrQueueDisc(capacity, std::move(classes));
}

TEST(DwrrTest, SingleClassBehavesFifo) {
  DwrrQueueDisc disc = MakeDwrr({1});
  for (std::uint16_t i = 0; i < 5; ++i) {
    auto pkt = ClassedPacket(0);
    pkt->flow.src_port = i;
    disc.Enqueue(std::move(pkt), Time::Zero());
  }
  for (std::uint16_t i = 0; i < 5; ++i) {
    auto pkt = disc.Dequeue(Time::Zero());
    ASSERT_NE(pkt, nullptr);
    EXPECT_EQ(pkt->flow.src_port, i);
  }
  EXPECT_EQ(disc.Dequeue(Time::Zero()), nullptr);
}

TEST(DwrrTest, EqualWeightsAlternate) {
  DwrrQueueDisc disc = MakeDwrr({1, 1});
  for (int i = 0; i < 10; ++i) {
    disc.Enqueue(ClassedPacket(0), Time::Zero());
    disc.Enqueue(ClassedPacket(1), Time::Zero());
  }
  std::map<std::uint8_t, int> first_ten;
  for (int i = 0; i < 10; ++i) {
    ++first_ten[disc.Dequeue(Time::Zero())->traffic_class];
  }
  EXPECT_EQ(first_ten[0], 5);
  EXPECT_EQ(first_ten[1], 5);
}

TEST(DwrrTest, WeightsGovernServiceShares) {
  // Weights 2:1:1 (the Fig. 13 configuration): with all classes backlogged,
  // class 0 receives half the service.
  DwrrQueueDisc disc = MakeDwrr({2, 1, 1});
  for (int i = 0; i < 200; ++i) {
    disc.Enqueue(ClassedPacket(0), Time::Zero());
    disc.Enqueue(ClassedPacket(1), Time::Zero());
    disc.Enqueue(ClassedPacket(2), Time::Zero());
  }
  std::map<std::uint8_t, int> served;
  for (int i = 0; i < 200; ++i) {
    ++served[disc.Dequeue(Time::Zero())->traffic_class];
  }
  EXPECT_NEAR(served[0], 100, 4);
  EXPECT_NEAR(served[1], 50, 4);
  EXPECT_NEAR(served[2], 50, 4);
}

TEST(DwrrTest, ByteFairNotPacketFair) {
  // Class 0 sends 500 B packets, class 1 sends 1500 B: equal weights must
  // equalize bytes, so class 0 gets ~3x the packets.
  DwrrQueueDisc disc = MakeDwrr({1, 1});
  for (int i = 0; i < 600; ++i) disc.Enqueue(ClassedPacket(0, 500), Time::Zero());
  for (int i = 0; i < 200; ++i) disc.Enqueue(ClassedPacket(1, 1500), Time::Zero());
  std::map<std::uint8_t, std::uint64_t> bytes;
  for (int i = 0; i < 400; ++i) {
    auto pkt = disc.Dequeue(Time::Zero());
    bytes[pkt->traffic_class] += pkt->size_bytes;
  }
  const double ratio = static_cast<double>(bytes[0]) /
                       static_cast<double>(bytes[1]);
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(DwrrTest, WorkConservingWhenClassesIdle) {
  // Only class 2 is backlogged: it gets every slot regardless of weights.
  DwrrQueueDisc disc = MakeDwrr({8, 4, 1});
  for (int i = 0; i < 50; ++i) disc.Enqueue(ClassedPacket(2), Time::Zero());
  for (int i = 0; i < 50; ++i) {
    auto pkt = disc.Dequeue(Time::Zero());
    ASSERT_NE(pkt, nullptr);
    EXPECT_EQ(pkt->traffic_class, 2);
  }
}

TEST(DwrrTest, IdleClassDoesNotHoardCredit) {
  DwrrQueueDisc disc = MakeDwrr({1, 1});
  // Class 0 alone for a long time...
  for (int i = 0; i < 100; ++i) disc.Enqueue(ClassedPacket(0), Time::Zero());
  for (int i = 0; i < 100; ++i) disc.Dequeue(Time::Zero());
  // ...then both become active: shares must be immediately ~equal, not
  // skewed by credit accumulated while class 1 was idle.
  for (int i = 0; i < 100; ++i) {
    disc.Enqueue(ClassedPacket(0), Time::Zero());
    disc.Enqueue(ClassedPacket(1), Time::Zero());
  }
  std::map<std::uint8_t, int> served;
  for (int i = 0; i < 100; ++i) {
    ++served[disc.Dequeue(Time::Zero())->traffic_class];
  }
  EXPECT_NEAR(served[0], 50, 2);
  EXPECT_NEAR(served[1], 50, 2);
}

TEST(DwrrTest, SharedBufferOverflowDrops) {
  DwrrQueueDisc disc = MakeDwrr({1, 1}, /*capacity=*/4500);
  EXPECT_TRUE(disc.Enqueue(ClassedPacket(0), Time::Zero()));
  EXPECT_TRUE(disc.Enqueue(ClassedPacket(1), Time::Zero()));
  EXPECT_TRUE(disc.Enqueue(ClassedPacket(0), Time::Zero()));
  EXPECT_FALSE(disc.Enqueue(ClassedPacket(1), Time::Zero()));
  EXPECT_EQ(disc.stats().dropped_overflow, 1u);
}

TEST(DwrrTest, ClassifierClampsOutOfRangeClass) {
  DwrrQueueDisc disc = MakeDwrr({1, 1});
  disc.Enqueue(ClassedPacket(9), Time::Zero());  // clamped to last class
  EXPECT_EQ(disc.ClassSnapshot(1).packets, 1u);
}

TEST(DwrrTest, CustomClassifier) {
  std::vector<DwrrQueueDisc::ClassConfig> classes;
  classes.push_back({1, nullptr});
  classes.push_back({1, nullptr});
  DwrrQueueDisc disc(1ull << 20, std::move(classes),
                     [](const Packet& p) {
                       return p.size_bytes > 1000 ? std::size_t{1}
                                                  : std::size_t{0};
                     });
  disc.Enqueue(ClassedPacket(0, 500), Time::Zero());
  disc.Enqueue(ClassedPacket(0, 1500), Time::Zero());
  EXPECT_EQ(disc.ClassSnapshot(0).packets, 1u);
  EXPECT_EQ(disc.ClassSnapshot(1).packets, 1u);
}

TEST(DwrrTest, PerClassAqmSeesPerClassSojourn) {
  // Class 0 idles (no marks); class 1 has a standing queue long enough for
  // its own ECN# instance to mark — per-class isolation.
  std::vector<DwrrQueueDisc::ClassConfig> classes;
  EcnSharpConfig config;
  config.ins_target = Time::FromMicroseconds(100);
  config.pst_target = Time::FromMicroseconds(10);
  config.pst_interval = Time::FromMicroseconds(50);
  classes.push_back({1, std::make_unique<EcnSharpAqm>(config)});
  classes.push_back({1, std::make_unique<EcnSharpAqm>(config)});
  DwrrQueueDisc disc(1ull << 24, std::move(classes));

  // Feed class 1 at t, drain at t + 200 us (sojourn far above ins_target).
  int marked = 0;
  for (int round = 0; round < 20; ++round) {
    const Time t = Time::Microseconds(500 * round);
    disc.Enqueue(ClassedPacket(1), t);
    auto pkt = disc.Dequeue(t + Time::FromMicroseconds(200));
    if (pkt->IsCeMarked()) ++marked;
  }
  EXPECT_GT(marked, 10);

  // Class 0 packets drain instantly: never marked.
  disc.Enqueue(ClassedPacket(0), Time::Milliseconds(100));
  auto pkt = disc.Dequeue(Time::Milliseconds(100));
  EXPECT_FALSE(pkt->IsCeMarked());
}

TEST(DwrrTest, SnapshotAggregatesClasses) {
  DwrrQueueDisc disc = MakeDwrr({1, 1, 1});
  disc.Enqueue(ClassedPacket(0, 1000), Time::Zero());
  disc.Enqueue(ClassedPacket(1, 2000), Time::Zero());
  disc.Enqueue(ClassedPacket(2, 3000), Time::Zero());
  EXPECT_EQ(disc.Snapshot().packets, 3u);
  EXPECT_EQ(disc.Snapshot().bytes, 6000u);
  disc.Dequeue(Time::Zero());
  EXPECT_EQ(disc.Snapshot().packets, 2u);
}

TEST(DwrrTest, DrivesEgressPortCorrectly) {
  // End-to-end through an EgressPort: weighted shares appear on the wire.
  Simulator sim;
  struct Counter : PacketSink {
    std::map<std::uint8_t, int> counts;
    void HandlePacket(std::unique_ptr<Packet> pkt) override {
      ++counts[pkt->traffic_class];
    }
  } sink;
  std::vector<DwrrQueueDisc::ClassConfig> classes;
  classes.push_back({2, nullptr});
  classes.push_back({1, nullptr});
  auto disc = std::make_unique<DwrrQueueDisc>(1ull << 24, std::move(classes));
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  std::move(disc));
  port.ConnectTo(sink);
  for (int i = 0; i < 300; ++i) {
    port.Enqueue(ClassedPacket(0));
    port.Enqueue(ClassedPacket(1));
  }
  // Run long enough to transmit ~300 packets, not all 600.
  sim.RunUntil(DataRate::GigabitsPerSecond(10).TransmissionTime(1500 * 300));
  const int total = sink.counts[0] + sink.counts[1];
  ASSERT_GT(total, 200);
  EXPECT_NEAR(static_cast<double>(sink.counts[0]) / total, 2.0 / 3.0, 0.05);
}

}  // namespace
}  // namespace ecnsharp
