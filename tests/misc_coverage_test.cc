// Remaining small-surface coverage: logging, UniqueFunction, PortSink,
// stochastic DelayLine, RED mark-gap uniformization, DWRR+MQ-ECN in a
// running port, and equation helpers at extremes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "aqm/red.h"
#include "core/equations.h"
#include "net/delay_line.h"
#include "net/egress_port.h"
#include "sched/dwrr_queue_disc.h"
#include "sched/fifo_queue_disc.h"
#include "sim/logging.h"
#include "sim/simulator.h"
#include "sim/unique_function.h"

namespace ecnsharp {
namespace {

TEST(LoggingTest, LevelGating) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  Log(LogLevel::kDebug, "must not crash when disabled");
  Log(LogLevel::kError, "must not crash when enabled");
  SetLogLevel(old_level);
}

TEST(UniqueFunctionTest, MoveOnlyCaptures) {
  auto payload = std::make_unique<int>(42);
  UniqueFunction<int()> fn = [p = std::move(payload)] { return *p; };
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(), 42);
  UniqueFunction<int()> moved = std::move(fn);
  EXPECT_EQ(moved(), 42);
}

TEST(UniqueFunctionTest, ArgumentsForwarded) {
  UniqueFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
  UniqueFunction<void()> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
}

TEST(PortSinkTest, ForwardsIntoPort) {
  Simulator sim;
  struct Counter : PacketSink {
    int count = 0;
    void HandlePacket(std::unique_ptr<Packet>) override { ++count; }
  } sink;
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  std::make_unique<FifoQueueDisc>(1 << 20, nullptr));
  port.ConnectTo(sink);
  PortSink adapter(port);
  auto pkt = std::make_unique<Packet>();
  pkt->size_bytes = 1000;
  adapter.HandlePacket(std::move(pkt));
  sim.Run();
  EXPECT_EQ(sink.count, 1);
  EXPECT_EQ(port.counters().tx_packets, 1u);
}

TEST(DelayLineTest, StochasticStageCanReorder) {
  // A variable-latency component may reorder packets — by design, like a
  // real multi-worker middlebox. Verify delivery count and the possibility
  // of reordering with an adversarial sampler.
  Simulator sim;
  struct Order : PacketSink {
    std::vector<std::uint16_t> ports;
    void HandlePacket(std::unique_ptr<Packet> pkt) override {
      ports.push_back(pkt->flow.src_port);
    }
  } sink;
  int calls = 0;
  DelayLine line(sim, sink, [&calls]() {
    // First packet slow, second fast.
    return ++calls == 1 ? Time::Microseconds(100) : Time::Microseconds(1);
  });
  for (std::uint16_t i = 0; i < 2; ++i) {
    auto pkt = std::make_unique<Packet>();
    pkt->flow.src_port = i;
    pkt->size_bytes = 100;
    line.HandlePacket(std::move(pkt));
  }
  sim.Run();
  ASSERT_EQ(sink.ports.size(), 2u);
  EXPECT_EQ(sink.ports[0], 1);  // the fast one overtook
  EXPECT_EQ(sink.ports[1], 0);
}

TEST(RedTest, CountCorrectionSpreadsMarks) {
  // Floyd's count correction makes inter-mark gaps more uniform: with a
  // constant average queue in the band, the maximum gap between marks is
  // bounded (~2/p packets), unlike independent Bernoulli marking.
  RedConfig config;
  config.min_th_bytes = 10'000;
  config.max_th_bytes = 110'000;
  config.max_p = 0.1;
  config.weight = 1.0;
  RedAqm aqm(config, 9);
  int since_last = 0;
  int max_gap = 0;
  for (int i = 0; i < 20'000; ++i) {
    Packet pkt;
    pkt.size_bytes = 1500;
    pkt.ecn = EcnCodepoint::kEct0;
    aqm.AllowEnqueue(pkt, QueueSnapshot{40, 60'000}, Time::Microseconds(i));
    if (pkt.IsCeMarked()) {
      max_gap = std::max(max_gap, since_last);
      since_last = 0;
    } else {
      ++since_last;
    }
  }
  // p_b at avg 60KB = 0.05 -> uniformized gap bounded by ~1/p_b = 20.
  EXPECT_LE(max_gap, 25);
}

TEST(MqEcnPortTest, EndToEndThroughEgressPort) {
  // MQ-ECN marking composes with a transmitting port: a saturated class
  // gets CE marks while a sparse class stays clean.
  Simulator sim;
  struct MarkCounter : PacketSink {
    int marked[2] = {0, 0};
    int total[2] = {0, 0};
    void HandlePacket(std::unique_ptr<Packet> pkt) override {
      ++total[pkt->traffic_class];
      if (pkt->IsCeMarked()) ++marked[pkt->traffic_class];
    }
  } sink;
  std::vector<DwrrQueueDisc::ClassConfig> classes;
  classes.push_back({1, nullptr});
  classes.push_back({1, nullptr});
  auto disc = std::make_unique<DwrrQueueDisc>(1ull << 24, std::move(classes));
  disc->EnableMqEcn(30'000);
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  std::move(disc));
  port.ConnectTo(sink);
  // Saturate class 0 (well beyond its 15KB share), trickle class 1.
  for (int i = 0; i < 100; ++i) {
    auto pkt = std::make_unique<Packet>();
    pkt->traffic_class = 0;
    pkt->size_bytes = 1500;
    pkt->ecn = EcnCodepoint::kEct0;
    port.Enqueue(std::move(pkt));
  }
  auto sparse = std::make_unique<Packet>();
  sparse->traffic_class = 1;
  sparse->size_bytes = 1500;
  sparse->ecn = EcnCodepoint::kEct0;
  port.Enqueue(std::move(sparse));
  sim.Run();
  EXPECT_EQ(sink.total[0], 100);
  EXPECT_GT(sink.marked[0], 50);
  EXPECT_EQ(sink.marked[1], 0);
}

TEST(EquationsTest, ExtremeInputs) {
  // Zero RTT or zero lambda yield zero thresholds; scaling is linear in C.
  EXPECT_EQ(IdealMarkingThresholdBytes(1.0, DataRate::GigabitsPerSecond(10),
                                       Time::Zero()),
            0u);
  EXPECT_EQ(IdealMarkingThresholdBytes(0.0, DataRate::GigabitsPerSecond(10),
                                       Time::Microseconds(200)),
            0u);
  EXPECT_EQ(IdealMarkingThresholdBytes(1.0, DataRate::GigabitsPerSecond(100),
                                       Time::Microseconds(200)),
            10 * IdealMarkingThresholdBytes(
                     1.0, DataRate::GigabitsPerSecond(10),
                     Time::Microseconds(200)));
  EXPECT_EQ(SojournMarkingThreshold(0.0, Time::Microseconds(200)),
            Time::Zero());
}

}  // namespace
}  // namespace ecnsharp
