// Tofino emulation tests: register single-access constraint, the §4.1 time
// emulation (Algorithm 2) across wraparounds, and equivalence of the
// match-action ECN# pipeline with the reference algorithm.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/ecn_sharp.h"
#include "sim/random.h"
#include "tofino/ecn_sharp_pipeline.h"
#include "tofino/register.h"
#include "tofino/time_emulator.h"

namespace ecnsharp {
namespace {

// --------------------------- RegisterArray ---------------------------------

TEST(RegisterArrayTest, SingleAccessPerPassAllowed) {
  RegisterArray<std::uint32_t> reg("r", 4);
  PassContext pass;
  const std::uint32_t out = reg.Execute(2, pass, [](std::uint32_t& cell) {
    cell += 7;
    return cell;
  });
  EXPECT_EQ(out, 7u);
  EXPECT_EQ(reg.Peek(2), 7u);
}

TEST(RegisterArrayTest, SecondAccessInSamePassThrows) {
  // This is exactly the Fig. 4b failure mode: a control-flow translation
  // that reads first_above_time in one table and writes it in another.
  RegisterArray<std::uint32_t> reg("first_above_time", 1);
  PassContext pass;
  reg.Execute(0, pass, [](std::uint32_t& cell) { return cell; });
  EXPECT_THROW(
      reg.Execute(0, pass, [](std::uint32_t& cell) { return cell; }),
      PipelineConstraintError);
}

TEST(RegisterArrayTest, FreshPassResetsConstraint) {
  RegisterArray<std::uint32_t> reg("r", 1);
  for (int i = 0; i < 10; ++i) {
    PassContext pass;
    reg.Execute(0, pass, [](std::uint32_t& cell) { return ++cell; });
  }
  EXPECT_EQ(reg.Peek(0), 10u);
}

TEST(RegisterArrayTest, ControlPlaneBypassesConstraint) {
  RegisterArray<std::uint32_t> reg("r", 2);
  PassContext pass;
  reg.Execute(1, pass, [](std::uint32_t& cell) { return cell; });
  reg.ControlPlaneWrite(1, 99);  // allowed any time
  EXPECT_EQ(reg.Peek(1), 99u);
}

// --------------------------- TimeEmulator ----------------------------------

TEST(TimeEmulatorTest, MatchesReferenceForMonotonicSmallTimes) {
  TimeEmulator emu;
  for (std::uint64_t ns = 0; ns < 50'000'000; ns += 1'234'567) {
    PassContext pass;
    EXPECT_EQ(emu.CurrentTimeTicks(ns, pass), TimeEmulator::ReferenceTicks(ns))
        << "at ns=" << ns;
  }
}

TEST(TimeEmulatorTest, SameTickTwiceDoesNotAdvanceClock) {
  // Two packets within the same 1.024 us tick: the emulated time must not
  // jump (the listing's `<=` would add a spurious 2^22 ticks here).
  TimeEmulator emu;
  PassContext p1;
  const std::uint32_t t1 = emu.CurrentTimeTicks(5000, p1);
  PassContext p2;
  const std::uint32_t t2 = emu.CurrentTimeTicks(5100, p2);  // same tick
  EXPECT_EQ(t1, t2);
}

TEST(TimeEmulatorTest, SurvivesLower32BitWraparound) {
  // The 22-bit low part wraps every 2^32 ns ~ 4.29 s. Walk across several
  // wraps and verify against the unconstrained reference clock.
  TimeEmulator emu;
  const std::uint64_t step = 100'000'000;  // 100 ms
  for (std::uint64_t ns = 0; ns < 20'000'000'000ull; ns += step) {
    PassContext pass;
    EXPECT_EQ(emu.CurrentTimeTicks(ns, pass),
              TimeEmulator::ReferenceTicks(ns))
        << "at ns=" << ns;
  }
}

TEST(TimeEmulatorTest, RandomIncrementsProperty) {
  // Property: for any monotonically increasing ns sequence with gaps below
  // one low-part wrap period, the emulated clock equals the reference.
  TimeEmulator emu;
  Rng rng(5);
  std::uint64_t ns = 0;
  for (int i = 0; i < 100'000; ++i) {
    ns += static_cast<std::uint64_t>(rng.Uniform(1.0, 3e9));
    PassContext pass;
    ASSERT_EQ(emu.CurrentTimeTicks(ns, pass),
              TimeEmulator::ReferenceTicks(ns))
        << "at ns=" << ns;
  }
}

TEST(TimeEmulatorTest, UsesExactlyTwoRegisterAccessesPerPacket) {
  // Indirect check: a second call with the same PassContext must violate
  // the single-access constraint on the low register.
  TimeEmulator emu;
  PassContext pass;
  emu.CurrentTimeTicks(1000, pass);
  EXPECT_THROW(emu.CurrentTimeTicks(2000, pass), PipelineConstraintError);
}

// --------------------------- ECN# pipeline ---------------------------------

TofinoPipelineConfig TestPipelineConfig() {
  TofinoPipelineConfig config;
  config.aqm.ins_target = Time::FromMicroseconds(200);
  config.aqm.pst_target = Time::FromMicroseconds(85);
  config.aqm.pst_interval = Time::FromMicroseconds(200);
  config.num_ports = 4;
  return config;
}

TEST(EcnSharpPipelineTest, InstantaneousMarkingMatchesThreshold) {
  EcnSharpPipeline pipe(TestPipelineConfig());
  // Sojourn 300 us >> ins_target.
  EXPECT_TRUE(pipe.ProcessDequeue(0, 1'000'000, 1'300'000));
  // Sojourn 50 us: no condition holds.
  EXPECT_FALSE(pipe.ProcessDequeue(0, 2'000'000, 2'050'000));
}

TEST(EcnSharpPipelineTest, PortsAreIsolated) {
  EcnSharpPipeline pipe(TestPipelineConfig());
  // Build persistence on port 1 only.
  for (int t_us = 0; t_us < 1000; t_us += 10) {
    const std::uint64_t now = static_cast<std::uint64_t>(t_us) * 1000;
    pipe.ProcessDequeue(1, now - std::min<std::uint64_t>(now, 100'000), now);
  }
  EXPECT_GT(pipe.PeekMarkingCount(1), 0u);
  EXPECT_EQ(pipe.PeekMarkingCount(0), 0u);
  EXPECT_EQ(pipe.PeekMarkingCount(2), 0u);
}

TEST(EcnSharpPipelineTest, SqrtLutMatchesControlLaw) {
  EcnSharpPipeline pipe(TestPipelineConfig());
  const double interval = pipe.pst_interval_ticks();
  for (std::uint32_t count : {1u, 2u, 3u, 10u, 100u, 1000u}) {
    EXPECT_NEAR(pipe.StepTicks(count), interval / std::sqrt(count), 1.0)
        << "count=" << count;
  }
  // Beyond the LUT: clamps to the last entry instead of misbehaving.
  EXPECT_EQ(pipe.StepTicks(1'000'000), pipe.StepTicks(4096));
}

// Reference model in tick arithmetic: Algorithm 1 exactly as the pipeline
// should behave after time quantization, with the same LUT-based control
// law. The pipeline must match this bit-for-bit; the floating/ns reference
// EcnSharpAqm must agree closely (quantization aside), which is checked
// statistically below.
class TickReference {
 public:
  TickReference(std::uint32_t ins, std::uint32_t pst, std::uint32_t interval,
                const EcnSharpPipeline& lut_source)
      : ins_(ins), pst_(pst), interval_(interval), lut_(lut_source) {}

  bool Dequeue(std::uint32_t now, std::uint32_t sojourn) {
    const bool detected = Detect(now, sojourn);
    bool persistent = false;
    if (marking_state_) {
      if (!detected) {
        marking_state_ = false;
      } else if (now > next_) {
        ++count_;
        next_ += lut_.StepTicks(count_);
        persistent = true;
      }
    } else if (detected) {
      marking_state_ = true;
      count_ = 1;
      next_ = now + interval_;
      persistent = true;
    }
    return sojourn >= ins_ || persistent;
  }

 private:
  bool Detect(std::uint32_t now, std::uint32_t sojourn) {
    if (sojourn < pst_) {
      first_above_ = 0;
      return false;
    }
    if (first_above_ == 0) {
      first_above_ = now;
      return false;
    }
    return now > first_above_ + interval_;
  }

  std::uint32_t ins_, pst_, interval_;
  const EcnSharpPipeline& lut_;
  bool marking_state_ = false;
  std::uint32_t count_ = 0;
  std::uint32_t next_ = 0;
  std::uint32_t first_above_ = 0;
};

struct TraceParam {
  std::uint64_t seed;
  double max_sojourn_us;
  double max_gap_us;
};

class PipelineEquivalenceTest : public ::testing::TestWithParam<TraceParam> {
};

TEST_P(PipelineEquivalenceTest, PipelineMatchesTickReferenceExactly) {
  const TraceParam param = GetParam();
  EcnSharpPipeline pipe(TestPipelineConfig());
  TickReference ref(pipe.ins_target_ticks(), pipe.pst_target_ticks(),
                    pipe.pst_interval_ticks(), pipe);
  Rng rng(param.seed);
  std::uint64_t now_ns = 1'000'000;
  for (int i = 0; i < 50'000; ++i) {
    now_ns += static_cast<std::uint64_t>(
        rng.Uniform(0.5, param.max_gap_us) * 1000.0);
    const auto sojourn_ns = static_cast<std::uint64_t>(
        rng.Uniform(0.0, param.max_sojourn_us) * 1000.0);
    const bool pipeline_mark =
        pipe.ProcessDequeue(0, now_ns - sojourn_ns, now_ns);
    const bool ref_mark =
        ref.Dequeue(TimeEmulator::ReferenceTicks(now_ns),
                    static_cast<std::uint32_t>(sojourn_ns >> kTickShift));
    ASSERT_EQ(pipeline_mark, ref_mark) << "packet " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Traces, PipelineEquivalenceTest,
    ::testing::Values(TraceParam{1, 400.0, 20.0},   // mixed regime
                      TraceParam{2, 120.0, 5.0},    // persistent band only
                      TraceParam{3, 84.0, 10.0},    // never above pst_target
                      TraceParam{4, 1000.0, 50.0},  // bursty
                      TraceParam{5, 200.0, 2.0}),   // high dequeue rate
    [](const ::testing::TestParamInfo<TraceParam>& info) {
      return "trace" + std::to_string(info.param.seed);
    });

TEST(EcnSharpPipelineTest, AgreesWithReferenceAqmStatistically) {
  // Same random trace through the hardware pipeline and the ns-precision
  // reference AQM: mark totals must agree within the quantization noise.
  EcnSharpPipeline pipe(TestPipelineConfig());
  EcnSharpAqm reference(TestPipelineConfig().aqm);
  Rng rng(17);
  std::uint64_t now_ns = 1'000'000;
  int pipe_marks = 0;
  int ref_marks = 0;
  for (int i = 0; i < 100'000; ++i) {
    now_ns +=
        static_cast<std::uint64_t>(rng.Uniform(0.5, 10.0) * 1000.0);
    const auto sojourn_ns = static_cast<std::uint64_t>(
        rng.Uniform(0.0, 300.0) * 1000.0);
    if (pipe.ProcessDequeue(0, now_ns - sojourn_ns, now_ns)) ++pipe_marks;
    Packet pkt;
    pkt.size_bytes = 1500;
    pkt.ecn = EcnCodepoint::kEct0;
    reference.OnDequeue(pkt, QueueSnapshot{},
                        Time::Nanoseconds(static_cast<std::int64_t>(now_ns)),
                        Time::Nanoseconds(
                            static_cast<std::int64_t>(sojourn_ns)));
    if (pkt.IsCeMarked()) ++ref_marks;
  }
  ASSERT_GT(ref_marks, 0);
  const double ratio = static_cast<double>(pipe_marks) / ref_marks;
  EXPECT_NEAR(ratio, 1.0, 0.02);
}

}  // namespace
}  // namespace ecnsharp
