// Harness tests: scheme factory, parameter presets, env knobs, tables.
#include <gtest/gtest.h>

#include <cstdlib>

#include "aqm/codel.h"
#include "aqm/dctcp_red.h"
#include "aqm/tcn.h"
#include "core/ecn_sharp.h"
#include "harness/env.h"
#include "harness/experiment.h"
#include "harness/schemes.h"
#include "harness/table.h"
#include "sched/fifo_queue_disc.h"
#include "tofino/ecn_sharp_pipeline.h"

namespace ecnsharp {
namespace {

TEST(SchemesTest, NamesAreStable) {
  EXPECT_STREQ(SchemeName(Scheme::kDctcpRedTail), "DCTCP-RED-Tail");
  EXPECT_STREQ(SchemeName(Scheme::kEcnSharp), "ECN#");
  EXPECT_STREQ(SchemeName(Scheme::kEcnSharpTofino), "ECN#-Tofino");
  EXPECT_STREQ(SchemeName(Scheme::kDropTail), "DropTail");
}

TEST(SchemesTest, FactoryBuildsMatchingPolicies) {
  const SchemeParams params;
  EXPECT_NE(dynamic_cast<DctcpRedAqm*>(
                MakeAqm(Scheme::kDctcpRedTail, params).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<DctcpRedAqm*>(
                MakeAqm(Scheme::kDctcpRedAvg, params).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<CodelAqm*>(MakeAqm(Scheme::kCodel, params).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<TcnAqm*>(MakeAqm(Scheme::kTcn, params).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<EcnSharpAqm*>(
                MakeAqm(Scheme::kEcnSharp, params).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<TofinoEcnSharpAqm*>(
                MakeAqm(Scheme::kEcnSharpTofino, params).get()),
            nullptr);
  EXPECT_EQ(MakeAqm(Scheme::kDropTail, params), nullptr);
}

TEST(SchemesTest, TailAndAvgUseDistinctThresholds) {
  const SchemeParams params;
  const auto tail = MakeAqm(Scheme::kDctcpRedTail, params);
  const auto avg = MakeAqm(Scheme::kDctcpRedAvg, params);
  EXPECT_EQ(dynamic_cast<DctcpRedAqm&>(*tail).threshold_bytes(), 250'000u);
  EXPECT_EQ(dynamic_cast<DctcpRedAqm&>(*avg).threshold_bytes(), 80'000u);
}

TEST(SchemesTest, SimulationPresetMatchesSection53) {
  const SchemeParams params = SimulationSchemeParams();
  // C * p90RTT = 10 Gbps * 220 us = 275 KB; C * avgRTT = 171 KB.
  EXPECT_EQ(params.red_tail_threshold_bytes, 275'000u);
  EXPECT_EQ(params.red_avg_threshold_bytes, 171'000u);
  EXPECT_EQ(params.codel.interval, Time::FromMicroseconds(240));
  EXPECT_EQ(params.ecn_sharp.ins_target, Time::FromMicroseconds(220));
  EXPECT_EQ(params.ecn_sharp.pst_target, Time::FromMicroseconds(10));
}

TEST(SchemesTest, FifoDiscWiresAqm) {
  const SchemeParams params;
  auto disc = MakeFifoDisc(Scheme::kEcnSharp, params);
  auto* fifo = dynamic_cast<FifoQueueDisc*>(disc.get());
  ASSERT_NE(fifo, nullptr);
  EXPECT_EQ(fifo->capacity_bytes(), params.buffer_bytes);
  EXPECT_NE(dynamic_cast<EcnSharpAqm*>(fifo->aqm()), nullptr);
}

TEST(EnvTest, IntAndDoubleParsing) {
  ::setenv("ECNSHARP_TEST_INT", "1234", 1);
  EXPECT_EQ(EnvInt("ECNSHARP_TEST_INT", 7), 1234);
  EXPECT_EQ(EnvInt("ECNSHARP_TEST_MISSING", 7), 7);
  ::setenv("ECNSHARP_TEST_DBL", "0.75", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("ECNSHARP_TEST_DBL", 0.1), 0.75);
  ::setenv("ECNSHARP_TEST_EMPTY", "", 1);
  EXPECT_EQ(EnvInt("ECNSHARP_TEST_EMPTY", 9), 9);
  ::unsetenv("ECNSHARP_TEST_INT");
  ::unsetenv("ECNSHARP_TEST_DBL");
  ::unsetenv("ECNSHARP_TEST_EMPTY");
}

TEST(EnvTest, BenchFlowCountPrecedence) {
  ::unsetenv("ECNSHARP_FLOWS");
  ::unsetenv("ECNSHARP_FULL");
  EXPECT_EQ(BenchFlowCount(100, 500), 100u);
  ::setenv("ECNSHARP_FULL", "1", 1);
  EXPECT_EQ(BenchFlowCount(100, 500), 500u);
  ::setenv("ECNSHARP_FLOWS", "42", 1);
  EXPECT_EQ(BenchFlowCount(100, 500), 42u);
  ::unsetenv("ECNSHARP_FLOWS");
  ::unsetenv("ECNSHARP_FULL");
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(10.0, 0), "10");
  EXPECT_EQ(TablePrinter::FmtUs(123.4), "123.4us");
  EXPECT_EQ(TablePrinter::FmtUs(25000.0), "25.0ms");
}

TEST(ExperimentTest, DumbbellResultIsDeterministicForSeed) {
  DumbbellExperimentConfig config;
  config.flows = 60;
  config.load = 0.4;
  config.seed = 99;
  const ExperimentResult a = RunDumbbell(config);
  const ExperimentResult b = RunDumbbell(config);
  EXPECT_DOUBLE_EQ(a.overall.avg_us, b.overall.avg_us);
  EXPECT_EQ(a.bottleneck.ce_marked, b.bottleneck.ce_marked);
  EXPECT_EQ(a.flows_completed, 60u);
}

TEST(ExperimentTest, SeedChangesTraffic) {
  DumbbellExperimentConfig config;
  config.flows = 60;
  config.load = 0.4;
  config.seed = 1;
  const ExperimentResult a = RunDumbbell(config);
  config.seed = 2;
  const ExperimentResult b = RunDumbbell(config);
  EXPECT_NE(a.overall.avg_us, b.overall.avg_us);
}

TEST(ExperimentTest, QueueMonitoringOptIn) {
  DumbbellExperimentConfig config;
  config.flows = 40;
  config.load = 0.5;
  config.queue_sample_period = Time::FromMicroseconds(50);
  const ExperimentResult r = RunDumbbell(config);
  EXPECT_GT(r.max_queue_packets, 0u);
}

}  // namespace
}  // namespace ecnsharp
