// Differential property tests: the Tofino match-action pipeline vs the
// reference ECN# algorithm (core/EcnSharpAqm) on identical sojourn/time
// sequences.
//
// Unit convention that makes the comparison exact rather than approximate:
// all sequences are generated in whole 1.024 us ticks. The pipeline is
// driven with nanosecond timestamps of `tick << kTickShift` and thresholds
// of `ticks << kTickShift` ns (so its internal ToTicks truncation is exact),
// while the reference is driven with Time::Nanoseconds(tick) and thresholds
// of Time::Nanoseconds(ticks) — the same integer arithmetic in different
// clothing. Any divergence is then a real algorithmic difference (rounding,
// comparison direction, wraparound handling), not quantization noise.
//
// The pipeline's emulated clock deviates from the reference's unbounded
// Time in two ways the sequences must respect:
//   * the emulated 32-bit tick clock starts at `tick0 mod 2^22` and wraps
//     every ~73 minutes — covered deliberately by the wraparound tests, and
//     harmless elsewhere because the fixed pipeline compares elapsed time,
//     not absolute time;
//   * first_above_time uses cell value 0 as its "not armed" sentinel, so a
//     packet whose emulated time is exactly 0 would be misread. Generators
//     predict the emulated clock (base = tick0 rounded down to a 2^22
//     boundary) and nudge any colliding tick by one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/ecn_sharp.h"
#include "net/packet.h"
#include "sim/random.h"
#include "sim/time.h"
#include "tofino/ecn_sharp_pipeline.h"
#include "tofino/time_emulator.h"

namespace ecnsharp {
namespace {

// Drives the reference and the pipeline in lockstep over a tick-unit
// sequence and asserts identical mark decisions packet by packet.
class DifferentialHarness {
 public:
  DifferentialHarness(std::uint32_t ins_ticks, std::uint32_t pst_ticks,
                      std::uint32_t interval_ticks, std::uint64_t tick0,
                      std::size_t lut_entries = 4096)
      : reference_(MakeReferenceConfig(ins_ticks, pst_ticks, interval_ticks)),
        pipeline_(MakePipelineConfig(ins_ticks, pst_ticks, interval_ticks,
                                     lut_entries)),
        base_(tick0 - tick0 % (1ull << kLowBits)) {}

  // The emulated 32-bit clock value the pipeline will compute for `tick`
  // (valid while successive ticks advance by less than 2^22).
  std::uint32_t EmulatedTicks(std::uint64_t tick) const {
    return static_cast<std::uint32_t>(tick - base_);
  }

  // Skips the first_above sentinel collision: emulated time 0 means "not
  // armed", so bump the tick past it.
  std::uint64_t AvoidSentinel(std::uint64_t tick) const {
    return EmulatedTicks(tick) == 0 ? tick + 1 : tick;
  }

  // Feeds one departure at absolute time `tick` with the given sojourn to
  // both implementations; returns the (asserted-identical) mark decision.
  bool Step(std::uint64_t tick, std::uint32_t sojourn_ticks) {
    Packet pkt;
    pkt.ecn = EcnCodepoint::kEct0;  // MarkCe is a no-op on non-ECT packets
    reference_.OnDequeue(pkt, QueueSnapshot{}, Time::Nanoseconds(tick),
                         Time::Nanoseconds(sojourn_ticks));
    const bool ref_mark = pkt.IsCeMarked();

    const std::uint64_t egress_ns = tick << kTickShift;
    const std::uint64_t enqueue_ns =
        egress_ns - (static_cast<std::uint64_t>(sojourn_ticks) << kTickShift);
    const bool pipe_mark =
        pipeline_.ProcessDequeue(/*port=*/0, enqueue_ns, egress_ns);

    EXPECT_EQ(ref_mark, pipe_mark)
        << "tick=" << tick << " (emulated " << EmulatedTicks(tick)
        << ") sojourn=" << sojourn_ticks;
    CrossCheckMarkingCount(tick);
    return ref_mark;
  }

  // The pipeline clears its packed count on marking-state exit while the
  // reference merely drops the flag, so compare the count only while the
  // state machine is engaged.
  void CrossCheckMarkingCount(std::uint64_t tick) {
    const std::uint32_t ref_count =
        reference_.marking_state() ? reference_.marking_count() : 0;
    EXPECT_EQ(ref_count, pipeline_.PeekMarkingCount(0))
        << "marking-count divergence at tick " << tick;
  }

  EcnSharpAqm& reference() { return reference_; }
  EcnSharpPipeline& pipeline() { return pipeline_; }

 private:
  static EcnSharpConfig MakeReferenceConfig(std::uint32_t ins,
                                            std::uint32_t pst,
                                            std::uint32_t interval) {
    EcnSharpConfig config;
    config.ins_target = Time::Nanoseconds(ins);
    config.pst_target = Time::Nanoseconds(pst);
    config.pst_interval = Time::Nanoseconds(interval);
    return config;
  }

  static TofinoPipelineConfig MakePipelineConfig(std::uint32_t ins,
                                                 std::uint32_t pst,
                                                 std::uint32_t interval,
                                                 std::size_t lut_entries) {
    TofinoPipelineConfig config;
    config.aqm.ins_target =
        Time::Nanoseconds(static_cast<std::int64_t>(ins) << kTickShift);
    config.aqm.pst_target =
        Time::Nanoseconds(static_cast<std::int64_t>(pst) << kTickShift);
    config.aqm.pst_interval =
        Time::Nanoseconds(static_cast<std::int64_t>(interval) << kTickShift);
    config.num_ports = 1;
    config.sqrt_lut_entries = lut_entries;
    return config;
  }

  EcnSharpAqm reference_;
  EcnSharpPipeline pipeline_;
  std::uint64_t base_;
};

// ----------------------- control-law exactness ------------------------------

// The LUT must reproduce PersistentMarker's step arithmetic bit for bit:
// Time::operator*(Time, double) truncates, and the marker multiplies by the
// reciprocal square root. A LUT built with lround() (or with division) is
// off by one tick for many counts, which desynchronizes marking_next and
// every subsequent decision.
TEST(TofinoDifferentialTest, SqrtLutMatchesReferenceStepExactly) {
  for (const std::uint32_t interval_ticks :
       {97u, 195u, 200u, 391u, 1000u, 4096u}) {
    TofinoPipelineConfig config;
    config.aqm.pst_interval = Time::Nanoseconds(
        static_cast<std::int64_t>(interval_ticks) << kTickShift);
    config.num_ports = 1;
    const EcnSharpPipeline pipe(config);
    const Time interval = Time::Nanoseconds(interval_ticks);
    for (std::uint32_t count = 1; count <= 4096; ++count) {
      const Time step =
          interval * (1.0 / std::sqrt(static_cast<double>(count)));
      ASSERT_EQ(pipe.StepTicks(count),
                static_cast<std::uint32_t>(step.ns()))
          << "interval=" << interval_ticks << " count=" << count;
    }
  }
}

// ------------------------- boundary sequences -------------------------------

// Sojourns exactly at, one below, and one above both targets, with the
// detection window crossed exactly at, just before, and just after one
// pst_interval. These are the comparisons where an inclusive/exclusive or
// rounding mismatch shows first.
TEST(TofinoDifferentialTest, AtThresholdBoundariesMatch) {
  constexpr std::uint32_t kIns = 195;
  constexpr std::uint32_t kPst = 83;
  constexpr std::uint32_t kInterval = 195;
  const std::uint64_t tick0 = (7ull << kLowBits) + 12345;

  for (const std::uint32_t sojourn :
       {0u, kPst - 1, kPst, kPst + 1, kIns - 1, kIns, kIns + 1}) {
    DifferentialHarness h(kIns, kPst, kInterval, tick0);
    std::uint64_t tick = h.AvoidSentinel(tick0);
    // Arm detection, then probe the exact interval boundary: strict-greater
    // semantics mean now == first_above + interval must NOT detect.
    h.Step(tick, sojourn);
    h.Step(tick + kInterval, sojourn);      // boundary: no detection
    h.Step(tick + kInterval + 1, sojourn);  // first tick past the window
    // Instantaneous marking is inclusive at the target regardless of the
    // persistent machine; every step above asserted ref == pipe already,
    // so just confirm the expected absolute behaviour for the extremes.
    if (sojourn >= kIns) {
      Packet probe;
      probe.ecn = EcnCodepoint::kEct0;
      h.reference().OnDequeue(probe, QueueSnapshot{},
                              Time::Nanoseconds(tick + kInterval + 2),
                              Time::Nanoseconds(sojourn));
      EXPECT_TRUE(probe.IsCeMarked());
    }
  }
}

// A full marking episode at the boundary cadence: enter marking, then mark
// once per shrinking interval while the queue stays above target. The
// cross-check in Step() pins the marking count after every packet, so a
// one-tick drift in the LUT or a comparison-direction mismatch fails fast.
TEST(TofinoDifferentialTest, MarkingCadenceStaysIdentical) {
  constexpr std::uint32_t kIns = 100000;  // out of the way: persistent only
  constexpr std::uint32_t kPst = 83;
  constexpr std::uint32_t kInterval = 195;
  DifferentialHarness h(kIns, kPst, kInterval, 1ull << 30);

  std::uint64_t tick = h.AvoidSentinel(1ull << 30);
  std::uint32_t marks = 0;
  // Dense above-target departures: every 3 ticks for 40 intervals.
  for (std::uint64_t i = 0; i < (40ull * kInterval) / 3; ++i) {
    tick = h.AvoidSentinel(tick + 3);
    if (h.Step(tick, kPst + 2)) ++marks;
  }
  // One detection window passes before the first mark, then the cadence
  // shrinks as interval/sqrt(count): strictly more than one mark per
  // remaining interval on average.
  EXPECT_GE(marks, 39u);
  EXPECT_GT(h.pipeline().PeekMarkingCount(0), 30u);
}

// ------------------------- randomized trials --------------------------------

// 10k seeded trials of threshold-adjacent randomized sequences. Each trial
// draws fresh thresholds and a fresh start time (anywhere in the first ~12
// days of uptime), then feeds ~40 departures whose sojourns cluster on the
// exact comparison boundaries and whose gaps straddle the detection window.
TEST(TofinoDifferentialTest, RandomizedTrialsMatchReference) {
  constexpr int kTrials = 10000;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0x9e3779b9ull + trial);
    const auto interval =
        static_cast<std::uint32_t>(50 + rng.UniformInt(451));
    const auto pst = static_cast<std::uint32_t>(5 + rng.UniformInt(interval));
    const auto ins = pst + static_cast<std::uint32_t>(rng.UniformInt(400));
    const std::uint64_t tick0 = 1 + rng.UniformInt(1ull << 40);

    // Small LUT keeps 10k pipeline constructions cheap; trials are ~40
    // packets, so marking counts stay far below the clamp.
    DifferentialHarness h(ins, pst, interval, tick0, /*lut_entries=*/256);

    const std::uint32_t sojourns[] = {0,       pst > 0 ? pst - 1 : 0,
                                      pst,     pst + 1,
                                      ins - 1, ins,
                                      ins + 1, ins + 257};
    std::uint64_t tick = tick0;
    for (int i = 0; i < 40; ++i) {
      tick = h.AvoidSentinel(tick + 1 + rng.UniformInt(2ull * interval));
      std::uint32_t sojourn;
      if (rng.Uniform() < 0.75) {
        sojourn = sojourns[rng.UniformInt(8)];
      } else {
        sojourn = static_cast<std::uint32_t>(rng.UniformInt(2ull * ins + 2));
      }
      h.Step(tick, sojourn);
      if (::testing::Test::HasFailure()) {
        FAIL() << "trial " << trial << " diverged (ins=" << ins
               << " pst=" << pst << " interval=" << interval
               << " tick0=" << tick0 << ")";
      }
    }
  }
}

// A single long-lived instance (register state is never reset, as on a real
// switch) over 200k randomized departures. Below-target sojourns appear
// often enough that marking episodes stay far below the LUT clamp, matching
// the reference's unclamped arithmetic.
TEST(TofinoDifferentialTest, LongRunSingleInstanceMatches) {
  constexpr std::uint32_t kIns = 195;
  constexpr std::uint32_t kPst = 83;
  constexpr std::uint32_t kInterval = 195;
  DifferentialHarness h(kIns, kPst, kInterval, 977ull << kLowBits);

  Rng rng(4242);
  std::uint64_t tick = h.AvoidSentinel(977ull << kLowBits);
  std::uint64_t marks = 0;
  for (int i = 0; i < 200000; ++i) {
    tick = h.AvoidSentinel(tick + 1 + rng.UniformInt(kInterval / 2));
    const std::uint32_t sojourn =
        rng.Uniform() < 0.25
            ? static_cast<std::uint32_t>(rng.UniformInt(kPst))
            : static_cast<std::uint32_t>(kPst +
                                         rng.UniformInt(kIns - kPst + 40));
    if (h.Step(tick, sojourn)) ++marks;
    ASSERT_FALSE(::testing::Test::HasFailure()) << "diverged at step " << i;
  }
  // Sanity: the sequence actually exercised both marking conditions.
  EXPECT_GT(h.reference().instantaneous_marks(), 0u);
  EXPECT_GT(h.reference().persistent_marks(), 0u);
  EXPECT_GT(marks, 1000u);
}

// ------------------------- 32-bit wraparound --------------------------------

// Marches the emulated clock to the edge of its 32-bit range with sparse
// warmup departures (each gap just under the 22-bit low-counter period, so
// every wrap is observed), then runs a dense adversarial marking episode
// straddling the wrap. The unfixed pipeline fails here twice over: absolute
// comparisons (`now > cell + interval`, `now > next`) invert across the
// wrap, freezing or spuriously firing detection and cadence.
TEST(TofinoDifferentialTest, WrapStraddlingSequencesMatch) {
  constexpr std::uint32_t kPst = 83;
  constexpr std::uint32_t kInterval = 195;
  constexpr std::uint64_t kWarmupGap = (1ull << kLowBits) - 7;

  for (int variant = 0; variant < 8; ++variant) {
    Rng rng(1000 + variant);
    const std::uint32_t ins = 150 + static_cast<std::uint32_t>(
                                        rng.UniformInt(200));
    const std::uint64_t tick0 =
        (5ull << kLowBits) + 1 + rng.UniformInt(1ull << kLowBits);
    DifferentialHarness h(ins, kPst, kInterval, tick0);

    // Warmup: idle-queue departures walk the emulated clock to ~2^32.
    std::uint64_t tick = h.AvoidSentinel(tick0);
    h.Step(tick, 0);
    while (h.EmulatedTicks(tick) < 0xfff00000u) {
      tick = h.AvoidSentinel(tick + kWarmupGap);
      h.Step(tick, 0);
    }
    ASSERT_GE(h.EmulatedTicks(tick), 0xfff00000u);

    // Dense adversarial phase across the wrap: mostly above-target sojourns
    // with boundary values mixed in, small gaps so detection, marking
    // entry, cadence marks, and exits all land near the discontinuity.
    bool saw_low = false;
    int after_wrap = 2000;  // keep hammering well past the discontinuity
    std::uint64_t episode_marks = 0;
    for (int i = 0; i < 200000 && after_wrap > 0; ++i) {
      tick = h.AvoidSentinel(tick + 1 + rng.UniformInt(kInterval / 3));
      const std::uint32_t sojourn =
          rng.Uniform() < 0.15
              ? static_cast<std::uint32_t>(rng.UniformInt(kPst))
              : kPst + static_cast<std::uint32_t>(rng.UniformInt(ins));
      if (h.Step(tick, sojourn)) ++episode_marks;
      if (::testing::Test::HasFailure()) {
        FAIL() << "variant " << variant << " diverged near emulated tick "
               << h.EmulatedTicks(tick);
      }
      // The wrap shows as the emulated clock jumping below the start point.
      saw_low = saw_low || h.EmulatedTicks(tick) < 0x10000000u;
      if (saw_low) --after_wrap;
    }
    ASSERT_TRUE(saw_low) << "sequence never crossed the 32-bit wrap";
    EXPECT_GT(episode_marks, 0u);
  }
}

}  // namespace
}  // namespace ecnsharp
