// Tests for the thread-local Packet free-list pool behind
// Packet::operator new/delete.
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/packet.h"
#include "net/packet_pool.h"

namespace ecnsharp {
namespace {

// ECNSHARP_NO_PACKET_POOL turns recycling off (the sanitizer escape hatch);
// reuse-specific expectations don't hold then.
bool RecyclingDisabled() {
  const char* env = std::getenv("ECNSHARP_NO_PACKET_POOL");
  return env != nullptr && *env != '\0' && *env != '0';
}

TEST(PacketPoolTest, DestroyedPacketStorageIsRecycled) {
  if (RecyclingDisabled()) GTEST_SKIP() << "ECNSHARP_NO_PACKET_POOL set";
  PacketPool& pool = ThreadLocalPacketPool();
  const std::uint64_t base_alloc = pool.total_allocations();

  auto pkt = NewPacket();
  Packet* raw = pkt.get();
  EXPECT_EQ(pool.total_allocations(), base_alloc + 1);
  pkt.reset();

  auto next = NewPacket();
  // LIFO free list: the very next allocation reuses the block just freed.
  EXPECT_EQ(next.get(), raw);
  EXPECT_EQ(pool.total_allocations(), base_alloc + 2);
}

TEST(PacketPoolTest, RecycledPacketHasFreshFields) {
  if (RecyclingDisabled()) GTEST_SKIP() << "ECNSHARP_NO_PACKET_POOL set";
  auto pkt = NewPacket();
  Packet* raw = pkt.get();
  // Dirty every field a stale block could leak into the next packet.
  pkt->flow = FlowKey{7, 9, 1234, 80};
  pkt->type = PacketType::kAck;
  pkt->size_bytes = 1500;
  pkt->payload_bytes = 1460;
  pkt->seq = 999;
  pkt->ack = 1000;
  pkt->ece = true;
  pkt->cwr = true;
  pkt->psh = true;
  pkt->ecn = EcnCodepoint::kCe;
  pkt->traffic_class = 3;
  pkt->enqueue_time = Time::FromMicroseconds(55);
  pkt->sent_time = Time::FromMicroseconds(44);
  pkt.reset();

  auto fresh = NewPacket();
  ASSERT_EQ(fresh.get(), raw);  // same storage, reconstructed
  const Packet defaults;
  EXPECT_EQ(fresh->flow, defaults.flow);
  EXPECT_EQ(fresh->type, PacketType::kData);
  EXPECT_EQ(fresh->size_bytes, 0u);
  EXPECT_EQ(fresh->payload_bytes, 0u);
  EXPECT_EQ(fresh->seq, 0u);
  EXPECT_EQ(fresh->ack, 0u);
  EXPECT_FALSE(fresh->ece);
  EXPECT_FALSE(fresh->cwr);
  EXPECT_FALSE(fresh->psh);
  EXPECT_EQ(fresh->ecn, EcnCodepoint::kNotEct);
  EXPECT_EQ(fresh->traffic_class, 0u);
  EXPECT_EQ(fresh->enqueue_time, Time::Zero());
  EXPECT_EQ(fresh->sent_time, Time::Zero());
}

TEST(PacketPoolTest, SteadyStateChurnStopsFreshAllocations) {
  if (RecyclingDisabled()) GTEST_SKIP() << "ECNSHARP_NO_PACKET_POOL set";
  PacketPool& pool = ThreadLocalPacketPool();
  // Warm the pool to a working set of 32 packets.
  {
    std::vector<std::unique_ptr<Packet>> batch;
    for (int i = 0; i < 32; ++i) batch.push_back(NewPacket());
  }
  const std::uint64_t fresh_before = pool.fresh_allocations();
  const std::uint64_t total_before = pool.total_allocations();
  for (int round = 0; round < 100; ++round) {
    std::vector<std::unique_ptr<Packet>> batch;
    for (int i = 0; i < 32; ++i) batch.push_back(NewPacket());
  }
  EXPECT_EQ(pool.fresh_allocations(), fresh_before);  // all recycled
  EXPECT_EQ(pool.total_allocations(), total_before + 100 * 32);
  EXPECT_GE(pool.recycled_allocations(), 100u * 32u);
}

TEST(PacketPoolTest, MakeUniqueRoutesThroughPool) {
  PacketPool& pool = ThreadLocalPacketPool();
  const std::uint64_t before = pool.total_allocations();
  auto pkt = std::make_unique<Packet>();
  EXPECT_EQ(pool.total_allocations(), before + 1);
}

}  // namespace
}  // namespace ecnsharp
