// QueueMonitor and harness-level statistics tests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/egress_port.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"
#include "stats/fct_collector.h"
#include "stats/percentile.h"
#include "stats/queue_monitor.h"

namespace ecnsharp {
namespace {

std::unique_ptr<Packet> MakePacket(std::uint32_t bytes = 1500) {
  auto pkt = std::make_unique<Packet>();
  pkt->flow = FlowKey{0, 1, 1, 80};
  pkt->size_bytes = bytes;
  return pkt;
}

TEST(QueueMonitorTest, SamplesAtConfiguredPeriod) {
  Simulator sim;
  FifoQueueDisc disc(1ull << 20, nullptr);
  QueueMonitor monitor(sim, disc, Time::Microseconds(10));
  monitor.Run(Time::Zero(), Time::Microseconds(100));
  sim.Run();
  // Samples at 0, 10, ..., 100 us inclusive.
  ASSERT_EQ(monitor.samples().size(), 11u);
  EXPECT_EQ(monitor.samples()[3].at, Time::Microseconds(30));
}

TEST(QueueMonitorTest, ObservesQueueEvolution) {
  Simulator sim;
  FifoQueueDisc disc(1ull << 20, nullptr);
  QueueMonitor monitor(sim, disc, Time::Microseconds(10));
  monitor.Run(Time::Zero(), Time::Microseconds(100));
  // Fill the queue at t=25us, drain one at t=55us.
  sim.ScheduleAt(Time::Microseconds(25), [&disc, &sim] {
    disc.Enqueue(MakePacket(), sim.Now());
    disc.Enqueue(MakePacket(), sim.Now());
  });
  sim.ScheduleAt(Time::Microseconds(55),
                 [&disc, &sim] { disc.Dequeue(sim.Now()); });
  sim.Run();
  EXPECT_EQ(monitor.samples()[2].packets, 0u);   // t=20
  EXPECT_EQ(monitor.samples()[3].packets, 2u);   // t=30
  EXPECT_EQ(monitor.samples()[6].packets, 1u);   // t=60
  EXPECT_EQ(monitor.MaxPackets(), 2u);
}

TEST(QueueMonitorTest, WindowedAverage) {
  Simulator sim;
  FifoQueueDisc disc(1ull << 20, nullptr);
  QueueMonitor monitor(sim, disc, Time::Microseconds(10));
  monitor.Run(Time::Zero(), Time::Microseconds(100));
  sim.ScheduleAt(Time::Microseconds(45), [&disc, &sim] {
    disc.Enqueue(MakePacket(), sim.Now());
  });
  sim.Run();
  // Queue is 0 for samples <= 40 us, 1 afterwards.
  EXPECT_DOUBLE_EQ(
      monitor.AvgPackets(Time::Zero(), Time::Microseconds(40)), 0.0);
  EXPECT_DOUBLE_EQ(monitor.AvgPackets(Time::Microseconds(50),
                                      Time::Microseconds(100)),
                   1.0);
  EXPECT_NEAR(monitor.AvgPackets(), 6.0 / 11.0, 1e-9);
}

TEST(QueueMonitorTest, EmptyMonitorIsSafe) {
  Simulator sim;
  FifoQueueDisc disc(1ull << 20, nullptr);
  QueueMonitor monitor(sim, disc, Time::Microseconds(10));
  EXPECT_DOUBLE_EQ(monitor.AvgPackets(), 0.0);
  EXPECT_EQ(monitor.MaxPackets(), 0u);
}

TEST(SummarizeSamplesTest, EmptyInputIsAllZeros) {
  const SampleSummary s = SummarizeSamples({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p90, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(SummarizeSamplesTest, MatchesHandComputedStatistics) {
  // Unsorted on purpose: SummarizeSamples sorts its copy.
  const SampleSummary s = SummarizeSamples({30.0, 10.0, 50.0, 20.0, 40.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 30.0);
  // Sample stddev (n-1): sqrt(1000/4).
  EXPECT_NEAR(s.stddev, 15.8113883, 1e-6);
  EXPECT_DOUBLE_EQ(s.p50, 30.0);
  EXPECT_DOUBLE_EQ(s.p90, 50.0);
  EXPECT_DOUBLE_EQ(s.p99, 50.0);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
}

TEST(SummarizeSamplesTest, AgreesWithStandalonePercentileHelpers) {
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) values.push_back(static_cast<double>(i));
  const SampleSummary s = SummarizeSamples(values);
  EXPECT_DOUBLE_EQ(s.mean, Mean(values));
  EXPECT_DOUBLE_EQ(s.stddev, StdDev(values));
  EXPECT_DOUBLE_EQ(s.p50, Percentile(values, 50));
  EXPECT_DOUBLE_EQ(s.p90, Percentile(values, 90));
  EXPECT_DOUBLE_EQ(s.p99, Percentile(values, 99));
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(SummarizeSamplesTest, SingleSampleIsItsOwnEverything) {
  const SampleSummary s = SummarizeSamples({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(FctSummaryTest, ReportsP90AndStddev) {
  FctCollector collector;
  for (int i = 1; i <= 100; ++i) {
    FlowRecord record;
    record.size_bytes = static_cast<std::uint64_t>(i) * 1000;
    record.completion_time = Time::FromMicroseconds(i);
    collector.Record(record);
  }
  const FctSummary s = collector.Summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p90_us, 90.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  EXPECT_NEAR(s.stddev_us, 29.011492, 1e-5);
}

TEST(PortCountersTest, TrackTransmissions) {
  Simulator sim;
  struct Sink : PacketSink {
    void HandlePacket(std::unique_ptr<Packet>) override {}
  } sink;
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  std::make_unique<FifoQueueDisc>(1ull << 20, nullptr));
  port.ConnectTo(sink);
  port.Enqueue(MakePacket(1500));
  port.Enqueue(MakePacket(500));
  sim.Run();
  EXPECT_EQ(port.counters().tx_packets, 2u);
  EXPECT_EQ(port.counters().tx_bytes, 2000u);
}

}  // namespace
}  // namespace ecnsharp
