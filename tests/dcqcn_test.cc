// DCQCN tests: rate-control state machine, CNP generation, end-to-end
// behaviour with probabilistic marking, and the §3.5 ECN#+DCQCN combination.
#include "transport/dcqcn.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "aqm/red.h"
#include "core/ecn_sharp_prob.h"
#include "net/switch_node.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"

namespace ecnsharp {
namespace {

constexpr DataRate kRate = DataRate::GigabitsPerSecond(10);

// Two hosts through a switch whose egress to the receiver runs `aqm`.
struct DcqcnNet {
  Simulator sim;
  std::unique_ptr<SwitchNode> sw;
  std::unique_ptr<Host> sender;
  std::unique_ptr<Host> receiver;
  std::unique_ptr<DcqcnStack> sender_stack;
  std::unique_ptr<DcqcnStack> receiver_stack;
  EgressPort* bottleneck = nullptr;

  explicit DcqcnNet(std::unique_ptr<AqmPolicy> aqm,
                    const DcqcnConfig& config = DcqcnConfig{},
                    DataRate sender_nic_rate = DataRate::GigabitsPerSecond(
                        40)) {
    sw = std::make_unique<SwitchNode>(sim, "sw");
    sender = std::make_unique<Host>(sim, 0);
    receiver = std::make_unique<Host>(sim, 1);
    for (Host* h : {sender.get(), receiver.get()}) {
      auto nic = std::make_unique<EgressPort>(
          sim, h == sender.get() ? sender_nic_rate : kRate,
          Time::Microseconds(5),
          std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
      nic->ConnectTo(*sw);
      h->AttachNic(std::move(nic));
      const bool to_receiver = (h == receiver.get());
      auto port = std::make_unique<EgressPort>(
          sim, kRate, Time::Microseconds(5),
          std::make_unique<FifoQueueDisc>(
              1ull << 24, to_receiver ? std::move(aqm) : nullptr));
      port->ConnectTo(*h);
      EgressPort& ref = sw->AddPort(std::move(port));
      sw->AddRoute(h->address(), ref);
      if (to_receiver) bottleneck = &ref;
    }
    sender_stack = std::make_unique<DcqcnStack>(*sender, config);
    receiver_stack = std::make_unique<DcqcnStack>(*receiver, config);
  }
};

TEST(DcqcnTest, TransferCompletesWithoutCongestion) {
  DcqcnNet net(nullptr, DcqcnConfig{}, /*sender_nic_rate=*/kRate);
  std::optional<FlowRecord> done;
  net.sender_stack->StartFlow(1, 1'000'000,
                              [&done](const FlowRecord& r) { done = r; });
  net.sim.RunUntil(Time::Seconds(2));
  ASSERT_TRUE(done.has_value());
  // Line-rate pacing: 1 MB at ~10 Gbps ~ 0.85 ms including headers.
  EXPECT_LT(done->Fct(), Time::Milliseconds(2));
}

TEST(DcqcnTest, RateDropsOnCnpAndRecovers) {
  Simulator sim;
  Host host(sim, 0);
  auto nic = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(40), Time::Zero(),
      std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
  struct NullSink : PacketSink {
    void HandlePacket(std::unique_ptr<Packet>) override {}
  } sink;
  nic->ConnectTo(sink);
  host.AttachNic(std::move(nic));

  DcqcnConfig config;
  DcqcnSender sender(host, config, FlowKey{0, 1, 7, 4791}, 1ull << 30,
                     nullptr);
  sender.Start();
  sim.RunFor(Time::Microseconds(100));
  EXPECT_EQ(sender.current_rate(), config.line_rate);

  sender.OnCnp();
  // alpha ~1 (one 55 us decay tick may have fired): the first CNP roughly
  // halves the rate.
  EXPECT_NEAR(static_cast<double>(sender.current_rate().bps()),
              config.line_rate.bps() / 2.0, 5e7);
  EXPECT_GT(sender.alpha(), 0.99);

  // Fast recovery: each increase event moves halfway back to the target.
  sim.RunFor(Time::Milliseconds(3));
  EXPECT_GT(sender.current_rate().bps(), config.line_rate.bps() * 0.9);
}

TEST(DcqcnTest, AlphaDecaysWithoutCnps) {
  Simulator sim;
  Host host(sim, 0);
  auto nic = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(40), Time::Zero(),
      std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
  struct NullSink : PacketSink {
    void HandlePacket(std::unique_ptr<Packet>) override {}
  } sink;
  nic->ConnectTo(sink);
  host.AttachNic(std::move(nic));

  DcqcnConfig config;
  DcqcnSender sender(host, config, FlowKey{0, 1, 7, 4791}, 1ull << 30,
                     nullptr);
  sender.Start();
  sender.OnCnp();
  const double alpha_after_cnp = sender.alpha();
  sim.RunFor(Time::Milliseconds(2));
  EXPECT_LT(sender.alpha(), alpha_after_cnp * 0.95);
}

TEST(DcqcnTest, RepeatedCnpsFloorAtMinRate) {
  Simulator sim;
  Host host(sim, 0);
  auto nic = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(40), Time::Zero(),
      std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
  struct NullSink : PacketSink {
    void HandlePacket(std::unique_ptr<Packet>) override {}
  } sink;
  nic->ConnectTo(sink);
  host.AttachNic(std::move(nic));

  DcqcnConfig config;
  DcqcnSender sender(host, config, FlowKey{0, 1, 7, 4791}, 1ull << 30,
                     nullptr);
  sender.Start();
  for (int i = 0; i < 100; ++i) sender.OnCnp();
  EXPECT_GE(sender.current_rate().bps(), config.min_rate.bps());
}

TEST(DcqcnTest, CnpGenerationIsRateLimited) {
  // A CE-marking AQM that marks everything: CNPs must still be spaced by
  // cnp_interval.
  class MarkAll : public AqmPolicy {
   public:
    void OnDequeue(Packet& pkt, const QueueSnapshot&, Time, Time) override {
      pkt.MarkCe();
    }
    std::string name() const override { return "mark-all"; }
  };
  DcqcnNet net(std::make_unique<MarkAll>());
  std::optional<FlowRecord> done;
  net.sender_stack->StartFlow(1, 2'000'000,
                              [&done](const FlowRecord& r) { done = r; });
  net.sim.RunUntil(Time::Seconds(5));
  ASSERT_TRUE(done.has_value());
  // With every packet marked, the sender throttles hard but completes.
  EXPECT_GT(done->Fct(), Time::Milliseconds(2));
}

TEST(DcqcnTest, QueueControlledByProbabilisticRed) {
  // The classic DCQCN deployment: RED-style Kmin/Kmax marking at the
  // switch. The 40G sender into a 10G bottleneck must stabilize without
  // filling the buffer.
  RedConfig red;
  red.min_th_bytes = 30'000;
  red.max_th_bytes = 150'000;
  red.max_p = 0.1;
  red.weight = 0.1;
  DcqcnConfig config;
  config.line_rate = DataRate::GigabitsPerSecond(40);  // RDMA NIC at 40G
  DcqcnNet net(std::make_unique<RedAqm>(red, 3), config);
  std::optional<FlowRecord> done;
  net.sender_stack->StartFlow(1, 20'000'000,
                              [&done](const FlowRecord& r) { done = r; });
  std::uint32_t max_queue = 0;
  while (!done.has_value() && net.sim.Now() < Time::Seconds(5)) {
    net.sim.RunFor(Time::Microseconds(100));
    max_queue = std::max(max_queue,
                         net.bottleneck->queue_disc().Snapshot().packets);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(net.bottleneck->queue_disc().stats().dropped_overflow, 0u);
  EXPECT_GT(net.bottleneck->queue_disc().stats().ce_marked, 0u);
  // Goodput must stay reasonable (>= 4 Gbps over the transfer).
  const double gbps = 20'000'000 * 8.0 / done->Fct().ToSeconds() * 1e-9;
  EXPECT_GT(gbps, 4.0);
}

TEST(DcqcnTest, EcnSharpProbabilisticDrainsStandingQueue) {
  // §3.5: ECN# with a probabilistic instantaneous ramp works under DCQCN
  // and keeps the standing queue below what the plain ramp (RED-equivalent
  // thresholds) sustains, by marking on persistent congestion too.
  const auto run = [](std::unique_ptr<AqmPolicy> aqm) {
    DcqcnConfig config;
    config.line_rate = DataRate::GigabitsPerSecond(40);  // 40G NIC, 10G link
    DcqcnNet net(std::move(aqm), config);
    net.sender_stack->StartFlow(1, 1ull << 30, nullptr);
    // Let it reach steady state, then average the queue.
    net.sim.RunUntil(Time::Milliseconds(50));
    double sum = 0.0;
    int n = 0;
    while (net.sim.Now() < Time::Milliseconds(100)) {
      net.sim.RunFor(Time::Microseconds(100));
      sum += net.bottleneck->queue_disc().Snapshot().packets;
      ++n;
    }
    return sum / n;
  };

  EcnSharpProbConfig with_persistent;
  with_persistent.t_min = Time::FromMicroseconds(40);
  with_persistent.t_max = Time::FromMicroseconds(200);
  with_persistent.p_max = 0.1;
  with_persistent.pst_target = Time::FromMicroseconds(10);
  with_persistent.pst_interval = Time::FromMicroseconds(240);

  EcnSharpProbConfig ramp_only = with_persistent;
  ramp_only.pst_target = Time::Max() / 4;  // disable persistent marking

  const double with_pst = run(
      std::make_unique<EcnSharpProbabilisticAqm>(with_persistent, 5));
  const double without_pst =
      run(std::make_unique<EcnSharpProbabilisticAqm>(ramp_only, 5));
  EXPECT_LT(with_pst, without_pst);
}

}  // namespace
}  // namespace ecnsharp
