// Topology interface + ExperimentSession tests.
//
// The golden tests pin the exact results of all three runners, for every
// scheme family the paper compares, to the values the pre-ExperimentSession
// monoliths produced (captured at %.17g precision). Any change to the
// session's rng-draw order, event scheduling order, or run loop shows up
// here as a bit-level diff — the refactor's "byte-identical results"
// contract, kept enforced for future sessions.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "harness/schemes.h"
#include "harness/session.h"
#include "harness/trace_export.h"
#include "runner/job.h"
#include "runner/json_export.h"
#include "runner/sweep.h"
#include "sched/fifo_queue_disc.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sketch/telemetry.h"
#include "topo/composed.h"
#include "topo/dumbbell.h"
#include "topo/fat_tree.h"
#include "topo/leaf_spine.h"
#include "topo/topology.h"
#include "trace/trace_recorder.h"

namespace ecnsharp {
namespace {

// ---------------------------------------------------------------------------
// Topology interface on Dumbbell
// ---------------------------------------------------------------------------

TEST(DumbbellTopologyTest, EnumeratesSendersAsHosts) {
  Simulator sim;
  DumbbellConfig config;
  Dumbbell topo(sim, config, MakeFifoDisc(Scheme::kEcnSharp, SchemeParams()));
  Topology& iface = topo;

  EXPECT_EQ(iface.host_count(), config.senders);
  for (std::size_t i = 0; i < config.senders; ++i) {
    EXPECT_EQ(&iface.host(i), &topo.sender_host(i));
    EXPECT_EQ(&iface.stack(i), &topo.sender_stack(i));
  }
  EXPECT_EQ(iface.ReferenceCapacity().bps(), config.rate.bps());
  EXPECT_EQ(iface.IncastTarget(), topo.receiver_address());
  // Burst senders round-robin over the sender set.
  EXPECT_EQ(&iface.IncastSender(0), &topo.sender_stack(0));
  EXPECT_EQ(&iface.IncastSender(config.senders), &topo.sender_stack(0));
  EXPECT_EQ(&iface.IncastSender(config.senders + 2), &topo.sender_stack(2));
}

TEST(DumbbellTopologyTest, ResolvesScenarioPortIds) {
  Simulator sim;
  DumbbellConfig config;
  Dumbbell topo(sim, config, MakeFifoDisc(Scheme::kEcnSharp, SchemeParams()));
  Topology& iface = topo;

  EXPECT_EQ(iface.ResolvePort(-1), &topo.bottleneck_port());
  for (std::size_t i = 0; i < config.senders; ++i) {
    EXPECT_EQ(iface.ResolvePort(static_cast<int>(i)),
              &topo.sender_host(i).nic());
  }
  EXPECT_EQ(iface.ResolvePort(static_cast<int>(config.senders)), nullptr);

  ASSERT_EQ(iface.bottleneck_count(), 1u);
  EXPECT_EQ(&iface.bottleneck(0), &topo.bottleneck_port());
}

TEST(DumbbellTopologyTest, HostBaseRttIncludesExtras) {
  Simulator sim;
  DumbbellConfig config;
  config.senders = 3;
  Dumbbell topo(sim, config, MakeFifoDisc(Scheme::kEcnSharp, SchemeParams()));
  topo.SetSenderExtraDelays({Time::Zero(), Time::FromMicroseconds(30),
                             Time::FromMicroseconds(140)});
  Topology& iface = topo;
  EXPECT_EQ(iface.HostBaseRtt(0), config.base_rtt);
  EXPECT_EQ(iface.HostBaseRtt(1),
            config.base_rtt + Time::FromMicroseconds(30));
  EXPECT_EQ(iface.HostBaseRtt(2),
            config.base_rtt + Time::FromMicroseconds(140));
}

// ---------------------------------------------------------------------------
// Topology interface on LeafSpine
// ---------------------------------------------------------------------------

LeafSpineConfig SmallFabric() {
  LeafSpineConfig config;
  config.spines = 2;
  config.leaves = 2;
  config.hosts_per_leaf = 3;
  return config;
}

TEST(LeafSpineTopologyTest, EnumeratesEverySwitchPortAsBottleneck) {
  Simulator sim;
  const LeafSpineConfig config = SmallFabric();
  LeafSpine topo(sim, config, [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  EXPECT_EQ(iface.host_count(), 6u);
  // Each leaf: 3 down ports + 2 uplinks; each spine: 2 downlinks.
  const std::size_t expected = 2 * (3 + 2) + 2 * 2;
  ASSERT_EQ(iface.bottleneck_count(), expected);
  // Flattening is leaves then spines, each in port order.
  EXPECT_EQ(&iface.bottleneck(0), &topo.leaf(0).port(0));
  EXPECT_EQ(&iface.bottleneck(4), &topo.leaf(0).port(4));
  EXPECT_EQ(&iface.bottleneck(5), &topo.leaf(1).port(0));
  EXPECT_EQ(&iface.bottleneck(10), &topo.spine(0).port(0));
  EXPECT_EQ(&iface.bottleneck(13), &topo.spine(1).port(1));
}

TEST(LeafSpineTopologyTest, ResolvesScenarioPortIds) {
  Simulator sim;
  const LeafSpineConfig config = SmallFabric();
  LeafSpine topo(sim, config, [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  // -1 = the canonical fabric bottleneck: leaf 0's first uplink.
  EXPECT_EQ(iface.ResolvePort(-1),
            &topo.leaf(0).port(config.hosts_per_leaf));
  // 0..host_count-1 = host NICs.
  for (std::size_t h = 0; h < iface.host_count(); ++h) {
    EXPECT_EQ(iface.ResolvePort(static_cast<int>(h)),
              &iface.host(h).nic());
  }
  // host_count.. = the flattened bottleneck set, then null past the end.
  const int base = static_cast<int>(iface.host_count());
  for (std::size_t b = 0; b < iface.bottleneck_count(); ++b) {
    EXPECT_EQ(iface.ResolvePort(base + static_cast<int>(b)),
              &iface.bottleneck(b));
  }
  EXPECT_EQ(
      iface.ResolvePort(base + static_cast<int>(iface.bottleneck_count())),
      nullptr);
}

TEST(LeafSpineTopologyTest, BaseRttAndCapacityFollowTheFabric) {
  Simulator sim;
  const LeafSpineConfig config = SmallFabric();
  LeafSpine topo(sim, config, [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  // Cross-rack: 2 host hops + 2 fabric hops each way at 10 us per hop.
  EXPECT_EQ(iface.HostBaseRtt(0), Time::FromMicroseconds(80));
  topo.host(1).set_extra_egress_delay(Time::FromMicroseconds(55));
  EXPECT_EQ(iface.HostBaseRtt(1), Time::FromMicroseconds(135));
  // Load is defined against the aggregate access-link rate.
  EXPECT_EQ(iface.ReferenceCapacity().bps(),
            config.rate.bps() * static_cast<std::int64_t>(6));
}

TEST(LeafSpineTopologyTest, TotalBottleneckStatsSumsAllSwitchQueues) {
  Simulator sim;
  LeafSpine topo(sim, SmallFabric(), [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  const QueueDiscStats stats = topo.TotalBottleneckStats();
  EXPECT_EQ(stats.enqueued, 0u);
  EXPECT_EQ(stats.dropped_overflow, 0u);
  EXPECT_EQ(stats.ce_marked, 0u);
  EXPECT_EQ(topo.TotalLinkDownDrops(), 0u);
}

// ---------------------------------------------------------------------------
// Topology interface on FatTree
// ---------------------------------------------------------------------------

FatTreeConfig SmallFatTree() {
  FatTreeConfig config;
  config.k = 4;
  return config;
}

TEST(FatTreeTopologyTest, BuildsKaryStructure) {
  Simulator sim;
  FatTree topo(sim, SmallFatTree(), [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  // k=4: 4 pods x (2 edges + 2 aggs), 4 cores, 16 hosts.
  EXPECT_EQ(iface.host_count(), 16u);
  EXPECT_EQ(topo.pod_count(), 4u);
  EXPECT_EQ(topo.edge_count(), 8u);
  EXPECT_EQ(topo.agg_count(), 8u);
  EXPECT_EQ(topo.core_count(), 4u);
  EXPECT_EQ(topo.hosts_per_edge(), 2u);
  EXPECT_EQ(topo.hosts_per_pod(), 4u);
  EXPECT_EQ(topo.PodOfHost(0), 0u);
  EXPECT_EQ(topo.PodOfHost(5), 1u);
  EXPECT_EQ(topo.PodOfHost(15), 3u);
  EXPECT_EQ(topo.EdgeOfHost(3), 1u);

  // Every switch egress port is a bottleneck: 5k^3/4 = 80 at k=4,
  // flattened edges -> aggs -> cores, each in port order.
  ASSERT_EQ(iface.bottleneck_count(), 80u);
  EXPECT_EQ(&iface.bottleneck(0), &topo.edge(0).port(0));
  EXPECT_EQ(&iface.bottleneck(4), &topo.edge(1).port(0));
  EXPECT_EQ(&iface.bottleneck(32), &topo.agg(0).port(0));
  EXPECT_EQ(&iface.bottleneck(64), &topo.core(0).port(0));
  EXPECT_EQ(&iface.bottleneck(79), &topo.core(3).port(3));

  const QueueDiscStats stats = topo.TotalBottleneckStats();
  EXPECT_EQ(stats.enqueued, 0u);
  EXPECT_EQ(topo.TotalLinkDownDrops(), 0u);
}

TEST(FatTreeTopologyTest, ResolvesScenarioPortIds) {
  Simulator sim;
  FatTree topo(sim, SmallFatTree(), [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  // -1 = the canonical fabric bottleneck: edge 0's first uplink (ports
  // 0..k/2-1 are host down ports, k/2.. are uplinks).
  EXPECT_EQ(iface.ResolvePort(-1), &topo.edge(0).port(topo.hosts_per_edge()));
  for (std::size_t h = 0; h < iface.host_count(); ++h) {
    EXPECT_EQ(iface.ResolvePort(static_cast<int>(h)), &iface.host(h).nic());
  }
  const int base = static_cast<int>(iface.host_count());
  for (std::size_t b = 0; b < iface.bottleneck_count(); ++b) {
    EXPECT_EQ(iface.ResolvePort(base + static_cast<int>(b)),
              &iface.bottleneck(b));
  }
  EXPECT_EQ(
      iface.ResolvePort(base + static_cast<int>(iface.bottleneck_count())),
      nullptr);
  // The diagnostic names the whole valid range for scenario authors.
  EXPECT_NE(iface.DescribePortTargets().find("0..15"), std::string::npos);
  EXPECT_NE(iface.DescribePortTargets().find("16..95"), std::string::npos);
}

TEST(FatTreeTopologyTest, BaseRttAndCapacityFollowTheFabric) {
  Simulator sim;
  FatTree topo(sim, SmallFatTree(), [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  // Inter-pod: 2 host hops + 4 fabric hops each way at 10 us per hop.
  EXPECT_EQ(iface.HostBaseRtt(0), Time::FromMicroseconds(120));
  topo.host(2).set_extra_egress_delay(Time::FromMicroseconds(75));
  EXPECT_EQ(iface.HostBaseRtt(2), Time::FromMicroseconds(195));
  EXPECT_EQ(iface.ReferenceCapacity().bps(),
            SmallFatTree().rate.bps() * static_cast<std::int64_t>(16));
}

TEST(FatTreeTopologyTest, SampleFlowPairMixesPodsAndNeverSelfPairs) {
  Simulator sim;
  FatTree topo(sim, SmallFatTree(), [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  Rng rng(12345);
  std::size_t inter_pod = 0;
  std::size_t intra_pod = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto [src, dst] = iface.SampleFlowPair(rng);
    ASSERT_NE(src, nullptr);
    const std::uint32_t src_addr = src->host().address();
    ASSERT_NE(src_addr, dst);  // never a self-pair
    ASSERT_LT(dst, iface.host_count());
    if (topo.PodOfHost(src_addr) == topo.PodOfHost(dst)) {
      ++intra_pod;
    } else {
      ++inter_pod;
    }
  }
  // Uniform pairs: ~3/16 of ordered pairs stay inside one pod at k=4.
  EXPECT_GT(intra_pod, 200u);
  EXPECT_GT(inter_pod, 1200u);
}

TEST(FatTreeTopologyTest, IncastConvergesOnHostZero) {
  Simulator sim;
  FatTree topo(sim, SmallFatTree(), [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  EXPECT_EQ(iface.IncastTarget(), iface.host(0).address());
  // Senders round-robin over hosts 1..N-1 (never the target itself).
  EXPECT_EQ(&iface.IncastSender(0), &iface.stack(1));
  EXPECT_EQ(&iface.IncastSender(14), &iface.stack(15));
  EXPECT_EQ(&iface.IncastSender(15), &iface.stack(1));
}

// ReestimateEcnSharp must silently skip queues that are not running ECN#.
TEST(ReestimateTest, IgnoresNonEcnSharpQueues) {
  Simulator sim;
  LeafSpine topo(sim, SmallFabric(), [] {
    return MakeFifoDisc(Scheme::kDctcpRedTail, SchemeParams());
  });
  ReestimateEcnSharp(topo);  // must not crash or reconfigure anything
  EXPECT_EQ(topo.TotalBottleneckStats().enqueued, 0u);
}

// ---------------------------------------------------------------------------
// Golden parity: the ExperimentSession reproduces the pre-refactor runners
// bit-for-bit. Values captured from the monolithic implementations.
// ---------------------------------------------------------------------------

struct FctGolden {
  Scheme scheme;
  double overall_avg;
  double overall_p99;
  double short_avg;
  std::size_t completed;
  std::uint64_t timeouts;
  std::uint64_t ce_marked;
  std::uint64_t drops;
};

void ExpectFctGolden(const ExperimentResult& r, const FctGolden& g) {
  SCOPED_TRACE(SchemeName(g.scheme));
  EXPECT_DOUBLE_EQ(r.overall.avg_us, g.overall_avg);
  EXPECT_DOUBLE_EQ(r.overall.p99_us, g.overall_p99);
  EXPECT_DOUBLE_EQ(r.short_flows.avg_us, g.short_avg);
  EXPECT_EQ(r.flows_completed, g.completed);
  EXPECT_EQ(r.timeouts, g.timeouts);
  EXPECT_EQ(r.bottleneck.ce_marked, g.ce_marked);
  EXPECT_EQ(r.bottleneck.dropped_overflow, g.drops);
}

TEST(GoldenParityTest, DumbbellMatchesPreSessionResults) {
  const FctGolden kGolden[] = {
      {Scheme::kEcnSharp, 416.2444666666666, 3276.7350000000001,
       184.21591089108904, 150, 0, 1624, 33},
      {Scheme::kDctcpRedTail, 411.25921999999991, 3276.7350000000001,
       185.22023762376233, 150, 0, 1579, 33},
      {Scheme::kCodel, 412.52281333333326, 3276.7350000000001,
       184.5260792079207, 150, 0, 82, 33},
  };
  for (const FctGolden& g : kGolden) {
    DumbbellExperimentConfig config;
    config.scheme = g.scheme;
    config.flows = 150;
    config.load = 0.8;
    config.seed = 99;
    ExpectFctGolden(RunDumbbell(config), g);
  }
}

TEST(GoldenParityTest, LeafSpineMatchesPreSessionResults) {
  // Re-goldened when SelectEcmp switched to the splitmix64 finalizer: the
  // multi-path leaf-spine picks different (still valid) uplinks per flow, so
  // every pinned double shifted once. Dumbbell/incast goldens were unchanged
  // (single-candidate ECMP never reaches the hash).
  const FctGolden kGolden[] = {
      {Scheme::kEcnSharp, 542.41020000000003, 3312.739, 255.53313333333335,
       80, 0, 704, 0},
      {Scheme::kDctcpRedTail, 534.14081250000004, 3346.3389999999999,
       260.62860000000001, 80, 0, 721, 0},
      {Scheme::kCodel, 522.57607499999995, 3311.5390000000002,
       238.6144333333333, 80, 0, 29, 0},
  };
  for (const FctGolden& g : kGolden) {
    LeafSpineExperimentConfig config;
    config.scheme = g.scheme;
    config.params = SimulationSchemeParams();
    config.topo.spines = 2;
    config.topo.leaves = 2;
    config.topo.hosts_per_leaf = 4;
    config.flows = 80;
    config.load = 0.4;
    config.seed = 7;
    ExpectFctGolden(RunLeafSpine(config), g);
  }
}

struct IncastGolden {
  Scheme scheme;
  double query_avg;
  double query_p99;
  double standing;
  std::uint32_t max_queue;
  std::uint64_t drops;
  std::uint64_t total_drops;
  std::size_t completed;
  std::uint64_t timeouts;
  std::size_t trace_samples;
};

TEST(GoldenParityTest, IncastMatchesPreSessionResults) {
  const IncastGolden kGolden[] = {
      {Scheme::kEcnSharp, 1051.6368, 1776.8779999999999, 24.323353293413174,
       207, 0, 0, 30, 0, 2501},
      {Scheme::kDctcpRedTail, 2551.3436999999999, 4081.9100000000003,
       176.19161676646706, 265, 0, 91, 30, 0, 2501},
      {Scheme::kCodel, 1109.9734666666666, 1713.5889999999999,
       28.926147704590818, 225, 0, 0, 30, 0, 2501},
  };
  for (const IncastGolden& g : kGolden) {
    SCOPED_TRACE(SchemeName(g.scheme));
    IncastExperimentConfig config;
    config.scheme = g.scheme;
    config.senders = 8;
    config.long_flows = 2;
    config.query_flows = 30;
    config.seed = 3;
    const IncastResult r = RunIncast(config);
    EXPECT_DOUBLE_EQ(r.query_fct.avg_us, g.query_avg);
    EXPECT_DOUBLE_EQ(r.query_fct.p99_us, g.query_p99);
    EXPECT_DOUBLE_EQ(r.standing_queue_packets, g.standing);
    EXPECT_EQ(r.max_queue_packets, g.max_queue);
    EXPECT_EQ(r.drops, g.drops);
    EXPECT_EQ(r.total_drops, g.total_drops);
    EXPECT_EQ(r.queries_completed, g.completed);
    EXPECT_EQ(r.query_timeouts, g.timeouts);
    EXPECT_EQ(r.queue_trace.size(), g.trace_samples);
  }
}

// The buffer-policy subsystem must be invisible at defaults: a topology
// built through the pool-aware constructor with no policy configured has to
// match the legacy constructor byte for byte, and it must report no pools.

TEST(GoldenParityTest, DumbbellPoolAwareConstructorWithoutPolicyMatchesLegacy) {
  auto run = [](bool pool_aware) {
    Simulator sim;
    DumbbellConfig config;
    std::unique_ptr<Dumbbell> topo;
    if (pool_aware) {
      topo = std::make_unique<Dumbbell>(
          sim, config, [](BufferPolicy* pool) {
            EXPECT_EQ(pool, nullptr);
            return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams(), pool);
          });
      EXPECT_EQ(topo->buffer_pool_count(), 0u);
    } else {
      topo = std::make_unique<Dumbbell>(
          sim, config, MakeFifoDisc(Scheme::kEcnSharp, SchemeParams()));
    }
    std::vector<double> fcts(topo->sender_count(), 0.0);
    std::size_t done = 0;
    for (std::size_t i = 0; i < topo->sender_count(); ++i) {
      topo->sender_stack(i).StartFlow(
          topo->receiver_address(), 100'000 + 50'000 * i,
          [&fcts, &done, i](const FlowRecord& r) {
            fcts[i] = r.Fct().ToMicroseconds();
            ++done;
          });
    }
    sim.RunUntil(Time::Seconds(5));
    EXPECT_EQ(done, topo->sender_count());
    return fcts;
  };
  const std::vector<double> legacy = run(false);
  const std::vector<double> pooled = run(true);
  ASSERT_EQ(legacy.size(), pooled.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy[i], pooled[i]) << "sender " << i;
  }
}

TEST(GoldenParityTest, FatTreePoolAwareConstructorWithoutPolicyMatchesLegacy) {
  auto run = [](bool pool_aware) {
    Simulator sim;
    FatTreeConfig config;
    config.k = 4;
    std::unique_ptr<FatTree> topo;
    if (pool_aware) {
      topo = std::make_unique<FatTree>(
          sim, config, [](BufferPolicy* pool) {
            EXPECT_EQ(pool, nullptr);
            return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams(), pool);
          });
      EXPECT_EQ(topo->buffer_pool_count(), 0u);
    } else {
      topo = std::make_unique<FatTree>(sim, config, [] {
        return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
      });
    }
    // Cross-pod pairs so flows traverse edge, agg and core discs.
    const std::size_t n = topo->host_count();
    std::vector<double> fcts(n, 0.0);
    std::size_t done = 0;
    for (std::size_t src = 0; src < n; ++src) {
      const auto dst = static_cast<std::uint32_t>((src + n / 2) % n);
      topo->stack(src).StartFlow(dst, 50'000,
                                 [&fcts, &done, src](const FlowRecord& r) {
                                   fcts[src] = r.Fct().ToMicroseconds();
                                   ++done;
                                 });
    }
    sim.RunUntil(Time::Seconds(5));
    EXPECT_EQ(done, n);
    return fcts;
  };
  const std::vector<double> legacy = run(false);
  const std::vector<double> pooled = run(true);
  ASSERT_EQ(legacy.size(), pooled.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy[i], pooled[i]) << "host " << i;
  }
}

// Explicitly spelling out the defaults (cc_mix=0, policy=none) must be
// indistinguishable from leaving them untouched — the golden FCT numbers
// pinned above remain in force with the new config fields present.
TEST(GoldenParityTest, ExplicitDefaultCcMixAndPolicyKeepLeafSpineGolden) {
  LeafSpineExperimentConfig config;
  config.scheme = Scheme::kEcnSharp;
  config.params = SimulationSchemeParams();
  config.topo.spines = 2;
  config.topo.leaves = 2;
  config.topo.hosts_per_leaf = 4;
  config.flows = 80;
  config.load = 0.4;
  config.seed = 7;
  config.cc_mix = 0.0;
  config.buffer_policy.kind = BufferPolicyKind::kNone;
  config.buffer_policy.alpha = 2.0;  // parameters without a kind are inert
  const ExperimentResult r = RunLeafSpine(config);
  EXPECT_DOUBLE_EQ(r.overall.avg_us, 542.41020000000003);
  EXPECT_DOUBLE_EQ(r.overall.p99_us, 3312.739);
  EXPECT_EQ(r.flows_completed, 80u);
  EXPECT_EQ(r.cubic_fct.count, 0u);
  EXPECT_EQ(r.newreno_fct.count, 0u);
}

// ---------------------------------------------------------------------------
// Session-level behavior the old runners got wrong or lacked
// ---------------------------------------------------------------------------

// Satellite fix: RunLeafSpine used to drop timeouts and the queue-occupancy
// metrics on the floor. With sampling enabled the monitors now cover every
// switch egress port.
TEST(LeafSpineSessionTest, ReportsQueueMetricsWhenSamplingEnabled) {
  LeafSpineExperimentConfig config;
  config.topo.spines = 2;
  config.topo.leaves = 2;
  config.topo.hosts_per_leaf = 4;
  config.flows = 60;
  config.load = 0.6;
  config.seed = 11;
  config.queue_sample_period = Time::FromMicroseconds(100);
  const ExperimentResult r = RunLeafSpine(config);
  EXPECT_EQ(r.flows_completed, 60u);
  // Something must have queued somewhere at 60% load.
  EXPECT_GT(r.max_queue_packets, 0u);
  EXPECT_GT(r.avg_queue_packets, 0.0);
  // The full drop/mark accounting now covers the whole fabric.
  EXPECT_GT(r.bottleneck.enqueued, 0u);
  EXPECT_EQ(r.bottleneck.enqueued, r.bottleneck.dequeued);
}

// Satellite fix: sampling disabled means no monitor exists at all, and the
// queue fields stay zero.
TEST(LeafSpineSessionTest, NoSamplingMeansNoQueueMetrics) {
  LeafSpineExperimentConfig config;
  config.topo.spines = 2;
  config.topo.leaves = 2;
  config.topo.hosts_per_leaf = 4;
  config.flows = 40;
  config.seed = 11;
  const ExperimentResult r = RunLeafSpine(config);
  EXPECT_EQ(r.avg_queue_packets, 0.0);
  EXPECT_EQ(r.max_queue_packets, 0u);
}

// The same scenario script must run unmodified on either topology — the
// acceptance bar for the session refactor.
TEST(SessionScenarioTest, OneScriptRunsOnBothTopologies) {
  ScenarioScript script;
  script.seed = 9;
  ScenarioAction down;
  down.kind = ScenarioActionKind::kLinkDown;
  down.at = Time::Milliseconds(2);
  down.target = -1;
  down.drop_queued = true;
  script.actions.push_back(down);
  ScenarioAction up = down;
  up.kind = ScenarioActionKind::kLinkUp;
  up.at = Time::Milliseconds(2) + Time::FromMicroseconds(300);
  script.actions.push_back(up);
  ScenarioAction reest;
  reest.kind = ScenarioActionKind::kReestimateEcnSharp;
  reest.at = Time::Milliseconds(3);
  script.actions.push_back(reest);

  DumbbellExperimentConfig dumbbell;
  dumbbell.flows = 40;
  dumbbell.seed = 5;
  dumbbell.scenario = script;
  const ExperimentResult a = RunDumbbell(dumbbell);
  EXPECT_EQ(a.scenario_actions, 3u);
  EXPECT_EQ(a.flows_completed, 40u);

  LeafSpineExperimentConfig leafspine;
  leafspine.topo.spines = 2;
  leafspine.topo.leaves = 2;
  leafspine.topo.hosts_per_leaf = 4;
  leafspine.flows = 40;
  leafspine.seed = 5;
  leafspine.scenario = script;
  const ExperimentResult b = RunLeafSpine(leafspine);
  EXPECT_EQ(b.scenario_actions, 3u);
  EXPECT_EQ(b.flows_completed, 40u);
}

// ---------------------------------------------------------------------------
// Golden trace determinism
// ---------------------------------------------------------------------------

DumbbellExperimentConfig SmallTracedDumbbell(std::uint64_t seed) {
  DumbbellExperimentConfig config;
  config.flows = 30;
  config.seed = seed;
  config.trace.enabled = true;
  return config;
}

// Re-running the identical config must reproduce the flight recorder down
// to the last byte of both renderings — the tracing seams may not perturb
// (or be perturbed by) rng-draw or event order.
TEST(GoldenTraceTest, DumbbellReRunsProduceByteIdenticalTraces) {
  const DumbbellExperimentConfig config = SmallTracedDumbbell(2);
  const ExperimentResult a = RunDumbbell(config);
  const ExperimentResult b = RunDumbbell(config);
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  EXPECT_NE(a.trace, b.trace);  // distinct recorders, identical content
  const std::string json_a = TraceToJson(*a.trace).Dump();
  EXPECT_GT(json_a.size(), 1000u);
  EXPECT_EQ(json_a, TraceToJson(*b.trace).Dump());
  EXPECT_EQ(TraceToCsv(*a.trace), TraceToCsv(*b.trace));
}

// Each job carries its own recorder, so the exported trace of any given
// job must not depend on how many workers the sweep ran with.
TEST(GoldenTraceTest, TraceJsonIsJobCountInvariant) {
  std::vector<runner::JobSpec> specs;
  for (std::uint64_t seed : {2ull, 3ull, 4ull}) {
    specs.push_back({"traced/" + std::to_string(seed),
                     SmallTracedDumbbell(seed)});
  }
  runner::SweepOptions options;
  options.progress = false;
  std::vector<std::string> golden;  // from --jobs 1
  for (const std::size_t jobs : {1u, 4u, 8u}) {
    options.jobs = jobs;
    const std::vector<runner::JobResult> results =
        runner::RunJobs(specs, options);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto trace = runner::FctResult(results[i]).trace;
      ASSERT_NE(trace, nullptr) << specs[i].name;
      const std::string dump = TraceToJson(*trace).Dump();
      if (jobs == 1) {
        golden.push_back(dump);
      } else {
        EXPECT_EQ(dump, golden[i]) << specs[i].name << " jobs=" << jobs;
      }
    }
  }
  // Different seeds really produce different traces (the invariance above
  // is not vacuous).
  EXPECT_NE(golden[0], golden[1]);
}

// ---------------------------------------------------------------------------
// Fat-tree golden byte-identity
// ---------------------------------------------------------------------------

// The full exported sweep document (configs + results) for a fat-tree sweep
// must be byte-identical across --jobs 1/4/8 and across re-runs — multi-path
// ECMP and the range-routing tables may not introduce any order or thread
// dependence.
TEST(GoldenSweepTest, FatTreeSweepJsonIsJobCountInvariantAndRepeatable) {
  std::vector<runner::JobSpec> specs;
  for (std::uint64_t seed : {2ull, 3ull, 4ull}) {
    FatTreeExperimentConfig config;
    config.topo.k = 4;
    config.flows = 40;
    config.load = 0.4;
    config.seed = seed;
    specs.push_back({"ft/" + std::to_string(seed), config});
  }
  runner::SweepOptions options;
  options.progress = false;
  std::string golden;  // from the first --jobs 1 run
  for (const std::size_t jobs : {1u, 1u, 4u, 8u}) {  // 1 twice: re-run parity
    options.jobs = jobs;
    const std::vector<runner::JobResult> results =
        runner::RunJobs(specs, options);
    ASSERT_EQ(results.size(), specs.size());
    const std::string dump =
        runner::SweepToJson("fattree_golden", specs, results).Dump();
    EXPECT_GT(dump.size(), 500u);
    if (golden.empty()) {
      golden = dump;
    } else {
      EXPECT_EQ(dump, golden) << "jobs=" << jobs;
    }
  }
  // The seeds really differ (the invariance above is not vacuous).
  const std::vector<runner::JobResult> once =
      runner::RunJobs(specs, options);
  EXPECT_NE(runner::FctResult(once[0]).overall.avg_us,
            runner::FctResult(once[1]).overall.avg_us);
}

// The cross-topology scenario contract extends to the fat-tree: the same
// script (flap the canonical bottleneck, then re-estimate ECN# fabric-wide)
// runs unchanged.
TEST(SessionScenarioTest, ScenarioScriptRunsOnFatTree) {
  ScenarioScript script;
  script.seed = 9;
  ScenarioAction down;
  down.kind = ScenarioActionKind::kLinkDown;
  down.at = Time::Milliseconds(2);
  down.target = -1;
  down.drop_queued = true;
  script.actions.push_back(down);
  ScenarioAction up = down;
  up.kind = ScenarioActionKind::kLinkUp;
  up.at = Time::Milliseconds(2) + Time::FromMicroseconds(300);
  script.actions.push_back(up);
  ScenarioAction reest;
  reest.kind = ScenarioActionKind::kReestimateEcnSharp;
  reest.at = Time::Milliseconds(3);
  script.actions.push_back(reest);

  FatTreeExperimentConfig config;
  config.topo.k = 4;
  config.flows = 40;
  config.seed = 5;
  config.scenario = script;
  const ExperimentResult r = RunFatTree(config);
  EXPECT_EQ(r.scenario_actions, 3u);
  EXPECT_EQ(r.flows_completed, 40u);
}

// ---------------------------------------------------------------------------
// Topology interface on ComposedTopology (inter-DC)
// ---------------------------------------------------------------------------

ComposedConfig SmallComposed() {
  ComposedConfig config;
  config.side_a.leaf_spine = SmallFabric();  // 2 spines, 2 leaves, 3 hpl
  config.side_b.leaf_spine = SmallFabric();
  config.border_rtt = Time::Milliseconds(2);
  return config;
}

TEST(ComposedTopologyTest, EnumeratesSidesGatewaysAndBorder) {
  Simulator sim;
  ComposedTopology topo(sim, SmallComposed(), [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  EXPECT_EQ(iface.host_count(), 12u);
  EXPECT_EQ(topo.side_host_count(0), 6u);
  EXPECT_EQ(topo.side_host_count(1), 6u);
  // auto_address: side B's block sits immediately after side A's.
  EXPECT_EQ(topo.side_base_address(0), 0u);
  EXPECT_EQ(topo.side_base_address(1), 6u);
  EXPECT_EQ(topo.host(7).address(), 7u);
  EXPECT_EQ(topo.border_link_count(), 1u);
  EXPECT_EQ(topo.attach_count(0), 2u);  // one attach per spine
  EXPECT_EQ(topo.attach_count(1), 2u);

  // Per side: 2 leaves x (3 down + 2 up) + 2 spines x (2 down + 1 attach
  // up) = 16 ports; each gateway: 2 attach downs + 1 border link = 3.
  ASSERT_EQ(iface.bottleneck_count(), 16u + 16u + 3u + 3u);
  EXPECT_EQ(&iface.bottleneck(0), &topo.side(0).bottleneck(0));
  EXPECT_EQ(&iface.bottleneck(16), &topo.side(1).bottleneck(0));
  EXPECT_EQ(&iface.bottleneck(32), &topo.gateway(0).port(0));
  EXPECT_EQ(&iface.bottleneck(34), &topo.border_port(0, 0));
  EXPECT_EQ(&iface.bottleneck(35), &topo.gateway(1).port(0));
  EXPECT_EQ(&iface.bottleneck(37), &topo.border_port(1, 0));

  // Load is defined against both sides' aggregate access capacity.
  EXPECT_EQ(iface.ReferenceCapacity().bps(),
            SmallFabric().rate.bps() * static_cast<std::int64_t>(12));
  // Incast converges on side A's host 0 from hosts fabric-wide.
  EXPECT_EQ(iface.IncastTarget(), 0u);
  EXPECT_EQ(&iface.IncastSender(0), &iface.stack(1));
  EXPECT_EQ(&iface.IncastSender(10), &iface.stack(11));
  EXPECT_EQ(&iface.IncastSender(11), &iface.stack(1));
}

TEST(ComposedTopologyTest, ResolvesScenarioPortIds) {
  Simulator sim;
  ComposedTopology topo(sim, SmallComposed(), [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  // -1 = the first border link's egress on gateway A.
  EXPECT_EQ(iface.ResolvePort(-1), &topo.border_port(0, 0));
  for (std::size_t h = 0; h < iface.host_count(); ++h) {
    EXPECT_EQ(iface.ResolvePort(static_cast<int>(h)), &iface.host(h).nic());
  }
  const int base = static_cast<int>(iface.host_count());
  for (std::size_t b = 0; b < iface.bottleneck_count(); ++b) {
    EXPECT_EQ(iface.ResolvePort(base + static_cast<int>(b)),
              &iface.bottleneck(b));
  }
  EXPECT_EQ(
      iface.ResolvePort(base + static_cast<int>(iface.bottleneck_count())),
      nullptr);
  // The diagnostic names every range of the unified target-id space.
  const std::string targets = iface.DescribePortTargets();
  EXPECT_NE(targets.find("0..11"), std::string::npos);
  EXPECT_NE(targets.find("12..27"), std::string::npos);
  EXPECT_NE(targets.find("28..43"), std::string::npos);
  EXPECT_NE(targets.find("44..46"), std::string::npos);
  EXPECT_NE(targets.find("gateway B"), std::string::npos);
}

TEST(ComposedTopologyTest, RttCapacityAndSamplePopulation) {
  Simulator sim;
  ComposedConfig config = SmallComposed();
  config.attach_delay = Time::FromMicroseconds(5);
  ComposedTopology topo(sim, config, [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  Topology& iface = topo;

  // Hosts keep their side's intra-fabric base RTT (plus extras).
  EXPECT_EQ(iface.HostBaseRtt(0), Time::FromMicroseconds(80));
  EXPECT_EQ(iface.HostBaseRtt(6), Time::FromMicroseconds(80));
  topo.host(7).set_extra_egress_delay(Time::FromMicroseconds(40));
  EXPECT_EQ(iface.HostBaseRtt(7), Time::FromMicroseconds(120));

  // The border adds its RTT plus the four attach hops to inter-DC paths.
  EXPECT_EQ(topo.InterExtraRtt(), Time::FromMicroseconds(2020));
  EXPECT_EQ(topo.InterBaseRtt(), Time::FromMicroseconds(2100));
  // Border ports advertise the full inter-DC base RTT to the sketch.
  EXPECT_EQ(topo.border_port(0, 0).base_rtt_hint(), topo.InterBaseRtt());
  EXPECT_EQ(topo.border_port(1, 0).base_rtt_hint(), topo.InterBaseRtt());
  // Attach and side ports carry no WAN annotation.
  EXPECT_EQ(topo.gateway(0).port(0).base_rtt_hint(), Time::Zero());
  EXPECT_EQ(topo.side(0).bottleneck(0).base_rtt_hint(), Time::Zero());

  // Re-estimation population: one sample per host plus
  // round(inter_rtt_fraction * hosts) inter-DC samples cycling over hosts.
  std::vector<double> rtts;
  iface.AppendRttSamplesUs(rtts);
  ASSERT_EQ(rtts.size(), 12u + 3u);  // default fraction 0.25
  EXPECT_DOUBLE_EQ(rtts[0], 80.0);
  EXPECT_DOUBLE_EQ(rtts[7], 120.0);  // the extra delay above
  EXPECT_DOUBLE_EQ(rtts[12], 80.0 + 2020.0);
  EXPECT_DOUBLE_EQ(rtts[13], 80.0 + 2020.0);
}

TEST(ComposedTopologyTest, SplitSamplingRespectsTheSeam) {
  Simulator sim;
  ComposedTopology topo(sim, SmallComposed(), [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });

  Rng rng(77);
  for (int i = 0; i < 400; ++i) {
    const auto [src_a, dst_a] = topo.SampleIntraPair(0, rng);
    ASSERT_NE(src_a, nullptr);
    EXPECT_LT(src_a->host().address(), 6u);
    EXPECT_LT(dst_a, 6u);
    EXPECT_NE(src_a->host().address(), dst_a);

    const auto [src_b, dst_b] = topo.SampleIntraPair(1, rng);
    ASSERT_NE(src_b, nullptr);
    EXPECT_GE(src_b->host().address(), 6u);
    EXPECT_GE(dst_b, 6u);
    EXPECT_LT(dst_b, 12u);
    EXPECT_NE(src_b->host().address(), dst_b);

    const auto [src_x, dst_x] = topo.SampleInterPair(rng);
    ASSERT_NE(src_x, nullptr);
    // An inter pair always crosses the seam, in either direction.
    EXPECT_NE(src_x->host().address() < 6u, dst_x < 6u);
    EXPECT_LT(dst_x, 12u);
  }
}

TEST(ComposedTopologyTest, MixedLeafSpineFatTreeSidesCarryTraffic) {
  InterDcExperimentConfig config;
  config.topo.side_a.leaf_spine = SmallFabric();
  config.topo.side_b.kind = ComposedSideConfig::Kind::kFatTree;
  config.topo.side_b.fat_tree.k = 4;
  config.topo.border_rtt = Time::FromMicroseconds(200);
  config.flows = 24;
  config.load = 0.3;
  config.inter_fraction = 0.5;
  config.seed = 13;
  const ExperimentResult r = RunInterDc(config);
  EXPECT_EQ(r.flows_started, 24u);
  EXPECT_EQ(r.flows_completed, 24u);
  EXPECT_EQ(r.inter_fct.count, 12u);
  EXPECT_EQ(r.intra_a_fct.count + r.intra_b_fct.count, 12u);

  // The composition itself: 6 leaf-spine hosts then 16 fat-tree hosts,
  // gateway B attaches to every core (k^2/4 = 4 of them).
  Simulator sim;
  ComposedTopology topo(sim, config.topo, [] {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
  });
  EXPECT_EQ(topo.host_count(), 22u);
  EXPECT_EQ(topo.side_base_address(1), 6u);
  EXPECT_EQ(topo.attach_count(1), 4u);
  EXPECT_EQ(topo.host(6).address(), 6u);
}

// ---------------------------------------------------------------------------
// Composed reduction parity: with zero border traffic and zero extra border
// RTT, each side of the composed fabric must reproduce its standalone
// single-fabric run bit for bit — the acceptance bar for the seam (attach
// ports, gateway switches, range routes) being invisible until used.
// ---------------------------------------------------------------------------

void ExpectSummariesEqual(const FctSummary& a, const FctSummary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.avg_us, b.avg_us);
  EXPECT_DOUBLE_EQ(a.stddev_us, b.stddev_us);
  EXPECT_DOUBLE_EQ(a.p50_us, b.p50_us);
  EXPECT_DOUBLE_EQ(a.p90_us, b.p90_us);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
  EXPECT_DOUBLE_EQ(a.max_us, b.max_us);
}

TEST(GoldenParityTest, ComposedZeroBorderReducesToStandaloneSides) {
  for (const Scheme scheme :
       {Scheme::kEcnSharp, Scheme::kDctcpRedTail, Scheme::kCodel}) {
    SCOPED_TRACE(SchemeName(scheme));
    // Both sides are the leaf-spine golden fabric; flows split evenly, so
    // each side runs the standalone golden's 80 flows.
    InterDcExperimentConfig composed;
    composed.scheme = scheme;
    composed.params = SimulationSchemeParams();
    composed.topo.side_a.leaf_spine.spines = 2;
    composed.topo.side_a.leaf_spine.leaves = 2;
    composed.topo.side_a.leaf_spine.hosts_per_leaf = 4;
    composed.topo.side_b = composed.topo.side_a;
    composed.topo.border_rtt = Time::Zero();
    composed.topo.attach_delay = Time::Zero();
    composed.inter_fraction = 0.0;
    composed.flows = 160;
    composed.load = 0.4;
    composed.seed = 7;
    const ExperimentResult c = RunInterDc(composed);
    EXPECT_EQ(c.flows_completed, 160u);
    EXPECT_EQ(c.inter_fct.count, 0u);
    EXPECT_EQ(c.intra_fct.count, 160u);

    // Side A replays the standalone run at the composed seed; side B at
    // seed+1 with its address block offset to match the composed plan.
    LeafSpineExperimentConfig standalone;
    standalone.scheme = scheme;
    standalone.params = SimulationSchemeParams();
    standalone.topo.spines = 2;
    standalone.topo.leaves = 2;
    standalone.topo.hosts_per_leaf = 4;
    standalone.flows = 80;
    standalone.load = 0.4;
    standalone.seed = 7;
    const ExperimentResult a = RunLeafSpine(standalone);
    standalone.seed = 8;
    standalone.topo.base_address = 8;  // side B's auto-assigned block
    const ExperimentResult b = RunLeafSpine(standalone);

    ExpectSummariesEqual(c.intra_a_fct, a.overall);
    ExpectSummariesEqual(c.intra_b_fct, b.overall);
    EXPECT_EQ(c.timeouts, a.timeouts + b.timeouts);
    // With the seam idle, the composed fabric's aggregate queue counters
    // are exactly the two standalone fabrics' sums (gateway and attach
    // queues never see a packet).
    EXPECT_EQ(c.bottleneck.ce_marked,
              a.bottleneck.ce_marked + b.bottleneck.ce_marked);
    EXPECT_EQ(c.bottleneck.dropped_overflow,
              a.bottleneck.dropped_overflow + b.bottleneck.dropped_overflow);
  }
}

// Side A of the zero-border composed run at the golden seed IS the pinned
// leaf-spine golden — pin it directly so composed-run drift is caught even
// if RunLeafSpine drifts in the same way.
TEST(GoldenParityTest, ComposedSideAMatchesPinnedLeafSpineGolden) {
  InterDcExperimentConfig composed;
  composed.scheme = Scheme::kEcnSharp;
  composed.params = SimulationSchemeParams();
  composed.topo.side_a.leaf_spine.spines = 2;
  composed.topo.side_a.leaf_spine.leaves = 2;
  composed.topo.side_a.leaf_spine.hosts_per_leaf = 4;
  composed.topo.side_b = composed.topo.side_a;
  composed.topo.border_rtt = Time::Zero();
  composed.topo.attach_delay = Time::Zero();
  composed.inter_fraction = 0.0;
  composed.flows = 160;
  composed.load = 0.4;
  composed.seed = 7;
  const ExperimentResult c = RunInterDc(composed);
  EXPECT_EQ(c.intra_a_fct.count, 80u);
  EXPECT_DOUBLE_EQ(c.intra_a_fct.avg_us, 542.41020000000003);
  EXPECT_DOUBLE_EQ(c.intra_a_fct.p99_us, 3312.739);
}

// ---------------------------------------------------------------------------
// Inter-DC session behavior: split reporting, scenarios, sketch seeding
// ---------------------------------------------------------------------------

TEST(InterDcSessionTest, SplitFctReportingCoversEveryFlow) {
  InterDcExperimentConfig config;
  config.topo.side_a.leaf_spine = SmallFabric();
  config.topo.side_b.leaf_spine = SmallFabric();
  config.topo.border_rtt = Time::Milliseconds(2);
  config.flows = 40;
  config.load = 0.3;
  config.inter_fraction = 0.5;
  config.seed = 21;
  const ExperimentResult r = RunInterDc(config);
  EXPECT_EQ(r.flows_started, 40u);
  EXPECT_EQ(r.flows_completed, 40u);
  // The split partitions the flow population exactly.
  EXPECT_EQ(r.inter_fct.count, 20u);
  EXPECT_EQ(r.intra_fct.count, 20u);
  EXPECT_EQ(r.intra_a_fct.count + r.intra_b_fct.count, r.intra_fct.count);
  EXPECT_EQ(r.overall.count, r.intra_fct.count + r.inter_fct.count);
  EXPECT_EQ(r.intra_timeouts + r.inter_timeouts, r.timeouts);
  // A 2 ms border makes cross-border flows visibly slower than intra ones.
  EXPECT_GT(r.inter_fct.p50_us, r.intra_fct.p50_us + 1000.0);
}

TEST(SessionScenarioTest, ScenarioScriptFlapsTheBorderLink) {
  ScenarioScript script;
  script.seed = 9;
  ScenarioAction down;
  down.kind = ScenarioActionKind::kLinkDown;
  down.at = Time::Milliseconds(2);
  down.target = -1;  // composed convention: the first border link
  down.drop_queued = true;
  script.actions.push_back(down);
  ScenarioAction up = down;
  up.kind = ScenarioActionKind::kLinkUp;
  up.at = Time::Milliseconds(2) + Time::FromMicroseconds(300);
  script.actions.push_back(up);
  ScenarioAction reest;
  reest.kind = ScenarioActionKind::kReestimateEcnSharp;
  reest.at = Time::Milliseconds(3);
  script.actions.push_back(reest);

  InterDcExperimentConfig config;
  config.topo.side_a.leaf_spine = SmallFabric();
  config.topo.side_b.leaf_spine = SmallFabric();
  config.topo.border_rtt = Time::FromMicroseconds(400);
  config.flows = 40;
  config.load = 0.3;
  config.inter_fraction = 0.4;
  config.seed = 5;
  config.scenario = script;
  const ExperimentResult r = RunInterDc(config);
  EXPECT_EQ(r.scenario_actions, 3u);
  EXPECT_EQ(r.flows_completed, 40u);
}

TEST(InterDcSessionTest, SketchSeedsBorderBaseRttHint) {
  InterDcExperimentConfig config;
  config.topo.side_a.leaf_spine = SmallFabric();
  config.topo.side_b.leaf_spine = SmallFabric();
  config.topo.border_rtt = Time::Milliseconds(2);
  config.flows = 30;
  config.load = 0.3;
  config.inter_fraction = 0.3;
  config.seed = 17;
  config.sketch.enabled = true;
  const ExperimentResult r = RunInterDc(config);
  ASSERT_NE(r.sketch, nullptr);
  // The border ports' WAN annotation must have been offered to (and
  // admitted by) the base-RTT sketch — that is what lets the sketch-driven
  // estimator see ms-RTT paths no data packet has measured yet.
  EXPECT_GT(r.sketch->hint_samples_admitted(), 0u);
  EXPECT_EQ(r.flows_completed, 30u);
}

// The sweep export contract extends to the inter-DC family: byte-identical
// across --jobs settings and across re-runs.
TEST(GoldenSweepTest, InterDcSweepJsonIsJobCountInvariantAndRepeatable) {
  std::vector<runner::JobSpec> specs;
  for (std::uint64_t seed : {2ull, 3ull, 4ull}) {
    InterDcExperimentConfig config;
    config.topo.side_a.leaf_spine = SmallFabric();
    config.topo.side_b.leaf_spine = SmallFabric();
    config.topo.border_rtt = Time::FromMicroseconds(800);
    config.flows = 60;
    config.load = 0.3;
    config.inter_fraction = 0.25;
    config.seed = seed;
    specs.push_back({"interdc/" + std::to_string(seed), config});
  }
  runner::SweepOptions options;
  options.progress = false;
  std::string golden;  // from the first --jobs 1 run
  for (const std::size_t jobs : {1u, 1u, 4u, 8u}) {  // 1 twice: re-run parity
    options.jobs = jobs;
    const std::vector<runner::JobResult> results =
        runner::RunJobs(specs, options);
    ASSERT_EQ(results.size(), specs.size());
    const std::string dump =
        runner::SweepToJson("interdc_golden", specs, results).Dump();
    EXPECT_GT(dump.size(), 500u);
    // The export carries the split-FCT block and the border parameters.
    EXPECT_NE(dump.find("inter_fct"), std::string::npos);
    EXPECT_NE(dump.find("border_rtt_us"), std::string::npos);
    if (golden.empty()) {
      golden = dump;
    } else {
      EXPECT_EQ(dump, golden) << "jobs=" << jobs;
    }
  }
  const std::vector<runner::JobResult> once = runner::RunJobs(specs, options);
  EXPECT_NE(runner::FctResult(once[0]).overall.avg_us,
            runner::FctResult(once[1]).overall.avg_us);
}

}  // namespace
}  // namespace ecnsharp
