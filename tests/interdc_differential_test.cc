// Differential test layer for ECN# under extreme RTT disparity: the full
// ECN# AQM (instantaneous OR persistent marking) vs an instantaneous-only
// arm built exactly like Scheme::kEcnSharpInstOnly (persistent target pushed
// to Time::Max()/4), driven in lockstep over identical sojourn sequences.
//
// The inter-DC regime sizes the instantaneous threshold for the tail (WAN)
// RTT — ins ~ 200R us at border ratio R — while the persistent target stays
// at fabric scale (~85 us). The standing-queue analysis (§2.3/§3) then
// predicts the two arms diverge in exactly one place: packets whose sojourn
// sits in the mid-band [pst_target, ins_target), and only after the sojourn
// has stayed above pst_target for strictly more than one pst_interval. A
// fabric-scale standing queue (a few hundred us) is invisible to the
// WAN-sized instantaneous threshold at R in {10, 100} but trips it at R=1 —
// that asymmetry is the phenomenon the composed-topology benches measure
// end to end; here it is pinned algorithmically, packet by packet.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstddef>

#include "core/ecn_sharp.h"
#include "net/packet.h"
#include "sim/random.h"
#include "sim/time.h"

namespace ecnsharp {
namespace {

struct ArmDecision {
  bool full = false;
  bool inst = false;
  bool Divergent() const { return full && !inst; }
};

// Drives both arms over one sojourn/time sequence and asserts, on every
// packet, the three properties the analysis predicts:
//   1. the inst-only arm is a pure comparator: mark iff sojourn >= ins;
//   2. the full arm dominates it (same instantaneous condition, OR more);
//   3. any divergent mark lies in the mid-band AND strictly more than one
//      pst_interval after the current above-pst episode began (tracked by a
//      shadow of Algorithm 1's first_above_time).
class DisparityHarness {
 public:
  DisparityHarness(Time ins, Time pst, Time interval)
      : ins_(ins),
        pst_(pst),
        interval_(interval),
        full_(FullConfig(ins, pst, interval)),
        inst_(InstOnlyConfig(ins, interval)) {}

  ArmDecision Step(Time now, Time sojourn) {
    // Shadow of PersistentMarker::Detect's first_above_time bookkeeping.
    if (sojourn < pst_) {
      first_above_ = Time::Zero();
    } else if (first_above_.IsZero()) {
      first_above_ = now;
    }

    ArmDecision d;
    d.full = Mark(full_, now, sojourn);
    d.inst = Mark(inst_, now, sojourn);

    EXPECT_EQ(d.inst, sojourn >= ins_)
        << "inst-only arm is not a pure threshold comparator at t="
        << now.ToMicroseconds() << "us sojourn=" << sojourn.ToMicroseconds();
    if (d.inst) {
      EXPECT_TRUE(d.full) << "full arm missed an instantaneous mark at t="
                          << now.ToMicroseconds() << "us";
    }
    if (d.Divergent()) {
      ++divergent_;
      EXPECT_GE(sojourn, pst_) << "divergent mark below the mid-band";
      EXPECT_LT(sojourn, ins_) << "divergent mark above the mid-band";
      EXPECT_FALSE(first_above_.IsZero());
      EXPECT_GT(now, first_above_ + interval_)
          << "divergent mark before one full detection interval elapsed";
      if (first_divergent_.IsZero()) first_divergent_ = now;
    }
    return d;
  }

  std::uint64_t divergent() const { return divergent_; }
  Time first_divergent() const { return first_divergent_; }
  EcnSharpAqm& full() { return full_; }
  EcnSharpAqm& inst() { return inst_; }

 private:
  static EcnSharpConfig FullConfig(Time ins, Time pst, Time interval) {
    EcnSharpConfig config;
    config.ins_target = ins;
    config.pst_target = pst;
    config.pst_interval = interval;
    return config;
  }

  // Exactly how harness/schemes.cc builds Scheme::kEcnSharpInstOnly.
  static EcnSharpConfig InstOnlyConfig(Time ins, Time interval) {
    EcnSharpConfig config;
    config.ins_target = ins;
    config.pst_target = Time::Max() / 4;
    config.pst_interval = interval;
    return config;
  }

  static bool Mark(EcnSharpAqm& aqm, Time now, Time sojourn) {
    Packet pkt;
    pkt.ecn = EcnCodepoint::kEct0;  // MarkCe is a no-op on non-ECT packets
    aqm.OnDequeue(pkt, QueueSnapshot{}, now, sojourn);
    return pkt.IsCeMarked();
  }

  Time ins_;
  Time pst_;
  Time interval_;
  EcnSharpAqm full_;
  EcnSharpAqm inst_;
  Time first_above_ = Time::Zero();
  Time first_divergent_ = Time::Zero();
  std::uint64_t divergent_ = 0;
};

// Border RTT ratios the composed-fabric experiments sweep.
constexpr std::int64_t kRatios[] = {1, 10, 100};

Time Us(std::int64_t us) { return Time::FromMicroseconds(us); }

// ------------------------- boundary sequences -------------------------------

// Threshold-adjacent sojourns at every ratio, probing the exact detection
// window boundary (strict-greater semantics: now == first_above + interval
// must not detect) and the inclusive instantaneous comparison.
TEST(InterDcDifferentialTest, ThresholdAndWindowBoundariesMatchAtEveryRatio) {
  for (const std::int64_t ratio : kRatios) {
    SCOPED_TRACE(ratio);
    const Time ins = Us(220 * ratio);
    const Time pst = Us(85);
    const Time interval = Us(240 * ratio);
    const std::int64_t soj_us[] = {0,
                                   84,
                                   85,
                                   86,
                                   220 * ratio - 1,
                                   220 * ratio,
                                   220 * ratio + 1};
    for (const std::int64_t s : soj_us) {
      DisparityHarness h(ins, pst, interval);
      const Time t0 = Us(1000);
      const ArmDecision first = h.Step(t0, Us(s));
      // No history yet: only the instantaneous condition can mark.
      EXPECT_EQ(first.full, s >= 220 * ratio);
      // Exactly at the window boundary: strictly-greater, so no detection.
      h.Step(t0 + interval, Us(s));
      // One microsecond past the boundary: persistent detection fires iff
      // the sojourn sat in (or above) the persistent band the whole time.
      const ArmDecision past = h.Step(t0 + interval + Us(1), Us(s));
      EXPECT_EQ(past.full, s >= 85);
      EXPECT_EQ(past.Divergent(), s >= 85 && s < 220 * ratio);
    }
  }
}

// ------------------------ standing-queue analysis ---------------------------

// A fabric-scale standing queue (300 us sojourn plateau) under thresholds
// sized for border ratio R. At R=1 the instantaneous threshold (220 us)
// catches it on every packet and the arms never diverge; at R in {10, 100}
// the WAN-sized threshold (2.2 ms / 22 ms) never fires and ECN#'s
// persistent machine is the only drain signal: first divergent mark exactly
// one detection interval (plus one packet slot) after the plateau starts,
// then the sqrt-shrinking cadence. The mark count is scale-invariant: the
// whole sequence at R=100 is the R=10 one stretched 10x in time.
TEST(InterDcDifferentialTest, StandingQueueDivergenceFollowsTheAnalysis) {
  const Time plateau = Us(300);
  std::uint64_t marks_at_ratio[3] = {0, 0, 0};
  for (std::size_t r = 0; r < 3; ++r) {
    const std::int64_t ratio = kRatios[r];
    SCOPED_TRACE(ratio);
    const Time ins = Us(220 * ratio);
    const Time interval = Us(240 * ratio);
    const Time spacing = Us(10 * ratio);  // 24 departures per interval
    DisparityHarness h(ins, Us(85), interval);

    const Time t0 = Us(500);
    std::uint64_t packets = 0;
    std::uint64_t inst_marks = 0;
    for (Time t = t0; t < t0 + interval * 12.0; t = t + spacing) {
      const ArmDecision d = h.Step(t, plateau);
      ++packets;
      if (d.inst) ++inst_marks;
    }
    ASSERT_FALSE(::testing::Test::HasFailure()) << "ratio " << ratio;
    marks_at_ratio[r] = h.divergent();

    if (ratio == 1) {
      // 300 us >= 220 us: the fabric-sized threshold marks every packet,
      // so the persistent machine never adds anything.
      EXPECT_EQ(inst_marks, packets);
      EXPECT_EQ(h.divergent(), 0u);
    } else {
      // WAN-sized threshold: blind to the standing queue.
      EXPECT_EQ(inst_marks, 0u);
      // Onset: detection needs strictly more than one interval above
      // target, so the first divergent mark lands one packet slot after
      // the t0 + interval boundary.
      EXPECT_EQ(h.first_divergent(), t0 + interval + spacing);
      // Rate: one mark per interval/sqrt(count) — for ~11 post-detection
      // intervals the sqrt series gives ~40 marks, far above one-per-
      // interval and far below one-per-packet.
      EXPECT_GE(h.divergent(), 30u);
      EXPECT_LE(h.divergent(), 55u);
      EXPECT_EQ(h.full().persistent_marks(), h.divergent());
    }
  }
  // Scale invariance: R=100 is R=10 stretched 10x, so the cadence produces
  // the same mark count (up to one packet of integer-truncation slack).
  const std::int64_t delta =
      static_cast<std::int64_t>(marks_at_ratio[1]) -
      static_cast<std::int64_t>(marks_at_ratio[2]);
  EXPECT_LE(delta < 0 ? -delta : delta, 1);
}

// ------------------------- randomized trials --------------------------------

// 5000 seeded trials per ratio: piecewise-constant sojourn plateaus drawn
// from the below-pst / mid-band / above-ins bands, with plateau lengths and
// inter-departure gaps randomized around the detection window. Every packet
// re-asserts the three lockstep properties via the harness; the trial mix
// guarantees both divergent and non-divergent trials occur (every fifth
// trial draws only below-pst and above-ins plateaus, where the analysis
// says the arms must agree exactly).
TEST(InterDcDifferentialTest, RandomizedTrialsDivergeOnlyInTheMidBand) {
  constexpr int kTrials = 5000;
  for (std::size_t r = 0; r < 3; ++r) {
    const std::int64_t ratio = kRatios[r];
    std::uint64_t divergent_trials = 0;
    std::uint64_t calm_trials = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(0x9e3779b9ull + static_cast<std::uint64_t>(trial) * 3 + r);
      const std::int64_t pst_us = 60 + static_cast<std::int64_t>(
                                           rng.UniformInt(41));
      const std::int64_t ins_us =
          (200 + static_cast<std::int64_t>(rng.UniformInt(41))) * ratio;
      const std::int64_t interval_us =
          (200 + static_cast<std::int64_t>(rng.UniformInt(81))) * ratio;
      DisparityHarness h(Us(ins_us), Us(pst_us), Us(interval_us));

      // Calm trials never visit the mid-band — the arms must stay
      // identical end to end.
      const bool calm = trial % 5 == 0;
      if (calm) ++calm_trials;
      std::int64_t t_us = 1 + static_cast<std::int64_t>(
                                  rng.UniformInt(1'000'000));
      int packets = 0;
      while (packets < 200) {
        std::int64_t sojourn_us;
        const double band = rng.Uniform();
        if (calm ? band < 0.6 : band < 0.35) {
          sojourn_us = static_cast<std::int64_t>(rng.UniformInt(pst_us));
        } else if (!calm && band < 0.8) {
          sojourn_us = pst_us + static_cast<std::int64_t>(
                                    rng.UniformInt(ins_us - pst_us));
        } else {
          sojourn_us = ins_us + static_cast<std::int64_t>(
                                    rng.UniformInt(ins_us));
        }
        const std::int64_t plateau_len =
            1 + static_cast<std::int64_t>(rng.UniformInt(40));
        for (std::int64_t p = 0; p < plateau_len && packets < 200; ++p) {
          t_us += 1 + static_cast<std::int64_t>(
                          rng.UniformInt(interval_us / 4));
          h.Step(Us(t_us), Us(sojourn_us));
          ++packets;
        }
        if (::testing::Test::HasFailure()) {
          FAIL() << "trial " << trial << " ratio " << ratio
                 << " diverged from the predicted behaviour (pst=" << pst_us
                 << " ins=" << ins_us << " interval=" << interval_us << ")";
        }
      }
      if (calm) {
        EXPECT_EQ(h.divergent(), 0u)
            << "calm trial " << trial << " ratio " << ratio;
      }
      if (h.divergent() > 0) ++divergent_trials;
    }
    // The mix really exercised both regimes at this ratio.
    EXPECT_GT(divergent_trials, static_cast<std::uint64_t>(kTrials) / 4)
        << "ratio " << ratio;
    EXPECT_GE(calm_trials, static_cast<std::uint64_t>(kTrials) / 5)
        << "ratio " << ratio;
    EXPECT_LE(divergent_trials, static_cast<std::uint64_t>(kTrials) -
                                    calm_trials)
        << "ratio " << ratio;
  }
}

}  // namespace
}  // namespace ecnsharp
