// Tests for the extension modules: strict-priority scheduler, MQ-ECN,
// shared-buffer Dynamic Threshold, and the probabilistic ECN# variant.
#include <gtest/gtest.h>

#include <memory>

#include "core/ecn_sharp_prob.h"
#include "net/shared_buffer.h"
#include "sched/dwrr_queue_disc.h"
#include "sched/fifo_queue_disc.h"
#include "sched/sp_queue_disc.h"

namespace ecnsharp {
namespace {

std::unique_ptr<Packet> ClassedPacket(std::uint8_t cls,
                                      std::uint32_t bytes = 1500) {
  auto pkt = std::make_unique<Packet>();
  pkt->flow = FlowKey{0, 1, cls, 80};
  pkt->traffic_class = cls;
  pkt->size_bytes = bytes;
  pkt->ecn = EcnCodepoint::kEct0;
  return pkt;
}

// --------------------------- strict priority -------------------------------

SpQueueDisc MakeSp(std::size_t classes, std::uint64_t cap = 1ull << 24) {
  std::vector<SpQueueDisc::ClassConfig> configs(classes);
  return SpQueueDisc(cap, std::move(configs));
}

TEST(SpQueueDiscTest, HighPriorityAlwaysFirst) {
  SpQueueDisc disc = MakeSp(3);
  disc.Enqueue(ClassedPacket(2), Time::Zero());
  disc.Enqueue(ClassedPacket(0), Time::Zero());
  disc.Enqueue(ClassedPacket(1), Time::Zero());
  EXPECT_EQ(disc.Dequeue(Time::Zero())->traffic_class, 0);
  EXPECT_EQ(disc.Dequeue(Time::Zero())->traffic_class, 1);
  EXPECT_EQ(disc.Dequeue(Time::Zero())->traffic_class, 2);
  EXPECT_EQ(disc.Dequeue(Time::Zero()), nullptr);
}

TEST(SpQueueDiscTest, LowPriorityStarvesUnderHighLoad) {
  SpQueueDisc disc = MakeSp(2);
  for (int i = 0; i < 10; ++i) {
    disc.Enqueue(ClassedPacket(0), Time::Zero());
    disc.Enqueue(ClassedPacket(1), Time::Zero());
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(disc.Dequeue(Time::Zero())->traffic_class, 0);
  }
  EXPECT_EQ(disc.Dequeue(Time::Zero())->traffic_class, 1);
}

TEST(SpQueueDiscTest, PerClassAqmMarksOnSojourn) {
  std::vector<SpQueueDisc::ClassConfig> configs;
  EcnSharpConfig aqm_config;
  aqm_config.ins_target = Time::FromMicroseconds(50);
  configs.push_back({std::make_unique<EcnSharpAqm>(aqm_config)});
  configs.push_back({nullptr});
  SpQueueDisc disc(1ull << 24, std::move(configs));
  disc.Enqueue(ClassedPacket(0), Time::Zero());
  auto pkt = disc.Dequeue(Time::FromMicroseconds(100));
  EXPECT_TRUE(pkt->IsCeMarked());  // sojourn 100us > 50us instantaneous
}

TEST(SpQueueDiscTest, SharedCapacityOverflow) {
  SpQueueDisc disc = MakeSp(2, /*cap=*/3000);
  EXPECT_TRUE(disc.Enqueue(ClassedPacket(0), Time::Zero()));
  EXPECT_TRUE(disc.Enqueue(ClassedPacket(1), Time::Zero()));
  EXPECT_FALSE(disc.Enqueue(ClassedPacket(0), Time::Zero()));
  EXPECT_EQ(disc.stats().dropped_overflow, 1u);
}

// --------------------------- MQ-ECN ----------------------------------------

DwrrQueueDisc MakeMqEcnDwrr(std::vector<std::uint32_t> weights,
                            std::uint64_t total_threshold) {
  std::vector<DwrrQueueDisc::ClassConfig> classes;
  for (const std::uint32_t w : weights) classes.push_back({w, nullptr});
  DwrrQueueDisc disc(1ull << 24, std::move(classes));
  disc.EnableMqEcn(total_threshold);
  return disc;
}

TEST(MqEcnTest, SingleActiveClassGetsFullThreshold) {
  // The class being asked about always counts as active (the arriving
  // packet backlogs it); idle peers reserve nothing.
  DwrrQueueDisc disc = MakeMqEcnDwrr({1, 1}, 30'000);
  EXPECT_EQ(disc.MqEcnThresholdBytes(0), 30'000u);
  for (int i = 0; i < 5; ++i) disc.Enqueue(ClassedPacket(0), Time::Zero());
  EXPECT_EQ(disc.MqEcnThresholdBytes(0), 30'000u);  // class 1 still idle
  // Once class 1 backlogs, class 0's share halves.
  disc.Enqueue(ClassedPacket(1), Time::Zero());
  EXPECT_EQ(disc.MqEcnThresholdBytes(0), 15'000u);
}

TEST(MqEcnTest, MarksWhenClassExceedsItsShare) {
  DwrrQueueDisc disc = MakeMqEcnDwrr({1, 1}, 12'000);
  // Only class 0 backlogged -> share = 12000 (class 1 idle).
  // Enqueue 1500B packets; while below threshold no marks.
  for (int i = 0; i < 8; ++i) {
    auto pkt = ClassedPacket(0);
    disc.Enqueue(std::move(pkt), Time::Zero());
  }
  EXPECT_EQ(disc.stats().ce_marked, 0u);
  // The 9th packet pushes class 0 beyond 12000 bytes.
  disc.Enqueue(ClassedPacket(0), Time::Zero());
  EXPECT_EQ(disc.stats().ce_marked, 1u);
}

TEST(MqEcnTest, ThresholdShrinksWhenMoreClassesActive) {
  DwrrQueueDisc disc = MakeMqEcnDwrr({1, 1}, 12'000);
  // Backlog class 1 so class 0's share halves to 6000.
  for (int i = 0; i < 2; ++i) disc.Enqueue(ClassedPacket(1), Time::Zero());
  for (int i = 0; i < 4; ++i) disc.Enqueue(ClassedPacket(0), Time::Zero());
  // 5th class-0 packet exceeds 6000 -> marked.
  disc.Enqueue(ClassedPacket(0), Time::Zero());
  EXPECT_GE(disc.stats().ce_marked, 1u);
}

TEST(MqEcnTest, WeightsScaleShares) {
  DwrrQueueDisc disc = MakeMqEcnDwrr({3, 1}, 40'000);
  disc.Enqueue(ClassedPacket(0), Time::Zero());
  disc.Enqueue(ClassedPacket(1), Time::Zero());
  // Class 0 share = 3/4 * 40000 = 30000; class 1 share = 10000.
  EXPECT_EQ(disc.MqEcnThresholdBytes(0), 30'000u);
  EXPECT_EQ(disc.MqEcnThresholdBytes(1), 10'000u);
}

// --------------------------- shared buffer ---------------------------------

TEST(SharedBufferTest, DynamicThresholdAdmission) {
  SharedBufferPool pool(100'000, /*alpha=*/1.0);
  // Empty pool: a queue may grow to alpha * free = 100000.
  EXPECT_TRUE(pool.TryReserve(0, 1500));
  EXPECT_EQ(pool.used_bytes(), 1500u);
  // A queue already holding more than alpha*free is refused.
  EXPECT_FALSE(pool.TryReserve(99'000, 1500));
}

TEST(SharedBufferTest, HotQueueTakesLargeShare) {
  SharedBufferPool pool(120'000, 1.0);
  std::uint64_t queue = 0;
  int admitted = 0;
  while (pool.TryReserve(queue, 1500)) {
    queue += 1500;
    ++admitted;
  }
  // alpha=1: the single hot queue converges to total/2.
  EXPECT_NEAR(admitted * 1500.0, 60'000.0, 1500.0);
}

TEST(SharedBufferTest, ReleaseReturnsCapacity) {
  SharedBufferPool pool(10'000, 1.0);
  ASSERT_TRUE(pool.TryReserve(0, 4000));
  ASSERT_TRUE(pool.TryReserve(0, 3000));
  pool.Release(4000);
  EXPECT_EQ(pool.used_bytes(), 3000u);
  EXPECT_TRUE(pool.TryReserve(0, 3000));
}

TEST(SharedBufferTest, FifoIntegration) {
  SharedBufferPool pool(9'000, 1.0);
  FifoQueueDisc a(pool, nullptr);
  FifoQueueDisc b(pool, nullptr);
  // Queue a grabs what DT allows.
  int a_count = 0;
  while (a.Enqueue(ClassedPacket(0), Time::Zero())) ++a_count;
  EXPECT_GT(a_count, 0);
  EXPECT_EQ(a.stats().dropped_overflow, 1u);
  // Queue b can still get some share of the remaining free buffer.
  EXPECT_TRUE(b.Enqueue(ClassedPacket(0), Time::Zero()));
  // Draining a frees pool space.
  const std::uint64_t used_before = pool.used_bytes();
  a.Dequeue(Time::Zero());
  EXPECT_LT(pool.used_bytes(), used_before);
}

// --------------------------- probabilistic ECN# ----------------------------

EcnSharpProbConfig ProbConfig() {
  EcnSharpProbConfig config;
  config.t_min = Time::FromMicroseconds(40);
  config.t_max = Time::FromMicroseconds(200);
  config.p_max = 0.5;
  config.pst_target = Time::FromMicroseconds(10);
  config.pst_interval = Time::FromMicroseconds(240);
  return config;
}

double ProbMarkFraction(EcnSharpProbabilisticAqm& aqm, Time sojourn,
                        int packets, Time start = Time::Zero()) {
  int marks = 0;
  Time t = start;
  for (int i = 0; i < packets; ++i) {
    t += Time::FromMicroseconds(2);
    Packet pkt;
    pkt.size_bytes = 1500;
    pkt.ecn = EcnCodepoint::kEct0;
    aqm.OnDequeue(pkt, QueueSnapshot{10, 15'000}, t, sojourn);
    if (pkt.IsCeMarked()) ++marks;
  }
  return static_cast<double>(marks) / packets;
}

TEST(EcnSharpProbTest, NoInstantMarkBelowTmin) {
  EcnSharpProbabilisticAqm aqm(ProbConfig(), 1);
  // Below t_min AND below pst_target: nothing ever marks.
  const double fraction =
      ProbMarkFraction(aqm, Time::FromMicroseconds(5), 2000);
  EXPECT_DOUBLE_EQ(fraction, 0.0);
}

TEST(EcnSharpProbTest, AlwaysMarksAboveTmax) {
  EcnSharpProbabilisticAqm aqm(ProbConfig(), 1);
  const double fraction =
      ProbMarkFraction(aqm, Time::FromMicroseconds(300), 500);
  EXPECT_DOUBLE_EQ(fraction, 1.0);
}

TEST(EcnSharpProbTest, RampIsMonotoneInSojourn) {
  // Disable the persistent detector so only the ramp is measured.
  EcnSharpProbConfig ramp_only = ProbConfig();
  ramp_only.pst_target = Time::Max() / 4;
  EcnSharpProbabilisticAqm low(ramp_only, 42);
  EcnSharpProbabilisticAqm mid(ramp_only, 42);
  EcnSharpProbabilisticAqm high(ramp_only, 42);
  const double f_low =
      ProbMarkFraction(low, Time::FromMicroseconds(60), 4000);
  const double f_mid =
      ProbMarkFraction(mid, Time::FromMicroseconds(120), 4000);
  const double f_high =
      ProbMarkFraction(high, Time::FromMicroseconds(180), 4000);
  EXPECT_LT(f_low, f_mid);
  EXPECT_LT(f_mid, f_high);
  // Expected ramp probabilities: ~0.0625, ~0.25, ~0.4375 (plus sparse
  // persistent marks).
  EXPECT_NEAR(f_low, 0.0625, 0.04);
  EXPECT_NEAR(f_high, 0.4375, 0.06);
}

TEST(EcnSharpProbTest, PersistentMarkingStillFiresInsideRampDeadZone) {
  // Sojourn between pst_target and t_min: the ramp never marks, but the
  // persistent detector must (after one interval), exactly like base ECN#.
  EcnSharpProbConfig config = ProbConfig();
  EcnSharpProbabilisticAqm aqm(config, 1);
  int marks = 0;
  for (int t_us = 0; t_us < 2000; t_us += 5) {
    Packet pkt;
    pkt.size_bytes = 1500;
    pkt.ecn = EcnCodepoint::kEct0;
    aqm.OnDequeue(pkt, QueueSnapshot{5, 7500}, Time::Microseconds(t_us),
                  Time::FromMicroseconds(20));  // > pst_target, < t_min
    if (pkt.IsCeMarked()) ++marks;
  }
  EXPECT_GE(marks, 2);
  EXPECT_LE(marks, 40);  // conservative cadence, not per-packet
}

}  // namespace
}  // namespace ecnsharp
