// Convergence/fairness integration tests: competing DCTCP flows under each
// marking scheme share the bottleneck fairly (Jain index near 1).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/schemes.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/dumbbell.h"

namespace ecnsharp {
namespace {

// N long-lived flows from N senders with EQUAL base RTTs; returns the Jain
// index of delivered bytes over the measurement window.
double FairnessUnder(Scheme scheme, std::size_t flows) {
  Simulator sim;
  DumbbellConfig config;
  config.senders = flows;
  config.base_rtt = Time::FromMicroseconds(80);
  const SchemeParams params = SimulationSchemeParams();
  Dumbbell topo(sim, config, MakeFifoDisc(scheme, params));
  // No netem extras: equal RTTs isolate the AQM's fairness behaviour.

  std::vector<TcpSender*> senders;
  for (std::size_t i = 0; i < flows; ++i) {
    senders.push_back(&topo.sender_stack(i).StartFlow(
        topo.receiver_address(), 1ull << 40, nullptr));
  }
  sim.RunUntil(Time::Milliseconds(50));  // convergence
  std::vector<std::uint64_t> before;
  before.reserve(flows);
  for (auto* s : senders) before.push_back(s->bytes_acked());
  sim.RunUntil(Time::Milliseconds(250));
  std::vector<double> delivered;
  delivered.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    delivered.push_back(
        static_cast<double>(senders[i]->bytes_acked() - before[i]));
  }
  return JainIndex(delivered);
}

struct FairnessParam {
  Scheme scheme;
  std::size_t flows;
};

class FairnessTest : public ::testing::TestWithParam<FairnessParam> {};

TEST_P(FairnessTest, LongFlowsShareFairly) {
  const FairnessParam param = GetParam();
  EXPECT_GT(FairnessUnder(param.scheme, param.flows), 0.9)
      << SchemeName(param.scheme) << " with " << param.flows << " flows";
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndFanIn, FairnessTest,
    ::testing::Values(FairnessParam{Scheme::kDctcpRedTail, 2},
                      FairnessParam{Scheme::kDctcpRedTail, 8},
                      FairnessParam{Scheme::kEcnSharp, 2},
                      FairnessParam{Scheme::kEcnSharp, 8},
                      FairnessParam{Scheme::kEcnSharpTofino, 4},
                      FairnessParam{Scheme::kTcn, 4},
                      FairnessParam{Scheme::kCodel, 4}),
    [](const ::testing::TestParamInfo<FairnessParam>& info) {
      std::string name = SchemeName(info.param.scheme);
      for (char& c : name) {
        if (c == '-' || c == '#') c = '_';
      }
      return name + "_x" + std::to_string(info.param.flows);
    });

TEST(FairnessTest, ThroughputConservedAcrossFlows) {
  // Total delivered bytes over the window ~ bottleneck capacity regardless
  // of the number of competing flows.
  Simulator sim;
  DumbbellConfig config;
  config.senders = 4;
  Dumbbell topo(sim, config,
                MakeFifoDisc(Scheme::kEcnSharp, SimulationSchemeParams()));
  std::vector<TcpSender*> senders;
  for (std::size_t i = 0; i < 4; ++i) {
    senders.push_back(&topo.sender_stack(i).StartFlow(
        topo.receiver_address(), 1ull << 40, nullptr));
  }
  sim.RunUntil(Time::Milliseconds(50));
  std::uint64_t before = 0;
  for (auto* s : senders) before += s->bytes_acked();
  sim.RunUntil(Time::Milliseconds(150));
  std::uint64_t after = 0;
  for (auto* s : senders) after += s->bytes_acked();
  const double gbps = static_cast<double>(after - before) * 8.0 / 0.1 * 1e-9;
  EXPECT_GT(gbps, 8.5);
  EXPECT_LE(gbps, 10.0);
}

}  // namespace
}  // namespace ecnsharp
