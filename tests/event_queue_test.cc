// Tests for the simulator's generation-tagged event-slot scheme: FIFO
// ordering among same-timestamp events, cancellation life-cycle, and the
// guarantee that a stale EventId can never touch a recycled slot's new
// occupant.
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/time.h"

namespace ecnsharp {
namespace {

TEST(EventQueueTest, SameTimestampEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const Time t = Time::FromMicroseconds(10);
  for (int i = 0; i < 64; ++i) {
    sim.ScheduleAt(t, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, FifoOrderSurvivesInterleavedCancellation) {
  // Cancelling events between same-timestamp peers must not disturb the
  // schedule-order dispatch of the survivors.
  Simulator sim;
  std::vector<int> order;
  const Time t = Time::FromMicroseconds(5);
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(sim.ScheduleAt(t, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 32; i += 2) sim.Cancel(ids[i]);
  sim.Run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], 2 * i + 1);
}

TEST(EventQueueTest, CancelAfterExecuteIsNoOp) {
  Simulator sim;
  int fired = 0;
  const EventId id =
      sim.Schedule(Time::FromMicroseconds(1), [&fired] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.live_events(), 0u);
  sim.Cancel(id);  // must not corrupt bookkeeping
  EXPECT_EQ(sim.live_events(), 0u);
  int late = 0;
  sim.Schedule(Time::FromMicroseconds(1), [&late] { ++late; });
  EXPECT_EQ(sim.live_events(), 1u);
  sim.Run();
  EXPECT_EQ(late, 1);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, DoubleCancelIsNoOp) {
  Simulator sim;
  int fired = 0;
  const EventId id =
      sim.Schedule(Time::FromMicroseconds(1), [&fired] { ++fired; });
  sim.Schedule(Time::FromMicroseconds(2), [&fired] { fired += 10; });
  sim.Cancel(id);
  EXPECT_EQ(sim.live_events(), 1u);
  sim.Cancel(id);
  EXPECT_EQ(sim.live_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  // After an event executes or is cancelled its slot returns to a free list
  // and is handed to the next Schedule. The stale id for the old occupant
  // carries the old generation, so cancelling it must leave the new
  // occupant untouched.
  Simulator sim;
  int first = 0;
  const EventId stale =
      sim.Schedule(Time::FromMicroseconds(1), [&first] { ++first; });
  sim.Cancel(stale);  // slot goes to the free list
  int second = 0;
  const EventId fresh =
      sim.Schedule(Time::FromMicroseconds(2), [&second] { ++second; });
  // LIFO free list: the replacement reuses the same slot, differing only in
  // generation.
  EXPECT_EQ(fresh.seq & 0xffffffffu, stale.seq & 0xffffffffu);
  EXPECT_NE(fresh.seq, stale.seq);
  sim.Cancel(stale);  // stale generation: must be a no-op
  EXPECT_EQ(sim.live_events(), 1u);
  sim.Run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(EventQueueTest, StaleIdFromExecutedEventCannotCancelReplacement) {
  Simulator sim;
  EventId first_id;
  int second = 0;
  Simulator* psim = &sim;
  first_id = sim.Schedule(Time::FromMicroseconds(1), [psim, &first_id,
                                                      &second] {
    // The executing event's slot is already released; the next Schedule
    // recycles it. Cancelling with the executing event's own id must not
    // cancel the newcomer.
    psim->Schedule(Time::FromMicroseconds(1), [&second] { ++second; });
    psim->Cancel(first_id);
  });
  sim.Run();
  EXPECT_EQ(second, 1);
}

TEST(EventQueueTest, CancelDuringRunPreservesRemainingSchedule) {
  Simulator sim;
  std::string log;
  EventId b_id;
  sim.Schedule(Time::FromMicroseconds(1), [&] {
    log += 'a';
    sim.Cancel(b_id);
  });
  b_id = sim.Schedule(Time::FromMicroseconds(2), [&] { log += 'b'; });
  sim.Schedule(Time::FromMicroseconds(3), [&] { log += 'c'; });
  sim.Run();
  EXPECT_EQ(log, "ac");
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(EventQueueTest, LiveEventsAcrossMixedLifecycle) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.Schedule(Time::FromMicroseconds(1 + i), [] {}));
  }
  EXPECT_EQ(sim.live_events(), 10u);
  for (int i = 0; i < 5; ++i) sim.Cancel(ids[i]);
  EXPECT_EQ(sim.live_events(), 5u);
  sim.RunUntil(Time::FromMicroseconds(7));
  // Events at 6 and 7 us survive cancellation and fall inside the horizon.
  EXPECT_EQ(sim.events_executed(), 2u);
  EXPECT_EQ(sim.live_events(), 3u);
  sim.Run();
  EXPECT_EQ(sim.live_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(EventQueueTest, HeavyChurnReusesSlotsWithoutGrowth) {
  // A self-rescheduling timer ring should settle into a fixed set of slots;
  // live_events stays constant while generations churn.
  Simulator sim;
  int remaining = 10'000;
  struct Ticker {
    Simulator& sim;
    int& remaining;
    void operator()() const {
      if (--remaining > 0) {
        sim.Schedule(Time::Nanoseconds(100), Ticker{sim, remaining});
      }
    }
  };
  sim.Schedule(Time::Nanoseconds(100), Ticker{sim, remaining});
  sim.Run();
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(sim.events_executed(), 10'000u);
  EXPECT_EQ(sim.live_events(), 0u);
}

TEST(EventQueueTest, WheelEngagementPreservesExecutionOrder) {
  // Push the pending set past the wheel-engagement threshold and check the
  // executed sequence is still exactly (when, schedule-order): engagement
  // must be observationally invisible. Times deliberately mix near-horizon
  // (wheel) and far-horizon (overflow) scales, plus same-timestamp ties.
  Simulator sim;
  std::vector<std::pair<std::int64_t, int>> expected;
  std::vector<std::pair<std::int64_t, int>> actual;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 6000; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    // 0..~1 ms, quantized to 100 ns so ties are common.
    const std::int64_t ns = static_cast<std::int64_t>((rng >> 33) % 10000) * 100;
    expected.emplace_back(ns, i);
    sim.ScheduleAt(Time::Nanoseconds(ns),
                   [&actual, ns, i] { actual.emplace_back(ns, i); });
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sim.Run();
  EXPECT_EQ(actual, expected);
}

TEST(EventQueueTest, WheelModeCancellationPreservesSurvivors) {
  // Same engagement scenario, but cancel a swath after the wheel is live:
  // generation-tag staleness must work identically in bucket and overflow
  // storage.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 6000; ++i) {
    const std::int64_t ns = 1000 + (i % 50) * 200;  // dense near-horizon ties
    ids.push_back(sim.ScheduleAt(Time::Nanoseconds(ns),
                                 [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 6000; i += 3) sim.Cancel(ids[i]);
  sim.Run();
  EXPECT_EQ(order.size(), 4000u);
  for (int v : order) EXPECT_NE(v % 3, 0);
  EXPECT_EQ(sim.live_events(), 0u);
}

TEST(EventQueueTest, PinnedEventFiresAndRearmsWithoutNewClosures) {
  Simulator sim;
  int fires = 0;
  PinnedEventId tick;
  tick = sim.CreatePinned([&] {
    ++fires;
    if (fires < 5) {
      sim.SchedulePinnedAt(tick, sim.Now() + Time::Nanoseconds(100));
    }
  });
  EXPECT_FALSE(sim.PinnedArmed(tick));
  sim.SchedulePinnedAt(tick, Time::Nanoseconds(100));
  EXPECT_TRUE(sim.PinnedArmed(tick));
  sim.Run();
  EXPECT_EQ(fires, 5);
  EXPECT_FALSE(sim.PinnedArmed(tick));
  EXPECT_EQ(sim.live_events(), 0u);
  sim.DestroyPinned(tick);
}

TEST(EventQueueTest, PinnedCancelDisarmsOccurrenceButKeepsRegistration) {
  Simulator sim;
  int fires = 0;
  const PinnedEventId tick = sim.CreatePinned([&] { ++fires; });
  sim.SchedulePinnedAt(tick, Time::Nanoseconds(100));
  sim.CancelPinned(tick);
  EXPECT_FALSE(sim.PinnedArmed(tick));
  EXPECT_EQ(sim.live_events(), 0u);
  sim.Run();
  EXPECT_EQ(fires, 0);
  // The registration survives: re-arming after a cancel works.
  sim.SchedulePinnedAt(tick, Time::Nanoseconds(200));
  sim.Run();
  EXPECT_EQ(fires, 1);
  sim.DestroyPinned(tick);
  EXPECT_EQ(sim.live_events(), 0u);
}

TEST(EventQueueTest, PinnedAndOneShotShareFifoOrder) {
  // A pinned occurrence armed with the default (next) order stamp slots into
  // the same FIFO sequence as surrounding one-shot events.
  Simulator sim;
  std::string log;
  const Time t = Time::FromMicroseconds(1);
  sim.ScheduleAt(t, [&] { log += 'a'; });
  const PinnedEventId p = sim.CreatePinned([&] { log += 'b'; });
  sim.SchedulePinnedAt(p, t);
  sim.ScheduleAt(t, [&] { log += 'c'; });
  sim.Run();
  EXPECT_EQ(log, "abc");
  sim.DestroyPinned(p);
}

TEST(EventQueueTest, ReservedOrderStampInterleavesAtReservedPosition) {
  // ReserveOrder now, schedule with it later: the event must execute where
  // the stamp was reserved, not where the schedule call happened — the
  // contract burst-batched wire delivery depends on.
  Simulator sim;
  std::string log;
  const Time t = Time::FromMicroseconds(2);
  sim.ScheduleAt(t, [&] { log += 'a'; });
  const std::uint64_t slot_b = sim.ReserveOrder();
  sim.ScheduleAt(t, [&] { log += 'c'; });
  // Scheduled last, reserved between a and c.
  sim.ScheduleAtOrdered(t, slot_b, [&] { log += 'b'; });
  const PinnedEventId p = sim.CreatePinned([&] { log += 'd'; });
  const std::uint64_t slot_d = sim.ReserveOrder();
  sim.ScheduleAt(t, [&] { log += 'e'; });
  sim.SchedulePinnedAtOrdered(p, t, slot_d);
  sim.Run();
  EXPECT_EQ(log, "abcde");
  sim.DestroyPinned(p);
}

TEST(EventQueueTest, ExecuteBatchDrainsExactlyOneInstant) {
  Simulator sim;
  std::string log;
  const Time t1 = Time::FromMicroseconds(1);
  const Time t2 = Time::FromMicroseconds(2);
  sim.ScheduleAt(t1, [&] {
    log += 'a';
    // Chained same-instant work joins the batch.
    sim.ScheduleAt(t1, [&] { log += 'c'; });
  });
  sim.ScheduleAt(t1, [&] { log += 'b'; });
  sim.ScheduleAt(t2, [&] { log += 'z'; });
  EXPECT_EQ(sim.ExecuteBatch(), 3u);
  EXPECT_EQ(log, "abc");
  EXPECT_EQ(sim.Now(), t1);
  EXPECT_EQ(sim.ExecuteBatch(), 1u);
  EXPECT_EQ(log, "abcz");
  EXPECT_EQ(sim.ExecuteBatch(), 0u);
}

TEST(EventQueueTest, PeekNextTimeSkipsCancelledEvents) {
  Simulator sim;
  const EventId early = sim.Schedule(Time::FromMicroseconds(1), [] {});
  sim.Schedule(Time::FromMicroseconds(3), [] {});
  Time next;
  ASSERT_TRUE(sim.PeekNextTime(&next));
  EXPECT_EQ(next, Time::FromMicroseconds(1));
  sim.Cancel(early);
  ASSERT_TRUE(sim.PeekNextTime(&next));
  EXPECT_EQ(next, Time::FromMicroseconds(3));
  sim.Run();
  EXPECT_FALSE(sim.PeekNextTime(&next));
}

}  // namespace
}  // namespace ecnsharp
