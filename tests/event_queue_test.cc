// Tests for the simulator's generation-tagged event-slot scheme: FIFO
// ordering among same-timestamp events, cancellation life-cycle, and the
// guarantee that a stale EventId can never touch a recycled slot's new
// occupant.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/time.h"

namespace ecnsharp {
namespace {

TEST(EventQueueTest, SameTimestampEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const Time t = Time::FromMicroseconds(10);
  for (int i = 0; i < 64; ++i) {
    sim.ScheduleAt(t, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, FifoOrderSurvivesInterleavedCancellation) {
  // Cancelling events between same-timestamp peers must not disturb the
  // schedule-order dispatch of the survivors.
  Simulator sim;
  std::vector<int> order;
  const Time t = Time::FromMicroseconds(5);
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(sim.ScheduleAt(t, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 32; i += 2) sim.Cancel(ids[i]);
  sim.Run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], 2 * i + 1);
}

TEST(EventQueueTest, CancelAfterExecuteIsNoOp) {
  Simulator sim;
  int fired = 0;
  const EventId id =
      sim.Schedule(Time::FromMicroseconds(1), [&fired] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.live_events(), 0u);
  sim.Cancel(id);  // must not corrupt bookkeeping
  EXPECT_EQ(sim.live_events(), 0u);
  int late = 0;
  sim.Schedule(Time::FromMicroseconds(1), [&late] { ++late; });
  EXPECT_EQ(sim.live_events(), 1u);
  sim.Run();
  EXPECT_EQ(late, 1);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, DoubleCancelIsNoOp) {
  Simulator sim;
  int fired = 0;
  const EventId id =
      sim.Schedule(Time::FromMicroseconds(1), [&fired] { ++fired; });
  sim.Schedule(Time::FromMicroseconds(2), [&fired] { fired += 10; });
  sim.Cancel(id);
  EXPECT_EQ(sim.live_events(), 1u);
  sim.Cancel(id);
  EXPECT_EQ(sim.live_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  // After an event executes or is cancelled its slot returns to a free list
  // and is handed to the next Schedule. The stale id for the old occupant
  // carries the old generation, so cancelling it must leave the new
  // occupant untouched.
  Simulator sim;
  int first = 0;
  const EventId stale =
      sim.Schedule(Time::FromMicroseconds(1), [&first] { ++first; });
  sim.Cancel(stale);  // slot goes to the free list
  int second = 0;
  const EventId fresh =
      sim.Schedule(Time::FromMicroseconds(2), [&second] { ++second; });
  // LIFO free list: the replacement reuses the same slot, differing only in
  // generation.
  EXPECT_EQ(fresh.seq & 0xffffffffu, stale.seq & 0xffffffffu);
  EXPECT_NE(fresh.seq, stale.seq);
  sim.Cancel(stale);  // stale generation: must be a no-op
  EXPECT_EQ(sim.live_events(), 1u);
  sim.Run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(EventQueueTest, StaleIdFromExecutedEventCannotCancelReplacement) {
  Simulator sim;
  EventId first_id;
  int second = 0;
  Simulator* psim = &sim;
  first_id = sim.Schedule(Time::FromMicroseconds(1), [psim, &first_id,
                                                      &second] {
    // The executing event's slot is already released; the next Schedule
    // recycles it. Cancelling with the executing event's own id must not
    // cancel the newcomer.
    psim->Schedule(Time::FromMicroseconds(1), [&second] { ++second; });
    psim->Cancel(first_id);
  });
  sim.Run();
  EXPECT_EQ(second, 1);
}

TEST(EventQueueTest, CancelDuringRunPreservesRemainingSchedule) {
  Simulator sim;
  std::string log;
  EventId b_id;
  sim.Schedule(Time::FromMicroseconds(1), [&] {
    log += 'a';
    sim.Cancel(b_id);
  });
  b_id = sim.Schedule(Time::FromMicroseconds(2), [&] { log += 'b'; });
  sim.Schedule(Time::FromMicroseconds(3), [&] { log += 'c'; });
  sim.Run();
  EXPECT_EQ(log, "ac");
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(EventQueueTest, LiveEventsAcrossMixedLifecycle) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.Schedule(Time::FromMicroseconds(1 + i), [] {}));
  }
  EXPECT_EQ(sim.live_events(), 10u);
  for (int i = 0; i < 5; ++i) sim.Cancel(ids[i]);
  EXPECT_EQ(sim.live_events(), 5u);
  sim.RunUntil(Time::FromMicroseconds(7));
  // Events at 6 and 7 us survive cancellation and fall inside the horizon.
  EXPECT_EQ(sim.events_executed(), 2u);
  EXPECT_EQ(sim.live_events(), 3u);
  sim.Run();
  EXPECT_EQ(sim.live_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(EventQueueTest, HeavyChurnReusesSlotsWithoutGrowth) {
  // A self-rescheduling timer ring should settle into a fixed set of slots;
  // live_events stays constant while generations churn.
  Simulator sim;
  int remaining = 10'000;
  struct Ticker {
    Simulator& sim;
    int& remaining;
    void operator()() const {
      if (--remaining > 0) {
        sim.Schedule(Time::Nanoseconds(100), Ticker{sim, remaining});
      }
    }
  };
  sim.Schedule(Time::Nanoseconds(100), Ticker{sim, remaining});
  sim.Run();
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(sim.events_executed(), 10'000u);
  EXPECT_EQ(sim.live_events(), 0u);
}

}  // namespace
}  // namespace ecnsharp
