// Scripted sender-side tests: drive a TcpSender with hand-crafted ACK
// streams and verify congestion-control state machines directly (window
// growth, fast retransmit, RTO backoff, DCTCP alpha arithmetic, classic-ECN
// reaction, CWR emission).
#include "transport/tcp_sender.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "net/host.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"

namespace ecnsharp {
namespace {

// Captures every segment the sender's host transmits.
class SegmentCapture : public PacketSink {
 public:
  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    segments.push_back(std::move(pkt));
  }
  std::vector<std::unique_ptr<Packet>> segments;
};

struct SenderHarness {
  Simulator sim;
  SegmentCapture capture;
  Host host{sim, 0};
  std::optional<FlowRecord> completed;
  std::unique_ptr<TcpSender> sender;

  // With `arena` the sender's hot CC fields are re-homed into the SoA rows
  // before Start(), as TcpStack does; without, it runs on local storage.
  explicit SenderHarness(const TcpConfig& config, std::uint64_t flow_size,
                         FlowHotArena* arena = nullptr) {
    auto nic = std::make_unique<EgressPort>(
        sim, DataRate::GigabitsPerSecond(100), Time::Zero(),
        std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
    nic->ConnectTo(capture);
    host.AttachNic(std::move(nic));
    sender = std::make_unique<TcpSender>(
        host, config, FlowKey{0, 1, 100, 80}, flow_size, 0,
        [this](const FlowRecord& r) { completed = r; });
    if (arena != nullptr) sender->BindFlowHotState(*arena);
    sender->Start();
    Flush();
  }

  // Runs the NIC dry without firing the >=5 ms RTO timer.
  void Flush() { sim.RunFor(Time::Microseconds(50)); }

  void Ack(std::uint64_t ack_no, bool ece = false) {
    Packet ack;
    ack.flow = FlowKey{1, 0, 80, 100};
    ack.type = PacketType::kAck;
    ack.ack = ack_no;
    ack.ece = ece;
    sender->OnAck(ack);
    Flush();
  }

  std::size_t sent() const { return capture.segments.size(); }
  const Packet& segment(std::size_t i) const { return *capture.segments[i]; }
  const Packet& last() const { return *capture.segments.back(); }
};

TcpConfig NoEcn() {
  TcpConfig config;
  config.ecn_mode = EcnMode::kNone;
  return config;
}

TEST(TcpSenderTest, InitialWindowBurst) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 10;
  SenderHarness h(config, 100 * 1460);
  EXPECT_EQ(h.sent(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.segment(i).seq, i * 1460);
    EXPECT_EQ(h.segment(i).payload_bytes, 1460u);
    EXPECT_EQ(h.segment(i).size_bytes, 1500u);
  }
}

TEST(TcpSenderTest, ShortFlowSendsPartialSegmentWithPsh) {
  SenderHarness h(NoEcn(), 2000);
  ASSERT_EQ(h.sent(), 2u);
  EXPECT_EQ(h.segment(0).payload_bytes, 1460u);
  EXPECT_FALSE(h.segment(0).psh);
  EXPECT_EQ(h.segment(1).payload_bytes, 540u);
  EXPECT_TRUE(h.segment(1).psh);
}

TEST(TcpSenderTest, SlowStartDoublesPerRtt) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 2;
  SenderHarness h(config, 1000 * 1460);
  EXPECT_EQ(h.sent(), 2u);
  // Each ACK of new data in slow start grows cwnd by the bytes acked:
  // acking both segments doubles the window.
  h.Ack(2 * 1460);
  EXPECT_EQ(h.sent(), 2u + 4u);
  h.Ack(6 * 1460);
  EXPECT_EQ(h.sent(), 6u + 8u);
  EXPECT_NEAR(h.sender->cwnd_bytes(), 8 * 1460.0, 1.0);
}

TEST(TcpSenderTest, CompletionFiresOnceFullyAcked) {
  SenderHarness h(NoEcn(), 3 * 1460);
  h.Ack(2 * 1460);
  EXPECT_FALSE(h.completed.has_value());
  h.Ack(3 * 1460);
  ASSERT_TRUE(h.completed.has_value());
  EXPECT_TRUE(h.sender->complete());
  EXPECT_EQ(h.completed->size_bytes, 3u * 1460);
  EXPECT_EQ(h.completed->timeouts, 0u);
}

TEST(TcpSenderTest, ThreeDupAcksTriggerFastRetransmit) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 8;
  SenderHarness h(config, 100 * 1460);
  ASSERT_EQ(h.sent(), 8u);
  // Segment 0 lost: receiver dupacks at 0.
  h.Ack(0);
  h.Ack(0);
  EXPECT_EQ(h.sender->record().fast_retransmits, 0u);
  h.Ack(0);
  EXPECT_EQ(h.sender->record().fast_retransmits, 1u);
  // The retransmission is the missing head segment.
  EXPECT_EQ(h.last().seq, 0u);
}

TEST(TcpSenderTest, RecoveryExitsOnFullAck) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 8;
  SenderHarness h(config, 100 * 1460);
  const double before = h.sender->cwnd_bytes();
  h.Ack(0);
  h.Ack(0);
  h.Ack(0);
  // Full cumulative ack of everything sent so far ends recovery with
  // cwnd = ssthresh = half the pre-loss window.
  h.Ack(8 * 1460);
  EXPECT_NEAR(h.sender->cwnd_bytes(), before / 2.0, 1.0);
}

TEST(TcpSenderTest, NewRenoPartialAckRetransmitsNextHole) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 8;
  SenderHarness h(config, 100 * 1460);
  h.Ack(0);
  h.Ack(0);
  h.Ack(0);  // fast retransmit of segment 0
  const std::size_t sent_before = h.sent();
  // Partial ack: segment 0 repaired but segment 1 also lost.
  h.Ack(1460);
  EXPECT_GT(h.sent(), sent_before);
  EXPECT_EQ(h.last().seq, 1460u);
}

TEST(TcpSenderTest, RtoRetransmitsHeadAndCollapsesWindow) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 8;
  config.min_rto = Time::Milliseconds(5);
  SenderHarness h(config, 100 * 1460);
  ASSERT_EQ(h.sent(), 8u);
  h.sim.RunFor(Time::Milliseconds(10));  // no ACKs: RTO fires
  EXPECT_EQ(h.sender->record().timeouts, 1u);
  EXPECT_EQ(h.last().seq, 0u);
  EXPECT_NEAR(h.sender->cwnd_bytes(), 1460.0, 1.0);
}

TEST(TcpSenderTest, RtoBacksOffExponentially) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 2;
  config.min_rto = Time::Milliseconds(5);
  SenderHarness h(config, 100 * 1460);
  h.sim.RunFor(Time::Milliseconds(6));
  EXPECT_EQ(h.sender->record().timeouts, 1u);
  // Second timeout waits ~10 ms, so nothing at +6 ms...
  h.sim.RunFor(Time::Milliseconds(6));
  EXPECT_EQ(h.sender->record().timeouts, 1u);
  // ...but it arrives by +12 ms.
  h.sim.RunFor(Time::Milliseconds(6));
  EXPECT_EQ(h.sender->record().timeouts, 2u);
}

TEST(TcpSenderTest, DctcpAlphaFollowsMarkedFraction) {
  TcpConfig config;  // DCTCP
  config.init_cwnd_segments = 4;
  config.dctcp_init_alpha = 1.0;
  SenderHarness h(config, 10'000 * 1460);
  // Whole windows with no ECE: alpha decays by (1-g) per window.
  double expected = 1.0;
  std::uint64_t acked = 0;
  for (int window = 0; window < 5; ++window) {
    // Ack everything outstanding in one cumulative ACK (window boundary).
    const std::uint64_t outstanding = h.sent() * 1460;
    acked = outstanding;
    h.Ack(acked, /*ece=*/false);
    expected *= (1.0 - config.dctcp_g);
    EXPECT_NEAR(h.sender->dctcp_alpha(), expected, 1e-9) << window;
  }
  // A fully marked window pulls alpha back up: alpha = (1-g)a + g*1.
  h.Ack(h.sent() * 1460, /*ece=*/true);
  expected = (1.0 - config.dctcp_g) * expected + config.dctcp_g;
  EXPECT_NEAR(h.sender->dctcp_alpha(), expected, 1e-9);
}

TEST(TcpSenderTest, DctcpCutsProportionallyToAlpha) {
  TcpConfig config;
  config.init_cwnd_segments = 8;
  config.dctcp_init_alpha = 0.5;
  SenderHarness h(config, 10'000 * 1460);
  const double before = h.sender->cwnd_bytes();
  // ECE-marked ack covering the first window triggers the per-window cut
  // cwnd *= (1 - alpha/2) with the refreshed alpha.
  h.Ack(8 * 1460, /*ece=*/true);
  const double alpha = h.sender->dctcp_alpha();
  // cwnd also grew by the slow-start byte counting before/after the cut;
  // accept the cut factor within that slack.
  EXPECT_LT(h.sender->cwnd_bytes(), before);
  EXPECT_GT(h.sender->cwnd_bytes(), before * (1.0 - alpha / 2.0) * 0.9);
}

TEST(TcpSenderTest, ClassicEcnHalvesOncePerWindow) {
  TcpConfig config;
  config.ecn_mode = EcnMode::kClassic;
  config.init_cwnd_segments = 8;
  SenderHarness h(config, 10'000 * 1460);
  const double before = h.sender->cwnd_bytes();
  h.Ack(1460, /*ece=*/true);
  const double after_first = h.sender->cwnd_bytes();
  // Halved, plus at most one congestion-avoidance increment of growth.
  EXPECT_NEAR(after_first, before / 2.0, 500.0);
  // A second ECE within the same window must NOT cut again.
  h.Ack(2 * 1460, /*ece=*/true);
  EXPECT_GE(h.sender->cwnd_bytes(), after_first);
}

TEST(TcpSenderTest, CwrSetOnFirstSegmentAfterEcnCut) {
  TcpConfig config;
  config.ecn_mode = EcnMode::kClassic;
  config.init_cwnd_segments = 4;
  SenderHarness h(config, 10'000 * 1460);
  for (std::size_t i = 0; i < h.sent(); ++i) {
    EXPECT_FALSE(h.segment(i).cwr);
  }
  const std::size_t before = h.sent();
  h.Ack(4 * 1460, /*ece=*/true);
  ASSERT_GT(h.sent(), before);
  EXPECT_TRUE(h.segment(before).cwr);          // first post-cut segment
  if (h.sent() > before + 1) {
    EXPECT_FALSE(h.segment(before + 1).cwr);   // only one
  }
}

TEST(TcpSenderTest, DataPacketsAreEctExactlyWhenEcnEnabled) {
  SenderHarness with_ecn(TcpConfig{}, 4 * 1460);
  EXPECT_EQ(with_ecn.segment(0).ecn, EcnCodepoint::kEct0);
  SenderHarness without(NoEcn(), 4 * 1460);
  EXPECT_EQ(without.segment(0).ecn, EcnCodepoint::kNotEct);
}

TEST(TcpSenderTest, StaleAckIsIgnored) {
  SenderHarness h(NoEcn(), 100 * 1460);
  h.Ack(5 * 1460);
  const double cwnd = h.sender->cwnd_bytes();
  const std::size_t sent = h.sent();
  h.Ack(2 * 1460);  // below snd_una: pure stale ack, no dupack counting
  EXPECT_DOUBLE_EQ(h.sender->cwnd_bytes(), cwnd);
  EXPECT_EQ(h.sent(), sent);
  EXPECT_EQ(h.sender->record().fast_retransmits, 0u);
}

// --- Karn's algorithm: RTO backoff vs the RTT probe ------------------------
//
// Three regressions for the interaction between exponential RTO backoff and
// the single un-retransmitted RTT probe, shaped by ms-RTT inter-DC paths
// where min_rto (5 ms) sits BELOW the path RTT:
//
//  * before the first RTT sample, ACK progress must NOT clear the backoff —
//    the backed-off timer is the only thing that lets the first probe ACK
//    arrive before the next spurious RTO;
//  * once a sample exists, ACK progress MUST clear it — waiting for a fresh
//    sample instead ratchets the backoff across independent loss events;
//  * a go-back-N resend re-covers old sequence ranges, and an ACK of the
//    original transmission must not satisfy a probe armed on the resend
//    (the near-zero sample would pin the RTO at min_rto forever).

TEST(TcpSenderTest, RtoBackoffHeldUntilFirstRttSample) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 2;
  config.min_rto = Time::Milliseconds(5);
  SenderHarness h(config, 1000 * 1460);
  // No ACKs for 6 ms: the un-sampled 5 ms timer fires spuriously (a WAN
  // path's first ACK is still in flight).
  h.sim.RunFor(Time::Milliseconds(6));
  EXPECT_EQ(h.sender->record().timeouts, 1u);
  // The original transmissions' ACK lands. It is new-data progress, but no
  // RTT sample was taken (the resend cancelled the probe and re-covered the
  // range) — the backoff must survive, keeping the next RTO at ~10 ms.
  h.Ack(2 * 1460);
  h.sim.RunFor(Time::Milliseconds(6));
  EXPECT_EQ(h.sender->record().timeouts, 1u);  // 5 ms timer would have fired
  h.sim.RunFor(Time::Milliseconds(6));
  EXPECT_EQ(h.sender->record().timeouts, 2u);  // the 10 ms one does
}

TEST(TcpSenderTest, RtoBackoffClearsOnAckProgressOnceRttValid) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 2;
  config.min_rto = Time::Milliseconds(5);
  SenderHarness h(config, 1000 * 1460);
  // Prompt ACK of the initial window: a valid (tiny) RTT sample.
  h.Ack(2 * 1460);
  // Two back-to-back timeouts: backoff reaches 2 (next RTO 20 ms).
  h.sim.RunFor(Time::Milliseconds(6));
  h.sim.RunFor(Time::Milliseconds(12));
  EXPECT_EQ(h.sender->record().timeouts, 2u);
  // ACK progress with a valid estimate ends the backed-off regime: the next
  // RTO is srtt-based (~5 ms floor), not 20 ms. Anything else ratchets the
  // backoff across a loss-heavy elephant's whole lifetime.
  h.Ack(6 * 1460);
  h.sim.RunFor(Time::Milliseconds(6));
  EXPECT_EQ(h.sender->record().timeouts, 3u);
}

TEST(TcpSenderTest, GoBackNResendDoesNotArmRttProbe) {
  TcpConfig config = NoEcn();
  config.init_cwnd_segments = 2;
  config.min_rto = Time::Milliseconds(5);
  SenderHarness h(config, 1000 * 1460);
  // Spurious RTO at 5 ms; the go-back-N resend re-covers [0, 1460).
  h.sim.RunFor(Time::Milliseconds(6));
  EXPECT_EQ(h.sender->record().timeouts, 1u);
  // ACK of the ORIGINAL initial window, ~1 ms after the resend. A probe
  // armed on the resend would read this as a ~1 ms RTT and poison srtt;
  // it must instead be ignored (no sample: the range was re-sent).
  h.Ack(2 * 1460);
  // Fresh data went out above (seq past everything ever sent) and armed the
  // real probe; its ACK arrives a WAN-like 8 ms later.
  h.sim.RunFor(Time::Milliseconds(8));
  EXPECT_EQ(h.sender->record().timeouts, 1u);  // backed-off timer: 10 ms
  h.Ack(3 * 1460);
  // srtt is now ~8 ms, so the restarted RTO is srtt + 4*rttvar ~ 24 ms. A
  // poisoned ~1 ms estimate would put it at the 5 ms floor instead.
  h.sim.RunFor(Time::Milliseconds(20));
  EXPECT_EQ(h.sender->record().timeouts, 1u);
  h.sim.RunFor(Time::Milliseconds(8));
  EXPECT_EQ(h.sender->record().timeouts, 2u);
}

// --- FlowHotState SoA arena ------------------------------------------------

TEST(FlowHotArenaTest, RowsStayStableAcrossChunkGrowth) {
  FlowHotArena arena;
  std::vector<FlowHotRow> rows;
  // Cross several 64-row chunk boundaries; each allocation must leave every
  // earlier row's address and contents intact.
  for (int i = 0; i < 200; ++i) {
    rows.push_back(arena.AllocRow());
    *rows.back().cwnd = static_cast<double>(i);
    *rows.back().rtt_valid = (i % 2) == 0;
    *rows.back().srtt = Time::Microseconds(i);
  }
  EXPECT_EQ(arena.flow_count(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(*rows[i].cwnd, static_cast<double>(i));
    EXPECT_EQ(*rows[i].rtt_valid, (i % 2) == 0);
    EXPECT_EQ(*rows[i].srtt, Time::Microseconds(i));
    EXPECT_DOUBLE_EQ(*rows[i].ssthresh, 0.0);  // zeroed at alloc
  }
}

TEST(FlowHotArenaTest, ForEachRowVisitsAllInAllocationOrder) {
  FlowHotArena arena;
  for (int i = 0; i < 70; ++i) {
    FlowHotRow row = arena.AllocRow();
    *row.cwnd = static_cast<double>(i + 1);
  }
  double sum = 0.0;
  std::size_t n = 0;
  arena.ForEachRow([&](double cwnd, double, Time, bool) {
    sum += cwnd;
    ++n;
  });
  EXPECT_EQ(n, 70u);
  EXPECT_DOUBLE_EQ(sum, 70.0 * 71.0 / 2.0);
}

// The load-bearing property of the refactor: a sender bound into the arena
// (as TcpStack binds every flow) must run bit-identically to one on local
// storage. Drives both through slow start, fast retransmit, recovery exit,
// and a DCTCP mark/cut cycle, comparing the full visible state at each step.
TEST(TcpSenderTest, ArenaBoundSenderRunsBitIdenticalToLocal) {
  TcpConfig config;  // DCTCP mode: exercises alpha arithmetic too
  config.init_cwnd_segments = 4;
  FlowHotArena arena;
  SenderHarness local(config, 400 * 1460);
  SenderHarness bound(config, 400 * 1460, &arena);
  EXPECT_EQ(arena.flow_count(), 1u);

  const auto expect_same = [&] {
    EXPECT_EQ(bound.sender->cwnd_bytes(), local.sender->cwnd_bytes());
    EXPECT_EQ(bound.sender->dctcp_alpha(), local.sender->dctcp_alpha());
    EXPECT_EQ(bound.sender->bytes_acked(), local.sender->bytes_acked());
    EXPECT_EQ(bound.sent(), local.sent());
  };
  const auto ack_both = [&](std::uint64_t ack_no, bool ece) {
    local.Ack(ack_no, ece);
    bound.Ack(ack_no, ece);
    expect_same();
  };

  expect_same();
  ack_both(4 * 1460, false);   // slow start growth (RTT sample taken)
  ack_both(8 * 1460, true);    // marked window: alpha update on rollover
  ack_both(8 * 1460, false);   // three dupacks -> fast retransmit
  ack_both(8 * 1460, false);
  ack_both(8 * 1460, false);
  EXPECT_EQ(bound.sender->record().fast_retransmits,
            local.sender->record().fast_retransmits);
  ack_both(20 * 1460, false);  // recovery exit: cwnd = ssthresh
  ack_both(40 * 1460, true);   // DCTCP cut in CA
  ack_both(60 * 1460, false);
}

}  // namespace
}  // namespace ecnsharp
