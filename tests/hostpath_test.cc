// §2.2 RTT-probe tests: the processing-component model reproduces the
// monotone growth and magnitude of Table 1's RTT statistics.
#include "hostpath/rtt_probe.h"

#include <gtest/gtest.h>

namespace ecnsharp {
namespace {

TEST(RttProbeTest, FiveCasesDefined) {
  const auto cases = Table1Cases();
  ASSERT_EQ(cases.size(), 5u);
  EXPECT_EQ(cases[0].name, "stack");
  EXPECT_EQ(cases.back().name, "stack(load)+slb+hypervisor");
}

TEST(RttProbeTest, CollectsRequestedSampleCount) {
  const RttStats stats = RunRttProbe(Table1Cases()[0], 200, /*seed=*/1);
  EXPECT_EQ(stats.samples, 200u);
}

TEST(RttProbeTest, StackCaseMatchesTable1Magnitude) {
  const RttStats stats = RunRttProbe(Table1Cases()[0], 1000, /*seed=*/2);
  // Table 1 row 1: mean 39.3 us, std 12.2, p90 59, p99 79.
  EXPECT_NEAR(stats.mean_us, 39.3, 5.0);
  EXPECT_NEAR(stats.std_us, 12.2, 4.0);
  EXPECT_NEAR(stats.p90_us, 59.0, 10.0);
}

TEST(RttProbeTest, MeansGrowMonotonicallyAcrossCases) {
  const auto cases = Table1Cases();
  double prev = 0.0;
  for (const auto& c : cases) {
    const RttStats stats = RunRttProbe(c, 600, /*seed=*/3);
    EXPECT_GT(stats.mean_us, prev) << c.name;
    prev = stats.mean_us;
  }
}

TEST(RttProbeTest, VariationFactorMatchesPaper) {
  // The last case's mean is ~2.4-2.7x the first's (paper: 2.68x).
  const auto cases = Table1Cases();
  const RttStats first = RunRttProbe(cases.front(), 1000, /*seed=*/4);
  const RttStats last = RunRttProbe(cases.back(), 1000, /*seed=*/4);
  const double factor = last.mean_us / first.mean_us;
  EXPECT_GT(factor, 2.0);
  EXPECT_LT(factor, 3.2);
}

TEST(RttProbeTest, TailDominatesMean) {
  // Every case is right-skewed: p99 well above the mean.
  for (const auto& c : Table1Cases()) {
    const RttStats stats = RunRttProbe(c, 800, /*seed=*/5);
    EXPECT_GT(stats.p99_us, stats.mean_us * 1.3) << c.name;
    EXPECT_GT(stats.p90_us, stats.mean_us) << c.name;
  }
}

TEST(RttProbeTest, DeterministicForSeed) {
  const RttStats a = RunRttProbe(Table1Cases()[1], 300, /*seed=*/9);
  const RttStats b = RunRttProbe(Table1Cases()[1], 300, /*seed=*/9);
  EXPECT_DOUBLE_EQ(a.mean_us, b.mean_us);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
}

TEST(RttProbeTest, HealthyRunReportsOkStatus) {
  const RttStats stats = RunRttProbe(Table1Cases()[0], 50, /*seed=*/1);
  EXPECT_EQ(stats.status, RttProbeStatus::kOk);
}

// Regression: requests == 0 used to underflow the remaining-request counter
// and ping-pong forever; now it terminates and reports kNoSamples.
TEST(RttProbeTest, ZeroRequestsTerminatesWithNoSamples) {
  const RttStats stats = RunRttProbe(Table1Cases()[0], 0, /*seed=*/1);
  EXPECT_EQ(stats.status, RttProbeStatus::kNoSamples);
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_us, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99_us, 0.0);
}

TEST(RttProbeTest, NegativeStageDelayIsRejected) {
  RttCaseSpec spec;
  spec.name = "bad";
  spec.request_stages.push_back({"negative-mean", -5.0, 1.0});
  EXPECT_EQ(RunRttProbe(spec, 10, /*seed=*/1).status,
            RttProbeStatus::kInvalidSpec);

  spec.request_stages.clear();
  spec.response_stages.push_back({"negative-std", 5.0, -1.0});
  EXPECT_EQ(RunRttProbe(spec, 10, /*seed=*/1).status,
            RttProbeStatus::kInvalidSpec);
}

TEST(RttProbeTest, ComputeRttStatsHandlesDegenerateInput) {
  EXPECT_EQ(ComputeRttStats({}).status, RttProbeStatus::kNoSamples);
  const RttStats stats = ComputeRttStats({10.0, 20.0, 30.0, 40.0});
  EXPECT_EQ(stats.status, RttProbeStatus::kOk);
  EXPECT_EQ(stats.samples, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_us, 25.0);
  EXPECT_DOUBLE_EQ(stats.p99_us, 40.0);
}

TEST(RttProbeTest, StatusNamesAreStable) {
  EXPECT_STREQ(RttProbeStatusName(RttProbeStatus::kOk), "ok");
  EXPECT_STREQ(RttProbeStatusName(RttProbeStatus::kNoSamples), "no-samples");
  EXPECT_STREQ(RttProbeStatusName(RttProbeStatus::kInvalidSpec),
               "invalid-spec");
}

}  // namespace
}  // namespace ecnsharp
