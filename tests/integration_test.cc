// Cross-module integration tests: whole-system simulations that check the
// paper's headline behaviours at reduced scale. These are the fast versions
// of what bench/ reproduces in full.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"
#include "topo/leaf_spine.h"
#include "workload/empirical_cdf.h"
#include "workload/traffic_generator.h"

namespace ecnsharp {
namespace {

// --------------------------- standing queue (Fig. 10) ----------------------

IncastExperimentConfig BaseIncast(Scheme scheme) {
  IncastExperimentConfig config;
  config.scheme = scheme;
  config.query_flows = 0;  // no burst: observe the standing queue only
  config.seed = 3;
  return config;
}

double StandingQueue(Scheme scheme) {
  IncastExperimentConfig config = BaseIncast(scheme);
  const IncastResult result = RunIncast(config);
  return result.standing_queue_packets;
}

TEST(IntegrationTest, EcnSharpEliminatesStandingQueue) {
  const double red_tail = StandingQueue(Scheme::kDctcpRedTail);
  const double ecn_sharp = StandingQueue(Scheme::kEcnSharp);
  // Paper §5.4: DCTCP-RED-Tail holds a standing queue near its threshold
  // (~180 pkts); ECN#'s persistent marking drains a large share of it (the
  // paper's elephants are sparser, so it drains ~95% there; see
  // EXPERIMENTS.md fidelity notes).
  EXPECT_GT(red_tail, 100.0);
  EXPECT_LT(ecn_sharp, red_tail * 0.65);
}

TEST(IntegrationTest, TofinoPipelineBehavesLikeReferenceInSystem) {
  const double reference = StandingQueue(Scheme::kEcnSharp);
  const double tofino = StandingQueue(Scheme::kEcnSharpTofino);
  // The emulated hardware pipeline must control the queue like the
  // reference implementation (tick quantization aside).
  EXPECT_LT(tofino, 2.0 * reference + 10.0);
  EXPECT_GT(tofino, reference / 3.0 - 10.0);
}

// --------------------------- incast burst tolerance (Figs. 10-11) ----------

TEST(IntegrationTest, EcnSharpToleratesIncastThatBreaksCodel) {
  IncastExperimentConfig config = BaseIncast(Scheme::kEcnSharp);
  config.query_flows = 100;
  const IncastResult sharp = RunIncast(config);
  config.scheme = Scheme::kCodel;
  const IncastResult codel = RunIncast(config);

  EXPECT_EQ(sharp.queries_completed, 100u);
  EXPECT_EQ(codel.queries_completed, 100u);
  // ECN#'s instantaneous marking absorbs the burst without loss; CoDel,
  // reacting only to persistent congestion, overflows the buffer.
  EXPECT_EQ(sharp.drops, 0u);
  EXPECT_GT(codel.drops, 0u);
  EXPECT_LE(sharp.query_timeouts, codel.query_timeouts);
}

TEST(IntegrationTest, EcnSharpMatchesRedTailOnIncast) {
  IncastExperimentConfig config = BaseIncast(Scheme::kEcnSharp);
  config.query_flows = 100;
  const IncastResult sharp = RunIncast(config);
  config.scheme = Scheme::kDctcpRedTail;
  const IncastResult red = RunIncast(config);
  // Burst tolerance comparable to current practice (both lossless here).
  EXPECT_EQ(sharp.drops, 0u);
  EXPECT_EQ(red.drops, 0u);
  EXPECT_LT(sharp.query_fct.avg_us, red.query_fct.avg_us * 1.5);
}

// --------------------------- FCT under production workloads (Figs. 6-7) ----

DumbbellExperimentConfig BaseDumbbell(Scheme scheme) {
  DumbbellExperimentConfig config;
  config.scheme = scheme;
  config.load = 0.6;
  config.flows = 400;
  config.seed = 5;
  return config;
}

TEST(IntegrationTest, EcnSharpImprovesShortFlowsWithoutHurtingLarge) {
  const ExperimentResult sharp = RunDumbbell(BaseDumbbell(Scheme::kEcnSharp));
  const ExperimentResult red =
      RunDumbbell(BaseDumbbell(Scheme::kDctcpRedTail));
  ASSERT_EQ(sharp.flows_completed, 400u);
  ASSERT_EQ(red.flows_completed, 400u);
  // Short flows benefit from the drained queue...
  EXPECT_LT(sharp.short_flows.avg_us, red.short_flows.avg_us);
  // ...and large flows keep comparable throughput (generous band: only a
  // few hundred heavy-tailed flows at this scale).
  EXPECT_LT(sharp.large_flows.avg_us, red.large_flows.avg_us * 1.3);
}

TEST(IntegrationTest, LowThresholdHurtsLargeFlows) {
  // The §2.3 dilemma: an average-RTT threshold helps short flows but costs
  // large-flow throughput relative to the tail threshold.
  const ExperimentResult avg =
      RunDumbbell(BaseDumbbell(Scheme::kDctcpRedAvg));
  const ExperimentResult tail =
      RunDumbbell(BaseDumbbell(Scheme::kDctcpRedTail));
  EXPECT_LT(avg.short_flows.avg_us, tail.short_flows.avg_us);
  EXPECT_GT(avg.large_flows.avg_us, tail.large_flows.avg_us);
}

TEST(IntegrationTest, AllFlowsCompleteUnderEveryScheme) {
  for (const Scheme scheme :
       {Scheme::kDctcpRedTail, Scheme::kDctcpRedAvg, Scheme::kCodel,
        Scheme::kTcn, Scheme::kEcnSharp, Scheme::kDropTail}) {
    DumbbellExperimentConfig config = BaseDumbbell(scheme);
    config.flows = 150;
    config.workload = &DataMiningWorkload();
    const ExperimentResult result = RunDumbbell(config);
    EXPECT_EQ(result.flows_completed, 150u) << SchemeName(scheme);
  }
}

// --------------------------- leaf-spine fabric (Fig. 9) --------------------

TEST(IntegrationTest, LeafSpineDeliversAcrossFabric) {
  LeafSpineExperimentConfig config;
  config.scheme = Scheme::kEcnSharp;
  config.topo.spines = 2;
  config.topo.leaves = 2;
  config.topo.hosts_per_leaf = 4;
  config.flows = 200;
  config.load = 0.4;
  config.seed = 7;
  const ExperimentResult result = RunLeafSpine(config);
  EXPECT_EQ(result.flows_completed, 200u);
  EXPECT_GT(result.overall.count, 0u);
}

TEST(IntegrationTest, LeafSpineEcmpUsesAllSpines) {
  Simulator sim;
  LeafSpineConfig config;
  config.spines = 4;
  config.leaves = 2;
  config.hosts_per_leaf = 4;
  LeafSpine topo(sim, config, [] {
    return std::make_unique<FifoQueueDisc>(1ull << 24, nullptr);
  });
  // Many cross-rack flows.
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    topo.stack(static_cast<std::size_t>(i % 4))
        .StartFlow(static_cast<std::uint32_t>(4 + i % 4), 50'000,
                   [&done](const FlowRecord&) { ++done; });
  }
  sim.RunUntil(Time::Seconds(5));
  EXPECT_EQ(done, 40);
  int spines_used = 0;
  for (std::size_t s = 0; s < topo.spine_count(); ++s) {
    std::uint64_t tx = 0;
    for (std::size_t p = 0; p < topo.spine(s).port_count(); ++p) {
      tx += topo.spine(s).port(p).counters().tx_packets;
    }
    if (tx > 0) ++spines_used;
  }
  EXPECT_GE(spines_used, 3);
}

TEST(IntegrationTest, LeafSpineEcnSharpBeatsRedTailForShortFlows) {
  LeafSpineExperimentConfig config;
  config.topo.spines = 2;
  config.topo.leaves = 2;
  config.topo.hosts_per_leaf = 8;
  config.flows = 500;
  config.load = 0.6;
  config.seed = 11;

  config.scheme = Scheme::kEcnSharp;
  const ExperimentResult sharp = RunLeafSpine(config);
  config.scheme = Scheme::kDctcpRedTail;
  const ExperimentResult red = RunLeafSpine(config);
  ASSERT_EQ(sharp.flows_completed, 500u);
  ASSERT_EQ(red.flows_completed, 500u);
  EXPECT_LT(sharp.short_flows.avg_us, red.short_flows.avg_us);
}

}  // namespace
}  // namespace ecnsharp
