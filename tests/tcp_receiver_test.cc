// Focused receiver-side tests: ACK generation, delayed-ACK coalescing, the
// DCTCP CE-echo state machine (RFC 8257 §3.2), classic-ECN ECE latching,
// and out-of-order buffering.
#include "transport/tcp_receiver.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/host.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"

namespace ecnsharp {
namespace {

// Captures every packet the receiver's host transmits.
class AckCapture : public PacketSink {
 public:
  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    acks.push_back(std::move(pkt));
  }
  std::vector<std::unique_ptr<Packet>> acks;
};

struct ReceiverHarness {
  Simulator sim;
  AckCapture capture;
  Host host{sim, 1};
  FlowKey flow{0, 1, 100, 80};

  explicit ReceiverHarness(const TcpConfig& config) {
    auto nic = std::make_unique<EgressPort>(
        sim, DataRate::GigabitsPerSecond(100), Time::Zero(),
        std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
    nic->ConnectTo(capture);
    host.AttachNic(std::move(nic));
    receiver = std::make_unique<TcpReceiver>(host, config, flow);
  }

  void Deliver(std::uint64_t seq, std::uint32_t payload, bool ce = false,
               bool psh = false, bool cwr = false) {
    Packet pkt;
    pkt.flow = flow;
    pkt.type = PacketType::kData;
    pkt.seq = seq;
    pkt.payload_bytes = payload;
    pkt.size_bytes = payload + kDataHeaderBytes;
    pkt.ecn = ce ? EcnCodepoint::kCe : EcnCodepoint::kEct0;
    pkt.psh = psh;
    pkt.cwr = cwr;
    receiver->OnData(pkt);
    // Flush any immediate ACK through the 100G NIC without advancing far
    // enough to fire the 500 us delayed-ACK timer.
    sim.RunFor(Time::Microseconds(10));
  }

  std::unique_ptr<TcpReceiver> receiver;
};

TcpConfig DctcpConfig() {
  TcpConfig config;
  config.ecn_mode = EcnMode::kDctcp;
  config.delayed_ack_count = 2;
  return config;
}

TEST(TcpReceiverTest, DelayedAckCoalescesTwoSegments) {
  ReceiverHarness h(DctcpConfig());
  h.Deliver(0, 1460);
  EXPECT_EQ(h.capture.acks.size(), 0u);  // first segment: ack delayed
  h.Deliver(1460, 1460);
  ASSERT_EQ(h.capture.acks.size(), 1u);  // second segment: ack now
  EXPECT_EQ(h.capture.acks[0]->ack, 2920u);
  EXPECT_EQ(h.capture.acks[0]->type, PacketType::kAck);
}

TEST(TcpReceiverTest, DelayedAckTimerFlushesSingleSegment) {
  ReceiverHarness h(DctcpConfig());
  h.Deliver(0, 1460);
  EXPECT_TRUE(h.capture.acks.empty());
  h.sim.RunFor(Time::Milliseconds(1));  // past the 500 us delack timeout
  ASSERT_EQ(h.capture.acks.size(), 1u);
  EXPECT_EQ(h.capture.acks[0]->ack, 1460u);
}

TEST(TcpReceiverTest, PshForcesImmediateAck) {
  ReceiverHarness h(DctcpConfig());
  h.Deliver(0, 1000, /*ce=*/false, /*psh=*/true);
  ASSERT_EQ(h.capture.acks.size(), 1u);
  EXPECT_EQ(h.capture.acks[0]->ack, 1000u);
}

TEST(TcpReceiverTest, AckPacketsAreNotEcnCapable) {
  ReceiverHarness h(DctcpConfig());
  h.Deliver(0, 1460, /*ce=*/true, /*psh=*/true);
  ASSERT_EQ(h.capture.acks.size(), 1u);
  EXPECT_EQ(h.capture.acks[0]->ecn, EcnCodepoint::kNotEct);
  EXPECT_EQ(h.capture.acks[0]->size_bytes, kAckPacketBytes);
  EXPECT_EQ(h.capture.acks[0]->flow, h.flow.Reversed());
}

TEST(TcpReceiverTest, DctcpEchoesCePerPacketState) {
  // CE-marked segments produce ECE acks; unmarked segments clear ECE.
  ReceiverHarness h(DctcpConfig());
  h.Deliver(0, 1460, /*ce=*/true);
  h.Deliver(1460, 1460, /*ce=*/true);
  ASSERT_EQ(h.capture.acks.size(), 1u);
  EXPECT_TRUE(h.capture.acks[0]->ece);

  h.Deliver(2920, 1460, /*ce=*/false);  // state change -> no pending? below
  h.Deliver(4380, 1460, /*ce=*/false);
  ASSERT_GE(h.capture.acks.size(), 2u);
  EXPECT_FALSE(h.capture.acks.back()->ece);
}

TEST(TcpReceiverTest, DctcpCeStateChangeFlushesPendingWithOldState) {
  // RFC 8257: one unacked non-CE segment pending, then a CE segment arrives.
  // The receiver must immediately ack the pending data with ECE=0 (the old
  // state) before switching to CE state.
  ReceiverHarness h(DctcpConfig());
  h.Deliver(0, 1460, /*ce=*/false);
  EXPECT_TRUE(h.capture.acks.empty());
  h.Deliver(1460, 1460, /*ce=*/true);
  ASSERT_EQ(h.capture.acks.size(), 1u);
  EXPECT_FALSE(h.capture.acks[0]->ece);    // old state
  EXPECT_EQ(h.capture.acks[0]->ack, 1460u);  // covers only the old data
  // Next delivery completes the delayed-ack pair with the new state.
  h.Deliver(2920, 1460, /*ce=*/true);
  ASSERT_EQ(h.capture.acks.size(), 2u);
  EXPECT_TRUE(h.capture.acks[1]->ece);
  EXPECT_EQ(h.capture.acks[1]->ack, 4380u);
}

TEST(TcpReceiverTest, ClassicEceLatchesUntilCwr) {
  TcpConfig config;
  config.ecn_mode = EcnMode::kClassic;
  config.delayed_ack_count = 1;  // ack every segment for clarity
  ReceiverHarness h(config);
  h.Deliver(0, 1460, /*ce=*/true);
  h.Deliver(1460, 1460, /*ce=*/false);  // still latched
  ASSERT_EQ(h.capture.acks.size(), 2u);
  EXPECT_TRUE(h.capture.acks[0]->ece);
  EXPECT_TRUE(h.capture.acks[1]->ece);
  // CWR from the sender clears the latch.
  h.Deliver(2920, 1460, /*ce=*/false, /*psh=*/false, /*cwr=*/true);
  ASSERT_EQ(h.capture.acks.size(), 3u);
  EXPECT_FALSE(h.capture.acks[2]->ece);
}

TEST(TcpReceiverTest, OutOfOrderGeneratesDupAcks) {
  ReceiverHarness h(DctcpConfig());
  h.Deliver(0, 1460);
  h.Deliver(1460, 1460);  // ack 2920
  ASSERT_EQ(h.capture.acks.size(), 1u);
  // Segment 2 lost; 3, 4, 5 arrive out of order -> three dupacks of 2920.
  h.Deliver(4380, 1460);
  h.Deliver(5840, 1460);
  h.Deliver(7300, 1460);
  ASSERT_EQ(h.capture.acks.size(), 4u);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(h.capture.acks[i]->ack, 2920u);
  }
  // The retransmission fills the hole: cumulative ack jumps to 8760.
  h.Deliver(2920, 1460);
  ASSERT_EQ(h.capture.acks.size(), 5u);
  EXPECT_EQ(h.capture.acks[4]->ack, 8760u);
}

TEST(TcpReceiverTest, DuplicateDataReAcked) {
  ReceiverHarness h(DctcpConfig());
  h.Deliver(0, 1460, false, /*psh=*/true);
  ASSERT_EQ(h.capture.acks.size(), 1u);
  h.Deliver(0, 1460, false, /*psh=*/true);  // spurious retransmit
  ASSERT_EQ(h.capture.acks.size(), 2u);
  EXPECT_EQ(h.capture.acks[1]->ack, 1460u);
  EXPECT_EQ(h.receiver->bytes_received(), 1460u);  // counted once
}

TEST(TcpReceiverTest, TracksBytesAcrossReordering) {
  ReceiverHarness h(DctcpConfig());
  h.Deliver(1460, 1460);
  h.Deliver(4380, 1460);
  EXPECT_EQ(h.receiver->rcv_nxt(), 0u);
  h.Deliver(0, 1460);
  EXPECT_EQ(h.receiver->rcv_nxt(), 2920u);
  h.Deliver(2920, 1460);
  EXPECT_EQ(h.receiver->rcv_nxt(), 5840u);
  EXPECT_EQ(h.receiver->bytes_received(), 5840u);
}

}  // namespace
}  // namespace ecnsharp
