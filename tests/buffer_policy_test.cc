// Shared-buffer policy subsystem: admission semantics of the three concrete
// policies (static split, Dynamic Threshold, DT+headroom), the fail-fast
// underflow guards on both the id-based and the legacy pool interfaces, a
// randomized accounting soak, and the MakeBufferPolicy factory surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "buffer/policies.h"
#include "buffer/policy_spec.h"
#include "net/packet.h"
#include "net/shared_buffer.h"
#include "sim/random.h"

namespace ecnsharp {
namespace {

constexpr std::uint32_t kPkt = kFullPacketBytes;

// ------------------- underflow guards fail fast (exit 2) --------------------
//
// The legacy guard was an assert() compiled out of Release builds, so a
// double-release silently wrapped used_bytes_ to ~2^64 and every subsequent
// admission failed "buffer full" forever. Both interfaces now exit 2 with a
// diagnostic the moment the books go negative.

TEST(BufferPolicyDeathTest, ReleaseWithoutReserveExits) {
  EXPECT_EXIT(
      {
        DynamicThresholdPolicy policy(100'000, 1.0);
        const std::size_t q = policy.RegisterQueue(0);
        policy.Release(q, kPkt);
      },
      testing::ExitedWithCode(2), "buffer policy release underflow");
}

TEST(BufferPolicyDeathTest, OverReleaseExits) {
  EXPECT_EXIT(
      {
        DynamicThresholdPolicy policy(100'000, 1.0);
        const std::size_t q = policy.RegisterQueue(0);
        policy.TryReserve(q, 1000);
        policy.Release(q, 1001);
      },
      testing::ExitedWithCode(2), "buffer policy release underflow");
}

TEST(BufferPolicyDeathTest, LegacyDoubleReleaseExits) {
  EXPECT_EXIT(
      {
        SharedBufferPool pool(100'000, 1.0);
        pool.TryReserve(0, kPkt);
        pool.Release(kPkt);
        pool.Release(kPkt);
      },
      testing::ExitedWithCode(2), "shared buffer release underflow");
}

TEST(BufferPolicyDeathTest, FactoryRejectsNonPositiveAlpha) {
  EXPECT_EXIT(
      {
        BufferPolicyConfig config;
        config.kind = BufferPolicyKind::kDynamicThreshold;
        config.alpha = 0.0;
        MakeBufferPolicy(config, 8, kPkt);
      },
      testing::ExitedWithCode(2), "alpha must be > 0");
}

TEST(BufferPolicyDeathTest, FactoryRejectsNonPositivePriorityAlpha) {
  EXPECT_EXIT(
      {
        BufferPolicyConfig config;
        config.kind = BufferPolicyKind::kDynamicThreshold;
        config.priority_alpha.push_back(1.0);
        config.priority_alpha.push_back(-2.0);
        MakeBufferPolicy(config, 8, kPkt);
      },
      testing::ExitedWithCode(2), "per-priority alpha must be > 0");
}

TEST(BufferPolicyDeathTest, FactoryRejectsZeroPool) {
  EXPECT_EXIT(
      {
        BufferPolicyConfig config;
        config.kind = BufferPolicyKind::kStatic;
        MakeBufferPolicy(config, 8, 0);
      },
      testing::ExitedWithCode(2), "non-zero pool");
}

// ------------------------------ static split --------------------------------

TEST(StaticSplitTest, QueuesAreIndependent) {
  StaticSplitPolicy policy(8 * 10'000, 10'000);
  const std::size_t hot = policy.RegisterQueue(0);
  const std::size_t cold = policy.RegisterQueue(0);

  while (policy.TryReserve(hot, 1000)) {
  }
  EXPECT_EQ(policy.queue_bytes(hot), 10'000u);
  // The hot queue exhausting its slice changes nothing for the cold one.
  EXPECT_EQ(policy.LimitBytes(cold), 10'000u);
  EXPECT_TRUE(policy.TryReserve(cold, 10'000));
  EXPECT_FALSE(policy.TryReserve(cold, 1));
}

TEST(StaticSplitTest, PoolTotalCapsOversubscribedSlices) {
  // Slices promise more than the pool holds; the hard total still wins.
  StaticSplitPolicy policy(10'000, 8000);
  const std::size_t a = policy.RegisterQueue(0);
  const std::size_t b = policy.RegisterQueue(0);
  EXPECT_TRUE(policy.TryReserve(a, 8000));
  EXPECT_FALSE(policy.TryReserve(b, 8000));
  EXPECT_TRUE(policy.TryReserve(b, 2000));
  EXPECT_EQ(policy.used_bytes(), policy.total_bytes());
}

// ---------------------------- dynamic threshold -----------------------------

TEST(DynamicThresholdTest, LimitShrinksMonotonicallyWithOccupancy) {
  DynamicThresholdPolicy policy(1'000'000, 1.0);
  const std::size_t hot = policy.RegisterQueue(0);
  const std::size_t cold = policy.RegisterQueue(0);

  std::uint64_t prev = policy.LimitBytes(cold);
  EXPECT_EQ(prev, policy.total_bytes());  // empty pool: alpha * total
  while (policy.TryReserve(hot, kPkt)) {
    const std::uint64_t limit = policy.LimitBytes(cold);
    EXPECT_LE(limit, prev);
    EXPECT_EQ(limit, static_cast<std::uint64_t>(
                         1.0 * static_cast<double>(policy.total_bytes() -
                                                   policy.used_bytes())));
    prev = limit;
  }
}

TEST(DynamicThresholdTest, HotQueueStopsAtAlphaEquilibrium) {
  // One hot queue under DT settles where queue = alpha * (total - queue),
  // i.e. alpha/(1+alpha) * total — the control-theoretic share the bench's
  // alpha sweep leans on.
  for (const double alpha : {0.5, 1.0, 2.0, 4.0}) {
    DynamicThresholdPolicy policy(1'000'000, alpha);
    const std::size_t hot = policy.RegisterQueue(0);
    while (policy.TryReserve(hot, kPkt)) {
    }
    const double equilibrium =
        alpha / (1.0 + alpha) * static_cast<double>(policy.total_bytes());
    EXPECT_NEAR(static_cast<double>(policy.queue_bytes(hot)), equilibrium,
                2.0 * kPkt)
        << "alpha " << alpha;
  }
}

TEST(DynamicThresholdTest, PerPriorityAlphaSelectsAndFallsBack) {
  DynamicThresholdPolicy policy(1'000'000, 1.0, {0.5, 2.0});
  EXPECT_DOUBLE_EQ(policy.AlphaFor(0), 0.5);
  EXPECT_DOUBLE_EQ(policy.AlphaFor(1), 2.0);
  // Priorities past the vector fall back to the last entry.
  EXPECT_DOUBLE_EQ(policy.AlphaFor(7), 2.0);

  const std::size_t latency = policy.RegisterQueue(0);
  const std::size_t bulk = policy.RegisterQueue(1);
  EXPECT_EQ(policy.queue_priority(latency), 0);
  EXPECT_EQ(policy.queue_priority(bulk), 1);
  // Same free memory, different alpha: the latency class is held to a
  // 4x shallower share than the bulk class.
  EXPECT_EQ(4 * policy.LimitBytes(latency), policy.LimitBytes(bulk));
}

TEST(DynamicThresholdTest, ShallowAlphaIsolatesLatencyClass) {
  // A bulk queue at its equilibrium must not squeeze the latency class below
  // its own (shallow) share of the remaining memory.
  DynamicThresholdPolicy policy(1'000'000, 1.0, {0.5, 2.0});
  const std::size_t latency = policy.RegisterQueue(0);
  const std::size_t bulk = policy.RegisterQueue(1);
  while (policy.TryReserve(bulk, kPkt)) {
  }
  const std::uint64_t latency_limit = policy.LimitBytes(latency);
  EXPECT_GT(latency_limit, 0u);
  EXPECT_EQ(latency_limit,
            static_cast<std::uint64_t>(
                0.5 * static_cast<double>(policy.total_bytes() -
                                          policy.used_bytes())));
  EXPECT_TRUE(policy.TryReserve(latency, kPkt));
}

TEST(DynamicThresholdTest, LegacyPoolMatchesIdBasedDecisions) {
  // SharedBufferPool (callers track their own queue bytes) and the id-based
  // interface must answer every admission identically for the same state.
  SharedBufferPool legacy(200'000, 2.0);
  DynamicThresholdPolicy policy(200'000, 2.0);
  const std::size_t q = policy.RegisterQueue(0);

  Rng rng(42);
  std::uint64_t ledger = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = static_cast<std::uint32_t>(64 + rng.UniformInt(1437));
    if (rng.UniformInt(2) == 0) {
      const bool legacy_ok = legacy.TryReserve(ledger, bytes);
      const bool id_ok = policy.TryReserve(q, bytes);
      ASSERT_EQ(legacy_ok, id_ok) << "step " << i;
      if (id_ok) ledger += bytes;
    } else if (ledger >= bytes) {
      legacy.Release(bytes);
      policy.Release(q, bytes);
      ledger -= bytes;
    }
    ASSERT_EQ(legacy.used_bytes(), policy.used_bytes()) << "step " << i;
    ASSERT_EQ(policy.queue_bytes(q), ledger) << "step " << i;
  }
}

// ------------------------------- DT+headroom --------------------------------

TEST(HeadroomDtTest, ColdQueueKeepsGuaranteedSliceUnderHotLoad) {
  HeadroomDtPolicy policy(1'000'000, 4.0, /*headroom_bytes=*/2 * kPkt);
  const std::size_t hot = policy.RegisterQueue(0);
  const std::size_t cold = policy.RegisterQueue(0);
  while (policy.TryReserve(hot, kPkt)) {
  }
  // Plain DT at alpha=4 would leave the cold queue racing a nearly-full
  // pool; the headroom variant still guarantees it the reserved slice.
  EXPECT_GE(policy.LimitBytes(cold), 2ull * kPkt);
  EXPECT_TRUE(policy.TryReserve(cold, kPkt));
  EXPECT_TRUE(policy.TryReserve(cold, kPkt));
}

TEST(HeadroomDtTest, ReservationsSwallowingThePoolLeaveOnlyHeadroom) {
  // Summed headrooms >= total: the shared region is empty, so each queue
  // gets exactly its guaranteed slice, and the pool total still caps the sum.
  HeadroomDtPolicy policy(5000, 1.0, /*headroom_bytes=*/3000);
  const std::size_t a = policy.RegisterQueue(0);
  const std::size_t b = policy.RegisterQueue(0);
  EXPECT_EQ(policy.LimitBytes(a), 3000u);
  EXPECT_TRUE(policy.TryReserve(a, 3000));
  EXPECT_FALSE(policy.TryReserve(b, 3000));
  EXPECT_TRUE(policy.TryReserve(b, 2000));
}

// --------------------------- randomized accounting --------------------------

// Seeded reserve/release churn against an independent per-queue ledger. The
// invariants are policy-agnostic: the base class owns the books, so they
// must hold for every Admit() implementation.
void SoakPolicy(BufferPolicy& policy, std::uint64_t seed) {
  constexpr std::size_t kQueues = 8;
  std::vector<std::size_t> ids;
  std::vector<std::uint64_t> ledger(kQueues, 0);
  for (std::size_t q = 0; q < kQueues; ++q) {
    ids.push_back(policy.RegisterQueue(static_cast<std::uint8_t>(q % 3)));
  }
  Rng rng(seed);
  std::uint64_t admitted = 0;
  std::uint64_t refused = 0;
  for (int step = 0; step < 5000; ++step) {
    const std::size_t q = rng.UniformInt(kQueues);
    const auto bytes = static_cast<std::uint32_t>(64 + rng.UniformInt(1437));
    if (rng.UniformInt(2) == 0) {
      if (policy.TryReserve(ids[q], bytes)) {
        ledger[q] += bytes;
        ++admitted;
      } else {
        ++refused;
      }
    } else if (ledger[q] >= bytes) {
      policy.Release(ids[q], bytes);
      ledger[q] -= bytes;
    }
    ASSERT_LE(policy.used_bytes(), policy.total_bytes()) << "step " << step;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kQueues; ++i) {
      ASSERT_EQ(policy.queue_bytes(ids[i]), ledger[i]) << "step " << step;
      sum += ledger[i];
    }
    ASSERT_EQ(policy.used_bytes(), sum) << "step " << step;
  }
  // The pool must have been small enough for refusals to exercise Admit().
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(refused, 0u);
  // Releasing every ledgered byte zeroes the books.
  for (std::size_t q = 0; q < kQueues; ++q) {
    while (ledger[q] > 0) {
      const auto chunk =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(ledger[q], kPkt));
      policy.Release(ids[q], chunk);
      ledger[q] -= chunk;
    }
  }
  EXPECT_EQ(policy.used_bytes(), 0u);
}

TEST(BufferPolicyPropertyTest, AccountingInvariantsHoldForEveryPolicy) {
  for (const std::uint64_t seed : {1ull, 7ull, 0xdecafull}) {
    {
      StaticSplitPolicy policy(40'000, 5000);
      SoakPolicy(policy, seed);
    }
    {
      DynamicThresholdPolicy policy(40'000, 1.0, {0.5, 1.0, 2.0});
      SoakPolicy(policy, seed);
    }
    {
      HeadroomDtPolicy policy(40'000, 1.0, 2 * kPkt, {0.5, 1.0, 2.0});
      SoakPolicy(policy, seed);
    }
  }
}

// --------------------------------- factory ----------------------------------

TEST(MakeBufferPolicyTest, BuildsEachKindWithFallbackSizing) {
  BufferPolicyConfig config;
  EXPECT_EQ(MakeBufferPolicy(config, 8, kPkt), nullptr);  // kNone

  config.kind = BufferPolicyKind::kStatic;
  std::unique_ptr<BufferPolicy> policy = MakeBufferPolicy(config, 8, 10'000);
  ASSERT_NE(policy, nullptr);
  EXPECT_STREQ(policy->name(), "static");
  // total_bytes == 0 means the legacy silicon rearranged: queue_count
  // per-port buffers pooled, and the static slice is the per-port buffer.
  EXPECT_EQ(policy->total_bytes(), 8u * 10'000u);
  EXPECT_EQ(static_cast<StaticSplitPolicy&>(*policy).per_queue_bytes(),
            10'000u);

  config.kind = BufferPolicyKind::kDynamicThreshold;
  config.total_bytes = 123'456;
  config.alpha = 2.0;
  policy = MakeBufferPolicy(config, 8, 10'000);
  ASSERT_NE(policy, nullptr);
  EXPECT_STREQ(policy->name(), "dt");
  EXPECT_EQ(policy->total_bytes(), 123'456u);  // explicit pool wins
  EXPECT_DOUBLE_EQ(
      static_cast<DynamicThresholdPolicy&>(*policy).default_alpha(), 2.0);

  config.kind = BufferPolicyKind::kDtHeadroom;
  policy = MakeBufferPolicy(config, 8, 10'000);
  ASSERT_NE(policy, nullptr);
  EXPECT_STREQ(policy->name(), "dt-headroom");
  // headroom_bytes == 0 defaults to one full packet.
  EXPECT_EQ(static_cast<HeadroomDtPolicy&>(*policy).headroom_bytes(), 1500u);
}

TEST(MakeBufferPolicyTest, KindNamesRoundTrip) {
  for (const BufferPolicyKind kind :
       {BufferPolicyKind::kNone, BufferPolicyKind::kStatic,
        BufferPolicyKind::kDynamicThreshold, BufferPolicyKind::kDtHeadroom}) {
    EXPECT_EQ(ParseBufferPolicyKind(BufferPolicyKindName(kind)), kind);
  }
  EXPECT_EQ(ParseBufferPolicyKind("bogus"), std::nullopt);
}

}  // namespace
}  // namespace ecnsharp
