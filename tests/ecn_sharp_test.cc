// Unit and property tests for the ECN# AQM (Algorithm 1 + instantaneous
// sojourn marking).
#include "core/ecn_sharp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.h"

namespace ecnsharp {
namespace {

EcnSharpConfig TestConfig() {
  EcnSharpConfig config;
  config.ins_target = Time::FromMicroseconds(200);
  config.pst_target = Time::FromMicroseconds(85);
  config.pst_interval = Time::FromMicroseconds(200);
  return config;
}

Packet EctPacket() {
  Packet pkt;
  pkt.size_bytes = 1500;
  pkt.ecn = EcnCodepoint::kEct0;
  return pkt;
}

bool Dequeue(EcnSharpAqm& aqm, Time now, Time sojourn) {
  Packet pkt = EctPacket();
  aqm.OnDequeue(pkt, QueueSnapshot{10, 15'000}, now, sojourn);
  return pkt.IsCeMarked();
}

// --------------------------- instantaneous marking -------------------------

TEST(EcnSharpTest, InstantaneousMarkAboveInsTarget) {
  EcnSharpAqm aqm(TestConfig());
  EXPECT_TRUE(Dequeue(aqm, Time::Microseconds(1),
                      Time::FromMicroseconds(201)));
  EXPECT_EQ(aqm.instantaneous_marks(), 1u);
}

// Regression pin for the marking boundary: Algorithm 1 compares the sojourn
// time against its targets inclusively, so a packet whose sojourn equals
// ins_target exactly must be marked (previously `>` left it unmarked).
TEST(EcnSharpTest, InstantaneousMarkAtExactlyInsTarget) {
  EcnSharpAqm aqm(TestConfig());
  EXPECT_TRUE(Dequeue(aqm, Time::Microseconds(1),
                      Time::FromMicroseconds(200)));
  EXPECT_EQ(aqm.instantaneous_marks(), 1u);
}

TEST(EcnSharpTest, NoInstantaneousMarkBelowTarget) {
  EcnSharpAqm aqm(TestConfig());
  EXPECT_FALSE(Dequeue(aqm, Time::Microseconds(1),
                       Time::FromMicroseconds(199)));
  EXPECT_FALSE(Dequeue(aqm, Time::Microseconds(2),
                       Time::FromMicroseconds(60)));
}

// The persistent comparison is inclusive too: a sojourn pinned at exactly
// pst_target sustains an episode and yields Algorithm 1's paced marks.
TEST(EcnSharpTest, PersistentEpisodeAtExactlyPstTarget) {
  EcnSharpAqm aqm(TestConfig());  // pst_target 85 us, pst_interval 200 us
  int marks = 0;
  for (int t_us = 0; t_us <= 600; t_us += 10) {
    if (Dequeue(aqm, Time::Microseconds(t_us), Time::FromMicroseconds(85))) {
      ++marks;
    }
  }
  EXPECT_TRUE(aqm.marking_state());
  EXPECT_GE(marks, 1);
  EXPECT_EQ(aqm.instantaneous_marks(), 0u);
}

// --------------------------- persistent detection --------------------------

TEST(EcnSharpTest, BelowPstTargetNeverDetects) {
  EcnSharpAqm aqm(TestConfig());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(Dequeue(aqm, Time::Microseconds(10 * i),
                         Time::FromMicroseconds(84)));
  }
  EXPECT_FALSE(aqm.marking_state());
}

TEST(EcnSharpTest, NoPersistentMarkWithinFirstInterval) {
  EcnSharpAqm aqm(TestConfig());
  // Sojourn above pst_target but below ins_target, for less than one
  // pst_interval: no marks yet.
  for (int t_us = 0; t_us <= 190; t_us += 10) {
    EXPECT_FALSE(Dequeue(aqm, Time::Microseconds(t_us),
                         Time::FromMicroseconds(100)));
  }
  EXPECT_FALSE(aqm.marking_state());
}

TEST(EcnSharpTest, MarksOnceIntervalExceeded) {
  EcnSharpAqm aqm(TestConfig());
  bool marked = false;
  for (int t_us = 0; t_us <= 250; t_us += 10) {
    marked = Dequeue(aqm, Time::Microseconds(t_us),
                     Time::FromMicroseconds(100));
    if (marked) break;
  }
  EXPECT_TRUE(marked);
  EXPECT_TRUE(aqm.marking_state());
  EXPECT_EQ(aqm.marking_count(), 1u);
  EXPECT_EQ(aqm.persistent_marks(), 1u);
}

TEST(EcnSharpTest, FirstAboveTimeResetsWhenQueueExpires) {
  EcnSharpAqm aqm(TestConfig());
  // 150 us above target...
  for (int t_us = 0; t_us <= 150; t_us += 10) {
    Dequeue(aqm, Time::Microseconds(t_us), Time::FromMicroseconds(100));
  }
  // ...then one dip below resets the detector...
  Dequeue(aqm, Time::Microseconds(160), Time::FromMicroseconds(10));
  EXPECT_TRUE(aqm.first_above_time().IsZero());
  // ...so another 150 us above target still does not mark.
  for (int t_us = 170; t_us <= 320; t_us += 10) {
    EXPECT_FALSE(Dequeue(aqm, Time::Microseconds(t_us),
                         Time::FromMicroseconds(100)));
  }
}

// --------------------------- conservative marking cadence ------------------

TEST(EcnSharpTest, MarksOnePacketPerIntervalInitially) {
  EcnSharpAqm aqm(TestConfig());
  int marks = 0;
  // Persistent queueing for 5 ms, dequeues every 5 us.
  for (int t_us = 0; t_us < 5000; t_us += 5) {
    if (Dequeue(aqm, Time::Microseconds(t_us),
                Time::FromMicroseconds(100))) {
      ++marks;
    }
  }
  // First mark at ~200 us; afterwards the interval shrinks as
  // interval/sqrt(count), so over T=5 ms the budget is
  // (T / (2*interval))^2 ~ 156 marks — far fewer than the 1000 dequeues.
  EXPECT_GE(marks, 5);
  EXPECT_LE(marks, 210);
}

TEST(EcnSharpTest, MarkingIntervalShrinksWithSqrtCount) {
  EcnSharpAqm aqm(TestConfig());
  std::vector<Time> mark_times;
  for (int t_us = 0; t_us < 4000; t_us += 2) {
    if (Dequeue(aqm, Time::Microseconds(t_us),
                Time::FromMicroseconds(100))) {
      mark_times.push_back(Time::Microseconds(t_us));
    }
  }
  ASSERT_GE(mark_times.size(), 4u);
  // Gaps between consecutive marks must be non-increasing (within the 2 us
  // dequeue quantization).
  for (std::size_t i = 2; i < mark_times.size(); ++i) {
    const Time prev_gap = mark_times[i - 1] - mark_times[i - 2];
    const Time gap = mark_times[i] - mark_times[i - 1];
    EXPECT_LE(gap, prev_gap + Time::FromMicroseconds(4));
  }
  // And the gap should approximately follow interval/sqrt(k).
  const Time second_gap = mark_times[2] - mark_times[1];
  EXPECT_NEAR(second_gap.ToMicroseconds(),
              200.0 / std::sqrt(2.0), 25.0);
}

TEST(EcnSharpTest, ExitsMarkingStateWhenQueueExpires) {
  EcnSharpAqm aqm(TestConfig());
  for (int t_us = 0; t_us < 1000; t_us += 5) {
    Dequeue(aqm, Time::Microseconds(t_us), Time::FromMicroseconds(100));
  }
  ASSERT_TRUE(aqm.marking_state());
  // Queue drains below target.
  EXPECT_FALSE(Dequeue(aqm, Time::Microseconds(1005),
                       Time::FromMicroseconds(20)));
  EXPECT_FALSE(aqm.marking_state());
}

TEST(EcnSharpTest, ReEntryRestartsCadence) {
  EcnSharpAqm aqm(TestConfig());
  for (int t_us = 0; t_us < 1000; t_us += 5) {
    Dequeue(aqm, Time::Microseconds(t_us), Time::FromMicroseconds(100));
  }
  Dequeue(aqm, Time::Microseconds(1005), Time::FromMicroseconds(20));
  ASSERT_FALSE(aqm.marking_state());
  // Build up persistence again: needs a full interval before the next mark.
  bool marked = false;
  Time first_mark = Time::Zero();
  for (int t_us = 1010; t_us < 1400; t_us += 5) {
    if (Dequeue(aqm, Time::Microseconds(t_us),
                Time::FromMicroseconds(100))) {
      marked = true;
      first_mark = Time::Microseconds(t_us);
      break;
    }
  }
  ASSERT_TRUE(marked);
  EXPECT_GE(first_mark, Time::Microseconds(1010) +
                            TestConfig().pst_interval);
  EXPECT_EQ(aqm.marking_count(), 1u);
}

TEST(EcnSharpTest, InstantaneousAndPersistentAreOrthogonal) {
  // A burst (sojourn > ins_target) during a persistent episode marks
  // through the instantaneous path without disturbing the cadence counter.
  EcnSharpAqm aqm(TestConfig());
  for (int t_us = 0; t_us < 1000; t_us += 5) {
    Dequeue(aqm, Time::Microseconds(t_us), Time::FromMicroseconds(100));
  }
  const std::uint32_t count_before = aqm.marking_count();
  EXPECT_TRUE(Dequeue(aqm, Time::Microseconds(1001),
                      Time::FromMicroseconds(500)));
  EXPECT_GE(aqm.marking_count(), count_before);
  EXPECT_GE(aqm.instantaneous_marks(), 1u);
}

// --------------------------- rule of thumb (§3.4) --------------------------

TEST(EcnSharpTest, RuleOfThumbMatchesPaperSetup) {
  // Testbed: p90 RTT ~200 us, average RTT ~85 us, classic-ECN lambda 1 —
  // yields the §5.2 parameters (ins 200 us, interval 200 us, target 85 us).
  const EcnSharpConfig config = RuleOfThumbConfig(
      Time::FromMicroseconds(200), Time::FromMicroseconds(85), 1.0);
  EXPECT_EQ(config.ins_target, Time::FromMicroseconds(200));
  EXPECT_EQ(config.pst_interval, Time::FromMicroseconds(200));
  EXPECT_EQ(config.pst_target, Time::FromMicroseconds(85));
}

TEST(EcnSharpTest, RuleOfThumbScalesWithLambda) {
  const EcnSharpConfig config = RuleOfThumbConfig(
      Time::FromMicroseconds(220), Time::FromMicroseconds(137), 0.5);
  EXPECT_EQ(config.ins_target, Time::FromMicroseconds(110));
  EXPECT_EQ(config.pst_target, Time::FromMicroseconds(68) +
                                   Time::Nanoseconds(500));
}

// --------------------------- property-style sweeps -------------------------

struct CadenceParam {
  int sojourn_us;
  int dequeue_gap_us;
};

class EcnSharpCadenceTest : public ::testing::TestWithParam<CadenceParam> {};

TEST_P(EcnSharpCadenceTest, MarkCountFollowsControlLawBound) {
  // Whatever the (above-target, below-ins-target) sojourn level and dequeue
  // rate, persistent marking must (a) start only after one full interval and
  // (b) stay within the control law's analytic budget: after k marks the
  // elapsed marking time is ~ sum interval/sqrt(i) ~ 2*interval*sqrt(k), so
  // k <= (T / (2*interval))^2 up to rounding. Marking is time-paced, never
  // per-packet.
  const CadenceParam param = GetParam();
  const Time horizon = Time::Milliseconds(10);
  EcnSharpAqm aqm(TestConfig());
  int marks = 0;
  Time first_mark = Time::Zero();
  for (int t_us = 0; t_us < static_cast<int>(horizon.ToMicroseconds());
       t_us += param.dequeue_gap_us) {
    if (Dequeue(aqm, Time::Microseconds(t_us),
                Time::FromMicroseconds(param.sojourn_us))) {
      ++marks;
      if (first_mark.IsZero()) first_mark = Time::Microseconds(t_us);
    }
  }
  ASSERT_GT(marks, 0);
  EXPECT_GE(first_mark, TestConfig().pst_interval);
  const double budget =
      horizon / (TestConfig().pst_interval * 2);  // = T / (2*interval)
  EXPECT_LE(marks, static_cast<int>(budget * budget * 1.3) + 3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EcnSharpCadenceTest,
    ::testing::Values(CadenceParam{90, 1}, CadenceParam{90, 10},
                      CadenceParam{120, 2}, CadenceParam{150, 5},
                      CadenceParam{199, 1}, CadenceParam{199, 20}),
    [](const ::testing::TestParamInfo<CadenceParam>& info) {
      return "sojourn" + std::to_string(info.param.sojourn_us) + "us_gap" +
             std::to_string(info.param.dequeue_gap_us) + "us";
    });

TEST(EcnSharpPropertyTest, NeverMarksWhenSojournAlwaysBelowBothTargets) {
  Rng rng(7);
  EcnSharpAqm aqm(TestConfig());
  Time t = Time::Zero();
  for (int i = 0; i < 5000; ++i) {
    t += Time::FromMicroseconds(rng.Uniform(0.5, 20.0));
    EXPECT_FALSE(Dequeue(aqm, t, Time::FromMicroseconds(
                                     rng.Uniform(0.0, 84.9))));
  }
  EXPECT_EQ(aqm.instantaneous_marks() + aqm.persistent_marks(), 0u);
}

TEST(EcnSharpPropertyTest, AlwaysMarksWhenSojournAlwaysAboveInsTarget) {
  Rng rng(8);
  EcnSharpAqm aqm(TestConfig());
  Time t = Time::Zero();
  for (int i = 0; i < 5000; ++i) {
    t += Time::FromMicroseconds(rng.Uniform(0.5, 20.0));
    EXPECT_TRUE(Dequeue(aqm, t, Time::FromMicroseconds(
                                    rng.Uniform(200.1, 1000.0))));
  }
}

TEST(EcnSharpPropertyTest, StateMachineInvariants) {
  // marking_count > 0 iff marking_state; first_above_time resets exactly
  // when sojourn < pst_target.
  Rng rng(9);
  EcnSharpAqm aqm(TestConfig());
  Time t = Time::Zero();
  for (int i = 0; i < 20'000; ++i) {
    t += Time::FromMicroseconds(rng.Uniform(0.5, 30.0));
    const Time sojourn = Time::FromMicroseconds(rng.Uniform(0.0, 400.0));
    Dequeue(aqm, t, sojourn);
    if (aqm.marking_state()) {
      EXPECT_GE(aqm.marking_count(), 1u);
    }
    if (sojourn < TestConfig().pst_target) {
      EXPECT_TRUE(aqm.first_above_time().IsZero());
      EXPECT_FALSE(aqm.marking_state());
    }
  }
}

}  // namespace
}  // namespace ecnsharp
