// Golden byte-parity suite for the batched-burst + SoA hot path.
//
// The burst-drain port/delay-line events and the SoA hot-state layouts
// (ChipHotBlock, FlowHotArena) were introduced as pure data-plane
// refactors: with lanes off, every simulated result must be byte-identical
// to the legacy one-closure-per-packet scheme. This suite pins that across
// all three topologies x {ECN#, DCTCP-tail, CoDel} under a churn scenario
// (loss injection, an incast burst, a link flap with purge, and an ECN#
// re-estimate) by running each experiment twice — burst mode and legacy
// mode — and comparing the full serialized result JSON byte for byte.
//
// If one of these tests fails, the burst path stopped reserving order
// stamps at the legacy scheduling points; see net/egress_port.h.
#include <string>

#include <gtest/gtest.h>

#include "harness/config_json.h"
#include "harness/experiment.h"
#include "net/event_mode.h"
#include "sim/time.h"

namespace ecnsharp {
namespace {

// Topology-agnostic churn: target -1 is the primary bottleneck everywhere,
// and the incast burst converges on each topology's IncastTarget.
ScenarioScript ChurnScript() {
  ScenarioScript script;
  script.seed = 33;

  ScenarioAction loss;
  loss.kind = ScenarioActionKind::kInjectLoss;
  loss.at = Time::Milliseconds(1);
  loss.target = -1;
  loss.drop_prob = 0.03;
  loss.corrupt_prob = 0.01;
  script.actions.push_back(loss);

  ScenarioAction burst;
  burst.kind = ScenarioActionKind::kIncastBurst;
  burst.at = Time::Milliseconds(2);
  burst.flows = 6;
  burst.bytes = 15000;
  script.actions.push_back(burst);

  ScenarioAction down;
  down.kind = ScenarioActionKind::kLinkDown;
  down.at = Time::Milliseconds(3);
  down.target = -1;
  down.drop_queued = true;
  script.actions.push_back(down);

  ScenarioAction up = down;
  up.kind = ScenarioActionKind::kLinkUp;
  up.at = Time::Milliseconds(3) + Time::FromMicroseconds(150);
  script.actions.push_back(up);

  ScenarioAction reest;
  reest.kind = ScenarioActionKind::kReestimateEcnSharp;
  reest.at = Time::Milliseconds(4);
  script.actions.push_back(reest);
  return script;
}

// Runs `fn` (an experiment returning ExperimentResult) in both event modes
// and returns the two serialized results.
template <typename Fn>
std::pair<std::string, std::string> RunBothModes(Fn fn) {
  LegacyPerPacketEvents() = false;
  const std::string burst = ToJson(fn()).Dump();
  LegacyPerPacketEvents() = true;
  const std::string legacy = ToJson(fn()).Dump();
  LegacyPerPacketEvents() = false;
  return {burst, legacy};
}

class BurstParityTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(BurstParityTest, DumbbellChurnByteIdentical) {
  const auto run = [] {
    DumbbellExperimentConfig config;
    config.scheme = BurstParityTest::GetParam();
    config.flows = 60;
    config.seed = 11;
    config.scenario = ChurnScript();
    return RunDumbbell(config);
  };
  const auto [burst, legacy] = RunBothModes(run);
  EXPECT_EQ(burst, legacy);
}

TEST_P(BurstParityTest, LeafSpineChurnByteIdentical) {
  const auto run = [] {
    LeafSpineExperimentConfig config;
    config.scheme = BurstParityTest::GetParam();
    config.topo.spines = 2;
    config.topo.leaves = 2;
    config.topo.hosts_per_leaf = 4;
    config.flows = 60;
    config.seed = 11;
    config.scenario = ChurnScript();
    return RunLeafSpine(config);
  };
  const auto [burst, legacy] = RunBothModes(run);
  EXPECT_EQ(burst, legacy);
}

TEST_P(BurstParityTest, FatTreeChurnByteIdentical) {
  const auto run = [] {
    FatTreeExperimentConfig config;
    config.scheme = BurstParityTest::GetParam();
    config.topo.k = 4;
    config.flows = 60;
    config.seed = 11;
    config.scenario = ChurnScript();
    return RunFatTree(config);
  };
  const auto [burst, legacy] = RunBothModes(run);
  EXPECT_EQ(burst, legacy);
}

INSTANTIATE_TEST_SUITE_P(Schemes, BurstParityTest,
                         ::testing::Values(Scheme::kEcnSharp,
                                           Scheme::kDctcpRedTail,
                                           Scheme::kCodel),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           switch (info.param) {
                             case Scheme::kEcnSharp:
                               return std::string("EcnSharp");
                             case Scheme::kDctcpRedTail:
                               return std::string("DctcpTail");
                             default:
                               return std::string("Codel");
                           }
                         });

}  // namespace
}  // namespace ecnsharp
