// Property tests for the count-min sketch (satellite of the sketch
// telemetry subsystem): across >= 1000 seeded random flow mixes,
//
//   1. the point estimate never undercounts (conservative update preserves
//      the one-sided count-min guarantee), and
//   2. the mean relative overestimate stays within the analytic bound for
//      a (w, d) sketch: E[error] <= N / w per query (classic count-min;
//      conservative update only tightens it), checked with slack against
//      the mean over all queried keys.
//
// The windowed rate sketch inherits the same guarantee per epoch
// sub-sketch; a spot-check property run covers its decayed merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"
#include "sketch/count_min.h"
#include "sketch/rate_sketch.h"

namespace ecnsharp {
namespace {

struct MixParams {
  std::size_t width;
  std::size_t depth;
  std::size_t flows;
  std::size_t updates;
};

// One random flow mix: keys drawn from a universe larger than the sketch,
// counts heavy-tailed so a few flows dominate (the regime the telemetry
// actually sees).
void RunMix(std::uint64_t seed, const MixParams& params,
            std::uint64_t* total_queried_error, std::uint64_t* total_count,
            std::size_t* queries) {
  Rng rng(seed);
  CountMinSketch sketch(params.width, params.depth, seed ^ 0xabcdef);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  truth.reserve(params.flows);

  for (std::size_t u = 0; u < params.updates; ++u) {
    const std::uint64_t key = rng.UniformInt(params.flows * 4) + 1;
    // Heavy-tailed count: mostly 1..16, occasionally up to ~4096.
    std::uint64_t count = rng.UniformInt(16) + 1;
    if (rng.UniformInt(16) == 0) count *= rng.UniformInt(256) + 1;
    sketch.Update(key, count);
    truth[key] += count;
  }

  for (const auto& [key, exact] : truth) {
    const std::uint64_t estimate = sketch.Estimate(key);
    // Property 1: never undercounts — for any key, any mix, any seed.
    ASSERT_GE(estimate, exact) << "seed " << seed << " key " << key;
    *total_queried_error += estimate - exact;
    ++*queries;
  }
  *total_count += sketch.total_count();
}

TEST(CountMinPropertyTest, NeverUndercountsAndMeanErrorWithinBound) {
  // 1050 mixes across three sketch geometries; widths chosen so collisions
  // actually occur (flows*4 key universe >> width).
  const MixParams geometries[] = {
      {128, 4, 256, 2000},
      {64, 2, 512, 1500},
      {256, 8, 1024, 3000},
  };
  for (const MixParams& params : geometries) {
    std::uint64_t total_error = 0;
    std::uint64_t total_count = 0;
    std::size_t queries = 0;
    for (std::uint64_t seed = 1; seed <= 350; ++seed) {
      RunMix(seed * 7919 + params.width, params, &total_error, &total_count,
             &queries);
    }
    ASSERT_GT(queries, 0u);
    const double mean_error =
        static_cast<double>(total_error) / static_cast<double>(queries);
    // Mean inserted mass per mix, N, bounds E[error] by N / width. The
    // mixes share one geometry, so compare means directly; 1.0x slack on
    // an inequality conservative update only tightens keeps the test
    // deterministic-stable (in practice CU lands far below the bound).
    const double mean_n = static_cast<double>(total_count) / 350.0;
    const double bound = mean_n / static_cast<double>(params.width);
    EXPECT_LE(mean_error, bound)
        << "w=" << params.width << " d=" << params.depth
        << " mean_error=" << mean_error << " bound=" << bound;
  }
}

TEST(RateSketchPropertyTest, WindowEstimateNeverUndercountsWindowBytes) {
  // The decayed merge divides a conservative numerator by an exact
  // denominator, so for flows fully inside the window the rate estimate
  // must be >= the true decayed rate. 100 random schedules.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const Time epoch = Time::Milliseconds(5);
    WindowedRateSketch sketch(64, 4, 8, epoch, 0.7, seed);
    std::unordered_map<std::uint64_t, double> decayed_truth;

    // All updates inside the last 3 epochs of a 10 ms..25 ms run so
    // nothing ages out before the query.
    const Time query_at = Time::Milliseconds(25);
    const std::uint64_t query_epoch = sketch.EpochIndexFor(query_at);
    for (int u = 0; u < 500; ++u) {
      const std::uint64_t key = rng.UniformInt(64) + 1;
      const std::uint64_t bytes = rng.UniformInt(9000) + 100;
      const Time at =
          Time::FromMicroseconds(10'000.0 + rng.Uniform() * 15'000.0);
      sketch.Update(key, bytes, at);
      const std::uint64_t age = query_epoch - sketch.EpochIndexFor(at);
      decayed_truth[key] +=
          sketch.AgeWeight(age) * static_cast<double>(bytes);
    }

    const double seconds = sketch.WindowWeightedSeconds(query_at);
    ASSERT_GT(seconds, 0.0);
    for (const auto& [key, weighted_bytes] : decayed_truth) {
      const double true_rate = 8.0 * weighted_bytes / seconds;
      const double estimate = sketch.EstimateRateBps(key, query_at);
      // Tolerance covers double accumulation order, not undercounting.
      ASSERT_GE(estimate, true_rate * (1.0 - 1e-9))
          << "seed " << seed << " key " << key;
    }
  }
}

}  // namespace
}  // namespace ecnsharp
