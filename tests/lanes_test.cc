// Locality-sharded event lanes: LaneSet semantics and the relaxed-lanes
// fat-tree runner.
//
// The relaxed mode's contract is run-to-run determinism (same config + lane
// count => bit-identical results), NOT byte-parity with the single-lane
// runner — same-timestamp ties across lanes may resolve differently. These
// tests pin exactly that contract, plus the conservative-window causality
// guarantees of LaneSet and the runner's configuration restrictions.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/relaxed_lanes.h"
#include "harness/schemes.h"
#include "net/lane_bridge.h"
#include "sim/lane_executor.h"
#include "sim/time.h"
#include "topo/fat_tree.h"

namespace ecnsharp {
namespace {

TEST(LaneSetTest, CrossLanePostsExecuteAtPostedTimeOnTargetLane) {
  LaneSet lanes(2);
  std::vector<std::pair<int, double>> log;  // (tag, time in us)

  // Lane 0 produces a cross-lane event during the first round; with the
  // posted `when` one full window ahead, lane 1 absorbs it at the next
  // round boundary and executes it at exactly the posted time.
  lanes.lane(0).ScheduleAt(Time::FromMicroseconds(3), [&lanes, &log] {
    log.emplace_back(0, lanes.lane(0).Now().ToMicroseconds());
    lanes.Post(0, 1, lanes.lane(0).Now() + Time::FromMicroseconds(10),
               [&lanes, &log] {
                 log.emplace_back(1, lanes.lane(1).Now().ToMicroseconds());
               });
  });
  lanes.Run(Time::FromMicroseconds(40), Time::FromMicroseconds(10));

  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 0);
  EXPECT_DOUBLE_EQ(log[0].second, 3.0);
  EXPECT_EQ(log[1].first, 1);
  EXPECT_DOUBLE_EQ(log[1].second, 13.0);
}

TEST(LaneSetTest, RunLeavesEveryLaneClockAtUntil) {
  LaneSet lanes(3);
  lanes.Run(Time::FromMicroseconds(25), Time::FromMicroseconds(4));
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    EXPECT_EQ(lanes.lane(i).Now(), Time::FromMicroseconds(25));
  }
  // Slice boundaries are transparent: a second Run continues from there.
  lanes.Run(Time::FromMicroseconds(50), Time::FromMicroseconds(4));
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    EXPECT_EQ(lanes.lane(i).Now(), Time::FromMicroseconds(50));
  }
}

TEST(LaneSetTest, MailboxAbsorptionOrdersByWhenThenPosterThenSeq) {
  // Three posters race into lane 0's mailbox during round one. Whatever the
  // thread interleaving, absorption must execute them in (when, from, seq)
  // order — pinned by running the identical setup twice.
  const auto run_once = [] {
    LaneSet lanes(4);
    std::vector<int> order;
    for (std::size_t from = 1; from < 4; ++from) {
      lanes.lane(from).ScheduleAt(
          Time::FromMicroseconds(1), [&lanes, &order, from] {
            // Two posts per poster, same target time: seq breaks the tie.
            for (int rep = 0; rep < 2; ++rep) {
              lanes.Post(from, 0, Time::FromMicroseconds(15),
                         [&order, from, rep] {
                           order.push_back(static_cast<int>(from) * 10 + rep);
                         });
            }
          });
    }
    lanes.Run(Time::FromMicroseconds(30), Time::FromMicroseconds(10));
    return order;
  };
  const std::vector<int> expected = {10, 11, 20, 21, 30, 31};
  EXPECT_EQ(run_once(), expected);
  EXPECT_EQ(run_once(), expected);
}

TEST(FatTreeLaneShardingTest, LocalityAnnotationsAndLaneMapping) {
  LaneSet lanes(3);
  FatTreeConfig config;
  config.k = 4;
  FatTree topo(lanes, config, [](BufferPolicy* pool) {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams(), pool);
  });
  ASSERT_TRUE(topo.lane_sharded());
  // Pod p is locality 1 + p, cores locality 0; lane = locality % 3.
  EXPECT_EQ(topo.host(0).locality_id(), 1u);
  EXPECT_EQ(topo.edge(0).locality_id(), 1u);
  EXPECT_EQ(topo.agg(0).locality_id(), 1u);
  EXPECT_EQ(topo.core(0).locality_id(), 0u);
  EXPECT_EQ(topo.LaneOfHost(0), 1u);                    // pod 0 -> lane 1
  EXPECT_EQ(topo.LaneOfHost(topo.hosts_per_pod()), 2u);  // pod 1 -> lane 2
  // Pod 2 wraps onto lane 0, sharing the core tier's lane: intra-lane
  // agg<->core links there are direct (un-bridged), which is legal since
  // same-lane events never cross a mailbox.
  EXPECT_EQ(topo.LaneOfHost(2 * topo.hosts_per_pod()), 0u);
}

TEST(FatTreeLaneShardingTest, SingleSimBuildReportsUnsharded) {
  Simulator sim;
  FatTreeConfig config;
  config.k = 4;
  FatTree topo(sim, config, [](BufferPolicy* pool) {
    return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams(), pool);
  });
  EXPECT_FALSE(topo.lane_sharded());
  EXPECT_EQ(topo.LaneOfHost(0), 0u);
  EXPECT_EQ(topo.host(0).locality_id(), 1u);  // annotations always present
}

FatTreeExperimentConfig SmallRelaxedConfig() {
  FatTreeExperimentConfig config;
  config.topo.k = 4;
  config.flows = 150;
  config.seed = 7;
  return config;
}

TEST(RelaxedLanesTest, CompletesEveryFlow) {
  const ExperimentResult r = RunFatTreeRelaxed(SmallRelaxedConfig(), 2);
  EXPECT_EQ(r.flows_started, 150u);
  EXPECT_EQ(r.flows_completed, 150u);
  EXPECT_GT(r.overall.avg_us, 0.0);
  EXPECT_GT(r.sim_seconds, 0.0);
}

TEST(RelaxedLanesTest, RunToRunBitIdentical) {
  const ExperimentResult a = RunFatTreeRelaxed(SmallRelaxedConfig(), 3);
  const ExperimentResult b = RunFatTreeRelaxed(SmallRelaxedConfig(), 3);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.overall.avg_us, b.overall.avg_us);
  EXPECT_EQ(a.overall.p99_us, b.overall.p99_us);
  EXPECT_EQ(a.short_flows.avg_us, b.short_flows.avg_us);
  EXPECT_EQ(a.bottleneck.ce_marked, b.bottleneck.ce_marked);
  EXPECT_EQ(a.bottleneck.dropped_overflow, b.bottleneck.dropped_overflow);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
}

TEST(RelaxedLanesTest, OffersTheSameWorkloadAsTheSingleLaneRunner) {
  // The rng discipline matches ExperimentSession draw-for-draw, so both
  // runners start the same flows; trajectories (and therefore FCTs) may
  // differ at cross-lane ties, but completion accounting must agree.
  FatTreeExperimentConfig config = SmallRelaxedConfig();
  const ExperimentResult relaxed = RunFatTreeRelaxed(config, 2);
  const ExperimentResult single = RunFatTree(config);
  EXPECT_EQ(relaxed.flows_started, single.flows_started);
  EXPECT_EQ(relaxed.flows_completed, single.flows_completed);
}

TEST(RelaxedLanesDeathTest, RejectsFewerThanTwoLanes) {
  EXPECT_EXIT(RunFatTreeRelaxed(SmallRelaxedConfig(), 1),
              testing::ExitedWithCode(2), "needs >= 2 lanes");
}

TEST(RelaxedLanesDeathTest, RejectsScenarioScripts) {
  FatTreeExperimentConfig config = SmallRelaxedConfig();
  config.scenario.actions.push_back(ScenarioAction{});
  EXPECT_EXIT(RunFatTreeRelaxed(config, 2), testing::ExitedWithCode(2),
              "cannot run scenario scripts");
}

TEST(RelaxedLanesDeathTest, RejectsTracing) {
  FatTreeExperimentConfig config = SmallRelaxedConfig();
  config.trace.enabled = true;
  EXPECT_EXIT(RunFatTreeRelaxed(config, 2), testing::ExitedWithCode(2),
              "tracing enabled");
}

TEST(RelaxedLanesDeathTest, RejectsSketchTelemetry) {
  FatTreeExperimentConfig config = SmallRelaxedConfig();
  config.sketch.enabled = true;
  EXPECT_EXIT(RunFatTreeRelaxed(config, 2), testing::ExitedWithCode(2),
              "sketch telemetry");
}

TEST(RelaxedLanesDeathTest, RejectsQueueSampling) {
  FatTreeExperimentConfig config = SmallRelaxedConfig();
  config.queue_sample_period = Time::FromMicroseconds(100);
  EXPECT_EXIT(RunFatTreeRelaxed(config, 2), testing::ExitedWithCode(2),
              "queue sampling");
}

TEST(RelaxedLanesDeathTest, RejectsNonPositiveFabricDelay) {
  FatTreeExperimentConfig config = SmallRelaxedConfig();
  config.topo.fabric_link_delay = Time::Zero();
  EXPECT_EXIT(RunFatTreeRelaxed(config, 2), testing::ExitedWithCode(2),
              "positive fabric_link_delay");
}

}  // namespace
}  // namespace ecnsharp
