// End-to-end TCP behaviour over a two-host link and through a switch:
// completion, throughput, loss recovery, RTO, ECN reaction, DCTCP alpha.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "aqm/dctcp_red.h"
#include "net/host.h"
#include "net/switch_node.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"
#include "transport/tcp_stack.h"

namespace ecnsharp {
namespace {

constexpr DataRate kRate = DataRate::GigabitsPerSecond(10);
constexpr Time kDelay = Time::Microseconds(10);

// Two hosts connected through one switch; the switch egress toward the
// receiver takes an optional AQM.
struct TwoHostNet {
  Simulator sim;
  std::unique_ptr<SwitchNode> sw;
  std::unique_ptr<Host> sender;
  std::unique_ptr<Host> receiver;
  std::unique_ptr<TcpStack> sender_stack;
  std::unique_ptr<TcpStack> receiver_stack;
  EgressPort* bottleneck = nullptr;

  explicit TwoHostNet(const TcpConfig& tcp,
                      std::unique_ptr<AqmPolicy> receiver_port_aqm = nullptr,
                      std::uint64_t buffer_bytes = 1ull << 26) {
    sw = std::make_unique<SwitchNode>(sim, "sw");
    sender = std::make_unique<Host>(sim, 0);
    receiver = std::make_unique<Host>(sim, 1);
    for (Host* h : {sender.get(), receiver.get()}) {
      // Host NICs run at 4x the bottleneck rate so a single sender can
      // congest the switch egress port (like a fast server behind a slower
      // fabric link).
      auto nic = std::make_unique<EgressPort>(
          sim, DataRate::GigabitsPerSecond(40), kDelay,
          std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
      nic->ConnectTo(*sw);
      h->AttachNic(std::move(nic));
      const bool to_receiver = (h == receiver.get());
      auto disc = std::make_unique<FifoQueueDisc>(
          buffer_bytes,
          to_receiver ? std::move(receiver_port_aqm) : nullptr);
      auto port = std::make_unique<EgressPort>(sim, kRate, kDelay,
                                               std::move(disc));
      port->ConnectTo(*h);
      EgressPort& ref = sw->AddPort(std::move(port));
      sw->AddRoute(h->address(), ref);
      if (to_receiver) bottleneck = &ref;
    }
    sender_stack = std::make_unique<TcpStack>(*sender, tcp);
    receiver_stack = std::make_unique<TcpStack>(*receiver, tcp);
  }
};

TEST(TcpTest, SingleSegmentFlowCompletes) {
  TwoHostNet net(TcpConfig{});
  std::optional<FlowRecord> done;
  net.sender_stack->StartFlow(1, 1000,
                              [&done](const FlowRecord& r) { done = r; });
  net.sim.Run();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->size_bytes, 1000u);
  // One RTT-ish: ~2*(2*10us) + serialization.
  EXPECT_LT(done->Fct(), Time::Microseconds(60));
  EXPECT_EQ(done->timeouts, 0u);
}

TEST(TcpTest, BulkFlowReachesLineRate) {
  TcpConfig tcp;
  tcp.ecn_mode = EcnMode::kNone;
  TwoHostNet net(tcp);
  std::optional<FlowRecord> done;
  const std::uint64_t size = 50'000'000;  // 50 MB
  net.sender_stack->StartFlow(1, size,
                              [&done](const FlowRecord& r) { done = r; });
  net.sim.Run();
  ASSERT_TRUE(done.has_value());
  const double goodput_gbps =
      static_cast<double>(size) * 8.0 / done->Fct().ToSeconds() * 1e-9;
  // Goodput should be close to 10 Gbps * (1460/1500) ~ 9.73 Gbps.
  EXPECT_GT(goodput_gbps, 8.5);
  EXPECT_LE(goodput_gbps, 9.75);
  EXPECT_EQ(done->timeouts, 0u);
}

TEST(TcpTest, ManyFlowsAllComplete) {
  TwoHostNet net(TcpConfig{});
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    net.sender_stack->StartFlow(1, 10000 + i * 1000,
                                [&completed](const FlowRecord&) {
                                  ++completed;
                                });
  }
  net.sim.Run();
  EXPECT_EQ(completed, 50);
}

TEST(TcpTest, ReceiverGetsExactByteCount) {
  TwoHostNet net(TcpConfig{});
  bool done = false;
  net.sender_stack->StartFlow(1, 123457,
                              [&done](const FlowRecord&) { done = true; });
  net.sim.Run();
  EXPECT_TRUE(done);
}

TEST(TcpTest, RecoversFromLossViaFastRetransmit) {
  // A tiny switch buffer forces overflow drops while cwnd grows.
  TcpConfig tcp;
  tcp.ecn_mode = EcnMode::kNone;
  TwoHostNet net(tcp, nullptr, /*buffer_bytes=*/30'000);
  std::optional<FlowRecord> done;
  net.sender_stack->StartFlow(1, 5'000'000,
                              [&done](const FlowRecord& r) { done = r; });
  net.sim.RunUntil(Time::Seconds(10));
  ASSERT_TRUE(done.has_value());
  EXPECT_GT(net.bottleneck->queue_disc().stats().dropped_overflow, 0u);
  EXPECT_GT(done->fast_retransmits, 0u);
}

TEST(TcpTest, RtoRecoversFromTotalLossWindow) {
  // Drop-everything period: disconnect by using a 1-packet buffer and a
  // large initial burst; timeouts must eventually repair the flow.
  TcpConfig tcp;
  tcp.ecn_mode = EcnMode::kNone;
  tcp.init_cwnd_segments = 64;
  TwoHostNet net(tcp, nullptr, /*buffer_bytes=*/4000);
  std::optional<FlowRecord> done;
  net.sender_stack->StartFlow(1, 500'000,
                              [&done](const FlowRecord& r) { done = r; });
  net.sim.RunUntil(Time::Seconds(30));
  ASSERT_TRUE(done.has_value());
  EXPECT_GT(done->timeouts + done->fast_retransmits, 0u);
}

TEST(TcpTest, EcnMarkingKeepsQueueNearThreshold) {
  // DCTCP against a 60 KB instantaneous threshold: the standing queue must
  // hover around the threshold, far below the buffer limit, with no drops.
  TcpConfig tcp;  // DCTCP by default
  TwoHostNet net(tcp, std::make_unique<DctcpRedAqm>(60'000));
  std::optional<FlowRecord> done;
  net.sender_stack->StartFlow(1, 30'000'000,
                              [&done](const FlowRecord& r) { done = r; });
  std::uint32_t max_queue = 0;
  // Sample the queue while the flow runs.
  for (int i = 0; i < 2000 && !done.has_value(); ++i) {
    net.sim.RunFor(Time::Microseconds(50));
    max_queue =
        std::max(max_queue, net.bottleneck->queue_disc().Snapshot().packets);
  }
  net.sim.Run();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(net.bottleneck->queue_disc().stats().dropped_overflow, 0u);
  EXPECT_GT(net.bottleneck->queue_disc().stats().ce_marked, 0u);
  // Queue stays bounded near the 41-packet threshold (some overshoot is
  // expected during slow start).
  EXPECT_LT(max_queue, 200u);
  EXPECT_EQ(done->timeouts, 0u);
}

TEST(TcpTest, DctcpAlphaConvergesUnderPersistentMarking) {
  TcpConfig tcp;
  TwoHostNet net(tcp, std::make_unique<DctcpRedAqm>(60'000));
  TcpSender& sender = net.sender_stack->StartFlow(1, 1ull << 30, nullptr);
  net.sim.RunUntil(Time::Milliseconds(200));
  // With steady marking at the threshold, alpha settles well below 1 but
  // above 0 (fraction of marked packets per window).
  EXPECT_GT(sender.dctcp_alpha(), 0.0);
  EXPECT_LT(sender.dctcp_alpha(), 0.9);
  EXPECT_GT(sender.bytes_acked(), 0u);
}

TEST(TcpTest, ClassicEcnHalvesOnMark) {
  TcpConfig tcp;
  tcp.ecn_mode = EcnMode::kClassic;
  TwoHostNet net(tcp, std::make_unique<DctcpRedAqm>(60'000));
  std::optional<FlowRecord> done;
  net.sender_stack->StartFlow(1, 20'000'000,
                              [&done](const FlowRecord& r) { done = r; });
  net.sim.RunUntil(Time::Seconds(10));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->timeouts, 0u);
  EXPECT_GT(net.bottleneck->queue_disc().stats().ce_marked, 0u);
}

TEST(TcpTest, DctcpOutperformsClassicEcnOnThroughputAtLowThreshold) {
  // With a shallow threshold, classic ECN's half-cut repeatedly empties the
  // queue and loses throughput; DCTCP's proportional cut keeps it busy.
  const auto run = [](EcnMode mode) {
    TcpConfig tcp;
    tcp.ecn_mode = mode;
    TwoHostNet net(tcp, std::make_unique<DctcpRedAqm>(30'000));
    std::optional<FlowRecord> done;
    net.sender_stack->StartFlow(1, 20'000'000,
                                [&done](const FlowRecord& r) { done = r; });
    net.sim.RunUntil(Time::Seconds(20));
    return done->Fct();
  };
  const Time dctcp = run(EcnMode::kDctcp);
  const Time classic = run(EcnMode::kClassic);
  EXPECT_LT(dctcp, classic);
}

TEST(TcpTest, FlowsWithDifferentRttsShareBottleneck) {
  TcpConfig tcp;
  TwoHostNet net(tcp, std::make_unique<DctcpRedAqm>(250'000));
  net.sender->set_extra_egress_delay(Time::Microseconds(100));
  int completed = 0;
  net.sender_stack->StartFlow(1, 2'000'000,
                              [&completed](const FlowRecord&) {
                                ++completed;
                              });
  net.sender_stack->StartFlow(1, 2'000'000,
                              [&completed](const FlowRecord&) {
                                ++completed;
                              });
  net.sim.RunUntil(Time::Seconds(10));
  EXPECT_EQ(completed, 2);
}

TEST(TcpStackTest, PortAllocationAvoidsCollisions) {
  TwoHostNet net(TcpConfig{});
  TcpSender& a = net.sender_stack->StartFlow(1, 1000, nullptr);
  TcpSender& b = net.sender_stack->StartFlow(1, 1000, nullptr);
  EXPECT_NE(a.flow().src_port, b.flow().src_port);
  net.sim.Run();
}

TEST(TcpStackTest, ActiveSenderCountTracksCompletion) {
  TwoHostNet net(TcpConfig{});
  net.sender_stack->StartFlow(1, 1000, nullptr);
  EXPECT_EQ(net.sender_stack->active_senders(), 1u);
  net.sim.Run();
  EXPECT_EQ(net.sender_stack->active_senders(), 0u);
}

}  // namespace
}  // namespace ecnsharp
