#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/timer.h"

namespace ecnsharp {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Time::Microseconds(30), [&order] { order.push_back(3); });
  sim.Schedule(Time::Microseconds(10), [&order] { order.push_back(1); });
  sim.Schedule(Time::Microseconds(20), [&order] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Time::Microseconds(30));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, FifoAmongEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Time::Microseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Time::Microseconds(1), [&sim, &fired] {
    ++fired;
    sim.Schedule(Time::Microseconds(1), [&fired] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Time::Microseconds(2));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(Time::Microseconds(5), [&sim, &fired] {
    sim.Schedule(Time::Microseconds(-3), [&sim, &fired] {
      fired = true;
      EXPECT_EQ(sim.Now(), Time::Microseconds(5));
    });
  });
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id =
      sim.Schedule(Time::Microseconds(1), [&fired] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelInvalidIdIsNoOp) {
  Simulator sim;
  sim.Cancel(EventId{});
  sim.Cancel(EventId{12345});
  sim.Run();
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Time::Microseconds(1), [&sim, &fired] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Time::Microseconds(2), [&fired] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(Time::Milliseconds(7));
  EXPECT_EQ(sim.Now(), Time::Milliseconds(7));
}

TEST(SimulatorTest, RunUntilExecutesOnlyDueEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Time::Microseconds(10), [&fired] { ++fired; });
  sim.Schedule(Time::Microseconds(30), [&fired] { ++fired; });
  sim.RunUntil(Time::Microseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Time::Microseconds(20));
  sim.RunUntil(Time::Microseconds(40));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.RunFor(Time::Microseconds(10));
  sim.RunFor(Time::Microseconds(10));
  EXPECT_EQ(sim.Now(), Time::Microseconds(20));
}

TEST(SimulatorTest, EventAtExactRunUntilBoundaryExecutes) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(Time::Microseconds(10), [&fired] { fired = true; });
  sim.RunUntil(Time::Microseconds(10));
  EXPECT_TRUE(fired);
}

TEST(TimerTest, FiresOnce) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&fired] { ++fired; });
  timer.Schedule(Time::Microseconds(5));
  EXPECT_TRUE(timer.pending());
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.pending());
}

TEST(TimerTest, RescheduleReplacesPending) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&fired] { ++fired; });
  timer.Schedule(Time::Microseconds(5));
  timer.Schedule(Time::Microseconds(50));
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Time::Microseconds(50));
}

TEST(TimerTest, CancelStopsFire) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&fired] { ++fired; });
  timer.Schedule(Time::Microseconds(5));
  timer.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, ReschedulableFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer* handle = nullptr;
  Timer timer(sim, [&] {
    if (++fired < 3) handle->Schedule(Time::Microseconds(10));
  });
  handle = &timer;
  timer.Schedule(Time::Microseconds(10));
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), Time::Microseconds(30));
}

TEST(TimerTest, ExpiryReportsAbsoluteTime) {
  Simulator sim;
  Timer timer(sim, [] {});
  sim.RunUntil(Time::Microseconds(100));
  timer.Schedule(Time::Microseconds(20));
  EXPECT_EQ(timer.expiry(), Time::Microseconds(120));
}

}  // namespace
}  // namespace ecnsharp
