// Link/port/switch behaviour: serialization timing, propagation, FIFO
// draining, overflow drops, ECMP routing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/delay_line.h"
#include "net/egress_port.h"
#include "net/event_mode.h"
#include "net/host.h"
#include "net/switch_node.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"

namespace ecnsharp {
namespace {

std::unique_ptr<Packet> MakePacket(std::uint32_t src, std::uint32_t dst,
                                   std::uint32_t bytes,
                                   std::uint16_t sport = 1) {
  auto pkt = std::make_unique<Packet>();
  pkt->flow = FlowKey{src, dst, sport, 80};
  pkt->size_bytes = bytes;
  return pkt;
}

// Collects delivered packets with their arrival times.
class CollectorSink : public PacketSink {
 public:
  explicit CollectorSink(Simulator& sim) : sim_(sim) {}
  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    arrivals_.emplace_back(sim_.Now(), std::move(pkt));
  }
  std::size_t count() const { return arrivals_.size(); }
  Time arrival(std::size_t i) const { return arrivals_.at(i).first; }
  const Packet& packet(std::size_t i) const { return *arrivals_.at(i).second; }

 private:
  Simulator& sim_;
  std::vector<std::pair<Time, std::unique_ptr<Packet>>> arrivals_;
};

std::unique_ptr<FifoQueueDisc> BigFifo() {
  return std::make_unique<FifoQueueDisc>(1ull << 30, nullptr);
}

TEST(EgressPortTest, SinglePacketTiming) {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::Microseconds(5), BigFifo());
  port.ConnectTo(sink);
  port.Enqueue(MakePacket(0, 1, 1500));
  sim.Run();
  ASSERT_EQ(sink.count(), 1u);
  // 1.2 us serialization + 5 us propagation.
  EXPECT_EQ(sink.arrival(0), Time::Nanoseconds(6200));
}

TEST(EgressPortTest, BackToBackSerialization) {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  BigFifo());
  port.ConnectTo(sink);
  for (int i = 0; i < 3; ++i) port.Enqueue(MakePacket(0, 1, 1500));
  sim.Run();
  ASSERT_EQ(sink.count(), 3u);
  EXPECT_EQ(sink.arrival(0), Time::Nanoseconds(1200));
  EXPECT_EQ(sink.arrival(1), Time::Nanoseconds(2400));
  EXPECT_EQ(sink.arrival(2), Time::Nanoseconds(3600));
  EXPECT_EQ(port.counters().tx_packets, 3u);
  EXPECT_EQ(port.counters().tx_bytes, 4500u);
}

TEST(EgressPortTest, PreservesFifoOrder) {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(1), Time::Zero(),
                  BigFifo());
  port.ConnectTo(sink);
  for (std::uint16_t i = 0; i < 10; ++i) {
    port.Enqueue(MakePacket(0, 1, 500, i));
  }
  sim.Run();
  ASSERT_EQ(sink.count(), 10u);
  for (std::uint16_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.packet(i).flow.src_port, i);
  }
}

TEST(EgressPortTest, IdlePortResumesAfterDrain) {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  BigFifo());
  port.ConnectTo(sink);
  port.Enqueue(MakePacket(0, 1, 1500));
  sim.Run();
  ASSERT_EQ(sink.count(), 1u);
  sim.ScheduleAt(Time::Microseconds(100),
                 [&port] { port.Enqueue(MakePacket(0, 1, 1500)); });
  sim.Run();
  ASSERT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.arrival(1), Time::Microseconds(100) + Time::Nanoseconds(1200));
}

TEST(FifoQueueDiscTest, OverflowDropsTail) {
  FifoQueueDisc disc(3000, nullptr);  // two 1500B packets fit
  EXPECT_TRUE(disc.Enqueue(MakePacket(0, 1, 1500), Time::Zero()));
  EXPECT_TRUE(disc.Enqueue(MakePacket(0, 1, 1500), Time::Zero()));
  EXPECT_FALSE(disc.Enqueue(MakePacket(0, 1, 1500), Time::Zero()));
  EXPECT_EQ(disc.stats().dropped_overflow, 1u);
  EXPECT_EQ(disc.Snapshot().packets, 2u);
  EXPECT_EQ(disc.Snapshot().bytes, 3000u);
}

TEST(FifoQueueDiscTest, DequeueEmptyReturnsNull) {
  FifoQueueDisc disc(3000, nullptr);
  EXPECT_EQ(disc.Dequeue(Time::Zero()), nullptr);
}

TEST(FifoQueueDiscTest, StampsEnqueueTime) {
  FifoQueueDisc disc(1 << 20, nullptr);
  disc.Enqueue(MakePacket(0, 1, 100), Time::Microseconds(7));
  auto out = disc.Dequeue(Time::Microseconds(11));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->enqueue_time, Time::Microseconds(7));
}

TEST(DelayLineTest, AddsFixedDelay) {
  Simulator sim;
  CollectorSink sink(sim);
  DelayLine line(sim, sink, Time::Microseconds(42));
  line.HandlePacket(MakePacket(0, 1, 100));
  sim.Run();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.arrival(0), Time::Microseconds(42));
}

TEST(HostTest, ExtraEgressDelayAppliesToSends) {
  Simulator sim;
  CollectorSink sink(sim);
  Host host(sim, 0);
  auto nic = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  nic->ConnectTo(sink);
  host.AttachNic(std::move(nic));
  host.set_extra_egress_delay(Time::Microseconds(30));
  host.SendPacket(MakePacket(0, 1, 1500));
  sim.Run();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.arrival(0),
            Time::Microseconds(30) + Time::Nanoseconds(1200));
}

TEST(SwitchTest, RoutesByDestination) {
  Simulator sim;
  SwitchNode sw(sim, "sw");
  CollectorSink sink_a(sim);
  CollectorSink sink_b(sim);
  auto port_a = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_a->ConnectTo(sink_a);
  auto port_b = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_b->ConnectTo(sink_b);
  sw.AddRoute(1, sw.AddPort(std::move(port_a)));
  sw.AddRoute(2, sw.AddPort(std::move(port_b)));

  sw.HandlePacket(MakePacket(0, 1, 100));
  sw.HandlePacket(MakePacket(0, 2, 100));
  sw.HandlePacket(MakePacket(0, 2, 100));
  sim.Run();
  EXPECT_EQ(sink_a.count(), 1u);
  EXPECT_EQ(sink_b.count(), 2u);
  EXPECT_EQ(sw.rx_packets(), 3u);
}

TEST(SwitchTest, DropsWithoutRoute) {
  Simulator sim;
  SwitchNode sw(sim, "sw");
  sw.HandlePacket(MakePacket(0, 99, 100));
  EXPECT_EQ(sw.no_route_drops(), 1u);
}

TEST(SwitchTest, EcmpIsPerFlowStable) {
  Simulator sim;
  SwitchNode sw(sim, "sw", /*ecmp_salt=*/7);
  CollectorSink sink_a(sim);
  CollectorSink sink_b(sim);
  auto port_a = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_a->ConnectTo(sink_a);
  auto port_b = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_b->ConnectTo(sink_b);
  EgressPort& pa = sw.AddPort(std::move(port_a));
  EgressPort& pb = sw.AddPort(std::move(port_b));
  sw.AddRoute(5, pa);
  sw.AddRoute(5, pb);

  // Same flow always takes the same port.
  for (int i = 0; i < 20; ++i) sw.HandlePacket(MakePacket(1, 5, 100, 33));
  sim.Run();
  EXPECT_TRUE(sink_a.count() == 20 || sink_b.count() == 20);
}

TEST(SwitchTest, EcmpSpreadsFlows) {
  Simulator sim;
  SwitchNode sw(sim, "sw", /*ecmp_salt=*/7);
  CollectorSink sink_a(sim);
  CollectorSink sink_b(sim);
  auto port_a = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_a->ConnectTo(sink_a);
  auto port_b = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_b->ConnectTo(sink_b);
  EgressPort& pa = sw.AddPort(std::move(port_a));
  EgressPort& pb = sw.AddPort(std::move(port_b));
  sw.AddRoute(5, pa);
  sw.AddRoute(5, pb);

  for (std::uint16_t sport = 0; sport < 200; ++sport) {
    sw.HandlePacket(MakePacket(1, 5, 100, sport));
  }
  sim.Run();
  // Both uplinks must carry a substantial share of the 200 flows.
  EXPECT_GT(sink_a.count(), 50u);
  EXPECT_GT(sink_b.count(), 50u);
}

// Range routes match their inclusive [lo, hi] block; exact routes win over
// an overlapping range (a fat-tree edge routes its own hosts exactly while
// an agg above it routes the whole edge block as one range).
TEST(SwitchTest, RangeRoutesMatchInclusiveBlocks) {
  Simulator sim;
  SwitchNode sw(sim, "sw");
  CollectorSink sink_exact(sim);
  CollectorSink sink_lo(sim);
  CollectorSink sink_hi(sim);
  auto mk = [&](CollectorSink& sink) -> EgressPort& {
    auto port = std::make_unique<EgressPort>(
        sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
    port->ConnectTo(sink);
    return sw.AddPort(std::move(port));
  };
  EgressPort& exact = mk(sink_exact);
  EgressPort& lo = mk(sink_lo);
  EgressPort& hi = mk(sink_hi);
  sw.AddRouteRange(10, 19, lo);
  sw.AddRouteRange(20, 29, hi);
  sw.AddRoute(15, exact);

  sw.HandlePacket(MakePacket(1, 10, 100));  // lo edge of first block
  sw.HandlePacket(MakePacket(1, 19, 100));  // hi edge of first block
  sw.HandlePacket(MakePacket(1, 15, 100));  // exact beats range
  sw.HandlePacket(MakePacket(1, 20, 100));  // second block
  sw.HandlePacket(MakePacket(1, 29, 100));
  sw.HandlePacket(MakePacket(1, 30, 100));  // past the last block: dropped
  sw.HandlePacket(MakePacket(1, 9, 100));   // before the first: dropped
  sim.Run();
  EXPECT_EQ(sink_lo.count(), 2u);
  EXPECT_EQ(sink_exact.count(), 1u);
  EXPECT_EQ(sink_hi.count(), 2u);
  EXPECT_EQ(sw.no_route_drops(), 2u);
}

// The default route catches everything no exact or range entry claims, and
// spreads over its ECMP set (a fat-tree edge's uplinks are exactly this).
TEST(SwitchTest, DefaultRouteCatchesUnmatchedAndSpreads) {
  Simulator sim;
  SwitchNode sw(sim, "sw", /*ecmp_salt=*/3);
  CollectorSink sink_local(sim);
  CollectorSink sink_up_a(sim);
  CollectorSink sink_up_b(sim);
  auto mk = [&](CollectorSink& sink) -> EgressPort& {
    auto port = std::make_unique<EgressPort>(
        sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
    port->ConnectTo(sink);
    return sw.AddPort(std::move(port));
  };
  sw.AddRoute(5, mk(sink_local));
  sw.AddDefaultRoute(mk(sink_up_a));
  sw.AddDefaultRoute(mk(sink_up_b));

  sw.HandlePacket(MakePacket(1, 5, 100));  // exact route still wins
  for (std::uint16_t sport = 0; sport < 200; ++sport) {
    sw.HandlePacket(MakePacket(1, 77, 100, sport));  // all default-routed
  }
  sim.Run();
  EXPECT_EQ(sink_local.count(), 1u);
  EXPECT_EQ(sink_up_a.count() + sink_up_b.count(), 200u);
  EXPECT_GT(sink_up_a.count(), 50u);
  EXPECT_GT(sink_up_b.count(), 50u);
  EXPECT_EQ(sw.no_route_drops(), 0u);
}

// ---------------------------------------------------------------------------
// ECMP hash quality: no polarization across salted hops
// ---------------------------------------------------------------------------
//
// The old SelectEcmp mixed (key_hash ^ salt) with one multiply; structured
// key populations (sequential ports or addresses, which is what every
// topology builder produces) left correlated low bits, so the subpopulation
// a first-hop switch sent to uplink 0 could collapse onto a single
// second-hop uplink — the classic ECMP polarization failure. The splitmix64
// finalizer must spread every hop's conditional subpopulation uniformly.

// Helper: bucket histogram of `hashes` under `salt`, plus the subpopulation
// that landed in bucket 0 (the keys the next hop actually sees).
struct SpreadResult {
  std::vector<std::size_t> counts;
  std::vector<std::uint64_t> survivors;  // hashes that picked bucket 0
};

SpreadResult SpreadOverBuckets(const std::vector<std::uint64_t>& hashes,
                               std::uint64_t salt, std::size_t buckets) {
  SpreadResult r;
  r.counts.assign(buckets, 0);
  for (const std::uint64_t h : hashes) {
    const std::size_t b = SwitchNode::EcmpBucket(h, salt, buckets);
    ++r.counts[b];
    if (b == 0) r.survivors.push_back(h);
  }
  return r;
}

// Asserts every bucket is within 5% of the uniform share and the chi-square
// statistic is sane. Deterministic: fixed keys, fixed hash.
void ExpectUniformSpread(const SpreadResult& r, const char* hop) {
  SCOPED_TRACE(hop);
  std::size_t total = 0;
  for (const std::size_t c : r.counts) total += c;
  const double expected =
      static_cast<double>(total) / static_cast<double>(r.counts.size());
  double chi2 = 0.0;
  for (const std::size_t c : r.counts) {
    const double dev = static_cast<double>(c) - expected;
    chi2 += dev * dev / expected;
    EXPECT_LE(std::abs(dev), 0.05 * expected)
        << "bucket " << (&c - r.counts.data()) << " count " << c
        << " vs expected " << expected;
  }
  // df = buckets-1 = 7; the 99.99th percentile is ~29.9. A polarized hash
  // blows through this by orders of magnitude.
  EXPECT_LT(chi2, 30.0);
}

TEST(EcmpHashTest, NoPolarizationAcrossThreeSaltedHops) {
  // Structured population: a full grid of sequential addresses and
  // sequential source ports — 128 x 128 x 128 = 2,097,152 flow keys, the
  // worst case for multiply-only mixing.
  FlowKeyHash hasher;
  std::vector<std::uint64_t> hashes;
  hashes.reserve(128u * 128u * 128u);
  for (std::uint32_t src = 0; src < 128; ++src) {
    for (std::uint32_t dst = 128; dst < 256; ++dst) {
      for (std::uint16_t sport = 0; sport < 128; ++sport) {
        hashes.push_back(hasher(FlowKey{src, dst, sport, 80}));
      }
    }
  }

  // Three hops with the fat-tree salt scheme (edge 0, agg 0, core 0), 8-way
  // ECMP each (a k=16 fabric). Each hop only sees the keys the previous hop
  // sent out its first uplink — the conditional subpopulation where
  // polarization shows up.
  const SpreadResult hop1 = SpreadOverBuckets(hashes, 0x10000, 8);
  ExpectUniformSpread(hop1, "hop1 (edge, 2M keys)");
  ASSERT_GT(hop1.survivors.size(), 10000u);

  const SpreadResult hop2 = SpreadOverBuckets(hop1.survivors, 0x20000, 8);
  ExpectUniformSpread(hop2, "hop2 (agg, conditional)");
  ASSERT_GT(hop2.survivors.size(), 10000u);

  const SpreadResult hop3 = SpreadOverBuckets(hop2.survivors, 0x30000, 8);
  ExpectUniformSpread(hop3, "hop3 (core, doubly conditional)");
}

// Different salts really give different selections (the per-switch salting
// is what de-correlates consecutive hops in the first place).
TEST(EcmpHashTest, SaltsDecorrelateSelections) {
  FlowKeyHash hasher;
  std::size_t differ = 0;
  for (std::uint16_t sport = 0; sport < 1000; ++sport) {
    const std::uint64_t h = hasher(FlowKey{1, 2, sport, 80});
    if (SwitchNode::EcmpBucket(h, 0x10000, 8) !=
        SwitchNode::EcmpBucket(h, 0x20000, 8)) {
      ++differ;
    }
  }
  // Independent uniform picks differ 7/8 of the time; correlated ones don't.
  EXPECT_GT(differ, 700u);
}

TEST(PacketTest, MarkCeRequiresEcnCapability) {
  Packet pkt;
  pkt.ecn = EcnCodepoint::kNotEct;
  pkt.MarkCe();
  EXPECT_FALSE(pkt.IsCeMarked());
  pkt.ecn = EcnCodepoint::kEct0;
  pkt.MarkCe();
  EXPECT_TRUE(pkt.IsCeMarked());
}

TEST(PacketTest, FlowKeyReversal) {
  const FlowKey k{10, 20, 1111, 80};
  const FlowKey r = k.Reversed();
  EXPECT_EQ(r.src, 20u);
  EXPECT_EQ(r.dst, 10u);
  EXPECT_EQ(r.src_port, 80);
  EXPECT_EQ(r.dst_port, 1111);
  EXPECT_EQ(r.Reversed(), k);
}


// --- Mid-serialization reconfiguration semantics (dynamics contract) -----
//
// SetRate applies from the next serialization on: the packet on the
// transmitter finishes its remaining bits at the old rate. LinkDown lets
// that committed packet complete and arrive; only queued (and later
// arriving) packets are affected. Pinned here in the default burst-drain
// mode and re-checked byte-identically in the legacy per-packet mode.

// Runs the SetRate-mid-serialization scenario and returns the two arrival
// times. 1500 B at 10 Gb/s serializes in 1.2 us; the rate change lands at
// 0.5 us, mid-way through packet one.
std::pair<Time, Time> RunMidSerializationRateChange() {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::Microseconds(5), BigFifo());
  port.ConnectTo(sink);
  port.Enqueue(MakePacket(0, 1, 1500));
  port.Enqueue(MakePacket(0, 1, 1500));
  sim.ScheduleAt(Time::Nanoseconds(500),
                 [&port] { port.SetRate(DataRate::GigabitsPerSecond(1)); });
  sim.Run();
  EXPECT_EQ(sink.count(), 2u);
  return {sink.arrival(0), sink.arrival(1)};
}

TEST(EgressPortDynamicsTest, SetRateMidSerializationKeepsOldRateForCurrent) {
  const auto [first, second] = RunMidSerializationRateChange();
  // Packet one: full 1.2 us at 10 Gb/s (unaffected by the 0.5 us change),
  // +5 us propagation. Packet two: starts at 1.2 us, serializes 12 us at
  // the new 1 Gb/s rate, arrives at 18.2 us.
  EXPECT_EQ(first, Time::Nanoseconds(6200));
  EXPECT_EQ(second, Time::Nanoseconds(1200 + 12000 + 5000));
}

TEST(EgressPortDynamicsTest, SetRateSemanticsIdenticalInLegacyEventMode) {
  const auto burst = RunMidSerializationRateChange();
  LegacyPerPacketEvents() = true;
  const auto legacy = RunMidSerializationRateChange();
  LegacyPerPacketEvents() = false;
  EXPECT_EQ(burst.first, legacy.first);
  EXPECT_EQ(burst.second, legacy.second);
}

// LinkDown at 0.5 us, mid-way through packet one's serialization, with two
// more packets queued. Returns (arrivals, dropped_link_down, purged).
struct LinkDownOutcome {
  std::vector<Time> arrivals;
  std::uint64_t dropped_link_down;
  std::uint64_t purged;
};

LinkDownOutcome RunMidSerializationLinkDown(bool drop_queued, bool link_up_at_10us) {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::Microseconds(5), BigFifo());
  port.ConnectTo(sink);
  for (int i = 0; i < 3; ++i) port.Enqueue(MakePacket(0, 1, 1500));
  sim.ScheduleAt(Time::Nanoseconds(500),
                 [&port, drop_queued] { port.LinkDown(drop_queued); });
  // A packet arriving while the link is down is dropped (no carrier).
  sim.ScheduleAt(Time::Microseconds(2),
                 [&port] { port.Enqueue(MakePacket(0, 1, 1500)); });
  if (link_up_at_10us) {
    sim.ScheduleAt(Time::Microseconds(10), [&port] { port.LinkUp(); });
  }
  sim.Run();
  LinkDownOutcome outcome;
  for (std::size_t i = 0; i < sink.count(); ++i) {
    outcome.arrivals.push_back(sink.arrival(i));
  }
  outcome.dropped_link_down = port.counters().dropped_link_down;
  outcome.purged = port.queue_disc().stats().purged;
  return outcome;
}

TEST(EgressPortDynamicsTest, LinkDownMidSerializationCommittedPacketArrives) {
  const LinkDownOutcome outcome =
      RunMidSerializationLinkDown(/*drop_queued=*/false,
                                  /*link_up_at_10us=*/true);
  // Packet one was committed to the wire: finishes at 1.2 us (old rate) and
  // arrives at 6.2 us despite the 0.5 us LinkDown. The 2 us arrival is
  // dropped; the two queued survivors drain after the 10 us LinkUp,
  // back-to-back at 1.2 us pitch.
  ASSERT_EQ(outcome.arrivals.size(), 3u);
  EXPECT_EQ(outcome.arrivals[0], Time::Nanoseconds(6200));
  EXPECT_EQ(outcome.arrivals[1], Time::Nanoseconds(10000 + 1200 + 5000));
  EXPECT_EQ(outcome.arrivals[2], Time::Nanoseconds(10000 + 2400 + 5000));
  EXPECT_EQ(outcome.dropped_link_down, 1u);
  EXPECT_EQ(outcome.purged, 0u);
}

TEST(EgressPortDynamicsTest, LinkDownDropQueuedPurgesBacklogNotWire) {
  const LinkDownOutcome outcome =
      RunMidSerializationLinkDown(/*drop_queued=*/true,
                                  /*link_up_at_10us=*/true);
  // Only the committed packet arrives; the two queued packets are purged
  // (not counted as link-down drops), and the 2 us arrival is dropped.
  ASSERT_EQ(outcome.arrivals.size(), 1u);
  EXPECT_EQ(outcome.arrivals[0], Time::Nanoseconds(6200));
  EXPECT_EQ(outcome.dropped_link_down, 1u);
  EXPECT_EQ(outcome.purged, 2u);
}

TEST(EgressPortDynamicsTest, LinkDownSemanticsIdenticalInLegacyEventMode) {
  for (const bool drop_queued : {false, true}) {
    const LinkDownOutcome burst =
        RunMidSerializationLinkDown(drop_queued, /*link_up_at_10us=*/true);
    LegacyPerPacketEvents() = true;
    const LinkDownOutcome legacy =
        RunMidSerializationLinkDown(drop_queued, /*link_up_at_10us=*/true);
    LegacyPerPacketEvents() = false;
    EXPECT_EQ(burst.arrivals, legacy.arrivals);
    EXPECT_EQ(burst.dropped_link_down, legacy.dropped_link_down);
    EXPECT_EQ(burst.purged, legacy.purged);
  }
}

}  // namespace
}  // namespace ecnsharp
