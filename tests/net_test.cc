// Link/port/switch behaviour: serialization timing, propagation, FIFO
// draining, overflow drops, ECMP routing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/delay_line.h"
#include "net/egress_port.h"
#include "net/host.h"
#include "net/switch_node.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"

namespace ecnsharp {
namespace {

std::unique_ptr<Packet> MakePacket(std::uint32_t src, std::uint32_t dst,
                                   std::uint32_t bytes,
                                   std::uint16_t sport = 1) {
  auto pkt = std::make_unique<Packet>();
  pkt->flow = FlowKey{src, dst, sport, 80};
  pkt->size_bytes = bytes;
  return pkt;
}

// Collects delivered packets with their arrival times.
class CollectorSink : public PacketSink {
 public:
  explicit CollectorSink(Simulator& sim) : sim_(sim) {}
  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    arrivals_.emplace_back(sim_.Now(), std::move(pkt));
  }
  std::size_t count() const { return arrivals_.size(); }
  Time arrival(std::size_t i) const { return arrivals_.at(i).first; }
  const Packet& packet(std::size_t i) const { return *arrivals_.at(i).second; }

 private:
  Simulator& sim_;
  std::vector<std::pair<Time, std::unique_ptr<Packet>>> arrivals_;
};

std::unique_ptr<FifoQueueDisc> BigFifo() {
  return std::make_unique<FifoQueueDisc>(1ull << 30, nullptr);
}

TEST(EgressPortTest, SinglePacketTiming) {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::Microseconds(5), BigFifo());
  port.ConnectTo(sink);
  port.Enqueue(MakePacket(0, 1, 1500));
  sim.Run();
  ASSERT_EQ(sink.count(), 1u);
  // 1.2 us serialization + 5 us propagation.
  EXPECT_EQ(sink.arrival(0), Time::Nanoseconds(6200));
}

TEST(EgressPortTest, BackToBackSerialization) {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  BigFifo());
  port.ConnectTo(sink);
  for (int i = 0; i < 3; ++i) port.Enqueue(MakePacket(0, 1, 1500));
  sim.Run();
  ASSERT_EQ(sink.count(), 3u);
  EXPECT_EQ(sink.arrival(0), Time::Nanoseconds(1200));
  EXPECT_EQ(sink.arrival(1), Time::Nanoseconds(2400));
  EXPECT_EQ(sink.arrival(2), Time::Nanoseconds(3600));
  EXPECT_EQ(port.counters().tx_packets, 3u);
  EXPECT_EQ(port.counters().tx_bytes, 4500u);
}

TEST(EgressPortTest, PreservesFifoOrder) {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(1), Time::Zero(),
                  BigFifo());
  port.ConnectTo(sink);
  for (std::uint16_t i = 0; i < 10; ++i) {
    port.Enqueue(MakePacket(0, 1, 500, i));
  }
  sim.Run();
  ASSERT_EQ(sink.count(), 10u);
  for (std::uint16_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.packet(i).flow.src_port, i);
  }
}

TEST(EgressPortTest, IdlePortResumesAfterDrain) {
  Simulator sim;
  CollectorSink sink(sim);
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  BigFifo());
  port.ConnectTo(sink);
  port.Enqueue(MakePacket(0, 1, 1500));
  sim.Run();
  ASSERT_EQ(sink.count(), 1u);
  sim.ScheduleAt(Time::Microseconds(100),
                 [&port] { port.Enqueue(MakePacket(0, 1, 1500)); });
  sim.Run();
  ASSERT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.arrival(1), Time::Microseconds(100) + Time::Nanoseconds(1200));
}

TEST(FifoQueueDiscTest, OverflowDropsTail) {
  FifoQueueDisc disc(3000, nullptr);  // two 1500B packets fit
  EXPECT_TRUE(disc.Enqueue(MakePacket(0, 1, 1500), Time::Zero()));
  EXPECT_TRUE(disc.Enqueue(MakePacket(0, 1, 1500), Time::Zero()));
  EXPECT_FALSE(disc.Enqueue(MakePacket(0, 1, 1500), Time::Zero()));
  EXPECT_EQ(disc.stats().dropped_overflow, 1u);
  EXPECT_EQ(disc.Snapshot().packets, 2u);
  EXPECT_EQ(disc.Snapshot().bytes, 3000u);
}

TEST(FifoQueueDiscTest, DequeueEmptyReturnsNull) {
  FifoQueueDisc disc(3000, nullptr);
  EXPECT_EQ(disc.Dequeue(Time::Zero()), nullptr);
}

TEST(FifoQueueDiscTest, StampsEnqueueTime) {
  FifoQueueDisc disc(1 << 20, nullptr);
  disc.Enqueue(MakePacket(0, 1, 100), Time::Microseconds(7));
  auto out = disc.Dequeue(Time::Microseconds(11));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->enqueue_time, Time::Microseconds(7));
}

TEST(DelayLineTest, AddsFixedDelay) {
  Simulator sim;
  CollectorSink sink(sim);
  DelayLine line(sim, sink, Time::Microseconds(42));
  line.HandlePacket(MakePacket(0, 1, 100));
  sim.Run();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.arrival(0), Time::Microseconds(42));
}

TEST(HostTest, ExtraEgressDelayAppliesToSends) {
  Simulator sim;
  CollectorSink sink(sim);
  Host host(sim, 0);
  auto nic = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  nic->ConnectTo(sink);
  host.AttachNic(std::move(nic));
  host.set_extra_egress_delay(Time::Microseconds(30));
  host.SendPacket(MakePacket(0, 1, 1500));
  sim.Run();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.arrival(0),
            Time::Microseconds(30) + Time::Nanoseconds(1200));
}

TEST(SwitchTest, RoutesByDestination) {
  Simulator sim;
  SwitchNode sw(sim, "sw");
  CollectorSink sink_a(sim);
  CollectorSink sink_b(sim);
  auto port_a = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_a->ConnectTo(sink_a);
  auto port_b = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_b->ConnectTo(sink_b);
  sw.AddRoute(1, sw.AddPort(std::move(port_a)));
  sw.AddRoute(2, sw.AddPort(std::move(port_b)));

  sw.HandlePacket(MakePacket(0, 1, 100));
  sw.HandlePacket(MakePacket(0, 2, 100));
  sw.HandlePacket(MakePacket(0, 2, 100));
  sim.Run();
  EXPECT_EQ(sink_a.count(), 1u);
  EXPECT_EQ(sink_b.count(), 2u);
  EXPECT_EQ(sw.rx_packets(), 3u);
}

TEST(SwitchTest, DropsWithoutRoute) {
  Simulator sim;
  SwitchNode sw(sim, "sw");
  sw.HandlePacket(MakePacket(0, 99, 100));
  EXPECT_EQ(sw.no_route_drops(), 1u);
}

TEST(SwitchTest, EcmpIsPerFlowStable) {
  Simulator sim;
  SwitchNode sw(sim, "sw", /*ecmp_salt=*/7);
  CollectorSink sink_a(sim);
  CollectorSink sink_b(sim);
  auto port_a = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_a->ConnectTo(sink_a);
  auto port_b = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_b->ConnectTo(sink_b);
  EgressPort& pa = sw.AddPort(std::move(port_a));
  EgressPort& pb = sw.AddPort(std::move(port_b));
  sw.AddRoute(5, pa);
  sw.AddRoute(5, pb);

  // Same flow always takes the same port.
  for (int i = 0; i < 20; ++i) sw.HandlePacket(MakePacket(1, 5, 100, 33));
  sim.Run();
  EXPECT_TRUE(sink_a.count() == 20 || sink_b.count() == 20);
}

TEST(SwitchTest, EcmpSpreadsFlows) {
  Simulator sim;
  SwitchNode sw(sim, "sw", /*ecmp_salt=*/7);
  CollectorSink sink_a(sim);
  CollectorSink sink_b(sim);
  auto port_a = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_a->ConnectTo(sink_a);
  auto port_b = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Zero(), BigFifo());
  port_b->ConnectTo(sink_b);
  EgressPort& pa = sw.AddPort(std::move(port_a));
  EgressPort& pb = sw.AddPort(std::move(port_b));
  sw.AddRoute(5, pa);
  sw.AddRoute(5, pb);

  for (std::uint16_t sport = 0; sport < 200; ++sport) {
    sw.HandlePacket(MakePacket(1, 5, 100, sport));
  }
  sim.Run();
  // Both uplinks must carry a substantial share of the 200 flows.
  EXPECT_GT(sink_a.count(), 50u);
  EXPECT_GT(sink_b.count(), 50u);
}

TEST(PacketTest, MarkCeRequiresEcnCapability) {
  Packet pkt;
  pkt.ecn = EcnCodepoint::kNotEct;
  pkt.MarkCe();
  EXPECT_FALSE(pkt.IsCeMarked());
  pkt.ecn = EcnCodepoint::kEct0;
  pkt.MarkCe();
  EXPECT_TRUE(pkt.IsCeMarked());
}

TEST(PacketTest, FlowKeyReversal) {
  const FlowKey k{10, 20, 1111, 80};
  const FlowKey r = k.Reversed();
  EXPECT_EQ(r.src, 20u);
  EXPECT_EQ(r.dst, 10u);
  EXPECT_EQ(r.src_port, 80);
  EXPECT_EQ(r.dst_port, 1111);
  EXPECT_EQ(r.Reversed(), k);
}

}  // namespace
}  // namespace ecnsharp
