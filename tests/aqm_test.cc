// Unit tests for the baseline AQM policies: DCTCP-RED, RED, CoDel, TCN.
#include <gtest/gtest.h>

#include <memory>

#include "aqm/codel.h"
#include "aqm/dctcp_red.h"
#include "aqm/red.h"
#include "aqm/tcn.h"
#include "core/equations.h"
#include "net/packet.h"
#include "sched/fifo_queue_disc.h"

namespace ecnsharp {
namespace {

Packet EctPacket(std::uint32_t bytes = 1500) {
  Packet pkt;
  pkt.size_bytes = bytes;
  pkt.ecn = EcnCodepoint::kEct0;
  return pkt;
}

// --------------------------- Equations (§2.1, §3.2) ------------------------

TEST(EquationsTest, IdealThresholdMatchesPaperExamples) {
  // K = lambda * C * RTT. At 10 Gbps with RTT 200 us and lambda 1:
  // 10e9 * 200e-6 / 8 = 250 KB — the paper's DCTCP-RED-Tail threshold.
  EXPECT_EQ(IdealMarkingThresholdBytes(1.0, DataRate::GigabitsPerSecond(10),
                                       Time::Microseconds(200)),
            250'000u);
  // DCTCP's theoretical lambda = 0.17.
  EXPECT_EQ(IdealMarkingThresholdBytes(0.17, DataRate::GigabitsPerSecond(10),
                                       Time::Microseconds(200)),
            42'500u);
}

TEST(EquationsTest, SojournThresholdIsCapacityIndependent) {
  // T = K / C = lambda * RTT (Equation 2).
  EXPECT_EQ(SojournMarkingThreshold(1.0, Time::Microseconds(200)),
            Time::Microseconds(200));
  EXPECT_EQ(SojournMarkingThreshold(0.5, Time::Microseconds(200)),
            Time::Microseconds(100));
}

// --------------------------- DCTCP-RED -------------------------------------

TEST(DctcpRedTest, MarksAboveThreshold) {
  DctcpRedAqm aqm(10'000);
  Packet pkt = EctPacket();
  QueueSnapshot q{10, 12'000};
  EXPECT_TRUE(aqm.AllowEnqueue(pkt, q, Time::Zero()));  // never drops
  EXPECT_TRUE(pkt.IsCeMarked());
}

TEST(DctcpRedTest, NoMarkBelowThreshold) {
  DctcpRedAqm aqm(10'000);
  Packet pkt = EctPacket();
  QueueSnapshot q{2, 3'000};
  aqm.AllowEnqueue(pkt, q, Time::Zero());
  EXPECT_FALSE(pkt.IsCeMarked());
}

TEST(DctcpRedTest, CutoffCountsArrivingPacket) {
  // Occupancy exactly at K - size: adding this packet crosses K => mark.
  DctcpRedAqm aqm(10'000);
  Packet pkt = EctPacket(1500);
  QueueSnapshot q{6, 9'000};
  aqm.AllowEnqueue(pkt, q, Time::Zero());
  EXPECT_TRUE(pkt.IsCeMarked());
}

TEST(DctcpRedTest, CannotMarkNonEctPacket) {
  DctcpRedAqm aqm(1'000);
  Packet pkt;
  pkt.size_bytes = 1500;
  pkt.ecn = EcnCodepoint::kNotEct;
  QueueSnapshot q{10, 50'000};
  aqm.AllowEnqueue(pkt, q, Time::Zero());
  EXPECT_FALSE(pkt.IsCeMarked());
}

// --------------------------- RED -------------------------------------------

TEST(RedTest, NeverMarksBelowMinThreshold) {
  RedConfig config;
  config.min_th_bytes = 30'000;
  config.max_th_bytes = 90'000;
  RedAqm aqm(config, 1);
  for (int i = 0; i < 1000; ++i) {
    Packet pkt = EctPacket();
    aqm.AllowEnqueue(pkt, QueueSnapshot{4, 6'000}, Time::Microseconds(i));
    EXPECT_FALSE(pkt.IsCeMarked());
  }
}

TEST(RedTest, AlwaysMarksAboveMaxThresholdOnceAverageCatchesUp) {
  RedConfig config;
  config.min_th_bytes = 10'000;
  config.max_th_bytes = 20'000;
  config.weight = 0.5;  // fast EWMA for the test
  RedAqm aqm(config, 1);
  // Drive the average well above max_th.
  for (int i = 0; i < 20; ++i) {
    Packet pkt = EctPacket();
    aqm.AllowEnqueue(pkt, QueueSnapshot{100, 150'000}, Time::Microseconds(i));
  }
  Packet pkt = EctPacket();
  aqm.AllowEnqueue(pkt, QueueSnapshot{100, 150'000}, Time::Microseconds(21));
  EXPECT_TRUE(pkt.IsCeMarked());
}

TEST(RedTest, MarkingProbabilityGrowsWithAverageQueue) {
  const auto mark_fraction = [](std::uint64_t queue_bytes) {
    RedConfig config;
    config.min_th_bytes = 30'000;
    config.max_th_bytes = 300'000;
    config.weight = 1.0;  // average == instantaneous for the test
    RedAqm aqm(config, 42);
    int marked = 0;
    for (int i = 0; i < 4000; ++i) {
      Packet pkt = EctPacket();
      aqm.AllowEnqueue(pkt, QueueSnapshot{10, queue_bytes},
                       Time::Microseconds(i));
      if (pkt.IsCeMarked()) ++marked;
    }
    return static_cast<double>(marked) / 4000.0;
  };
  const double low = mark_fraction(60'000);
  const double high = mark_fraction(250'000);
  EXPECT_LT(low, high);
  EXPECT_GT(high, 0.05);
}

TEST(RedTest, AverageDecaysWhileIdle) {
  RedConfig config;
  config.min_th_bytes = 10'000;
  config.max_th_bytes = 50'000;
  config.weight = 0.25;
  RedAqm aqm(config, 1);
  for (int i = 0; i < 50; ++i) {
    Packet pkt = EctPacket();
    aqm.AllowEnqueue(pkt, QueueSnapshot{40, 60'000}, Time::Microseconds(i));
  }
  const double before = aqm.average_queue_bytes();
  // A long-idle arrival must see a much smaller average.
  Packet pkt = EctPacket();
  aqm.AllowEnqueue(pkt, QueueSnapshot{0, 0}, Time::Milliseconds(50));
  EXPECT_LT(aqm.average_queue_bytes(), before / 4.0);
}

// --------------------------- CoDel -----------------------------------------

CodelConfig TestCodel() {
  CodelConfig config;
  config.target = Time::FromMicroseconds(10);
  config.interval = Time::FromMicroseconds(100);
  return config;
}

// Feeds a steady sequence of dequeues with constant sojourn time.
int CountCodelMarks(CodelAqm& aqm, Time sojourn, Time from, Time until,
                    Time gap, std::uint64_t queue_bytes = 100'000) {
  int marks = 0;
  for (Time t = from; t < until; t += gap) {
    Packet pkt = EctPacket();
    aqm.OnDequeue(pkt, QueueSnapshot{10, queue_bytes}, t, sojourn);
    if (pkt.IsCeMarked()) ++marks;
  }
  return marks;
}

TEST(CodelTest, NoMarkWhileBelowTarget) {
  CodelAqm aqm(TestCodel());
  const int marks =
      CountCodelMarks(aqm, Time::FromMicroseconds(5), Time::Zero(),
                      Time::Milliseconds(5), Time::FromMicroseconds(10));
  EXPECT_EQ(marks, 0);
  EXPECT_FALSE(aqm.dropping_state());
}

TEST(CodelTest, NoMarkUntilIntervalElapses) {
  CodelAqm aqm(TestCodel());
  // Above target, but for less than one interval.
  const int marks =
      CountCodelMarks(aqm, Time::FromMicroseconds(50), Time::Zero(),
                      Time::FromMicroseconds(90), Time::FromMicroseconds(10));
  EXPECT_EQ(marks, 0);
}

TEST(CodelTest, EntersMarkingAfterInterval) {
  CodelAqm aqm(TestCodel());
  const int marks =
      CountCodelMarks(aqm, Time::FromMicroseconds(50), Time::Zero(),
                      Time::FromMicroseconds(200), Time::FromMicroseconds(10));
  EXPECT_GE(marks, 1);
  EXPECT_TRUE(aqm.dropping_state());
}

TEST(CodelTest, MarkingRateAcceleratesWhileAboveTarget) {
  CodelAqm aqm(TestCodel());
  const int first_half = CountCodelMarks(
      aqm, Time::FromMicroseconds(50), Time::Zero(), Time::Milliseconds(2),
      Time::FromMicroseconds(5));
  const int second_half = CountCodelMarks(
      aqm, Time::FromMicroseconds(50), Time::Milliseconds(2),
      Time::Milliseconds(4), Time::FromMicroseconds(5));
  // The control law shortens the marking interval as sqrt(count) grows.
  EXPECT_GT(second_half, first_half);
}

TEST(CodelTest, ExitsMarkingWhenQueueDrains) {
  CodelAqm aqm(TestCodel());
  CountCodelMarks(aqm, Time::FromMicroseconds(50), Time::Zero(),
                  Time::Milliseconds(1), Time::FromMicroseconds(10));
  ASSERT_TRUE(aqm.dropping_state());
  Packet pkt = EctPacket();
  aqm.OnDequeue(pkt, QueueSnapshot{1, 1000}, Time::Milliseconds(1),
                Time::FromMicroseconds(2));
  EXPECT_FALSE(aqm.dropping_state());
  EXPECT_FALSE(pkt.IsCeMarked());
}

TEST(CodelTest, SmallQueueResetsStandingClock) {
  // Even with sojourn above target, a queue of <= 1 MTU means no standing
  // queue worth marking (reference CoDel behaviour).
  CodelAqm aqm(TestCodel());
  const int marks = CountCodelMarks(aqm, Time::FromMicroseconds(50),
                                    Time::Zero(), Time::Milliseconds(2),
                                    Time::FromMicroseconds(10),
                                    /*queue_bytes=*/1000);
  EXPECT_EQ(marks, 0);
}

// --------------------------- TCN -------------------------------------------

TEST(TcnTest, MarksOnInstantaneousSojourn) {
  TcnAqm aqm(Time::FromMicroseconds(150));
  Packet over = EctPacket();
  aqm.OnDequeue(over, QueueSnapshot{}, Time::Zero(),
                Time::FromMicroseconds(151));
  EXPECT_TRUE(over.IsCeMarked());

  Packet under = EctPacket();
  aqm.OnDequeue(under, QueueSnapshot{}, Time::Zero(),
                Time::FromMicroseconds(149));
  EXPECT_FALSE(under.IsCeMarked());
}

TEST(TcnTest, NoMemoryBetweenPackets) {
  // Unlike CoDel/ECN#, TCN is stateless: a long streak above threshold does
  // not change behaviour for a later below-threshold packet.
  TcnAqm aqm(Time::FromMicroseconds(100));
  for (int i = 0; i < 100; ++i) {
    Packet pkt = EctPacket();
    aqm.OnDequeue(pkt, QueueSnapshot{}, Time::Microseconds(i),
                  Time::FromMicroseconds(500));
    EXPECT_TRUE(pkt.IsCeMarked());
  }
  Packet pkt = EctPacket();
  aqm.OnDequeue(pkt, QueueSnapshot{}, Time::Microseconds(101),
                Time::FromMicroseconds(50));
  EXPECT_FALSE(pkt.IsCeMarked());
}

// --------------------------- queue-disc + AQM integration ------------------

TEST(FifoAqmTest, MarkCountingTracksCeTransitions) {
  auto disc = FifoQueueDisc(1ull << 20,
                            std::make_unique<DctcpRedAqm>(2'000));
  for (int i = 0; i < 5; ++i) {
    auto pkt = std::make_unique<Packet>(EctPacket());
    disc.Enqueue(std::move(pkt), Time::Microseconds(i));
  }
  // First packet enqueued below threshold, rest above.
  EXPECT_EQ(disc.stats().ce_marked, 4u);
}

}  // namespace
}  // namespace ecnsharp
