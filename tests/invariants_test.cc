// System-wide invariant ("chaos") tests: random small topologies and
// workloads must preserve conservation properties regardless of scheme,
// seed, or load:
//   * every started flow completes (with finite buffers, via retransmission)
//   * per-queue accounting balances: enqueued = dequeued + still queued
//   * switch rx = sum of its ports' enqueue attempts
//   * delivered bytes per flow equal the flow size exactly
// Plus packet-tracer coverage.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "harness/experiment.h"
#include "net/packet_tracer.h"
#include "sched/fifo_queue_disc.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "topo/dumbbell.h"
#include "workload/empirical_cdf.h"

namespace ecnsharp {
namespace {

struct ChaosParam {
  std::uint64_t seed;
  Scheme scheme;
  double load;
  std::size_t senders;
  std::uint64_t buffer_bytes;  // small buffers force loss-recovery paths
};

class ChaosTest : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ChaosTest, ConservationInvariants) {
  const ChaosParam param = GetParam();
  Simulator sim;
  DumbbellConfig topo_config;
  topo_config.senders = param.senders;
  SchemeParams params = SimulationSchemeParams();
  params.buffer_bytes = param.buffer_bytes;
  topo_config.buffer_bytes = param.buffer_bytes;
  Dumbbell topo(sim, topo_config, MakeFifoDisc(param.scheme, params));

  Rng rng(param.seed);
  const std::uint32_t receiver = topo.receiver_address();
  std::size_t completed = 0;
  std::uint64_t bytes_requested = 0;
  constexpr std::size_t kFlows = 60;
  Time at = Time::Zero();
  for (std::size_t i = 0; i < kFlows; ++i) {
    at += Time::FromMicroseconds(rng.Exponential(300.0 / param.load));
    const auto size = static_cast<std::uint64_t>(
        std::max(1.0, WebSearchWorkload().Sample(rng) *
                          0.1));  // scaled down for runtime
    bytes_requested += size;
    const std::size_t sender = rng.UniformInt(param.senders);
    sim.ScheduleAt(at, [&topo, &completed, sender, receiver, size] {
      topo.sender_stack(sender).StartFlow(
          receiver, size,
          [&completed, size](const FlowRecord& record) {
            ++completed;
            EXPECT_EQ(record.size_bytes, size);
            EXPECT_GT(record.Fct(), Time::Zero());
          });
    });
  }
  sim.RunUntil(Time::Seconds(60));

  // Every flow finished despite drops/timeouts.
  EXPECT_EQ(completed, kFlows);

  // Queue accounting balances on the bottleneck.
  const QueueDiscStats& stats = topo.bottleneck_port().queue_disc().stats();
  const QueueSnapshot queued = topo.bottleneck_port().queue_disc().Snapshot();
  EXPECT_EQ(stats.enqueued, stats.dequeued + queued.packets);

  // The port transmitted exactly what it dequeued.
  EXPECT_EQ(topo.bottleneck_port().counters().tx_packets, stats.dequeued);
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedRuns, ChaosTest,
    ::testing::Values(
        ChaosParam{11, Scheme::kEcnSharp, 0.5, 4, 600ull * 1500},
        ChaosParam{12, Scheme::kDctcpRedTail, 0.8, 7, 600ull * 1500},
        ChaosParam{13, Scheme::kCodel, 0.7, 5, 120ull * 1500},
        ChaosParam{14, Scheme::kDropTail, 0.9, 7, 60ull * 1500},
        ChaosParam{15, Scheme::kTcn, 0.6, 3, 40ull * 1500},
        ChaosParam{16, Scheme::kEcnSharpTofino, 0.7, 6, 600ull * 1500},
        ChaosParam{17, Scheme::kEcnSharpPstOnly, 0.8, 6, 200ull * 1500}),
    [](const ::testing::TestParamInfo<ChaosParam>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(TracerTest, RecordsTransmissions) {
  Simulator sim;
  TextTracer tracer;
  struct Sink : PacketSink {
    void HandlePacket(std::unique_ptr<Packet>) override {}
  } sink;
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  std::make_unique<FifoQueueDisc>(1 << 20, nullptr));
  port.ConnectTo(sink);
  port.SetTracer(&tracer);

  auto pkt = std::make_unique<Packet>();
  pkt->flow = FlowKey{3, 4, 55, 80};
  pkt->size_bytes = 1500;
  pkt->seq = 1460;
  pkt->ecn = EcnCodepoint::kCe;
  pkt->psh = true;
  port.Enqueue(std::move(pkt));
  sim.Run();

  ASSERT_EQ(tracer.lines().size(), 1u);
  const std::string& line = tracer.lines()[0];
  EXPECT_NE(line.find("TX DATA 3:55->4:80"), std::string::npos);
  EXPECT_NE(line.find("seq=1460"), std::string::npos);
  EXPECT_NE(line.find("len=1500"), std::string::npos);
  EXPECT_NE(line.find(" CE"), std::string::npos);
  EXPECT_NE(line.find(" PSH"), std::string::npos);
}

TEST(TracerTest, BoundsMemory) {
  TextTracer tracer(/*max_lines=*/3);
  Packet pkt;
  pkt.size_bytes = 100;
  for (int i = 0; i < 10; ++i) tracer.OnTransmit(pkt, Time::Microseconds(i));
  EXPECT_EQ(tracer.lines().size(), 3u);
  EXPECT_EQ(tracer.suppressed(), 7u);
}

TEST(TracerTest, FormatsAckAndCnp) {
  Packet ack;
  ack.type = PacketType::kAck;
  ack.size_bytes = 60;
  ack.ece = true;
  EXPECT_NE(TextTracer::Format(ack, Time::Zero()).find("TX ACK"),
            std::string::npos);
  EXPECT_NE(TextTracer::Format(ack, Time::Zero()).find(" ECE"),
            std::string::npos);
  Packet cnp;
  cnp.type = PacketType::kCnp;
  cnp.size_bytes = 60;
  EXPECT_NE(TextTracer::Format(cnp, Time::Zero()).find("TX CNP"),
            std::string::npos);
}

}  // namespace
}  // namespace ecnsharp
