// Focused edge-case coverage across modules: scheduler quanta, simulator
// determinism under load, leaf-spine routing, Tofino clock wrap limits,
// host-path reordering, and DCQCN multiplexing.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "harness/experiment.h"
#include "hostpath/rtt_probe.h"
#include "sched/dwrr_queue_disc.h"
#include "sched/fifo_queue_disc.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "tofino/ecn_sharp_pipeline.h"
#include "topo/composed.h"
#include "topo/leaf_spine.h"
#include "topo/rtt_variation.h"
#include "transport/dcqcn.h"

namespace ecnsharp {
namespace {

// --------------------------- DWRR quanta ------------------------------------

std::unique_ptr<Packet> SizedPacket(std::uint8_t cls, std::uint32_t bytes) {
  auto pkt = std::make_unique<Packet>();
  pkt->traffic_class = cls;
  pkt->size_bytes = bytes;
  return pkt;
}

TEST(DwrrEdgeTest, QuantumSmallerThanPacketStillServes) {
  // Quantum 100B << 1500B packets: a class must accumulate deficit over
  // rounds but service must not stall.
  std::vector<DwrrQueueDisc::ClassConfig> classes;
  classes.push_back({1, nullptr});
  classes.push_back({1, nullptr});
  DwrrQueueDisc disc(1ull << 20, std::move(classes), nullptr,
                     /*quantum_bytes=*/100);
  for (int i = 0; i < 4; ++i) {
    disc.Enqueue(SizedPacket(0, 1500), Time::Zero());
    disc.Enqueue(SizedPacket(1, 1500), Time::Zero());
  }
  int served = 0;
  while (disc.Dequeue(Time::Zero()) != nullptr) ++served;
  EXPECT_EQ(served, 8);
}

TEST(DwrrEdgeTest, MixedPacketSizesConserveAllPackets) {
  Rng rng(3);
  std::vector<DwrrQueueDisc::ClassConfig> classes;
  for (int i = 0; i < 3; ++i) classes.push_back({1u + i, nullptr});
  DwrrQueueDisc disc(1ull << 24, std::move(classes));
  int enqueued = 0;
  for (int i = 0; i < 500; ++i) {
    const auto cls = static_cast<std::uint8_t>(rng.UniformInt(3));
    const auto bytes = static_cast<std::uint32_t>(60 + rng.UniformInt(1441));
    if (disc.Enqueue(SizedPacket(cls, bytes), Time::Zero())) ++enqueued;
  }
  int dequeued = 0;
  while (disc.Dequeue(Time::Zero()) != nullptr) ++dequeued;
  EXPECT_EQ(dequeued, enqueued);
  EXPECT_EQ(disc.Snapshot().packets, 0u);
  EXPECT_EQ(disc.Snapshot().bytes, 0u);
}

// --------------------------- simulator determinism --------------------------

TEST(SimulatorDeterminismTest, IdenticalRunsProduceIdenticalSchedules) {
  const auto run_hash = [] {
    Simulator sim;
    Rng rng(99);
    std::uint64_t hash = 1469598103934665603ull;
    // Random self-rescheduling events.
    std::function<void(int)> tick = [&](int depth) {
      hash ^= static_cast<std::uint64_t>(sim.Now().ns());
      hash *= 1099511628211ull;
      if (depth > 0) {
        sim.Schedule(Time::Nanoseconds(
                         static_cast<std::int64_t>(rng.Uniform(1, 1000))),
                     [&tick, depth] { tick(depth - 1); });
      }
    };
    for (int i = 0; i < 50; ++i) tick(20);
    sim.Run();
    return hash;
  };
  EXPECT_EQ(run_hash(), run_hash());
}

TEST(SimulatorDeterminismTest, HighVolumeEventOrdering) {
  Simulator sim;
  Rng rng(5);
  Time last = Time::Zero();
  std::size_t executed = 0;
  for (int i = 0; i < 100'000; ++i) {
    sim.Schedule(
        Time::Nanoseconds(static_cast<std::int64_t>(rng.Uniform(0, 1e6))),
        [&sim, &last, &executed] {
          EXPECT_GE(sim.Now(), last);  // monotone execution
          last = sim.Now();
          ++executed;
        });
  }
  sim.Run();
  EXPECT_EQ(executed, 100'000u);
}

// --------------------------- leaf-spine routing -----------------------------

TEST(LeafSpineRoutingTest, NoPacketIsEverUnroutable) {
  Simulator sim;
  LeafSpineConfig config;
  config.spines = 2;
  config.leaves = 3;
  config.hosts_per_leaf = 2;
  LeafSpine topo(sim, config, [] {
    return std::make_unique<FifoQueueDisc>(1ull << 24, nullptr);
  });
  // Every ordered pair exchanges one small flow.
  int done = 0;
  int flows = 0;
  for (std::size_t src = 0; src < topo.host_count(); ++src) {
    for (std::size_t dst = 0; dst < topo.host_count(); ++dst) {
      if (src == dst) continue;
      ++flows;
      topo.stack(src).StartFlow(static_cast<std::uint32_t>(dst), 5000,
                                [&done](const FlowRecord&) { ++done; });
    }
  }
  sim.RunUntil(Time::Seconds(5));
  EXPECT_EQ(done, flows);
  for (std::size_t l = 0; l < topo.leaf_count(); ++l) {
    EXPECT_EQ(topo.leaf(l).no_route_drops(), 0u);
  }
  for (std::size_t s = 0; s < topo.spine_count(); ++s) {
    EXPECT_EQ(topo.spine(s).no_route_drops(), 0u);
  }
}

TEST(LeafSpineRoutingTest, IntraRackTrafficStaysOffTheSpine) {
  Simulator sim;
  LeafSpineConfig config;
  config.spines = 2;
  config.leaves = 2;
  config.hosts_per_leaf = 2;
  LeafSpine topo(sim, config, [] {
    return std::make_unique<FifoQueueDisc>(1ull << 24, nullptr);
  });
  bool done = false;
  topo.stack(0).StartFlow(1, 100'000, [&done](const FlowRecord&) {
    done = true;
  });  // host 0 -> host 1, same leaf
  sim.RunUntil(Time::Seconds(2));
  ASSERT_TRUE(done);
  for (std::size_t s = 0; s < topo.spine_count(); ++s) {
    EXPECT_EQ(topo.spine(s).rx_packets(), 0u);
  }
}

// --------------------------- Tofino clock bounds ----------------------------

TEST(TofinoClockTest, EmulatedClockWrapsAtDocumentedHorizon) {
  // The emulated 32-bit tick clock wraps every 2^32 * 1.024 us ~ 73.4 min
  // (§4.1: "more than 1 hour"). Verify the wrap point matches the
  // documented value rather than the raw timestamp's ~4.29 s.
  const std::uint64_t horizon_ns = (1ull << 32) << kTickShift;
  EXPECT_NEAR(static_cast<double>(horizon_ns) * 1e-9, 4398.0, 1.0);
  TimeEmulator emu;
  // Two reads a tick apart across the horizon still produce consecutive
  // 32-bit values (modulo wrap).
  PassContext p1;
  const std::uint32_t before =
      emu.CurrentTimeTicks(horizon_ns - kTickNs, p1);
  PassContext p2;
  const std::uint32_t after = emu.CurrentTimeTicks(horizon_ns, p2);
  EXPECT_EQ(static_cast<std::uint32_t>(before + 1), after);
}

TEST(TofinoClockTest, PipelineKeepsMarkingAcrossLongRuns) {
  // Sanity at multi-minute uptimes (well past several low-32-bit wraps of
  // the raw timestamp): instantaneous marking still fires.
  TofinoPipelineConfig config;
  config.num_ports = 1;
  EcnSharpPipeline pipe(config);
  const std::uint64_t minutes30 = 30ull * 60 * 1'000'000'000;
  EXPECT_TRUE(pipe.ProcessDequeue(0, minutes30 - 400'000, minutes30));
  EXPECT_FALSE(
      pipe.ProcessDequeue(0, minutes30 + 1'000'000 - 5'000,
                          minutes30 + 1'000'000));
}

// --------------------------- host-path probe --------------------------------

TEST(HostPathEdgeTest, CustomChainsCompose) {
  // A user-defined case with a single deterministic-ish stage produces RTTs
  // tightly around twice the stage mean plus the wire time.
  RttCaseSpec spec;
  spec.name = "custom";
  spec.request_stages = {{"fixed", 10.0, 0.7}};
  spec.response_stages = {{"fixed", 10.0, 0.7}};
  const RttStats stats = RunRttProbe(spec, 400, 1);
  EXPECT_NEAR(stats.mean_us, 20.0, 2.5);
  EXPECT_LT(stats.std_us, 2.0);
}

TEST(HostPathEdgeTest, EmptyChainsMeasureWireRtt) {
  RttCaseSpec spec;
  spec.name = "wire";
  const RttStats stats = RunRttProbe(spec, 100, 1);
  // 100G links, 200ns propagation x4 + tiny serialization: ~1us.
  EXPECT_LT(stats.mean_us, 3.0);
  EXPECT_GT(stats.mean_us, 0.5);
}

// --------------------------- DCQCN multiplexing -----------------------------

TEST(DcqcnEdgeTest, ManyFlowsPerStackCompleteIndependently) {
  Simulator sim;
  Host a(sim, 0);
  Host b(sim, 1);
  auto nic_a = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Microseconds(2),
      std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
  auto nic_b = std::make_unique<EgressPort>(
      sim, DataRate::GigabitsPerSecond(10), Time::Microseconds(2),
      std::make_unique<FifoQueueDisc>(1ull << 26, nullptr));
  nic_a->ConnectTo(b);
  nic_b->ConnectTo(a);
  a.AttachNic(std::move(nic_a));
  b.AttachNic(std::move(nic_b));
  DcqcnConfig config;
  DcqcnStack stack_a(a, config);
  DcqcnStack stack_b(b, config);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    stack_a.StartFlow(1, 50'000 + i * 1000,
                      [&done](const FlowRecord&) { ++done; });
  }
  sim.RunUntil(Time::Seconds(2));
  EXPECT_EQ(done, 10);
}

// ------------------- Degenerate configs fail fast (exit 2) ------------------
//
// These used to be UB or silent nonsense: LeafSpine::IncastSender divided by
// hosts_.size()-1 and SampleFlowPair called UniformInt(n-1), both degenerate
// on 1-host fabrics; Dumbbell's senders>=1 check was an assert() compiled
// out of release builds; a stale scenario target id was silently skipped at
// fire time. All now exit 2 (the CLI's config-error code) with a diagnostic.

TEST(ConfigValidationDeathTest, OneHostLeafSpineSampleFlowPairExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        LeafSpineConfig config;
        config.spines = 1;
        config.leaves = 1;
        config.hosts_per_leaf = 1;
        LeafSpine topo(sim, config, [] {
          return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
        });
        Rng rng(1);
        topo.SampleFlowPair(rng);
      },
      testing::ExitedWithCode(2), "needs >= 2 hosts");
}

TEST(ConfigValidationDeathTest, OneHostLeafSpineIncastSenderExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        LeafSpineConfig config;
        config.spines = 1;
        config.leaves = 1;
        config.hosts_per_leaf = 1;
        LeafSpine topo(sim, config, [] {
          return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
        });
        topo.IncastSender(0);
      },
      testing::ExitedWithCode(2), "incast needs >= 2 hosts");
}

TEST(ConfigValidationDeathTest, ZeroDimensionLeafSpineExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        LeafSpineConfig config;
        config.leaves = 0;
        LeafSpine topo(sim, config, [] {
          return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
        });
      },
      testing::ExitedWithCode(2), "dimensions must all be >= 1");
}

TEST(ConfigValidationDeathTest, ZeroSenderDumbbellExits) {
  EXPECT_EXIT(
      {
        DumbbellExperimentConfig config;
        config.senders = 0;
        RunDumbbell(config);
      },
      testing::ExitedWithCode(2), "needs >= 1 sender");
}

TEST(ConfigValidationDeathTest, OddFatTreeArityExits) {
  EXPECT_EXIT(
      {
        FatTreeExperimentConfig config;
        config.topo.k = 5;
        RunFatTree(config);
      },
      testing::ExitedWithCode(2), "must be even and >= 4");
}

TEST(ConfigValidationDeathTest, TooSmallFatTreeArityExits) {
  EXPECT_EXIT(
      {
        FatTreeExperimentConfig config;
        config.topo.k = 2;
        RunFatTree(config);
      },
      testing::ExitedWithCode(2), "must be even and >= 4");
}

// Satellite regression: a scenario written against a larger fabric (its
// target id is one past this fabric's last switch port) must fail at Bind
// time with a diagnostic naming the target and the valid range — not be
// silently skipped when it fires.
TEST(ConfigValidationDeathTest, StaleScenarioPortTargetExitsWithRange) {
  EXPECT_EXIT(
      {
        FatTreeExperimentConfig config;
        config.topo.k = 4;  // 16 hosts + 80 switch ports: max target 95
        config.flows = 5;
        ScenarioAction down;
        down.kind = ScenarioActionKind::kLinkDown;
        down.at = Time::Milliseconds(1);
        down.target = 96;  // stale: valid on k=6, one past the end on k=4
        config.scenario.actions.push_back(down);
        RunFatTree(config);
      },
      testing::ExitedWithCode(2), "target 96 does not resolve.*16\\.\\.95");
}

// Composed inter-DC fabrics: degenerate border spans and colliding target-id
// spaces must die at build time with the valid range, not mis-route or wrap.

ComposedConfig TinyComposed() {
  ComposedConfig config;
  config.side_a.leaf_spine.spines = 1;
  config.side_a.leaf_spine.leaves = 1;
  config.side_a.leaf_spine.hosts_per_leaf = 2;
  config.side_b = config.side_a;
  return config;
}

std::unique_ptr<QueueDisc> TinyDisc() {
  return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
}

TEST(ConfigValidationDeathTest, ZeroBorderLinkComposedExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        ComposedConfig config = TinyComposed();
        config.border_links = 0;
        ComposedTopology topo(sim, config, TinyDisc);
      },
      testing::ExitedWithCode(2),
      "needs >= 1 border link, got border_links=0; valid range \\[1, inf\\)");
}

TEST(ConfigValidationDeathTest, ZeroBorderRateComposedExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        ComposedConfig config = TinyComposed();
        config.border_rate = DataRate::BitsPerSecond(0);
        ComposedTopology topo(sim, config, TinyDisc);
      },
      testing::ExitedWithCode(2), "border rate must be positive");
}

TEST(ConfigValidationDeathTest, BorderRttOverflowComposedExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        ComposedConfig config = TinyComposed();
        config.border_rtt = Time::Seconds(11);  // a unit mistake, not a WAN
        ComposedTopology topo(sim, config, TinyDisc);
      },
      testing::ExitedWithCode(2),
      "border RTT out of range.*valid range \\[0us, 10000000 us\\]");
}

TEST(ConfigValidationDeathTest, NegativeBorderRttComposedExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        ComposedConfig config = TinyComposed();
        config.border_rtt = Time::FromMicroseconds(-1);
        ComposedTopology topo(sim, config, TinyDisc);
      },
      testing::ExitedWithCode(2), "border RTT out of range");
}

TEST(ConfigValidationDeathTest, OverlappingComposedAddressRangesExit) {
  EXPECT_EXIT(
      {
        Simulator sim;
        ComposedConfig config = TinyComposed();
        config.auto_address = false;
        config.side_a.leaf_spine.base_address = 0;  // hosts [0, 1]
        config.side_b.leaf_spine.base_address = 1;  // hosts [1, 2]: collides
        ComposedTopology topo(sim, config, TinyDisc);
      },
      testing::ExitedWithCode(2),
      "overlapping host address ranges: side A \\[0, 1\\], side B \\[1, 2\\]");
}

TEST(ConfigValidationDeathTest, ComposedAddressOverflowExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        ComposedConfig config = TinyComposed();
        config.auto_address = false;
        config.side_b.leaf_spine.base_address = 0xFFFFFFFFu;  // 2 hosts wrap
        ComposedTopology topo(sim, config, TinyDisc);
      },
      testing::ExitedWithCode(2), "host address range overflows 32 bits");
}

TEST(ConfigValidationDeathTest, ComposedInterRttFractionOutOfRangeExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        ComposedConfig config = TinyComposed();
        config.inter_rtt_fraction = 1.5;
        ComposedTopology topo(sim, config, TinyDisc);
      },
      testing::ExitedWithCode(2),
      "inter_rtt_fraction out of range: got 1.5.*valid range \\[0, 1\\]");
}

TEST(ConfigValidationDeathTest, ComposedLegacyCtorWithBufferPolicyExits) {
  EXPECT_EXIT(
      {
        Simulator sim;
        ComposedConfig config = TinyComposed();
        config.buffer_policy.kind = BufferPolicyKind::kDynamicThreshold;
        ComposedTopology topo(sim, config, TinyDisc);
      },
      testing::ExitedWithCode(2),
      "buffer policy requires the pool-aware disc factory");
}

TEST(ConfigValidationDeathTest, InterFractionBelowZeroExits) {
  EXPECT_EXIT(
      {
        InterDcExperimentConfig config;
        config.topo = TinyComposed();
        config.inter_fraction = -0.1;
        RunInterDc(config);
      },
      testing::ExitedWithCode(2),
      "interdc inter_fraction out of range.*valid range \\[0, 1\\]");
}

TEST(ConfigValidationDeathTest, InterFractionAboveOneExits) {
  EXPECT_EXIT(
      {
        InterDcExperimentConfig config;
        config.topo = TinyComposed();
        config.inter_fraction = 1.5;
        RunInterDc(config);
      },
      testing::ExitedWithCode(2),
      "interdc inter_fraction out of range.*valid range \\[0, 1\\]");
}

TEST(ConfigValidationDeathTest, OutOfRangeHostDelayTargetExits) {
  EXPECT_EXIT(
      {
        LeafSpineExperimentConfig config;
        config.topo.spines = 2;
        config.topo.leaves = 2;
        config.topo.hosts_per_leaf = 2;
        config.flows = 5;
        ScenarioAction shift;
        shift.kind = ScenarioActionKind::kSetHostDelay;
        shift.at = Time::Milliseconds(1);
        shift.target = 4;  // hosts are 0..3
        shift.delay_us = 100.0;
        config.scenario.actions.push_back(shift);
        RunLeafSpine(config);
      },
      testing::ExitedWithCode(2), "host index 4 out of range");
}

}  // namespace
}  // namespace ecnsharp
