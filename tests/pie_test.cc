// PIE AQM tests: controller behaviour and marking statistics.
#include "aqm/pie.h"

#include <gtest/gtest.h>

namespace ecnsharp {
namespace {

Packet EctPacket() {
  Packet pkt;
  pkt.size_bytes = 1500;
  pkt.ecn = EcnCodepoint::kEct0;
  return pkt;
}

PieConfig TestConfig() {
  PieConfig config;
  config.target = Time::FromMicroseconds(20);
  config.update_interval = Time::FromMicroseconds(100);
  return config;
}

// Drives arrivals+departures with a constant sojourn time and returns the
// fraction of arrivals marked during [from, until).
double RunConstantDelay(PieAqm& aqm, Time sojourn, Time from, Time until,
                        Time gap) {
  int marks = 0;
  int arrivals = 0;
  for (Time t = from; t < until; t += gap) {
    Packet in = EctPacket();
    aqm.AllowEnqueue(in, QueueSnapshot{20, 30'000}, t);
    ++arrivals;
    if (in.IsCeMarked()) ++marks;
    Packet out = EctPacket();
    aqm.OnDequeue(out, QueueSnapshot{20, 30'000}, t, sojourn);
  }
  return static_cast<double>(marks) / arrivals;
}

TEST(PieTest, NoMarkingAtLowDelay) {
  PieAqm aqm(TestConfig(), 1);
  const double fraction = RunConstantDelay(
      aqm, Time::FromMicroseconds(5), Time::Zero(), Time::Milliseconds(20),
      Time::FromMicroseconds(5));
  EXPECT_DOUBLE_EQ(fraction, 0.0);
  EXPECT_DOUBLE_EQ(aqm.marking_probability(), 0.0);
}

TEST(PieTest, ProbabilityRampsUpUnderSustainedDelay) {
  PieAqm aqm(TestConfig(), 1);
  RunConstantDelay(aqm, Time::FromMicroseconds(200), Time::Zero(),
                   Time::Milliseconds(10), Time::FromMicroseconds(5));
  EXPECT_GT(aqm.marking_probability(), 0.05);
}

TEST(PieTest, ProbabilityDecaysWhenDelayDrops) {
  PieAqm aqm(TestConfig(), 1);
  RunConstantDelay(aqm, Time::FromMicroseconds(200), Time::Zero(),
                   Time::Milliseconds(10), Time::FromMicroseconds(5));
  const double high = aqm.marking_probability();
  RunConstantDelay(aqm, Time::FromMicroseconds(1), Time::Milliseconds(10),
                   Time::Milliseconds(30), Time::FromMicroseconds(5));
  EXPECT_LT(aqm.marking_probability(), high / 2.0);
}

TEST(PieTest, MarkingFractionTracksProbability) {
  PieAqm aqm(TestConfig(), 7);
  // Warm up to a steady probability, then measure the empirical fraction.
  RunConstantDelay(aqm, Time::FromMicroseconds(100), Time::Zero(),
                   Time::Milliseconds(20), Time::FromMicroseconds(5));
  const double p = aqm.marking_probability();
  const double fraction = RunConstantDelay(
      aqm, Time::FromMicroseconds(100), Time::Milliseconds(20),
      Time::Milliseconds(40), Time::FromMicroseconds(5));
  EXPECT_NEAR(fraction, p, 0.35 * p + 0.02);
}

TEST(PieTest, SmallBacklogBypassesMarking) {
  PieConfig config = TestConfig();
  config.min_backlog_bytes = 10'000;
  PieAqm aqm(config, 1);
  // Sustained delay drives probability up...
  for (Time t = Time::Zero(); t < Time::Milliseconds(10);
       t += Time::FromMicroseconds(5)) {
    Packet out = EctPacket();
    aqm.OnDequeue(out, QueueSnapshot{20, 30'000}, t, Time::FromMicroseconds(200));
  }
  ASSERT_GT(aqm.marking_probability(), 0.0);
  // ...but arrivals into a tiny backlog are never marked.
  Packet pkt = EctPacket();
  aqm.AllowEnqueue(pkt, QueueSnapshot{2, 3'000}, Time::Milliseconds(10));
  EXPECT_FALSE(pkt.IsCeMarked());
}

TEST(PieTest, NeverDropsOnEnqueue) {
  PieAqm aqm(TestConfig(), 1);
  for (int i = 0; i < 1000; ++i) {
    Packet pkt = EctPacket();
    EXPECT_TRUE(aqm.AllowEnqueue(pkt, QueueSnapshot{100, 150'000},
                                 Time::Microseconds(i)));
  }
}

}  // namespace
}  // namespace ecnsharp
