// Runner subsystem tests: thread pool, ordered collection, determinism
// across worker counts, same-seed reproducibility, and JSON export.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/config_json.h"
#include "runner/job.h"
#include "runner/json_export.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "sim/simulator.h"

namespace ecnsharp {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  runner::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  runner::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    runner::ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ParallelMapTest, ResultsAreInIndexOrderRegardlessOfJobs) {
  const auto fn = [](std::size_t i) { return i * i + 7; };
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    runner::SweepOptions options;
    options.jobs = jobs;
    options.progress = false;
    const std::vector<std::size_t> out = runner::ParallelMap(32, fn, options);
    ASSERT_EQ(out.size(), 32u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * i + 7) << "jobs=" << jobs << " i=" << i;
    }
  }
}

std::vector<runner::JobSpec> SmallDumbbellSweep() {
  std::vector<runner::JobSpec> specs;
  for (const double load : {0.3, 0.5, 0.7}) {
    DumbbellExperimentConfig config;
    config.load = load;
    config.flows = 60;
    config.seed = 42;
    specs.push_back({"load=" + std::to_string(load), config});
  }
  IncastExperimentConfig incast;
  incast.query_flows = 40;
  incast.seed = 42;
  specs.push_back({"incast", incast});
  return specs;
}

// The headline guarantee: the same spec list produces identical ordered
// results for --jobs=1 and --jobs=8, verified through the exact JSON
// serialization used by the exporter.
TEST(RunJobsTest, Jobs1AndJobs8ProduceIdenticalResults) {
  const std::vector<runner::JobSpec> specs = SmallDumbbellSweep();

  runner::SweepOptions sequential;
  sequential.jobs = 1;
  sequential.progress = false;
  const std::vector<runner::JobResult> r1 =
      runner::RunJobs(specs, sequential);

  runner::SweepOptions parallel = sequential;
  parallel.jobs = 8;
  const std::vector<runner::JobResult> r8 = runner::RunJobs(specs, parallel);

  ASSERT_EQ(r1.size(), specs.size());
  ASSERT_EQ(r8.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(r1[i].index, i);
    EXPECT_EQ(r8[i].index, i);
    EXPECT_EQ(r1[i].name, specs[i].name);
    EXPECT_EQ(r8[i].name, specs[i].name);
  }
  EXPECT_EQ(runner::SweepToJson("t", specs, r1).Dump(),
            runner::SweepToJson("t", specs, r8).Dump());
}

// Same seed, same config => bitwise-equal serialized results on repeated
// sequential runs (the determinism RunJobs builds on).
TEST(RunJobsTest, RepeatedSameSeedRunDumbbellIsBitwiseEqual) {
  DumbbellExperimentConfig config;
  config.load = 0.6;
  config.flows = 80;
  config.seed = 7;
  const runner::JobSpec spec{"repeat", config};

  const runner::JobResult a = runner::RunJob(spec, 0);
  const runner::JobResult b = runner::RunJob(spec, 0);
  const ExperimentResult& ra = runner::FctResult(a);
  const ExperimentResult& rb = runner::FctResult(b);
  EXPECT_EQ(ToJson(ra).Dump(), ToJson(rb).Dump());
  // Spot-check raw fields too, in case serialization ever rounds.
  EXPECT_EQ(ra.overall.avg_us, rb.overall.avg_us);
  EXPECT_EQ(ra.overall.p99_us, rb.overall.p99_us);
  EXPECT_EQ(ra.flows_completed, rb.flows_completed);
  EXPECT_EQ(ra.bottleneck.ce_marked, rb.bottleneck.ce_marked);
}

TEST(JsonExportTest, WritesParsableFileWithSchemaFields) {
  std::vector<runner::JobSpec> specs;
  IncastExperimentConfig config;
  config.query_flows = 30;
  config.seed = 3;
  specs.push_back({"fanout30", config});
  const std::vector<runner::JobResult> results = runner::RunJobs(specs);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "ecnsharp_runner_test" /
      "export.json";
  std::filesystem::remove_all(path.parent_path());
  ASSERT_TRUE(
      runner::WriteSweepJson(path.string(), "unit", specs, results));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"sweep\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"fanout30\""), std::string::npos);
  EXPECT_NE(text.find("\"topology\": \"incast\""), std::string::npos);
  EXPECT_NE(text.find("\"standing_queue_packets\""), std::string::npos);
  EXPECT_EQ(text, runner::SweepToJson("unit", specs, results).Dump());
  std::filesystem::remove_all(path.parent_path());
}

// The cancellation-bookkeeping fix: cancelling an already-executed event
// must not leave a permanent entry behind.
TEST(SimulatorCancelTest, CancelAfterExecutionDoesNotAccumulate) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.ScheduleAt(Time::Microseconds(i), [] {}));
  }
  sim.RunUntil(Time::Seconds(1));
  EXPECT_EQ(sim.live_events(), 0u);
  for (const EventId id : ids) sim.Cancel(id);
  EXPECT_EQ(sim.live_events(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorCancelTest, LiveEventsTracksPendingOnly) {
  Simulator sim;
  const EventId a = sim.ScheduleAt(Time::Microseconds(10), [] {});
  sim.ScheduleAt(Time::Microseconds(20), [] {});
  EXPECT_EQ(sim.live_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.live_events(), 1u);
  sim.RunUntil(Time::Seconds(1));
  EXPECT_EQ(sim.live_events(), 0u);
}

}  // namespace
}  // namespace ecnsharp
