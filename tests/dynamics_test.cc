// Dynamics subsystem tests: scenario JSON round-trip, the strict Json
// parser, fault injection, link flaps (purge vs drain) with shared-buffer
// accounting, ECN# re-estimation, ScenarioEngine determinism, and the
// headline guarantee that scenario sweeps export byte-identical JSON for
// any --jobs value.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ecn_sharp.h"
#include "dynamics/scenario.h"
#include "dynamics/scenario_engine.h"
#include "harness/config_json.h"
#include "harness/experiment.h"
#include "net/egress_port.h"
#include "net/link_fault.h"
#include "net/packet_tracer.h"
#include "net/shared_buffer.h"
#include "runner/job.h"
#include "runner/json_export.h"
#include "runner/sweep.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"

namespace ecnsharp {
namespace {

std::unique_ptr<Packet> MakePacket(std::uint32_t bytes = 1500) {
  auto pkt = std::make_unique<Packet>();
  pkt->size_bytes = bytes;
  pkt->ecn = EcnCodepoint::kEct0;
  return pkt;
}

struct CountingSink : PacketSink {
  std::size_t received = 0;
  void HandlePacket(std::unique_ptr<Packet>) override { ++received; }
};

// ---------------------------------------------------------------------------
// Json::Parse
// ---------------------------------------------------------------------------

TEST(JsonParseTest, ParsesScalarsContainersAndEscapes) {
  Json json;
  std::string error;
  ASSERT_TRUE(Json::Parse(
      R"({"a": 1, "b": [true, null, "xA\n"], "c": -2.5, "d": {}})",
      &json, &error))
      << error;
  ASSERT_TRUE(json.IsObject());
  EXPECT_EQ(json.Find("a")->AsInt(0), 1);
  const Json* b = json.Find("b");
  ASSERT_TRUE(b != nullptr && b->IsArray());
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].AsBool(false));
  EXPECT_TRUE(b->items()[1].IsNull());
  EXPECT_EQ(b->items()[2].AsString(), "xA\n");
  EXPECT_DOUBLE_EQ(json.Find("c")->AsDouble(0.0), -2.5);
  EXPECT_TRUE(json.Find("d")->IsObject());
  EXPECT_EQ(json.Find("missing"), nullptr);
}

TEST(JsonParseTest, RoundTripsItsOwnDump) {
  Json json;
  ASSERT_TRUE(Json::Parse(
      R"({"x": [1, 2.25, "s"], "y": {"z": false}})", &json));
  Json again;
  ASSERT_TRUE(Json::Parse(json.Dump(), &again));
  EXPECT_EQ(json.Dump(), again.Dump());
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  const char* kBad[] = {
      "",                    // empty
      "{",                   // unterminated object
      "[1, 2,]",             // trailing comma
      "{\"a\" 1}",           // missing colon
      "\"unterminated",      // unterminated string
      "{\"a\": 1} trailing", // garbage after document
      "nul",                 // truncated literal
      "01",                  // leading zero
  };
  for (const char* text : kBad) {
    Json json;
    std::string error;
    EXPECT_FALSE(Json::Parse(text, &json, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

// ---------------------------------------------------------------------------
// Scenario script JSON
// ---------------------------------------------------------------------------

ScenarioScript FullScript() {
  ScenarioScript script;
  script.seed = 9;
  ScenarioAction a;
  a.kind = ScenarioActionKind::kSetHostDelay;
  a.at = Time::FromMicroseconds(1000);
  a.target = 2;
  a.delay_us = 40.0;
  a.delay_hi_us = 90.0;
  a.repeat = 3;
  a.period = Time::FromMicroseconds(500);
  a.jitter = Time::FromMicroseconds(50);
  script.actions.push_back(a);

  ScenarioAction b;
  b.kind = ScenarioActionKind::kLinkDown;
  b.at = Time::FromMicroseconds(2000);
  b.target = -1;
  b.drop_queued = true;
  script.actions.push_back(b);

  ScenarioAction c;
  c.kind = ScenarioActionKind::kInjectLoss;
  c.at = Time::FromMicroseconds(500);
  c.target = -1;
  c.drop_prob = 0.01;
  c.corrupt_prob = 0.005;
  script.actions.push_back(c);

  ScenarioAction d;
  d.kind = ScenarioActionKind::kIncastBurst;
  d.at = Time::FromMicroseconds(3000);
  d.flows = 16;
  d.bytes = 20000;
  script.actions.push_back(d);
  return script;
}

TEST(ScenarioJsonTest, RoundTripsThroughDumpAndParse) {
  const std::string text = ToJson(FullScript()).Dump();
  ScenarioScript parsed;
  std::string error;
  ASSERT_TRUE(ParseScenarioScript(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.seed, 9u);
  ASSERT_EQ(parsed.actions.size(), 4u);
  EXPECT_EQ(parsed.actions[0].kind, ScenarioActionKind::kSetHostDelay);
  EXPECT_EQ(parsed.actions[0].repeat, 3u);
  EXPECT_TRUE(parsed.actions[1].drop_queued);
  EXPECT_DOUBLE_EQ(parsed.actions[2].corrupt_prob, 0.005);
  EXPECT_EQ(parsed.actions[3].flows, 16u);
  // Canonical form is a fixed point.
  EXPECT_EQ(ToJson(parsed).Dump(), text);
}

TEST(ScenarioJsonTest, AcceptsMinimalActions) {
  ScenarioScript parsed;
  std::string error;
  ASSERT_TRUE(ParseScenarioScript(
      R"({"actions": [{"kind": "link_up"}]})", &parsed, &error))
      << error;
  EXPECT_EQ(parsed.seed, 1u);  // default
  ASSERT_EQ(parsed.actions.size(), 1u);
  EXPECT_EQ(parsed.actions[0].kind, ScenarioActionKind::kLinkUp);
  EXPECT_EQ(parsed.actions[0].repeat, 1u);
}

TEST(ScenarioJsonTest, RejectsInvalidScripts) {
  const char* kBad[] = {
      R"([1, 2])",                                            // not an object
      R"({"seed": 1})",                                       // no actions
      R"({"actions": [{"kind": "warp_drive"}]})",             // unknown kind
      R"({"actions": [{"at_us": 5}]})",                       // missing kind
      R"({"actions": [{"kind": "link_up", "at_us": -1}]})",   // negative time
      R"({"actions": [{"kind": "inject_loss", "drop_prob": 1.5}]})",
      R"({"actions": [{"kind": "inject_loss", "drop_prob": 0.6,
                       "corrupt_prob": 0.6}]})",              // sum > 1
      R"({"actions": [{"kind": "link_up", "repeat": 2}]})",   // no period
      "not json at all",
  };
  for (const char* text : kBad) {
    ScenarioScript parsed;
    std::string error;
    EXPECT_FALSE(ParseScenarioScript(text, &parsed, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ScenarioJsonTest, KindNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(ScenarioActionKind::kReestimateEcnSharp);
       ++i) {
    const auto kind = static_cast<ScenarioActionKind>(i);
    ScenarioActionKind parsed;
    ASSERT_TRUE(ParseScenarioActionKind(ScenarioActionKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ScenarioActionKind ignored;
  EXPECT_FALSE(ParseScenarioActionKind("bogus", &ignored));
}

// ---------------------------------------------------------------------------
// LinkFaultInjector
// ---------------------------------------------------------------------------

TEST(LinkFaultInjectorTest, SameSeedSameVerdictSequence) {
  LinkFaultInjector a(5, 0.3, 0.2);
  LinkFaultInjector b(5, 0.3, 0.2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(static_cast<int>(a.Decide()), static_cast<int>(b.Decide()));
  }
  EXPECT_EQ(a.drops(), b.drops());
  EXPECT_EQ(a.corruptions(), b.corruptions());
}

TEST(LinkFaultInjectorTest, RatesApproximateProbabilities) {
  LinkFaultInjector injector(11, 0.3, 0.2);
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) injector.Decide();
  EXPECT_NEAR(static_cast<double>(injector.drops()) / kDraws, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(injector.corruptions()) / kDraws, 0.2,
              0.02);
}

TEST(LinkFaultInjectorTest, ZeroRatesAlwaysDeliver) {
  LinkFaultInjector injector(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<int>(injector.Decide()),
              static_cast<int>(LinkFaultInjector::Verdict::kDeliver));
  }
  EXPECT_EQ(injector.drops(), 0u);
  EXPECT_EQ(injector.corruptions(), 0u);
}

// ---------------------------------------------------------------------------
// EgressPort fault injection and link flaps
// ---------------------------------------------------------------------------

TEST(EgressPortFaultTest, CertainLossDropsEverythingWithoutTransmitting) {
  Simulator sim;
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::FromMicroseconds(1),
                  std::make_unique<FifoQueueDisc>(1ull << 20, nullptr));
  CountingSink sink;
  port.ConnectTo(sink);
  TextTracer tracer;
  port.SetTracer(&tracer);
  LinkFaultInjector fault(3, /*drop_prob=*/1.0, /*corrupt_prob=*/0.0);
  port.SetFaultInjector(&fault);

  for (int i = 0; i < 10; ++i) port.Enqueue(MakePacket());
  sim.Run();

  EXPECT_EQ(sink.received, 0u);
  EXPECT_EQ(port.counters().dropped_fault, 10u);
  EXPECT_EQ(port.counters().tx_packets, 0u);  // loss consumes no bandwidth
  EXPECT_EQ(fault.drops(), 10u);
  EXPECT_EQ(tracer.drops(), 10u);
}

TEST(EgressPortFaultTest, CertainCorruptionTransmitsButNeverDelivers) {
  Simulator sim;
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::FromMicroseconds(1),
                  std::make_unique<FifoQueueDisc>(1ull << 20, nullptr));
  CountingSink sink;
  port.ConnectTo(sink);
  TextTracer tracer;
  port.SetTracer(&tracer);
  LinkFaultInjector fault(3, /*drop_prob=*/0.0, /*corrupt_prob=*/1.0);
  port.SetFaultInjector(&fault);

  for (int i = 0; i < 10; ++i) port.Enqueue(MakePacket());
  sim.Run();

  EXPECT_EQ(sink.received, 0u);
  // Corruption consumes bandwidth: the frame is fully serialized.
  EXPECT_EQ(port.counters().tx_packets, 10u);
  EXPECT_EQ(port.counters().corrupted, 10u);
  EXPECT_EQ(fault.corruptions(), 10u);
  EXPECT_EQ(tracer.drops(), 10u);  // one kCorrupt drop per packet
}

TEST(EgressPortFlapTest, DropQueuedPurgesBacklogAndReleasesSharedBuffer) {
  Simulator sim;
  SharedBufferPool pool(1ull << 20, 8.0);
  auto disc = std::make_unique<FifoQueueDisc>(pool, nullptr);
  FifoQueueDisc* fifo = disc.get();
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::FromMicroseconds(1), std::move(disc));
  CountingSink sink;
  port.ConnectTo(sink);

  // 10 arrivals at t=0: the first goes straight to the transmitter, 9 queue.
  for (int i = 0; i < 10; ++i) port.Enqueue(MakePacket(1500));
  EXPECT_EQ(pool.used_bytes(), 9u * 1500u);

  port.LinkDown(/*drop_queued=*/true);
  EXPECT_FALSE(port.link_up());
  // Backlog purged, reservations released, invariant holds:
  // enqueued == dequeued + purged + queued.
  EXPECT_EQ(pool.used_bytes(), 0u);
  EXPECT_EQ(fifo->stats().enqueued, 10u);
  EXPECT_EQ(fifo->stats().dequeued, 1u);
  EXPECT_EQ(fifo->stats().purged, 9u);
  EXPECT_EQ(fifo->Snapshot().packets, 0u);

  // The packet already committed to the wire still arrives.
  sim.Run();
  EXPECT_EQ(sink.received, 1u);

  // Arrivals during the outage are dropped at the port (no carrier).
  port.Enqueue(MakePacket());
  EXPECT_EQ(port.counters().dropped_link_down, 1u);

  port.LinkUp();
  sim.Run();
  EXPECT_EQ(sink.received, 1u);  // nothing survived to drain
}

TEST(EgressPortFlapTest, DrainModeHoldsBacklogThroughOutage) {
  Simulator sim;
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::FromMicroseconds(1),
                  std::make_unique<FifoQueueDisc>(1ull << 20, nullptr));
  CountingSink sink;
  port.ConnectTo(sink);

  for (int i = 0; i < 5; ++i) port.Enqueue(MakePacket());
  port.LinkDown(/*drop_queued=*/false);
  sim.Run();
  // Only the in-flight packet arrived; the backlog is parked.
  EXPECT_EQ(sink.received, 1u);
  EXPECT_EQ(port.queue_disc().Snapshot().packets, 4u);

  port.LinkUp();
  sim.Run();
  EXPECT_EQ(sink.received, 5u);
  EXPECT_EQ(port.queue_disc().stats().purged, 0u);
}

// Regression: LinkDown(drop_queued=true) on an already-down port used to
// early-return before the purge, leaving the parked backlog (and its
// shared-buffer reservations) in place. A drain-preserving outage escalated
// to a purging one must still drop the backlog.
TEST(EgressPortFlapTest, EscalatingDrainOutageToPurgeDropsBacklog) {
  Simulator sim;
  SharedBufferPool pool(1ull << 20, 8.0);
  auto disc = std::make_unique<FifoQueueDisc>(pool, nullptr);
  FifoQueueDisc* fifo = disc.get();
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::FromMicroseconds(1), std::move(disc));
  CountingSink sink;
  port.ConnectTo(sink);

  for (int i = 0; i < 6; ++i) port.Enqueue(MakePacket(1500));
  port.LinkDown(/*drop_queued=*/false);  // park 5, 1 in flight
  EXPECT_EQ(fifo->Snapshot().packets, 5u);

  port.LinkDown(/*drop_queued=*/true);  // escalate: backlog must go
  EXPECT_EQ(fifo->Snapshot().packets, 0u);
  EXPECT_EQ(fifo->stats().purged, 5u);
  EXPECT_EQ(pool.used_bytes(), 0u);

  port.LinkUp();
  sim.Run();
  EXPECT_EQ(sink.received, 1u);  // only the in-flight packet survived
  EXPECT_EQ(fifo->stats().enqueued,
            fifo->stats().dequeued + fifo->stats().purged);
}

// Regression: PurgeAll used to notify the tracer before updating the
// disc's accounting, so a TextTracer (whose default OnPurge forwards to
// OnDrop) observed stale snapshots and, in the drain-vs-purge interleave,
// missed events entirely. Pin both: every purged packet produces exactly
// one line, and the `after` snapshot handed to OnPurge matches the disc's
// live Snapshot() at callback time.
TEST(EgressPortFlapTest, TracerSeesEveryPurgeWithConsistentSnapshots) {
  struct PurgeAuditor : PacketTracer {
    const QueueDisc* disc = nullptr;
    std::size_t purges = 0;
    std::uint32_t last_packets = 0;
    bool consistent = true;
    void OnTransmit(const Packet&, Time) override {}
    void OnPurge(const Packet&, Time, const QueueSnapshot& after) override {
      // Accounting is updated before each callback: the snapshot the hook
      // receives is the disc's current truth, and it shrinks by one packet
      // per purge.
      consistent = consistent && after.packets == disc->Snapshot().packets &&
                   after.bytes == disc->Snapshot().bytes &&
                   (purges == 0 || after.packets == last_packets - 1);
      last_packets = after.packets;
      ++purges;
    }
  };

  Simulator sim;
  auto disc = std::make_unique<FifoQueueDisc>(1ull << 20, nullptr);
  FifoQueueDisc* fifo = disc.get();
  EgressPort port(sim, DataRate::GigabitsPerSecond(10),
                  Time::FromMicroseconds(1), std::move(disc));
  CountingSink sink;
  port.ConnectTo(sink);

  PurgeAuditor auditor;
  auditor.disc = fifo;
  port.SetTracer(&auditor);
  for (int i = 0; i < 8; ++i) port.Enqueue(MakePacket(1500));
  port.LinkDown(/*drop_queued=*/true);
  EXPECT_EQ(auditor.purges, 7u);  // 1 of 8 was already in flight
  EXPECT_TRUE(auditor.consistent);
  EXPECT_EQ(fifo->stats().purged, 7u);

  // The default OnPurge forwards to OnDrop(kPurged), so text tracers see
  // purges as drop lines without overriding the hook.
  TextTracer text;
  port.SetTracer(&text);
  port.LinkUp();
  sim.Run();  // deliver the surviving in-flight packet
  for (int i = 0; i < 4; ++i) port.Enqueue(MakePacket(1500));
  port.LinkDown(/*drop_queued=*/true);
  EXPECT_EQ(text.drops(), 3u);  // 1 of 4 in flight again
  std::size_t purge_lines = 0;
  for (const std::string& line : text.lines()) {
    if (line.find("reason=purged") != std::string::npos) ++purge_lines;
  }
  EXPECT_EQ(purge_lines, 3u);
}

TEST(EgressPortFlapTest, RedundantTransitionsAreNoOps) {
  Simulator sim;
  EgressPort port(sim, DataRate::GigabitsPerSecond(10), Time::Zero(),
                  std::make_unique<FifoQueueDisc>(1ull << 20, nullptr));
  CountingSink sink;
  port.ConnectTo(sink);
  port.LinkUp();  // already up
  EXPECT_TRUE(port.link_up());
  port.LinkDown(true);
  port.LinkDown(true);  // already down
  EXPECT_FALSE(port.link_up());
  port.LinkUp();
  port.Enqueue(MakePacket());
  sim.Run();
  EXPECT_EQ(sink.received, 1u);
}

// ---------------------------------------------------------------------------
// ECN# re-estimation
// ---------------------------------------------------------------------------

TEST(EcnSharpReconfigureTest, SwapsThresholdsAndRestartsMarkerState) {
  EcnSharpConfig initial;
  initial.ins_target = Time::FromMicroseconds(100);
  initial.pst_target = Time::FromMicroseconds(30);
  initial.pst_interval = Time::FromMicroseconds(100);
  EcnSharpAqm aqm(initial);

  // Drive the persistent state machine on: sojourn above pst_target for
  // longer than one interval. (t > 0: the marker uses t == 0 as its
  // "no observation yet" sentinel.)
  QueueSnapshot snapshot{4, 6000};
  auto pkt = MakePacket();
  aqm.OnDequeue(*pkt, snapshot, Time::FromMicroseconds(10),
                Time::FromMicroseconds(50));
  aqm.OnDequeue(*pkt, snapshot, Time::FromMicroseconds(160),
                Time::FromMicroseconds(50));
  EXPECT_TRUE(aqm.marking_state());
  const std::uint64_t persistent_before = aqm.persistent_marks();
  EXPECT_GE(persistent_before, 1u);

  EcnSharpConfig shifted = RuleOfThumbConfig(Time::FromMicroseconds(600),
                                             Time::FromMicroseconds(300),
                                             1.0);
  aqm.Reconfigure(shifted);
  EXPECT_EQ(aqm.config().ins_target, shifted.ins_target);
  EXPECT_EQ(aqm.config().pst_interval, shifted.pst_interval);
  // State machine restarted; cumulative counters preserved.
  EXPECT_FALSE(aqm.marking_state());
  EXPECT_EQ(aqm.marking_count(), 0u);
  EXPECT_EQ(aqm.persistent_marks(), persistent_before);
}

// ---------------------------------------------------------------------------
// ScenarioEngine
// ---------------------------------------------------------------------------

std::vector<std::pair<double, double>> RunDelayScenario(std::uint64_t seed) {
  Simulator sim;
  ScenarioScript script;
  script.seed = seed;
  ScenarioAction a;
  a.kind = ScenarioActionKind::kSetHostDelay;
  a.target = 0;
  a.at = Time::FromMicroseconds(10);
  a.delay_us = 10.0;
  a.delay_hi_us = 50.0;
  a.repeat = 5;
  a.period = Time::FromMicroseconds(20);
  a.jitter = Time::FromMicroseconds(5);
  script.actions.push_back(a);

  std::vector<std::pair<double, double>> fired;
  ScenarioHooks hooks;
  hooks.set_host_delay = [&fired, &sim](int, Time delay) {
    fired.push_back({sim.Now().ToMicroseconds(), delay.ToMicroseconds()});
  };
  ScenarioEngine engine(sim, script, hooks);
  engine.Install();
  EXPECT_EQ(engine.actions_scheduled(), 5u);
  sim.Run();
  EXPECT_EQ(engine.actions_fired(), 5u);
  return fired;
}

TEST(ScenarioEngineTest, OccurrencesAreSeedDeterministic) {
  const auto a = RunDelayScenario(3);
  const auto b = RunDelayScenario(3);
  const auto c = RunDelayScenario(4);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed => different jitter/delay draws
  // Occurrences land inside [at + k*period, at + k*period + jitter] with a
  // drawn delay inside [10, 50].
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double base = 10.0 + 20.0 * static_cast<double>(k);
    EXPECT_GE(a[k].first, base);
    EXPECT_LE(a[k].first, base + 5.0);
    EXPECT_GE(a[k].second, 10.0);
    EXPECT_LE(a[k].second, 50.0);
  }
}

TEST(ScenarioEngineTest, MissingHooksAndUnknownTargetsAreIgnored) {
  Simulator sim;
  ScenarioScript script;
  ScenarioAction a;
  a.kind = ScenarioActionKind::kLinkDown;
  a.target = 99;
  script.actions.push_back(a);
  a.kind = ScenarioActionKind::kReestimateEcnSharp;
  script.actions.push_back(a);
  ScenarioHooks hooks;  // everything unset
  ScenarioEngine engine(sim, script, hooks);
  engine.Install();
  sim.Run();
  EXPECT_EQ(engine.actions_fired(), 2u);
  EXPECT_EQ(engine.injected_drops(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: RunDumbbell with scenarios
// ---------------------------------------------------------------------------

ScenarioScript SmallDynamicScript();

DumbbellExperimentConfig SmallDynamicConfig() {
  DumbbellExperimentConfig config;
  config.flows = 40;
  config.seed = 5;
  config.scenario = SmallDynamicScript();
  return config;
}

// Deliberately topology-agnostic: target -1 resolves to the primary
// bottleneck on either topology, and the incast burst converges on each
// topology's IncastTarget.
ScenarioScript SmallDynamicScript() {
  ScenarioScript script;
  script.seed = 21;
  ScenarioAction loss;
  loss.kind = ScenarioActionKind::kInjectLoss;
  loss.at = Time::Milliseconds(1);
  loss.target = -1;
  loss.drop_prob = 0.05;
  loss.corrupt_prob = 0.01;
  script.actions.push_back(loss);

  ScenarioAction burst;
  burst.kind = ScenarioActionKind::kIncastBurst;
  burst.at = Time::Milliseconds(2);
  burst.flows = 8;
  burst.bytes = 20000;
  script.actions.push_back(burst);

  ScenarioAction down;
  down.kind = ScenarioActionKind::kLinkDown;
  down.at = Time::Milliseconds(3);
  down.target = -1;
  down.drop_queued = true;
  script.actions.push_back(down);

  ScenarioAction up = down;
  up.kind = ScenarioActionKind::kLinkUp;
  up.at = Time::Milliseconds(3) + Time::FromMicroseconds(200);
  script.actions.push_back(up);

  ScenarioAction reest;
  reest.kind = ScenarioActionKind::kReestimateEcnSharp;
  reest.at = Time::Milliseconds(4);
  script.actions.push_back(reest);
  return script;
}

LeafSpineExperimentConfig SmallDynamicLeafSpineConfig() {
  LeafSpineExperimentConfig config;
  config.topo.spines = 2;
  config.topo.leaves = 2;
  config.topo.hosts_per_leaf = 4;
  config.flows = 40;
  config.seed = 5;
  config.scenario = SmallDynamicScript();
  return config;
}

TEST(DynamicDumbbellTest, CountsScenarioActivityAndStillCompletes) {
  const ExperimentResult r = RunDumbbell(SmallDynamicConfig());
  EXPECT_EQ(r.scenario_actions, 5u);
  EXPECT_EQ(r.incast_bursts, 1u);
  EXPECT_EQ(r.burst_flows_started, 8u);
  EXPECT_EQ(r.burst_flows_completed, 8u);
  // Workload + burst flows all complete despite loss and the flap.
  EXPECT_EQ(r.flows_started, 48u);
  EXPECT_EQ(r.flows_completed, 48u);
  // 5% loss on the bottleneck for most of the run must show up.
  EXPECT_GT(r.injected_drops, 0u);
}

TEST(DynamicDumbbellTest, RepeatRunsAreBitwiseEqual) {
  const DumbbellExperimentConfig config = SmallDynamicConfig();
  const ExperimentResult a = RunDumbbell(config);
  const ExperimentResult b = RunDumbbell(config);
  EXPECT_EQ(ToJson(a).Dump(), ToJson(b).Dump());
  EXPECT_EQ(a.injected_drops, b.injected_drops);
  EXPECT_EQ(a.injected_corruptions, b.injected_corruptions);
  EXPECT_EQ(a.link_down_drops, b.link_down_drops);
}

TEST(DynamicDumbbellTest, StaticConfigReportsNoDynamics) {
  DumbbellExperimentConfig config;
  config.flows = 30;
  config.seed = 2;
  const ExperimentResult r = RunDumbbell(config);
  EXPECT_EQ(r.scenario_actions, 0u);
  EXPECT_EQ(r.injected_drops, 0u);
  // Empty scenarios leave the exported record untouched (no scenario or
  // dynamics keys).
  const std::string dump = runner::SweepToJson(
      "static", {{"static", config}},
      {runner::RunJob({"static", config}, 0)}).Dump();
  EXPECT_EQ(dump.find("\"scenario\""), std::string::npos);
  EXPECT_EQ(dump.find("\"injected_drops\""), std::string::npos);
}

// The acceptance bar for the subsystem: a sweep mixing scenario configs
// exports byte-identical JSON for --jobs=1 and --jobs=4.
TEST(DynamicDumbbellTest, ScenarioSweepIsJobCountInvariant) {
  std::vector<runner::JobSpec> specs;
  for (const Scheme scheme : {Scheme::kDctcpRedTail, Scheme::kEcnSharp}) {
    DumbbellExperimentConfig config = SmallDynamicConfig();
    config.scheme = scheme;
    specs.push_back({std::string(SchemeName(scheme)) + "/dyn", config});
  }
  DumbbellExperimentConfig plain;
  plain.flows = 40;
  plain.seed = 5;
  specs.push_back({"static", plain});

  runner::SweepOptions sequential;
  sequential.jobs = 1;
  sequential.progress = false;
  const std::vector<runner::JobResult> r1 = runner::RunJobs(specs, sequential);
  runner::SweepOptions parallel = sequential;
  parallel.jobs = 4;
  const std::vector<runner::JobResult> r4 = runner::RunJobs(specs, parallel);

  const std::string d1 = runner::SweepToJson("dyn", specs, r1).Dump();
  const std::string d4 = runner::SweepToJson("dyn", specs, r4).Dump();
  EXPECT_EQ(d1, d4);
  // The scenario itself is part of the exported record.
  EXPECT_NE(d1.find("\"scenario\""), std::string::npos);
  EXPECT_NE(d1.find("\"inject_loss\""), std::string::npos);
  EXPECT_NE(d1.find("\"injected_drops\""), std::string::npos);
}

// The very script the dumbbell tests run, unmodified, on the fabric: the
// session layer resolves ports, bursts, and re-estimation through the
// Topology interface, so leaf-spine gets dynamics for free.
TEST(DynamicLeafSpineTest, CountsScenarioActivityAndStillCompletes) {
  const ExperimentResult r = RunLeafSpine(SmallDynamicLeafSpineConfig());
  EXPECT_EQ(r.scenario_actions, 5u);
  EXPECT_EQ(r.incast_bursts, 1u);
  EXPECT_EQ(r.burst_flows_started, 8u);
  EXPECT_EQ(r.burst_flows_completed, 8u);
  EXPECT_EQ(r.flows_started, 48u);
  EXPECT_EQ(r.flows_completed, 48u);
}

TEST(DynamicLeafSpineTest, RepeatRunsAreBitwiseEqual) {
  const LeafSpineExperimentConfig config = SmallDynamicLeafSpineConfig();
  const ExperimentResult a = RunLeafSpine(config);
  const ExperimentResult b = RunLeafSpine(config);
  EXPECT_EQ(ToJson(a).Dump(), ToJson(b).Dump());
  EXPECT_EQ(a.injected_drops, b.injected_drops);
  EXPECT_EQ(a.link_down_drops, b.link_down_drops);
}

TEST(DynamicLeafSpineTest, ScenarioLandsInExportedRecord) {
  const LeafSpineExperimentConfig config = SmallDynamicLeafSpineConfig();
  const std::string dump = runner::SweepToJson(
      "lsdyn", {{"lsdyn", config}},
      {runner::RunJob({"lsdyn", config}, 0)}).Dump();
  EXPECT_NE(dump.find("\"topology\": \"leafspine\""), std::string::npos);
  EXPECT_NE(dump.find("\"scenario\""), std::string::npos);
  EXPECT_NE(dump.find("\"scenario_actions\""), std::string::npos);
}

}  // namespace
}  // namespace ecnsharp
