#include "sim/random.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/percentile.h"

namespace ecnsharp {
namespace {

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(3);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.UniformInt(7)];
  for (const int c : counts) EXPECT_GT(c, 700);  // each bucket well hit
}

TEST(RngTest, ExponentialMean) {
  Rng rng(4);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(42.0);
  EXPECT_NEAR(sum / kN, 42.0, 1.0);
}

TEST(RngTest, LogNormalMatchesTargetMoments) {
  Rng rng(5);
  std::vector<double> xs;
  constexpr int kN = 200000;
  xs.reserve(kN);
  for (int i = 0; i < kN; ++i) xs.push_back(rng.LogNormal(39.3, 12.2));
  EXPECT_NEAR(Mean(xs), 39.3, 0.5);
  EXPECT_NEAR(StdDev(xs), 12.2, 0.5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng a(9);
  Rng forked = a.Fork();
  // The fork must not replay the parent's stream.
  bool all_equal = true;
  for (int i = 0; i < 32; ++i) {
    if (a.Uniform() != forked.Uniform()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

}  // namespace
}  // namespace ecnsharp
