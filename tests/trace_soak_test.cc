// Randomized invariant soak: seeded churn (enqueue bursts, link flaps with
// purge or drain, recoveries) against all three queue discs, with the
// flight-recorder trace as an independent oracle. After every scripted
// action the accounting invariant
//
//   enqueued == dequeued + purged + queued
//
// must hold, shared-buffer reservations must equal the queue's byte
// occupancy, and the trace tap's tallies must agree with the disc's own
// stats — the tap observes each packet at a different code path than the
// stats counters, so agreement pins the drain-vs-purge interleave.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "buffer/policies.h"
#include "dynamics/scenario.h"
#include "dynamics/scenario_engine.h"
#include "harness/experiment.h"
#include "net/egress_port.h"
#include "net/packet_tracer.h"
#include "net/queue_disc.h"
#include "net/shared_buffer.h"
#include "sched/dwrr_queue_disc.h"
#include "sched/fifo_queue_disc.h"
#include "sched/sp_queue_disc.h"
#include "sim/data_rate.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sketch/telemetry.h"
#include "topo/composed.h"
#include "topo/fat_tree.h"
#include "trace/trace_config.h"
#include "trace/trace_recorder.h"

namespace ecnsharp {
namespace {

struct NullSink : PacketSink {
  void HandlePacket(std::unique_ptr<Packet>) override {}
};

std::unique_ptr<Packet> MakePacket(Rng& rng) {
  auto pkt = std::make_unique<Packet>();
  pkt->size_bytes = 64 + static_cast<std::uint32_t>(rng.UniformInt(1437));
  pkt->ecn = EcnCodepoint::kEct0;
  pkt->traffic_class = static_cast<std::uint8_t>(rng.UniformInt(3));
  pkt->seq = rng.UniformInt(1u << 20);
  return pkt;
}

// Asserts the accounting invariant and that the trace tap agrees with the
// disc's stats counter for counter. `pool` is optional (FIFO only).
void CheckInvariants(const QueueDisc& disc, const TraceRecorder& trace,
                     const SharedBufferPool* pool, const char* when) {
  const QueueDiscStats& stats = disc.stats();
  const QueueSnapshot snapshot = disc.Snapshot();
  ASSERT_EQ(stats.enqueued, stats.dequeued + stats.purged + snapshot.packets)
      << when;
  if (pool != nullptr) {
    ASSERT_EQ(pool->used_bytes(), snapshot.bytes) << when;
  }
  const TraceSiteCounters& c = trace.site_counters(0);
  ASSERT_EQ(c.enqueued, stats.enqueued) << when;
  ASSERT_EQ(c.dequeued, stats.dequeued) << when;
  ASSERT_EQ(c.purged, stats.purged) << when;
  ASSERT_EQ(c.marks, stats.ce_marked) << when;
  ASSERT_EQ(c.drops[static_cast<std::size_t>(DropReason::kOverflow)],
            stats.dropped_overflow)
      << when;
  ASSERT_EQ(c.drops[static_cast<std::size_t>(DropReason::kAqm)],
            stats.dropped_aqm)
      << when;
}

// Runs one seeded churn timeline against `port`: random arrival bursts
// interleaved with purge-flaps, drain-flaps, and recoveries, checking the
// invariants after every scripted step and once more after the drain.
void SoakPort(Simulator& sim, EgressPort& port, SharedBufferPool* pool,
              std::uint64_t seed) {
  TraceConfig config;
  config.enabled = true;
  TraceRecorder trace(config);
  trace.RegisterSite("soak");
  port.SetTracer(trace.PortTap(0));

  Rng rng(seed);
  Time at = Time::Zero();
  std::uint64_t steps = 0;
  for (int step = 0; step < 400; ++step) {
    at = at + Time::FromMicroseconds(1 + rng.UniformInt(20));
    const std::uint64_t dice = rng.UniformInt(10);
    if (dice < 6) {
      // Arrival burst: 1..8 packets, sizes and classes randomized.
      const std::uint64_t count = 1 + rng.UniformInt(8);
      sim.ScheduleAt(at, [&, count] {
        for (std::uint64_t i = 0; i < count; ++i) {
          port.Enqueue(MakePacket(rng));
        }
        ++steps;
        CheckInvariants(port.queue_disc(), trace, pool, "after burst");
      });
    } else if (dice < 8) {
      const bool drop_queued = rng.UniformInt(2) == 0;
      sim.ScheduleAt(at, [&, drop_queued] {
        port.LinkDown(drop_queued);
        ++steps;
        CheckInvariants(port.queue_disc(), trace, pool, "after link down");
      });
    } else {
      sim.ScheduleAt(at, [&] {
        port.LinkUp();
        ++steps;
        CheckInvariants(port.queue_disc(), trace, pool, "after link up");
      });
    }
  }
  sim.Run();
  ASSERT_EQ(steps, 400u);
  // Ensure the run is drained (the port may have ended in a down state
  // holding a backlog — bring it up and let it finish).
  port.LinkUp();
  sim.Run();
  CheckInvariants(port.queue_disc(), trace, pool, "after drain");
  const QueueDiscStats& stats = port.queue_disc().stats();
  EXPECT_EQ(port.queue_disc().Snapshot().packets, 0u);
  EXPECT_EQ(stats.enqueued, stats.dequeued + stats.purged);
  // The churn must actually have exercised both halves of the invariant.
  EXPECT_GT(stats.dequeued, 0u) << "seed " << seed;
  EXPECT_GT(stats.purged + stats.dropped_overflow, 0u) << "seed " << seed;
}

constexpr std::uint64_t kSoakSeeds[] = {1, 7, 0xdecaf};

TEST(TraceSoakTest, FifoSharedBufferInvariantHoldsUnderChurn) {
  for (const std::uint64_t seed : kSoakSeeds) {
    Simulator sim;
    SharedBufferPool pool(24'000, 8.0);  // small: forces overflow refusals
    EgressPort port(sim, DataRate::GigabitsPerSecond(1),
                    Time::FromMicroseconds(1),
                    std::make_unique<FifoQueueDisc>(pool, nullptr));
    NullSink sink;
    port.ConnectTo(sink);
    SoakPort(sim, port, &pool, seed);
  }
}

TEST(TraceSoakTest, DwrrInvariantHoldsUnderChurn) {
  for (const std::uint64_t seed : kSoakSeeds) {
    Simulator sim;
    std::vector<DwrrQueueDisc::ClassConfig> classes(3);
    classes[0].weight = 2;
    classes[1].weight = 1;
    classes[2].weight = 1;
    EgressPort port(sim, DataRate::GigabitsPerSecond(1),
                    Time::FromMicroseconds(1),
                    std::make_unique<DwrrQueueDisc>(24'000,
                                                    std::move(classes)));
    NullSink sink;
    port.ConnectTo(sink);
    SoakPort(sim, port, nullptr, seed);
  }
}

TEST(TraceSoakTest, SpInvariantHoldsUnderChurn) {
  for (const std::uint64_t seed : kSoakSeeds) {
    Simulator sim;
    std::vector<SpQueueDisc::ClassConfig> classes(3);
    EgressPort port(sim, DataRate::GigabitsPerSecond(1),
                    Time::FromMicroseconds(1),
                    std::make_unique<SpQueueDisc>(24'000, std::move(classes)));
    NullSink sink;
    port.ConnectTo(sink);
    SoakPort(sim, port, nullptr, seed);
  }
}

// The same checks driven by the real ScenarioEngine: a seeded script of
// flaps and purges, with the post-action check scheduled from the engine's
// on_action observer. on_action fires before the effect is applied, and
// same-time events run FIFO, so an event scheduled at `now` from the
// observer runs right after the action's effect — the earliest instant the
// post-state is observable.
TEST(TraceSoakTest, ScenarioEngineActionsPreserveInvariants) {
  Simulator sim;
  SharedBufferPool pool(1u << 20, 8.0);
  EgressPort port(sim, DataRate::GigabitsPerSecond(1),
                  Time::FromMicroseconds(1),
                  std::make_unique<FifoQueueDisc>(pool, nullptr));
  NullSink sink;
  port.ConnectTo(sink);

  TraceConfig config;
  config.enabled = true;
  TraceRecorder trace(config);
  trace.RegisterSite("soak");
  port.SetTracer(trace.PortTap(0));

  // Keep a standing queue so every flap has a backlog to purge or park.
  Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    const Time at = Time::FromMicroseconds(5 * i);
    sim.ScheduleAt(at, [&] {
      for (int j = 0; j < 4; ++j) port.Enqueue(MakePacket(rng));
    });
  }

  ScenarioScript script;
  script.seed = 13;
  ScenarioAction down;
  down.kind = ScenarioActionKind::kLinkDown;
  down.at = Time::FromMicroseconds(100);
  down.target = -1;
  down.drop_queued = true;
  down.repeat = 6;
  down.period = Time::FromMicroseconds(300);
  script.actions.push_back(down);
  ScenarioAction up = down;
  up.kind = ScenarioActionKind::kLinkUp;
  up.at = down.at + Time::FromMicroseconds(120);
  script.actions.push_back(up);

  std::uint64_t checks = 0;
  ScenarioHooks hooks;
  hooks.port = [&](int) { return &port; };
  hooks.on_action = [&](const ScenarioAction& action, Time at) {
    trace.OnScenarioAction(at, static_cast<std::uint8_t>(action.kind),
                           action.target);
    sim.ScheduleAt(at, [&] {
      ++checks;
      CheckInvariants(port.queue_disc(), trace, &pool, "post-action");
    });
  };
  ScenarioEngine engine(sim, script, hooks);
  engine.Install();
  sim.Run();
  port.LinkUp();
  sim.Run();

  EXPECT_EQ(engine.actions_fired(), 12u);
  EXPECT_EQ(checks, 12u);
  EXPECT_EQ(trace.kind_count(TraceEventKind::kScenario), 12u);
  EXPECT_GT(port.queue_disc().stats().purged, 0u);
  CheckInvariants(port.queue_disc(), trace, &pool, "final");
}

// Full-stack soak: the dumbbell dynamics scenario (loss injection, incast
// burst, purge-flap, re-estimation) with tracing enabled. The trace must
// agree with every independently-maintained counter the harness reports.
TEST(TraceSoakTest, DynamicDumbbellTraceAgreesWithHarnessCounters) {
  DumbbellExperimentConfig config;
  config.flows = 40;
  config.seed = 5;
  config.trace.enabled = true;
  ScenarioScript script;
  script.seed = 21;
  ScenarioAction loss;
  loss.kind = ScenarioActionKind::kInjectLoss;
  loss.at = Time::Milliseconds(1);
  loss.target = -1;
  loss.drop_prob = 0.05;
  script.actions.push_back(loss);
  ScenarioAction burst;
  burst.kind = ScenarioActionKind::kIncastBurst;
  burst.at = Time::Milliseconds(2);
  burst.flows = 8;
  burst.bytes = 20000;
  script.actions.push_back(burst);
  ScenarioAction down;
  down.kind = ScenarioActionKind::kLinkDown;
  down.at = Time::Milliseconds(3);
  down.target = -1;
  down.drop_queued = true;
  script.actions.push_back(down);
  ScenarioAction up = down;
  up.kind = ScenarioActionKind::kLinkUp;
  up.at = Time::Milliseconds(3) + Time::FromMicroseconds(200);
  script.actions.push_back(up);
  config.scenario = script;

  const ExperimentResult r = RunDumbbell(config);
  ASSERT_NE(r.trace, nullptr);
  const TraceRecorder& trace = *r.trace;
  const TraceSiteCounters& c = trace.site_counters(0);

  EXPECT_EQ(c.enqueued, r.bottleneck.enqueued);
  EXPECT_EQ(c.dequeued, r.bottleneck.dequeued);
  EXPECT_EQ(c.purged, r.bottleneck.purged);
  EXPECT_EQ(c.marks, r.bottleneck.ce_marked);
  EXPECT_EQ(c.enqueued, c.dequeued + c.purged);  // drained
  EXPECT_EQ(c.drops[static_cast<std::size_t>(DropReason::kFaultLoss)],
            r.injected_drops);
  EXPECT_EQ(c.drops[static_cast<std::size_t>(DropReason::kLinkDown)],
            r.link_down_drops);
  // Every dequeued packet either hit the injected loss or made it onto the
  // wire (corrupted packets transmit and are discarded at the far end).
  EXPECT_EQ(c.dequeued,
            c.transmitted +
                c.drops[static_cast<std::size_t>(DropReason::kFaultLoss)]);
  EXPECT_EQ(trace.kind_count(TraceEventKind::kScenario), r.scenario_actions);
  EXPECT_GT(r.injected_drops, 0u);
  EXPECT_GT(r.bottleneck.purged, 0u);
}

// The same churn timeline run against a real fat-tree fabric port: edge 0's
// first uplink (the canonical bottleneck), with the rest of the k=4 fabric
// live behind it. The accounting invariant must hold after every action
// even when purged traffic would otherwise have crossed two more tiers.
TEST(TraceSoakTest, FatTreeBottleneckInvariantHoldsUnderChurn) {
  for (const std::uint64_t seed : kSoakSeeds) {
    Simulator sim;
    FatTreeConfig config;
    config.k = 4;
    FatTree topo(sim, config, [] {
      return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams());
    });
    EgressPort* uplink = topo.ResolvePort(-1);
    ASSERT_NE(uplink, nullptr);
    SoakPort(sim, *uplink, nullptr, seed);
  }
}

// Full-stack fat-tree soak: k=4 under repeated purge-flaps with both the
// flight recorder and the sketch telemetry enabled. The per-site tallies
// summed over all 5k^3/4 = 80 fabric ports must agree with the fabric-wide
// aggregate the harness reports, and the fabric must drain to
// enqueued == dequeued + purged (the queued term is zero at exit).
TEST(TraceSoakTest, DynamicFatTreeTraceAndSketchAgreeWithHarnessCounters) {
  FatTreeExperimentConfig config;
  config.topo.k = 4;
  config.flows = 60;
  config.seed = 5;
  config.trace.enabled = true;
  config.sketch.enabled = true;

  // An incast burst converging on host 0 builds a standing queue on edge
  // 0's down port to it (bottleneck 0 = port target 16 at k=4); the
  // purge-flaps then have a guaranteed backlog to purge.
  ScenarioScript script;
  script.seed = 21;
  ScenarioAction burst;
  burst.kind = ScenarioActionKind::kIncastBurst;
  burst.at = Time::Milliseconds(1) + Time::FromMicroseconds(500);
  burst.flows = 16;
  burst.bytes = 80000;
  script.actions.push_back(burst);
  ScenarioAction down;
  down.kind = ScenarioActionKind::kLinkDown;
  down.at = Time::Milliseconds(2);
  down.target = 16;
  down.drop_queued = true;
  down.repeat = 4;
  down.period = Time::FromMicroseconds(500);
  script.actions.push_back(down);
  ScenarioAction up = down;
  up.kind = ScenarioActionKind::kLinkUp;
  up.at = down.at + Time::FromMicroseconds(250);
  script.actions.push_back(up);
  ScenarioAction reest;
  reest.kind = ScenarioActionKind::kReestimateEcnSharp;
  reest.at = Time::Milliseconds(5);
  script.actions.push_back(reest);
  config.scenario = script;

  const ExperimentResult r = RunFatTree(config);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_NE(r.sketch, nullptr);
  ASSERT_EQ(r.trace->site_count(), 80u);
  ASSERT_EQ(r.sketch->site_count(), 80u);

  TraceSiteCounters total;
  SketchSiteCounters sketch_total;
  for (std::uint16_t s = 0; s < 80; ++s) {
    const TraceSiteCounters& c = r.trace->site_counters(s);
    total.enqueued += c.enqueued;
    total.dequeued += c.dequeued;
    total.purged += c.purged;
    total.marks += c.marks;
    const SketchSiteCounters& sc = r.sketch->site_counters(s);
    sketch_total.enqueued += sc.enqueued;
    sketch_total.dequeued += sc.dequeued;
    sketch_total.marks += sc.marks;
  }
  EXPECT_EQ(total.enqueued, r.bottleneck.enqueued);
  EXPECT_EQ(total.dequeued, r.bottleneck.dequeued);
  EXPECT_EQ(total.purged, r.bottleneck.purged);
  EXPECT_EQ(total.marks, r.bottleneck.ce_marked);
  EXPECT_EQ(sketch_total.enqueued, r.bottleneck.enqueued);
  EXPECT_EQ(sketch_total.dequeued, r.bottleneck.dequeued);
  EXPECT_EQ(sketch_total.marks, r.bottleneck.ce_marked);
  // Drained fabric: the `queued` term of the invariant is zero.
  EXPECT_EQ(r.bottleneck.enqueued, r.bottleneck.dequeued + r.bottleneck.purged);
  EXPECT_GT(r.bottleneck.purged, 0u);  // the flaps really purged a backlog
  EXPECT_EQ(r.scenario_actions, 10u);  // burst + 4 downs + 4 ups + re-estimate
  EXPECT_EQ(r.incast_bursts, 1u);
  EXPECT_EQ(r.flows_completed, 76u);  // 60 workload + 16 burst flows
}

// The same churn timeline against the composed inter-DC fabric's border
// port — the seam where ms-RTT WAN serialization meets purge-flaps — with
// the rest of both sides live behind it. One test per queue disc so each
// drain/purge interleave is pinned independently.
ComposedConfig SoakComposed() {
  ComposedConfig config;
  config.side_a.leaf_spine.spines = 2;
  config.side_a.leaf_spine.leaves = 2;
  config.side_a.leaf_spine.hosts_per_leaf = 3;
  config.side_b = config.side_a;
  config.border_rtt = Time::Milliseconds(2);
  return config;
}

void SoakComposedBorder(
    const std::function<std::unique_ptr<QueueDisc>()>& make_disc) {
  for (const std::uint64_t seed : kSoakSeeds) {
    Simulator sim;
    ComposedTopology topo(sim, SoakComposed(), make_disc);
    EgressPort* border = topo.ResolvePort(-1);
    ASSERT_NE(border, nullptr);
    SoakPort(sim, *border, nullptr, seed);
  }
}

TEST(TraceSoakTest, ComposedBorderFifoInvariantHoldsUnderChurn) {
  SoakComposedBorder(
      [] { return MakeFifoDisc(Scheme::kEcnSharp, SchemeParams()); });
}

TEST(TraceSoakTest, ComposedBorderDwrrInvariantHoldsUnderChurn) {
  SoakComposedBorder([] {
    std::vector<DwrrQueueDisc::ClassConfig> classes(3);
    classes[0].weight = 2;
    classes[1].weight = 1;
    classes[2].weight = 1;
    return std::make_unique<DwrrQueueDisc>(24'000, std::move(classes));
  });
}

TEST(TraceSoakTest, ComposedBorderSpInvariantHoldsUnderChurn) {
  SoakComposedBorder([] {
    std::vector<SpQueueDisc::ClassConfig> classes(3);
    return std::make_unique<SpQueueDisc>(24'000, std::move(classes));
  });
}

// Full-stack composed soak: two live leaf-spine sides over a flapping
// border under a split traffic matrix, with both the flight recorder and
// the sketch telemetry on. The scenario combines border purge-flaps with an
// RTT shift (border propagation change + ECN# re-estimation) — the two
// stressors the inter-DC regime composes. Per-site tallies summed over all
// 38 sites (16 per side + 3 per gateway) must equal the fabric-wide
// aggregates, and the fabric must drain to enqueued == dequeued + purged.
TEST(TraceSoakTest, DynamicInterDcTraceAndSketchAgreeWithHarnessCounters) {
  InterDcExperimentConfig config;
  config.topo = SoakComposed();
  config.topo.border_rtt = Time::FromMicroseconds(400);
  // Oversubscribed border (1G against a 10G fabric): the B->A burst data
  // queues at the seam, so the purge-flaps find a standing backlog there.
  config.topo.border_rate = DataRate::GigabitsPerSecond(1);
  config.flows = 40;
  config.inter_fraction = 0.25;
  config.seed = 5;
  config.trace.enabled = true;
  config.sketch.enabled = true;

  // An incast burst converging on side A's host 0 pulls the side B senders
  // across the border, so the border purge-flaps have a guaranteed backlog.
  ScenarioScript script;
  script.seed = 21;
  ScenarioAction burst;
  burst.kind = ScenarioActionKind::kIncastBurst;
  burst.at = Time::Milliseconds(1) + Time::FromMicroseconds(500);
  burst.flows = 10;
  burst.bytes = 80000;
  script.actions.push_back(burst);
  ScenarioAction down;
  down.kind = ScenarioActionKind::kLinkDown;
  down.at = Time::Milliseconds(2);
  // Gateway B's border egress — the B->A direction carrying the burst data
  // (id 49 = 12 hosts + 32 side bottlenecks + 3 gwA ports + 2 gwB attach
  // downs; gateway A's direction only carries ACKs here).
  down.target = 49;
  down.drop_queued = true;
  down.repeat = 4;
  down.period = Time::FromMicroseconds(500);
  script.actions.push_back(down);
  ScenarioAction up = down;
  up.kind = ScenarioActionKind::kLinkUp;
  up.at = down.at + Time::FromMicroseconds(250);
  script.actions.push_back(up);
  ScenarioAction shift;
  shift.kind = ScenarioActionKind::kSetLinkDelay;
  shift.at = Time::Milliseconds(5);
  shift.target = -1;
  shift.delay_us = 1000.0;  // border one-way 200us -> 1ms mid-run
  script.actions.push_back(shift);
  ScenarioAction reest;
  reest.kind = ScenarioActionKind::kReestimateEcnSharp;
  reest.at = Time::Milliseconds(5) + Time::FromMicroseconds(100);
  script.actions.push_back(reest);
  config.scenario = script;

  const ExperimentResult r = RunInterDc(config);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_NE(r.sketch, nullptr);
  ASSERT_EQ(r.trace->site_count(), 38u);
  ASSERT_EQ(r.sketch->site_count(), 38u);

  TraceSiteCounters total;
  SketchSiteCounters sketch_total;
  for (std::uint16_t s = 0; s < 38; ++s) {
    const TraceSiteCounters& c = r.trace->site_counters(s);
    total.enqueued += c.enqueued;
    total.dequeued += c.dequeued;
    total.purged += c.purged;
    total.marks += c.marks;
    const SketchSiteCounters& sc = r.sketch->site_counters(s);
    sketch_total.enqueued += sc.enqueued;
    sketch_total.dequeued += sc.dequeued;
    sketch_total.marks += sc.marks;
  }
  EXPECT_EQ(total.enqueued, r.bottleneck.enqueued);
  EXPECT_EQ(total.dequeued, r.bottleneck.dequeued);
  EXPECT_EQ(total.purged, r.bottleneck.purged);
  EXPECT_EQ(total.marks, r.bottleneck.ce_marked);
  EXPECT_EQ(sketch_total.enqueued, r.bottleneck.enqueued);
  EXPECT_EQ(sketch_total.dequeued, r.bottleneck.dequeued);
  EXPECT_EQ(sketch_total.marks, r.bottleneck.ce_marked);
  // Drained fabric: the `queued` term of the invariant is zero.
  EXPECT_EQ(r.bottleneck.enqueued, r.bottleneck.dequeued + r.bottleneck.purged);
  EXPECT_GT(r.bottleneck.purged, 0u);  // the flaps really purged a backlog
  EXPECT_EQ(r.scenario_actions, 11u);  // burst + 4 downs + 4 ups + shift + reest
  EXPECT_EQ(r.incast_bursts, 1u);
  EXPECT_EQ(r.flows_completed, 50u);  // 40 workload + 10 burst flows
}

// Two discs drawing from one Dynamic Threshold pool with per-priority
// alphas, under the same purge-flap churn. The pool's books must track the
// union of both discs at every step: used_bytes == the sum of the two
// snapshots, each registered queue's bytes == its disc's snapshot, and each
// disc independently satisfies enqueued == dequeued + purged + queued.
TEST(TraceSoakTest, SharedDtPoolAccountingTracksBothDiscsUnderChurn) {
  for (const std::uint64_t seed : kSoakSeeds) {
    Simulator sim;
    // Small pool + shallow alpha for priority 0: forces refusals on both
    // discs, and admission on one disc shrinks the other's DT limit.
    DynamicThresholdPolicy policy(24'000, 1.0, {0.5, 2.0});
    EgressPort port_a(sim, DataRate::GigabitsPerSecond(1),
                      Time::FromMicroseconds(1),
                      std::make_unique<FifoQueueDisc>(policy, nullptr,
                                                      /*priority=*/0));
    EgressPort port_b(sim, DataRate::GigabitsPerSecond(1),
                      Time::FromMicroseconds(1),
                      std::make_unique<FifoQueueDisc>(policy, nullptr,
                                                      /*priority=*/1));
    NullSink sink;
    port_a.ConnectTo(sink);
    port_b.ConnectTo(sink);
    ASSERT_EQ(policy.queue_count(), 2u);
    ASSERT_EQ(policy.queue_priority(0), 0);
    ASSERT_EQ(policy.queue_priority(1), 1);

    auto check = [&](const char* when) {
      const QueueSnapshot a = port_a.queue_disc().Snapshot();
      const QueueSnapshot b = port_b.queue_disc().Snapshot();
      ASSERT_EQ(policy.used_bytes(), a.bytes + b.bytes) << when;
      ASSERT_EQ(policy.queue_bytes(0), a.bytes) << when;
      ASSERT_EQ(policy.queue_bytes(1), b.bytes) << when;
      for (const EgressPort* port : {&port_a, &port_b}) {
        const QueueDiscStats& stats = port->queue_disc().stats();
        const QueueSnapshot snapshot = port->queue_disc().Snapshot();
        ASSERT_EQ(stats.enqueued,
                  stats.dequeued + stats.purged + snapshot.packets)
            << when;
      }
    };

    Rng rng(seed);
    Time at = Time::Zero();
    for (int step = 0; step < 400; ++step) {
      at = at + Time::FromMicroseconds(1 + rng.UniformInt(20));
      EgressPort& port = rng.UniformInt(2) == 0 ? port_a : port_b;
      const std::uint64_t dice = rng.UniformInt(10);
      if (dice < 6) {
        const std::uint64_t count = 1 + rng.UniformInt(8);
        sim.ScheduleAt(at, [&, count] {
          for (std::uint64_t i = 0; i < count; ++i) {
            port.Enqueue(MakePacket(rng));
          }
          check("after burst");
        });
      } else if (dice < 8) {
        const bool drop_queued = rng.UniformInt(2) == 0;
        sim.ScheduleAt(at, [&, drop_queued] {
          port.LinkDown(drop_queued);
          check("after link down");
        });
      } else {
        sim.ScheduleAt(at, [&] {
          port.LinkUp();
          check("after link up");
        });
      }
    }
    sim.Run();
    port_a.LinkUp();
    port_b.LinkUp();
    sim.Run();
    check("after drain");
    EXPECT_EQ(policy.used_bytes(), 0u) << "seed " << seed;
    // The churn must actually have contended for the pool.
    const QueueDiscStats& stats_a = port_a.queue_disc().stats();
    const QueueDiscStats& stats_b = port_b.queue_disc().stats();
    EXPECT_GT(stats_a.dequeued + stats_b.dequeued, 0u) << "seed " << seed;
    EXPECT_GT(stats_a.dropped_overflow + stats_b.dropped_overflow, 0u)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace ecnsharp
