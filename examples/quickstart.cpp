// Quickstart: build a small datacenter testbed, run the same workload under
// current practice (DCTCP-RED with a tail-RTT threshold) and under ECN#,
// and compare flow completion times.
//
//   $ ./build/examples/quickstart
//
// This is the minimal end-to-end use of the library: a topology, a scheme,
// a workload, and FCT statistics.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/schemes.h"
#include "harness/table.h"

int main() {
  using namespace ecnsharp;

  PrintBanner("ECN# quickstart: 7-sender dumbbell, web search @70% load");

  // One experiment description; we only swap the AQM scheme.
  DumbbellExperimentConfig config;
  config.load = 0.7;           // offered load on the 10G bottleneck
  config.flows = 800;          // Poisson flow arrivals, web search sizes
  config.rtt_variation = 3.0;  // base RTTs span [70, 210] us
  config.seed = 42;

  TablePrinter table({"scheme", "overall avg", "short avg", "short p99",
                      "large avg", "CE marks", "drops"});
  for (const Scheme scheme : {Scheme::kDctcpRedTail, Scheme::kEcnSharp}) {
    config.scheme = scheme;
    const ExperimentResult r = RunDumbbell(config);
    table.AddRow({SchemeName(scheme),
                  TablePrinter::FmtUs(r.overall.avg_us),
                  TablePrinter::FmtUs(r.short_flows.avg_us),
                  TablePrinter::FmtUs(r.short_flows.p99_us),
                  TablePrinter::FmtUs(r.large_flows.avg_us),
                  std::to_string(r.bottleneck.ce_marked),
                  std::to_string(r.bottleneck.dropped_overflow)});
  }
  table.Print();

  std::printf(
      "\nECN# keeps the tail-RTT instantaneous threshold (same throughput "
      "and burst\ntolerance as current practice) but additionally marks on "
      "persistent queue\nbuildups, which is why its short-flow latency is "
      "lower.\n");
  return 0;
}
