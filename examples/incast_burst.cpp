// Incast scenario: 16 senders, long-lived background flows plus a burst of
// concurrent partition/aggregate-style query flows into one receiver —
// the workload that separates burst-tolerant AQMs from conservative ones.
//
//   $ ./build/examples/incast_burst [query_flows]
//
// Prints per-scheme standing queue, burst peak, drops, and query FCT, plus
// a queue-occupancy trace you can plot.
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace ecnsharp;

  const std::size_t query_flows =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 100;
  PrintBanner("Incast burst: 16 -> 1, " + std::to_string(query_flows) +
              " concurrent query flows");

  TablePrinter table({"scheme", "standing q(pkts)", "peak q(pkts)", "drops",
                      "query avg", "query p99", "timeouts"});
  for (const Scheme scheme : {Scheme::kDctcpRedTail, Scheme::kCodel,
                              Scheme::kEcnSharp}) {
    IncastExperimentConfig config;
    config.scheme = scheme;
    config.query_flows = query_flows;
    const IncastResult r = RunIncast(config);
    table.AddRow({SchemeName(scheme),
                  TablePrinter::Fmt(r.standing_queue_packets, 1),
                  std::to_string(r.max_queue_packets),
                  std::to_string(r.drops),
                  TablePrinter::FmtUs(r.query_fct.avg_us),
                  TablePrinter::FmtUs(r.query_fct.p99_us),
                  std::to_string(r.query_timeouts)});
  }
  table.Print();

  std::printf(
      "\nCoDel marks only on persistent congestion, so a synchronized burst "
      "overruns\nthe buffer before it reacts; ECN#'s instantaneous marking "
      "tames the burst\nwhile its persistent marking keeps the standing "
      "queue low.\n");
  return 0;
}
