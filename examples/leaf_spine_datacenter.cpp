// Datacenter-fabric scenario: a leaf-spine topology with ECMP, per-host
// base-RTT variation, and a production workload — the library's large-scale
// simulation mode (paper §5.3).
//
//   $ ./build/examples/leaf_spine_datacenter [flows]
//
// Builds a 4x4 fabric (8 hosts/leaf), injects web-search traffic at 60%
// load, and compares DCTCP-RED-Tail with ECN# fabric-wide.
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace ecnsharp;

  const std::size_t flows =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 1500;
  PrintBanner("Leaf-spine fabric: 4 spine x 4 leaf x 8 hosts, ECMP, "
              "web search @60%");

  TablePrinter table({"scheme", "overall avg", "short avg", "large avg",
                      "fabric CE marks", "fabric drops"});
  for (const Scheme scheme : {Scheme::kDctcpRedTail, Scheme::kEcnSharp}) {
    LeafSpineExperimentConfig config;
    config.scheme = scheme;
    config.params = SimulationSchemeParams();
    config.load = 0.6;
    config.flows = flows;
    config.topo.spines = 4;
    config.topo.leaves = 4;
    config.topo.hosts_per_leaf = 8;
    config.seed = 42;
    const ExperimentResult r = RunLeafSpine(config);
    table.AddRow({SchemeName(scheme),
                  TablePrinter::FmtUs(r.overall.avg_us),
                  TablePrinter::FmtUs(r.short_flows.avg_us),
                  TablePrinter::FmtUs(r.large_flows.avg_us),
                  std::to_string(r.bottleneck.ce_marked),
                  std::to_string(r.bottleneck.dropped_overflow)});
  }
  table.Print();

  std::printf(
      "\nEvery switch egress port in the fabric runs the AQM under test; "
      "base RTTs\nvary per host (80-240 us), so fixed-threshold marking "
      "leaves standing queues\nwherever small-RTT flows dominate a port — "
      "ECN# drains them fabric-wide.\n");
  return 0;
}
