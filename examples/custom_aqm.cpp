// Extending the library: write your own AQM policy and benchmark it
// against ECN# with the standard harness.
//
// The example policy ("HysteresisMark") marks every packet once the sojourn
// time exceeds a high watermark and keeps marking until it falls below a
// low watermark — a two-threshold relay controller. It is intentionally
// simple; the point is the integration surface:
//
//   1. derive from AqmPolicy and implement OnDequeue (sojourn-time signal)
//      and/or AllowEnqueue (queue-length signal);
//   2. wrap it in a FifoQueueDisc (or a scheduler class);
//   3. hand it to a topology and reuse the workload/stats machinery.
#include <cstdio>
#include <memory>

#include "harness/experiment.h"
#include "harness/table.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"
#include "stats/fct_collector.h"
#include "topo/dumbbell.h"
#include "topo/rtt_variation.h"
#include "workload/empirical_cdf.h"
#include "workload/traffic_generator.h"

namespace {

using namespace ecnsharp;

class HysteresisMarkAqm : public AqmPolicy {
 public:
  HysteresisMarkAqm(Time low_watermark, Time high_watermark)
      : low_(low_watermark), high_(high_watermark) {}

  void OnDequeue(Packet& pkt, const QueueSnapshot&, Time,
                 Time sojourn) override {
    if (sojourn > high_) marking_ = true;
    if (sojourn < low_) marking_ = false;
    if (marking_) pkt.MarkCe();
  }

  std::string name() const override { return "hysteresis-mark"; }

 private:
  Time low_;
  Time high_;
  bool marking_ = false;
};

// Runs the web-search workload over a dumbbell with an arbitrary disc.
ExperimentResult RunWithDisc(std::unique_ptr<QueueDisc> disc) {
  Simulator sim;
  DumbbellConfig topo_config;
  Dumbbell topo(sim, topo_config, std::move(disc));
  topo.SetSenderExtraDelays(
      RttExtraQuantiles(topo.sender_count(), Time::FromMicroseconds(140)));

  FctCollector collector;
  TrafficConfig traffic;
  traffic.load = 0.6;
  traffic.flow_count = 500;
  const std::uint32_t receiver = topo.receiver_address();
  TrafficGenerator generator(
      sim, WebSearchWorkload(), traffic,
      [&topo, receiver](Rng& rng) {
        return std::make_pair(
            &topo.sender_stack(rng.UniformInt(topo.sender_count())),
            receiver);
      },
      [&collector](const FlowRecord& r) { collector.Record(r); }, Rng(42));
  generator.Start();
  while (!generator.AllDone() && sim.Now() < Time::Seconds(60)) {
    sim.RunFor(Time::Milliseconds(10));
  }
  ExperimentResult result;
  result.overall = collector.Overall();
  result.short_flows = collector.ShortFlows();
  result.large_flows = collector.LargeFlows();
  return result;
}

}  // namespace

int main() {
  PrintBanner("Custom AQM example: hysteresis relay vs ECN#");

  const SchemeParams params;  // paper testbed defaults
  TablePrinter table(
      {"policy", "overall avg", "short avg", "short p99", "large avg"});
  const auto add = [&table](const char* name, const ExperimentResult& r) {
    table.AddRow({name, TablePrinter::FmtUs(r.overall.avg_us),
                  TablePrinter::FmtUs(r.short_flows.avg_us),
                  TablePrinter::FmtUs(r.short_flows.p99_us),
                  TablePrinter::FmtUs(r.large_flows.avg_us)});
  };

  add("hysteresis 60/200us",
      RunWithDisc(std::make_unique<FifoQueueDisc>(
          params.buffer_bytes,
          std::make_unique<HysteresisMarkAqm>(Time::FromMicroseconds(60),
                                              Time::FromMicroseconds(200)))));
  add("ECN# (paper config)",
      RunWithDisc(MakeFifoDisc(Scheme::kEcnSharp, params)));
  table.Print();

  std::printf(
      "\nThe relay controller is competitive at this load but has no burst "
      "tolerance\nstory (try it in examples/incast_burst's setup). The "
      "point: a new policy is\n~20 lines, and every workload/topology/"
      "metric in the library applies to it.\n");
  return 0;
}
