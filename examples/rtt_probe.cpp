// RTT-variation probe: measure how host-path processing components (SLB,
// hypervisor, loaded stack) inflate and spread the base RTT — the §2.2
// motivation experiment as a runnable app.
//
//   $ ./build/examples/rtt_probe [requests]
#include <cstdio>
#include <cstdlib>

#include "harness/table.h"
#include "hostpath/rtt_probe.h"

int main(int argc, char** argv) {
  using namespace ecnsharp;

  const std::size_t requests =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 1000;
  PrintBanner("Host-path RTT probe (" + std::to_string(requests) +
              " RPCs per case)");

  TablePrinter table({"processing components", "mean(us)", "std", "p90",
                      "p99", "vs fast path"});
  double first_mean = 0.0;
  for (const RttCaseSpec& spec : Table1Cases()) {
    const RttStats stats = RunRttProbe(spec, requests, /*seed=*/7);
    if (first_mean == 0.0) first_mean = stats.mean_us;
    table.AddRow({spec.name, TablePrinter::Fmt(stats.mean_us, 1),
                  TablePrinter::Fmt(stats.std_us, 1),
                  TablePrinter::Fmt(stats.p90_us, 1),
                  TablePrinter::Fmt(stats.p99_us, 1),
                  TablePrinter::Fmt(stats.mean_us / first_mean, 2) + "x"});
  }
  table.Print();

  std::printf(
      "\nAn ECN threshold sized for the fast path starves the slow-path "
      "flows; one\nsized for the slow path leaves the fast-path flows "
      "queueing. ECN# (see\nexamples/quickstart.cpp) resolves exactly this "
      "dilemma.\n");
  return 0;
}
