// perf_gate: CI guard comparing a perf_core run against a committed
// baseline.
//
//   perf_gate <baseline.json> <current.json> <max_regression_pct>
//
// Compares the three deterministic throughput metrics perf_core emits
// (event_churn.events_per_sec, event_cancel_churn.events_per_sec,
// packet_path.packets_per_sec). Exits 0 when every metric is within
// `max_regression_pct` percent of the baseline (improvements always pass),
// 1 when any metric regressed past the threshold, 2 on bad arguments or
// unreadable/malformed input. The paper's "tracing must cost <2% when
// disabled" acceptance bar runs through this gate.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/json.h"

namespace {

using ecnsharp::Json;

struct Metric {
  const char* section;
  const char* field;
};

constexpr Metric kMetrics[] = {
    {"event_churn", "events_per_sec"},
    {"event_cancel_churn", "events_per_sec"},
    {"packet_path", "packets_per_sec"},
};

bool LoadJson(const char* path, Json* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_gate: cannot read %s\n", path);
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  if (!Json::Parse(text.str(), out, &error)) {
    std::fprintf(stderr, "perf_gate: %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

// Returns the metric or a negative value when missing.
double Lookup(const Json& doc, const Metric& metric) {
  const Json* metrics = doc.Find("metrics");
  if (metrics == nullptr) return -1.0;
  const Json* section = metrics->Find(metric.section);
  if (section == nullptr) return -1.0;
  const Json* field = section->Find(metric.field);
  if (field == nullptr) return -1.0;
  return field->AsDouble(-1.0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: perf_gate <baseline.json> <current.json> "
                 "<max_regression_pct>\n");
    return 2;
  }
  char* end = nullptr;
  const double threshold_pct = std::strtod(argv[3], &end);
  if (end == argv[3] || *end != '\0' || threshold_pct < 0.0) {
    std::fprintf(stderr, "perf_gate: bad threshold '%s'\n", argv[3]);
    return 2;
  }

  Json baseline;
  Json current;
  if (!LoadJson(argv[1], &baseline) || !LoadJson(argv[2], &current)) return 2;

  bool failed = false;
  for (const Metric& metric : kMetrics) {
    const double base = Lookup(baseline, metric);
    const double now = Lookup(current, metric);
    if (base <= 0.0 || now <= 0.0) {
      std::fprintf(stderr, "perf_gate: metric %s.%s missing or non-positive\n",
                   metric.section, metric.field);
      return 2;
    }
    const double delta_pct = (now - base) / base * 100.0;
    const bool ok = delta_pct >= -threshold_pct;
    std::printf("%-22s %14.0f -> %14.0f  %+7.2f%%  %s\n", metric.section, base,
                now, delta_pct, ok ? "ok" : "REGRESSED");
    failed = failed || !ok;
  }
  if (failed) {
    std::fprintf(stderr, "perf_gate: regression beyond %.2f%% threshold\n",
                 threshold_pct);
    return 1;
  }
  return 0;
}
