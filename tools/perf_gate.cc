// perf_gate: CI guard comparing a perf_core run against a committed
// baseline.
//
//   perf_gate <baseline.json> <current.json> <max_regression_pct>
//
// Discovers the deterministic throughput metrics from the documents
// themselves: every `metrics.<section>.<field>` where the field name ends
// in `_per_sec` is gated (event_churn.events_per_sec,
// packet_path.packets_per_sec, ...), so a new bench section added to
// perf_core is picked up without touching this tool. Exits 0 when every
// shared metric is within `max_regression_pct` percent of the baseline
// (improvements always pass), 1 when any metric regressed past the
// threshold, 2 on bad arguments, unreadable/malformed input, or a baseline
// metric that vanished from the current run. A metric present only in the
// current run (new bench, baseline not yet regenerated) passes with a
// note — a freshly added benchmark must not fail CI for lacking history.
// The paper's "tracing must cost <2% when disabled" acceptance bar runs
// through this gate.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json.h"

namespace {

using ecnsharp::Json;

struct Metric {
  std::string section;
  std::string field;
  std::string name() const { return section + "." + field; }
};

bool LoadJson(const char* path, Json* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_gate: cannot read %s\n", path);
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  if (!Json::Parse(text.str(), out, &error)) {
    std::fprintf(stderr, "perf_gate: %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// All throughput-style metrics in `doc`, in document order.
std::vector<Metric> DiscoverMetrics(const Json& doc) {
  std::vector<Metric> out;
  const Json* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->IsObject()) return out;
  for (const auto& [section, body] : metrics->members()) {
    if (!body.IsObject()) continue;
    for (const auto& [field, value] : body.members()) {
      if (EndsWith(field, "_per_sec") && value.IsNumber()) {
        out.push_back(Metric{section, field});
      }
    }
  }
  return out;
}

// Returns the metric or a negative value when missing.
double Lookup(const Json& doc, const Metric& metric) {
  const Json* metrics = doc.Find("metrics");
  if (metrics == nullptr) return -1.0;
  const Json* section = metrics->Find(metric.section);
  if (section == nullptr) return -1.0;
  const Json* field = section->Find(metric.field);
  if (field == nullptr) return -1.0;
  return field->AsDouble(-1.0);
}

// Throughput metrics span packets/sec (1e8) down to fat-tree sim-to-wall
// ratios (1e-2); pick a precision that keeps both readable.
std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), v < 1000.0 ? "%.4f" : "%.0f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: perf_gate <baseline.json> <current.json> "
                 "<max_regression_pct>\n");
    return 2;
  }
  char* end = nullptr;
  const double threshold_pct = std::strtod(argv[3], &end);
  if (end == argv[3] || *end != '\0' || threshold_pct < 0.0) {
    std::fprintf(stderr, "perf_gate: bad threshold '%s'\n", argv[3]);
    return 2;
  }

  Json baseline;
  Json current;
  if (!LoadJson(argv[1], &baseline) || !LoadJson(argv[2], &current)) return 2;

  // The baseline defines what must not regress; the current run may add
  // metrics on top of it but must not lose any.
  const std::vector<Metric> gated = DiscoverMetrics(baseline);
  if (gated.empty()) {
    std::fprintf(stderr, "perf_gate: no *_per_sec metrics in %s\n", argv[1]);
    return 2;
  }

  // Full delta table on pass and fail alike: BENCH trajectory reviews read
  // the gate's CI output instead of re-running the bench.
  std::printf("%-28s %14s    %14s  %8s  %s\n", "metric", "baseline",
              "current", "delta", "status");
  bool failed = false;
  for (const Metric& metric : gated) {
    const double base = Lookup(baseline, metric);
    const double now = Lookup(current, metric);
    if (base <= 0.0) {
      std::fprintf(stderr, "perf_gate: baseline metric %s non-positive\n",
                   metric.name().c_str());
      return 2;
    }
    if (now <= 0.0) {
      std::fprintf(stderr,
                   "perf_gate: metric %s missing or non-positive in current "
                   "run\n",
                   metric.name().c_str());
      return 2;
    }
    const double delta_pct = (now - base) / base * 100.0;
    const bool ok = delta_pct >= -threshold_pct;
    std::printf("%-28s %14s -> %14s  %+7.2f%%  %s\n", metric.name().c_str(),
                FormatValue(base).c_str(), FormatValue(now).c_str(), delta_pct,
                ok ? "ok" : "REGRESSED");
    failed = failed || !ok;
  }

  // Metrics only the current run knows about: report, never gate.
  for (const Metric& metric : DiscoverMetrics(current)) {
    const double base = Lookup(baseline, metric);
    if (base > 0.0) continue;  // shared with the baseline, handled above
    const double now = Lookup(current, metric);
    std::printf("%-28s %14s -> %14s  %7s  NEW (no baseline)\n",
                metric.name().c_str(), "-", FormatValue(now).c_str(), "-");
  }

  if (failed) {
    std::fprintf(stderr, "perf_gate: regression beyond %.2f%% threshold\n",
                 threshold_pct);
    return 1;
  }
  std::printf("perf_gate: %zu metric(s) within %.2f%% of baseline\n",
              gated.size(), threshold_pct);
  return 0;
}
