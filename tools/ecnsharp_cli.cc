// ecnsharp_cli — run any experiment from the command line.
//
//   ecnsharp_cli --topo=dumbbell --scheme=ecn-sharp --workload=websearch
//                --load=0.6 --flows=1000 --variation=3 --seed=1
//   ecnsharp_cli --topo=leafspine --scheme=dctcp-red-tail --load=0.4
//   ecnsharp_cli --topo=incast --scheme=codel --fanout=100
//   ecnsharp_cli --sweep=load:10..90:10 --jobs=8 --flows=2000
//
// Prints the experiment's FCT breakdown (or incast metrics) as a table.
// With --sweep, runs the whole grid through the parallel runner and also
// exports results/<name>.json. Run with --help for all options.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/config_json.h"
#include "harness/experiment.h"
#include "harness/relaxed_lanes.h"
#include "harness/sketch_export.h"
#include "harness/table.h"
#include "harness/trace_export.h"
#include "runner/job.h"
#include "runner/json_export.h"
#include "runner/sweep.h"
#include "trace/trace_config.h"
#include "trace/trace_recorder.h"
#include "workload/empirical_cdf.h"

namespace {

using namespace ecnsharp;

[[noreturn]] void FlagError(const std::string& key, const std::string& value,
                            const char* expected) {
  std::fprintf(stderr, "invalid value for --%s: '%s' (expected %s)\n",
               key.c_str(), value.c_str(), expected);
  std::exit(2);
}

double ParseDoubleOrDie(const std::string& key, const std::string& value) {
  const char* begin = value.c_str();
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || errno == ERANGE) {
    FlagError(key, value, "a number");
  }
  return parsed;
}

std::uint64_t ParseU64OrDie(const std::string& key, const std::string& value) {
  const char* begin = value.c_str();
  // strtoull silently accepts "-1" by wrapping; reject any sign explicitly.
  if (*begin == '-' || *begin == '+') {
    FlagError(key, value, "a non-negative integer");
  }
  char* end = nullptr;
  errno = 0;
  const std::uint64_t parsed = std::strtoull(begin, &end, 10);
  if (end == begin || *end != '\0' || errno == ERANGE) {
    FlagError(key, value, "a non-negative integer");
  }
  return parsed;
}

struct Flags {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.contains(key); }
  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : ParseDoubleOrDie(key, it->second);
  }
  std::uint64_t GetU64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : ParseU64OrDie(key, it->second);
  }
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values[arg] = "1";
    } else {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

// --scenario accepts either a path to a JSON script or the script inline
// (a value starting with '{'). Any parse or validation failure is fatal:
// a silently-ignored scenario would make "static" results look dynamic.
ScenarioScript LoadScenarioOrDie(const std::string& value) {
  std::string text = value;
  if (value.empty() || value[0] != '{') {
    std::ifstream in(value);
    if (!in) {
      std::fprintf(stderr, "cannot read --scenario file '%s'\n",
                   value.c_str());
      std::exit(2);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  ScenarioScript script;
  std::string error;
  if (!ParseScenarioScript(text, &script, &error)) {
    std::fprintf(stderr, "invalid --scenario script: %s\n", error.c_str());
    std::exit(2);
  }
  return script;
}

int Usage() {
  std::printf(
      "ecnsharp_cli — run an ECN# experiment\n\n"
      "  --topo=dumbbell|leafspine|fattree|interdc|incast\n"
      "                                     topology (default dumbbell)\n"
      "  --topology=dumbbell|leafspine|fattree|interdc\n"
      "                                     alias of --topo for the\n"
      "                                     scenario-capable topologies;\n"
      "                                     overrides --topo when both are\n"
      "                                     given\n"
      "  --border-rtt-us=<us>               interdc: extra round-trip of each\n"
      "                                     border link, in [0, 10000000]\n"
      "                                     (default 2000)\n"
      "  --border-gbps=<g>                  interdc: per-border-link rate\n"
      "                                     (default 10)\n"
      "  --border-links=<n >= 1>            interdc: parallel border links\n"
      "                                     (default 1)\n"
      "  --inter-fraction=<0..1>            interdc: fraction of flows that\n"
      "                                     cross the border (default 0.1)\n"
      "  --inter-workload=websearch|datamining\n"
      "                                     interdc: size distribution of\n"
      "                                     the cross-border flows (default\n"
      "                                     datamining)\n"
      "  --k=<even n>=4>                    fat-tree arity: k^3/4 hosts\n"
      "                                     (default 8 -> 128 hosts)\n"
      "  --rate-gbps=<g>                    fat-tree link rate (default 10)\n"
      "  --host-delay-us=<us>               fat-tree host<->edge hop delay\n"
      "                                     (default 10)\n"
      "  --fabric-delay-us=<us>             fat-tree switch<->switch hop\n"
      "                                     delay (default 10)\n"
      "  --relaxed-lanes=<n>                fat-tree only: execute pods on\n"
      "                                     n >= 2 event lanes (threads)\n"
      "                                     under the conservative-window\n"
      "                                     scheme. Deterministic for a\n"
      "                                     given config+n but not\n"
      "                                     byte-comparable with the\n"
      "                                     single-lane run; rejects\n"
      "                                     --scenario/--trace/--sketch\n"
      "  --scheme=<name>                    dctcp-red-tail, dctcp-red-avg,\n"
      "                                     codel, tcn, ecn-sharp,\n"
      "                                     ecn-sharp-tofino, droptail, pie,\n"
      "                                     ecn-sharp-inst-only,\n"
      "                                     ecn-sharp-pst-only\n"
      "  --workload=websearch|datamining    flow size distribution\n"
      "  --load=<0..1>                      offered load (default 0.5)\n"
      "  --flows=<n>                        flow count (default 1000)\n"
      "  --variation=<k>                    RTT variation factor (default 3)\n"
      "  --fanout=<n>                       incast query flows (default "
      "100)\n"
      "  --seed=<n>                         RNG seed (default 1)\n"
      "  --sim-params                       use the paper's simulation\n"
      "                                     parameter preset (§5.3)\n"
      "  --scenario=<file.json|{inline}>    mid-run network dynamics script\n"
      "                                     (link churn, loss injection,\n"
      "                                     RTT shifts, incast bursts) for\n"
      "                                     dumbbell or leafspine; see\n"
      "                                     docs/extending.md. Single runs\n"
      "                                     with a scenario also export\n"
      "                                     results/<name>.json\n"
      "  --sweep=<param:lo..hi:step[,...]>  run a grid instead of a single\n"
      "                                     experiment; params: load (in\n"
      "                                     percent), flows, variation,\n"
      "                                     fanout, seed. Example:\n"
      "                                     --sweep=load:10..90:10\n"
      "  --jobs=<n>                         worker threads for --sweep\n"
      "                                     (default $ECNSHARP_JOBS or 1)\n"
      "  --name=<name>                      sweep name; JSON lands in\n"
      "                                     results/<name>.json (default\n"
      "                                     cli_sweep)\n"
      "  --trace=<spec>                     flight-recorder tracing for a\n"
      "                                     single run (not --sweep). Spec is\n"
      "                                     'on' or comma-separated terms:\n"
      "                                     events:<n>, points:<n>,\n"
      "                                     queue:on|off, flows:on|off; see\n"
      "                                     docs/observability.md\n"
      "  --trace-out=<path>                 trace destination (default\n"
      "                                     results/<name>_trace.json; a\n"
      "                                     .csv suffix exports the flat\n"
      "                                     event table instead)\n"
      "  --sketch=<spec>                    bounded-memory sketch telemetry\n"
      "                                     for a single run (not --sweep).\n"
      "                                     Spec is 'on' or comma-separated\n"
      "                                     terms: mem:<kb>, depth:<d>,\n"
      "                                     epoch:<us>, window:<n>,\n"
      "                                     decay:<pct>, hh:<k>,\n"
      "                                     exact:on|off; see\n"
      "                                     docs/observability.md\n"
      "  --sketch-out=<path>                telemetry destination (default\n"
      "                                     results/<name>_sketch.json)\n"
      "  --estimator=oracle|sketch          measurement source for scenario\n"
      "                                     ECN# re-estimation actions\n"
      "                                     (default oracle; sketch needs\n"
      "                                     --sketch)\n"
      "  --cc-mix=<0..1>                    fraction of flows driven by\n"
      "                                     CUBIC instead of the default\n"
      "                                     DCTCP sender (default 0; not\n"
      "                                     incast)\n"
      "  --buffer-policy=static|dt|dt-headroom\n"
      "                                     shared-buffer policy per switch\n"
      "                                     chip replacing static per-port\n"
      "                                     buffers (default: none; not\n"
      "                                     incast)\n"
      "  --buffer-kb=<kb>                   shared pool size per chip in KB\n"
      "                                     (default: queue count x the\n"
      "                                     per-port buffer); requires\n"
      "                                     --buffer-policy\n"
      "  --alpha=<a>                        dynamic-threshold alpha\n"
      "                                     (default 1); requires\n"
      "                                     --buffer-policy\n"
      "  --help                             this text\n");
  return 0;
}

bool ParseScheme(const std::string& name, Scheme& out) {
  static const std::map<std::string, Scheme> kNames = {
      {"dctcp-red-tail", Scheme::kDctcpRedTail},
      {"dctcp-red-avg", Scheme::kDctcpRedAvg},
      {"codel", Scheme::kCodel},
      {"tcn", Scheme::kTcn},
      {"ecn-sharp", Scheme::kEcnSharp},
      {"ecn-sharp-tofino", Scheme::kEcnSharpTofino},
      {"droptail", Scheme::kDropTail},
      {"pie", Scheme::kPie},
      {"ecn-sharp-inst-only", Scheme::kEcnSharpInstOnly},
      {"ecn-sharp-pst-only", Scheme::kEcnSharpPstOnly},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end()) return false;
  out = it->second;
  return true;
}

void PrintFctResult(const ExperimentResult& r) {
  TablePrinter table({"metric", "count", "avg(us)", "p50(us)", "p90(us)",
                      "p99(us)", "max(us)"});
  const auto row = [&table](const char* name, const FctSummary& s) {
    table.AddRow({name, std::to_string(s.count),
                  TablePrinter::Fmt(s.avg_us, 1),
                  TablePrinter::Fmt(s.p50_us, 1),
                  TablePrinter::Fmt(s.p90_us, 1),
                  TablePrinter::Fmt(s.p99_us, 1),
                  TablePrinter::Fmt(s.max_us, 1)});
  };
  row("overall", r.overall);
  row("short (<100KB)", r.short_flows);
  row("large (>10MB)", r.large_flows);
  if (r.cubic_fct.count != 0 || r.newreno_fct.count != 0) {
    row("cubic flows", r.cubic_fct);
    row("newreno flows", r.newreno_fct);
  }
  // Split traffic-matrix rows exist only for inter-DC composed runs.
  if (r.intra_fct.count != 0 || r.inter_fct.count != 0) {
    row("intra-DC", r.intra_fct);
    row("intra-DC short", r.intra_short_fct);
    row("inter-DC", r.inter_fct);
    row("inter-DC short", r.inter_short_fct);
  }
  table.Print();
  std::printf(
      "flows: %zu/%zu completed  timeouts: %llu  CE marks: %llu  drops: "
      "%llu  sim time: %.3fs\n",
      r.flows_completed, r.flows_started,
      static_cast<unsigned long long>(r.timeouts),
      static_cast<unsigned long long>(r.bottleneck.ce_marked),
      static_cast<unsigned long long>(r.bottleneck.dropped_overflow),
      r.sim_seconds);
  if (r.scenario_actions > 0) {
    std::printf(
        "scenario: %llu actions (%llu incast bursts, %zu/%zu burst flows)  "
        "injected drops: %llu  corruptions: %llu  link-down drops: %llu\n",
        static_cast<unsigned long long>(r.scenario_actions),
        static_cast<unsigned long long>(r.incast_bursts),
        r.burst_flows_completed, r.burst_flows_started,
        static_cast<unsigned long long>(r.injected_drops),
        static_cast<unsigned long long>(r.injected_corruptions),
        static_cast<unsigned long long>(r.link_down_drops));
  }
}

// Scenario runs go through the runner so the full record (config + scenario
// + dynamics counters) lands in results/<name>.json, byte-identical to what
// a sweep over the same point would export. Returns the job result so the
// caller can reach per-run extras (the flight-recorder trace).
template <typename Config>
runner::JobResult RunSingleViaRunner(const Flags& flags, Scheme scheme,
                                     const Config& config) {
  const std::string name = flags.Get("name", "cli_run");
  std::vector<runner::JobSpec> specs;
  specs.push_back({std::string(SchemeName(scheme)), config});
  runner::SweepOptions options;
  options.label = name;
  std::vector<runner::JobResult> results = runner::RunJobs(specs, options);
  runner::ExportSweep(name, specs, results);
  PrintFctResult(runner::FctResult(results[0]));
  return std::move(results[0]);
}

// Writes the trace collected by a single run to --trace-out (default
// results/<name>_trace.json; a .csv suffix selects the flat event table).
// A null trace means the run never created a recorder — fatal, since the
// user explicitly asked for one.
void ExportTraceOrDie(const Flags& flags,
                      const std::shared_ptr<const TraceRecorder>& trace) {
  if (trace == nullptr) {
    std::fprintf(stderr, "--trace produced no trace (internal error)\n");
    std::exit(1);
  }
  const std::string name = flags.Get("name", "cli_run");
  const std::string path =
      flags.Get("trace-out", "results/" + name + "_trace.json");
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  bool ok = false;
  if (csv) {
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    std::error_code ec;
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out << TraceToCsv(*trace);
      ok = out.good();
    }
  } else {
    ok = runner::WriteJsonFile(path, TraceToJson(*trace));
  }
  if (!ok) {
    std::fprintf(stderr, "cannot write --trace-out file '%s'\n", path.c_str());
    std::exit(1);
  }
  std::printf("trace: %llu events (%llu retained) -> %s\n",
              static_cast<unsigned long long>(trace->total_events()),
              static_cast<unsigned long long>(trace->total_events() -
                                              trace->overwritten()),
              path.c_str());
}

// Writes the sketch telemetry of a single run to --sketch-out (default
// results/<name>_sketch.json). Windowed views are queried at the
// telemetry's last observation time.
void ExportSketchOrDie(const Flags& flags,
                       const std::shared_ptr<const SketchTelemetry>& sketch) {
  if (sketch == nullptr) {
    std::fprintf(stderr, "--sketch produced no telemetry (internal error)\n");
    std::exit(1);
  }
  const std::string name = flags.Get("name", "cli_run");
  const std::string path =
      flags.Get("sketch-out", "results/" + name + "_sketch.json");
  if (!runner::WriteJsonFile(path,
                             SketchToJson(*sketch, sketch->last_update()))) {
    std::fprintf(stderr, "cannot write --sketch-out file '%s'\n",
                 path.c_str());
    std::exit(1);
  }
  std::printf("sketch: %llu packets, %zu KiB flow state -> %s\n",
              static_cast<unsigned long long>(sketch->packets_observed()),
              sketch->FlowSketchMemoryBytes() / 1024, path.c_str());
}

// Fat-tree shape/link knobs shared by single-run and sweep mode. The arity
// is validated here so a bad --k fails at flag-parse time with the CLI's
// usual exit 2 (the FatTree constructor would also reject it).
FatTreeConfig FatTreeConfigFromFlags(const Flags& flags) {
  FatTreeConfig topo;
  topo.k = flags.GetU64("k", 8);
  if (topo.k < 4 || topo.k % 2 != 0) {
    FlagError("k", flags.Get("k", ""), "an even integer >= 4");
  }
  topo.rate = DataRate::GigabitsPerSecond(flags.GetDouble("rate-gbps", 10.0));
  topo.host_link_delay =
      Time::FromMicroseconds(flags.GetDouble("host-delay-us", 10.0));
  topo.fabric_link_delay =
      Time::FromMicroseconds(flags.GetDouble("fabric-delay-us", 10.0));
  return topo;
}

// Inter-DC composed-fabric knobs shared by single-run and sweep mode. Border
// numbers are validated here so a bad flag fails at parse time with the
// CLI's usual exit 2 (the ComposedTopology constructor would also reject
// them, with the same status).
InterDcExperimentConfig InterDcConfigFromFlags(const Flags& flags,
                                               const EmpiricalCdf* workload) {
  InterDcExperimentConfig config;
  config.workload = workload;
  const std::string inter_workload = flags.Get("inter-workload", "datamining");
  if (inter_workload == "websearch") {
    config.inter_workload = &WebSearchWorkload();
  } else if (inter_workload == "datamining") {
    config.inter_workload = &DataMiningWorkload();
  } else {
    FlagError("inter-workload", inter_workload, "websearch or datamining");
  }
  config.inter_fraction = flags.GetDouble("inter-fraction", 0.1);
  if (config.inter_fraction < 0.0 || config.inter_fraction > 1.0) {
    FlagError("inter-fraction", flags.Get("inter-fraction", ""),
              "a fraction in [0, 1]");
  }
  config.topo.border_links = flags.GetU64("border-links", 1);
  if (config.topo.border_links < 1) {
    FlagError("border-links", flags.Get("border-links", ""),
              "an integer >= 1");
  }
  const double border_gbps = flags.GetDouble("border-gbps", 10.0);
  if (border_gbps <= 0.0) {
    FlagError("border-gbps", flags.Get("border-gbps", ""),
              "a positive rate in Gbit/s");
  }
  config.topo.border_rate = DataRate::GigabitsPerSecond(border_gbps);
  const double border_rtt_us = flags.GetDouble("border-rtt-us", 2000.0);
  if (border_rtt_us < 0.0 || border_rtt_us > 10'000'000.0) {
    FlagError("border-rtt-us", flags.Get("border-rtt-us", ""),
              "microseconds in [0, 10000000]");
  }
  config.topo.border_rtt = Time::FromMicroseconds(border_rtt_us);
  return config;
}

// Mixed-CC share, shared by single-run and sweep mode; validated to [0, 1].
double CcMixFromFlags(const Flags& flags) {
  const double mix = flags.GetDouble("cc-mix", 0.0);
  if (mix < 0.0 || mix > 1.0) {
    FlagError("cc-mix", flags.Get("cc-mix", ""), "a fraction in [0, 1]");
  }
  return mix;
}

// Shared-buffer policy knobs. --buffer-kb and --alpha only make sense with a
// policy selected, so naming them alone is a config error, not a silent
// no-op.
BufferPolicyConfig BufferPolicyFromFlags(const Flags& flags) {
  BufferPolicyConfig policy;
  if (flags.Has("buffer-policy")) {
    const std::string value = flags.Get("buffer-policy", "");
    const std::optional<BufferPolicyKind> kind = ParseBufferPolicyKind(value);
    if (!kind.has_value() || *kind == BufferPolicyKind::kNone) {
      FlagError("buffer-policy", value, "static, dt or dt-headroom");
    }
    policy.kind = *kind;
  } else if (flags.Has("buffer-kb") || flags.Has("alpha")) {
    std::fprintf(stderr, "--buffer-kb/--alpha require --buffer-policy\n");
    std::exit(2);
  }
  policy.total_bytes = flags.GetU64("buffer-kb", 0) * 1024;
  policy.alpha = flags.GetDouble("alpha", 1.0);
  if (policy.alpha <= 0.0) {
    FlagError("alpha", flags.Get("alpha", ""), "a positive number");
  }
  return policy;
}

// One swept parameter: `load:10..90:10` expands to {10, 20, ..., 90}.
struct SweepAxis {
  std::string param;
  std::vector<double> values;
};

[[noreturn]] void SweepError(const std::string& spec, const char* why) {
  std::fprintf(stderr,
               "invalid --sweep term '%s': %s\n"
               "expected param:start..end:step, e.g. load:10..90:10\n",
               spec.c_str(), why);
  std::exit(2);
}

SweepAxis ParseSweepAxis(const std::string& spec) {
  const std::size_t colon1 = spec.find(':');
  if (colon1 == std::string::npos) SweepError(spec, "missing ':'");
  const std::size_t dots = spec.find("..", colon1 + 1);
  if (dots == std::string::npos) SweepError(spec, "missing '..' range");
  const std::size_t colon2 = spec.find(':', dots + 2);
  if (colon2 == std::string::npos) SweepError(spec, "missing ':step'");

  SweepAxis axis;
  axis.param = spec.substr(0, colon1);
  static const char* kParams[] = {"load", "flows", "variation", "fanout",
                                  "seed"};
  bool known = false;
  for (const char* p : kParams) known = known || axis.param == p;
  if (!known) SweepError(spec, "unknown parameter");

  const double start =
      ParseDoubleOrDie("sweep", spec.substr(colon1 + 1, dots - colon1 - 1));
  const double end =
      ParseDoubleOrDie("sweep", spec.substr(dots + 2, colon2 - dots - 2));
  const double step = ParseDoubleOrDie("sweep", spec.substr(colon2 + 1));
  if (step <= 0) SweepError(spec, "step must be > 0");
  if (end < start) SweepError(spec, "end must be >= start");
  // Epsilon absorbs accumulated floating-point error on non-integer steps.
  for (double v = start; v <= end + step * 1e-9; v += step) {
    axis.values.push_back(v);
  }
  return axis;
}

std::vector<SweepAxis> ParseSweep(const std::string& value) {
  std::vector<SweepAxis> axes;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    axes.push_back(ParseSweepAxis(value.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return axes;
}

// Human-readable value for job names: integers print without a decimal.
std::string FmtValue(double v) {
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  return TablePrinter::Fmt(v, 3);
}

struct GridPoint {
  std::string name;  // "load=30,variation=5"
  std::map<std::string, double> overrides;
};

std::vector<GridPoint> ExpandGrid(const std::vector<SweepAxis>& axes) {
  std::vector<GridPoint> points = {{"", {}}};
  for (const SweepAxis& axis : axes) {
    std::vector<GridPoint> next;
    for (const GridPoint& base : points) {
      for (const double v : axis.values) {
        GridPoint point = base;
        if (!point.name.empty()) point.name += ",";
        point.name += axis.param + "=" + FmtValue(v);
        point.overrides[axis.param] = v;
        next.push_back(std::move(point));
      }
    }
    points = std::move(next);
  }
  return points;
}

int RunSweepMode(const Flags& flags, const std::string& topo, Scheme scheme,
                 const EmpiricalCdf* workload,
                 const ScenarioScript& scenario) {
  const std::vector<SweepAxis> axes = ParseSweep(flags.Get("sweep", ""));
  for (const SweepAxis& axis : axes) {
    const bool incast_param = axis.param == "fanout";
    if (topo == "incast" && (axis.param == "load" || axis.param == "flows" ||
                             axis.param == "variation")) {
      std::fprintf(stderr, "--sweep param '%s' does not apply to --topo=%s\n",
                   axis.param.c_str(), topo.c_str());
      return 2;
    }
    if (topo != "incast" && incast_param) {
      std::fprintf(stderr, "--sweep param '%s' does not apply to --topo=%s\n",
                   axis.param.c_str(), topo.c_str());
      return 2;
    }
    if ((topo == "leafspine" || topo == "fattree" || topo == "interdc") &&
        axis.param == "variation") {
      std::fprintf(stderr,
                   "--sweep param 'variation' does not apply to --topo=%s\n",
                   topo.c_str());
      return 2;
    }
  }

  const double cc_mix = CcMixFromFlags(flags);
  const BufferPolicyConfig buffer_policy = BufferPolicyFromFlags(flags);

  std::vector<runner::JobSpec> specs;
  for (const GridPoint& point : ExpandGrid(axes)) {
    const auto value = [&point](const char* param, double fallback) {
      const auto it = point.overrides.find(param);
      return it == point.overrides.end() ? fallback : it->second;
    };
    runner::JobSpec spec;
    spec.name = point.name;
    if (topo == "dumbbell") {
      DumbbellExperimentConfig config;
      config.scheme = scheme;
      if (flags.Has("sim-params")) config.params = SimulationSchemeParams();
      config.workload = workload;
      // Sweep loads are in percent (load:10..90:10); single-run --load=0..1.
      config.load = value("load", flags.GetDouble("load", 0.5) * 100) / 100;
      config.flows = static_cast<std::size_t>(
          value("flows", static_cast<double>(flags.GetU64("flows", 1000))));
      config.rtt_variation =
          value("variation", flags.GetDouble("variation", 3.0));
      config.seed = static_cast<std::uint64_t>(
          value("seed", static_cast<double>(flags.GetU64("seed", 1))));
      config.scenario = scenario;
      config.cc_mix = cc_mix;
      config.buffer_policy = buffer_policy;
      spec.config = config;
    } else if (topo == "leafspine") {
      LeafSpineExperimentConfig config;
      config.scheme = scheme;
      config.params = SimulationSchemeParams();
      config.workload = workload;
      config.load = value("load", flags.GetDouble("load", 0.5) * 100) / 100;
      config.flows = static_cast<std::size_t>(
          value("flows", static_cast<double>(flags.GetU64("flows", 1000))));
      config.seed = static_cast<std::uint64_t>(
          value("seed", static_cast<double>(flags.GetU64("seed", 1))));
      config.scenario = scenario;
      config.cc_mix = cc_mix;
      config.buffer_policy = buffer_policy;
      spec.config = config;
    } else if (topo == "fattree") {
      FatTreeExperimentConfig config;
      config.scheme = scheme;
      config.workload = workload;
      config.topo = FatTreeConfigFromFlags(flags);
      config.load = value("load", flags.GetDouble("load", 0.5) * 100) / 100;
      config.flows = static_cast<std::size_t>(
          value("flows", static_cast<double>(flags.GetU64("flows", 1000))));
      config.seed = static_cast<std::uint64_t>(
          value("seed", static_cast<double>(flags.GetU64("seed", 1))));
      config.scenario = scenario;
      config.cc_mix = cc_mix;
      config.buffer_policy = buffer_policy;
      spec.config = config;
    } else if (topo == "interdc") {
      InterDcExperimentConfig config = InterDcConfigFromFlags(flags, workload);
      config.scheme = scheme;
      config.load = value("load", flags.GetDouble("load", 0.5) * 100) / 100;
      config.flows = static_cast<std::size_t>(
          value("flows", static_cast<double>(flags.GetU64("flows", 1000))));
      config.seed = static_cast<std::uint64_t>(
          value("seed", static_cast<double>(flags.GetU64("seed", 1))));
      config.scenario = scenario;
      config.cc_mix = cc_mix;
      config.buffer_policy = buffer_policy;
      spec.config = config;
    } else {
      IncastExperimentConfig config;
      config.scheme = scheme;
      config.query_flows = static_cast<std::size_t>(
          value("fanout", static_cast<double>(flags.GetU64("fanout", 100))));
      config.seed = static_cast<std::uint64_t>(
          value("seed", static_cast<double>(flags.GetU64("seed", 1))));
      spec.config = config;
    }
    specs.push_back(std::move(spec));
  }

  const std::string name = flags.Get("name", "cli_sweep");
  runner::SweepOptions options;
  options.jobs = static_cast<std::size_t>(flags.GetU64("jobs", 0));
  options.label = name;
  PrintBanner("sweep / " + topo + " / " + std::string(SchemeName(scheme)) +
              " — " + std::to_string(specs.size()) + " jobs");
  const std::vector<runner::JobResult> results =
      runner::RunJobs(specs, options);
  runner::ExportSweep(name, specs, results);

  if (topo == "incast") {
    TablePrinter table({"point", "standing q(pkts)", "peak q(pkts)", "drops",
                        "query avg(us)", "query p99(us)", "timeouts"});
    for (const runner::JobResult& job : results) {
      const IncastResult& r = runner::IncastResultOf(job);
      table.AddRow({job.name, TablePrinter::Fmt(r.standing_queue_packets, 1),
                    std::to_string(r.max_queue_packets),
                    std::to_string(r.drops),
                    TablePrinter::Fmt(r.query_fct.avg_us, 1),
                    TablePrinter::Fmt(r.query_fct.p99_us, 1),
                    std::to_string(r.query_timeouts)});
    }
    table.Print();
  } else {
    TablePrinter table({"point", "overall avg(us)", "short avg(us)",
                        "short p99(us)", "large avg(us)", "timeouts"});
    for (const runner::JobResult& job : results) {
      const ExperimentResult& r = runner::FctResult(job);
      table.AddRow({job.name, TablePrinter::Fmt(r.overall.avg_us, 1),
                    TablePrinter::Fmt(r.short_flows.avg_us, 1),
                    TablePrinter::Fmt(r.short_flows.p99_us, 1),
                    TablePrinter::Fmt(r.large_flows.avg_us, 1),
                    std::to_string(r.timeouts)});
    }
    table.Print();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  if (flags.Has("help")) return Usage();

  Scheme scheme = Scheme::kEcnSharp;
  if (!ParseScheme(flags.Get("scheme", "ecn-sharp"), scheme)) {
    std::fprintf(stderr, "unknown scheme '%s' (see --help)\n",
                 flags.Get("scheme", "").c_str());
    return 2;
  }
  const std::string workload_name = flags.Get("workload", "websearch");
  const EmpiricalCdf* workload = workload_name == "datamining"
                                     ? &DataMiningWorkload()
                                     : &WebSearchWorkload();
  std::string topo = flags.Get("topo", "dumbbell");
  if (topo != "dumbbell" && topo != "leafspine" && topo != "fattree" &&
      topo != "interdc" && topo != "incast") {
    std::fprintf(stderr, "unknown topo '%s' (see --help)\n", topo.c_str());
    return 2;
  }
  // --topology selects among the scenario-capable topologies and overrides
  // --topo, so scripts composing `--scenario` never land on incast.
  if (flags.Has("topology")) {
    const std::string value = flags.Get("topology", "");
    if (value != "dumbbell" && value != "leafspine" && value != "fattree" &&
        value != "interdc") {
      std::fprintf(stderr,
                   "invalid --topology '%s' (expected dumbbell, leafspine, "
                   "fattree or interdc)\n",
                   value.c_str());
      return 2;
    }
    topo = value;
  }

  // Border knobs are meaningless outside the composed topology; naming one
  // on another topology is a config error, not a silent no-op.
  if (topo != "interdc" &&
      (flags.Has("border-rtt-us") || flags.Has("border-gbps") ||
       flags.Has("border-links") || flags.Has("inter-fraction") ||
       flags.Has("inter-workload"))) {
    std::fprintf(stderr,
                 "--border-rtt-us/--border-gbps/--border-links/"
                 "--inter-fraction/--inter-workload apply to "
                 "--topo=interdc\n");
    return 2;
  }

  if (topo == "incast" &&
      (flags.Has("cc-mix") || flags.Has("buffer-policy") ||
       flags.Has("buffer-kb") || flags.Has("alpha"))) {
    std::fprintf(stderr,
                 "--cc-mix/--buffer-policy apply to --topo=dumbbell, "
                 "leafspine or fattree\n");
    return 2;
  }

  ScenarioScript scenario;
  if (flags.Has("scenario")) {
    if (topo == "incast") {
      std::fprintf(stderr,
                   "--scenario applies to --topo=dumbbell, leafspine or "
                   "fattree\n");
      return 2;
    }
    scenario = LoadScenarioOrDie(flags.Get("scenario", ""));
  }

  TraceConfig trace;
  if (flags.Has("trace")) {
    if (flags.Has("sweep")) {
      std::fprintf(stderr,
                   "--trace applies to single runs, not --sweep (traces are "
                   "per-run; rerun the point of interest without --sweep)\n");
      return 2;
    }
    std::string error;
    if (!ParseTraceSpec(flags.Get("trace", "on"), &trace, &error)) {
      std::fprintf(stderr, "invalid --trace spec: %s\n", error.c_str());
      return 2;
    }
  } else if (flags.Has("trace-out")) {
    std::fprintf(stderr, "--trace-out requires --trace\n");
    return 2;
  }

  SketchConfig sketch;
  if (flags.Has("sketch")) {
    if (flags.Has("sweep")) {
      std::fprintf(stderr,
                   "--sketch applies to single runs, not --sweep (telemetry "
                   "is per-run; rerun the point of interest without "
                   "--sweep)\n");
      return 2;
    }
    std::string error;
    if (!ParseSketchSpec(flags.Get("sketch", "on"), &sketch, &error)) {
      std::fprintf(stderr, "invalid --sketch spec: %s\n", error.c_str());
      return 2;
    }
  } else if (flags.Has("sketch-out")) {
    std::fprintf(stderr, "--sketch-out requires --sketch\n");
    return 2;
  }

  EcnEstimator estimator = EcnEstimator::kOracle;
  if (flags.Has("estimator")) {
    const std::string value = flags.Get("estimator", "oracle");
    if (value == "oracle") {
      estimator = EcnEstimator::kOracle;
    } else if (value == "sketch") {
      estimator = EcnEstimator::kSketch;
    } else {
      std::fprintf(stderr,
                   "invalid --estimator '%s' (expected oracle or sketch)\n",
                   value.c_str());
      return 2;
    }
    if (estimator == EcnEstimator::kSketch && !sketch.enabled) {
      std::fprintf(stderr, "--estimator=sketch requires --sketch\n");
      return 2;
    }
  }

  if (flags.Has("relaxed-lanes")) {
    if (topo != "fattree") {
      std::fprintf(stderr, "--relaxed-lanes applies to --topo=fattree\n");
      return 2;
    }
    if (flags.Has("sweep")) {
      std::fprintf(stderr,
                   "--relaxed-lanes applies to single runs, not --sweep\n");
      return 2;
    }
  }

  if (flags.Has("sweep")) {
    return RunSweepMode(flags, topo, scheme, workload, scenario);
  }

  if (topo == "dumbbell") {
    DumbbellExperimentConfig config;
    config.scheme = scheme;
    if (flags.Has("sim-params")) config.params = SimulationSchemeParams();
    config.workload = workload;
    config.load = flags.GetDouble("load", 0.5);
    config.flows = flags.GetU64("flows", 1000);
    config.rtt_variation = flags.GetDouble("variation", 3.0);
    config.seed = flags.GetU64("seed", 1);
    config.scenario = scenario;
    config.trace = trace;
    config.sketch = sketch;
    config.estimator = estimator;
    config.cc_mix = CcMixFromFlags(flags);
    config.buffer_policy = BufferPolicyFromFlags(flags);
    PrintBanner("dumbbell / " + std::string(SchemeName(scheme)) + " / " +
                workload_name);
    std::shared_ptr<const TraceRecorder> recorded;
    std::shared_ptr<const SketchTelemetry> telemetry;
    if (scenario.empty()) {
      const ExperimentResult r = RunDumbbell(config);
      PrintFctResult(r);
      recorded = r.trace;
      telemetry = r.sketch;
    } else {
      const runner::JobResult job = RunSingleViaRunner(flags, scheme, config);
      recorded = runner::FctResult(job).trace;
      telemetry = runner::FctResult(job).sketch;
    }
    if (trace.enabled) ExportTraceOrDie(flags, recorded);
    if (sketch.enabled) ExportSketchOrDie(flags, telemetry);
  } else if (topo == "leafspine") {
    LeafSpineExperimentConfig config;
    config.scheme = scheme;
    config.params = SimulationSchemeParams();
    config.workload = workload;
    config.load = flags.GetDouble("load", 0.5);
    config.flows = flags.GetU64("flows", 1000);
    config.seed = flags.GetU64("seed", 1);
    config.scenario = scenario;
    config.trace = trace;
    config.sketch = sketch;
    config.estimator = estimator;
    config.cc_mix = CcMixFromFlags(flags);
    config.buffer_policy = BufferPolicyFromFlags(flags);
    PrintBanner("leaf-spine / " + std::string(SchemeName(scheme)) + " / " +
                workload_name);
    std::shared_ptr<const TraceRecorder> recorded;
    std::shared_ptr<const SketchTelemetry> telemetry;
    if (scenario.empty()) {
      const ExperimentResult r = RunLeafSpine(config);
      PrintFctResult(r);
      recorded = r.trace;
      telemetry = r.sketch;
    } else {
      const runner::JobResult job = RunSingleViaRunner(flags, scheme, config);
      recorded = runner::FctResult(job).trace;
      telemetry = runner::FctResult(job).sketch;
    }
    if (trace.enabled) ExportTraceOrDie(flags, recorded);
    if (sketch.enabled) ExportSketchOrDie(flags, telemetry);
  } else if (topo == "fattree") {
    FatTreeExperimentConfig config;
    config.scheme = scheme;
    config.workload = workload;
    config.topo = FatTreeConfigFromFlags(flags);
    config.load = flags.GetDouble("load", 0.5);
    config.flows = flags.GetU64("flows", 1000);
    config.seed = flags.GetU64("seed", 1);
    config.scenario = scenario;
    config.trace = trace;
    config.sketch = sketch;
    config.estimator = estimator;
    config.cc_mix = CcMixFromFlags(flags);
    config.buffer_policy = BufferPolicyFromFlags(flags);
    PrintBanner("fat-tree k=" + std::to_string(config.topo.k) + " / " +
                std::string(SchemeName(scheme)) + " / " + workload_name);
    if (flags.Has("relaxed-lanes")) {
      // Validation of the mode's restrictions (scenario / trace / sketch /
      // lane count) lives in RunFatTreeRelaxed and exits 2 on violation.
      const auto lanes =
          static_cast<std::size_t>(flags.GetU64("relaxed-lanes", 2));
      PrintFctResult(RunFatTreeRelaxed(config, lanes));
      return 0;
    }
    std::shared_ptr<const TraceRecorder> recorded;
    std::shared_ptr<const SketchTelemetry> telemetry;
    if (scenario.empty()) {
      const ExperimentResult r = RunFatTree(config);
      PrintFctResult(r);
      recorded = r.trace;
      telemetry = r.sketch;
    } else {
      const runner::JobResult job = RunSingleViaRunner(flags, scheme, config);
      recorded = runner::FctResult(job).trace;
      telemetry = runner::FctResult(job).sketch;
    }
    if (trace.enabled) ExportTraceOrDie(flags, recorded);
    if (sketch.enabled) ExportSketchOrDie(flags, telemetry);
  } else if (topo == "interdc") {
    InterDcExperimentConfig config = InterDcConfigFromFlags(flags, workload);
    config.scheme = scheme;
    config.load = flags.GetDouble("load", 0.5);
    config.flows = flags.GetU64("flows", 1000);
    config.seed = flags.GetU64("seed", 1);
    config.scenario = scenario;
    config.trace = trace;
    config.sketch = sketch;
    config.estimator = estimator;
    config.cc_mix = CcMixFromFlags(flags);
    config.buffer_policy = BufferPolicyFromFlags(flags);
    PrintBanner("interdc border " +
                std::to_string(static_cast<long long>(
                    config.topo.border_rtt.ToMicroseconds())) +
                "us / " + std::string(SchemeName(scheme)) + " / " +
                workload_name);
    std::shared_ptr<const TraceRecorder> recorded;
    std::shared_ptr<const SketchTelemetry> telemetry;
    if (scenario.empty()) {
      const ExperimentResult r = RunInterDc(config);
      PrintFctResult(r);
      recorded = r.trace;
      telemetry = r.sketch;
    } else {
      const runner::JobResult job = RunSingleViaRunner(flags, scheme, config);
      recorded = runner::FctResult(job).trace;
      telemetry = runner::FctResult(job).sketch;
    }
    if (trace.enabled) ExportTraceOrDie(flags, recorded);
    if (sketch.enabled) ExportSketchOrDie(flags, telemetry);
  } else {
    IncastExperimentConfig config;
    config.scheme = scheme;
    config.query_flows = flags.GetU64("fanout", 100);
    config.seed = flags.GetU64("seed", 1);
    config.trace = trace;
    config.sketch = sketch;
    PrintBanner("incast / " + std::string(SchemeName(scheme)) + " / fanout " +
                std::to_string(config.query_flows));
    const IncastResult r = RunIncast(config);
    TablePrinter table({"metric", "value"});
    table.AddRow({"standing queue (pkts)",
                  TablePrinter::Fmt(r.standing_queue_packets, 1)});
    table.AddRow({"peak queue (pkts)", std::to_string(r.max_queue_packets)});
    table.AddRow({"burst drops", std::to_string(r.drops)});
    table.AddRow({"query avg FCT (us)",
                  TablePrinter::Fmt(r.query_fct.avg_us, 1)});
    table.AddRow({"query p99 FCT (us)",
                  TablePrinter::Fmt(r.query_fct.p99_us, 1)});
    table.AddRow({"query timeouts", std::to_string(r.query_timeouts)});
    table.Print();
    if (trace.enabled) ExportTraceOrDie(flags, r.trace);
    if (sketch.enabled) ExportSketchOrDie(flags, r.sketch);
  }
  return 0;
}
