// ecnsharp_cli — run any experiment from the command line.
//
//   ecnsharp_cli --topo=dumbbell --scheme=ecn-sharp --workload=websearch \
//                --load=0.6 --flows=1000 --variation=3 --seed=1
//   ecnsharp_cli --topo=leafspine --scheme=dctcp-red-tail --load=0.4
//   ecnsharp_cli --topo=incast --scheme=codel --fanout=100
//
// Prints the experiment's FCT breakdown (or incast metrics) as a table.
// Run with --help for all options.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "harness/experiment.h"
#include "harness/table.h"
#include "workload/empirical_cdf.h"

namespace {

using namespace ecnsharp;

struct Flags {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.contains(key); }
  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::strtod(it->second.c_str(),
                                                       nullptr);
  }
  std::uint64_t GetU64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values.find(key);
    return it == values.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values[arg] = "1";
    } else {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

int Usage() {
  std::printf(
      "ecnsharp_cli — run an ECN# experiment\n\n"
      "  --topo=dumbbell|leafspine|incast   topology (default dumbbell)\n"
      "  --scheme=<name>                    dctcp-red-tail, dctcp-red-avg,\n"
      "                                     codel, tcn, ecn-sharp,\n"
      "                                     ecn-sharp-tofino, droptail, pie,\n"
      "                                     ecn-sharp-inst-only,\n"
      "                                     ecn-sharp-pst-only\n"
      "  --workload=websearch|datamining    flow size distribution\n"
      "  --load=<0..1>                      offered load (default 0.5)\n"
      "  --flows=<n>                        flow count (default 1000)\n"
      "  --variation=<k>                    RTT variation factor (default 3)\n"
      "  --fanout=<n>                       incast query flows (default "
      "100)\n"
      "  --seed=<n>                         RNG seed (default 1)\n"
      "  --sim-params                       use the paper's simulation\n"
      "                                     parameter preset (§5.3)\n"
      "  --help                             this text\n");
  return 0;
}

bool ParseScheme(const std::string& name, Scheme& out) {
  static const std::map<std::string, Scheme> kNames = {
      {"dctcp-red-tail", Scheme::kDctcpRedTail},
      {"dctcp-red-avg", Scheme::kDctcpRedAvg},
      {"codel", Scheme::kCodel},
      {"tcn", Scheme::kTcn},
      {"ecn-sharp", Scheme::kEcnSharp},
      {"ecn-sharp-tofino", Scheme::kEcnSharpTofino},
      {"droptail", Scheme::kDropTail},
      {"pie", Scheme::kPie},
      {"ecn-sharp-inst-only", Scheme::kEcnSharpInstOnly},
      {"ecn-sharp-pst-only", Scheme::kEcnSharpPstOnly},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end()) return false;
  out = it->second;
  return true;
}

void PrintFctResult(const ExperimentResult& r) {
  TablePrinter table({"metric", "count", "avg(us)", "p50(us)", "p99(us)",
                      "max(us)"});
  const auto row = [&table](const char* name, const FctSummary& s) {
    table.AddRow({name, std::to_string(s.count),
                  TablePrinter::Fmt(s.avg_us, 1),
                  TablePrinter::Fmt(s.p50_us, 1),
                  TablePrinter::Fmt(s.p99_us, 1),
                  TablePrinter::Fmt(s.max_us, 1)});
  };
  row("overall", r.overall);
  row("short (<100KB)", r.short_flows);
  row("large (>10MB)", r.large_flows);
  table.Print();
  std::printf(
      "flows: %zu/%zu completed  timeouts: %llu  CE marks: %llu  drops: "
      "%llu  sim time: %.3fs\n",
      r.flows_completed, r.flows_started,
      static_cast<unsigned long long>(r.timeouts),
      static_cast<unsigned long long>(r.bottleneck.ce_marked),
      static_cast<unsigned long long>(r.bottleneck.dropped_overflow),
      r.sim_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  if (flags.Has("help")) return Usage();

  Scheme scheme = Scheme::kEcnSharp;
  if (!ParseScheme(flags.Get("scheme", "ecn-sharp"), scheme)) {
    std::fprintf(stderr, "unknown scheme '%s' (see --help)\n",
                 flags.Get("scheme", "").c_str());
    return 2;
  }
  const std::string workload_name = flags.Get("workload", "websearch");
  const EmpiricalCdf* workload = workload_name == "datamining"
                                     ? &DataMiningWorkload()
                                     : &WebSearchWorkload();
  const std::string topo = flags.Get("topo", "dumbbell");

  if (topo == "dumbbell") {
    DumbbellExperimentConfig config;
    config.scheme = scheme;
    if (flags.Has("sim-params")) config.params = SimulationSchemeParams();
    config.workload = workload;
    config.load = flags.GetDouble("load", 0.5);
    config.flows = flags.GetU64("flows", 1000);
    config.rtt_variation = flags.GetDouble("variation", 3.0);
    config.seed = flags.GetU64("seed", 1);
    PrintBanner("dumbbell / " + std::string(SchemeName(scheme)) + " / " +
                workload_name);
    PrintFctResult(RunDumbbell(config));
  } else if (topo == "leafspine") {
    LeafSpineExperimentConfig config;
    config.scheme = scheme;
    config.params = SimulationSchemeParams();
    config.workload = workload;
    config.load = flags.GetDouble("load", 0.5);
    config.flows = flags.GetU64("flows", 1000);
    config.seed = flags.GetU64("seed", 1);
    PrintBanner("leaf-spine / " + std::string(SchemeName(scheme)) + " / " +
                workload_name);
    PrintFctResult(RunLeafSpine(config));
  } else if (topo == "incast") {
    IncastExperimentConfig config;
    config.scheme = scheme;
    config.query_flows = flags.GetU64("fanout", 100);
    config.seed = flags.GetU64("seed", 1);
    PrintBanner("incast / " + std::string(SchemeName(scheme)) + " / fanout " +
                std::to_string(config.query_flows));
    const IncastResult r = RunIncast(config);
    TablePrinter table({"metric", "value"});
    table.AddRow({"standing queue (pkts)",
                  TablePrinter::Fmt(r.standing_queue_packets, 1)});
    table.AddRow({"peak queue (pkts)", std::to_string(r.max_queue_packets)});
    table.AddRow({"burst drops", std::to_string(r.drops)});
    table.AddRow({"query avg FCT (us)",
                  TablePrinter::Fmt(r.query_fct.avg_us, 1)});
    table.AddRow({"query p99 FCT (us)",
                  TablePrinter::Fmt(r.query_fct.p99_us, 1)});
    table.AddRow({"query timeouts", std::to_string(r.query_timeouts)});
    table.Print();
  } else {
    std::fprintf(stderr, "unknown topo '%s' (see --help)\n", topo.c_str());
    return 2;
  }
  return 0;
}
