#include "stats/queue_monitor.h"

#include <algorithm>

namespace ecnsharp {

void QueueMonitor::Run(Time from, Time until) {
  sim_.ScheduleAt(from, [this, until] { TakeSample(until); });
}

void QueueMonitor::TakeSample(Time until) {
  const QueueSnapshot snap = disc_.Snapshot();
  samples_.push_back(Sample{sim_.Now(), snap.packets, snap.bytes});
  const Time next = sim_.Now() + period_;
  if (next <= until) {
    sim_.ScheduleAt(next, [this, until] { TakeSample(until); });
  }
}

double QueueMonitor::AvgPackets() const {
  return samples_.empty()
             ? 0.0
             : AvgPackets(samples_.front().at, samples_.back().at);
}

double QueueMonitor::AvgPackets(Time from, Time until) const {
  if (samples_.empty() || until < from) return 0.0;
  // Samples are appended in nondecreasing simulation time (TakeSample runs
  // inside the event loop), so binary search bounds the window...
  const auto at_less = [](const Sample& s, Time t) { return s.at < t; };
  const auto less_at = [](Time t, const Sample& s) { return t < s.at; };
  const auto first =
      std::lower_bound(samples_.begin(), samples_.end(), from, at_less);
  const auto last = std::upper_bound(first, samples_.end(), until, less_at);
  const auto n = static_cast<std::size_t>(last - first);
  if (n == 0) return 0.0;
  // ...and a prefix-sum array (extended to cover any samples appended since
  // the previous query) turns the window sum into two lookups.
  if (prefix_packets_.empty()) prefix_packets_.push_back(0.0);
  while (prefix_packets_.size() <= samples_.size()) {
    const std::size_t i = prefix_packets_.size() - 1;
    prefix_packets_.push_back(prefix_packets_.back() + samples_[i].packets);
  }
  const auto lo = static_cast<std::size_t>(first - samples_.begin());
  const double sum = prefix_packets_[lo + n] - prefix_packets_[lo];
  return sum / static_cast<double>(n);
}

std::uint32_t QueueMonitor::MaxPackets() const {
  std::uint32_t best = 0;
  for (const Sample& s : samples_) best = std::max(best, s.packets);
  return best;
}

double QueueMonitorSet::AvgPackets() const {
  if (monitors_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : monitors_) sum += m->AvgPackets();
  return sum / static_cast<double>(monitors_.size());
}

double QueueMonitorSet::AvgPackets(Time from, Time until) const {
  if (monitors_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : monitors_) sum += m->AvgPackets(from, until);
  return sum / static_cast<double>(monitors_.size());
}

std::uint32_t QueueMonitorSet::MaxPackets() const {
  std::uint32_t best = 0;
  for (const auto& m : monitors_) best = std::max(best, m->MaxPackets());
  return best;
}

}  // namespace ecnsharp
