#include "stats/queue_monitor.h"

#include <algorithm>

namespace ecnsharp {

void QueueMonitor::Run(Time from, Time until) {
  sim_.ScheduleAt(from, [this, until] { TakeSample(until); });
}

void QueueMonitor::TakeSample(Time until) {
  const QueueSnapshot snap = disc_.Snapshot();
  samples_.push_back(Sample{sim_.Now(), snap.packets, snap.bytes});
  const Time next = sim_.Now() + period_;
  if (next <= until) {
    sim_.ScheduleAt(next, [this, until] { TakeSample(until); });
  }
}

double QueueMonitor::AvgPackets() const {
  return samples_.empty()
             ? 0.0
             : AvgPackets(samples_.front().at, samples_.back().at);
}

double QueueMonitor::AvgPackets(Time from, Time until) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const Sample& s : samples_) {
    if (s.at >= from && s.at <= until) {
      sum += s.packets;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::uint32_t QueueMonitor::MaxPackets() const {
  std::uint32_t best = 0;
  for (const Sample& s : samples_) best = std::max(best, s.packets);
  return best;
}

}  // namespace ecnsharp
