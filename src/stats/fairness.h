// Jain's fairness index: (sum x)^2 / (n * sum x^2), 1.0 = perfectly fair.
#ifndef ECNSHARP_STATS_FAIRNESS_H_
#define ECNSHARP_STATS_FAIRNESS_H_

#include <vector>

namespace ecnsharp {

inline double JainIndex(const std::vector<double>& allocations) {
  if (allocations.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace ecnsharp

#endif  // ECNSHARP_STATS_FAIRNESS_H_
