#include "stats/fct_collector.h"

#include <algorithm>

#include "stats/percentile.h"

namespace ecnsharp {

std::vector<double> FctCollector::Fcts(std::uint64_t min_bytes,
                                       std::uint64_t max_bytes) const {
  std::vector<double> out;
  for (const Sample& s : samples_) {
    if (s.size_bytes >= min_bytes && s.size_bytes <= max_bytes) {
      out.push_back(s.fct_us);
    }
  }
  return out;
}

FctSummary FctCollector::Summary(std::uint64_t min_bytes,
                                 std::uint64_t max_bytes) const {
  const SampleSummary s = SummarizeSamples(Fcts(min_bytes, max_bytes));
  FctSummary summary;
  summary.count = s.count;
  summary.avg_us = s.mean;
  summary.stddev_us = s.stddev;
  summary.p50_us = s.p50;
  summary.p90_us = s.p90;
  summary.p99_us = s.p99;
  summary.max_us = s.max;
  return summary;
}

FctSummary FctCollector::SummaryByCc(CcKind cc) const {
  std::vector<double> fcts;
  for (const Sample& s : samples_) {
    if (s.cc == cc) fcts.push_back(s.fct_us);
  }
  const SampleSummary s = SummarizeSamples(fcts);
  FctSummary summary;
  summary.count = s.count;
  summary.avg_us = s.mean;
  summary.stddev_us = s.stddev;
  summary.p50_us = s.p50;
  summary.p90_us = s.p90;
  summary.p99_us = s.p99;
  summary.max_us = s.max;
  return summary;
}

std::uint64_t FctCollector::BytesByCc(CcKind cc) const {
  std::uint64_t bytes = 0;
  for (const Sample& s : samples_) {
    if (s.cc == cc) bytes += s.size_bytes;
  }
  return bytes;
}

}  // namespace ecnsharp
