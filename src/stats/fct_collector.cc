#include "stats/fct_collector.h"

#include <algorithm>

#include "stats/percentile.h"

namespace ecnsharp {

std::vector<double> FctCollector::Fcts(std::uint64_t min_bytes,
                                       std::uint64_t max_bytes) const {
  std::vector<double> out;
  for (const Sample& s : samples_) {
    if (s.size_bytes >= min_bytes && s.size_bytes <= max_bytes) {
      out.push_back(s.fct_us);
    }
  }
  return out;
}

FctSummary FctCollector::Summary(std::uint64_t min_bytes,
                                 std::uint64_t max_bytes) const {
  const SampleSummary s = SummarizeSamples(Fcts(min_bytes, max_bytes));
  FctSummary summary;
  summary.count = s.count;
  summary.avg_us = s.mean;
  summary.stddev_us = s.stddev;
  summary.p50_us = s.p50;
  summary.p90_us = s.p90;
  summary.p99_us = s.p99;
  summary.max_us = s.max;
  return summary;
}

}  // namespace ecnsharp
