#include "stats/fct_collector.h"

#include <algorithm>

#include "stats/percentile.h"

namespace ecnsharp {

std::vector<double> FctCollector::Fcts(std::uint64_t min_bytes,
                                       std::uint64_t max_bytes) const {
  std::vector<double> out;
  for (const Sample& s : samples_) {
    if (s.size_bytes >= min_bytes && s.size_bytes <= max_bytes) {
      out.push_back(s.fct_us);
    }
  }
  return out;
}

FctSummary FctCollector::Summary(std::uint64_t min_bytes,
                                 std::uint64_t max_bytes) const {
  std::vector<double> fcts = Fcts(min_bytes, max_bytes);
  FctSummary summary;
  summary.count = fcts.size();
  if (fcts.empty()) return summary;
  std::sort(fcts.begin(), fcts.end());
  summary.avg_us = Mean(fcts);
  summary.p50_us = PercentileSorted(fcts, 50.0);
  summary.p99_us = PercentileSorted(fcts, 99.0);
  summary.max_us = fcts.back();
  return summary;
}

}  // namespace ecnsharp
