// Flow-completion-time collection and breakdown.
//
// The paper reports FCT overall, for short flows (<100 KB) and for large
// flows (>10 MB) — averages and the 99th percentile (§5.1 "Metrics").
#ifndef ECNSHARP_STATS_FCT_COLLECTOR_H_
#define ECNSHARP_STATS_FCT_COLLECTOR_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "transport/tcp_sender.h"

namespace ecnsharp {

inline constexpr std::uint64_t kShortFlowMaxBytes = 100 * 1000;
inline constexpr std::uint64_t kLargeFlowMinBytes = 10 * 1000 * 1000;

struct FctSummary {
  std::size_t count = 0;
  double avg_us = 0.0;
  double stddev_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

class FctCollector {
 public:
  struct Sample {
    std::uint64_t size_bytes;
    double fct_us;
    std::uint32_t timeouts;
    CcKind cc;
  };

  void Record(const FlowRecord& record) {
    samples_.push_back(Sample{record.size_bytes,
                              record.Fct().ToMicroseconds(),
                              record.timeouts, record.cc});
    total_timeouts_ += record.timeouts;
  }

  // Summary over flows with size in [min_bytes, max_bytes].
  FctSummary Summary(
      std::uint64_t min_bytes = 0,
      std::uint64_t max_bytes = std::numeric_limits<std::uint64_t>::max())
      const;

  FctSummary Overall() const { return Summary(); }
  FctSummary ShortFlows() const { return Summary(0, kShortFlowMaxBytes); }
  FctSummary LargeFlows() const { return Summary(kLargeFlowMinBytes); }

  // Per-congestion-controller breakdown for mixed-CC runs: summary and
  // completed bytes over flows driven by `cc` only.
  FctSummary SummaryByCc(CcKind cc) const;
  std::uint64_t BytesByCc(CcKind cc) const;

  std::size_t count() const { return samples_.size(); }
  std::uint64_t total_timeouts() const { return total_timeouts_; }
  // Raw FCTs (microseconds) of flows in the given size band.
  std::vector<double> Fcts(std::uint64_t min_bytes,
                           std::uint64_t max_bytes) const;
  const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;
  std::uint64_t total_timeouts_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_STATS_FCT_COLLECTOR_H_
