#include "stats/percentile.h"

namespace ecnsharp {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;  // nearest-rank: ceil(p/100 * N)-th element, 1-based
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

std::size_t NearestRank(std::size_t count, double p) {
  if (count == 0) return 0;
  // Same math as PercentileSorted, reported 1-based.
  const double rank = p / 100.0 * static_cast<double>(count);
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  idx = std::min(idx, count - 1);
  return idx + 1;
}

double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, p);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = Mean(values);
  double ss = 0.0;
  for (const double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

SampleSummary SummarizeSamples(std::vector<double> values) {
  SampleSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.mean = Mean(values);
  s.stddev = StdDev(values);
  s.p50 = PercentileSorted(values, 50.0);
  s.p90 = PercentileSorted(values, 90.0);
  s.p99 = PercentileSorted(values, 99.0);
  s.max = values.back();
  return s;
}

}  // namespace ecnsharp
