// CSV export of experiment results for external plotting (gnuplot,
// matplotlib). Every bench prints human-readable tables; these writers let
// downstream users regenerate the paper's figures graphically.
#ifndef ECNSHARP_STATS_CSV_EXPORT_H_
#define ECNSHARP_STATS_CSV_EXPORT_H_

#include <string>

#include "stats/fct_collector.h"
#include "stats/queue_monitor.h"

namespace ecnsharp {

// Writes "size_bytes,fct_us,timeouts" rows. Returns false on I/O error.
bool WriteFctCsv(const std::string& path, const FctCollector& collector);

// Writes "time_us,packets,bytes" rows. Returns false on I/O error.
bool WriteQueueTraceCsv(const std::string& path, const QueueMonitor& monitor);

}  // namespace ecnsharp

#endif  // ECNSHARP_STATS_CSV_EXPORT_H_
