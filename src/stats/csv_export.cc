#include "stats/csv_export.h"

#include <cstdio>
#include <memory>

namespace ecnsharp {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const { std::fclose(f); }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

bool WriteFctCsv(const std::string& path, const FctCollector& collector) {
  FileHandle file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) return false;
  std::fprintf(file.get(), "size_bytes,fct_us,timeouts\n");
  for (const FctCollector::Sample& s : collector.samples()) {
    std::fprintf(file.get(), "%llu,%.3f,%u\n",
                 static_cast<unsigned long long>(s.size_bytes), s.fct_us,
                 s.timeouts);
  }
  return true;
}

bool WriteQueueTraceCsv(const std::string& path,
                        const QueueMonitor& monitor) {
  FileHandle file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) return false;
  std::fprintf(file.get(), "time_us,packets,bytes\n");
  for (const QueueMonitor::Sample& s : monitor.samples()) {
    std::fprintf(file.get(), "%.3f,%u,%llu\n", s.at.ToMicroseconds(),
                 s.packets, static_cast<unsigned long long>(s.bytes));
  }
  return true;
}

}  // namespace ecnsharp
