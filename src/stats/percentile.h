// Percentile and summary-statistics helpers.
#ifndef ECNSHARP_STATS_PERCENTILE_H_
#define ECNSHARP_STATS_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ecnsharp {

// Nearest-rank percentile of an unsorted sample, p in [0, 100].
// Returns 0 for an empty sample.
double Percentile(std::vector<double> values, double p);

// Percentile of an already-sorted (ascending) sample.
double PercentileSorted(const std::vector<double>& sorted, double p);

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

}  // namespace ecnsharp

#endif  // ECNSHARP_STATS_PERCENTILE_H_
