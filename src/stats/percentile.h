// Percentile and summary-statistics helpers.
#ifndef ECNSHARP_STATS_PERCENTILE_H_
#define ECNSHARP_STATS_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ecnsharp {

// Nearest-rank percentile of an unsorted sample, p in [0, 100].
// Returns 0 for an empty sample.
//
// Cost contract: each call copies and sorts the sample — O(N log N) per
// percentile. Use it for one-off queries only. When extracting several
// percentiles from the same sample (p50/p90/p99 of one distribution), sort
// once with std::sort and call PercentileSorted for each query; that is
// one sort total instead of one per percentile, and both functions use the
// same nearest-rank definition, so the results are identical.
double Percentile(std::vector<double> values, double p);

// Percentile of an already-sorted (ascending) sample. O(1) per query.
// Passing an unsorted vector is undefined (returns an arbitrary element).
double PercentileSorted(const std::vector<double>& sorted, double p);

// The 1-based index PercentileSorted selects from a sample of `count`
// elements: clamp(ceil(p/100 * count), 1, count), 0 when count is 0.
// Exposed so estimators can report *which* order statistic a percentile
// refers to (e.g. comparing an oracle percentile against a sketch quantile
// of a different sample size).
std::size_t NearestRank(std::size_t count, double p);

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

// One-pass summary of a sample: sorts once and extracts every statistic the
// repo reports. Use this instead of hand-rolling sort + Mean + repeated
// PercentileSorted calls (FctCollector, RttProbe, and the benches all share
// this shape).
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// Takes the sample by value (it is sorted in place). Empty input yields an
// all-zero summary.
SampleSummary SummarizeSamples(std::vector<double> values);

}  // namespace ecnsharp

#endif  // ECNSHARP_STATS_PERCENTILE_H_
