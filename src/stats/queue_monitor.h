// Periodic sampling of a queue disc's occupancy (the microscopic view of
// Fig. 10) plus simple aggregate queries.
#ifndef ECNSHARP_STATS_QUEUE_MONITOR_H_
#define ECNSHARP_STATS_QUEUE_MONITOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/queue_disc.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ecnsharp {

class QueueMonitor {
 public:
  struct Sample {
    Time at;
    std::uint32_t packets;
    std::uint64_t bytes;
  };

  QueueMonitor(Simulator& sim, const QueueDisc& disc, Time period)
      : sim_(sim), disc_(disc), period_(period) {}

  // Starts sampling at `from`; keeps sampling every period until `until`.
  void Run(Time from, Time until);

  const std::vector<Sample>& samples() const { return samples_; }
  double AvgPackets() const;
  // Mean queue occupancy over samples with `from <= at <= until`.
  // O(log N) per query: samples arrive in simulation-time order, so the
  // window is located with binary search and summed from a prefix-sum array
  // (extended lazily when samples were added since the previous query).
  double AvgPackets(Time from, Time until) const;
  std::uint32_t MaxPackets() const;

 private:
  void TakeSample(Time until);

  Simulator& sim_;
  const QueueDisc& disc_;
  Time period_;
  std::vector<Sample> samples_;
  // prefix_packets_[i] = sum of samples_[0..i).packets; grown on demand by
  // AvgPackets(from, until), hence mutable.
  mutable std::vector<double> prefix_packets_;
};

// A group of monitors covering a topology's whole bottleneck set (one queue
// for a dumbbell, every switch egress port for a fabric), with the aggregate
// queries experiments report: mean occupancy averaged across queues and the
// peak across all of them.
class QueueMonitorSet {
 public:
  QueueMonitor& Add(Simulator& sim, const QueueDisc& disc, Time period) {
    monitors_.push_back(std::make_unique<QueueMonitor>(sim, disc, period));
    return *monitors_.back();
  }

  void RunAll(Time from, Time until) {
    for (auto& m : monitors_) m->Run(from, until);
  }

  bool empty() const { return monitors_.empty(); }
  std::size_t size() const { return monitors_.size(); }
  QueueMonitor& monitor(std::size_t i) { return *monitors_.at(i); }

  // Mean of the per-queue average occupancies (0 when no monitors / samples).
  double AvgPackets() const;
  double AvgPackets(Time from, Time until) const;
  // Peak occupancy observed on any monitored queue.
  std::uint32_t MaxPackets() const;

 private:
  std::vector<std::unique_ptr<QueueMonitor>> monitors_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_STATS_QUEUE_MONITOR_H_
