#include "sched/fifo_queue_disc.h"

#include <utility>

#include "net/chip_hot_state.h"

namespace ecnsharp {

std::uint32_t FifoQueueDisc::PurgeAll(Time now) {
  // Pop-then-notify: accounting is fully updated before each tracer
  // callback, so a tracer observing Snapshot() mid-purge sees consistent
  // state (packets, bytes, and pool reservation all exclude the purged
  // packet).
  std::uint32_t n = 0;
  while (!queue_.empty()) {
    std::unique_ptr<Packet> pkt = queue_.pop_front();
    --*packets_;
    *bytes_ -= pkt->size_bytes;
    if (pool_ != nullptr) pool_->Release(pool_queue_, pkt->size_bytes);
    ++stats_.purged;
    ++n;
    if (tracer_ != nullptr) tracer_->OnPurge(*pkt, now, Snapshot());
  }
  return n;
}

void FifoQueueDisc::BindChipHotState(ChipHotBlock& block) {
  ChipHotBlock::QueueRow row = block.AllocQueueRow();
  *row.packets = *packets_;
  *row.bytes = *bytes_;
  packets_ = row.packets;
  bytes_ = row.bytes;
  if (aqm_ != nullptr) aqm_->BindChipHotState(block);
}

}  // namespace ecnsharp
