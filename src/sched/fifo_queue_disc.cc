#include "sched/fifo_queue_disc.h"

#include <utility>

namespace ecnsharp {

bool FifoQueueDisc::Enqueue(std::unique_ptr<Packet> pkt, Time now) {
  if (pool_ != nullptr) {
    if (!pool_->TryReserve(bytes_, pkt->size_bytes)) {
      ++stats_.dropped_overflow;
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
      return false;
    }
  } else if (bytes_ + pkt->size_bytes > capacity_bytes_) {
    ++stats_.dropped_overflow;
    if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
    return false;
  }
  if (aqm_ != nullptr) {
    const bool was_ce = pkt->IsCeMarked();
    if (!aqm_->AllowEnqueue(*pkt, Snapshot(), now)) {
      ++stats_.dropped_aqm;
      if (pool_ != nullptr) pool_->Release(pkt->size_bytes);
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kAqm);
      return false;
    }
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  pkt->enqueue_time = now;
  bytes_ += pkt->size_bytes;
  queue_.push_back(std::move(pkt));
  ++stats_.enqueued;
  return true;
}

std::unique_ptr<Packet> FifoQueueDisc::Dequeue(Time now) {
  if (queue_.empty()) return nullptr;
  std::unique_ptr<Packet> pkt = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= pkt->size_bytes;
  if (pool_ != nullptr) pool_->Release(pkt->size_bytes);
  ++stats_.dequeued;
  if (aqm_ != nullptr) {
    const bool was_ce = pkt->IsCeMarked();
    aqm_->OnDequeue(*pkt, Snapshot(), now, now - pkt->enqueue_time);
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  return pkt;
}

std::uint32_t FifoQueueDisc::PurgeAll(Time now) {
  const std::uint32_t n = static_cast<std::uint32_t>(queue_.size());
  for (auto& pkt : queue_) {
    bytes_ -= pkt->size_bytes;
    if (pool_ != nullptr) pool_->Release(pkt->size_bytes);
    ++stats_.purged;
    if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kPurged);
  }
  queue_.clear();
  return n;
}

}  // namespace ecnsharp
