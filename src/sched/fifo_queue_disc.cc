#include "sched/fifo_queue_disc.h"

#include <utility>

namespace ecnsharp {

bool FifoQueueDisc::Enqueue(std::unique_ptr<Packet> pkt, Time now) {
  if (pool_ != nullptr) {
    if (!pool_->TryReserve(pool_queue_, pkt->size_bytes)) {
      ++stats_.dropped_overflow;
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
      return false;
    }
  } else if (bytes_ + pkt->size_bytes > capacity_bytes_) {
    ++stats_.dropped_overflow;
    if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
    return false;
  }
  if (aqm_ != nullptr) {
    const bool was_ce = pkt->IsCeMarked();
    if (!aqm_->AllowEnqueue(*pkt, Snapshot(), now)) {
      ++stats_.dropped_aqm;
      if (pool_ != nullptr) pool_->Release(pool_queue_, pkt->size_bytes);
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kAqm);
      return false;
    }
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  pkt->enqueue_time = now;
  bytes_ += pkt->size_bytes;
  queue_.push_back(std::move(pkt));
  ++stats_.enqueued;
  if (tracer_ != nullptr) tracer_->OnEnqueue(*queue_.back(), now, Snapshot());
  return true;
}

std::unique_ptr<Packet> FifoQueueDisc::Dequeue(Time now) {
  if (queue_.empty()) return nullptr;
  std::unique_ptr<Packet> pkt = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= pkt->size_bytes;
  if (pool_ != nullptr) pool_->Release(pool_queue_, pkt->size_bytes);
  ++stats_.dequeued;
  const Time sojourn = now - pkt->enqueue_time;
  if (tracer_ != nullptr) tracer_->OnDequeue(*pkt, now, Snapshot(), sojourn);
  if (aqm_ != nullptr) {
    const bool was_ce = pkt->IsCeMarked();
    aqm_->OnDequeue(*pkt, Snapshot(), now, sojourn);
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  return pkt;
}

std::uint32_t FifoQueueDisc::PurgeAll(Time now) {
  // Pop-then-notify: accounting is fully updated before each tracer
  // callback, so a tracer observing Snapshot() mid-purge sees consistent
  // state (packets, bytes, and pool reservation all exclude the purged
  // packet).
  std::uint32_t n = 0;
  while (!queue_.empty()) {
    std::unique_ptr<Packet> pkt = std::move(queue_.front());
    queue_.pop_front();
    bytes_ -= pkt->size_bytes;
    if (pool_ != nullptr) pool_->Release(pool_queue_, pkt->size_bytes);
    ++stats_.purged;
    ++n;
    if (tracer_ != nullptr) tracer_->OnPurge(*pkt, now, Snapshot());
  }
  return n;
}

}  // namespace ecnsharp
