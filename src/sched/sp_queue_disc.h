// Strict-priority scheduler: class 0 is always served first, then class 1,
// and so on. Each class has its own FIFO and optional AQM instance — the
// second scheduler used to demonstrate that sojourn-time AQMs (TCN, ECN#)
// compose with arbitrary schedulers (§3.2, §5.4).
#ifndef ECNSHARP_SCHED_SP_QUEUE_DISC_H_
#define ECNSHARP_SCHED_SP_QUEUE_DISC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "buffer/buffer_policy.h"
#include "net/packet.h"
#include "net/packet_ring.h"
#include "net/queue_disc.h"

namespace ecnsharp {

class SpQueueDisc final : public QueueDisc {
 public:
  struct ClassConfig {
    std::unique_ptr<AqmPolicy> aqm;  // may be null
  };

  SpQueueDisc(std::uint64_t capacity_bytes, std::vector<ClassConfig> classes,
              std::function<std::size_t(const Packet&)> classifier = nullptr);

  // Draws buffer from a shared policy instead of a static capacity: each
  // class registers one policy queue with priority = its class index (which
  // is also its strict-priority rank). The policy must outlive the disc.
  SpQueueDisc(BufferPolicy& policy, std::vector<ClassConfig> classes,
              std::function<std::size_t(const Packet&)> classifier = nullptr);

  bool Enqueue(std::unique_ptr<Packet> pkt, Time now) override;
  std::unique_ptr<Packet> Dequeue(Time now) override;
  std::uint32_t PurgeAll(Time now) override;
  QueueSnapshot Snapshot() const override {
    return QueueSnapshot{total_packets_, total_bytes_};
  }
  void BindChipHotState(ChipHotBlock& block) override;

  std::size_t class_count() const { return classes_.size(); }
  QueueSnapshot ClassSnapshot(std::size_t cls) const;

 private:
  struct ClassState {
    std::unique_ptr<AqmPolicy> aqm;
    PacketRing queue;
    std::size_t pool_queue = 0;  // this class's queue id with the policy
    // Cached AqmFastPath verdict for this class's policy.
    bool aqm_threshold_mark = false;
    std::uint64_t aqm_threshold = 0;
    // Per-class occupancy via pointers (see FifoQueueDisc); fixed up after
    // classes_ stops moving (end of ctor).
    std::uint32_t local_packets = 0;
    std::uint64_t local_bytes = 0;
    std::uint32_t* packets = nullptr;
    std::uint64_t* bytes = nullptr;
  };

  std::uint64_t capacity_bytes_;
  BufferPolicy* pool_ = nullptr;  // non-owning; null = static capacity
  std::function<std::size_t(const Packet&)> classifier_;
  std::vector<ClassState> classes_;
  std::uint32_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_SCHED_SP_QUEUE_DISC_H_
