#include "sched/dwrr_queue_disc.h"

#include <cassert>
#include <utility>

#include "net/chip_hot_state.h"

namespace ecnsharp {

DwrrQueueDisc::DwrrQueueDisc(
    std::uint64_t capacity_bytes, std::vector<ClassConfig> classes,
    std::function<std::size_t(const Packet&)> classifier,
    std::uint32_t quantum_bytes)
    : capacity_bytes_(capacity_bytes),
      quantum_bytes_(quantum_bytes),
      classifier_(std::move(classifier)) {
  assert(!classes.empty());
  classes_.reserve(classes.size());
  for (auto& c : classes) {
    ClassState state;
    state.weight = c.weight;
    state.aqm = std::move(c.aqm);
    classes_.push_back(std::move(state));
  }
  // classes_ is final now; point each class's counters at its own fields.
  for (ClassState& cls : classes_) {
    cls.packets = &cls.local_packets;
    cls.bytes = &cls.local_bytes;
    cls.aqm_threshold_mark =
        cls.aqm != nullptr &&
        cls.aqm->fast_path() == AqmFastPath::kThresholdMark;
    cls.aqm_threshold =
        cls.aqm_threshold_mark ? cls.aqm->fast_path_threshold() : 0;
  }
  if (!classifier_) {
    const std::size_t n = classes_.size();
    classifier_ = [n](const Packet& p) {
      return std::min<std::size_t>(p.traffic_class, n - 1);
    };
  }
}

DwrrQueueDisc::DwrrQueueDisc(
    BufferPolicy& policy, std::vector<ClassConfig> classes,
    std::function<std::size_t(const Packet&)> classifier,
    std::uint32_t quantum_bytes)
    : DwrrQueueDisc(policy.total_bytes(), std::move(classes),
                    std::move(classifier), quantum_bytes) {
  pool_ = &policy;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    classes_[i].pool_queue = policy.RegisterQueue(static_cast<std::uint8_t>(i));
  }
}

std::uint64_t DwrrQueueDisc::MqEcnThresholdBytes(std::size_t cls_index) const {
  std::uint64_t active_weight = 0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const bool backlogged =
        !classes_[i].queue.empty() ||
        current_ == static_cast<std::ptrdiff_t>(i) || i == cls_index;
    if (backlogged) active_weight += classes_[i].weight;
  }
  if (active_weight == 0) return mq_ecn_total_bytes_;
  return mq_ecn_total_bytes_ * classes_[cls_index].weight / active_weight;
}

bool DwrrQueueDisc::Enqueue(std::unique_ptr<Packet> pkt, Time now) {
  const std::size_t idx = classifier_(*pkt);
  assert(idx < classes_.size());
  ClassState& cls = classes_[idx];
  if (pool_ != nullptr) {
    if (!pool_->TryReserve(cls.pool_queue, pkt->size_bytes)) {
      ++stats_.dropped_overflow;
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
      return false;
    }
  } else if (total_bytes_ + pkt->size_bytes > capacity_bytes_) {
    ++stats_.dropped_overflow;
    if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
    return false;
  }
  if (mq_ecn_total_bytes_ != 0) {
    const bool was_ce = pkt->IsCeMarked();
    if (*cls.bytes + pkt->size_bytes > MqEcnThresholdBytes(idx)) {
      pkt->MarkCe();
    }
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  if (cls.aqm_threshold_mark) {
    // Inlined kThresholdMark contract (see FifoQueueDisc::Enqueue).
    if (*cls.bytes + pkt->size_bytes > cls.aqm_threshold &&
        !pkt->IsCeMarked()) {
      pkt->MarkCe();
      if (pkt->IsCeMarked()) {
        ++stats_.ce_marked;
        if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
      }
    }
  } else if (cls.aqm != nullptr) {
    const bool was_ce = pkt->IsCeMarked();
    const QueueSnapshot snap{*cls.packets, *cls.bytes};
    if (!cls.aqm->AllowEnqueue(*pkt, snap, now)) {
      ++stats_.dropped_aqm;
      if (pool_ != nullptr) pool_->Release(cls.pool_queue, pkt->size_bytes);
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kAqm);
      return false;
    }
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  pkt->enqueue_time = now;
  ++*cls.packets;
  *cls.bytes += pkt->size_bytes;
  total_bytes_ += pkt->size_bytes;
  ++total_packets_;
  cls.queue.push_back(std::move(pkt));
  ++stats_.enqueued;
  if (tracer_ != nullptr) {
    tracer_->OnEnqueue(*cls.queue.back(), now, Snapshot());
  }
  if (!cls.in_active_list && current_ != static_cast<std::ptrdiff_t>(idx)) {
    cls.in_active_list = true;
    active_.push_back(idx);
  }
  return true;
}

std::unique_ptr<Packet> DwrrQueueDisc::PopFrom(ClassState& cls, Time now) {
  std::unique_ptr<Packet> pkt = cls.queue.pop_front();
  --*cls.packets;
  *cls.bytes -= pkt->size_bytes;
  total_bytes_ -= pkt->size_bytes;
  --total_packets_;
  if (pool_ != nullptr) pool_->Release(cls.pool_queue, pkt->size_bytes);
  ++stats_.dequeued;
  if (tracer_ != nullptr) {
    tracer_->OnDequeue(*pkt, now, Snapshot(), now - pkt->enqueue_time);
  }
  // kThresholdMark policies have no dequeue hook by contract.
  if (cls.aqm != nullptr && !cls.aqm_threshold_mark) {
    const bool was_ce = pkt->IsCeMarked();
    const QueueSnapshot snap{*cls.packets, *cls.bytes};
    cls.aqm->OnDequeue(*pkt, snap, now, now - pkt->enqueue_time);
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  return pkt;
}

std::unique_ptr<Packet> DwrrQueueDisc::Dequeue(Time now) {
  if (total_packets_ == 0) return nullptr;
  // At most one full rotation over the active classes is needed to find a
  // class whose deficit covers its head packet.
  for (;;) {
    if (current_ < 0) {
      if (active_.empty()) return nullptr;  // defensive; cannot happen
      current_ = static_cast<std::ptrdiff_t>(active_.front());
      active_.pop_front();
      ClassState& cls = classes_[static_cast<std::size_t>(current_)];
      cls.in_active_list = false;
      cls.deficit +=
          static_cast<std::uint64_t>(cls.weight) * quantum_bytes_;
    }
    ClassState& cls = classes_[static_cast<std::size_t>(current_)];
    if (cls.queue.empty()) {
      // Served dry during its turn: reset the deficit so an idle class does
      // not accumulate credit (work-conserving DWRR).
      cls.deficit = 0;
      current_ = -1;
      continue;
    }
    if (cls.queue.front()->size_bytes <= cls.deficit) {
      cls.deficit -= cls.queue.front()->size_bytes;
      std::unique_ptr<Packet> pkt = PopFrom(cls, now);
      if (cls.queue.empty()) {
        cls.deficit = 0;
        current_ = -1;
      }
      return pkt;
    }
    // Deficit exhausted: move the class to the back of the round.
    cls.in_active_list = true;
    active_.push_back(static_cast<std::size_t>(current_));
    current_ = -1;
  }
}

std::uint32_t DwrrQueueDisc::PurgeAll(Time now) {
  // Pop-then-notify: per-class and aggregate accounting are updated before
  // each tracer callback so Snapshot() stays consistent mid-purge.
  const std::uint32_t n = total_packets_;
  for (ClassState& cls : classes_) {
    while (!cls.queue.empty()) {
      std::unique_ptr<Packet> pkt = cls.queue.pop_front();
      --*cls.packets;
      *cls.bytes -= pkt->size_bytes;
      total_bytes_ -= pkt->size_bytes;
      --total_packets_;
      if (pool_ != nullptr) pool_->Release(cls.pool_queue, pkt->size_bytes);
      ++stats_.purged;
      if (tracer_ != nullptr) tracer_->OnPurge(*pkt, now, Snapshot());
    }
    cls.deficit = 0;
    cls.in_active_list = false;
  }
  active_.clear();
  current_ = -1;
  return n;
}

QueueSnapshot DwrrQueueDisc::ClassSnapshot(std::size_t cls) const {
  const ClassState& c = classes_.at(cls);
  return QueueSnapshot{*c.packets, *c.bytes};
}

void DwrrQueueDisc::BindChipHotState(ChipHotBlock& block) {
  // One SoA row per service class, in class order.
  for (ClassState& cls : classes_) {
    ChipHotBlock::QueueRow row = block.AllocQueueRow();
    *row.packets = *cls.packets;
    *row.bytes = *cls.bytes;
    cls.packets = row.packets;
    cls.bytes = row.bytes;
    if (cls.aqm != nullptr) cls.aqm->BindChipHotState(block);
  }
}

}  // namespace ecnsharp
