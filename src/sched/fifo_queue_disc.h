// Single-FIFO queue discipline with a byte-capacity buffer and an optional
// AQM policy. This models one switch output queue: tail-drop on overflow,
// enqueue-time marking/dropping via AqmPolicy::AllowEnqueue, dequeue-time
// (sojourn) marking via AqmPolicy::OnDequeue.
//
// Hot-path layout: the backlog lives in a PacketRing (contiguous raw
// pointers, no per-node allocation), the depth/byte counters are reached
// through pointers so BindChipHotState can repoint them into a chip-owned
// SoA block, and threshold-marking AQMs (DCTCP-RED) are inlined via the
// AqmFastPath contract instead of paying two virtual calls per packet.
#ifndef ECNSHARP_SCHED_FIFO_QUEUE_DISC_H_
#define ECNSHARP_SCHED_FIFO_QUEUE_DISC_H_

#include <cstdint>
#include <memory>

#include "buffer/buffer_policy.h"
#include "net/packet.h"
#include "net/packet_ring.h"
#include "net/queue_disc.h"
#include "net/shared_buffer.h"

namespace ecnsharp {

class FifoQueueDisc final : public QueueDisc {
 public:
  // `capacity_bytes` is the buffer available to this queue; a null policy
  // means plain drop-tail.
  FifoQueueDisc(std::uint64_t capacity_bytes, std::unique_ptr<AqmPolicy> aqm)
      : capacity_bytes_(capacity_bytes), aqm_(std::move(aqm)) {
    CacheAqmFastPath();
  }

  // Draws buffer from a shared policy (Dynamic Threshold, static split, or
  // DT+headroom — see buffer/policies.h) instead of a static per-queue
  // capacity. Registers one queue with the policy; `priority` selects
  // per-priority policy parameters (e.g. the DT alpha). The policy must
  // outlive the disc.
  FifoQueueDisc(BufferPolicy& policy, std::unique_ptr<AqmPolicy> aqm,
                std::uint8_t priority = 0)
      : capacity_bytes_(policy.total_bytes()),
        aqm_(std::move(aqm)),
        pool_(&policy),
        pool_queue_(policy.RegisterQueue(priority)) {
    CacheAqmFastPath();
  }

  // Enqueue/Dequeue are defined inline below: this is the per-packet hot
  // path of every port, and the out-of-line definitions cost a call (and
  // block inlining) from the switch datapath and the microbenches.
  bool Enqueue(std::unique_ptr<Packet> pkt, Time now) override;
  std::unique_ptr<Packet> Dequeue(Time now) override;
  std::uint32_t PurgeAll(Time now) override;
  QueueSnapshot Snapshot() const override {
    return QueueSnapshot{*packets_, *bytes_};
  }
  void BindChipHotState(ChipHotBlock& block) override;

  AqmPolicy* aqm() { return aqm_.get(); }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  void CacheAqmFastPath() {
    aqm_threshold_mark_ =
        aqm_ != nullptr && aqm_->fast_path() == AqmFastPath::kThresholdMark;
    aqm_threshold_ = aqm_threshold_mark_ ? aqm_->fast_path_threshold() : 0;
  }

  std::uint64_t capacity_bytes_;
  std::unique_ptr<AqmPolicy> aqm_;
  BufferPolicy* pool_ = nullptr;  // non-owning; null = static capacity
  std::size_t pool_queue_ = 0;    // this disc's queue id with the policy
  PacketRing queue_;
  // Occupancy counters, reached through pointers: default to the local
  // fields, repointed into the chip SoA block by BindChipHotState.
  std::uint32_t local_packets_ = 0;
  std::uint64_t local_bytes_ = 0;
  std::uint32_t* packets_ = &local_packets_;
  std::uint64_t* bytes_ = &local_bytes_;
  // Cached AqmFastPath verdict (thresholds are fixed at construction).
  bool aqm_threshold_mark_ = false;
  std::uint64_t aqm_threshold_ = 0;
};

inline bool FifoQueueDisc::Enqueue(std::unique_ptr<Packet> pkt, Time now) {
  if (pool_ != nullptr) {
    if (!pool_->TryReserve(pool_queue_, pkt->size_bytes)) {
      ++stats_.dropped_overflow;
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
      return false;
    }
  } else if (*bytes_ + pkt->size_bytes > capacity_bytes_) {
    ++stats_.dropped_overflow;
    if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
    return false;
  }
  if (aqm_threshold_mark_) {
    // Inlined kThresholdMark contract: CE-mark when occupancy including this
    // packet exceeds K, never drop. Identical to the generic path below
    // running AqmPolicy::AllowEnqueue on a threshold marker.
    if (*bytes_ + pkt->size_bytes > aqm_threshold_ && !pkt->IsCeMarked()) {
      pkt->MarkCe();  // no-op for non-ECT packets
      if (pkt->IsCeMarked()) {
        ++stats_.ce_marked;
        if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
      }
    }
  } else if (aqm_ != nullptr) {
    const bool was_ce = pkt->IsCeMarked();
    if (!aqm_->AllowEnqueue(*pkt, Snapshot(), now)) {
      ++stats_.dropped_aqm;
      if (pool_ != nullptr) pool_->Release(pool_queue_, pkt->size_bytes);
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kAqm);
      return false;
    }
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  pkt->enqueue_time = now;
  ++*packets_;
  *bytes_ += pkt->size_bytes;
  queue_.push_back(std::move(pkt));
  ++stats_.enqueued;
  if (tracer_ != nullptr) tracer_->OnEnqueue(*queue_.back(), now, Snapshot());
  return true;
}

inline std::unique_ptr<Packet> FifoQueueDisc::Dequeue(Time now) {
  if (queue_.empty()) return nullptr;
  std::unique_ptr<Packet> pkt = queue_.pop_front();
  --*packets_;
  *bytes_ -= pkt->size_bytes;
  if (pool_ != nullptr) pool_->Release(pool_queue_, pkt->size_bytes);
  ++stats_.dequeued;
  const Time sojourn = now - pkt->enqueue_time;
  if (tracer_ != nullptr) tracer_->OnDequeue(*pkt, now, Snapshot(), sojourn);
  // kThresholdMark policies have no dequeue hook by contract.
  if (aqm_ != nullptr && !aqm_threshold_mark_) {
    const bool was_ce = pkt->IsCeMarked();
    aqm_->OnDequeue(*pkt, Snapshot(), now, sojourn);
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  return pkt;
}

}  // namespace ecnsharp

#endif  // ECNSHARP_SCHED_FIFO_QUEUE_DISC_H_
