// Single-FIFO queue discipline with a byte-capacity buffer and an optional
// AQM policy. This models one switch output queue: tail-drop on overflow,
// enqueue-time marking/dropping via AqmPolicy::AllowEnqueue, dequeue-time
// (sojourn) marking via AqmPolicy::OnDequeue.
#ifndef ECNSHARP_SCHED_FIFO_QUEUE_DISC_H_
#define ECNSHARP_SCHED_FIFO_QUEUE_DISC_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "buffer/buffer_policy.h"
#include "net/packet.h"
#include "net/queue_disc.h"
#include "net/shared_buffer.h"

namespace ecnsharp {

class FifoQueueDisc : public QueueDisc {
 public:
  // `capacity_bytes` is the buffer available to this queue; a null policy
  // means plain drop-tail.
  FifoQueueDisc(std::uint64_t capacity_bytes, std::unique_ptr<AqmPolicy> aqm)
      : capacity_bytes_(capacity_bytes), aqm_(std::move(aqm)) {}

  // Draws buffer from a shared policy (Dynamic Threshold, static split, or
  // DT+headroom — see buffer/policies.h) instead of a static per-queue
  // capacity. Registers one queue with the policy; `priority` selects
  // per-priority policy parameters (e.g. the DT alpha). The policy must
  // outlive the disc.
  FifoQueueDisc(BufferPolicy& policy, std::unique_ptr<AqmPolicy> aqm,
                std::uint8_t priority = 0)
      : capacity_bytes_(policy.total_bytes()),
        aqm_(std::move(aqm)),
        pool_(&policy),
        pool_queue_(policy.RegisterQueue(priority)) {}

  bool Enqueue(std::unique_ptr<Packet> pkt, Time now) override;
  std::unique_ptr<Packet> Dequeue(Time now) override;
  std::uint32_t PurgeAll(Time now) override;
  QueueSnapshot Snapshot() const override {
    return QueueSnapshot{static_cast<std::uint32_t>(queue_.size()), bytes_};
  }

  AqmPolicy* aqm() { return aqm_.get(); }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  std::uint64_t capacity_bytes_;
  std::unique_ptr<AqmPolicy> aqm_;
  BufferPolicy* pool_ = nullptr;  // non-owning; null = static capacity
  std::size_t pool_queue_ = 0;    // this disc's queue id with the policy
  std::deque<std::unique_ptr<Packet>> queue_;
  std::uint64_t bytes_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_SCHED_FIFO_QUEUE_DISC_H_
