// Deficit Weighted Round Robin scheduler (Shreedhar & Varghese) with one
// child FIFO queue per service class and a per-class AQM policy instance.
//
// This is the configuration of the paper's Fig. 13 experiment: 3 queues with
// weights 2:1:1, each running its own sojourn-time AQM (per-queue AQM is
// exactly how TCN and ECN# compose with schedulers — a sojourn threshold
// stays meaningful even when the class's drain rate varies with the set of
// active classes).
#ifndef ECNSHARP_SCHED_DWRR_QUEUE_DISC_H_
#define ECNSHARP_SCHED_DWRR_QUEUE_DISC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "buffer/buffer_policy.h"
#include "net/packet.h"
#include "net/packet_ring.h"
#include "net/queue_disc.h"

namespace ecnsharp {

class DwrrQueueDisc final : public QueueDisc {
 public:
  struct ClassConfig {
    std::uint32_t weight = 1;
    std::unique_ptr<AqmPolicy> aqm;  // may be null (drop-tail class)
  };

  // `classifier` maps a packet to a class index; the default uses
  // Packet::traffic_class (clamped to the number of classes).
  // `quantum_bytes` is the base quantum for weight 1; one MTU by default.
  DwrrQueueDisc(std::uint64_t capacity_bytes,
                std::vector<ClassConfig> classes,
                std::function<std::size_t(const Packet&)> classifier = nullptr,
                std::uint32_t quantum_bytes = kFullPacketBytes);

  // Draws buffer from a shared policy instead of a static capacity: each
  // class registers one policy queue with priority = its class index, so a
  // per-priority DT alpha maps directly onto service classes. The policy
  // must outlive the disc.
  DwrrQueueDisc(BufferPolicy& policy, std::vector<ClassConfig> classes,
                std::function<std::size_t(const Packet&)> classifier = nullptr,
                std::uint32_t quantum_bytes = kFullPacketBytes);

  bool Enqueue(std::unique_ptr<Packet> pkt, Time now) override;
  std::unique_ptr<Packet> Dequeue(Time now) override;
  std::uint32_t PurgeAll(Time now) override;
  QueueSnapshot Snapshot() const override {
    return QueueSnapshot{total_packets_, total_bytes_};
  }
  void BindChipHotState(ChipHotBlock& block) override;

  std::size_t class_count() const { return classes_.size(); }
  QueueSnapshot ClassSnapshot(std::size_t cls) const;
  AqmPolicy* class_aqm(std::size_t cls) { return classes_[cls].aqm.get(); }

  // Enables MQ-ECN (Bai et al., NSDI 2016) queue-length marking: each class
  // gets a *dynamic* threshold proportional to its current service share,
  //   K_i(t) = w_i / (sum of weights of backlogged classes) * K_total,
  // and an arriving packet is CE-marked when its class exceeds K_i. This is
  // the queue-length alternative to per-class sojourn AQMs; the fig13
  // ablation compares the two. Not meaningful combined with per-class AQM.
  void EnableMqEcn(std::uint64_t total_threshold_bytes) {
    mq_ecn_total_bytes_ = total_threshold_bytes;
  }
  // The dynamic threshold MQ-ECN currently applies to `cls`.
  std::uint64_t MqEcnThresholdBytes(std::size_t cls) const;

 private:
  struct ClassState {
    std::uint32_t weight = 1;
    std::unique_ptr<AqmPolicy> aqm;
    PacketRing queue;
    std::uint64_t deficit = 0;
    bool in_active_list = false;
    std::size_t pool_queue = 0;  // this class's queue id with the policy
    // Cached AqmFastPath verdict for this class's policy.
    bool aqm_threshold_mark = false;
    std::uint64_t aqm_threshold = 0;
    // Per-class occupancy, reached through pointers (see FifoQueueDisc):
    // local by default, repointed into the chip SoA block on bind. The
    // pointers are fixed up after classes_ stops moving (end of ctor).
    std::uint32_t local_packets = 0;
    std::uint64_t local_bytes = 0;
    std::uint32_t* packets = nullptr;
    std::uint64_t* bytes = nullptr;
  };

  std::unique_ptr<Packet> PopFrom(ClassState& cls, Time now);

  std::uint64_t capacity_bytes_;
  std::uint32_t quantum_bytes_;
  BufferPolicy* pool_ = nullptr;  // non-owning; null = static capacity
  std::function<std::size_t(const Packet&)> classifier_;
  std::vector<ClassState> classes_;
  std::deque<std::size_t> active_;   // round-robin order of backlogged classes
  // Class currently being served (already granted its quantum); -1 if none.
  std::ptrdiff_t current_ = -1;
  std::uint32_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t mq_ecn_total_bytes_ = 0;  // 0 = MQ-ECN disabled
};

}  // namespace ecnsharp

#endif  // ECNSHARP_SCHED_DWRR_QUEUE_DISC_H_
