#include "sched/sp_queue_disc.h"

#include <cassert>
#include <utility>

namespace ecnsharp {

SpQueueDisc::SpQueueDisc(std::uint64_t capacity_bytes,
                         std::vector<ClassConfig> classes,
                         std::function<std::size_t(const Packet&)> classifier)
    : capacity_bytes_(capacity_bytes), classifier_(std::move(classifier)) {
  assert(!classes.empty());
  classes_.reserve(classes.size());
  for (auto& c : classes) {
    ClassState state;
    state.aqm = std::move(c.aqm);
    classes_.push_back(std::move(state));
  }
  if (!classifier_) {
    const std::size_t n = classes_.size();
    classifier_ = [n](const Packet& p) {
      return std::min<std::size_t>(p.traffic_class, n - 1);
    };
  }
}

SpQueueDisc::SpQueueDisc(BufferPolicy& policy, std::vector<ClassConfig> classes,
                         std::function<std::size_t(const Packet&)> classifier)
    : SpQueueDisc(policy.total_bytes(), std::move(classes),
                  std::move(classifier)) {
  pool_ = &policy;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    classes_[i].pool_queue = policy.RegisterQueue(static_cast<std::uint8_t>(i));
  }
}

bool SpQueueDisc::Enqueue(std::unique_ptr<Packet> pkt, Time now) {
  ClassState& cls = classes_[classifier_(*pkt)];
  if (pool_ != nullptr) {
    if (!pool_->TryReserve(cls.pool_queue, pkt->size_bytes)) {
      ++stats_.dropped_overflow;
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
      return false;
    }
  } else if (total_bytes_ + pkt->size_bytes > capacity_bytes_) {
    ++stats_.dropped_overflow;
    if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
    return false;
  }
  if (cls.aqm != nullptr) {
    const bool was_ce = pkt->IsCeMarked();
    const QueueSnapshot snap{static_cast<std::uint32_t>(cls.queue.size()),
                             cls.bytes};
    if (!cls.aqm->AllowEnqueue(*pkt, snap, now)) {
      ++stats_.dropped_aqm;
      if (pool_ != nullptr) pool_->Release(cls.pool_queue, pkt->size_bytes);
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kAqm);
      return false;
    }
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  pkt->enqueue_time = now;
  cls.bytes += pkt->size_bytes;
  total_bytes_ += pkt->size_bytes;
  ++total_packets_;
  cls.queue.push_back(std::move(pkt));
  ++stats_.enqueued;
  if (tracer_ != nullptr) {
    tracer_->OnEnqueue(*cls.queue.back(), now, Snapshot());
  }
  return true;
}

std::unique_ptr<Packet> SpQueueDisc::Dequeue(Time now) {
  for (ClassState& cls : classes_) {
    if (cls.queue.empty()) continue;
    std::unique_ptr<Packet> pkt = std::move(cls.queue.front());
    cls.queue.pop_front();
    cls.bytes -= pkt->size_bytes;
    total_bytes_ -= pkt->size_bytes;
    --total_packets_;
    if (pool_ != nullptr) pool_->Release(cls.pool_queue, pkt->size_bytes);
    ++stats_.dequeued;
    if (tracer_ != nullptr) {
      tracer_->OnDequeue(*pkt, now, Snapshot(), now - pkt->enqueue_time);
    }
    if (cls.aqm != nullptr) {
      const bool was_ce = pkt->IsCeMarked();
      const QueueSnapshot snap{static_cast<std::uint32_t>(cls.queue.size()),
                               cls.bytes};
      cls.aqm->OnDequeue(*pkt, snap, now, now - pkt->enqueue_time);
      if (!was_ce && pkt->IsCeMarked()) {
        ++stats_.ce_marked;
        if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
      }
    }
    return pkt;
  }
  return nullptr;
}

std::uint32_t SpQueueDisc::PurgeAll(Time now) {
  // Pop-then-notify: accounting is updated before each tracer callback so
  // Snapshot() stays consistent mid-purge.
  const std::uint32_t n = total_packets_;
  for (ClassState& cls : classes_) {
    while (!cls.queue.empty()) {
      std::unique_ptr<Packet> pkt = std::move(cls.queue.front());
      cls.queue.pop_front();
      cls.bytes -= pkt->size_bytes;
      total_bytes_ -= pkt->size_bytes;
      --total_packets_;
      if (pool_ != nullptr) pool_->Release(cls.pool_queue, pkt->size_bytes);
      ++stats_.purged;
      if (tracer_ != nullptr) tracer_->OnPurge(*pkt, now, Snapshot());
    }
  }
  return n;
}

QueueSnapshot SpQueueDisc::ClassSnapshot(std::size_t cls) const {
  const ClassState& c = classes_.at(cls);
  return QueueSnapshot{static_cast<std::uint32_t>(c.queue.size()), c.bytes};
}

}  // namespace ecnsharp
