#include "sched/sp_queue_disc.h"

#include <cassert>
#include <utility>

#include "net/chip_hot_state.h"

namespace ecnsharp {

SpQueueDisc::SpQueueDisc(std::uint64_t capacity_bytes,
                         std::vector<ClassConfig> classes,
                         std::function<std::size_t(const Packet&)> classifier)
    : capacity_bytes_(capacity_bytes), classifier_(std::move(classifier)) {
  assert(!classes.empty());
  classes_.reserve(classes.size());
  for (auto& c : classes) {
    ClassState state;
    state.aqm = std::move(c.aqm);
    classes_.push_back(std::move(state));
  }
  // classes_ is final now; point each class's counters at its own fields.
  for (ClassState& cls : classes_) {
    cls.packets = &cls.local_packets;
    cls.bytes = &cls.local_bytes;
    cls.aqm_threshold_mark =
        cls.aqm != nullptr &&
        cls.aqm->fast_path() == AqmFastPath::kThresholdMark;
    cls.aqm_threshold =
        cls.aqm_threshold_mark ? cls.aqm->fast_path_threshold() : 0;
  }
  if (!classifier_) {
    const std::size_t n = classes_.size();
    classifier_ = [n](const Packet& p) {
      return std::min<std::size_t>(p.traffic_class, n - 1);
    };
  }
}

SpQueueDisc::SpQueueDisc(BufferPolicy& policy, std::vector<ClassConfig> classes,
                         std::function<std::size_t(const Packet&)> classifier)
    : SpQueueDisc(policy.total_bytes(), std::move(classes),
                  std::move(classifier)) {
  pool_ = &policy;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    classes_[i].pool_queue = policy.RegisterQueue(static_cast<std::uint8_t>(i));
  }
}

bool SpQueueDisc::Enqueue(std::unique_ptr<Packet> pkt, Time now) {
  ClassState& cls = classes_[classifier_(*pkt)];
  if (pool_ != nullptr) {
    if (!pool_->TryReserve(cls.pool_queue, pkt->size_bytes)) {
      ++stats_.dropped_overflow;
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
      return false;
    }
  } else if (total_bytes_ + pkt->size_bytes > capacity_bytes_) {
    ++stats_.dropped_overflow;
    if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kOverflow);
    return false;
  }
  if (cls.aqm_threshold_mark) {
    // Inlined kThresholdMark contract (see FifoQueueDisc::Enqueue).
    if (*cls.bytes + pkt->size_bytes > cls.aqm_threshold &&
        !pkt->IsCeMarked()) {
      pkt->MarkCe();
      if (pkt->IsCeMarked()) {
        ++stats_.ce_marked;
        if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
      }
    }
  } else if (cls.aqm != nullptr) {
    const bool was_ce = pkt->IsCeMarked();
    const QueueSnapshot snap{*cls.packets, *cls.bytes};
    if (!cls.aqm->AllowEnqueue(*pkt, snap, now)) {
      ++stats_.dropped_aqm;
      if (pool_ != nullptr) pool_->Release(cls.pool_queue, pkt->size_bytes);
      if (tracer_ != nullptr) tracer_->OnDrop(*pkt, now, DropReason::kAqm);
      return false;
    }
    if (!was_ce && pkt->IsCeMarked()) {
      ++stats_.ce_marked;
      if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
    }
  }
  pkt->enqueue_time = now;
  ++*cls.packets;
  *cls.bytes += pkt->size_bytes;
  total_bytes_ += pkt->size_bytes;
  ++total_packets_;
  cls.queue.push_back(std::move(pkt));
  ++stats_.enqueued;
  if (tracer_ != nullptr) {
    tracer_->OnEnqueue(*cls.queue.back(), now, Snapshot());
  }
  return true;
}

std::unique_ptr<Packet> SpQueueDisc::Dequeue(Time now) {
  for (ClassState& cls : classes_) {
    if (cls.queue.empty()) continue;
    std::unique_ptr<Packet> pkt = cls.queue.pop_front();
    --*cls.packets;
    *cls.bytes -= pkt->size_bytes;
    total_bytes_ -= pkt->size_bytes;
    --total_packets_;
    if (pool_ != nullptr) pool_->Release(cls.pool_queue, pkt->size_bytes);
    ++stats_.dequeued;
    if (tracer_ != nullptr) {
      tracer_->OnDequeue(*pkt, now, Snapshot(), now - pkt->enqueue_time);
    }
    // kThresholdMark policies have no dequeue hook by contract.
    if (cls.aqm != nullptr && !cls.aqm_threshold_mark) {
      const bool was_ce = pkt->IsCeMarked();
      const QueueSnapshot snap{*cls.packets, *cls.bytes};
      cls.aqm->OnDequeue(*pkt, snap, now, now - pkt->enqueue_time);
      if (!was_ce && pkt->IsCeMarked()) {
        ++stats_.ce_marked;
        if (tracer_ != nullptr) tracer_->OnMark(*pkt, now);
      }
    }
    return pkt;
  }
  return nullptr;
}

std::uint32_t SpQueueDisc::PurgeAll(Time now) {
  // Pop-then-notify: accounting is updated before each tracer callback so
  // Snapshot() stays consistent mid-purge.
  const std::uint32_t n = total_packets_;
  for (ClassState& cls : classes_) {
    while (!cls.queue.empty()) {
      std::unique_ptr<Packet> pkt = cls.queue.pop_front();
      --*cls.packets;
      *cls.bytes -= pkt->size_bytes;
      total_bytes_ -= pkt->size_bytes;
      --total_packets_;
      if (pool_ != nullptr) pool_->Release(cls.pool_queue, pkt->size_bytes);
      ++stats_.purged;
      if (tracer_ != nullptr) tracer_->OnPurge(*pkt, now, Snapshot());
    }
  }
  return n;
}

QueueSnapshot SpQueueDisc::ClassSnapshot(std::size_t cls) const {
  const ClassState& c = classes_.at(cls);
  return QueueSnapshot{*c.packets, *c.bytes};
}

void SpQueueDisc::BindChipHotState(ChipHotBlock& block) {
  // One SoA row per strict-priority class, in priority order.
  for (ClassState& cls : classes_) {
    ChipHotBlock::QueueRow row = block.AllocQueueRow();
    *row.packets = *cls.packets;
    *row.bytes = *cls.bytes;
    cls.packets = row.packets;
    cls.bytes = row.bytes;
    if (cls.aqm != nullptr) cls.aqm->BindChipHotState(block);
  }
}

}  // namespace ecnsharp
