// Seeded random loss/corruption injection for one egress port.
//
// Models a flaky link or a misbehaving middlebox: each packet about to be
// serialized is independently lost with `drop_prob` (never reaches the wire,
// consumes no link bandwidth) or corrupted with `corrupt_prob` (serialized
// and propagated — it consumes bandwidth — but discarded at the far end
// instead of delivered, like a frame failing its CRC). Decisions come from a
// private seeded Rng so fault patterns are reproducible and independent of
// every other random stream in the experiment.
#ifndef ECNSHARP_NET_LINK_FAULT_H_
#define ECNSHARP_NET_LINK_FAULT_H_

#include <cstdint>

#include "sim/random.h"

namespace ecnsharp {

class LinkFaultInjector {
 public:
  explicit LinkFaultInjector(std::uint64_t seed, double drop_prob = 0.0,
                             double corrupt_prob = 0.0)
      : rng_(seed), drop_prob_(drop_prob), corrupt_prob_(corrupt_prob) {}

  void SetRates(double drop_prob, double corrupt_prob) {
    drop_prob_ = drop_prob;
    corrupt_prob_ = corrupt_prob;
  }

  // One decision per packet handed to the port's transmitter.
  enum class Verdict : std::uint8_t { kDeliver, kDrop, kCorrupt };

  Verdict Decide() {
    if (drop_prob_ <= 0.0 && corrupt_prob_ <= 0.0) return Verdict::kDeliver;
    const double r = rng_.Uniform();
    if (r < drop_prob_) {
      ++drops_;
      return Verdict::kDrop;
    }
    if (r < drop_prob_ + corrupt_prob_) {
      ++corruptions_;
      return Verdict::kCorrupt;
    }
    return Verdict::kDeliver;
  }

  std::uint64_t drops() const { return drops_; }
  std::uint64_t corruptions() const { return corruptions_; }
  double drop_prob() const { return drop_prob_; }
  double corrupt_prob() const { return corrupt_prob_; }

 private:
  Rng rng_;
  double drop_prob_;
  double corrupt_prob_;
  std::uint64_t drops_ = 0;
  std::uint64_t corruptions_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_LINK_FAULT_H_
