// Free-list recycling of Packet storage.
//
// Simulations construct and destroy one Packet per segment per hop-stage at
// line rate, which makes the global allocator the hottest call in the whole
// library. Packet overrides operator new/delete (definitions in
// packet_pool.cc) to draw storage from a per-thread PacketPool free list, so
// after warm-up a steady-state run performs no heap traffic for packets at
// all — every `std::make_unique<Packet>()` anywhere in the tree is pooled
// automatically.
//
// Threading contract: one simulation runs entirely on one thread (the
// property RunSweep relies on), so per-thread pooling is race-free. Packets
// must be freed on the thread that allocated them and must not outlive it.
//
// Recycling can be disabled by setting ECNSHARP_NO_PACKET_POOL=1 (checked
// once per thread), which restores plain new/delete — useful under
// AddressSanitizer, where the free list would otherwise mask use-after-free
// of packet memory.
#ifndef ECNSHARP_NET_PACKET_POOL_H_
#define ECNSHARP_NET_PACKET_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"

namespace ecnsharp {

class PacketPool {
 public:
  PacketPool();
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Returns storage for one Packet: a recycled block when available,
  // otherwise a fresh heap allocation. The caller constructs the Packet
  // (Packet::operator new does this via placement by the new-expression).
  void* Allocate();
  // Returns a block to the free list (the Packet is already destroyed).
  void Recycle(void* block);

  std::size_t free_blocks() const { return free_.size(); }
  std::uint64_t total_allocations() const { return allocations_; }
  std::uint64_t fresh_allocations() const { return fresh_; }
  std::uint64_t recycled_allocations() const { return allocations_ - fresh_; }

 private:
  std::vector<void*> free_;
  std::uint64_t allocations_ = 0;
  std::uint64_t fresh_ = 0;
  bool recycling_enabled_ = true;
};

// The pool backing Packet::operator new/delete on this thread.
PacketPool& ThreadLocalPacketPool();

// Packet factory used at transport/hostpath/workload construction sites.
// Equivalent to std::make_unique<Packet>() — the new-expression routes
// through Packet::operator new and hence the thread-local pool — but names
// the pooling contract at the call site. Fields are always freshly
// default-initialized, whether the storage is recycled or new.
inline std::unique_ptr<Packet> NewPacket() {
  return std::make_unique<Packet>();
}

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_PACKET_POOL_H_
