// Per-switch-chip struct-of-arrays hot state.
//
// A switch chip touches a handful of counters per packet: its queues' depths
// and byte occupancies, the shared-buffer accounting, and the AQM's marking
// state. Scattered across per-port heap objects those counters cost a cache
// line each; a ChipHotBlock packs them into chip-owned arrays so the packet
// loop of one chip works a few dense lines.
//
// Layout:
//  * queue occupancy rows — parallel packets[] / bytes[] arrays, allocated
//    one row per queue as ports bind (struct-of-arrays: a depth sweep across
//    the chip's queues reads consecutive words, e.g. monitor sampling and
//    shared-buffer scans).
//  * a POD bump arena — Emplace<T>() carves chunk-stable storage for other
//    per-queue hot structs (ECN#'s persistent-marker state, scheduler
//    deficits) without this header needing to know their types, which keeps
//    net/ free of dependencies on core/.
//
// Discs default to small internal fields and are repointed into a block by
// BindChipHotState (SwitchNode does this in AddPort); standalone discs —
// unit tests, microbenches, host stacks — never need a block. Addresses
// handed out are stable for the block's lifetime (chunked storage, no
// reallocation), so bound discs cache raw pointers.
#ifndef ECNSHARP_NET_CHIP_HOT_STATE_H_
#define ECNSHARP_NET_CHIP_HOT_STATE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace ecnsharp {

class ChipHotBlock {
 public:
  ChipHotBlock() = default;
  ChipHotBlock(const ChipHotBlock&) = delete;
  ChipHotBlock& operator=(const ChipHotBlock&) = delete;

  // One queue's occupancy row: stable pointers into the chip's packets[] and
  // bytes[] arrays.
  struct QueueRow {
    std::uint32_t* packets = nullptr;
    std::uint64_t* bytes = nullptr;
  };

  // Allocates the next occupancy row. Rows within a chunk are consecutive in
  // memory, in bind order.
  QueueRow AllocQueueRow() {
    const std::size_t chunk = queue_count_ >> kRowChunkShift;
    if (chunk == occ_chunks_.size()) {
      occ_chunks_.push_back(std::make_unique<OccChunk>());
    }
    const std::size_t i = queue_count_ & kRowChunkMask;
    ++queue_count_;
    OccChunk& c = *occ_chunks_[chunk];
    c.packets[i] = 0;
    c.bytes[i] = 0;
    return QueueRow{&c.packets[i], &c.bytes[i]};
  }

  std::size_t queue_count() const { return queue_count_; }

  // Total packets/bytes across every bound queue — the chip-level occupancy
  // scan the SoA layout exists for.
  std::uint32_t TotalPackets() const {
    std::uint32_t total = 0;
    ForEachRow([&](std::uint32_t p, std::uint64_t) { total += p; });
    return total;
  }
  std::uint64_t TotalBytes() const {
    std::uint64_t total = 0;
    ForEachRow([&](std::uint32_t, std::uint64_t b) { total += b; });
    return total;
  }

  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (std::size_t i = 0; i < queue_count_; ++i) {
      const OccChunk& c = *occ_chunks_[i >> kRowChunkShift];
      const std::size_t j = i & kRowChunkMask;
      fn(c.packets[j], c.bytes[j]);
    }
  }

  // Carves value-initialized, chunk-stable storage for a trivially
  // destructible hot-state POD (the block never runs destructors).
  template <typename T>
  T* Emplace() {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destructed");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    const std::size_t need = (sizeof(T) + kArenaAlign - 1) & ~(kArenaAlign - 1);
    if (arena_chunks_.empty() || arena_used_ + need > kArenaChunkBytes) {
      arena_chunks_.push_back(
          std::make_unique<unsigned char[]>(kArenaChunkBytes));
      arena_used_ = 0;
    }
    unsigned char* p = arena_chunks_.back().get() + arena_used_;
    arena_used_ += need;
    return new (p) T();
  }

 private:
  static constexpr std::size_t kRowChunkShift = 6;
  static constexpr std::size_t kRowChunkSize = 1u << kRowChunkShift;
  static constexpr std::size_t kRowChunkMask = kRowChunkSize - 1;
  static constexpr std::size_t kArenaChunkBytes = 4096;
  static constexpr std::size_t kArenaAlign = alignof(std::max_align_t);

  // Struct-of-arrays per chunk: all depths together, all byte counts
  // together.
  struct OccChunk {
    std::uint32_t packets[kRowChunkSize] = {};
    std::uint64_t bytes[kRowChunkSize] = {};
  };

  std::vector<std::unique_ptr<OccChunk>> occ_chunks_;
  std::size_t queue_count_ = 0;
  std::vector<std::unique_ptr<unsigned char[]>> arena_chunks_;
  std::size_t arena_used_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_CHIP_HOT_STATE_H_
