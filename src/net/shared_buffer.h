// Shared-buffer pool with Dynamic Threshold admission (Choudhury & Hahne).
//
// Real switching chips (including the paper's testbed devices) share one
// packet buffer across all egress queues: a queue may keep growing while
//   queue_bytes < alpha * (total - used)
// so a single hot port can take a large share of the buffer while idle
// ports reserve almost nothing.
//
// SharedBufferPool is the Dynamic Threshold policy from buffer/policies.h
// plus a legacy anonymous-queue interface for callers that track their own
// per-queue byte counts (the incast ablation bench, older tests). New code
// should use the id-based BufferPolicy interface — queue discs register a
// queue and reserve/release against it, which keeps per-queue occupancy
// inside the pool where invariant checks can see it.
#ifndef ECNSHARP_NET_SHARED_BUFFER_H_
#define ECNSHARP_NET_SHARED_BUFFER_H_

#include <cstdint>

#include "buffer/policies.h"

namespace ecnsharp {

class SharedBufferPool : public DynamicThresholdPolicy {
 public:
  SharedBufferPool(std::uint64_t total_bytes, double alpha)
      : DynamicThresholdPolicy(total_bytes, alpha) {}

  // Legacy admission test for an anonymous queue currently holding
  // `queue_bytes`, wanting to add `packet_bytes`. On success the bytes are
  // reserved against the pool (only pool-level accounting; the caller owns
  // the per-queue count). Hides the id-based BufferPolicy::TryReserve —
  // calls through a BufferPolicy& still get the id-based one.
  bool TryReserve(std::uint64_t queue_bytes, std::uint32_t packet_bytes) {
    if (used_bytes() + packet_bytes > total_bytes()) return false;
    const auto limit = static_cast<std::uint64_t>(
        alpha() * static_cast<double>(free_bytes()));
    if (queue_bytes + packet_bytes > limit) return false;
    AddUsed(packet_bytes);
    return true;
  }

  // Legacy release. Releasing more than the pool holds is an accounting bug
  // (double release); SubUsed fails fast with exit 2 — the old assert()
  // compiled out in Release builds and let used_bytes_ wrap silently.
  void Release(std::uint32_t packet_bytes) { SubUsed(packet_bytes); }

  double alpha() const { return default_alpha(); }
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_SHARED_BUFFER_H_
