// Shared-buffer pool with Dynamic Threshold admission (Choudhury & Hahne).
//
// Real switching chips (including the paper's testbed devices) share one
// packet buffer across all egress queues: a queue may keep growing while
//   queue_bytes < alpha * (total - used)
// so a single hot port can take a large share of the buffer while idle
// ports reserve almost nothing. A FifoQueueDisc optionally draws from a
// pool; the incast ablation bench compares static per-port splits against
// dynamic sharing.
#ifndef ECNSHARP_NET_SHARED_BUFFER_H_
#define ECNSHARP_NET_SHARED_BUFFER_H_

#include <cassert>
#include <cstdint>

namespace ecnsharp {

class SharedBufferPool {
 public:
  SharedBufferPool(std::uint64_t total_bytes, double alpha)
      : total_bytes_(total_bytes), alpha_(alpha) {}

  // Admission test for a queue currently holding `queue_bytes`, wanting to
  // add `packet_bytes`. On success the bytes are reserved.
  bool TryReserve(std::uint64_t queue_bytes, std::uint32_t packet_bytes) {
    if (used_bytes_ + packet_bytes > total_bytes_) return false;
    const std::uint64_t free_bytes = total_bytes_ - used_bytes_;
    const auto limit =
        static_cast<std::uint64_t>(alpha_ * static_cast<double>(free_bytes));
    if (queue_bytes + packet_bytes > limit) return false;
    used_bytes_ += packet_bytes;
    return true;
  }

  void Release(std::uint32_t packet_bytes) {
    assert(used_bytes_ >= packet_bytes);
    used_bytes_ -= packet_bytes;
  }

  std::uint64_t used_bytes() const { return used_bytes_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  double alpha() const { return alpha_; }

 private:
  std::uint64_t total_bytes_;
  double alpha_;
  std::uint64_t used_bytes_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_SHARED_BUFFER_H_
