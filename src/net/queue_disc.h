// Queueing-discipline and AQM-policy interfaces.
//
// An EgressPort owns exactly one QueueDisc (single FIFO or a multi-queue
// scheduler). AQM policies plug into queue discs and get two hooks:
//
//  * AllowEnqueue — runs on packet arrival with the instantaneous queue
//    state; may CE-mark the packet (DCTCP-RED style queue-length marking)
//    or veto the enqueue (drop).
//  * OnDequeue — runs when the packet leaves the queue, with the packet's
//    sojourn time; may CE-mark (CoDel / TCN / ECN# style sojourn marking).
//
// Buffer-overflow drops are enforced by the queue disc itself, independent
// of policy — this is what lets CoDel-style conservative marking run out of
// buffer under incast (paper §5.4, Fig. 10).
#ifndef ECNSHARP_NET_QUEUE_DISC_H_
#define ECNSHARP_NET_QUEUE_DISC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.h"
#include "net/packet_tracer.h"
#include "sim/time.h"

namespace ecnsharp {

class ChipHotBlock;

// Instantaneous occupancy of a queue (or of a whole multi-queue disc).
struct QueueSnapshot {
  std::uint32_t packets = 0;
  std::uint64_t bytes = 0;
};

// Classification of an AQM policy's hot-path behaviour, so queue discs can
// inline the per-packet work of simple policies instead of paying two
// virtual calls per packet.
//
//  * kGeneric       — the disc must call AllowEnqueue / OnDequeue.
//  * kThresholdMark — the policy is exactly "CE-mark when queue bytes
//    including this packet exceed fast_path_threshold(); never drop; no
//    dequeue hook" (DCTCP-RED). The disc may inline that comparison and
//    skip both virtual calls; behaviour is byte-identical by contract.
enum class AqmFastPath : std::uint8_t { kGeneric, kThresholdMark };

class AqmPolicy {
 public:
  virtual ~AqmPolicy() = default;

  // `snapshot` describes the queue *before* this packet is appended.
  // Returns false to drop the packet instead of enqueueing it.
  virtual bool AllowEnqueue(Packet& pkt, const QueueSnapshot& snapshot,
                            Time now) {
    (void)pkt;
    (void)snapshot;
    (void)now;
    return true;
  }

  // `snapshot` describes the queue *after* this packet was removed;
  // `sojourn` is the time the packet spent queued.
  virtual void OnDequeue(Packet& pkt, const QueueSnapshot& snapshot, Time now,
                         Time sojourn) {
    (void)pkt;
    (void)snapshot;
    (void)now;
    (void)sojourn;
  }

  virtual std::string name() const = 0;

  // See AqmFastPath. Policies whose per-packet work is expressible as one of
  // the fast-path families advertise it here; everything else stays generic.
  virtual AqmFastPath fast_path() const { return AqmFastPath::kGeneric; }
  // For kThresholdMark: the byte threshold K. Re-queried by discs after any
  // reconfiguration that changes it.
  virtual std::uint64_t fast_path_threshold() const { return 0; }

  // Repoints the policy's mutable hot state (e.g. ECN#'s persistent-marker
  // fields) into the chip-owned SoA block; default keeps internal fields.
  // Called by the owning disc's own BindChipHotState.
  virtual void BindChipHotState(ChipHotBlock& block) { (void)block; }
};

struct QueueDiscStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped_overflow = 0;  // buffer exhausted
  std::uint64_t dropped_aqm = 0;       // policy vetoed the enqueue
  std::uint64_t purged = 0;            // dropped by PurgeAll (link flap)
  std::uint64_t ce_marked = 0;         // packets CE-marked by the policy
};

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  // Returns false if the packet was dropped (overflow or AQM veto).
  virtual bool Enqueue(std::unique_ptr<Packet> pkt, Time now) = 0;
  // Returns nullptr when empty.
  virtual std::unique_ptr<Packet> Dequeue(Time now) = 0;
  // Total occupancy across all internal queues.
  virtual QueueSnapshot Snapshot() const = 0;
  // Drops every queued packet (a flapped port configured to drop its
  // backlog). Shared-buffer reservations are released, drops are counted in
  // stats().purged (NOT dequeued — AQM OnDequeue hooks must not run), and
  // the tracer sees one OnPurge per packet (default forwards to
  // OnDrop(kPurged)), with accounting updated before each callback so
  // Snapshot() is consistent mid-purge. Returns the number of packets
  // dropped. The accounting invariant becomes
  //   enqueued == dequeued + purged + queued.
  virtual std::uint32_t PurgeAll(Time now) = 0;

  bool IsEmpty() const { return Snapshot().packets == 0; }
  const QueueDiscStats& stats() const { return stats_; }

  // Repoints this disc's hot occupancy counters (queue depth, queued bytes,
  // and any policy hot state) into the chip-owned struct-of-arrays block
  // (see net/chip_hot_state.h). Called once by the switch when the port is
  // added; current counter values are copied into the block. Discs that
  // don't opt in keep their internal fields — standalone use needs no block.
  virtual void BindChipHotState(ChipHotBlock& block) { (void)block; }

  // Optional drop/mark tracing (non-owning; null disables). Ports forward
  // their tracer here so one SetTracer on the port covers the whole path.
  void SetTracer(PacketTracer* tracer) { tracer_ = tracer; }

 protected:
  QueueDiscStats stats_;
  PacketTracer* tracer_ = nullptr;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_QUEUE_DISC_H_
