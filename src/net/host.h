// End-host node.
//
// A host has one NIC (an EgressPort toward its switch or peer), an optional
// netem-style extra egress delay that inflates the base RTT of all flows it
// originates (§2.3), and an upper-layer protocol handler (normally a
// TcpStack, registered by the transport library) that receives every packet
// addressed to this host.
#ifndef ECNSHARP_NET_HOST_H_
#define ECNSHARP_NET_HOST_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

#include "net/egress_port.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace ecnsharp {

class Host : public PacketSink {
 public:
  Host(Simulator& sim, std::uint32_t address) : sim_(sim), address_(address) {}

  std::uint32_t address() const { return address_; }
  Simulator& sim() { return sim_; }

  // Installs the NIC. The host owns the port.
  EgressPort& AttachNic(std::unique_ptr<EgressPort> port) {
    nic_ = std::move(port);
    return *nic_;
  }
  EgressPort& nic() {
    assert(nic_ != nullptr);
    return *nic_;
  }
  const EgressPort& nic() const {
    assert(nic_ != nullptr);
    return *nic_;
  }

  // Extra one-way delay applied to every packet this host transmits
  // (emulates netem at the sender; inflates this host's flows' base RTT by
  // exactly this amount since only the forward path is delayed).
  void set_extra_egress_delay(Time delay) { extra_egress_delay_ = delay; }
  Time extra_egress_delay() const { return extra_egress_delay_; }

  // Logical locality (host group / pod) annotated by the topology builder;
  // the relaxed-lanes executor maps localities onto event lanes. 0 = the
  // shared/core locality.
  void set_locality_id(std::uint32_t id) { locality_id_ = id; }
  std::uint32_t locality_id() const { return locality_id_; }

  // Entry point for the transport layer: applies the extra egress delay and
  // hands the packet to the NIC queue.
  void SendPacket(std::unique_ptr<Packet> pkt);

  // Protocol handler receiving all packets delivered to this host.
  void SetProtocolHandler(PacketSink& handler) { upper_ = &handler; }

  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    if (upper_ != nullptr) upper_->HandlePacket(std::move(pkt));
    // Without a handler the packet is silently consumed (sink host).
  }

 private:
  Simulator& sim_;
  std::uint32_t address_;
  std::unique_ptr<EgressPort> nic_;
  Time extra_egress_delay_ = Time::Zero();
  std::uint32_t locality_id_ = 0;
  PacketSink* upper_ = nullptr;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_HOST_H_
