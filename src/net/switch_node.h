// Output-queued switch with static routing and per-flow ECMP.
//
// Forwarding model: a packet arriving at the switch is looked up by
// destination address; if several egress ports match (multiple equal-cost
// uplinks), one is selected by hashing the flow key with a per-switch salt,
// so every packet of a flow takes the same path (per-flow ECMP, as in the
// paper's leaf-spine simulations). Queueing happens only at egress ports.
//
// Three route granularities, consulted most-specific-first:
//   * exact:   AddRoute(dst, port) — one destination address,
//   * range:   AddRouteRange(lo, hi, port) — a contiguous address block
//              (a fat-tree pod or edge subnet),
//   * default: AddDefaultRoute(port) — everything else (the "up" route of
//              an edge/aggregation switch).
// Range and default routes keep table memory independent of host count: a
// k=32 fat-tree edge switch carries 16 exact routes plus one 16-way default
// set instead of 8192 per-host entries per uplink.
#ifndef ECNSHARP_NET_SWITCH_NODE_H_
#define ECNSHARP_NET_SWITCH_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/chip_hot_state.h"
#include "net/egress_port.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace ecnsharp {

class SwitchNode : public PacketSink {
 public:
  SwitchNode(Simulator& sim, std::string name, std::uint64_t ecmp_salt = 0)
      : sim_(sim), name_(std::move(name)), ecmp_salt_(ecmp_salt) {}

  const std::string& name() const { return name_; }

  // Installs an egress port; the switch owns it. The port's queue disc is
  // bound into this switch's chip hot-state block, so all of the chip's
  // queue occupancy counters live in one SoA array (see chip_hot_state.h).
  EgressPort& AddPort(std::unique_ptr<EgressPort> port) {
    port->queue_disc().BindChipHotState(hot_);
    ports_.push_back(std::move(port));
    return *ports_.back();
  }
  std::size_t port_count() const { return ports_.size(); }
  EgressPort& port(std::size_t i) { return *ports_.at(i); }
  const EgressPort& port(std::size_t i) const { return *ports_.at(i); }

  // Adds `port` to the ECMP set for destination address `dst`.
  void AddRoute(std::uint32_t dst, EgressPort& port) {
    routes_[dst].push_back(&port);
  }

  // Adds `port` to the ECMP set for every destination in [lo, hi]
  // (inclusive) that has no exact route. Ranges must either coincide with an
  // existing range (extending its ECMP set) or be disjoint from all others.
  void AddRouteRange(std::uint32_t lo, std::uint32_t hi, EgressPort& port);

  // Adds `port` to the ECMP set used when neither an exact nor a range
  // route matches.
  void AddDefaultRoute(EgressPort& port) { default_route_.push_back(&port); }

  void HandlePacket(std::unique_ptr<Packet> pkt) override;

  // The ECMP bucket for a flow-key hash under a per-switch salt: a
  // splitmix64-style finalizer over (key_hash, salt). Every input bit
  // avalanches into the bucket choice, so structured key populations
  // (sequential addresses/ports) spread uniformly and consecutive salted
  // hops choose independently — no polarization. `buckets` must be > 0.
  static std::size_t EcmpBucket(std::uint64_t key_hash, std::uint64_t salt,
                                std::size_t buckets) {
    std::uint64_t h = key_hash + salt * 0x9e3779b97f4a7c15ull;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h % buckets);
  }

  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t no_route_drops() const { return no_route_drops_; }

  // This chip's hot-state block (queue occupancy rows in port-add order).
  ChipHotBlock& chip_hot_state() { return hot_; }
  const ChipHotBlock& chip_hot_state() const { return hot_; }

  // Locality tag for sharded event lanes: topologies annotate each switch
  // with the lane its events belong to (e.g. the fat-tree pod index).
  void set_locality_id(std::uint32_t id) { locality_id_ = id; }
  std::uint32_t locality_id() const { return locality_id_; }

 private:
  struct RangeRoute {
    std::uint32_t lo;
    std::uint32_t hi;  // inclusive
    std::vector<EgressPort*> ports;
  };

  EgressPort& SelectEcmp(const std::vector<EgressPort*>& candidates,
                         const FlowKey& flow) const;
  const std::vector<EgressPort*>* LookupRange(std::uint32_t dst) const;

  Simulator& sim_;
  std::string name_;
  std::uint64_t ecmp_salt_;
  std::vector<std::unique_ptr<EgressPort>> ports_;
  std::unordered_map<std::uint32_t, std::vector<EgressPort*>> routes_;
  std::vector<RangeRoute> range_routes_;  // sorted by lo, pairwise disjoint
  std::vector<EgressPort*> default_route_;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t no_route_drops_ = 0;
  ChipHotBlock hot_;
  std::uint32_t locality_id_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_SWITCH_NODE_H_
