// Output-queued switch with static routing and per-flow ECMP.
//
// Forwarding model: a packet arriving at the switch is looked up by
// destination address; if several egress ports match (multiple equal-cost
// uplinks), one is selected by hashing the flow key with a per-switch salt,
// so every packet of a flow takes the same path (per-flow ECMP, as in the
// paper's leaf-spine simulations). Queueing happens only at egress ports.
#ifndef ECNSHARP_NET_SWITCH_NODE_H_
#define ECNSHARP_NET_SWITCH_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/egress_port.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace ecnsharp {

class SwitchNode : public PacketSink {
 public:
  SwitchNode(Simulator& sim, std::string name, std::uint64_t ecmp_salt = 0)
      : sim_(sim), name_(std::move(name)), ecmp_salt_(ecmp_salt) {}

  const std::string& name() const { return name_; }

  // Installs an egress port; the switch owns it.
  EgressPort& AddPort(std::unique_ptr<EgressPort> port) {
    ports_.push_back(std::move(port));
    return *ports_.back();
  }
  std::size_t port_count() const { return ports_.size(); }
  EgressPort& port(std::size_t i) { return *ports_.at(i); }
  const EgressPort& port(std::size_t i) const { return *ports_.at(i); }

  // Adds `port` to the ECMP set for destination address `dst`.
  void AddRoute(std::uint32_t dst, EgressPort& port) {
    routes_[dst].push_back(&port);
  }

  void HandlePacket(std::unique_ptr<Packet> pkt) override;

  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t no_route_drops() const { return no_route_drops_; }

 private:
  EgressPort& SelectEcmp(const std::vector<EgressPort*>& candidates,
                         const FlowKey& flow) const;

  Simulator& sim_;
  std::string name_;
  std::uint64_t ecmp_salt_;
  std::vector<std::unique_ptr<EgressPort>> ports_;
  std::unordered_map<std::uint32_t, std::vector<EgressPort*>> routes_;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t no_route_drops_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_SWITCH_NODE_H_
