// DelayLine: a netem-like stage that forwards packets to the next sink after
// an extra delay.
//
// The paper emulates RTT variation by adding sender-side delay with Linux
// netem (§2.3); a DelayLine with a fixed delay per host reproduces exactly
// that. With a stochastic sampler it models a variable-latency processing
// component (SLB, hypervisor, loaded network stack — §2.2).
//
// In-flight packets sit in one (deliver_at, order)-sorted queue drained by a
// single pinned event re-armed per delivery — O(1) per packet, no closure
// allocation — with order stamps reserved at arrival so deliveries
// interleave exactly like the legacy one-event-per-packet scheme
// (net/event_mode.h switches back to it for parity tests).
#ifndef ECNSHARP_NET_DELAY_LINE_H_
#define ECNSHARP_NET_DELAY_LINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "net/event_mode.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace ecnsharp {

class DelayLine : public PacketSink {
 public:
  // Fixed extra delay.
  DelayLine(Simulator& sim, PacketSink& next, Time delay)
      : DelayLine(sim, next, std::function<Time()>([delay] { return delay; })) {}

  // Stochastic extra delay: `sampler` is invoked once per packet. Note that
  // a stochastic stage can reorder packets, just like a real variable-latency
  // component.
  DelayLine(Simulator& sim, PacketSink& next, std::function<Time()> sampler)
      : sim_(sim), next_(next), sampler_(std::move(sampler)) {
    deliver_event_ = sim_.CreatePinned([this] { DeliverFront(); });
  }

  ~DelayLine() override { sim_.DestroyPinned(deliver_event_); }

  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    if (LegacyPerPacketEvents()) {
      sim_.Schedule(sampler_(), [this, p = std::move(pkt)]() mutable {
        next_.HandlePacket(std::move(p));
      });
      return;
    }
    // Reserve the order stamp where the legacy path scheduled the event.
    Push(Entry{sim_.Now() + sampler_(), sim_.ReserveOrder(), std::move(pkt)});
  }

  // Runtime reconfiguration (dynamics scripts shift the delay distribution
  // mid-run). Applies to packets that arrive after the call; packets already
  // in flight keep the delay they were scheduled with.
  void SetDelay(Time delay) {
    sampler_ = [delay] { return delay; };
  }
  void SetSampler(std::function<Time()> sampler) {
    sampler_ = std::move(sampler);
  }

 private:
  struct Entry {
    Time deliver_at;
    std::uint64_t order;
    std::unique_ptr<Packet> pkt;
  };

  void Push(Entry entry) {
    // Sorted insert from the back: appends for fixed delays; a stochastic
    // sampler (which may reorder) walks only past later deliveries.
    auto it = queue_.end();
    while (it != queue_.begin()) {
      const Entry& prev = *std::prev(it);
      if (prev.deliver_at < entry.deliver_at ||
          (prev.deliver_at == entry.deliver_at && prev.order < entry.order)) {
        break;
      }
      --it;
    }
    const bool new_front = it == queue_.begin();
    queue_.insert(it, std::move(entry));
    if (new_front) {
      if (sim_.PinnedArmed(deliver_event_)) sim_.CancelPinned(deliver_event_);
      sim_.SchedulePinnedAtOrdered(deliver_event_, queue_.front().deliver_at,
                                   queue_.front().order);
    }
  }

  void DeliverFront() {
    Entry entry = std::move(queue_.front());
    queue_.pop_front();
    if (!queue_.empty()) {
      sim_.SchedulePinnedAtOrdered(deliver_event_, queue_.front().deliver_at,
                                   queue_.front().order);
    }
    next_.HandlePacket(std::move(entry.pkt));
  }

  Simulator& sim_;
  PacketSink& next_;
  std::function<Time()> sampler_;
  std::deque<Entry> queue_;
  PinnedEventId deliver_event_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_DELAY_LINE_H_
