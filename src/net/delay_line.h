// DelayLine: a netem-like stage that forwards packets to the next sink after
// an extra delay.
//
// The paper emulates RTT variation by adding sender-side delay with Linux
// netem (§2.3); a DelayLine with a fixed delay per host reproduces exactly
// that. With a stochastic sampler it models a variable-latency processing
// component (SLB, hypervisor, loaded network stack — §2.2).
#ifndef ECNSHARP_NET_DELAY_LINE_H_
#define ECNSHARP_NET_DELAY_LINE_H_

#include <functional>
#include <memory>
#include <utility>

#include "net/packet.h"
#include "sim/simulator.h"

namespace ecnsharp {

class DelayLine : public PacketSink {
 public:
  // Fixed extra delay.
  DelayLine(Simulator& sim, PacketSink& next, Time delay)
      : sim_(sim), next_(next), sampler_([delay] { return delay; }) {}

  // Stochastic extra delay: `sampler` is invoked once per packet. Note that
  // a stochastic stage can reorder packets, just like a real variable-latency
  // component.
  DelayLine(Simulator& sim, PacketSink& next, std::function<Time()> sampler)
      : sim_(sim), next_(next), sampler_(std::move(sampler)) {}

  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    sim_.Schedule(sampler_(), [this, p = std::move(pkt)]() mutable {
      next_.HandlePacket(std::move(p));
    });
  }

  // Runtime reconfiguration (dynamics scripts shift the delay distribution
  // mid-run). Applies to packets that arrive after the call; packets already
  // in flight keep the delay they were scheduled with.
  void SetDelay(Time delay) {
    sampler_ = [delay] { return delay; };
  }
  void SetSampler(std::function<Time()> sampler) {
    sampler_ = std::move(sampler);
  }

 private:
  Simulator& sim_;
  PacketSink& next_;
  std::function<Time()> sampler_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_DELAY_LINE_H_
