#include "net/packet_pool.h"

#include <cstdlib>
#include <new>

namespace ecnsharp {

PacketPool::PacketPool() {
  const char* env = std::getenv("ECNSHARP_NO_PACKET_POOL");
  recycling_enabled_ = (env == nullptr || *env == '\0' || *env == '0');
}

PacketPool::~PacketPool() {
  for (void* block : free_) ::operator delete(block);
}

void* PacketPool::Allocate() {
  ++allocations_;
  if (free_.empty()) {
    ++fresh_;
    return ::operator new(sizeof(Packet));
  }
  void* block = free_.back();
  free_.pop_back();
  return block;
}

void PacketPool::Recycle(void* block) {
  if (!recycling_enabled_) {
    ::operator delete(block);
    return;
  }
  free_.push_back(block);
}

PacketPool& ThreadLocalPacketPool() {
  thread_local PacketPool pool;
  return pool;
}

void* Packet::operator new(std::size_t size) {
  // A derived type (none exist today) would fall through to the heap.
  if (size != sizeof(Packet)) return ::operator new(size);
  return ThreadLocalPacketPool().Allocate();
}

void Packet::operator delete(void* ptr, std::size_t size) noexcept {
  if (ptr == nullptr) return;
  if (size != sizeof(Packet)) {
    ::operator delete(ptr);
    return;
  }
  ThreadLocalPacketPool().Recycle(ptr);
}

void Packet::operator delete(void* ptr) noexcept {
  Packet::operator delete(ptr, sizeof(Packet));
}

}  // namespace ecnsharp
