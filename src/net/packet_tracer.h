// Lightweight per-port packet tracing, tcpdump-style.
//
// An EgressPort optionally reports every transmitted packet to a tracer;
// queue discs report drops through their stats. The TextTracer renders
// events as one line each ("12.345us TX 0->1 seq=1460 len=1500 CE") for
// debugging and for golden-trace tests.
#ifndef ECNSHARP_NET_PACKET_TRACER_H_
#define ECNSHARP_NET_PACKET_TRACER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace ecnsharp {

class PacketTracer {
 public:
  virtual ~PacketTracer() = default;
  virtual void OnTransmit(const Packet& pkt, Time at) = 0;
};

// Collects formatted lines in memory (bounded).
class TextTracer : public PacketTracer {
 public:
  explicit TextTracer(std::size_t max_lines = 100'000)
      : max_lines_(max_lines) {}

  void OnTransmit(const Packet& pkt, Time at) override {
    if (lines_.size() >= max_lines_) {
      ++suppressed_;
      return;
    }
    lines_.push_back(Format(pkt, at));
  }

  static std::string Format(const Packet& pkt, Time at);

  const std::vector<std::string>& lines() const { return lines_; }
  std::size_t suppressed() const { return suppressed_; }

 private:
  std::size_t max_lines_;
  std::vector<std::string> lines_;
  std::size_t suppressed_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_PACKET_TRACER_H_
