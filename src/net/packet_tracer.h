// Lightweight per-port packet tracing, tcpdump-style.
//
// An EgressPort optionally reports every transmitted packet to a tracer;
// queue discs report drops and CE marks through the same interface, so a
// dynamics run can audit *where* loss and marking happen (overflow vs AQM
// veto vs injected fault vs link flap). The TextTracer renders events as one
// line each ("12.345us TX 0->1 seq=1460 len=1500 CE") for debugging and for
// golden-trace tests.
#ifndef ECNSHARP_NET_PACKET_TRACER_H_
#define ECNSHARP_NET_PACKET_TRACER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace ecnsharp {

// Why a packet never reached the peer.
enum class DropReason : std::uint8_t {
  kOverflow,   // buffer exhausted (tail drop / shared pool refusal)
  kAqm,        // policy vetoed the enqueue
  kLinkDown,   // arrived at a port whose link is administratively down
  kPurged,     // queued when a flapped port dropped its backlog
  kFaultLoss,  // injected random loss (dropped before serialization)
  kCorrupt,    // injected corruption (transmitted, discarded at the far end)
};

const char* DropReasonName(DropReason reason);

struct QueueSnapshot;

class PacketTracer {
 public:
  virtual ~PacketTracer() = default;
  virtual void OnTransmit(const Packet& pkt, Time at) = 0;
  // A packet was lost. Default no-op keeps transmit-only tracers working.
  virtual void OnDrop(const Packet& pkt, Time at, DropReason reason) {
    (void)pkt;
    (void)at;
    (void)reason;
  }
  // A packet was CE-marked by an AQM policy (at enqueue or dequeue).
  virtual void OnMark(const Packet& pkt, Time at) {
    (void)pkt;
    (void)at;
  }
  // A packet was accepted into the queue; `after` is the occupancy
  // including it.
  virtual void OnEnqueue(const Packet& pkt, Time at,
                         const QueueSnapshot& after) {
    (void)pkt;
    (void)at;
    (void)after;
  }
  // A packet left the queue for transmission; `after` excludes it and
  // `sojourn` is the time it spent queued.
  virtual void OnDequeue(const Packet& pkt, Time at, const QueueSnapshot& after,
                         Time sojourn) {
    (void)pkt;
    (void)at;
    (void)after;
    (void)sojourn;
  }
  // A queued packet was discarded by PurgeAll; `after` excludes it. The
  // disc updates its accounting before each callback, so `after` is
  // consistent mid-purge. Default forwards to OnDrop(kPurged) so
  // drop-oriented tracers (e.g. TextTracer) see purges without overriding
  // this hook.
  virtual void OnPurge(const Packet& pkt, Time at, const QueueSnapshot& after) {
    (void)after;
    OnDrop(pkt, at, DropReason::kPurged);
  }
};

// Fans every event out to two tracers, so two observers (e.g. the flight
// recorder and the sketch telemetry) can share a port's single tracer slot.
// Either side may be null; both pointers are borrowed.
class TeeTracer : public PacketTracer {
 public:
  TeeTracer(PacketTracer* first, PacketTracer* second)
      : first_(first), second_(second) {}

  void OnTransmit(const Packet& pkt, Time at) override {
    if (first_ != nullptr) first_->OnTransmit(pkt, at);
    if (second_ != nullptr) second_->OnTransmit(pkt, at);
  }
  void OnDrop(const Packet& pkt, Time at, DropReason reason) override {
    if (first_ != nullptr) first_->OnDrop(pkt, at, reason);
    if (second_ != nullptr) second_->OnDrop(pkt, at, reason);
  }
  void OnMark(const Packet& pkt, Time at) override {
    if (first_ != nullptr) first_->OnMark(pkt, at);
    if (second_ != nullptr) second_->OnMark(pkt, at);
  }
  void OnEnqueue(const Packet& pkt, Time at,
                 const QueueSnapshot& after) override {
    if (first_ != nullptr) first_->OnEnqueue(pkt, at, after);
    if (second_ != nullptr) second_->OnEnqueue(pkt, at, after);
  }
  void OnDequeue(const Packet& pkt, Time at, const QueueSnapshot& after,
                 Time sojourn) override {
    if (first_ != nullptr) first_->OnDequeue(pkt, at, after, sojourn);
    if (second_ != nullptr) second_->OnDequeue(pkt, at, after, sojourn);
  }
  void OnPurge(const Packet& pkt, Time at, const QueueSnapshot& after) override {
    if (first_ != nullptr) first_->OnPurge(pkt, at, after);
    if (second_ != nullptr) second_->OnPurge(pkt, at, after);
  }

 private:
  PacketTracer* first_;
  PacketTracer* second_;
};

// Collects formatted lines in memory (bounded).
class TextTracer : public PacketTracer {
 public:
  explicit TextTracer(std::size_t max_lines = 100'000)
      : max_lines_(max_lines) {}

  void OnTransmit(const Packet& pkt, Time at) override {
    Append(Format(pkt, at));
  }

  void OnDrop(const Packet& pkt, Time at, DropReason reason) override {
    ++drops_;
    Append(FormatEvent("DROP", pkt, at) + " reason=" + DropReasonName(reason));
  }

  void OnMark(const Packet& pkt, Time at) override {
    ++marks_;
    Append(FormatEvent("MARK", pkt, at));
  }

  static std::string Format(const Packet& pkt, Time at);
  // Same line layout with an arbitrary event tag ("TX", "DROP", "MARK").
  static std::string FormatEvent(const char* event, const Packet& pkt,
                                 Time at);

  const std::vector<std::string>& lines() const { return lines_; }
  std::size_t suppressed() const { return suppressed_; }
  std::size_t drops() const { return drops_; }
  std::size_t marks() const { return marks_; }

 private:
  void Append(std::string line) {
    if (lines_.size() >= max_lines_) {
      ++suppressed_;
      return;
    }
    lines_.push_back(std::move(line));
  }

  std::size_t max_lines_;
  std::vector<std::string> lines_;
  std::size_t suppressed_ = 0;
  std::size_t drops_ = 0;
  std::size_t marks_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_PACKET_TRACER_H_
