#include "net/switch_node.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ecnsharp {

void SwitchNode::AddRouteRange(std::uint32_t lo, std::uint32_t hi,
                               EgressPort& port) {
  assert(lo <= hi);
  const auto it = std::lower_bound(
      range_routes_.begin(), range_routes_.end(), lo,
      [](const RangeRoute& r, std::uint32_t value) { return r.lo < value; });
  if (it != range_routes_.end() && it->lo == lo && it->hi == hi) {
    it->ports.push_back(&port);  // same block: widen the ECMP set
    return;
  }
  assert((it == range_routes_.end() || hi < it->lo) &&
         (it == range_routes_.begin() || std::prev(it)->hi < lo) &&
         "range routes must be disjoint");
  range_routes_.insert(it, RangeRoute{lo, hi, {&port}});
}

const std::vector<EgressPort*>* SwitchNode::LookupRange(
    std::uint32_t dst) const {
  // First range whose lo > dst; the candidate (if any) is the one before it.
  const auto it = std::upper_bound(
      range_routes_.begin(), range_routes_.end(), dst,
      [](std::uint32_t value, const RangeRoute& r) { return value < r.lo; });
  if (it == range_routes_.begin()) return nullptr;
  const RangeRoute& r = *std::prev(it);
  return dst <= r.hi ? &r.ports : nullptr;
}

void SwitchNode::HandlePacket(std::unique_ptr<Packet> pkt) {
  ++rx_packets_;
  const auto it = routes_.find(pkt->flow.dst);
  if (it != routes_.end() && !it->second.empty()) {
    SelectEcmp(it->second, pkt->flow).Enqueue(std::move(pkt));
    return;
  }
  if (const std::vector<EgressPort*>* ports = LookupRange(pkt->flow.dst)) {
    SelectEcmp(*ports, pkt->flow).Enqueue(std::move(pkt));
    return;
  }
  if (!default_route_.empty()) {
    SelectEcmp(default_route_, pkt->flow).Enqueue(std::move(pkt));
    return;
  }
  ++no_route_drops_;
  // packet destroyed: no route
}

EgressPort& SwitchNode::SelectEcmp(const std::vector<EgressPort*>& candidates,
                                   const FlowKey& flow) const {
  if (candidates.size() == 1) return *candidates.front();
  return *candidates[EcmpBucket(FlowKeyHash{}(flow), ecmp_salt_,
                                candidates.size())];
}

}  // namespace ecnsharp
