#include "net/switch_node.h"

#include <utility>

namespace ecnsharp {

void SwitchNode::HandlePacket(std::unique_ptr<Packet> pkt) {
  ++rx_packets_;
  const auto it = routes_.find(pkt->flow.dst);
  if (it == routes_.end() || it->second.empty()) {
    ++no_route_drops_;
    return;  // packet destroyed: no route
  }
  SelectEcmp(it->second, pkt->flow).Enqueue(std::move(pkt));
}

EgressPort& SwitchNode::SelectEcmp(const std::vector<EgressPort*>& candidates,
                                   const FlowKey& flow) const {
  if (candidates.size() == 1) return *candidates.front();
  std::uint64_t h = FlowKeyHash{}(flow);
  // Mix in the per-switch salt so consecutive hops hash independently
  // (avoids the classic ECMP polarization problem).
  h ^= ecmp_salt_ + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return *candidates[h % candidates.size()];
}

}  // namespace ecnsharp
