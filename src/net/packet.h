// Packet model.
//
// Packets are metadata-only: the simulator never materializes payload bytes.
// A single struct carries the fields of the Ethernet/IP/TCP headers that the
// models read, plus the queue-enqueue timestamp used to compute sojourn time
// (the paper implements the same thing with ns-3 packet tags, §5.3).
#ifndef ECNSHARP_NET_PACKET_H_
#define ECNSHARP_NET_PACKET_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/time.h"

namespace ecnsharp {

// Wire-size constants. A full-size data segment is 1500 bytes on the wire:
// 1460 bytes of payload plus 40 bytes of IP+TCP header (we fold the Ethernet
// overhead into the serialization model's notion of "wire bytes").
inline constexpr std::uint32_t kMaxSegmentSize = 1460;
inline constexpr std::uint32_t kDataHeaderBytes = 40;
inline constexpr std::uint32_t kFullPacketBytes = kMaxSegmentSize + kDataHeaderBytes;
inline constexpr std::uint32_t kAckPacketBytes = 60;

// Connection 4-tuple. Addresses are flat 32-bit host ids assigned by the
// topology builder.
struct FlowKey {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  // The key of packets flowing in the opposite direction.
  FlowKey Reversed() const { return FlowKey{dst, src, dst_port, src_port}; }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    // FNV-1a over the four fields; cheap and well-mixed enough for tables
    // and ECMP selection.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.src);
    mix(k.dst);
    mix(k.src_port);
    mix(k.dst_port);
    return static_cast<std::size_t>(h);
  }
};

// IP ECN field codepoints.
enum class EcnCodepoint : std::uint8_t { kNotEct, kEct0, kEct1, kCe };

enum class PacketType : std::uint8_t {
  kData,
  kAck,
  kCnp,  // DCQCN congestion notification packet (receiver -> sender)
};

struct Packet {
  FlowKey flow;
  PacketType type = PacketType::kData;
  std::uint32_t size_bytes = 0;     // on-wire size, headers included
  std::uint32_t payload_bytes = 0;  // TCP payload carried
  std::uint64_t seq = 0;            // data: offset of the first payload byte
  std::uint64_t ack = 0;            // ack: next byte expected by the receiver
  bool ece = false;                 // TCP ECN-Echo flag (meaningful on ACKs)
  bool cwr = false;                 // TCP CWR flag (meaningful on data)
  bool psh = false;                 // set on a flow's last segment: ack now
  EcnCodepoint ecn = EcnCodepoint::kNotEct;
  std::uint8_t traffic_class = 0;   // scheduler class (DWRR queue index)
  Time enqueue_time = Time::Zero(); // stamped by the queue disc at enqueue
  Time sent_time = Time::Zero();    // stamped by the transport at first send

  bool IsEcnCapable() const { return ecn != EcnCodepoint::kNotEct; }
  bool IsCeMarked() const { return ecn == EcnCodepoint::kCe; }
  void MarkCe() {
    if (IsEcnCapable()) ecn = EcnCodepoint::kCe;
  }

  // Heap Packets recycle their storage through a per-thread free list (see
  // net/packet_pool.h); definitions live in packet_pool.cc. This keeps the
  // per-segment hot path free of global-allocator traffic without changing
  // any ownership signatures.
  static void* operator new(std::size_t size);
  static void operator delete(void* ptr) noexcept;
  static void operator delete(void* ptr, std::size_t size) noexcept;
};

// Anything that can accept a packet: a node, a protocol stack, a delay stage.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void HandlePacket(std::unique_ptr<Packet> pkt) = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_PACKET_H_
