// Global datapath event-mode switch.
//
// The burst-drain refactor drives each port's serialization and wire
// delivery with two persistent (pinned) events re-armed in place, instead of
// allocating a fresh closure event per packet. The two modes execute
// byte-identically by construction — order stamps are reserved at exactly
// the legacy scheduling points — and the golden parity suite pins that by
// running the same scenario in both modes.
#ifndef ECNSHARP_NET_EVENT_MODE_H_
#define ECNSHARP_NET_EVENT_MODE_H_

namespace ecnsharp {

// When true, EgressPort and DelayLine schedule one closure event per packet
// (the pre-refactor code path). Default false. Flip only between
// simulations, never mid-run.
inline bool& LegacyPerPacketEvents() {
  static bool legacy = false;
  return legacy;
}

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_EVENT_MODE_H_
