// Egress port: the transmit side of a point-to-point link.
//
// A port serializes packets at a fixed rate, then delivers them to the peer
// sink after the link's propagation delay. Each direction of a physical link
// is one EgressPort owned by the sending node; there is no separate Link
// object. The port owns its QueueDisc, which in turn owns queued packets.
//
// Rate, propagation delay, and administrative link state are mutable at
// event time (src/dynamics/ scripts churn them mid-run): a rate or delay
// change applies from the next serialization on — the packet currently on
// the wire keeps the parameters it started with, exactly like reconfiguring
// a real port.
#ifndef ECNSHARP_NET_EGRESS_PORT_H_
#define ECNSHARP_NET_EGRESS_PORT_H_

#include <cstdint>
#include <memory>

#include "net/link_fault.h"
#include "net/packet.h"
#include "net/packet_tracer.h"
#include "net/queue_disc.h"
#include "sim/data_rate.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ecnsharp {

struct PortCounters {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_link_down = 0;  // arrived while the link was down
  std::uint64_t dropped_fault = 0;      // injected loss (pre-serialization)
  std::uint64_t corrupted = 0;          // injected corruption (post-wire)
};

class EgressPort {
 public:
  EgressPort(Simulator& sim, DataRate rate, Time propagation_delay,
             std::unique_ptr<QueueDisc> disc);

  EgressPort(const EgressPort&) = delete;
  EgressPort& operator=(const EgressPort&) = delete;

  // Sets the receiving end of the link. Must be called before any Enqueue.
  void ConnectTo(PacketSink& peer) { peer_ = &peer; }

  // Hands a packet to the queue disc and kicks transmission if idle. While
  // the link is down the packet is dropped instead (no carrier).
  void Enqueue(std::unique_ptr<Packet> pkt);

  QueueDisc& queue_disc() { return *disc_; }
  const QueueDisc& queue_disc() const { return *disc_; }
  DataRate rate() const { return rate_; }
  Time propagation_delay() const { return propagation_delay_; }
  const PortCounters& counters() const { return counters_; }

  // --- Runtime reconfiguration (dynamics hooks) ---------------------------

  // Applies from the next packet serialization on.
  void SetRate(DataRate rate) { rate_ = rate; }
  // Applies from the next transmit completion on. Shortening the delay can
  // reorder against packets already in flight — as on a real rerouted link.
  void SetPropagationDelay(Time delay) { propagation_delay_ = delay; }

  // Takes the link down. With `drop_queued` the disc's backlog is purged
  // (counted in the disc's stats().purged); otherwise queued packets survive
  // the outage and drain on LinkUp. The packet currently being serialized
  // (if any) was already committed to the wire and still arrives.
  void LinkDown(bool drop_queued);
  // Restores the link and restarts transmission from the surviving backlog.
  void LinkUp();
  bool link_up() const { return link_up_; }

  // Installs seeded random loss/corruption (non-owning; null disables).
  void SetFaultInjector(LinkFaultInjector* injector) { fault_ = injector; }
  LinkFaultInjector* fault_injector() { return fault_; }

  // Optional per-packet tracing (non-owning; null disables). Also forwarded
  // to the queue disc so drop/mark events on this port are captured.
  void SetTracer(PacketTracer* tracer) {
    tracer_ = tracer;
    disc_->SetTracer(tracer);
  }

 private:
  void MaybeStartTx();
  void FinishTx();

  Simulator& sim_;
  DataRate rate_;
  Time propagation_delay_;
  std::unique_ptr<QueueDisc> disc_;
  PacketSink* peer_ = nullptr;
  PacketTracer* tracer_ = nullptr;
  LinkFaultInjector* fault_ = nullptr;
  std::unique_ptr<Packet> in_flight_;
  bool in_flight_corrupt_ = false;
  bool busy_ = false;
  bool link_up_ = true;
  PortCounters counters_;
};

// Adapter presenting an EgressPort as a PacketSink, so ports can terminate
// a chain of PacketSink stages (e.g. DelayLines).
class PortSink : public PacketSink {
 public:
  explicit PortSink(EgressPort& port) : port_(port) {}
  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    port_.Enqueue(std::move(pkt));
  }

 private:
  EgressPort& port_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_EGRESS_PORT_H_
