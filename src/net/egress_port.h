// Egress port: the transmit side of a point-to-point link.
//
// A port serializes packets at a fixed rate, then delivers them to the peer
// sink after the link's propagation delay. Each direction of a physical link
// is one EgressPort owned by the sending node; there is no separate Link
// object. The port owns its QueueDisc, which in turn owns queued packets.
//
// Rate, propagation delay, and administrative link state are mutable at
// event time (src/dynamics/ scripts churn them mid-run). The mid-flight
// semantics, pinned by tests:
//  * SetRate applies from the next serialization on — the packet currently
//    being serialized finishes its remaining bits at the old rate.
//  * SetPropagationDelay applies from the next transmit completion on;
//    packets already on the wire keep their departure-time delay (so a
//    shortening can reorder deliveries, as on a real rerouted link).
//  * LinkDown lets the packet currently being serialized complete at the old
//    rate and still arrive; only queued/arriving packets are affected.
//
// Event usage (the burst-drain scheme): a back-to-back train is driven by
// two persistent pinned events — one tx-completion event re-armed per
// serialization, one arrival event re-armed per wire delivery against order
// stamps reserved at transmit time — so draining a train costs O(1) per
// packet with zero closure allocations. net/event_mode.h switches back to
// the legacy one-closure-per-packet scheme; both interleave identically.
#ifndef ECNSHARP_NET_EGRESS_PORT_H_
#define ECNSHARP_NET_EGRESS_PORT_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "net/link_fault.h"
#include "net/packet.h"
#include "net/packet_tracer.h"
#include "net/queue_disc.h"
#include "sim/data_rate.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ecnsharp {

struct PortCounters {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_link_down = 0;  // arrived while the link was down
  std::uint64_t dropped_fault = 0;      // injected loss (pre-serialization)
  std::uint64_t corrupted = 0;          // injected corruption (post-wire)
};

class EgressPort {
 public:
  EgressPort(Simulator& sim, DataRate rate, Time propagation_delay,
             std::unique_ptr<QueueDisc> disc);
  ~EgressPort();

  EgressPort(const EgressPort&) = delete;
  EgressPort& operator=(const EgressPort&) = delete;

  // Sets the receiving end of the link. Must be called before any Enqueue.
  void ConnectTo(PacketSink& peer) { peer_ = &peer; }

  // Hands a packet to the queue disc and kicks transmission if idle. While
  // the link is down the packet is dropped instead (no carrier).
  void Enqueue(std::unique_ptr<Packet> pkt);

  QueueDisc& queue_disc() { return *disc_; }
  const QueueDisc& queue_disc() const { return *disc_; }
  DataRate rate() const { return rate_; }
  Time propagation_delay() const { return propagation_delay_; }
  const PortCounters& counters() const { return counters_; }

  // --- Runtime reconfiguration (dynamics hooks) ---------------------------

  // Applies from the next packet serialization on.
  void SetRate(DataRate rate) { rate_ = rate; }
  // Applies from the next transmit completion on. Shortening the delay can
  // reorder against packets already in flight — as on a real rerouted link.
  void SetPropagationDelay(Time delay) { propagation_delay_ = delay; }

  // Takes the link down. With `drop_queued` the disc's backlog is purged
  // (counted in the disc's stats().purged); otherwise queued packets survive
  // the outage and drain on LinkUp. The packet currently being serialized
  // (if any) was already committed to the wire and still arrives.
  void LinkDown(bool drop_queued);
  // Restores the link and restarts transmission from the surviving backlog.
  void LinkUp();
  bool link_up() const { return link_up_; }

  // Installs seeded random loss/corruption (non-owning; null disables).
  void SetFaultInjector(LinkFaultInjector* injector) { fault_ = injector; }
  LinkFaultInjector* fault_injector() { return fault_; }

  // Annotates the base RTT of the longest path through this port when it
  // differs from the fabric's host-to-host RTTs (an inter-DC border link).
  // Zero (default) means "no annotation". The sketch telemetry seeds its
  // base-RTT histogram from the hint so sketch-driven ECN# re-estimation
  // covers the WAN paths even before transport RTT samples arrive.
  void set_base_rtt_hint(Time hint) { base_rtt_hint_ = hint; }
  Time base_rtt_hint() const { return base_rtt_hint_; }

  // Optional per-packet tracing (non-owning; null disables). Also forwarded
  // to the queue disc so drop/mark events on this port are captured.
  void SetTracer(PacketTracer* tracer) {
    tracer_ = tracer;
    disc_->SetTracer(tracer);
  }

 private:
  // One packet committed to the wire: its arrival time and the order stamp
  // reserved when it left the transmitter (so deliveries interleave exactly
  // like independently scheduled per-packet events would).
  struct WireEntry {
    Time deliver_at;
    std::uint64_t order;
    std::unique_ptr<Packet> pkt;
    bool corrupt;
  };

  void MaybeStartTx();
  void FinishTx();
  void PushWire(WireEntry entry);
  void DeliverFront();

  Simulator& sim_;
  DataRate rate_;
  Time propagation_delay_;
  std::unique_ptr<QueueDisc> disc_;
  PacketSink* peer_ = nullptr;
  PacketTracer* tracer_ = nullptr;
  LinkFaultInjector* fault_ = nullptr;
  std::unique_ptr<Packet> in_flight_;
  bool in_flight_corrupt_ = false;
  bool busy_ = false;
  bool link_up_ = true;
  Time base_rtt_hint_ = Time::Zero();
  PortCounters counters_;
  // Burst-drain machinery: packets in flight on the wire, ordered by
  // (deliver_at, order); the pinned arrival event is armed for the front.
  std::deque<WireEntry> wire_;
  PinnedEventId tx_event_;
  PinnedEventId arrival_event_;
};

// Adapter presenting an EgressPort as a PacketSink, so ports can terminate
// a chain of PacketSink stages (e.g. DelayLines).
class PortSink : public PacketSink {
 public:
  explicit PortSink(EgressPort& port) : port_(port) {}
  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    port_.Enqueue(std::move(pkt));
  }

 private:
  EgressPort& port_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_EGRESS_PORT_H_
