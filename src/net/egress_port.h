// Egress port: the transmit side of a point-to-point link.
//
// A port serializes packets at a fixed rate, then delivers them to the peer
// sink after the link's propagation delay. Each direction of a physical link
// is one EgressPort owned by the sending node; there is no separate Link
// object. The port owns its QueueDisc, which in turn owns queued packets.
#ifndef ECNSHARP_NET_EGRESS_PORT_H_
#define ECNSHARP_NET_EGRESS_PORT_H_

#include <cstdint>
#include <memory>

#include "net/packet.h"
#include "net/packet_tracer.h"
#include "net/queue_disc.h"
#include "sim/data_rate.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ecnsharp {

struct PortCounters {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
};

class EgressPort {
 public:
  EgressPort(Simulator& sim, DataRate rate, Time propagation_delay,
             std::unique_ptr<QueueDisc> disc);

  EgressPort(const EgressPort&) = delete;
  EgressPort& operator=(const EgressPort&) = delete;

  // Sets the receiving end of the link. Must be called before any Enqueue.
  void ConnectTo(PacketSink& peer) { peer_ = &peer; }

  // Hands a packet to the queue disc and kicks transmission if idle.
  void Enqueue(std::unique_ptr<Packet> pkt);

  QueueDisc& queue_disc() { return *disc_; }
  const QueueDisc& queue_disc() const { return *disc_; }
  DataRate rate() const { return rate_; }
  Time propagation_delay() const { return propagation_delay_; }
  const PortCounters& counters() const { return counters_; }

  // Optional per-packet transmit tracing (non-owning; null disables).
  void SetTracer(PacketTracer* tracer) { tracer_ = tracer; }

 private:
  void MaybeStartTx();
  void FinishTx();

  Simulator& sim_;
  DataRate rate_;
  Time propagation_delay_;
  std::unique_ptr<QueueDisc> disc_;
  PacketSink* peer_ = nullptr;
  PacketTracer* tracer_ = nullptr;
  std::unique_ptr<Packet> in_flight_;
  bool busy_ = false;
  PortCounters counters_;
};

// Adapter presenting an EgressPort as a PacketSink, so ports can terminate
// a chain of PacketSink stages (e.g. DelayLines).
class PortSink : public PacketSink {
 public:
  explicit PortSink(EgressPort& port) : port_(port) {}
  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    port_.Enqueue(std::move(pkt));
  }

 private:
  EgressPort& port_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_EGRESS_PORT_H_
