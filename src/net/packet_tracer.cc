#include "net/packet_tracer.h"

namespace ecnsharp {

std::string TextTracer::Format(const Packet& pkt, Time at) {
  const char* type = "DATA";
  if (pkt.type == PacketType::kAck) type = "ACK";
  if (pkt.type == PacketType::kCnp) type = "CNP";
  char buf[160];
  std::snprintf(
      buf, sizeof buf, "%.3fus TX %s %u:%u->%u:%u seq=%llu ack=%llu len=%u%s%s%s",
      at.ToMicroseconds(), type, pkt.flow.src, pkt.flow.src_port,
      pkt.flow.dst, pkt.flow.dst_port,
      static_cast<unsigned long long>(pkt.seq),
      static_cast<unsigned long long>(pkt.ack), pkt.size_bytes,
      pkt.IsCeMarked() ? " CE" : "", pkt.ece ? " ECE" : "",
      pkt.psh ? " PSH" : "");
  return buf;
}

}  // namespace ecnsharp
