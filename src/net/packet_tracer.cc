#include "net/packet_tracer.h"

namespace ecnsharp {

const char* DropReasonName(DropReason reason) {
  switch (reason) {
    case DropReason::kOverflow:
      return "overflow";
    case DropReason::kAqm:
      return "aqm";
    case DropReason::kLinkDown:
      return "link-down";
    case DropReason::kPurged:
      return "purged";
    case DropReason::kFaultLoss:
      return "fault-loss";
    case DropReason::kCorrupt:
      return "corrupt";
  }
  return "?";
}

std::string TextTracer::FormatEvent(const char* event, const Packet& pkt,
                                    Time at) {
  const char* type = "DATA";
  if (pkt.type == PacketType::kAck) type = "ACK";
  if (pkt.type == PacketType::kCnp) type = "CNP";
  char buf[176];
  std::snprintf(
      buf, sizeof buf,
      "%.3fus %s %s %u:%u->%u:%u seq=%llu ack=%llu len=%u%s%s%s",
      at.ToMicroseconds(), event, type, pkt.flow.src, pkt.flow.src_port,
      pkt.flow.dst, pkt.flow.dst_port,
      static_cast<unsigned long long>(pkt.seq),
      static_cast<unsigned long long>(pkt.ack), pkt.size_bytes,
      pkt.IsCeMarked() ? " CE" : "", pkt.ece ? " ECE" : "",
      pkt.psh ? " PSH" : "");
  return buf;
}

std::string TextTracer::Format(const Packet& pkt, Time at) {
  return FormatEvent("TX", pkt, at);
}

}  // namespace ecnsharp
