#include "net/egress_port.h"

#include <cassert>
#include <utility>

namespace ecnsharp {

EgressPort::EgressPort(Simulator& sim, DataRate rate, Time propagation_delay,
                       std::unique_ptr<QueueDisc> disc)
    : sim_(sim),
      rate_(rate),
      propagation_delay_(propagation_delay),
      disc_(std::move(disc)) {
  assert(disc_ != nullptr);
}

void EgressPort::Enqueue(std::unique_ptr<Packet> pkt) {
  if (!link_up_) {
    counters_.dropped_link_down++;
    if (tracer_ != nullptr) {
      tracer_->OnDrop(*pkt, sim_.Now(), DropReason::kLinkDown);
    }
    return;
  }
  disc_->Enqueue(std::move(pkt), sim_.Now());
  MaybeStartTx();
}

void EgressPort::LinkDown(bool drop_queued) {
  // No early-out when the link is already down: a second LinkDown with
  // drop_queued=true must still purge whatever backlog accumulated, so the
  // tracer sees the purge events (a drain-preserving LinkDown followed by a
  // purging one used to be a silent no-op).
  link_up_ = false;
  if (drop_queued) disc_->PurgeAll(sim_.Now());
}

void EgressPort::LinkUp() {
  if (link_up_) return;
  link_up_ = true;
  MaybeStartTx();
}

void EgressPort::MaybeStartTx() {
  if (busy_ || !link_up_) return;
  while (true) {
    in_flight_ = disc_->Dequeue(sim_.Now());
    if (in_flight_ == nullptr) return;
    // One fault verdict per packet, drawn as it reaches the transmitter.
    // Injected loss hits before serialization — the packet never makes it
    // onto the wire and consumes no link bandwidth, so try the next one.
    // Corruption is remembered and applied at delivery: the frame occupies
    // the link for its full serialization time but fails its CRC at the far
    // end.
    in_flight_corrupt_ = false;
    if (fault_ != nullptr) {
      const auto verdict = fault_->Decide();
      if (verdict == LinkFaultInjector::Verdict::kDrop) {
        counters_.dropped_fault++;
        if (tracer_ != nullptr) {
          tracer_->OnDrop(*in_flight_, sim_.Now(), DropReason::kFaultLoss);
        }
        in_flight_.reset();
        continue;
      }
      in_flight_corrupt_ = verdict == LinkFaultInjector::Verdict::kCorrupt;
    }
    break;
  }
  busy_ = true;
  const Time tx = rate_.TransmissionTime(in_flight_->size_bytes);
  sim_.Schedule(tx, [this] { FinishTx(); });
}

void EgressPort::FinishTx() {
  assert(busy_ && in_flight_ != nullptr && peer_ != nullptr);
  counters_.tx_packets++;
  counters_.tx_bytes += in_flight_->size_bytes;
  if (in_flight_corrupt_) counters_.corrupted++;
  if (tracer_ != nullptr) tracer_->OnTransmit(*in_flight_, sim_.Now());
  // Hand the packet to the wire: it arrives at the peer after the
  // propagation delay. Ownership transfers into the scheduled event.
  if (in_flight_corrupt_) {
    sim_.Schedule(propagation_delay_,
                  [this, pkt = std::move(in_flight_)]() mutable {
                    if (tracer_ != nullptr) {
                      tracer_->OnDrop(*pkt, sim_.Now(), DropReason::kCorrupt);
                    }
                    pkt.reset();
                  });
  } else {
    sim_.Schedule(propagation_delay_,
                  [peer = peer_, pkt = std::move(in_flight_)]() mutable {
                    peer->HandlePacket(std::move(pkt));
                  });
  }
  busy_ = false;
  MaybeStartTx();
}

}  // namespace ecnsharp
