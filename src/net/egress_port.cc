#include "net/egress_port.h"

#include <cassert>
#include <utility>

namespace ecnsharp {

EgressPort::EgressPort(Simulator& sim, DataRate rate, Time propagation_delay,
                       std::unique_ptr<QueueDisc> disc)
    : sim_(sim),
      rate_(rate),
      propagation_delay_(propagation_delay),
      disc_(std::move(disc)) {
  assert(disc_ != nullptr);
}

void EgressPort::Enqueue(std::unique_ptr<Packet> pkt) {
  disc_->Enqueue(std::move(pkt), sim_.Now());
  MaybeStartTx();
}

void EgressPort::MaybeStartTx() {
  if (busy_) return;
  in_flight_ = disc_->Dequeue(sim_.Now());
  if (in_flight_ == nullptr) return;
  busy_ = true;
  const Time tx = rate_.TransmissionTime(in_flight_->size_bytes);
  sim_.Schedule(tx, [this] { FinishTx(); });
}

void EgressPort::FinishTx() {
  assert(busy_ && in_flight_ != nullptr && peer_ != nullptr);
  counters_.tx_packets++;
  counters_.tx_bytes += in_flight_->size_bytes;
  if (tracer_ != nullptr) tracer_->OnTransmit(*in_flight_, sim_.Now());
  // Hand the packet to the wire: it arrives at the peer after the
  // propagation delay. Ownership transfers into the scheduled event.
  sim_.Schedule(propagation_delay_,
                [peer = peer_, pkt = std::move(in_flight_)]() mutable {
                  peer->HandlePacket(std::move(pkt));
                });
  busy_ = false;
  MaybeStartTx();
}

}  // namespace ecnsharp
