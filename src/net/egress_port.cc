#include "net/egress_port.h"

#include <cassert>
#include <utility>

#include "net/event_mode.h"

namespace ecnsharp {

EgressPort::EgressPort(Simulator& sim, DataRate rate, Time propagation_delay,
                       std::unique_ptr<QueueDisc> disc)
    : sim_(sim),
      rate_(rate),
      propagation_delay_(propagation_delay),
      disc_(std::move(disc)) {
  assert(disc_ != nullptr);
  tx_event_ = sim_.CreatePinned([this] { FinishTx(); });
  arrival_event_ = sim_.CreatePinned([this] { DeliverFront(); });
}

EgressPort::~EgressPort() {
  sim_.DestroyPinned(tx_event_);
  sim_.DestroyPinned(arrival_event_);
}

void EgressPort::Enqueue(std::unique_ptr<Packet> pkt) {
  if (!link_up_) {
    counters_.dropped_link_down++;
    if (tracer_ != nullptr) {
      tracer_->OnDrop(*pkt, sim_.Now(), DropReason::kLinkDown);
    }
    return;
  }
  disc_->Enqueue(std::move(pkt), sim_.Now());
  MaybeStartTx();
}

void EgressPort::LinkDown(bool drop_queued) {
  // No early-out when the link is already down: a second LinkDown with
  // drop_queued=true must still purge whatever backlog accumulated, so the
  // tracer sees the purge events (a drain-preserving LinkDown followed by a
  // purging one used to be a silent no-op).
  //
  // The packet currently being serialized (busy_) was already committed to
  // the wire: its tx-completion event stays armed, it finishes at the old
  // rate, and it still arrives at the peer.
  link_up_ = false;
  if (drop_queued) disc_->PurgeAll(sim_.Now());
}

void EgressPort::LinkUp() {
  if (link_up_) return;
  link_up_ = true;
  MaybeStartTx();
}

void EgressPort::MaybeStartTx() {
  if (busy_ || !link_up_) return;
  while (true) {
    in_flight_ = disc_->Dequeue(sim_.Now());
    if (in_flight_ == nullptr) return;
    // One fault verdict per packet, drawn as it reaches the transmitter.
    // Injected loss hits before serialization — the packet never makes it
    // onto the wire and consumes no link bandwidth, so try the next one.
    // Corruption is remembered and applied at delivery: the frame occupies
    // the link for its full serialization time but fails its CRC at the far
    // end.
    in_flight_corrupt_ = false;
    if (fault_ != nullptr) {
      const auto verdict = fault_->Decide();
      if (verdict == LinkFaultInjector::Verdict::kDrop) {
        counters_.dropped_fault++;
        if (tracer_ != nullptr) {
          tracer_->OnDrop(*in_flight_, sim_.Now(), DropReason::kFaultLoss);
        }
        in_flight_.reset();
        continue;
      }
      in_flight_corrupt_ = verdict == LinkFaultInjector::Verdict::kCorrupt;
    }
    break;
  }
  busy_ = true;
  const Time tx = rate_.TransmissionTime(in_flight_->size_bytes);
  if (LegacyPerPacketEvents()) {
    sim_.Schedule(tx, [this] { FinishTx(); });
  } else {
    sim_.SchedulePinnedAt(tx_event_, sim_.Now() + tx);
  }
}

void EgressPort::FinishTx() {
  assert(busy_ && in_flight_ != nullptr && peer_ != nullptr);
  counters_.tx_packets++;
  counters_.tx_bytes += in_flight_->size_bytes;
  if (in_flight_corrupt_) counters_.corrupted++;
  if (tracer_ != nullptr) tracer_->OnTransmit(*in_flight_, sim_.Now());
  // Hand the packet to the wire: it arrives at the peer after the
  // propagation delay.
  if (LegacyPerPacketEvents()) {
    if (in_flight_corrupt_) {
      sim_.Schedule(propagation_delay_,
                    [this, pkt = std::move(in_flight_)]() mutable {
                      if (tracer_ != nullptr) {
                        tracer_->OnDrop(*pkt, sim_.Now(), DropReason::kCorrupt);
                      }
                      pkt.reset();
                    });
    } else {
      sim_.Schedule(propagation_delay_,
                    [peer = peer_, pkt = std::move(in_flight_)]() mutable {
                      peer->HandlePacket(std::move(pkt));
                    });
    }
  } else {
    // The order stamp is reserved here — where the legacy path scheduled the
    // per-packet delivery event — so the batched wire interleaves with every
    // other event exactly as the legacy path did.
    PushWire(WireEntry{sim_.Now() + propagation_delay_, sim_.ReserveOrder(),
                       std::move(in_flight_), in_flight_corrupt_});
  }
  busy_ = false;
  MaybeStartTx();
}

void EgressPort::PushWire(WireEntry entry) {
  // Sorted insert from the back. With a fixed propagation delay and a
  // monotone clock this appends; only packets committed before a
  // SetPropagationDelay shortening force a walk.
  auto it = wire_.end();
  while (it != wire_.begin()) {
    const WireEntry& prev = *std::prev(it);
    if (prev.deliver_at < entry.deliver_at ||
        (prev.deliver_at == entry.deliver_at && prev.order < entry.order)) {
      break;
    }
    --it;
  }
  const bool new_front = it == wire_.begin();
  wire_.insert(it, std::move(entry));
  if (new_front) {
    // The arrival event tracks the front entry's reserved (when, order).
    if (sim_.PinnedArmed(arrival_event_)) sim_.CancelPinned(arrival_event_);
    sim_.SchedulePinnedAtOrdered(arrival_event_, wire_.front().deliver_at,
                                 wire_.front().order);
  }
}

void EgressPort::DeliverFront() {
  assert(!wire_.empty());
  WireEntry entry = std::move(wire_.front());
  wire_.pop_front();
  if (!wire_.empty()) {
    sim_.SchedulePinnedAtOrdered(arrival_event_, wire_.front().deliver_at,
                                 wire_.front().order);
  }
  if (entry.corrupt) {
    if (tracer_ != nullptr) {
      tracer_->OnDrop(*entry.pkt, sim_.Now(), DropReason::kCorrupt);
    }
    entry.pkt.reset();
  } else {
    peer_->HandlePacket(std::move(entry.pkt));
  }
}

}  // namespace ecnsharp
