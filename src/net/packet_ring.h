// PacketRing: a power-of-two ring buffer of owned Packet pointers.
//
// Queue discs keep their backlog here instead of in a
// std::deque<std::unique_ptr<Packet>>: one contiguous array of raw pointers,
// head/tail indices, no per-block allocation, and push/pop compile to a
// store/load plus an index increment. Ownership semantics are unchanged —
// the ring owns what it holds and releases storage through the same
// unique_ptr discipline as the deque did.
#ifndef ECNSHARP_NET_PACKET_RING_H_
#define ECNSHARP_NET_PACKET_RING_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace ecnsharp {

class PacketRing {
 public:
  PacketRing() : slots_(kInitialCapacity), mask_(kInitialCapacity - 1) {}
  ~PacketRing() {
    while (!empty()) pop_front();
  }
  PacketRing(const PacketRing&) = delete;
  PacketRing& operator=(const PacketRing&) = delete;
  // Moves leave `other` valid and empty (fresh initial capacity).
  PacketRing(PacketRing&& other) noexcept : PacketRing() { Swap(other); }
  PacketRing& operator=(PacketRing&& other) noexcept {
    if (this != &other) {
      Swap(other);  // old contents freed by other's destructor
    }
    return *this;
  }

  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return tail_ - head_; }

  void push_back(std::unique_ptr<Packet> pkt) {
    if (size() > mask_) Grow();
    slots_[tail_ & mask_] = pkt.release();
    ++tail_;
  }

  Packet* front() const { return slots_[head_ & mask_]; }
  Packet* back() const { return slots_[(tail_ - 1) & mask_]; }

  std::unique_ptr<Packet> pop_front() {
    Packet* p = slots_[head_ & mask_];
    ++head_;
    return std::unique_ptr<Packet>(p);
  }

 private:
  static constexpr std::size_t kInitialCapacity = 16;

  void Swap(PacketRing& other) {
    slots_.swap(other.slots_);
    std::swap(mask_, other.mask_);
    std::swap(head_, other.head_);
    std::swap(tail_, other.tail_);
  }

  void Grow() {
    std::vector<Packet*> bigger(slots_.size() * 2);
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      bigger[i] = slots_[(head_ + i) & mask_];
    }
    slots_.swap(bigger);
    mask_ = slots_.size() - 1;
    head_ = 0;
    tail_ = n;
  }

  std::vector<Packet*> slots_;
  std::size_t mask_;
  // Free-running indices; masked on access. 64-bit, so wrap is a non-issue.
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_PACKET_RING_H_
