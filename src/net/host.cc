#include "net/host.h"

namespace ecnsharp {

void Host::SendPacket(std::unique_ptr<Packet> pkt) {
  if (extra_egress_delay_.IsZero()) {
    nic().Enqueue(std::move(pkt));
    return;
  }
  // A constant per-host delay preserves packet order because simulator
  // events at equal offsets execute FIFO.
  sim_.Schedule(extra_egress_delay_, [this, p = std::move(pkt)]() mutable {
    nic().Enqueue(std::move(p));
  });
}

}  // namespace ecnsharp
