// LaneBridgeSink: the receiving end of a link whose peer lives on another
// event lane.
//
// A cross-lane link's EgressPort is built with zero propagation delay and
// connected to a bridge instead of the peer; the bridge re-applies the full
// propagation delay when posting the delivery into the peer's lane. Because
// the LaneSet round window never exceeds the link latency, the posted
// delivery always lands in a strictly later round — see sim/lane_executor.h.
#ifndef ECNSHARP_NET_LANE_BRIDGE_H_
#define ECNSHARP_NET_LANE_BRIDGE_H_

#include <cstddef>
#include <memory>
#include <utility>

#include "net/packet.h"
#include "sim/lane_executor.h"
#include "sim/time.h"

namespace ecnsharp {

class LaneBridgeSink : public PacketSink {
 public:
  LaneBridgeSink(LaneSet& lanes, std::size_t from, std::size_t to, Time delay,
                 PacketSink& peer)
      : lanes_(lanes), from_(from), to_(to), delay_(delay), peer_(peer) {}

  void HandlePacket(std::unique_ptr<Packet> pkt) override {
    lanes_.Post(from_, to_, lanes_.lane(from_).Now() + delay_,
                [peer = &peer_, p = std::move(pkt)]() mutable {
                  peer->HandlePacket(std::move(p));
                });
  }

 private:
  LaneSet& lanes_;
  std::size_t from_;
  std::size_t to_;
  Time delay_;
  PacketSink& peer_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_NET_LANE_BRIDGE_H_
