// Per-host transport multiplexer.
//
// The stack registers itself as the host's protocol handler, dispatches
// arriving data packets to per-flow receivers (created on first segment,
// like a listening socket) and ACKs to the matching senders. StartFlow
// allocates a fresh source port and begins a bulk transfer.
#ifndef ECNSHARP_TRANSPORT_TCP_STACK_H_
#define ECNSHARP_TRANSPORT_TCP_STACK_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/host.h"
#include "net/packet.h"
#include "transport/flow_hot_state.h"
#include "transport/tcp_config.h"
#include "transport/tcp_receiver.h"
#include "transport/tcp_sender.h"

namespace ecnsharp {

class TcpStack : public PacketSink {
 public:
  TcpStack(Host& host, const TcpConfig& config);

  // Starts a `size_bytes` transfer to host `dst` now. The callback fires on
  // completion (after the last byte is cumulatively acknowledged). `cc`
  // overrides the stack's default controller for this flow (mixed-CC runs
  // pass CcKind::kCubic for the seeded cross-traffic fraction).
  TcpSender& StartFlow(std::uint32_t dst, std::uint64_t size_bytes,
                       TcpSender::CompletionCallback on_complete,
                       std::uint8_t traffic_class = 0,
                       std::optional<CcKind> cc = std::nullopt);

  void HandlePacket(std::unique_ptr<Packet> pkt) override;

  Host& host() { return host_; }
  const TcpConfig& config() const { return config_; }
  std::size_t active_senders() const;

  // Dense hot-state rows for every flow this stack ever started (telemetry
  // sweeps can scan columns without touching sender objects).
  const FlowHotArena& flow_hot_state() const { return flow_hot_; }

  // Optional transport tracing (non-owning; null disables). Applies to
  // flows started after the call.
  void SetTransportTracer(TransportTracer* tracer) {
    transport_tracer_ = tracer;
  }

 private:
  Host& host_;
  TcpConfig config_;
  FlowHotArena flow_hot_;
  TransportTracer* transport_tracer_ = nullptr;
  std::uint16_t next_port_ = 1;
  std::unordered_map<FlowKey, std::unique_ptr<TcpSender>, FlowKeyHash>
      senders_;
  std::unordered_map<FlowKey, std::unique_ptr<TcpReceiver>, FlowKeyHash>
      receivers_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TRANSPORT_TCP_STACK_H_
