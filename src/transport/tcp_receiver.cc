#include "transport/tcp_receiver.h"

#include <utility>

#include "net/packet_pool.h"

namespace ecnsharp {

TcpReceiver::TcpReceiver(Host& host, const TcpConfig& config, FlowKey flow)
    : host_(host),
      config_(config),
      flow_(flow),
      delack_timer_(host.sim(), [this] { OnDelayedAckTimer(); }) {}

bool TcpReceiver::CurrentEce() const {
  switch (config_.ecn_mode) {
    case EcnMode::kDctcp:
      return dctcp_ce_state_;
    case EcnMode::kClassic:
      return classic_ece_latched_;
    case EcnMode::kNone:
      return false;
  }
  return false;
}

void TcpReceiver::OnData(const Packet& pkt) {
  // ECN echo state updates come first so the ACK for this packet reflects it.
  if (config_.ecn_mode == EcnMode::kDctcp) {
    const bool ce = pkt.IsCeMarked();
    if (ce != dctcp_ce_state_) {
      // RFC 8257: on a CE-state change, immediately ACK the packets received
      // so far with the *old* state, then switch.
      if (unacked_segments_ > 0) SendAckNow();
      dctcp_ce_state_ = ce;
    }
  } else if (config_.ecn_mode == EcnMode::kClassic) {
    if (pkt.IsCeMarked()) classic_ece_latched_ = true;
    if (pkt.cwr) classic_ece_latched_ = false;
  }

  const bool in_order = pkt.seq == rcv_nxt_;
  const bool had_holes = !ooo_.empty();
  AcceptPayload(pkt);

  if (!in_order || had_holes) {
    // Duplicate/out-of-order data (emit a dupack for fast retransmit), or a
    // retransmission filling a hole (ack the jump immediately so the sender
    // exits recovery without waiting on the delayed-ACK clock).
    SendAckNow();
    return;
  }
  ++unacked_segments_;
  if (unacked_segments_ >= config_.delayed_ack_count || pkt.psh) {
    SendAckNow();
  } else if (!delack_timer_.pending()) {
    delack_timer_.Schedule(config_.delayed_ack_timeout);
  }
}

void TcpReceiver::AcceptPayload(const Packet& pkt) {
  const std::uint64_t start = pkt.seq;
  const std::uint64_t end = pkt.seq + pkt.payload_bytes;
  if (end <= rcv_nxt_) return;  // pure duplicate
  if (start > rcv_nxt_) {
    // Buffer the range, merging overlaps.
    auto [it, inserted] = ooo_.emplace(start, end);
    if (!inserted && end > it->second) it->second = end;
    return;
  }
  bytes_received_ += end - rcv_nxt_;
  rcv_nxt_ = end;
  // Pull any now-contiguous buffered ranges.
  for (auto it = ooo_.begin(); it != ooo_.end();) {
    if (it->first > rcv_nxt_) break;
    if (it->second > rcv_nxt_) {
      bytes_received_ += it->second - rcv_nxt_;
      rcv_nxt_ = it->second;
    }
    it = ooo_.erase(it);
  }
}

void TcpReceiver::SendAckNow() {
  unacked_segments_ = 0;
  delack_timer_.Cancel();
  auto ack = NewPacket();
  ack->flow = flow_.Reversed();
  ack->type = PacketType::kAck;
  ack->size_bytes = kAckPacketBytes;
  ack->ack = rcv_nxt_;
  ack->ece = CurrentEce();
  host_.SendPacket(std::move(ack));
}

void TcpReceiver::OnDelayedAckTimer() {
  if (unacked_segments_ > 0) SendAckNow();
}

}  // namespace ecnsharp
