// Per-stack flow hot-state arena: struct-of-arrays storage for the
// congestion-control fields every ACK touches.
//
// A TcpSender keeps its hot fields (cwnd, ssthresh, srtt/rttvar, the RTT
// probe stamp) behind pointers. Standalone senders point at their own local
// storage; a TcpStack re-homes each sender it creates into this arena via
// TcpSender::BindFlowHotState, so all flows on a host share dense, chunked
// column arrays instead of scattering one cache line per sender object. The
// arithmetic never changes — binding copies current values and repoints —
// so bound and unbound senders run byte-identically (transport_test pins
// this).
//
// Mirrors net/chip_hot_state.h: chunked columns keep row addresses stable
// as the arena grows, and a bump arena lets derived controllers (CUBIC's
// epoch state) co-locate private POD state without the base layer knowing
// its type.
#ifndef ECNSHARP_TRANSPORT_FLOW_HOT_STATE_H_
#define ECNSHARP_TRANSPORT_FLOW_HOT_STATE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "sim/time.h"

namespace ecnsharp {

// One flow's row: stable pointers into the arena's column chunks.
struct FlowHotRow {
  double* cwnd = nullptr;
  double* ssthresh = nullptr;
  Time* srtt = nullptr;
  Time* rttvar = nullptr;
  Time* probe_sent_at = nullptr;
  bool* rtt_valid = nullptr;
};

class FlowHotArena {
 public:
  FlowHotArena() = default;
  FlowHotArena(const FlowHotArena&) = delete;
  FlowHotArena& operator=(const FlowHotArena&) = delete;

  // Allocates the next flow's row (zero-initialized) and returns stable
  // pointers into the column chunks. Rows are never freed individually —
  // flows on a stack are tracked for the lifetime of the run anyway.
  FlowHotRow AllocRow() {
    const std::size_t chunk = flow_count_ >> kRowChunkShift;
    const std::size_t slot = flow_count_ & (kRowsPerChunk - 1);
    if (chunk == chunks_.size()) {
      chunks_.push_back(std::make_unique<ColumnChunk>());
    }
    ++flow_count_;
    ColumnChunk& c = *chunks_[chunk];
    c.cwnd[slot] = 0.0;
    c.ssthresh[slot] = 0.0;
    c.srtt[slot] = Time::Zero();
    c.rttvar[slot] = Time::Zero();
    c.probe_sent_at[slot] = Time::Zero();
    c.rtt_valid[slot] = false;
    return FlowHotRow{&c.cwnd[slot],   &c.ssthresh[slot],
                      &c.srtt[slot],   &c.rttvar[slot],
                      &c.probe_sent_at[slot], &c.rtt_valid[slot]};
  }

  std::size_t flow_count() const { return flow_count_; }

  // Visits every allocated row in allocation order (telemetry sweeps read
  // columns densely instead of chasing one sender object per flow).
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (std::size_t i = 0; i < flow_count_; ++i) {
      const ColumnChunk& c = *chunks_[i >> kRowChunkShift];
      const std::size_t slot = i & (kRowsPerChunk - 1);
      fn(c.cwnd[slot], c.ssthresh[slot], c.srtt[slot], c.rtt_valid[slot]);
    }
  }

  // Bump-allocates controller-private POD state next to the flow rows.
  // Value-initialized; never individually freed.
  template <typename T>
  T* Emplace() {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena state is never destroyed individually");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned types are not supported");
    const std::size_t size =
        (sizeof(T) + kArenaAlign - 1) / kArenaAlign * kArenaAlign;
    if (arena_chunks_.empty() || arena_used_ + size > kArenaChunkBytes) {
      arena_chunks_.push_back(
          std::make_unique<unsigned char[]>(kArenaChunkBytes));
      arena_used_ = 0;
    }
    unsigned char* p = arena_chunks_.back().get() + arena_used_;
    arena_used_ += size;
    return new (p) T();
  }

 private:
  static constexpr std::size_t kRowChunkShift = 6;  // 64 rows per chunk
  static constexpr std::size_t kRowsPerChunk = std::size_t{1} << kRowChunkShift;
  static constexpr std::size_t kArenaChunkBytes = 4096;
  static constexpr std::size_t kArenaAlign = alignof(std::max_align_t);

  struct ColumnChunk {
    double cwnd[kRowsPerChunk];
    double ssthresh[kRowsPerChunk];
    Time srtt[kRowsPerChunk];
    Time rttvar[kRowsPerChunk];
    Time probe_sent_at[kRowsPerChunk];
    bool rtt_valid[kRowsPerChunk];
  };

  std::vector<std::unique_ptr<ColumnChunk>> chunks_;
  std::size_t flow_count_ = 0;
  std::vector<std::unique_ptr<unsigned char[]>> arena_chunks_;
  std::size_t arena_used_ = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TRANSPORT_FLOW_HOT_STATE_H_
