#include "transport/tcp_sender.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/packet_pool.h"

namespace ecnsharp {

TcpSender::TcpSender(Host& host, const TcpConfig& config, FlowKey flow,
                     std::uint64_t flow_size, std::uint8_t traffic_class,
                     CompletionCallback on_complete)
    : host_(host),
      config_(config),
      flow_(flow),
      flow_size_(flow_size),
      traffic_class_(traffic_class),
      on_complete_(std::move(on_complete)),
      dctcp_alpha_(config.dctcp_init_alpha),
      rto_timer_(host.sim(), [this] { OnRtoExpired(); }),
      pace_timer_(host.sim(), [this] { PacedSend(); }) {
  assert(flow_size_ > 0);
  (*cwnd_) = static_cast<double>(config_.init_cwnd_segments) * config_.mss;
  (*ssthresh_) = static_cast<double>(config_.max_cwnd_bytes);
  record_.flow = flow_;
  record_.size_bytes = flow_size_;
}

void TcpSender::BindFlowHotState(FlowHotArena& arena) {
  const FlowHotRow row = arena.AllocRow();
  *row.cwnd = *cwnd_;
  *row.ssthresh = *ssthresh_;
  *row.srtt = *srtt_;
  *row.rttvar = *rttvar_;
  *row.probe_sent_at = *probe_sent_at_;
  *row.rtt_valid = *rtt_valid_;
  cwnd_ = row.cwnd;
  ssthresh_ = row.ssthresh;
  srtt_ = row.srtt;
  rttvar_ = row.rttvar;
  probe_sent_at_ = row.probe_sent_at;
  rtt_valid_ = row.rtt_valid;
}

void TcpSender::Start() {
  record_.start_time = host_.sim().Now();
  EmitCwnd();
  SendAvailable();
  RestartRtoTimer();
}

void TcpSender::SendAvailable() {
  if (complete_) return;
  if (config_.pacing) {
    PacedSend();
    return;
  }
  const auto cwnd = static_cast<std::uint64_t>((*cwnd_));
  while (snd_nxt_ < flow_size_) {
    const std::uint64_t in_flight = snd_nxt_ - snd_una_;
    const std::uint64_t payload =
        std::min<std::uint64_t>(config_.mss, flow_size_ - snd_nxt_);
    if (in_flight + payload > cwnd) break;
    SendSegment(snd_nxt_, /*is_retransmit=*/false);
    snd_nxt_ += payload;
  }
}

void TcpSender::PacedSend() {
  if (complete_ || pace_timer_.pending()) return;
  if (snd_nxt_ >= flow_size_) return;
  const auto cwnd = static_cast<std::uint64_t>((*cwnd_));
  const std::uint64_t payload =
      std::min<std::uint64_t>(config_.mss, flow_size_ - snd_nxt_);
  if (snd_nxt_ - snd_una_ + payload > cwnd) return;  // ACKs will re-kick us
  SendSegment(snd_nxt_, /*is_retransmit=*/false);
  snd_nxt_ += payload;
  if (snd_nxt_ >= flow_size_) return;
  // Space the next transmission at pacing_gain * cwnd per srtt.
  Time gap;
  if ((*rtt_valid_) && (*srtt_).IsPositive()) {
    const double rate_bytes_per_s =
        config_.pacing_gain * (*cwnd_) / (*srtt_).ToSeconds();
    gap = Time::FromSeconds(static_cast<double>(payload) /
                            std::max(rate_bytes_per_s, 1.0));
  } else {
    gap = config_.initial_pacing_rate.TransmissionTime(payload);
  }
  pace_timer_.Schedule(gap);
}

void TcpSender::SendSegment(std::uint64_t seq, bool is_retransmit) {
  const std::uint64_t payload =
      std::min<std::uint64_t>(config_.mss, flow_size_ - seq);
  assert(payload > 0);
  auto pkt = NewPacket();
  pkt->flow = flow_;
  pkt->type = PacketType::kData;
  pkt->payload_bytes = static_cast<std::uint32_t>(payload);
  pkt->size_bytes = static_cast<std::uint32_t>(payload) + kDataHeaderBytes;
  pkt->seq = seq;
  pkt->psh = (seq + payload >= flow_size_);
  pkt->traffic_class = traffic_class_;
  if (config_.ecn_mode != EcnMode::kNone) pkt->ecn = EcnCodepoint::kEct0;
  if (cwr_pending_) {
    pkt->cwr = true;
    cwr_pending_ = false;
  }
  pkt->sent_time = host_.sim().Now();

  if (is_retransmit) {
    if (tracer_ != nullptr) {
      tracer_->OnRetransmit(flow_, host_.sim().Now(), seq);
    }
    // Karn: never sample RTT across a retransmission.
    probe_armed_ = false;
  } else if (!probe_armed_ && seq >= sent_high_) {
    // Only genuinely new data is unambiguous: after a go-back-N resend the
    // ACK for a re-covered range may belong to the original transmission.
    probe_armed_ = true;
    probe_seq_end_ = seq + payload;
    (*probe_sent_at_) = host_.sim().Now();
  }
  sent_high_ = std::max(sent_high_, seq + payload);
  host_.SendPacket(std::move(pkt));
}

void TcpSender::OnAck(const Packet& ack) {
  if (complete_) return;
  if (ack.ack > snd_una_) {
    OnNewDataAcked(ack.ack, ack.ece);
  } else if (ack.ack == snd_una_ && snd_nxt_ > snd_una_) {
    if (ack.ece && config_.ecn_mode == EcnMode::kClassic) HandleEceClassic();
    OnDupAck();
  }
  // Acks below snd_una are stale reordered duplicates: ignored.
}

void TcpSender::OnNewDataAcked(std::uint64_t ack_no, bool ece) {
  const std::uint64_t newly = ack_no - snd_una_;

  if (probe_armed_ && ack_no >= probe_seq_end_) {
    probe_armed_ = false;
    UpdateRttEstimate(host_.sim().Now() - (*probe_sent_at_));
  }
  // New-data ACK progress ends the backed-off regime (BSD/Linux practice) —
  // but only once an RTT sample exists. Waiting for a fresh sample instead
  // would ratchet the backoff across independent loss events (after a
  // go-back-N resend no probe can arm until snd_nxt passes sent_high_, so a
  // loss-heavy elephant pins its RTO at max_rto for its whole lifetime).
  // Before the first sample the opposite holds: with min_rto below the path
  // RTT every un-backed-off timer fires spuriously mid-flight and the resend
  // cancels the probe, so clearing the backoff here would re-arm the 1-RTT
  // death spiral forever — the backoff is the only thing that lets the first
  // probe ACK arrive before the timer.
  if (*rtt_valid_) rto_backoff_ = 0;
  dupacks_ = 0;

  switch (config_.ecn_mode) {
    case EcnMode::kClassic:
      if (ece) HandleEceClassic();
      break;
    case EcnMode::kDctcp:
      DctcpWindowUpdate(newly, ece);
      break;
    case EcnMode::kNone:
      break;
  }

  snd_una_ = ack_no;

  if (in_fast_recovery_) {
    if (snd_una_ >= recover_point_) {
      in_fast_recovery_ = false;
      (*cwnd_) = (*ssthresh_);
    } else {
      // NewReno partial ACK: the next hole is lost too — retransmit it and
      // stay in recovery without waiting for more dupacks.
      SendSegment(snd_una_, /*is_retransmit=*/true);
    }
  } else {
    if ((*cwnd_) < (*ssthresh_)) {
      // Slow start with full byte counting (Linux tcp_slow_start): cwnd
      // grows by the bytes newly acked, so the window doubles per RTT even
      // under delayed ACKs.
      (*cwnd_) += static_cast<double>(newly);
    } else {
      CongestionAvoidanceIncrease(newly);
    }
    (*cwnd_) = std::min((*cwnd_), static_cast<double>(config_.max_cwnd_bytes));
  }

  EmitCwnd();
  if (snd_una_ >= flow_size_) {
    Complete();
    return;
  }
  RestartRtoTimer();
  SendAvailable();
}

void TcpSender::OnDupAck() {
  ++dupacks_;
  if (in_fast_recovery_) {
    // Window inflation keeps the pipe full while the hole is repaired.
    (*cwnd_) += config_.mss;
    EmitCwnd();
    SendAvailable();
    return;
  }
  if (dupacks_ >= config_.dupack_threshold) {
    ++record_.fast_retransmits;
    (*ssthresh_) = SsthreshAfterLoss();
    in_fast_recovery_ = true;
    recover_point_ = snd_nxt_;
    (*cwnd_) = (*ssthresh_) + 3.0 * config_.mss;
    EmitCwnd();
    SendSegment(snd_una_, /*is_retransmit=*/true);
    RestartRtoTimer();
  }
}

void TcpSender::OnRtoExpired() {
  if (complete_) return;
  ++record_.timeouts;
  ++rto_backoff_;
  if (tracer_ != nullptr) {
    tracer_->OnRto(flow_, host_.sim().Now(), rto_backoff_);
  }
  (*ssthresh_) = SsthreshAfterLoss();
  (*cwnd_) = config_.mss;
  dupacks_ = 0;
  in_fast_recovery_ = false;
  EmitCwnd();
  // Go-back-N: everything past snd_una_ is considered lost.
  snd_nxt_ = snd_una_;
  SendSegment(snd_una_, /*is_retransmit=*/true);
  snd_nxt_ = snd_una_ + std::min<std::uint64_t>(config_.mss,
                                                flow_size_ - snd_una_);
  RestartRtoTimer();
}

void TcpSender::RestartRtoTimer() { rto_timer_.Schedule(CurrentRto()); }

Time TcpSender::CurrentRto() const {
  Time base = config_.min_rto;
  if ((*rtt_valid_)) {
    base = std::max(config_.min_rto, (*srtt_) + 4 * (*rttvar_));
  }
  // Exponential backoff under consecutive timeouts.
  for (std::uint32_t i = 0; i < rto_backoff_ && base < config_.max_rto; ++i) {
    base = base * 2;
  }
  return std::min(base, config_.max_rto);
}

void TcpSender::UpdateRttEstimate(Time sample) {
  if (tracer_ != nullptr) {
    tracer_->OnRttSample(flow_, host_.sim().Now(), sample);
  }
  if (!(*rtt_valid_)) {
    (*rtt_valid_) = true;
    (*srtt_) = sample;
    (*rttvar_) = sample / 2;
    return;
  }
  const Time err = sample > (*srtt_) ? sample - (*srtt_) : (*srtt_) - sample;
  (*rttvar_) = ((*rttvar_) * 3 + err) / 4;
  (*srtt_) = ((*srtt_) * 7 + sample) / 8;
}

void TcpSender::HandleEceClassic() {
  // One multiplicative cut per window of data (RFC 3168 behaviour).
  if (snd_una_ < ecn_cut_window_end_) return;
  ReduceWindowOnEcn(0.5);
  ecn_cut_window_end_ = snd_nxt_;
}

void TcpSender::DctcpWindowUpdate(std::uint64_t newly_acked, bool ece) {
  dctcp_bytes_acked_ += newly_acked;
  if (ece) dctcp_bytes_marked_ += newly_acked;
  // Once per window of data: refresh alpha, and cut proportionally if any
  // byte of the window was marked.
  if (snd_una_ + newly_acked <= dctcp_window_end_) return;
  if (dctcp_bytes_acked_ > 0) {
    const double fraction = static_cast<double>(dctcp_bytes_marked_) /
                            static_cast<double>(dctcp_bytes_acked_);
    dctcp_alpha_ = (1.0 - config_.dctcp_g) * dctcp_alpha_ +
                   config_.dctcp_g * fraction;
    if (dctcp_bytes_marked_ > 0 && !in_fast_recovery_) {
      ReduceWindowOnEcn(dctcp_alpha_ / 2.0);
    }
  }
  dctcp_bytes_acked_ = 0;
  dctcp_bytes_marked_ = 0;
  dctcp_window_end_ = snd_nxt_;
}

void TcpSender::CongestionAvoidanceIncrease(std::uint64_t newly_acked) {
  (*cwnd_) += static_cast<double>(config_.mss) *
           static_cast<double>(newly_acked) / (*cwnd_);
}

double TcpSender::SsthreshAfterLoss() {
  return std::max((*cwnd_) / 2.0, 2.0 * config_.mss);
}

void TcpSender::ReduceWindowOnEcn(double factor) {
  (*cwnd_) = std::max((*cwnd_) * (1.0 - factor),
                   static_cast<double>(config_.mss));
  (*ssthresh_) = (*cwnd_);
  cwr_pending_ = true;
  EmitCwnd();
}

void TcpSender::EmitCwnd() {
  if (tracer_ == nullptr) return;
  if ((*cwnd_) == last_cwnd_emitted_ && (*ssthresh_) == last_ssthresh_emitted_) {
    return;
  }
  last_cwnd_emitted_ = (*cwnd_);
  last_ssthresh_emitted_ = (*ssthresh_);
  tracer_->OnCwnd(flow_, host_.sim().Now(), (*cwnd_), (*ssthresh_));
}

void TcpSender::Complete() {
  complete_ = true;
  rto_timer_.Cancel();
  pace_timer_.Cancel();
  record_.completion_time = host_.sim().Now();
  if (on_complete_) on_complete_(record_);
}

}  // namespace ecnsharp
