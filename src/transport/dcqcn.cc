#include "transport/dcqcn.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/packet_pool.h"

namespace ecnsharp {

namespace {
constexpr std::uint32_t kCnpBytes = 60;

DataRate Halfway(DataRate target, DataRate current) {
  return DataRate::BitsPerSecond((target.bps() + current.bps()) / 2);
}
}  // namespace

// --------------------------- DcqcnSender -----------------------------------

DcqcnSender::DcqcnSender(Host& host, const DcqcnConfig& config, FlowKey flow,
                         std::uint64_t flow_size,
                         std::function<void(const FlowRecord&)> on_complete)
    : host_(host),
      config_(config),
      flow_(flow),
      flow_size_(flow_size),
      on_complete_(std::move(on_complete)),
      current_rate_(config.line_rate),
      target_rate_(config.line_rate),
      pacing_timer_(host.sim(), [this] { SendNext(); }),
      alpha_timer_(host.sim(), [this] { OnAlphaTimer(); }),
      increase_timer_(host.sim(), [this] { OnIncreaseTimer(); }) {
  assert(flow_size_ > 0);
  record_.flow = flow_;
  record_.size_bytes = flow_size_;
}

void DcqcnSender::Start() {
  record_.start_time = host_.sim().Now();
  alpha_timer_.Schedule(config_.alpha_timer);
  increase_timer_.Schedule(config_.increase_timer);
  SendNext();
}

void DcqcnSender::SendNext() {
  if (complete_ || sent_bytes_ >= flow_size_) return;
  const std::uint64_t payload = std::min<std::uint64_t>(
      config_.mtu_payload, flow_size_ - sent_bytes_);
  auto pkt = NewPacket();
  pkt->flow = flow_;
  pkt->type = PacketType::kData;
  pkt->payload_bytes = static_cast<std::uint32_t>(payload);
  pkt->size_bytes = static_cast<std::uint32_t>(payload) + kDataHeaderBytes;
  pkt->seq = sent_bytes_;
  // RDMA transfer lengths are announced out of band; model that by carrying
  // the total in every data packet so the receiver knows when to signal
  // completion.
  pkt->ack = flow_size_;
  pkt->ecn = EcnCodepoint::kEct0;
  pkt->sent_time = host_.sim().Now();
  const std::uint32_t wire_bytes = pkt->size_bytes;
  host_.SendPacket(std::move(pkt));
  sent_bytes_ += payload;

  // Byte-counter increase events.
  bytes_since_increase_ += payload;
  if (bytes_since_increase_ >= config_.increase_bytes) {
    bytes_since_increase_ = 0;
    ++byte_events_;
    IncreaseEvent();
  }

  if (sent_bytes_ < flow_size_) {
    pacing_timer_.Schedule(current_rate_.TransmissionTime(wire_bytes));
  }
}

void DcqcnSender::OnCnp() {
  if (complete_) return;
  // DCQCN rate decrease: remember the current rate as the recovery target,
  // cut proportionally to alpha, then raise alpha.
  target_rate_ = current_rate_;
  current_rate_ = std::max(
      DataRate::BitsPerSecond(static_cast<std::int64_t>(
          static_cast<double>(current_rate_.bps()) * (1.0 - alpha_ / 2.0))),
      config_.min_rate);
  alpha_ = (1.0 - config_.g) * alpha_ + config_.g;
  // Restart the recovery machinery.
  timer_events_ = 0;
  byte_events_ = 0;
  bytes_since_increase_ = 0;
  alpha_timer_.Schedule(config_.alpha_timer);
  increase_timer_.Schedule(config_.increase_timer);
}

void DcqcnSender::OnAlphaTimer() {
  if (complete_) return;
  // No CNP for a full alpha period: congestion estimate decays.
  alpha_ = (1.0 - config_.g) * alpha_;
  alpha_timer_.Schedule(config_.alpha_timer);
}

void DcqcnSender::OnIncreaseTimer() {
  if (complete_) return;
  ++timer_events_;
  IncreaseEvent();
  increase_timer_.Schedule(config_.increase_timer);
}

void DcqcnSender::IncreaseEvent() {
  const std::uint32_t f = config_.fast_recovery_stages;
  if (timer_events_ > f && byte_events_ > f) {
    // Hyper increase: both clocks past fast recovery.
    target_rate_ = std::min(
        DataRate::BitsPerSecond(target_rate_.bps() + config_.rate_hai.bps()),
        config_.line_rate);
  } else if (timer_events_ > f || byte_events_ > f) {
    // Additive increase.
    target_rate_ = std::min(
        DataRate::BitsPerSecond(target_rate_.bps() + config_.rate_ai.bps()),
        config_.line_rate);
  }
  // Fast recovery (and every stage): move halfway back to the target.
  current_rate_ = std::min(Halfway(target_rate_, current_rate_),
                           config_.line_rate);
}

void DcqcnSender::OnCompleted() {
  if (complete_) return;
  complete_ = true;
  pacing_timer_.Cancel();
  alpha_timer_.Cancel();
  increase_timer_.Cancel();
  record_.completion_time = host_.sim().Now();
  if (on_complete_) on_complete_(record_);
}

// --------------------------- DcqcnReceiver ---------------------------------

DcqcnReceiver::DcqcnReceiver(Host& host, const DcqcnConfig& config,
                             FlowKey flow, std::uint64_t expected_bytes)
    : host_(host),
      config_(config),
      flow_(flow),
      expected_bytes_(expected_bytes) {}

void DcqcnReceiver::OnData(const Packet& pkt) {
  bytes_received_ += pkt.payload_bytes;
  if (pkt.IsCeMarked() &&
      host_.sim().Now() - last_cnp_ >= config_.cnp_interval) {
    last_cnp_ = host_.sim().Now();
    SendCnp();
  }
  if (!completed_sent_ && bytes_received_ >= expected_bytes_) {
    completed_sent_ = true;
    SendCompletion();
  }
}

void DcqcnReceiver::SendCnp() {
  auto cnp = NewPacket();
  cnp->flow = flow_.Reversed();
  cnp->type = PacketType::kCnp;
  cnp->size_bytes = kCnpBytes;
  host_.SendPacket(std::move(cnp));
}

void DcqcnReceiver::SendCompletion() {
  auto done = NewPacket();
  done->flow = flow_.Reversed();
  done->type = PacketType::kAck;
  done->size_bytes = kCnpBytes;
  done->ack = expected_bytes_;
  host_.SendPacket(std::move(done));
}

// --------------------------- DcqcnStack ------------------------------------

DcqcnStack::DcqcnStack(Host& host, const DcqcnConfig& config)
    : host_(host), config_(config) {
  host_.SetProtocolHandler(*this);
}

DcqcnSender& DcqcnStack::StartFlow(
    std::uint32_t dst, std::uint64_t size_bytes,
    std::function<void(const FlowRecord&)> on_complete) {
  FlowKey key;
  key.src = host_.address();
  key.dst = dst;
  key.dst_port = 4791;  // RoCEv2 UDP port
  do {
    key.src_port = next_port_++;
    if (next_port_ == 0) next_port_ = 1;
  } while (senders_.contains(key));

  auto sender = std::make_unique<DcqcnSender>(host_, config_, key, size_bytes,
                                              std::move(on_complete));
  DcqcnSender& ref = *sender;
  senders_.emplace(key, std::move(sender));
  ref.Start();
  return ref;
}

void DcqcnStack::HandlePacket(std::unique_ptr<Packet> pkt) {
  assert(pkt->flow.dst == host_.address());
  switch (pkt->type) {
    case PacketType::kData: {
      auto it = receivers_.find(pkt->flow);
      if (it == receivers_.end()) {
        // The expected transfer length rides in the data packets' `ack`
        // field (see DcqcnSender::SendNext).
        it = receivers_
                 .emplace(pkt->flow, std::make_unique<DcqcnReceiver>(
                                         host_, config_, pkt->flow,
                                         pkt->ack))
                 .first;
      }
      it->second->OnData(*pkt);
      break;
    }
    case PacketType::kCnp: {
      const auto it = senders_.find(pkt->flow.Reversed());
      if (it != senders_.end()) it->second->OnCnp();
      break;
    }
    case PacketType::kAck: {
      const auto it = senders_.find(pkt->flow.Reversed());
      if (it != senders_.end()) it->second->OnCompleted();
      break;
    }
  }
}

}  // namespace ecnsharp
