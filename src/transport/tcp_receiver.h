// TCP receiver: cumulative ACK generation with delayed ACKs, out-of-order
// buffering, and ECN echo in classic (latched ECE until CWR) or DCTCP
// (RFC 8257 §3.2 delayed-ACK CE state machine) mode.
#ifndef ECNSHARP_TRANSPORT_TCP_RECEIVER_H_
#define ECNSHARP_TRANSPORT_TCP_RECEIVER_H_

#include <cstdint>
#include <map>
#include <memory>

#include "net/host.h"
#include "net/packet.h"
#include "sim/timer.h"
#include "transport/tcp_config.h"

namespace ecnsharp {

class TcpReceiver {
 public:
  // `flow` is the key of the arriving data packets (sender -> receiver);
  // ACKs are emitted on the reversed key.
  TcpReceiver(Host& host, const TcpConfig& config, FlowKey flow);

  void OnData(const Packet& pkt);

  std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  void AcceptPayload(const Packet& pkt);
  void SendAckNow();
  void OnDelayedAckTimer();
  bool CurrentEce() const;

  Host& host_;
  TcpConfig config_;
  FlowKey flow_;
  std::uint64_t rcv_nxt_ = 0;
  std::uint64_t bytes_received_ = 0;
  // Out-of-order byte ranges beyond rcv_nxt_: start -> end (exclusive).
  std::map<std::uint64_t, std::uint64_t> ooo_;

  // Delayed-ACK state.
  std::uint32_t unacked_segments_ = 0;
  Timer delack_timer_;

  // ECN echo state.
  bool dctcp_ce_state_ = false;  // DCTCP.CE of RFC 8257
  bool classic_ece_latched_ = false;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TRANSPORT_TCP_RECEIVER_H_
