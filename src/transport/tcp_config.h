// Transport configuration shared by senders and receivers.
#ifndef ECNSHARP_TRANSPORT_TCP_CONFIG_H_
#define ECNSHARP_TRANSPORT_TCP_CONFIG_H_

#include <cstdint>

#include "net/packet.h"
#include "sim/time.h"

namespace ecnsharp {

enum class EcnMode {
  kNone,     // ECN disabled; losses are the only congestion signal
  kClassic,  // RFC 3168: halve cwnd once per window on ECE (lambda = 1)
  kDctcp,    // RFC 8257: proportional cut cwnd *= (1 - alpha/2) (lambda ~ 0.17)
};

struct TcpConfig {
  std::uint32_t mss = kMaxSegmentSize;
  std::uint32_t init_cwnd_segments = 10;
  EcnMode ecn_mode = EcnMode::kDctcp;

  // DCTCP parameters (RFC 8257 / DCTCP paper): EWMA gain g and initial
  // marked-fraction estimate.
  double dctcp_g = 1.0 / 16.0;
  double dctcp_init_alpha = 1.0;

  // Retransmission timer. Datacenter stacks run a reduced RTOmin; the
  // default (5 ms) matches common DCTCP deployments and makes each timeout
  // cost >1 ms of FCT, as the paper observes (§5.2).
  Time min_rto = Time::Milliseconds(5);
  Time max_rto = Time::Seconds(2);
  std::uint32_t dupack_threshold = 3;

  // Delayed ACK: ack every Nth in-order segment, or when the timer fires,
  // or immediately on a PSH segment / out-of-order data.
  std::uint32_t delayed_ack_count = 2;
  Time delayed_ack_timeout = Time::FromMicroseconds(500);

  // Packet pacing: spread transmissions at pacing_gain * cwnd / srtt
  // instead of bursting the whole permitted window per ACK. Off by default
  // (classic ACK clocking); enables the burstiness ablation.
  bool pacing = false;
  double pacing_gain = 1.2;
  // Pacing rate assumed before the first RTT sample.
  DataRate initial_pacing_rate = DataRate::GigabitsPerSecond(10);

  // Upper bound on the congestion window. Models the receive-window /
  // TCP-small-queues limit of a real stack: without it a lone flow whose
  // own NIC is the bottleneck grows cwnd without bound and head-of-line
  // blocks its host's NIC queue for milliseconds, which no tuned datacenter
  // stack does. 1 MB comfortably exceeds the largest base-RTT BDP in the
  // paper's settings (10 Gbps x 350 us = 437 KB) plus any marking threshold.
  std::uint64_t max_cwnd_bytes = 1024 * 1024;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TRANSPORT_TCP_CONFIG_H_
