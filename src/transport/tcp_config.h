// Transport configuration shared by senders and receivers.
#ifndef ECNSHARP_TRANSPORT_TCP_CONFIG_H_
#define ECNSHARP_TRANSPORT_TCP_CONFIG_H_

#include <cstdint>

#include "net/packet.h"
#include "sim/time.h"

namespace ecnsharp {

enum class EcnMode {
  kNone,     // ECN disabled; losses are the only congestion signal
  kClassic,  // RFC 3168: halve cwnd once per window on ECE (lambda = 1)
  kDctcp,    // RFC 8257: proportional cut cwnd *= (1 - alpha/2) (lambda ~ 0.17)
};

// Which congestion controller drives a flow. kNewReno is the existing
// sender (slow start + NewReno loss recovery, ECN reaction per `ecn_mode`);
// kCubic swaps in CUBIC window growth (RFC 8312) with its own ECN stance
// (`cubic_ecn_mode`) — the loss-based cross-traffic of the mixed-CC
// coexistence experiments.
enum class CcKind { kNewReno, kCubic };

struct TcpConfig {
  std::uint32_t mss = kMaxSegmentSize;
  std::uint32_t init_cwnd_segments = 10;
  EcnMode ecn_mode = EcnMode::kDctcp;

  // DCTCP parameters (RFC 8257 / DCTCP paper): EWMA gain g and initial
  // marked-fraction estimate.
  double dctcp_g = 1.0 / 16.0;
  double dctcp_init_alpha = 1.0;

  // Retransmission timer. Datacenter stacks run a reduced RTOmin; the
  // default (5 ms) matches common DCTCP deployments and makes each timeout
  // cost >1 ms of FCT, as the paper observes (§5.2).
  Time min_rto = Time::Milliseconds(5);
  Time max_rto = Time::Seconds(2);
  std::uint32_t dupack_threshold = 3;

  // Delayed ACK: ack every Nth in-order segment, or when the timer fires,
  // or immediately on a PSH segment / out-of-order data.
  std::uint32_t delayed_ack_count = 2;
  Time delayed_ack_timeout = Time::FromMicroseconds(500);

  // Packet pacing: spread transmissions at pacing_gain * cwnd / srtt
  // instead of bursting the whole permitted window per ACK. Off by default
  // (classic ACK clocking); enables the burstiness ablation.
  bool pacing = false;
  double pacing_gain = 1.2;
  // Pacing rate assumed before the first RTT sample.
  DataRate initial_pacing_rate = DataRate::GigabitsPerSecond(10);

  // Upper bound on the congestion window. Models the receive-window /
  // TCP-small-queues limit of a real stack: without it a lone flow whose
  // own NIC is the bottleneck grows cwnd without bound and head-of-line
  // blocks its host's NIC queue for milliseconds, which no tuned datacenter
  // stack does. 1 MB comfortably exceeds the largest base-RTT BDP in the
  // paper's settings (10 Gbps x 350 us = 437 KB) plus any marking threshold.
  std::uint64_t max_cwnd_bytes = 1024 * 1024;

  // Default controller for flows that do not specify one at StartFlow time.
  CcKind cc_kind = CcKind::kNewReno;

  // CUBIC parameters (RFC 8312), used by CcKind::kCubic flows.
  double cubic_beta = 0.7;  // multiplicative-decrease keep factor
  double cubic_c = 0.4;     // scaling constant C, in segments/sec^3
  bool cubic_fast_convergence = true;
  // ECN stance of Cubic flows: kNone sends non-ECT packets (pure loss-based
  // — AQMs that mark cannot touch them, only overflow drops signal them);
  // kClassic sends ECT and cuts by cubic_beta on ECE. kDctcp is not a
  // meaningful Cubic response and is treated as kClassic.
  EcnMode cubic_ecn_mode = EcnMode::kNone;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TRANSPORT_TCP_CONFIG_H_
