// DCQCN (Zhu et al., SIGCOMM 2015): rate-based congestion control for
// RoCEv2-style transports, driven by ECN marks echoed as CNPs.
//
// Implemented as the paper's §3.5 extension target: DCQCN senders pace
// packets at a current rate Rc; the notification point (receiver) sends at
// most one CNP per `cnp_interval` while it sees CE marks; the reaction
// point reduces on CNP with the DCQCN alpha estimator and recovers through
// fast-recovery / additive-increase / hyper-increase stages clocked by a
// timer and a byte counter.
//
// Modeling notes: RoCE runs over a lossless (PFC) fabric, so this sender
// has no retransmission logic — experiments must provision buffers so AQM
// marking (not loss) is the only congestion signal. Completion is signalled
// by the receiver once all bytes arrive.
#ifndef ECNSHARP_TRANSPORT_DCQCN_H_
#define ECNSHARP_TRANSPORT_DCQCN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/host.h"
#include "net/packet.h"
#include "sim/data_rate.h"
#include "sim/timer.h"
#include "transport/tcp_sender.h"  // FlowRecord

namespace ecnsharp {

struct DcqcnConfig {
  DataRate line_rate = DataRate::GigabitsPerSecond(10);
  std::uint32_t mtu_payload = kMaxSegmentSize;

  // Reaction-point (sender) parameters.
  double g = 1.0 / 256.0;               // alpha gain
  Time alpha_timer = Time::FromMicroseconds(55);
  Time increase_timer = Time::FromMicroseconds(300);
  std::uint64_t increase_bytes = 150'000;  // byte counter period
  std::uint32_t fast_recovery_stages = 5;  // F
  DataRate rate_ai = DataRate::MegabitsPerSecond(40);
  DataRate rate_hai = DataRate::MegabitsPerSecond(400);
  DataRate min_rate = DataRate::MegabitsPerSecond(10);

  // Notification-point (receiver) parameter.
  Time cnp_interval = Time::FromMicroseconds(50);
};

class DcqcnSender {
 public:
  DcqcnSender(Host& host, const DcqcnConfig& config, FlowKey flow,
              std::uint64_t flow_size,
              std::function<void(const FlowRecord&)> on_complete);

  void Start();
  // Congestion notification packet from the receiver.
  void OnCnp();
  // Completion notification (all bytes delivered).
  void OnCompleted();

  DataRate current_rate() const { return current_rate_; }
  DataRate target_rate() const { return target_rate_; }
  double alpha() const { return alpha_; }
  bool complete() const { return complete_; }
  const FlowKey& flow() const { return flow_; }

 private:
  void SendNext();
  void OnAlphaTimer();
  void OnIncreaseTimer();
  void IncreaseEvent();
  void UpdateRate();

  Host& host_;
  DcqcnConfig config_;
  FlowKey flow_;
  std::uint64_t flow_size_;
  std::function<void(const FlowRecord&)> on_complete_;
  FlowRecord record_;

  std::uint64_t sent_bytes_ = 0;
  DataRate current_rate_;
  DataRate target_rate_;
  double alpha_ = 1.0;
  // Increase-stage counters: timer events and byte-counter events since the
  // last rate decrease.
  std::uint32_t timer_events_ = 0;
  std::uint32_t byte_events_ = 0;
  std::uint64_t bytes_since_increase_ = 0;

  Timer pacing_timer_;
  Timer alpha_timer_;
  Timer increase_timer_;
  bool complete_ = false;
};

// Notification point: counts delivered bytes, emits rate-limited CNPs on CE
// marks, and signals completion.
class DcqcnReceiver {
 public:
  DcqcnReceiver(Host& host, const DcqcnConfig& config, FlowKey flow,
                std::uint64_t expected_bytes);

  void OnData(const Packet& pkt);
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  void SendCnp();
  void SendCompletion();

  Host& host_;
  DcqcnConfig config_;
  FlowKey flow_;
  std::uint64_t expected_bytes_;
  std::uint64_t bytes_received_ = 0;
  Time last_cnp_ = Time::Nanoseconds(-1'000'000'000);
  bool completed_sent_ = false;
};

// Per-host DCQCN endpoint: dispatches data/CNP/completion packets and
// originates flows, mirroring TcpStack's interface.
class DcqcnStack : public PacketSink {
 public:
  DcqcnStack(Host& host, const DcqcnConfig& config);

  DcqcnSender& StartFlow(std::uint32_t dst, std::uint64_t size_bytes,
                         std::function<void(const FlowRecord&)> on_complete);

  void HandlePacket(std::unique_ptr<Packet> pkt) override;

 private:
  Host& host_;
  DcqcnConfig config_;
  std::uint16_t next_port_ = 1;
  std::unordered_map<FlowKey, std::unique_ptr<DcqcnSender>, FlowKeyHash>
      senders_;
  std::unordered_map<FlowKey, std::unique_ptr<DcqcnReceiver>, FlowKeyHash>
      receivers_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TRANSPORT_DCQCN_H_
