#include "transport/tcp_stack.h"

#include <cassert>
#include <utility>

#include "transport/cubic_sender.h"

namespace ecnsharp {

TcpStack::TcpStack(Host& host, const TcpConfig& config)
    : host_(host), config_(config) {
  host_.SetProtocolHandler(*this);
}

TcpSender& TcpStack::StartFlow(std::uint32_t dst, std::uint64_t size_bytes,
                               TcpSender::CompletionCallback on_complete,
                               std::uint8_t traffic_class,
                               std::optional<CcKind> cc) {
  FlowKey key;
  key.src = host_.address();
  key.dst = dst;
  key.dst_port = 80;
  // Find an unused source port (wraps; skips ports of still-tracked flows).
  do {
    key.src_port = next_port_++;
    if (next_port_ == 0) next_port_ = 1;
  } while (senders_.contains(key));

  const CcKind kind = cc.value_or(config_.cc_kind);
  std::unique_ptr<TcpSender> sender;
  if (kind == CcKind::kCubic) {
    // Cubic flows carry their own ECN stance; kDctcp is not a meaningful
    // Cubic response, so it degrades to the classic one-cut-per-window.
    TcpConfig cubic_config = config_;
    cubic_config.ecn_mode = config_.cubic_ecn_mode == EcnMode::kDctcp
                                ? EcnMode::kClassic
                                : config_.cubic_ecn_mode;
    sender = std::make_unique<CubicSender>(host_, cubic_config, key,
                                           size_bytes, traffic_class,
                                           std::move(on_complete));
  } else {
    sender = std::make_unique<TcpSender>(host_, config_, key, size_bytes,
                                         traffic_class, std::move(on_complete));
  }
  TcpSender& ref = *sender;
  ref.set_tracer(transport_tracer_);
  // Re-home the hot CC fields into the stack's SoA arena before the first
  // segment goes out; all per-ACK arithmetic then runs on dense rows.
  ref.BindFlowHotState(flow_hot_);
  senders_.emplace(key, std::move(sender));
  ref.Start();
  return ref;
}

void TcpStack::HandlePacket(std::unique_ptr<Packet> pkt) {
  assert(pkt->flow.dst == host_.address());
  if (pkt->type == PacketType::kAck) {
    const auto it = senders_.find(pkt->flow.Reversed());
    if (it != senders_.end()) it->second->OnAck(*pkt);
    return;
  }
  auto it = receivers_.find(pkt->flow);
  if (it == receivers_.end()) {
    it = receivers_
             .emplace(pkt->flow, std::make_unique<TcpReceiver>(
                                     host_, config_, pkt->flow))
             .first;
  }
  it->second->OnData(*pkt);
}

std::size_t TcpStack::active_senders() const {
  std::size_t n = 0;
  for (const auto& [key, sender] : senders_) {
    if (!sender->complete()) ++n;
  }
  return n;
}

}  // namespace ecnsharp
