// TCP sender state machine.
//
// Models a one-directional bulk transfer of `flow_size` bytes: slow start,
// congestion avoidance, NewReno-style fast retransmit/recovery, an RFC 6298
// retransmission timer with exponential backoff, and ECN reaction in either
// classic (RFC 3168) or DCTCP (RFC 8257) mode. Data is metadata-only; the
// receiver acknowledges byte offsets cumulatively.
#ifndef ECNSHARP_TRANSPORT_TCP_SENDER_H_
#define ECNSHARP_TRANSPORT_TCP_SENDER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "net/host.h"
#include "net/packet.h"
#include "sim/timer.h"
#include "trace/transport_tracer.h"
#include "transport/flow_hot_state.h"
#include "transport/tcp_config.h"

namespace ecnsharp {

// Outcome summary handed to the completion callback.
struct FlowRecord {
  FlowKey flow;
  std::uint64_t size_bytes = 0;
  Time start_time = Time::Zero();
  Time completion_time = Time::Zero();
  std::uint32_t timeouts = 0;
  std::uint32_t fast_retransmits = 0;
  // Which controller drove the flow (CubicSender stamps kCubic) — lets the
  // FCT collector split results per CC in mixed-CC runs.
  CcKind cc = CcKind::kNewReno;

  Time Fct() const { return completion_time - start_time; }
};

class TcpSender {
 public:
  using CompletionCallback = std::function<void(const FlowRecord&)>;

  TcpSender(Host& host, const TcpConfig& config, FlowKey flow,
            std::uint64_t flow_size, std::uint8_t traffic_class,
            CompletionCallback on_complete);
  virtual ~TcpSender() = default;

  // Optional transport tracing (non-owning; null disables). Must be set
  // before Start() so the initial window is recorded.
  void set_tracer(TransportTracer* tracer) { tracer_ = tracer; }

  // Re-homes the hot congestion-control fields into `arena` (current values
  // are copied, then all arithmetic runs on the arena's SoA row). Called by
  // TcpStack before Start(); standalone senders keep their local storage and
  // behave identically. Must not be called twice.
  virtual void BindFlowHotState(FlowHotArena& arena);

  // Begins transmission (sends the initial window).
  void Start();

  // Called by the stack for every ACK of this flow.
  void OnAck(const Packet& ack);

  bool complete() const { return complete_; }
  const FlowKey& flow() const { return flow_; }
  const FlowRecord& record() const { return record_; }
  double cwnd_bytes() const { return *cwnd_; }
  double dctcp_alpha() const { return dctcp_alpha_; }
  std::uint64_t bytes_acked() const { return snd_una_; }

 protected:
  // Congestion-control hooks. The defaults are the NewReno behaviour and are
  // kept bit-identical to the pre-refactor arithmetic (the golden parity
  // tests pin this); CubicSender overrides all three.
  //
  // Additive growth applied once per ACK of `newly_acked` bytes while in
  // congestion avoidance (the caller clamps to max_cwnd_bytes afterwards).
  virtual void CongestionAvoidanceIncrease(std::uint64_t newly_acked);
  // New ssthresh after a loss event (fast retransmit or RTO), computed from
  // the pre-cut cwnd_. May mutate controller-private epoch state.
  virtual double SsthreshAfterLoss();
  // Multiplicative ECN cut: cwnd *= (1 - factor), ssthresh follows.
  virtual void ReduceWindowOnEcn(double factor);

  Host& host_;
  TcpConfig config_;
  FlowRecord record_;

  // Hot congestion-control state, reached through pointers. They default to
  // the local fallback block below; BindFlowHotState repoints them into a
  // TcpStack's FlowHotArena SoA row. Senders are heap-pinned (owned via
  // unique_ptr, never copied or moved), so the self-referential defaults are
  // safe.
  //
  // Local fallback storage for unbound (standalone) senders.
  struct LocalHot {
    double cwnd = 0.0;
    double ssthresh = 0.0;
    Time srtt = Time::Zero();
    Time rttvar = Time::Zero();
    Time probe_sent_at = Time::Zero();
    bool rtt_valid = false;
  } local_;

  // Congestion control (bytes).
  double* cwnd_ = &local_.cwnd;
  double* ssthresh_ = &local_.ssthresh;

  // RTT estimate, shared with derived controllers (CUBIC's TCP-friendly
  // region needs srtt_).
  bool* rtt_valid_ = &local_.rtt_valid;
  Time* srtt_ = &local_.srtt;

 private:
  void SendAvailable();
  void PacedSend();
  void SendSegment(std::uint64_t seq, bool is_retransmit);
  void OnNewDataAcked(std::uint64_t ack_no, bool ece);
  void OnDupAck();
  void OnRtoExpired();
  void RestartRtoTimer();
  void UpdateRttEstimate(Time sample);
  Time CurrentRto() const;
  void HandleEceClassic();
  void DctcpWindowUpdate(std::uint64_t newly_acked, bool ece);
  void Complete();
  // Reports cwnd_/ssthresh_ to the tracer if they changed since last emit.
  void EmitCwnd();

  FlowKey flow_;
  std::uint64_t flow_size_;
  std::uint8_t traffic_class_;
  CompletionCallback on_complete_;

  // Sequence state (byte offsets within the flow).
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;

  std::uint32_t dupacks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint64_t recover_point_ = 0;

  // ECN.
  bool cwr_pending_ = false;          // set CWR on the next data segment
  std::uint64_t ecn_cut_window_end_ = 0;  // classic: one cut per window
  double dctcp_alpha_;
  std::uint64_t dctcp_window_end_ = 0;
  std::uint64_t dctcp_bytes_acked_ = 0;
  std::uint64_t dctcp_bytes_marked_ = 0;

  // RTT estimation / RTO (RFC 6298); srtt_/rtt_valid_ live in the
  // protected block above.
  Time* rttvar_ = &local_.rttvar;
  std::uint32_t rto_backoff_ = 0;  // consecutive timeouts
  Timer rto_timer_;
  Timer pace_timer_;
  // Karn's algorithm: one outstanding un-retransmitted RTT probe, armed
  // only on data never sent before (seq >= sent_high_). A go-back-N resend
  // re-covers old sequence ranges with is_retransmit=false segments; an ACK
  // for the *original* transmission of that range would otherwise match a
  // probe armed on the resend and yield a near-zero RTT sample.
  bool probe_armed_ = false;
  std::uint64_t probe_seq_end_ = 0;
  std::uint64_t sent_high_ = 0;  // highest sequence ever sent
  Time* probe_sent_at_ = &local_.probe_sent_at;

  bool complete_ = false;

  // Transport tracing.
  TransportTracer* tracer_ = nullptr;
  double last_cwnd_emitted_ = -1.0;
  double last_ssthresh_emitted_ = -1.0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TRANSPORT_TCP_SENDER_H_
