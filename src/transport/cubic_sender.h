// CUBIC congestion control (RFC 8312) on top of the TcpSender machinery.
//
// Reuses the base sender's sequencing, NewReno-style recovery plumbing, RTO,
// pacing and tracing; overrides only the congestion-control hooks: cubic
// window growth W(t) = C*(t-K)^3 + W_max with the TCP-friendly Reno region,
// beta = 0.7 multiplicative decrease with fast convergence, and a
// classic-ECN response that cuts by the same beta (when the flow's TcpConfig
// enables ECN at all — the mixed-CC experiments default Cubic to non-ECT
// so only drops signal it). Windows are kept in bytes like the base class;
// the cubic polynomial runs in segment units as the RFC specifies.
#ifndef ECNSHARP_TRANSPORT_CUBIC_SENDER_H_
#define ECNSHARP_TRANSPORT_CUBIC_SENDER_H_

#include "transport/tcp_sender.h"

namespace ecnsharp {

class CubicSender : public TcpSender {
 public:
  CubicSender(Host& host, const TcpConfig& config, FlowKey flow,
              std::uint64_t flow_size, std::uint8_t traffic_class,
              CompletionCallback on_complete);

  double w_max_bytes() const { return hot_->w_max; }

  // Also co-locates the cubic epoch state in the arena, next to the base
  // row, so a bound flow's whole per-ACK working set is arena-resident.
  void BindFlowHotState(FlowHotArena& arena) override;

 protected:
  void CongestionAvoidanceIncrease(std::uint64_t newly_acked) override;
  double SsthreshAfterLoss() override;
  void ReduceWindowOnEcn(double factor) override;

 private:
  // Controller-private hot state: W_max plus the epoch established on the
  // first CA ack after a congestion event.
  struct CubicHotState {
    double w_max = 0.0;     // window size at the last congestion event, bytes
    bool epoch_valid = false;
    Time epoch_start = Time::Zero();
    double k = 0.0;         // K, seconds
    double origin = 0.0;    // W_max at epoch start, bytes
    double w_est = 0.0;     // TCP-friendly (Reno-tracking) estimate, bytes
  };

  // Records the loss/mark event for the cubic polynomial: updates W_max
  // (with fast convergence) and invalidates the epoch so the next CA ack
  // starts a fresh one.
  void OnCongestionEvent();

  CubicHotState local_cubic_;
  CubicHotState* hot_ = &local_cubic_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TRANSPORT_CUBIC_SENDER_H_
