// CUBIC congestion control (RFC 8312) on top of the TcpSender machinery.
//
// Reuses the base sender's sequencing, NewReno-style recovery plumbing, RTO,
// pacing and tracing; overrides only the congestion-control hooks: cubic
// window growth W(t) = C*(t-K)^3 + W_max with the TCP-friendly Reno region,
// beta = 0.7 multiplicative decrease with fast convergence, and a
// classic-ECN response that cuts by the same beta (when the flow's TcpConfig
// enables ECN at all — the mixed-CC experiments default Cubic to non-ECT
// so only drops signal it). Windows are kept in bytes like the base class;
// the cubic polynomial runs in segment units as the RFC specifies.
#ifndef ECNSHARP_TRANSPORT_CUBIC_SENDER_H_
#define ECNSHARP_TRANSPORT_CUBIC_SENDER_H_

#include "transport/tcp_sender.h"

namespace ecnsharp {

class CubicSender : public TcpSender {
 public:
  CubicSender(Host& host, const TcpConfig& config, FlowKey flow,
              std::uint64_t flow_size, std::uint8_t traffic_class,
              CompletionCallback on_complete);

  double w_max_bytes() const { return w_max_; }

 protected:
  void CongestionAvoidanceIncrease(std::uint64_t newly_acked) override;
  double SsthreshAfterLoss() override;
  void ReduceWindowOnEcn(double factor) override;

 private:
  // Records the loss/mark event for the cubic polynomial: updates W_max
  // (with fast convergence) and invalidates the epoch so the next CA ack
  // starts a fresh one.
  void OnCongestionEvent();

  double w_max_ = 0.0;  // window size at the last congestion event, bytes
  // Epoch state, established on the first CA ack after a congestion event.
  bool epoch_valid_ = false;
  Time epoch_start_ = Time::Zero();
  double epoch_k_ = 0.0;      // K, seconds
  double epoch_origin_ = 0.0; // W_max at epoch start, bytes
  double w_est_ = 0.0;        // TCP-friendly (Reno-tracking) estimate, bytes
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TRANSPORT_CUBIC_SENDER_H_
