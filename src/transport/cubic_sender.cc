#include "transport/cubic_sender.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ecnsharp {

CubicSender::CubicSender(Host& host, const TcpConfig& config, FlowKey flow,
                         std::uint64_t flow_size, std::uint8_t traffic_class,
                         CompletionCallback on_complete)
    : TcpSender(host, config, flow, flow_size, traffic_class,
                std::move(on_complete)) {
  record_.cc = CcKind::kCubic;
}

void CubicSender::BindFlowHotState(FlowHotArena& arena) {
  TcpSender::BindFlowHotState(arena);
  CubicHotState* s = arena.Emplace<CubicHotState>();
  *s = *hot_;
  hot_ = s;
}

void CubicSender::CongestionAvoidanceIncrease(std::uint64_t newly_acked) {
  const double mss = static_cast<double>(config_.mss);
  if (!hot_->epoch_valid) {
    // First CA ack after a congestion event (or after slow start with no
    // loss yet): start a cubic epoch at the current window.
    hot_->epoch_valid = true;
    hot_->epoch_start = host_.sim().Now();
    if (hot_->w_max < (*cwnd_)) hot_->w_max = (*cwnd_);
    hot_->origin = hot_->w_max;
    // K = cbrt((W_max - cwnd) / C), computed in segments per RFC 8312 §4.1.
    const double delta_seg = (hot_->origin - (*cwnd_)) / mss;
    hot_->k = std::cbrt(std::max(delta_seg, 0.0) / config_.cubic_c);
    hot_->w_est = (*cwnd_);
  }

  // Target: the cubic curve evaluated one RTT ahead of now.
  const double rtt_s = (*rtt_valid_) ? (*srtt_).ToSeconds() : 0.0;
  const double t =
      (host_.sim().Now() - hot_->epoch_start).ToSeconds() + rtt_s - hot_->k;
  double target = hot_->origin + config_.cubic_c * t * t * t * mss;
  // RFC 8312 §4.1 clamps the per-RTT ramp to 1.5x the current window.
  target = std::min(target, 1.5 * (*cwnd_));

  // TCP-friendly region (§4.2): track what Reno with beta=cubic_beta would
  // achieve; never grow slower than it.
  const double reno_ai =
      3.0 * (1.0 - config_.cubic_beta) / (1.0 + config_.cubic_beta);
  hot_->w_est += reno_ai * mss * static_cast<double>(newly_acked) / (*cwnd_);
  target = std::max(target, hot_->w_est);

  if (target > (*cwnd_)) {
    // Spread the climb to `target` over roughly one window of acks.
    (*cwnd_) += (target - (*cwnd_)) * static_cast<double>(newly_acked) / (*cwnd_);
  }
}

void CubicSender::OnCongestionEvent() {
  // Fast convergence (§4.6): if the window stopped short of the previous
  // W_max, the pipe shrank — release capacity sooner by remembering less.
  if (config_.cubic_fast_convergence && (*cwnd_) < hot_->w_max) {
    hot_->w_max = (*cwnd_) * (1.0 + config_.cubic_beta) / 2.0;
  } else {
    hot_->w_max = (*cwnd_);
  }
  hot_->epoch_valid = false;
}

double CubicSender::SsthreshAfterLoss() {
  OnCongestionEvent();
  return std::max((*cwnd_) * config_.cubic_beta,
                  2.0 * static_cast<double>(config_.mss));
}

void CubicSender::ReduceWindowOnEcn(double /*factor*/) {
  // Classic-ECN Cubic cuts by the same beta as a loss (§4.6), not the
  // caller's half/alpha factor.
  OnCongestionEvent();
  TcpSender::ReduceWindowOnEcn(1.0 - config_.cubic_beta);
}

}  // namespace ecnsharp
