#include "harness/relaxed_lanes.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "harness/schemes.h"
#include "sim/lane_executor.h"
#include "sim/logging.h"
#include "sim/random.h"
#include "stats/fct_collector.h"
#include "topo/rtt_variation.h"

namespace ecnsharp {

namespace {

// One pre-drawn workload arrival. Arrivals are drawn single-threaded from
// the forked rng stream (identical draws to TrafficGenerator::Start) and
// then scheduled onto the source host's lane.
struct PendingFlow {
  Time at;
  TcpStack* stack;
  std::uint32_t dst;
  std::uint64_t size;
  CcKind cc;
};

void ValidateRelaxedConfig(const FatTreeExperimentConfig& config,
                           std::size_t lane_count) {
  if (lane_count < 2) {
    FatalConfigError("relaxed-lanes needs >= 2 lanes, got " +
                     std::to_string(lane_count));
  }
  if (!config.scenario.empty()) {
    FatalConfigError(
        "relaxed-lanes cannot run scenario scripts (scenario hooks assume a "
        "single event clock); drop the scenario or run lanes-off");
  }
  if (config.trace.enabled) {
    FatalConfigError(
        "relaxed-lanes cannot run with tracing enabled (the flight recorder "
        "assumes a single event clock); disable trace or run lanes-off");
  }
  if (config.sketch.enabled) {
    FatalConfigError(
        "relaxed-lanes cannot run with sketch telemetry enabled; disable "
        "sketch or run lanes-off");
  }
  if (!config.queue_sample_period.IsZero()) {
    FatalConfigError(
        "relaxed-lanes cannot run queue sampling (monitors assume a single "
        "event clock); set queue_sample_period to 0 or run lanes-off");
  }
  if (config.topo.fabric_link_delay <= Time::Zero()) {
    FatalConfigError(
        "relaxed-lanes needs a positive fabric_link_delay (it is the "
        "conservative round window / cross-lane lookahead)");
  }
}

}  // namespace

ExperimentResult RunFatTreeRelaxed(const FatTreeExperimentConfig& config,
                                   std::size_t lane_count) {
  ValidateRelaxedConfig(config, lane_count);

  LaneSet lanes(lane_count);

  FatTreeConfig topo_config = config.topo;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.buffer_policy = config.buffer_policy;
  FatTree topo(lanes, topo_config, [&config](BufferPolicy* pool) {
    return MakeFifoDisc(config.scheme, config.params, pool);
  });

  // Rng discipline identical to ExperimentSession::Bind: per-host RTT
  // extras from the session rng in host order, then fork for the arrival
  // process. The offered load is therefore draw-for-draw the load the
  // single-lane runner offers at the same seed.
  Rng rng(config.seed);
  for (std::size_t i = 0; i < topo.host_count(); ++i) {
    topo.host(i).set_extra_egress_delay(
        SampleRttExtra(rng, config.max_extra_delay, RttProfile::kLeafSpine));
  }
  Rng flow_rng = rng.Fork();

  // Pre-draw every arrival with TrafficGenerator's exact draw sequence:
  // exponential gap, size, (src, dst) pair, optional CC Bernoulli.
  const double bits_per_flow = config.workload->Mean() * 8.0;
  const double arrival_rate =
      config.load *
      static_cast<double>(topo.ReferenceCapacity().bps()) / bits_per_flow;
  const double mean_gap_s = 1.0 / arrival_rate;
  std::vector<PendingFlow> pending;
  pending.reserve(config.flows);
  Time at = Time::Zero();
  for (std::size_t i = 0; i < config.flows; ++i) {
    at += Time::FromSeconds(flow_rng.Exponential(mean_gap_s));
    const auto size = static_cast<std::uint64_t>(
        std::max(1.0, config.workload->Sample(flow_rng)));
    auto [stack, dst] = topo.SampleFlowPair(flow_rng);
    CcKind cc = CcKind::kNewReno;
    if (config.cc_mix > 0.0 && flow_rng.Uniform() < config.cc_mix) {
      cc = CcKind::kCubic;
    }
    pending.push_back(PendingFlow{at, stack, dst, size, cc});
  }

  // Each arrival starts on its source host's lane; the completion callback
  // also fires there (the final ACK arrives at the sender), so per-lane
  // record vectors and counters are touched by exactly one lane thread.
  std::vector<std::vector<FlowRecord>> lane_records(lane_count);
  std::vector<std::size_t> lane_started(lane_count, 0);
  for (const PendingFlow& flow : pending) {
    const std::size_t lane =
        topo.LaneOfLocality(flow.stack->host().locality_id());
    std::vector<FlowRecord>* records = &lane_records[lane];
    std::size_t* started = &lane_started[lane];
    lanes.lane(lane).ScheduleAt(
        flow.at, [flow, records, started] {
          ++*started;
          flow.stack->StartFlow(
              flow.dst, flow.size,
              [records](const FlowRecord& record) {
                records->push_back(record);
              },
              /*traffic_class=*/0, flow.cc);
        });
  }

  // Drive all lanes in 10 ms slices (matching the single-lane session's
  // drain granularity) with the conservative round window equal to the
  // cross-lane link latency, until every flow completed or the safety cap.
  const Time window = topo_config.fabric_link_delay;
  const auto completed = [&lane_records] {
    std::size_t total = 0;
    for (const auto& records : lane_records) total += records.size();
    return total;
  };
  Time now = Time::Zero();
  while (completed() < config.flows && now < config.max_sim_time) {
    Time next = now + Time::Milliseconds(10);
    if (next > config.max_sim_time) next = config.max_sim_time;
    lanes.Run(next, window);
    now = next;
  }

  // Deterministic merge: lane completion order is round-quantized, so sort
  // the union on (start_time, flow key) — unique per arrival — before
  // feeding the collector. Result summaries are then run-to-run stable.
  std::vector<FlowRecord> merged;
  merged.reserve(completed());
  for (auto& records : lane_records) {
    merged.insert(merged.end(), records.begin(), records.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return std::make_tuple(a.start_time, a.flow.src, a.flow.dst,
                                     a.flow.src_port, a.flow.dst_port) <
                     std::make_tuple(b.start_time, b.flow.src, b.flow.dst,
                                     b.flow.src_port, b.flow.dst_port);
            });
  FctCollector collector;
  for (const FlowRecord& record : merged) collector.Record(record);

  ExperimentResult result;
  result.overall = collector.Overall();
  result.short_flows = collector.ShortFlows();
  result.large_flows = collector.LargeFlows();
  result.timeouts = collector.total_timeouts();
  std::size_t started = 0;
  for (std::size_t s : lane_started) started += s;
  result.flows_started = started;
  result.flows_completed = collector.count();
  result.bottleneck = topo.TotalBottleneckStats();
  result.sim_seconds = lanes.lane(0).Now().ToSeconds();
  if (config.cc_mix > 0.0) {
    result.cubic_fct = collector.SummaryByCc(CcKind::kCubic);
    result.newreno_fct = collector.SummaryByCc(CcKind::kNewReno);
    result.cubic_bytes = collector.BytesByCc(CcKind::kCubic);
    result.newreno_bytes = collector.BytesByCc(CcKind::kNewReno);
  }
  return result;
}

}  // namespace ecnsharp
