#include "harness/schemes.h"

#include "aqm/dctcp_red.h"
#include "aqm/tcn.h"
#include "sched/fifo_queue_disc.h"
#include "tofino/ecn_sharp_pipeline.h"

namespace ecnsharp {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kDctcpRedTail:
      return "DCTCP-RED-Tail";
    case Scheme::kDctcpRedAvg:
      return "DCTCP-RED-AVG";
    case Scheme::kCodel:
      return "CoDel";
    case Scheme::kTcn:
      return "TCN";
    case Scheme::kEcnSharp:
      return "ECN#";
    case Scheme::kEcnSharpTofino:
      return "ECN#-Tofino";
    case Scheme::kDropTail:
      return "DropTail";
    case Scheme::kPie:
      return "PIE";
    case Scheme::kEcnSharpInstOnly:
      return "ECN#-inst-only";
    case Scheme::kEcnSharpPstOnly:
      return "ECN#-pst-only";
  }
  return "?";
}

SchemeParams SimulationSchemeParams() {
  SchemeParams params;
  params.red_tail_threshold_bytes = 275'000;  // C * 220 us at 10 Gbps
  params.red_avg_threshold_bytes = 171'000;   // C * 137 us
  params.codel.interval = Time::FromMicroseconds(240);
  params.codel.target = Time::FromMicroseconds(10);
  params.tcn_threshold = Time::FromMicroseconds(150);
  params.ecn_sharp.ins_target = Time::FromMicroseconds(220);
  params.ecn_sharp.pst_interval = Time::FromMicroseconds(240);
  params.ecn_sharp.pst_target = Time::FromMicroseconds(10);
  return params;
}

std::unique_ptr<AqmPolicy> MakeAqm(Scheme scheme, const SchemeParams& params) {
  switch (scheme) {
    case Scheme::kDctcpRedTail:
      return std::make_unique<DctcpRedAqm>(params.red_tail_threshold_bytes);
    case Scheme::kDctcpRedAvg:
      return std::make_unique<DctcpRedAqm>(params.red_avg_threshold_bytes);
    case Scheme::kCodel:
      return std::make_unique<CodelAqm>(params.codel);
    case Scheme::kTcn:
      return std::make_unique<TcnAqm>(params.tcn_threshold);
    case Scheme::kEcnSharp:
      return std::make_unique<EcnSharpAqm>(params.ecn_sharp);
    case Scheme::kEcnSharpTofino: {
      TofinoPipelineConfig config;
      config.aqm = params.ecn_sharp;
      config.num_ports = 1;
      return std::make_unique<TofinoEcnSharpAqm>(config, /*port=*/0);
    }
    case Scheme::kDropTail:
      return nullptr;
    case Scheme::kPie:
      return std::make_unique<PieAqm>(params.pie, /*seed=*/1);
    case Scheme::kEcnSharpInstOnly: {
      EcnSharpConfig config = params.ecn_sharp;
      // Persistent detection can never trigger.
      config.pst_target = Time::Max() / 4;
      return std::make_unique<EcnSharpAqm>(config);
    }
    case Scheme::kEcnSharpPstOnly: {
      EcnSharpConfig config = params.ecn_sharp;
      config.ins_target = Time::Max() / 4;
      return std::make_unique<EcnSharpAqm>(config);
    }
  }
  return nullptr;
}

std::unique_ptr<QueueDisc> MakeFifoDisc(Scheme scheme,
                                        const SchemeParams& params,
                                        BufferPolicy* pool) {
  if (pool != nullptr) {
    return std::make_unique<FifoQueueDisc>(*pool, MakeAqm(scheme, params));
  }
  return std::make_unique<FifoQueueDisc>(params.buffer_bytes,
                                         MakeAqm(scheme, params));
}

}  // namespace ecnsharp
