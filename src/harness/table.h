// Fixed-width ASCII table printer for bench output.
#ifndef ECNSHARP_HARNESS_TABLE_H_
#define ECNSHARP_HARNESS_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace ecnsharp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders header + separator + rows to stdout.
  void Print() const;

  // Formatting helpers.
  static std::string Fmt(double v, int precision = 2);
  static std::string FmtUs(double microseconds);  // "1234.5us" / "12.3ms"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner: "=== title ===".
void PrintBanner(const std::string& title);

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_TABLE_H_
