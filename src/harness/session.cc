#include "harness/session.h"

#include <string>
#include <utility>
#include <vector>

#include "core/ecn_sharp.h"
#include "hostpath/rtt_probe.h"
#include "sched/fifo_queue_disc.h"
#include "sim/logging.h"
#include "sketch/estimator.h"
#include "sketch/telemetry.h"
#include "trace/trace_recorder.h"

namespace ecnsharp {

namespace {

// Every scenario target must resolve against the bound topology before the
// engine installs a single event. A stale target id in a scenario JSON
// (written for a different topology, or outlived by a config change) would
// otherwise be silently skipped at fire time — the run would look "static"
// while claiming to have executed the script. Fail fast, naming the action
// and the topology's valid target space.
void ValidateScenarioTargets(Topology& topo, const ScenarioScript& script) {
  for (std::size_t i = 0; i < script.actions.size(); ++i) {
    const ScenarioAction& action = script.actions[i];
    const std::string where = "scenario action #" + std::to_string(i) + " (" +
                              ScenarioActionKindName(action.kind) + ")";
    switch (action.kind) {
      case ScenarioActionKind::kSetHostDelay:
        if (action.target < 0 ||
            static_cast<std::size_t>(action.target) >= topo.host_count()) {
          FatalConfigError(where + ": host index " +
                           std::to_string(action.target) +
                           " out of range [0, " +
                           std::to_string(topo.host_count() - 1) + "]");
        }
        break;
      case ScenarioActionKind::kSetLinkRate:
      case ScenarioActionKind::kSetLinkDelay:
      case ScenarioActionKind::kLinkDown:
      case ScenarioActionKind::kLinkUp:
      case ScenarioActionKind::kInjectLoss:
        if (topo.ResolvePort(action.target) == nullptr) {
          FatalConfigError(where + ": port target " +
                           std::to_string(action.target) +
                           " does not resolve; valid targets: " +
                           topo.DescribePortTargets());
        }
        break;
      case ScenarioActionKind::kIncastBurst:
      case ScenarioActionKind::kReestimateEcnSharp:
        break;  // no port/host target
    }
  }
}

// Pushes freshly derived thresholds onto every ECN# bottleneck of `topo`;
// queues not running ECN# are left untouched.
void ApplyEcnSharpConfig(Topology& topo, const EcnSharpConfig& fresh) {
  for (std::size_t b = 0; b < topo.bottleneck_count(); ++b) {
    auto* fifo = dynamic_cast<FifoQueueDisc*>(&topo.bottleneck(b).queue_disc());
    if (fifo == nullptr) continue;
    auto* aqm = dynamic_cast<EcnSharpAqm*>(fifo->aqm());
    if (aqm == nullptr) continue;
    aqm->Reconfigure(fresh);
  }
}

}  // namespace

void ReestimateEcnSharp(Topology& topo) {
  std::vector<double> rtts_us;
  rtts_us.reserve(topo.host_count());
  topo.AppendRttSamplesUs(rtts_us);
  const RttStats stats = ComputeRttStats(std::move(rtts_us));
  if (stats.status != RttProbeStatus::kOk) return;
  ApplyEcnSharpConfig(topo,
                      RuleOfThumbConfig(Time::FromMicroseconds(stats.p90_us),
                                        Time::FromMicroseconds(stats.mean_us),
                                        /*lambda=*/1.0));
}

void ReestimateEcnSharpFromSketch(Topology& topo,
                                  const SketchTelemetry& telemetry, Time now) {
  const SketchRttEstimate estimate = EstimateFromSketch(telemetry, now);
  if (!estimate.valid) return;
  ApplyEcnSharpConfig(topo, SketchRuleOfThumb(estimate, /*lambda=*/1.0));
}

ExperimentSession::ExperimentSession(ExperimentSessionConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

void ExperimentSession::Bind(Topology& topo) {
  topo_ = &topo;

  if (config_.trace.enabled) {
    recorder_ = std::make_shared<TraceRecorder>(config_.trace);
  }
  if (config_.sketch.enabled) {
    telemetry_ = std::make_shared<SketchTelemetry>(config_.sketch);
  }
  if (recorder_ != nullptr || telemetry_ != nullptr) {
    // One site per bottleneck port, in bottleneck order (labels and site
    // ids are therefore deterministic for a given topology). When both
    // observers are on, a TeeTracer shares the port's single tracer slot.
    for (std::size_t b = 0; b < topo.bottleneck_count(); ++b) {
      const std::string label = "bottleneck" + std::to_string(b);
      PacketTracer* trace_tap = nullptr;
      PacketTracer* sketch_tap = nullptr;
      if (recorder_ != nullptr) {
        trace_tap = recorder_->PortTap(recorder_->RegisterSite(label));
      }
      if (telemetry_ != nullptr) {
        const std::uint16_t site = telemetry_->RegisterSite(label);
        sketch_tap = telemetry_->PortTap(site);
        // Border ports of a composed fabric annotate their WAN base RTT;
        // seed the sketch's histogram so sketch-driven re-estimation covers
        // the inter-DC paths from the first epoch.
        const Time hint = topo.bottleneck(b).base_rtt_hint();
        if (hint > Time::Zero()) telemetry_->SetSiteBaseRtt(site, hint);
      }
      if (trace_tap != nullptr && sketch_tap != nullptr) {
        tee_taps_.emplace_back(trace_tap, sketch_tap);
        topo.bottleneck(b).SetTracer(&tee_taps_.back());
      } else {
        topo.bottleneck(b).SetTracer(trace_tap != nullptr ? trace_tap
                                                          : sketch_tap);
      }
    }
    TransportTracer* transport = nullptr;
    if (recorder_ != nullptr && telemetry_ != nullptr) {
      tee_transport_.emplace(recorder_.get(), telemetry_.get());
      transport = &*tee_transport_;
    } else if (recorder_ != nullptr) {
      transport = recorder_.get();
    } else {
      transport = telemetry_.get();
    }
    for (std::size_t i = 0; i < topo.host_count(); ++i) {
      topo.stack(i).SetTransportTracer(transport);
    }
  }

  // RTT extras first: kPerHostSample draws from the session rng in host
  // order, so the generator's forked stream below stays seed-stable.
  switch (config_.rtt_assignment) {
    case ExperimentSessionConfig::RttAssignment::kNone:
      break;
    case ExperimentSessionConfig::RttAssignment::kQuantiles: {
      const std::vector<Time> extras = RttExtraQuantiles(
          topo.host_count(), config_.max_rtt_extra, config_.rtt_profile);
      for (std::size_t i = 0; i < extras.size(); ++i) {
        topo.host(i).set_extra_egress_delay(extras[i]);
      }
      break;
    }
    case ExperimentSessionConfig::RttAssignment::kPerHostSample:
      for (std::size_t i = 0; i < topo.host_count(); ++i) {
        topo.host(i).set_extra_egress_delay(SampleRttExtra(
            rng_, config_.max_rtt_extra, config_.rtt_profile));
      }
      break;
  }

  if (config_.workload != nullptr) {
    TrafficConfig traffic;
    traffic.load = config_.load;
    traffic.reference_capacity = topo.ReferenceCapacity();
    traffic.flow_count = config_.flows;
    traffic.cubic_fraction = config_.cc_mix;
    generator_ = std::make_unique<TrafficGenerator>(
        sim_, *config_.workload, traffic,
        [&topo](Rng& r) { return topo.SampleFlowPair(r); },
        [this](const FlowRecord& record) { collector_.Record(record); },
        rng_.Fork());
  }

  if (!config_.queue_sample_period.IsZero()) {
    const Time until = config_.monitor_until.IsZero() ? config_.max_sim_time
                                                      : config_.monitor_until;
    for (std::size_t b = 0; b < topo.bottleneck_count(); ++b) {
      monitors_.Add(sim_, topo.bottleneck(b).queue_disc(),
                    config_.queue_sample_period);
    }
    monitors_.RunAll(config_.monitor_from, until);
  }

  if (!config_.scenario.empty()) {
    ValidateScenarioTargets(topo, config_.scenario);
    ScenarioHooks hooks;
    hooks.port = [&topo](int target) { return topo.ResolvePort(target); };
    hooks.set_host_delay = [&topo](int index, Time delay) {
      if (index >= 0 && static_cast<std::size_t>(index) < topo.host_count()) {
        topo.host(static_cast<std::size_t>(index))
            .set_extra_egress_delay(delay);
      }
    };
    hooks.incast = [this, &topo](std::uint32_t flows, std::uint64_t bytes) {
      const std::uint32_t target = topo.IncastTarget();
      for (std::uint32_t f = 0; f < flows; ++f) {
        TcpStack& sender = topo.IncastSender(next_burst_sender_++);
        ++burst_started_;
        sender.StartFlow(target, bytes, [this](const FlowRecord& record) {
          collector_.Record(record);
          ++burst_completed_;
        });
      }
    };
    hooks.reestimate_ecnsharp = [this, &topo] {
      if (config_.estimator == EcnEstimator::kSketch && telemetry_ != nullptr) {
        ReestimateEcnSharpFromSketch(topo, *telemetry_, sim_.Now());
      } else {
        ReestimateEcnSharp(topo);
      }
    };
    if (recorder_ != nullptr) {
      hooks.on_action = [this](const ScenarioAction& action, Time at) {
        recorder_->OnScenarioAction(at, static_cast<std::uint8_t>(action.kind),
                                    action.target);
      };
    }
    engine_ = std::make_unique<ScenarioEngine>(sim_, config_.scenario,
                                               std::move(hooks));
    engine_->Install();
  }
}

void ExperimentSession::Run(std::function<bool()> extra_pending) {
  if (generator_ != nullptr) generator_->Start();
  // Queue monitoring and pending scenario events keep the event heap
  // non-empty, so run in slices until everything the experiment waits on
  // has drained (or the safety cap trips).
  const auto work_pending = [&] {
    if (generator_ != nullptr && !generator_->AllDone()) return true;
    if (burst_completed_ < burst_started_) return true;
    if (engine_ != nullptr &&
        engine_->actions_fired() < engine_->actions_scheduled()) {
      return true;
    }
    return extra_pending != nullptr && extra_pending();
  };
  while (work_pending() && sim_.Now() < config_.max_sim_time) {
    sim_.RunFor(Time::Milliseconds(10));
  }
}

ExperimentResult ExperimentSession::Result() {
  ExperimentResult result;
  result.overall = collector_.Overall();
  result.short_flows = collector_.ShortFlows();
  result.large_flows = collector_.LargeFlows();
  result.timeouts = collector_.total_timeouts();
  result.flows_started =
      (generator_ != nullptr ? generator_->started() : 0) + burst_started_;
  result.flows_completed =
      (generator_ != nullptr ? generator_->completed() : 0) + burst_completed_;
  result.bottleneck = topo_->TotalBottleneckStats();
  if (!monitors_.empty()) {
    result.avg_queue_packets = monitors_.AvgPackets();
    result.max_queue_packets = monitors_.MaxPackets();
  }
  result.sim_seconds = sim_.Now().ToSeconds();
  if (engine_ != nullptr) {
    result.scenario_actions = engine_->actions_fired();
    result.incast_bursts = engine_->bursts_fired();
    result.burst_flows_started = burst_started_;
    result.burst_flows_completed = burst_completed_;
    result.injected_drops = engine_->injected_drops();
    result.injected_corruptions = engine_->injected_corruptions();
    result.link_down_drops = topo_->TotalLinkDownDrops();
  }
  result.trace = recorder_;
  result.sketch = telemetry_;
  if (config_.cc_mix > 0.0) {
    result.cubic_fct = collector_.SummaryByCc(CcKind::kCubic);
    result.newreno_fct = collector_.SummaryByCc(CcKind::kNewReno);
    result.cubic_bytes = collector_.BytesByCc(CcKind::kCubic);
    result.newreno_bytes = collector_.BytesByCc(CcKind::kNewReno);
  }
  return result;
}

}  // namespace ecnsharp
