// Experiment runners assembling topology + workload + scheme + metrics.
// Used by every bench binary and by the examples.
#ifndef ECNSHARP_HARNESS_EXPERIMENT_H_
#define ECNSHARP_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "buffer/policy_spec.h"
#include "dynamics/scenario.h"
#include "harness/schemes.h"
#include "net/queue_disc.h"
#include "sim/data_rate.h"
#include "sketch/sketch_config.h"
#include "stats/fct_collector.h"
#include "stats/queue_monitor.h"
#include "topo/composed.h"
#include "topo/fat_tree.h"
#include "topo/leaf_spine.h"
#include "trace/trace_config.h"
#include "transport/tcp_config.h"
#include "workload/empirical_cdf.h"

namespace ecnsharp {

class TraceRecorder;
class SketchTelemetry;

// ---------------------------------------------------------------------------
// Dumbbell (testbed-shaped) experiments: Figs. 2, 3, 6, 7, 8, 12.
// ---------------------------------------------------------------------------

struct DumbbellExperimentConfig {
  Scheme scheme = Scheme::kEcnSharp;
  SchemeParams params;
  const EmpiricalCdf* workload = &WebSearchWorkload();
  double load = 0.5;
  std::size_t flows = 2000;
  // RTT variation k: per-sender netem extras span [0, (k-1) * base_rtt], so
  // base RTTs span [base_rtt, k * base_rtt] (§2.3's definition
  // RTTmax/RTTmin = k).
  double rtt_variation = 3.0;
  Time base_rtt = Time::FromMicroseconds(70);
  std::size_t senders = 7;
  DataRate rate = DataRate::GigabitsPerSecond(10);
  std::uint64_t seed = 1;
  TcpConfig tcp;
  // Queue occupancy sampling of the bottleneck (0 disables).
  Time queue_sample_period = Time::Zero();
  // Safety cap on simulated time.
  Time max_sim_time = Time::Seconds(120);
  // Optional mid-run network dynamics (link churn, loss injection, incast
  // bursts, RTT shifts — see dynamics/scenario.h). Empty = static network.
  ScenarioScript scenario;
  // Optional flight-recorder tracing (disabled by default; zero-cost when
  // off — see trace/trace_config.h).
  TraceConfig trace;
  // Optional sketch telemetry (bounded-memory switch state; off by
  // default, only the tracer null check when off).
  SketchConfig sketch;
  // Which measurement source feeds scenario ECN# re-estimation actions;
  // kSketch needs sketch.enabled.
  EcnEstimator estimator = EcnEstimator::kOracle;
  // Fraction of workload flows driven by CUBIC instead of the default
  // controller (seeded Bernoulli per flow; 0 keeps the pure-DCTCP runs and
  // their rng sequence byte-identical).
  double cc_mix = 0.0;
  // Optional shared-buffer policy replacing the static per-port buffers
  // (kNone keeps them).
  BufferPolicyConfig buffer_policy;
};

struct ExperimentResult {
  FctSummary overall;
  FctSummary short_flows;  // < 100 KB
  FctSummary large_flows;  // > 10 MB
  std::size_t flows_started = 0;
  std::size_t flows_completed = 0;
  std::uint64_t timeouts = 0;
  QueueDiscStats bottleneck;
  double avg_queue_packets = 0.0;
  std::uint32_t max_queue_packets = 0;
  double sim_seconds = 0.0;
  // Dynamics accounting; all zero when the config carries no scenario.
  std::uint64_t scenario_actions = 0;    // occurrences that fired
  std::uint64_t incast_bursts = 0;       // kIncastBurst occurrences
  std::size_t burst_flows_started = 0;   // flows launched by bursts
  std::size_t burst_flows_completed = 0;
  std::uint64_t injected_drops = 0;      // LinkFaultInjector losses
  std::uint64_t injected_corruptions = 0;
  std::uint64_t link_down_drops = 0;     // arrivals at downed ports
  // Flight-recorder trace; null unless config.trace.enabled. Shared so
  // copying results (sweep collection) stays cheap.
  std::shared_ptr<const TraceRecorder> trace;
  // Sketch telemetry; null unless config.sketch.enabled.
  std::shared_ptr<const SketchTelemetry> sketch;
  // Per-controller splits, filled only for mixed-CC runs (cc_mix > 0).
  FctSummary cubic_fct;
  FctSummary newreno_fct;
  std::uint64_t cubic_bytes = 0;
  std::uint64_t newreno_bytes = 0;
  // Split traffic-matrix breakdown, filled only by RunInterDc (all counts
  // stay zero for the single-fabric runners). The intra_a/intra_b splits
  // carry exactly the flows of one side's generator — the reduction-parity
  // tests compare them against standalone single-fabric runs.
  FctSummary intra_fct;        // both sides' intra-DC flows
  FctSummary intra_short_fct;  // intra flows < 100 KB
  FctSummary inter_fct;        // cross-border flows
  FctSummary inter_short_fct;  // cross-border flows < 100 KB
  FctSummary intra_a_fct;      // side A's intra flows only
  FctSummary intra_b_fct;      // side B's intra flows only
  std::uint64_t intra_timeouts = 0;
  std::uint64_t inter_timeouts = 0;
};

ExperimentResult RunDumbbell(const DumbbellExperimentConfig& config);

// ---------------------------------------------------------------------------
// Leaf-spine (large-scale) experiments: Fig. 9.
// ---------------------------------------------------------------------------

struct LeafSpineExperimentConfig {
  Scheme scheme = Scheme::kEcnSharp;
  SchemeParams params;
  const EmpiricalCdf* workload = &WebSearchWorkload();
  double load = 0.5;
  std::size_t flows = 2000;
  LeafSpineConfig topo;
  // Per-host extra delay upper bound: [80, 240] us base RTTs by default.
  Time max_extra_delay = Time::FromMicroseconds(160);
  std::uint64_t seed = 1;
  // Queue occupancy sampling across every switch egress port (0 disables).
  Time queue_sample_period = Time::Zero();
  Time max_sim_time = Time::Seconds(120);
  // Optional mid-run network dynamics; port target ids follow the
  // leaf-spine convention in topo/leaf_spine.h. Empty = static network.
  ScenarioScript scenario;
  // Optional flight-recorder tracing across every bottleneck port.
  TraceConfig trace;
  // Optional sketch telemetry across the same ports.
  SketchConfig sketch;
  // Measurement source for scenario ECN# re-estimation actions.
  EcnEstimator estimator = EcnEstimator::kOracle;
  // Fraction of workload flows driven by CUBIC (0 = pure default CC).
  double cc_mix = 0.0;
  // Optional shared-buffer policy, one pool per switch chip (kNone keeps
  // static per-port buffers). Copied into topo.buffer_policy by the runner.
  BufferPolicyConfig buffer_policy;
};

ExperimentResult RunLeafSpine(const LeafSpineExperimentConfig& config);

// ---------------------------------------------------------------------------
// Fat-tree (multi-tier, production-scale) experiments: k^3/4 hosts under
// three tiers of salted ECMP (topo/fat_tree.h).
// ---------------------------------------------------------------------------

struct FatTreeExperimentConfig {
  Scheme scheme = Scheme::kEcnSharp;
  SchemeParams params = SimulationSchemeParams();
  const EmpiricalCdf* workload = &WebSearchWorkload();
  double load = 0.5;
  std::size_t flows = 2000;
  FatTreeConfig topo;
  // Per-host extra delay upper bound: [120, 280] us base RTTs by default
  // (inter-pod minimum 120 us + up to 160 us of per-host extras).
  Time max_extra_delay = Time::FromMicroseconds(160);
  std::uint64_t seed = 1;
  // Queue occupancy sampling across every switch egress port (0 disables).
  Time queue_sample_period = Time::Zero();
  Time max_sim_time = Time::Seconds(120);
  // Optional mid-run network dynamics; port target ids follow the fat-tree
  // convention in topo/fat_tree.h. Empty = static network.
  ScenarioScript scenario;
  // Optional flight-recorder tracing across every bottleneck port.
  TraceConfig trace;
  // Optional sketch telemetry across the same ports.
  SketchConfig sketch;
  // Measurement source for scenario ECN# re-estimation actions.
  EcnEstimator estimator = EcnEstimator::kOracle;
  // Fraction of workload flows driven by CUBIC (0 = pure default CC).
  double cc_mix = 0.0;
  // Optional shared-buffer policy, one pool per switch chip (kNone keeps
  // static per-port buffers). Copied into topo.buffer_policy by the runner.
  BufferPolicyConfig buffer_policy;
};

ExperimentResult RunFatTree(const FatTreeExperimentConfig& config);

// ---------------------------------------------------------------------------
// Inter-DC composed-fabric experiments: two fabrics joined over ms-RTT
// border links (topo/composed.h) under a split traffic matrix — the extreme
// RTT-disparity regime of §2.3 pushed to WAN ratios.
// ---------------------------------------------------------------------------

struct InterDcExperimentConfig {
  Scheme scheme = Scheme::kEcnSharp;
  SchemeParams params = SimulationSchemeParams();
  // Intra-DC flows (each side's own matrix) draw from `workload`;
  // cross-border flows draw from `inter_workload` (bulkier by default, like
  // real WAN replication traffic).
  const EmpiricalCdf* workload = &WebSearchWorkload();
  const EmpiricalCdf* inter_workload = &DataMiningWorkload();
  double load = 0.5;
  std::size_t flows = 2000;
  // Fraction of `flows` crossing the border (validated in [0, 1], exit 2
  // outside). The remainder splits evenly across the two sides as intra-DC
  // traffic; the cross-border generator's load is defined against the
  // border aggregate capacity, each side's against its own fabric.
  double inter_fraction = 0.1;
  ComposedConfig topo;
  // Per-host extra delay upper bound, drawn per side from seed+side so a
  // side's rng sequence matches its standalone single-fabric run.
  Time max_extra_delay = Time::FromMicroseconds(160);
  std::uint64_t seed = 1;
  // Queue occupancy sampling across every egress port incl. border (0
  // disables).
  Time queue_sample_period = Time::Zero();
  Time max_sim_time = Time::Seconds(120);
  // Optional mid-run network dynamics; port target ids follow the composed
  // convention in topo/composed.h (-1 = first border link).
  ScenarioScript scenario;
  // Optional flight-recorder tracing across every bottleneck port.
  TraceConfig trace;
  // Optional sketch telemetry across the same ports; border ports seed the
  // base-RTT sketch with their WAN hint.
  SketchConfig sketch;
  // Measurement source for scenario ECN# re-estimation actions.
  EcnEstimator estimator = EcnEstimator::kOracle;
  // Fraction of workload flows driven by CUBIC (0 = pure default CC).
  double cc_mix = 0.0;
  // Optional shared-buffer policy, one pool per switch chip including the
  // two border gateways (kNone keeps static per-port buffers).
  BufferPolicyConfig buffer_policy;
};

ExperimentResult RunInterDc(const InterDcExperimentConfig& config);

// ---------------------------------------------------------------------------
// Incast / microscopic-queue experiments: Figs. 10, 11.
// ---------------------------------------------------------------------------

struct IncastExperimentConfig {
  Scheme scheme = Scheme::kEcnSharp;
  SchemeParams params = SimulationSchemeParams();
  std::size_t senders = 16;
  // Long-lived background flows (data-mining-style elephants) that create
  // the standing queue.
  std::size_t long_flows = 6;
  // Query burst: `query_flows` concurrent flows, uniform size in
  // [query_min_bytes, query_max_bytes], all started at burst_time.
  std::size_t query_flows = 100;
  std::uint64_t query_min_bytes = 3000;
  std::uint64_t query_max_bytes = 60000;
  Time burst_time = Time::Milliseconds(150);
  double rtt_variation = 3.0;
  Time base_rtt = Time::FromMicroseconds(80);
  DataRate rate = DataRate::GigabitsPerSecond(10);
  std::uint64_t seed = 1;
  // ns-3-style initial window of 3 segments: a 100-flow synchronized burst
  // then peaks near (but within) a 600-packet buffer under instantaneous
  // marking, matching the §5.4 queue traces and loss crossovers.
  TcpConfig tcp = SmallInitialWindowTcp();
  Time queue_sample_period = Time::FromMicroseconds(10);
  Time max_sim_time = Time::Seconds(30);
  // Optional flight-recorder tracing of the bottleneck + query senders.
  TraceConfig trace;
  // Optional sketch telemetry on the bottleneck.
  SketchConfig sketch;

  static TcpConfig SmallInitialWindowTcp() {
    TcpConfig tcp;
    tcp.init_cwnd_segments = 3;
    return tcp;
  }
};

struct IncastResult {
  FctSummary query_fct;
  std::uint64_t query_timeouts = 0;
  // Overflow drops from the burst onward (startup transients of the
  // long-lived background flows are excluded).
  std::uint64_t drops = 0;
  std::uint64_t total_drops = 0;  // including background startup
  // Queue occupancy before the burst (standing queue) and its peak.
  double standing_queue_packets = 0.0;
  std::uint32_t max_queue_packets = 0;
  std::vector<QueueMonitor::Sample> queue_trace;
  std::size_t queries_completed = 0;
  // Flight-recorder trace; null unless config.trace.enabled.
  std::shared_ptr<const TraceRecorder> trace;
  // Sketch telemetry; null unless config.sketch.enabled.
  std::shared_ptr<const SketchTelemetry> sketch;
};

IncastResult RunIncast(const IncastExperimentConfig& config);

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_EXPERIMENT_H_
