#include "harness/config_json.h"

#include "harness/schemes.h"
#include "workload/empirical_cdf.h"

namespace ecnsharp {

namespace {

Json TimeUs(Time t) { return Json::Num(t.ToMicroseconds()); }

const char* EcnModeName(EcnMode mode) {
  switch (mode) {
    case EcnMode::kDctcp:
      return "dctcp";
    case EcnMode::kClassic:
      return "classic";
    case EcnMode::kNone:
      return "none";
  }
  return "?";
}

}  // namespace

const char* WorkloadName(const EmpiricalCdf* workload) {
  if (workload == &WebSearchWorkload()) return "websearch";
  if (workload == &DataMiningWorkload()) return "datamining";
  return "custom";
}

Json ToJson(const SchemeParams& params) {
  return Json::Object()
      .Set("red_tail_threshold_bytes",
           Json::UInt(params.red_tail_threshold_bytes))
      .Set("red_avg_threshold_bytes",
           Json::UInt(params.red_avg_threshold_bytes))
      .Set("codel_target_us", TimeUs(params.codel.target))
      .Set("codel_interval_us", TimeUs(params.codel.interval))
      .Set("tcn_threshold_us", TimeUs(params.tcn_threshold))
      .Set("pie_target_us", TimeUs(params.pie.target))
      .Set("pie_update_interval_us", TimeUs(params.pie.update_interval))
      .Set("pie_alpha", Json::Num(params.pie.alpha))
      .Set("pie_beta", Json::Num(params.pie.beta))
      .Set("pie_min_backlog_bytes", Json::UInt(params.pie.min_backlog_bytes))
      .Set("ecn_sharp_ins_target_us", TimeUs(params.ecn_sharp.ins_target))
      .Set("ecn_sharp_pst_target_us", TimeUs(params.ecn_sharp.pst_target))
      .Set("ecn_sharp_pst_interval_us", TimeUs(params.ecn_sharp.pst_interval))
      .Set("buffer_bytes", Json::UInt(params.buffer_bytes));
}

Json ToJson(const TcpConfig& tcp) {
  return Json::Object()
      .Set("mss", Json::UInt(tcp.mss))
      .Set("init_cwnd_segments", Json::UInt(tcp.init_cwnd_segments))
      .Set("ecn_mode", Json::Str(EcnModeName(tcp.ecn_mode)))
      .Set("dctcp_g", Json::Num(tcp.dctcp_g))
      .Set("min_rto_us", TimeUs(tcp.min_rto))
      .Set("delayed_ack_count", Json::UInt(tcp.delayed_ack_count))
      .Set("pacing", Json::Bool(tcp.pacing));
}

Json ToJson(const BufferPolicyConfig& policy) {
  Json json = Json::Object()
      .Set("kind", Json::Str(BufferPolicyKindName(policy.kind)))
      .Set("total_bytes", Json::UInt(policy.total_bytes))
      .Set("alpha", Json::Num(policy.alpha))
      .Set("headroom_bytes", Json::UInt(policy.headroom_bytes));
  if (!policy.priority_alpha.empty()) {
    Json alphas = Json::Array();
    for (double a : policy.priority_alpha) alphas.Push(Json::Num(a));
    json.Set("priority_alpha", std::move(alphas));
  }
  return json;
}

namespace {

// Mixed-CC / shared-buffer keys are omitted at their defaults so records of
// pure-DCTCP, statically buffered runs are unchanged.
void SetCcAndBufferKeys(Json& json, double cc_mix,
                        const BufferPolicyConfig& policy) {
  if (cc_mix > 0.0) json.Set("cc_mix", Json::Num(cc_mix));
  if (policy.kind != BufferPolicyKind::kNone) {
    json.Set("buffer_policy", ToJson(policy));
  }
}

}  // namespace

Json ToJson(const ScenarioAction& action) {
  return Json::Object()
      .Set("kind", Json::Str(ScenarioActionKindName(action.kind)))
      .Set("at_us", TimeUs(action.at))
      .Set("target", Json::Int(action.target))
      .Set("delay_us", Json::Num(action.delay_us))
      .Set("delay_hi_us", Json::Num(action.delay_hi_us))
      .Set("gbps", Json::Num(action.gbps))
      .Set("drop_prob", Json::Num(action.drop_prob))
      .Set("corrupt_prob", Json::Num(action.corrupt_prob))
      .Set("flows", Json::UInt(action.flows))
      .Set("bytes", Json::UInt(action.bytes))
      .Set("drop_queued", Json::Bool(action.drop_queued))
      .Set("repeat", Json::UInt(action.repeat))
      .Set("period_us", TimeUs(action.period))
      .Set("jitter_us", TimeUs(action.jitter));
}

Json ToJson(const ScenarioScript& script) {
  Json actions = Json::Array();
  for (const ScenarioAction& action : script.actions) {
    actions.Push(ToJson(action));
  }
  return Json::Object()
      .Set("seed", Json::UInt(script.seed))
      .Set("actions", std::move(actions));
}

namespace {

bool ScenarioError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool ScenarioScriptFromJson(const Json& json, ScenarioScript* out,
                            std::string* error) {
  if (!json.IsObject()) {
    return ScenarioError(error, "scenario: top level must be an object");
  }
  ScenarioScript script;
  if (const Json* seed = json.Find("seed")) {
    if (!seed->IsNumber()) {
      return ScenarioError(error, "scenario: 'seed' must be a number");
    }
    script.seed = seed->AsUInt(1);
  }
  const Json* actions = json.Find("actions");
  if (actions == nullptr || !actions->IsArray()) {
    return ScenarioError(error, "scenario: missing 'actions' array");
  }
  for (std::size_t i = 0; i < actions->items().size(); ++i) {
    const Json& entry = actions->items()[i];
    const std::string where = "scenario action #" + std::to_string(i);
    if (!entry.IsObject()) {
      return ScenarioError(error, where + ": must be an object");
    }
    const Json* kind = entry.Find("kind");
    if (kind == nullptr || !kind->IsString()) {
      return ScenarioError(error, where + ": missing string 'kind'");
    }
    ScenarioAction action;
    if (!ParseScenarioActionKind(kind->AsString(), &action.kind)) {
      return ScenarioError(error,
                           where + ": unknown kind '" + kind->AsString() + "'");
    }
    if (const Json* v = entry.Find("at_us")) {
      if (v->AsDouble(-1.0) < 0.0) {
        return ScenarioError(error, where + ": 'at_us' must be >= 0");
      }
      action.at = Time::FromMicroseconds(v->AsDouble());
    }
    if (const Json* v = entry.Find("target")) {
      action.target = static_cast<int>(v->AsInt(-1));
    }
    if (const Json* v = entry.Find("delay_us")) {
      action.delay_us = v->AsDouble();
    }
    if (const Json* v = entry.Find("delay_hi_us")) {
      action.delay_hi_us = v->AsDouble();
    }
    if (const Json* v = entry.Find("gbps")) action.gbps = v->AsDouble();
    if (const Json* v = entry.Find("drop_prob")) {
      action.drop_prob = v->AsDouble();
    }
    if (const Json* v = entry.Find("corrupt_prob")) {
      action.corrupt_prob = v->AsDouble();
    }
    if (action.drop_prob < 0.0 || action.drop_prob > 1.0 ||
        action.corrupt_prob < 0.0 || action.corrupt_prob > 1.0 ||
        action.drop_prob + action.corrupt_prob > 1.0) {
      return ScenarioError(error, where + ": fault probabilities must lie in"
                                          " [0, 1] and sum to <= 1");
    }
    if (const Json* v = entry.Find("flows")) {
      action.flows = static_cast<std::uint32_t>(v->AsUInt());
    }
    if (const Json* v = entry.Find("bytes")) action.bytes = v->AsUInt();
    if (const Json* v = entry.Find("drop_queued")) {
      action.drop_queued = v->AsBool();
    }
    if (const Json* v = entry.Find("repeat")) {
      action.repeat = static_cast<std::uint32_t>(v->AsUInt(1));
    }
    if (const Json* v = entry.Find("period_us")) {
      action.period = Time::FromMicroseconds(v->AsDouble());
    }
    if (const Json* v = entry.Find("jitter_us")) {
      action.jitter = Time::FromMicroseconds(v->AsDouble());
    }
    if (action.repeat > 1 && !action.period.IsPositive()) {
      return ScenarioError(
          error, where + ": 'repeat' > 1 requires a positive 'period_us'");
    }
    script.actions.push_back(action);
  }
  *out = std::move(script);
  return true;
}

bool ParseScenarioScript(const std::string& text, ScenarioScript* out,
                         std::string* error) {
  Json doc;
  if (!Json::Parse(text, &doc, error)) return false;
  return ScenarioScriptFromJson(doc, out, error);
}

Json ToJson(const DumbbellExperimentConfig& config) {
  Json json = Json::Object()
      .Set("topology", Json::Str("dumbbell"))
      .Set("scheme", Json::Str(SchemeName(config.scheme)))
      .Set("workload", Json::Str(WorkloadName(config.workload)))
      .Set("load", Json::Num(config.load))
      .Set("flows", Json::UInt(config.flows))
      .Set("rtt_variation", Json::Num(config.rtt_variation))
      .Set("base_rtt_us", TimeUs(config.base_rtt))
      .Set("senders", Json::UInt(config.senders))
      .Set("rate_bps", Json::Int(config.rate.bps()))
      .Set("seed", Json::UInt(config.seed))
      .Set("queue_sample_period_us", TimeUs(config.queue_sample_period))
      .Set("max_sim_time_us", TimeUs(config.max_sim_time))
      .Set("tcp", ToJson(config.tcp))
      .Set("params", ToJson(config.params));
  // Key omitted for static-network configs so their records are unchanged.
  if (!config.scenario.empty()) {
    json.Set("scenario", ToJson(config.scenario));
  }
  SetCcAndBufferKeys(json, config.cc_mix, config.buffer_policy);
  return json;
}

Json ToJson(const LeafSpineExperimentConfig& config) {
  Json json = Json::Object()
      .Set("topology", Json::Str("leafspine"))
      .Set("scheme", Json::Str(SchemeName(config.scheme)))
      .Set("workload", Json::Str(WorkloadName(config.workload)))
      .Set("load", Json::Num(config.load))
      .Set("flows", Json::UInt(config.flows))
      .Set("spines", Json::UInt(config.topo.spines))
      .Set("leaves", Json::UInt(config.topo.leaves))
      .Set("hosts_per_leaf", Json::UInt(config.topo.hosts_per_leaf))
      .Set("rate_bps", Json::Int(config.topo.rate.bps()))
      .Set("max_extra_delay_us", TimeUs(config.max_extra_delay))
      .Set("seed", Json::UInt(config.seed))
      .Set("queue_sample_period_us", TimeUs(config.queue_sample_period))
      .Set("max_sim_time_us", TimeUs(config.max_sim_time))
      .Set("tcp", ToJson(config.topo.tcp))
      .Set("params", ToJson(config.params));
  // Key omitted for static-network configs so their records are unchanged.
  if (!config.scenario.empty()) {
    json.Set("scenario", ToJson(config.scenario));
  }
  SetCcAndBufferKeys(json, config.cc_mix, config.buffer_policy);
  return json;
}

Json ToJson(const FatTreeExperimentConfig& config) {
  Json json = Json::Object()
      .Set("topology", Json::Str("fattree"))
      .Set("scheme", Json::Str(SchemeName(config.scheme)))
      .Set("workload", Json::Str(WorkloadName(config.workload)))
      .Set("load", Json::Num(config.load))
      .Set("flows", Json::UInt(config.flows))
      .Set("k", Json::UInt(config.topo.k))
      .Set("rate_bps", Json::Int(config.topo.rate.bps()))
      .Set("host_link_delay_us", TimeUs(config.topo.host_link_delay))
      .Set("fabric_link_delay_us", TimeUs(config.topo.fabric_link_delay))
      .Set("max_extra_delay_us", TimeUs(config.max_extra_delay))
      .Set("seed", Json::UInt(config.seed))
      .Set("queue_sample_period_us", TimeUs(config.queue_sample_period))
      .Set("max_sim_time_us", TimeUs(config.max_sim_time))
      .Set("tcp", ToJson(config.topo.tcp))
      .Set("params", ToJson(config.params));
  // Key omitted for static-network configs so their records are unchanged.
  if (!config.scenario.empty()) {
    json.Set("scenario", ToJson(config.scenario));
  }
  SetCcAndBufferKeys(json, config.cc_mix, config.buffer_policy);
  return json;
}

namespace {

// One side of a composed fabric: its family plus the dimensions that pick
// its size (the shared rate/delay/tcp knobs ride along per side).
Json SideToJson(const ComposedSideConfig& side) {
  if (side.kind == ComposedSideConfig::Kind::kLeafSpine) {
    return Json::Object()
        .Set("kind", Json::Str("leafspine"))
        .Set("spines", Json::UInt(side.leaf_spine.spines))
        .Set("leaves", Json::UInt(side.leaf_spine.leaves))
        .Set("hosts_per_leaf", Json::UInt(side.leaf_spine.hosts_per_leaf))
        .Set("rate_bps", Json::Int(side.leaf_spine.rate.bps()))
        .Set("base_address", Json::UInt(side.leaf_spine.base_address))
        .Set("tcp", ToJson(side.leaf_spine.tcp));
  }
  return Json::Object()
      .Set("kind", Json::Str("fattree"))
      .Set("k", Json::UInt(side.fat_tree.k))
      .Set("rate_bps", Json::Int(side.fat_tree.rate.bps()))
      .Set("base_address", Json::UInt(side.fat_tree.base_address))
      .Set("tcp", ToJson(side.fat_tree.tcp));
}

}  // namespace

Json ToJson(const InterDcExperimentConfig& config) {
  Json json = Json::Object()
      .Set("topology", Json::Str("interdc"))
      .Set("scheme", Json::Str(SchemeName(config.scheme)))
      .Set("workload", Json::Str(WorkloadName(config.workload)))
      .Set("inter_workload", Json::Str(WorkloadName(config.inter_workload)))
      .Set("load", Json::Num(config.load))
      .Set("flows", Json::UInt(config.flows))
      .Set("inter_fraction", Json::Num(config.inter_fraction))
      .Set("side_a", SideToJson(config.topo.side_a))
      .Set("side_b", SideToJson(config.topo.side_b))
      .Set("border_links", Json::UInt(config.topo.border_links))
      .Set("border_rate_bps", Json::Int(config.topo.border_rate.bps()))
      .Set("border_rtt_us", TimeUs(config.topo.border_rtt))
      .Set("attach_delay_us", TimeUs(config.topo.attach_delay))
      .Set("inter_rtt_fraction", Json::Num(config.topo.inter_rtt_fraction))
      .Set("max_extra_delay_us", TimeUs(config.max_extra_delay))
      .Set("seed", Json::UInt(config.seed))
      .Set("queue_sample_period_us", TimeUs(config.queue_sample_period))
      .Set("max_sim_time_us", TimeUs(config.max_sim_time))
      .Set("params", ToJson(config.params));
  // Key omitted for static-network configs so their records are unchanged.
  if (!config.scenario.empty()) {
    json.Set("scenario", ToJson(config.scenario));
  }
  SetCcAndBufferKeys(json, config.cc_mix, config.buffer_policy);
  return json;
}

Json ToJson(const IncastExperimentConfig& config) {
  return Json::Object()
      .Set("topology", Json::Str("incast"))
      .Set("scheme", Json::Str(SchemeName(config.scheme)))
      .Set("senders", Json::UInt(config.senders))
      .Set("long_flows", Json::UInt(config.long_flows))
      .Set("query_flows", Json::UInt(config.query_flows))
      .Set("query_min_bytes", Json::UInt(config.query_min_bytes))
      .Set("query_max_bytes", Json::UInt(config.query_max_bytes))
      .Set("burst_time_us", TimeUs(config.burst_time))
      .Set("rtt_variation", Json::Num(config.rtt_variation))
      .Set("base_rtt_us", TimeUs(config.base_rtt))
      .Set("rate_bps", Json::Int(config.rate.bps()))
      .Set("seed", Json::UInt(config.seed))
      .Set("queue_sample_period_us", TimeUs(config.queue_sample_period))
      .Set("max_sim_time_us", TimeUs(config.max_sim_time))
      .Set("tcp", ToJson(config.tcp))
      .Set("params", ToJson(config.params));
}

Json ToJson(const FctSummary& summary) {
  return Json::Object()
      .Set("count", Json::UInt(summary.count))
      .Set("avg_us", Json::Num(summary.avg_us))
      .Set("stddev_us", Json::Num(summary.stddev_us))
      .Set("p50_us", Json::Num(summary.p50_us))
      .Set("p90_us", Json::Num(summary.p90_us))
      .Set("p99_us", Json::Num(summary.p99_us))
      .Set("max_us", Json::Num(summary.max_us));
}

Json ToJson(const QueueDiscStats& stats) {
  return Json::Object()
      .Set("enqueued", Json::UInt(stats.enqueued))
      .Set("dequeued", Json::UInt(stats.dequeued))
      .Set("dropped_overflow", Json::UInt(stats.dropped_overflow))
      .Set("dropped_aqm", Json::UInt(stats.dropped_aqm))
      .Set("purged", Json::UInt(stats.purged))
      .Set("ce_marked", Json::UInt(stats.ce_marked));
}

Json ToJson(const ExperimentResult& result) {
  Json json = Json::Object()
      .Set("overall", ToJson(result.overall))
      .Set("short_flows", ToJson(result.short_flows))
      .Set("large_flows", ToJson(result.large_flows))
      .Set("flows_started", Json::UInt(result.flows_started))
      .Set("flows_completed", Json::UInt(result.flows_completed))
      .Set("timeouts", Json::UInt(result.timeouts))
      .Set("bottleneck", ToJson(result.bottleneck))
      .Set("avg_queue_packets", Json::Num(result.avg_queue_packets))
      .Set("max_queue_packets", Json::UInt(result.max_queue_packets))
      .Set("sim_seconds", Json::Num(result.sim_seconds));
  if (result.scenario_actions != 0) {
    json.Set("scenario_actions", Json::UInt(result.scenario_actions))
        .Set("incast_bursts", Json::UInt(result.incast_bursts))
        .Set("burst_flows_started", Json::UInt(result.burst_flows_started))
        .Set("burst_flows_completed",
             Json::UInt(result.burst_flows_completed))
        .Set("injected_drops", Json::UInt(result.injected_drops))
        .Set("injected_corruptions",
             Json::UInt(result.injected_corruptions))
        .Set("link_down_drops", Json::UInt(result.link_down_drops));
  }
  // Per-controller splits exist only for mixed-CC runs.
  if (result.cubic_fct.count != 0 || result.newreno_fct.count != 0) {
    json.Set("cubic_fct", ToJson(result.cubic_fct))
        .Set("newreno_fct", ToJson(result.newreno_fct))
        .Set("cubic_bytes", Json::UInt(result.cubic_bytes))
        .Set("newreno_bytes", Json::UInt(result.newreno_bytes));
  }
  // Split traffic-matrix breakdown exists only for inter-DC runs.
  if (result.intra_fct.count != 0 || result.inter_fct.count != 0) {
    json.Set("intra_fct", ToJson(result.intra_fct))
        .Set("intra_short_fct", ToJson(result.intra_short_fct))
        .Set("inter_fct", ToJson(result.inter_fct))
        .Set("inter_short_fct", ToJson(result.inter_short_fct))
        .Set("intra_a_fct", ToJson(result.intra_a_fct))
        .Set("intra_b_fct", ToJson(result.intra_b_fct))
        .Set("intra_timeouts", Json::UInt(result.intra_timeouts))
        .Set("inter_timeouts", Json::UInt(result.inter_timeouts));
  }
  return json;
}

Json ToJson(const IncastResult& result) {
  Json trace = Json::Array();
  for (const QueueMonitor::Sample& sample : result.queue_trace) {
    trace.Push(Json::Array()
                   .Push(Json::Num(sample.at.ToMicroseconds()))
                   .Push(Json::UInt(sample.packets)));
  }
  return Json::Object()
      .Set("query_fct", ToJson(result.query_fct))
      .Set("query_timeouts", Json::UInt(result.query_timeouts))
      .Set("drops", Json::UInt(result.drops))
      .Set("total_drops", Json::UInt(result.total_drops))
      .Set("standing_queue_packets", Json::Num(result.standing_queue_packets))
      .Set("max_queue_packets", Json::UInt(result.max_queue_packets))
      .Set("queries_completed", Json::UInt(result.queries_completed))
      .Set("queue_trace", std::move(trace));
}

}  // namespace ecnsharp
