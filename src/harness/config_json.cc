#include "harness/config_json.h"

#include "harness/schemes.h"
#include "workload/empirical_cdf.h"

namespace ecnsharp {

namespace {

Json TimeUs(Time t) { return Json::Num(t.ToMicroseconds()); }

const char* EcnModeName(EcnMode mode) {
  switch (mode) {
    case EcnMode::kDctcp:
      return "dctcp";
    case EcnMode::kClassic:
      return "classic";
    case EcnMode::kNone:
      return "none";
  }
  return "?";
}

}  // namespace

const char* WorkloadName(const EmpiricalCdf* workload) {
  if (workload == &WebSearchWorkload()) return "websearch";
  if (workload == &DataMiningWorkload()) return "datamining";
  return "custom";
}

Json ToJson(const SchemeParams& params) {
  return Json::Object()
      .Set("red_tail_threshold_bytes",
           Json::UInt(params.red_tail_threshold_bytes))
      .Set("red_avg_threshold_bytes",
           Json::UInt(params.red_avg_threshold_bytes))
      .Set("codel_target_us", TimeUs(params.codel.target))
      .Set("codel_interval_us", TimeUs(params.codel.interval))
      .Set("tcn_threshold_us", TimeUs(params.tcn_threshold))
      .Set("pie_target_us", TimeUs(params.pie.target))
      .Set("pie_update_interval_us", TimeUs(params.pie.update_interval))
      .Set("pie_alpha", Json::Num(params.pie.alpha))
      .Set("pie_beta", Json::Num(params.pie.beta))
      .Set("pie_min_backlog_bytes", Json::UInt(params.pie.min_backlog_bytes))
      .Set("ecn_sharp_ins_target_us", TimeUs(params.ecn_sharp.ins_target))
      .Set("ecn_sharp_pst_target_us", TimeUs(params.ecn_sharp.pst_target))
      .Set("ecn_sharp_pst_interval_us", TimeUs(params.ecn_sharp.pst_interval))
      .Set("buffer_bytes", Json::UInt(params.buffer_bytes));
}

Json ToJson(const TcpConfig& tcp) {
  return Json::Object()
      .Set("mss", Json::UInt(tcp.mss))
      .Set("init_cwnd_segments", Json::UInt(tcp.init_cwnd_segments))
      .Set("ecn_mode", Json::Str(EcnModeName(tcp.ecn_mode)))
      .Set("dctcp_g", Json::Num(tcp.dctcp_g))
      .Set("min_rto_us", TimeUs(tcp.min_rto))
      .Set("delayed_ack_count", Json::UInt(tcp.delayed_ack_count))
      .Set("pacing", Json::Bool(tcp.pacing));
}

Json ToJson(const DumbbellExperimentConfig& config) {
  return Json::Object()
      .Set("topology", Json::Str("dumbbell"))
      .Set("scheme", Json::Str(SchemeName(config.scheme)))
      .Set("workload", Json::Str(WorkloadName(config.workload)))
      .Set("load", Json::Num(config.load))
      .Set("flows", Json::UInt(config.flows))
      .Set("rtt_variation", Json::Num(config.rtt_variation))
      .Set("base_rtt_us", TimeUs(config.base_rtt))
      .Set("senders", Json::UInt(config.senders))
      .Set("rate_bps", Json::Int(config.rate.bps()))
      .Set("seed", Json::UInt(config.seed))
      .Set("queue_sample_period_us", TimeUs(config.queue_sample_period))
      .Set("max_sim_time_us", TimeUs(config.max_sim_time))
      .Set("tcp", ToJson(config.tcp))
      .Set("params", ToJson(config.params));
}

Json ToJson(const LeafSpineExperimentConfig& config) {
  return Json::Object()
      .Set("topology", Json::Str("leafspine"))
      .Set("scheme", Json::Str(SchemeName(config.scheme)))
      .Set("workload", Json::Str(WorkloadName(config.workload)))
      .Set("load", Json::Num(config.load))
      .Set("flows", Json::UInt(config.flows))
      .Set("spines", Json::UInt(config.topo.spines))
      .Set("leaves", Json::UInt(config.topo.leaves))
      .Set("hosts_per_leaf", Json::UInt(config.topo.hosts_per_leaf))
      .Set("rate_bps", Json::Int(config.topo.rate.bps()))
      .Set("max_extra_delay_us", TimeUs(config.max_extra_delay))
      .Set("seed", Json::UInt(config.seed))
      .Set("max_sim_time_us", TimeUs(config.max_sim_time))
      .Set("tcp", ToJson(config.topo.tcp))
      .Set("params", ToJson(config.params));
}

Json ToJson(const IncastExperimentConfig& config) {
  return Json::Object()
      .Set("topology", Json::Str("incast"))
      .Set("scheme", Json::Str(SchemeName(config.scheme)))
      .Set("senders", Json::UInt(config.senders))
      .Set("long_flows", Json::UInt(config.long_flows))
      .Set("query_flows", Json::UInt(config.query_flows))
      .Set("query_min_bytes", Json::UInt(config.query_min_bytes))
      .Set("query_max_bytes", Json::UInt(config.query_max_bytes))
      .Set("burst_time_us", TimeUs(config.burst_time))
      .Set("rtt_variation", Json::Num(config.rtt_variation))
      .Set("base_rtt_us", TimeUs(config.base_rtt))
      .Set("rate_bps", Json::Int(config.rate.bps()))
      .Set("seed", Json::UInt(config.seed))
      .Set("queue_sample_period_us", TimeUs(config.queue_sample_period))
      .Set("max_sim_time_us", TimeUs(config.max_sim_time))
      .Set("tcp", ToJson(config.tcp))
      .Set("params", ToJson(config.params));
}

Json ToJson(const FctSummary& summary) {
  return Json::Object()
      .Set("count", Json::UInt(summary.count))
      .Set("avg_us", Json::Num(summary.avg_us))
      .Set("p50_us", Json::Num(summary.p50_us))
      .Set("p99_us", Json::Num(summary.p99_us))
      .Set("max_us", Json::Num(summary.max_us));
}

Json ToJson(const QueueDiscStats& stats) {
  return Json::Object()
      .Set("enqueued", Json::UInt(stats.enqueued))
      .Set("dequeued", Json::UInt(stats.dequeued))
      .Set("dropped_overflow", Json::UInt(stats.dropped_overflow))
      .Set("dropped_aqm", Json::UInt(stats.dropped_aqm))
      .Set("ce_marked", Json::UInt(stats.ce_marked));
}

Json ToJson(const ExperimentResult& result) {
  return Json::Object()
      .Set("overall", ToJson(result.overall))
      .Set("short_flows", ToJson(result.short_flows))
      .Set("large_flows", ToJson(result.large_flows))
      .Set("flows_started", Json::UInt(result.flows_started))
      .Set("flows_completed", Json::UInt(result.flows_completed))
      .Set("timeouts", Json::UInt(result.timeouts))
      .Set("bottleneck", ToJson(result.bottleneck))
      .Set("avg_queue_packets", Json::Num(result.avg_queue_packets))
      .Set("max_queue_packets", Json::UInt(result.max_queue_packets))
      .Set("sim_seconds", Json::Num(result.sim_seconds));
}

Json ToJson(const IncastResult& result) {
  Json trace = Json::Array();
  for (const QueueMonitor::Sample& sample : result.queue_trace) {
    trace.Push(Json::Array()
                   .Push(Json::Num(sample.at.ToMicroseconds()))
                   .Push(Json::UInt(sample.packets)));
  }
  return Json::Object()
      .Set("query_fct", ToJson(result.query_fct))
      .Set("query_timeouts", Json::UInt(result.query_timeouts))
      .Set("drops", Json::UInt(result.drops))
      .Set("total_drops", Json::UInt(result.total_drops))
      .Set("standing_queue_packets", Json::Num(result.standing_queue_packets))
      .Set("max_queue_packets", Json::UInt(result.max_queue_packets))
      .Set("queries_completed", Json::UInt(result.queries_completed))
      .Set("queue_trace", std::move(trace));
}

}  // namespace ecnsharp
