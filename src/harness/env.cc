#include "harness/env.h"

#include <cstdlib>

namespace ecnsharp {

std::int64_t EnvInt(const std::string& name, std::int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

double EnvDouble(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtod(value, nullptr);
}

bool EnvFlag(const std::string& name) { return EnvInt(name, 0) != 0; }

std::size_t BenchFlowCount(std::size_t fallback, std::size_t full_scale) {
  const std::size_t base = EnvFlag("ECNSHARP_FULL") ? full_scale : fallback;
  return static_cast<std::size_t>(
      EnvInt("ECNSHARP_FLOWS", static_cast<std::int64_t>(base)));
}

std::uint64_t BenchSeed() {
  return static_cast<std::uint64_t>(EnvInt("ECNSHARP_SEED", 1));
}

}  // namespace ecnsharp
