#include "harness/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace ecnsharp {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  // Shortest representation that round-trips: deterministic and compact.
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void AppendIndent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

Json Json::Str(std::string value) {
  Json j;
  j.kind_ = Kind::kStr;
  j.str_ = std::move(value);
  return j;
}

Json Json::Num(double value) {
  Json j;
  j.kind_ = Kind::kNum;
  j.num_ = value;
  return j;
}

Json Json::Int(std::int64_t value) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = value;
  return j;
}

Json Json::UInt(std::uint64_t value) {
  Json j;
  j.kind_ = Kind::kUInt;
  j.uint_ = value;
  return j;
}

Json Json::Bool(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::Set(std::string key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [existing, member] : members_) {
    if (existing == key) {
      member = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kUInt:
      out += std::to_string(uint_);
      break;
    case Kind::kNum:
      AppendDouble(out, num_);
      break;
    case Kind::kStr:
      AppendEscaped(out, str_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        AppendIndent(out, depth + 1);
        items_[i].DumpTo(out, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += '\n';
      }
      AppendIndent(out, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        AppendIndent(out, depth + 1);
        AppendEscaped(out, members_[i].first);
        out += ": ";
        members_[i].second.DumpTo(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      AppendIndent(out, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0);
  out += '\n';
  return out;
}

}  // namespace ecnsharp
