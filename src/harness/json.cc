#include "harness/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace ecnsharp {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  // Shortest representation that round-trips: deterministic and compact.
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void AppendIndent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

Json Json::Str(std::string value) {
  Json j;
  j.kind_ = Kind::kStr;
  j.str_ = std::move(value);
  return j;
}

Json Json::Num(double value) {
  Json j;
  j.kind_ = Kind::kNum;
  j.num_ = value;
  return j;
}

Json Json::Int(std::int64_t value) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = value;
  return j;
}

Json Json::UInt(std::uint64_t value) {
  Json j;
  j.kind_ = Kind::kUInt;
  j.uint_ = value;
  return j;
}

Json Json::Bool(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::Set(std::string key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [existing, member] : members_) {
    if (existing == key) {
      member = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kUInt:
      out += std::to_string(uint_);
      break;
    case Kind::kNum:
      AppendDouble(out, num_);
      break;
    case Kind::kStr:
      AppendEscaped(out, str_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        AppendIndent(out, depth + 1);
        items_[i].DumpTo(out, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += '\n';
      }
      AppendIndent(out, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        AppendIndent(out, depth + 1);
        AppendEscaped(out, members_[i].first);
        out += ": ";
        members_[i].second.DumpTo(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      AppendIndent(out, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0);
  out += '\n';
  return out;
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [existing, member] : members_) {
    if (existing == key) return &member;
  }
  return nullptr;
}

double Json::AsDouble(double fallback) const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUInt:
      return static_cast<double>(uint_);
    case Kind::kNum:
      return num_;
    default:
      return fallback;
  }
}

std::int64_t Json::AsInt(std::int64_t fallback) const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUInt:
      return static_cast<std::int64_t>(uint_);
    case Kind::kNum:
      return static_cast<std::int64_t>(num_);
    default:
      return fallback;
  }
}

std::uint64_t Json::AsUInt(std::uint64_t fallback) const {
  switch (kind_) {
    case Kind::kInt:
      return int_ < 0 ? fallback : static_cast<std::uint64_t>(int_);
    case Kind::kUInt:
      return uint_;
    case Kind::kNum:
      return num_ < 0.0 ? fallback : static_cast<std::uint64_t>(num_);
    default:
      return fallback;
  }
}

bool Json::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

namespace {

// Strict recursive-descent JSON reader over [pos, text.size()).
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(Json* out) {
    SkipWs();
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = std::string(message) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word, Json value, Json* out) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail("invalid literal");
      }
    }
    *out = std::move(value);
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    std::string result;
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        result += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          result += '"';
          break;
        case '\\':
          result += '\\';
          break;
        case '/':
          result += '/';
          break;
        case 'b':
          result += '\b';
          break;
        case 'f':
          result += '\f';
          break;
        case 'n':
          result += '\n';
          break;
        case 'r':
          result += '\r';
          break;
        case 't':
          result += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not combined —
          // scenario scripts are ASCII in practice).
          if (code < 0x80) {
            result += static_cast<char>(code);
          } else if (code < 0x800) {
            result += static_cast<char>(0xC0 | (code >> 6));
            result += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            result += static_cast<char>(0xE0 | (code >> 12));
            result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            result += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    *out = std::move(result);
    return true;
  }

  bool ParseNumber(Json* out) {
    const std::size_t start = pos_;
    bool is_integer = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    // Strict JSON: the integer part is '0' or starts with 1-9.
    if (pos_ == int_start) return Fail("invalid number");
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      return Fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (is_integer) {
      std::int64_t i = 0;
      auto r = std::from_chars(first, last, i);
      if (r.ec == std::errc() && r.ptr == last) {
        *out = Json::Int(i);
        return true;
      }
      std::uint64_t u = 0;
      r = std::from_chars(first, last, u);
      if (r.ec == std::errc() && r.ptr == last) {
        *out = Json::UInt(u);
        return true;
      }
    }
    double d = 0.0;
    const auto r = std::from_chars(first, last, d);
    if (r.ec != std::errc() || r.ptr != last || first == last) {
      return Fail("invalid number");
    }
    *out = Json::Num(d);
    return true;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 't':
        return Literal("true", Json::Bool(true), out);
      case 'f':
        return Literal("false", Json::Bool(false), out);
      case 'n':
        return Literal("null", Json(), out);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Json::Str(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        Json array = Json::Array();
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          *out = std::move(array);
          return true;
        }
        while (true) {
          Json element;
          SkipWs();
          if (!ParseValue(&element, depth + 1)) return false;
          array.Push(std::move(element));
          SkipWs();
          if (pos_ >= text_.size()) return Fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            *out = std::move(array);
            return true;
          }
          return Fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        Json object = Json::Object();
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          *out = std::move(object);
          return true;
        }
        while (true) {
          SkipWs();
          if (pos_ >= text_.size() || text_[pos_] != '"') {
            return Fail("expected object key");
          }
          std::string key;
          if (!ParseString(&key)) return false;
          SkipWs();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return Fail("expected ':'");
          }
          ++pos_;
          SkipWs();
          Json member;
          if (!ParseValue(&member, depth + 1)) return false;
          object.Set(std::move(key), std::move(member));
          SkipWs();
          if (pos_ >= text_.size()) return Fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            *out = std::move(object);
            return true;
          }
          return Fail("expected ',' or '}'");
        }
      }
      default:
        if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) {
          return ParseNumber(out);
        }
        return Fail("unexpected character");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::Parse(const std::string& text, Json* out, std::string* error) {
  Parser parser(text, error);
  Json result;
  if (!parser.ParseDocument(&result)) return false;
  *out = std::move(result);
  return true;
}

}  // namespace ecnsharp
