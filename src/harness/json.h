// Minimal JSON document type for structured result export and for reading
// scenario scripts (--scenario).
//
// Object keys keep insertion order and numbers render with shortest-
// round-trip formatting, which makes dumps byte-stable across runs — a
// property runner_test relies on to check that parallel sweeps are
// deterministic. Parse() is a strict recursive-descent reader for the same
// value model (no comments, no trailing commas).
#ifndef ECNSHARP_HARNESS_JSON_H_
#define ECNSHARP_HARNESS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ecnsharp {

class Json {
 public:
  // Scalars. The default-constructed value is null.
  Json() = default;
  static Json Str(std::string value);
  static Json Num(double value);
  static Json Int(std::int64_t value);
  static Json UInt(std::uint64_t value);
  static Json Bool(bool value);

  // Containers.
  static Json Object();
  static Json Array();

  // Adds/overwrites `key` in an object (first use turns a null into an
  // object). Returns *this for chaining.
  Json& Set(std::string key, Json value);
  // Appends to an array (first use turns a null into an array).
  Json& Push(Json value);

  // Serializes with 2-space indentation and a trailing newline at the top
  // level, suitable for writing straight to a .json file.
  std::string Dump() const;

  // Parses `text` into `*out`. On failure returns false and, if `error` is
  // non-null, stores a one-line message with the byte offset. Integers
  // without fraction/exponent parse as kInt (kUInt when too large for
  // int64), everything else numeric as kNum.
  static bool Parse(const std::string& text, Json* out,
                    std::string* error = nullptr);

  // --- Inspection (for parsed documents) ---------------------------------
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsBool() const { return kind_ == Kind::kBool; }
  bool IsNumber() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUInt || kind_ == Kind::kNum;
  }
  bool IsString() const { return kind_ == Kind::kStr; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsObject() const { return kind_ == Kind::kObject; }

  // Object member lookup; null when this is not an object or the key is
  // absent.
  const Json* Find(const std::string& key) const;

  // Numeric coercions across kInt/kUInt/kNum; `fallback` for other kinds.
  double AsDouble(double fallback = 0.0) const;
  std::int64_t AsInt(std::int64_t fallback = 0) const;
  std::uint64_t AsUInt(std::uint64_t fallback = 0) const;
  bool AsBool(bool fallback = false) const;
  // Empty string when this is not a string.
  const std::string& AsString() const { return str_; }

  // Array elements / object members (empty for other kinds).
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

 private:
  enum class Kind { kNull, kBool, kInt, kUInt, kNum, kStr, kArray, kObject };

  void DumpTo(std::string& out, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_JSON_H_
