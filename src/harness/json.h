// Minimal JSON document builder for structured result export.
//
// The library only ever *writes* JSON (sweep results, configs), so this is a
// build-and-dump value type, not a parser. Object keys keep insertion order
// and numbers render with shortest-round-trip formatting, which makes dumps
// byte-stable across runs — a property runner_test relies on to check that
// parallel sweeps are deterministic.
#ifndef ECNSHARP_HARNESS_JSON_H_
#define ECNSHARP_HARNESS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ecnsharp {

class Json {
 public:
  // Scalars. The default-constructed value is null.
  Json() = default;
  static Json Str(std::string value);
  static Json Num(double value);
  static Json Int(std::int64_t value);
  static Json UInt(std::uint64_t value);
  static Json Bool(bool value);

  // Containers.
  static Json Object();
  static Json Array();

  // Adds/overwrites `key` in an object (first use turns a null into an
  // object). Returns *this for chaining.
  Json& Set(std::string key, Json value);
  // Appends to an array (first use turns a null into an array).
  Json& Push(Json value);

  // Serializes with 2-space indentation and a trailing newline at the top
  // level, suitable for writing straight to a .json file.
  std::string Dump() const;

 private:
  enum class Kind { kNull, kBool, kInt, kUInt, kNum, kStr, kArray, kObject };

  void DumpTo(std::string& out, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_JSON_H_
