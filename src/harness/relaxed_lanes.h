// Relaxed-lanes fat-tree runner: the opt-in multi-threaded execution mode
// behind `--relaxed-lanes=N`.
//
// Builds the fat-tree in its locality-sharded form (pod p on lane
// (1 + p) % N, core tier on lane 0 — topo/fat_tree.h) and drives all lanes
// through LaneSet's conservative aligned-window scheme with the round
// window equal to the fabric link delay. The mode is "relaxed" in a precise
// sense: every run with the same config and lane count is bit-identical to
// itself (deterministic mailbox absorption), but same-timestamp event ties
// may resolve differently than the single-lane runner, so results are not
// byte-comparable with RunFatTree. All golden/parity suites therefore run
// lanes-off; this runner exists for wall-clock on big fabrics.
//
// The rng discipline mirrors ExperimentSession exactly (per-host RTT extras
// drawn from the session rng in host order, then a forked stream draws the
// arrival process in TrafficGenerator order), so the *offered load* is
// identical to the single-lane run — only event interleaving differs.
//
// Restrictions (all violations exit 2 via FatalConfigError): needs >= 2
// lanes, and scenario scripts, tracing, sketch telemetry, and queue
// sampling are rejected — those observers assume a single event clock.
#ifndef ECNSHARP_HARNESS_RELAXED_LANES_H_
#define ECNSHARP_HARNESS_RELAXED_LANES_H_

#include <cstddef>

#include "harness/experiment.h"

namespace ecnsharp {

ExperimentResult RunFatTreeRelaxed(const FatTreeExperimentConfig& config,
                                   std::size_t lane_count);

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_RELAXED_LANES_H_
