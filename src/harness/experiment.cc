// The three experiment runners, each a thin configuration of an
// ExperimentSession over a Topology. Everything they share — generator
// wiring, monitors, scenario hooks, the run loop, result filling — lives in
// harness/session.cc.
#include "harness/experiment.h"

#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "harness/session.h"
#include "sim/logging.h"
#include "topo/composed.h"
#include "topo/dumbbell.h"
#include "topo/rtt_variation.h"

namespace ecnsharp {

ExperimentResult RunDumbbell(const DumbbellExperimentConfig& config) {
  ExperimentSessionConfig session_config;
  session_config.workload = config.workload;
  session_config.load = config.load;
  session_config.flows = config.flows;
  session_config.seed = config.seed;
  // Per-sender netem extras spanning the requested RTT variation.
  session_config.rtt_assignment =
      ExperimentSessionConfig::RttAssignment::kQuantiles;
  session_config.max_rtt_extra = config.base_rtt * (config.rtt_variation - 1.0);
  session_config.rtt_profile = RttProfile::kTestbed;
  session_config.queue_sample_period = config.queue_sample_period;
  session_config.max_sim_time = config.max_sim_time;
  session_config.scenario = config.scenario;
  session_config.trace = config.trace;
  session_config.sketch = config.sketch;
  session_config.estimator = config.estimator;
  session_config.cc_mix = config.cc_mix;
  ExperimentSession session(std::move(session_config));

  DumbbellConfig topo_config;
  topo_config.senders = config.senders;
  topo_config.rate = config.rate;
  topo_config.base_rtt = config.base_rtt;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.tcp = config.tcp;
  topo_config.buffer_policy = config.buffer_policy;
  Dumbbell topo(session.sim(), topo_config, [&config](BufferPolicy* pool) {
    return MakeFifoDisc(config.scheme, config.params, pool);
  });

  session.Bind(topo);
  session.Run();
  return session.Result();
}

ExperimentResult RunLeafSpine(const LeafSpineExperimentConfig& config) {
  ExperimentSessionConfig session_config;
  session_config.workload = config.workload;
  session_config.load = config.load;
  session_config.flows = config.flows;
  session_config.seed = config.seed;
  // §5.3's per-host base-RTT distribution: one sampled extra per host.
  session_config.rtt_assignment =
      ExperimentSessionConfig::RttAssignment::kPerHostSample;
  session_config.max_rtt_extra = config.max_extra_delay;
  session_config.rtt_profile = RttProfile::kLeafSpine;
  session_config.queue_sample_period = config.queue_sample_period;
  session_config.max_sim_time = config.max_sim_time;
  session_config.scenario = config.scenario;
  session_config.trace = config.trace;
  session_config.sketch = config.sketch;
  session_config.estimator = config.estimator;
  session_config.cc_mix = config.cc_mix;
  ExperimentSession session(std::move(session_config));

  LeafSpineConfig topo_config = config.topo;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.buffer_policy = config.buffer_policy;
  LeafSpine topo(session.sim(), topo_config, [&config](BufferPolicy* pool) {
    return MakeFifoDisc(config.scheme, config.params, pool);
  });

  session.Bind(topo);
  session.Run();
  return session.Result();
}

ExperimentResult RunFatTree(const FatTreeExperimentConfig& config) {
  ExperimentSessionConfig session_config;
  session_config.workload = config.workload;
  session_config.load = config.load;
  session_config.flows = config.flows;
  session_config.seed = config.seed;
  // Per-host base-RTT distribution as in the large-scale simulations: one
  // sampled extra per host, drawn before the generator forks its stream.
  session_config.rtt_assignment =
      ExperimentSessionConfig::RttAssignment::kPerHostSample;
  session_config.max_rtt_extra = config.max_extra_delay;
  session_config.rtt_profile = RttProfile::kLeafSpine;
  session_config.queue_sample_period = config.queue_sample_period;
  session_config.max_sim_time = config.max_sim_time;
  session_config.scenario = config.scenario;
  session_config.trace = config.trace;
  session_config.sketch = config.sketch;
  session_config.estimator = config.estimator;
  session_config.cc_mix = config.cc_mix;
  ExperimentSession session(std::move(session_config));

  FatTreeConfig topo_config = config.topo;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.buffer_policy = config.buffer_policy;
  FatTree topo(session.sim(), topo_config, [&config](BufferPolicy* pool) {
    return MakeFifoDisc(config.scheme, config.params, pool);
  });

  session.Bind(topo);
  session.Run();
  return session.Result();
}

ExperimentResult RunInterDc(const InterDcExperimentConfig& config) {
  if (config.inter_fraction < 0.0 || config.inter_fraction > 1.0 ||
      !std::isfinite(config.inter_fraction)) {
    FatalConfigError("interdc inter_fraction out of range: got " +
                     std::to_string(config.inter_fraction) +
                     "; valid range [0, 1]");
  }

  ExperimentSessionConfig session_config;
  // No session workload and no session RTT assignment: the split traffic
  // matrix and the per-side extras are wired by hand below, one rng stream
  // per side, so each side replays its standalone single-fabric run exactly
  // (the reduction-parity contract of topo/composed.h).
  session_config.seed = config.seed;
  session_config.rtt_assignment = ExperimentSessionConfig::RttAssignment::kNone;
  session_config.queue_sample_period = config.queue_sample_period;
  session_config.max_sim_time = config.max_sim_time;
  session_config.scenario = config.scenario;
  session_config.trace = config.trace;
  session_config.sketch = config.sketch;
  session_config.estimator = config.estimator;
  session_config.cc_mix = config.cc_mix;
  ExperimentSession session(std::move(session_config));
  Simulator& sim = session.sim();

  ComposedConfig topo_config = config.topo;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.buffer_policy = config.buffer_policy;
  for (ComposedSideConfig* side : {&topo_config.side_a, &topo_config.side_b}) {
    side->leaf_spine.buffer_bytes = config.params.buffer_bytes;
    side->leaf_spine.buffer_policy = config.buffer_policy;
    side->fat_tree.buffer_bytes = config.params.buffer_bytes;
    side->fat_tree.buffer_policy = config.buffer_policy;
  }
  ComposedTopology topo(sim, topo_config, [&config](BufferPolicy* pool) {
    return MakeFifoDisc(config.scheme, config.params, pool);
  });

  session.Bind(topo);

  // Flow split: round(f * flows) cross the border, the rest alternate-split
  // across the sides (side A gets the odd one).
  const auto inter_flows = static_cast<std::size_t>(
      std::llround(config.inter_fraction * static_cast<double>(config.flows)));
  const std::size_t intra_flows = config.flows - inter_flows;
  const std::size_t side_flows[2] = {(intra_flows + 1) / 2, intra_flows / 2};

  FctCollector& collector = session.collector();
  FctCollector intra_collector;
  FctCollector side_collectors[2];
  FctCollector inter_collector;
  std::unique_ptr<TrafficGenerator> generators[3];

  // Per-side extras and intra generator, each from Rng(seed + side): same
  // draw order as ExperimentSession::Bind's kPerHostSample-then-Fork, so a
  // zero-border composed run reproduces the standalone runs byte-for-byte.
  for (std::size_t s = 0; s < 2; ++s) {
    Rng rng(config.seed + s);
    for (std::size_t i = 0; i < topo.side_host_count(s); ++i) {
      topo.side(s).host(i).set_extra_egress_delay(SampleRttExtra(
          rng, config.max_extra_delay, RttProfile::kLeafSpine));
    }
    if (side_flows[s] == 0) continue;
    TrafficConfig traffic;
    traffic.load = config.load;
    traffic.reference_capacity = topo.side(s).ReferenceCapacity();
    traffic.flow_count = side_flows[s];
    traffic.cubic_fraction = config.cc_mix;
    generators[s] = std::make_unique<TrafficGenerator>(
        sim, *config.workload, traffic,
        [&topo, s](Rng& r) { return topo.SampleIntraPair(s, r); },
        [&collector, &intra_collector, &side_collectors,
         s](const FlowRecord& record) {
          collector.Record(record);
          intra_collector.Record(record);
          side_collectors[s].Record(record);
        },
        rng.Fork());
  }

  // Cross-border generator: its load targets the border aggregate (the
  // inter-DC bottleneck), not the combined fabric capacity — f * L of the
  // fabric bisection would oversaturate an oversubscribed border and never
  // drain.
  if (inter_flows > 0) {
    Rng rng(config.seed + 2);
    TrafficConfig traffic;
    traffic.load = config.load;
    traffic.reference_capacity = DataRate::BitsPerSecond(
        config.topo.border_rate.bps() *
        static_cast<std::int64_t>(config.topo.border_links));
    traffic.flow_count = inter_flows;
    traffic.cubic_fraction = config.cc_mix;
    generators[2] = std::make_unique<TrafficGenerator>(
        sim, *config.inter_workload, traffic,
        [&topo](Rng& r) { return topo.SampleInterPair(r); },
        [&collector, &inter_collector](const FlowRecord& record) {
          collector.Record(record);
          inter_collector.Record(record);
        },
        rng.Fork());
  }

  for (auto& generator : generators) {
    if (generator != nullptr) generator->Start();
  }
  session.Run([&generators] {
    for (const auto& generator : generators) {
      if (generator != nullptr && !generator->AllDone()) return true;
    }
    return false;
  });

  ExperimentResult result = session.Result();
  for (const auto& generator : generators) {
    if (generator == nullptr) continue;
    result.flows_started += generator->started();
    result.flows_completed += generator->completed();
  }
  result.intra_fct = intra_collector.Overall();
  result.intra_short_fct = intra_collector.ShortFlows();
  result.inter_fct = inter_collector.Overall();
  result.inter_short_fct = inter_collector.ShortFlows();
  result.intra_a_fct = side_collectors[0].Overall();
  result.intra_b_fct = side_collectors[1].Overall();
  result.intra_timeouts = intra_collector.total_timeouts();
  result.inter_timeouts = inter_collector.total_timeouts();
  return result;
}

IncastResult RunIncast(const IncastExperimentConfig& config) {
  ExperimentSessionConfig session_config;
  session_config.seed = config.seed;
  // §5.4 setup mirrors the large-scale simulations' RTT distribution.
  session_config.rtt_assignment =
      ExperimentSessionConfig::RttAssignment::kQuantiles;
  session_config.max_rtt_extra = config.base_rtt * (config.rtt_variation - 1.0);
  session_config.rtt_profile = RttProfile::kLeafSpine;
  // Microscopic queue trace around the burst only (Fig. 10's window).
  session_config.queue_sample_period = config.queue_sample_period;
  session_config.monitor_from = config.burst_time - Time::Milliseconds(5);
  session_config.monitor_until = config.burst_time + Time::Milliseconds(20);
  session_config.max_sim_time = config.max_sim_time;
  session_config.trace = config.trace;
  session_config.sketch = config.sketch;
  ExperimentSession session(std::move(session_config));
  Simulator& sim = session.sim();

  DumbbellConfig topo_config;
  topo_config.senders = config.senders;
  topo_config.rate = config.rate;
  topo_config.base_rtt = config.base_rtt;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.tcp = config.tcp;
  Dumbbell topo(sim, topo_config, MakeFifoDisc(config.scheme, config.params));

  session.Bind(topo);
  const std::uint32_t receiver = topo.receiver_address();

  // Long-lived elephants from the smallest-RTT senders: with a tail-RTT
  // marking threshold these are exactly the flows that build the standing
  // queue the paper's Fig. 10 shows.
  constexpr std::uint64_t kElephantBytes = 1ull << 40;  // never finishes
  for (std::size_t i = 0; i < config.long_flows; ++i) {
    const std::size_t sender = i % config.senders;
    sim.ScheduleAt(Time::Milliseconds(1) * static_cast<std::int64_t>(i + 1),
                   [&topo, sender, receiver] {
                     topo.sender_stack(sender).StartFlow(
                         receiver, kElephantBytes, nullptr);
                   });
  }

  // Query burst at burst_time; completions land in the session collector.
  FctCollector& query_collector = session.collector();
  std::size_t queries_completed = 0;
  Rng rng(config.seed);
  for (std::size_t q = 0; q < config.query_flows; ++q) {
    const std::size_t sender = q % config.senders;
    const std::uint64_t size =
        config.query_min_bytes +
        rng.UniformInt(config.query_max_bytes - config.query_min_bytes + 1);
    sim.ScheduleAt(config.burst_time, [&topo, &query_collector,
                                       &queries_completed, sender, receiver,
                                       size] {
      topo.sender_stack(sender).StartFlow(
          receiver, size,
          [&query_collector, &queries_completed](const FlowRecord& record) {
            query_collector.Record(record);
            ++queries_completed;
          });
    });
  }

  // Snapshot overflow drops just before the burst so the result separates
  // burst-induced losses from background startup transients.
  std::uint64_t drops_before_burst = 0;
  sim.ScheduleAt(config.burst_time - Time::Nanoseconds(1),
                 [&topo, &drops_before_burst] {
                   drops_before_burst =
                       topo.TotalBottleneckStats().dropped_overflow;
                 });

  // Run at least through the queue-trace window, then until the queries
  // finish (or the safety cap).
  const Time trace_end = config.burst_time + Time::Milliseconds(20);
  session.Run([&] {
    return sim.Now() < trace_end || queries_completed < config.query_flows;
  });

  IncastResult result;
  result.query_fct = query_collector.Overall();
  result.query_timeouts = query_collector.total_timeouts();
  result.total_drops = topo.TotalBottleneckStats().dropped_overflow;
  result.drops = result.total_drops - drops_before_burst;
  QueueMonitorSet& monitors = session.monitors();
  if (!monitors.empty()) {
    result.max_queue_packets = monitors.MaxPackets();
    // Standing queue: the 5 ms window immediately before the burst.
    result.standing_queue_packets = monitors.AvgPackets(
        config.burst_time - Time::Milliseconds(5), config.burst_time);
    result.queue_trace = monitors.monitor(0).samples();
  }
  result.queries_completed = queries_completed;
  result.trace = session.trace();
  result.sketch = session.sketch();
  return result;
}

}  // namespace ecnsharp
