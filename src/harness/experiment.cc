// The three experiment runners, each a thin configuration of an
// ExperimentSession over a Topology. Everything they share — generator
// wiring, monitors, scenario hooks, the run loop, result filling — lives in
// harness/session.cc.
#include "harness/experiment.h"

#include <memory>
#include <utility>

#include "harness/session.h"
#include "topo/dumbbell.h"
#include "topo/rtt_variation.h"

namespace ecnsharp {

ExperimentResult RunDumbbell(const DumbbellExperimentConfig& config) {
  ExperimentSessionConfig session_config;
  session_config.workload = config.workload;
  session_config.load = config.load;
  session_config.flows = config.flows;
  session_config.seed = config.seed;
  // Per-sender netem extras spanning the requested RTT variation.
  session_config.rtt_assignment =
      ExperimentSessionConfig::RttAssignment::kQuantiles;
  session_config.max_rtt_extra = config.base_rtt * (config.rtt_variation - 1.0);
  session_config.rtt_profile = RttProfile::kTestbed;
  session_config.queue_sample_period = config.queue_sample_period;
  session_config.max_sim_time = config.max_sim_time;
  session_config.scenario = config.scenario;
  session_config.trace = config.trace;
  session_config.sketch = config.sketch;
  session_config.estimator = config.estimator;
  session_config.cc_mix = config.cc_mix;
  ExperimentSession session(std::move(session_config));

  DumbbellConfig topo_config;
  topo_config.senders = config.senders;
  topo_config.rate = config.rate;
  topo_config.base_rtt = config.base_rtt;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.tcp = config.tcp;
  topo_config.buffer_policy = config.buffer_policy;
  Dumbbell topo(session.sim(), topo_config, [&config](BufferPolicy* pool) {
    return MakeFifoDisc(config.scheme, config.params, pool);
  });

  session.Bind(topo);
  session.Run();
  return session.Result();
}

ExperimentResult RunLeafSpine(const LeafSpineExperimentConfig& config) {
  ExperimentSessionConfig session_config;
  session_config.workload = config.workload;
  session_config.load = config.load;
  session_config.flows = config.flows;
  session_config.seed = config.seed;
  // §5.3's per-host base-RTT distribution: one sampled extra per host.
  session_config.rtt_assignment =
      ExperimentSessionConfig::RttAssignment::kPerHostSample;
  session_config.max_rtt_extra = config.max_extra_delay;
  session_config.rtt_profile = RttProfile::kLeafSpine;
  session_config.queue_sample_period = config.queue_sample_period;
  session_config.max_sim_time = config.max_sim_time;
  session_config.scenario = config.scenario;
  session_config.trace = config.trace;
  session_config.sketch = config.sketch;
  session_config.estimator = config.estimator;
  session_config.cc_mix = config.cc_mix;
  ExperimentSession session(std::move(session_config));

  LeafSpineConfig topo_config = config.topo;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.buffer_policy = config.buffer_policy;
  LeafSpine topo(session.sim(), topo_config, [&config](BufferPolicy* pool) {
    return MakeFifoDisc(config.scheme, config.params, pool);
  });

  session.Bind(topo);
  session.Run();
  return session.Result();
}

ExperimentResult RunFatTree(const FatTreeExperimentConfig& config) {
  ExperimentSessionConfig session_config;
  session_config.workload = config.workload;
  session_config.load = config.load;
  session_config.flows = config.flows;
  session_config.seed = config.seed;
  // Per-host base-RTT distribution as in the large-scale simulations: one
  // sampled extra per host, drawn before the generator forks its stream.
  session_config.rtt_assignment =
      ExperimentSessionConfig::RttAssignment::kPerHostSample;
  session_config.max_rtt_extra = config.max_extra_delay;
  session_config.rtt_profile = RttProfile::kLeafSpine;
  session_config.queue_sample_period = config.queue_sample_period;
  session_config.max_sim_time = config.max_sim_time;
  session_config.scenario = config.scenario;
  session_config.trace = config.trace;
  session_config.sketch = config.sketch;
  session_config.estimator = config.estimator;
  session_config.cc_mix = config.cc_mix;
  ExperimentSession session(std::move(session_config));

  FatTreeConfig topo_config = config.topo;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.buffer_policy = config.buffer_policy;
  FatTree topo(session.sim(), topo_config, [&config](BufferPolicy* pool) {
    return MakeFifoDisc(config.scheme, config.params, pool);
  });

  session.Bind(topo);
  session.Run();
  return session.Result();
}

IncastResult RunIncast(const IncastExperimentConfig& config) {
  ExperimentSessionConfig session_config;
  session_config.seed = config.seed;
  // §5.4 setup mirrors the large-scale simulations' RTT distribution.
  session_config.rtt_assignment =
      ExperimentSessionConfig::RttAssignment::kQuantiles;
  session_config.max_rtt_extra = config.base_rtt * (config.rtt_variation - 1.0);
  session_config.rtt_profile = RttProfile::kLeafSpine;
  // Microscopic queue trace around the burst only (Fig. 10's window).
  session_config.queue_sample_period = config.queue_sample_period;
  session_config.monitor_from = config.burst_time - Time::Milliseconds(5);
  session_config.monitor_until = config.burst_time + Time::Milliseconds(20);
  session_config.max_sim_time = config.max_sim_time;
  session_config.trace = config.trace;
  session_config.sketch = config.sketch;
  ExperimentSession session(std::move(session_config));
  Simulator& sim = session.sim();

  DumbbellConfig topo_config;
  topo_config.senders = config.senders;
  topo_config.rate = config.rate;
  topo_config.base_rtt = config.base_rtt;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.tcp = config.tcp;
  Dumbbell topo(sim, topo_config, MakeFifoDisc(config.scheme, config.params));

  session.Bind(topo);
  const std::uint32_t receiver = topo.receiver_address();

  // Long-lived elephants from the smallest-RTT senders: with a tail-RTT
  // marking threshold these are exactly the flows that build the standing
  // queue the paper's Fig. 10 shows.
  constexpr std::uint64_t kElephantBytes = 1ull << 40;  // never finishes
  for (std::size_t i = 0; i < config.long_flows; ++i) {
    const std::size_t sender = i % config.senders;
    sim.ScheduleAt(Time::Milliseconds(1) * static_cast<std::int64_t>(i + 1),
                   [&topo, sender, receiver] {
                     topo.sender_stack(sender).StartFlow(
                         receiver, kElephantBytes, nullptr);
                   });
  }

  // Query burst at burst_time; completions land in the session collector.
  FctCollector& query_collector = session.collector();
  std::size_t queries_completed = 0;
  Rng rng(config.seed);
  for (std::size_t q = 0; q < config.query_flows; ++q) {
    const std::size_t sender = q % config.senders;
    const std::uint64_t size =
        config.query_min_bytes +
        rng.UniformInt(config.query_max_bytes - config.query_min_bytes + 1);
    sim.ScheduleAt(config.burst_time, [&topo, &query_collector,
                                       &queries_completed, sender, receiver,
                                       size] {
      topo.sender_stack(sender).StartFlow(
          receiver, size,
          [&query_collector, &queries_completed](const FlowRecord& record) {
            query_collector.Record(record);
            ++queries_completed;
          });
    });
  }

  // Snapshot overflow drops just before the burst so the result separates
  // burst-induced losses from background startup transients.
  std::uint64_t drops_before_burst = 0;
  sim.ScheduleAt(config.burst_time - Time::Nanoseconds(1),
                 [&topo, &drops_before_burst] {
                   drops_before_burst =
                       topo.TotalBottleneckStats().dropped_overflow;
                 });

  // Run at least through the queue-trace window, then until the queries
  // finish (or the safety cap).
  const Time trace_end = config.burst_time + Time::Milliseconds(20);
  session.Run([&] {
    return sim.Now() < trace_end || queries_completed < config.query_flows;
  });

  IncastResult result;
  result.query_fct = query_collector.Overall();
  result.query_timeouts = query_collector.total_timeouts();
  result.total_drops = topo.TotalBottleneckStats().dropped_overflow;
  result.drops = result.total_drops - drops_before_burst;
  QueueMonitorSet& monitors = session.monitors();
  if (!monitors.empty()) {
    result.max_queue_packets = monitors.MaxPackets();
    // Standing queue: the 5 ms window immediately before the burst.
    result.standing_queue_packets = monitors.AvgPackets(
        config.burst_time - Time::Milliseconds(5), config.burst_time);
    result.queue_trace = monitors.monitor(0).samples();
  }
  result.queries_completed = queries_completed;
  result.trace = session.trace();
  result.sketch = session.sketch();
  return result;
}

}  // namespace ecnsharp
