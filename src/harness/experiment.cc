#include "harness/experiment.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/ecn_sharp.h"
#include "dynamics/scenario_engine.h"
#include "hostpath/rtt_probe.h"
#include "sched/fifo_queue_disc.h"
#include "sim/simulator.h"
#include "topo/dumbbell.h"
#include "topo/rtt_variation.h"
#include "workload/traffic_generator.h"

namespace ecnsharp {

namespace {
void FillFctResult(const FctCollector& collector, ExperimentResult& result) {
  result.overall = collector.Overall();
  result.short_flows = collector.ShortFlows();
  result.large_flows = collector.LargeFlows();
  result.timeouts = collector.total_timeouts();
}

// Re-derives the bottleneck ECN# thresholds from the senders' *current* base
// RTT distribution — the operator response to a known RTT shift (§3.4's
// rule-of-thumb applied to fresh measurements). No-op when the bottleneck is
// not a FIFO running ECN#.
void ReestimateBottleneckEcnSharp(Dumbbell& topo, Time base_rtt) {
  auto* fifo = dynamic_cast<FifoQueueDisc*>(&topo.bottleneck_port().queue_disc());
  if (fifo == nullptr) return;
  auto* aqm = dynamic_cast<EcnSharpAqm*>(fifo->aqm());
  if (aqm == nullptr) return;
  std::vector<double> rtts_us;
  rtts_us.reserve(topo.sender_count());
  for (std::size_t i = 0; i < topo.sender_count(); ++i) {
    rtts_us.push_back(
        (base_rtt + topo.sender_host(i).extra_egress_delay())
            .ToMicroseconds());
  }
  const RttStats stats = ComputeRttStats(std::move(rtts_us));
  if (stats.status != RttProbeStatus::kOk) return;
  aqm->Reconfigure(RuleOfThumbConfig(Time::FromMicroseconds(stats.p90_us),
                                     Time::FromMicroseconds(stats.mean_us),
                                     /*lambda=*/1.0));
}
}  // namespace

ExperimentResult RunDumbbell(const DumbbellExperimentConfig& config) {
  Simulator sim;

  DumbbellConfig topo_config;
  topo_config.senders = config.senders;
  topo_config.rate = config.rate;
  topo_config.base_rtt = config.base_rtt;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.tcp = config.tcp;

  Dumbbell topo(sim, topo_config,
                MakeFifoDisc(config.scheme, config.params));

  // Per-sender netem extras spanning the requested RTT variation.
  const Time max_extra = config.base_rtt * (config.rtt_variation - 1.0);
  topo.SetSenderExtraDelays(RttExtraQuantiles(config.senders, max_extra));

  FctCollector collector;
  TrafficConfig traffic;
  traffic.load = config.load;
  traffic.reference_capacity = config.rate;
  traffic.flow_count = config.flows;

  Rng rng(config.seed);
  const std::uint32_t receiver = topo.receiver_address();
  TrafficGenerator generator(
      sim, *config.workload, traffic,
      [&topo, receiver](Rng& r) {
        const std::size_t sender = r.UniformInt(topo.sender_count());
        return std::make_pair(&topo.sender_stack(sender), receiver);
      },
      [&collector](const FlowRecord& record) { collector.Record(record); },
      rng.Fork());

  QueueMonitor monitor(sim, topo.bottleneck_port().queue_disc(),
                       config.queue_sample_period.IsZero()
                           ? Time::FromMicroseconds(100)
                           : config.queue_sample_period);
  if (!config.queue_sample_period.IsZero()) {
    monitor.Run(Time::Zero(), config.max_sim_time);
  }

  // Scenario dynamics: burst flows launched here complete into the same
  // collector as the workload's, and the run loop below waits for them.
  std::size_t burst_started = 0;
  std::size_t burst_completed = 0;
  std::size_t next_burst_sender = 0;
  std::unique_ptr<ScenarioEngine> engine;
  if (!config.scenario.empty()) {
    ScenarioHooks hooks;
    hooks.port = [&topo](int target) -> EgressPort* {
      if (target < 0) return &topo.bottleneck_port();
      if (static_cast<std::size_t>(target) < topo.sender_count()) {
        return &topo.sender_host(static_cast<std::size_t>(target)).nic();
      }
      return nullptr;
    };
    hooks.set_host_delay = [&topo](int index, Time delay) {
      if (index >= 0 &&
          static_cast<std::size_t>(index) < topo.sender_count()) {
        topo.sender_host(static_cast<std::size_t>(index))
            .set_extra_egress_delay(delay);
      }
    };
    hooks.incast = [&topo, &collector, &burst_started, &burst_completed,
                    &next_burst_sender,
                    receiver](std::uint32_t flows, std::uint64_t bytes) {
      for (std::uint32_t f = 0; f < flows; ++f) {
        const std::size_t sender = next_burst_sender++ % topo.sender_count();
        ++burst_started;
        topo.sender_stack(sender).StartFlow(
            receiver, bytes,
            [&collector, &burst_completed](const FlowRecord& record) {
              collector.Record(record);
              ++burst_completed;
            });
      }
    };
    hooks.reestimate_ecnsharp = [&topo, base_rtt = config.base_rtt] {
      ReestimateBottleneckEcnSharp(topo, base_rtt);
    };
    engine = std::make_unique<ScenarioEngine>(sim, config.scenario,
                                              std::move(hooks));
    engine->Install();
  }

  generator.Start();
  // Queue monitoring keeps the event heap non-empty, so run in slices until
  // the workload drains, every scheduled scenario occurrence has fired, and
  // every burst flow has completed (or the safety cap trips).
  const auto work_pending = [&] {
    if (!generator.AllDone()) return true;
    if (burst_completed < burst_started) return true;
    return engine != nullptr &&
           engine->actions_fired() < engine->actions_scheduled();
  };
  while (work_pending() && sim.Now() < config.max_sim_time) {
    sim.RunFor(Time::Milliseconds(10));
  }

  ExperimentResult result;
  FillFctResult(collector, result);
  result.flows_started = generator.started() + burst_started;
  result.flows_completed = generator.completed() + burst_completed;
  result.bottleneck = topo.bottleneck_port().queue_disc().stats();
  if (!config.queue_sample_period.IsZero()) {
    result.avg_queue_packets = monitor.AvgPackets();
    result.max_queue_packets = monitor.MaxPackets();
  }
  result.sim_seconds = sim.Now().ToSeconds();
  if (engine != nullptr) {
    result.scenario_actions = engine->actions_fired();
    result.incast_bursts = engine->bursts_fired();
    result.burst_flows_started = burst_started;
    result.burst_flows_completed = burst_completed;
    result.injected_drops = engine->injected_drops();
    result.injected_corruptions = engine->injected_corruptions();
    result.link_down_drops = topo.bottleneck_port().counters().dropped_link_down;
    for (std::size_t i = 0; i < topo.sender_count(); ++i) {
      result.link_down_drops +=
          topo.sender_host(i).nic().counters().dropped_link_down;
    }
  }
  return result;
}

ExperimentResult RunLeafSpine(const LeafSpineExperimentConfig& config) {
  Simulator sim;

  LeafSpineConfig topo_config = config.topo;
  topo_config.buffer_bytes = config.params.buffer_bytes;

  LeafSpine topo(sim, topo_config, [&config] {
    return MakeFifoDisc(config.scheme, config.params);
  });

  Rng rng(config.seed);
  for (std::size_t h = 0; h < topo.host_count(); ++h) {
    topo.host(h).set_extra_egress_delay(
        SampleRttExtra(rng, config.max_extra_delay));
  }

  FctCollector collector;
  TrafficConfig traffic;
  traffic.load = config.load;
  // Load is defined per host access link; the aggregate arrival rate scales
  // with the number of hosts.
  traffic.reference_capacity = DataRate::BitsPerSecond(
      config.topo.rate.bps() * static_cast<std::int64_t>(topo.host_count()));
  traffic.flow_count = config.flows;

  TrafficGenerator generator(
      sim, *config.workload, traffic,
      [&topo](Rng& r) {
        const std::size_t src = r.UniformInt(topo.host_count());
        std::size_t dst = r.UniformInt(topo.host_count() - 1);
        if (dst >= src) ++dst;
        return std::make_pair(&topo.stack(src),
                              static_cast<std::uint32_t>(dst));
      },
      [&collector](const FlowRecord& record) { collector.Record(record); },
      rng.Fork());

  generator.Start();
  while (!generator.AllDone() && sim.Now() < config.max_sim_time) {
    sim.RunFor(Time::Milliseconds(10));
  }

  ExperimentResult result;
  FillFctResult(collector, result);
  result.flows_started = generator.started();
  result.flows_completed = generator.completed();
  result.bottleneck.dropped_overflow = topo.TotalOverflowDrops();
  result.bottleneck.ce_marked = topo.TotalCeMarks();
  result.sim_seconds = sim.Now().ToSeconds();
  return result;
}

IncastResult RunIncast(const IncastExperimentConfig& config) {
  Simulator sim;

  DumbbellConfig topo_config;
  topo_config.senders = config.senders;
  topo_config.rate = config.rate;
  topo_config.base_rtt = config.base_rtt;
  topo_config.buffer_bytes = config.params.buffer_bytes;
  topo_config.tcp = config.tcp;

  Dumbbell topo(sim, topo_config,
                MakeFifoDisc(config.scheme, config.params));
  const Time max_extra = config.base_rtt * (config.rtt_variation - 1.0);
  // §5.4 setup mirrors the large-scale simulations' RTT distribution.
  topo.SetSenderExtraDelays(RttExtraQuantiles(config.senders, max_extra,
                                              RttProfile::kLeafSpine));

  const std::uint32_t receiver = topo.receiver_address();

  // Long-lived elephants from the smallest-RTT senders: with a tail-RTT
  // marking threshold these are exactly the flows that build the standing
  // queue the paper's Fig. 10 shows.
  constexpr std::uint64_t kElephantBytes = 1ull << 40;  // never finishes
  for (std::size_t i = 0; i < config.long_flows; ++i) {
    const std::size_t sender = i % config.senders;
    sim.ScheduleAt(Time::Milliseconds(1) * static_cast<std::int64_t>(i + 1),
                   [&topo, sender, receiver] {
                     topo.sender_stack(sender).StartFlow(
                         receiver, kElephantBytes, nullptr);
                   });
  }

  // Query burst at burst_time.
  FctCollector query_collector;
  std::size_t queries_completed = 0;
  Rng rng(config.seed);
  for (std::size_t q = 0; q < config.query_flows; ++q) {
    const std::size_t sender = q % config.senders;
    const std::uint64_t size =
        config.query_min_bytes +
        rng.UniformInt(config.query_max_bytes - config.query_min_bytes + 1);
    sim.ScheduleAt(config.burst_time, [&topo, &query_collector,
                                       &queries_completed, sender, receiver,
                                       size] {
      topo.sender_stack(sender).StartFlow(
          receiver, size,
          [&query_collector, &queries_completed](const FlowRecord& record) {
            query_collector.Record(record);
            ++queries_completed;
          });
    });
  }

  QueueMonitor monitor(sim, topo.bottleneck_port().queue_disc(),
                       config.queue_sample_period);
  const Time trace_end = config.burst_time + Time::Milliseconds(20);
  monitor.Run(config.burst_time - Time::Milliseconds(5), trace_end);

  // Snapshot overflow drops just before the burst so the result separates
  // burst-induced losses from background startup transients.
  std::uint64_t drops_before_burst = 0;
  sim.ScheduleAt(config.burst_time - Time::Nanoseconds(1),
                 [&topo, &drops_before_burst] {
                   drops_before_burst = topo.bottleneck_port()
                                            .queue_disc()
                                            .stats()
                                            .dropped_overflow;
                 });

  // Run at least through the queue-trace window, then until the queries
  // finish (or the safety cap).
  while (sim.Now() < trace_end ||
         (queries_completed < config.query_flows &&
          sim.Now() < config.max_sim_time)) {
    sim.RunFor(Time::Milliseconds(10));
  }

  IncastResult result;
  result.query_fct = query_collector.Overall();
  result.query_timeouts = query_collector.total_timeouts();
  result.total_drops =
      topo.bottleneck_port().queue_disc().stats().dropped_overflow;
  result.drops = result.total_drops - drops_before_burst;
  result.max_queue_packets = monitor.MaxPackets();
  // Standing queue: the 5 ms window immediately before the burst.
  result.standing_queue_packets = monitor.AvgPackets(
      config.burst_time - Time::Milliseconds(5), config.burst_time);
  result.queue_trace = monitor.samples();
  result.queries_completed = queries_completed;
  return result;
}

}  // namespace ecnsharp
