#include "harness/sketch_export.h"

#include <cstdint>

#include "sketch/estimator.h"

namespace ecnsharp {

Json SketchToJson(const SketchTelemetry& telemetry, Time now) {
  const SketchConfig& config = telemetry.config();

  Json config_json = Json::Object();
  config_json.Set("memory_kb", Json::UInt(config.memory_kb));
  config_json.Set("depth", Json::UInt(config.depth));
  config_json.Set("epoch_us", Json::Num(config.epoch.ToMicroseconds()));
  config_json.Set("window_epochs", Json::UInt(config.window_epochs));
  config_json.Set("decay", Json::Num(config.decay));
  config_json.Set("queue_alpha", Json::Num(config.queue_alpha));
  config_json.Set("heavy_hitters", Json::UInt(config.heavy_hitters));
  config_json.Set("track_exact", Json::Bool(config.track_exact));

  Json totals = Json::Object();
  totals.Set("packets_observed", Json::UInt(telemetry.packets_observed()));
  totals.Set("flow_sketch_bytes",
             Json::UInt(telemetry.FlowSketchMemoryBytes()));
  totals.Set("count_min_width", Json::UInt(telemetry.count_min().width()));
  totals.Set("count_min_total", Json::UInt(telemetry.count_min().total_count()));

  Json sites = Json::Array();
  for (std::size_t s = 0; s < telemetry.site_count(); ++s) {
    const std::uint16_t site = static_cast<std::uint16_t>(s);
    const SketchSiteCounters& counters = telemetry.site_counters(site);
    const QueueOccupancyEwma& ewma = telemetry.queue_ewma(site);
    Json row = Json::Object();
    row.Set("label", Json::Str(telemetry.site_label(site)));
    row.Set("enqueued", Json::UInt(counters.enqueued));
    row.Set("enqueued_bytes", Json::UInt(counters.enqueued_bytes));
    row.Set("dequeued", Json::UInt(counters.dequeued));
    row.Set("transmitted", Json::UInt(counters.transmitted));
    row.Set("marks", Json::UInt(counters.marks));
    row.Set("drops", Json::UInt(counters.drops));
    row.Set("ewma_packets", Json::Num(ewma.ewma_packets()));
    row.Set("ewma_bytes", Json::Num(ewma.ewma_bytes()));
    row.Set("peak_packets", Json::UInt(ewma.peak_packets()));
    row.Set("queue_samples", Json::UInt(ewma.samples()));
    sites.Push(std::move(row));
  }

  const SketchRttEstimate estimate = EstimateFromSketch(telemetry, now);
  Json rtt = Json::Object();
  rtt.Set("valid", Json::Bool(estimate.valid));
  rtt.Set("samples", Json::UInt(estimate.samples));
  rtt.Set("offered", Json::UInt(estimate.offered));
  rtt.Set("admitted", Json::UInt(telemetry.rtt_samples_admitted()));
  rtt.Set("mean_us", Json::Num(estimate.mean_us));
  rtt.Set("p50_us", Json::Num(estimate.p50_us));
  rtt.Set("p90_us", Json::Num(estimate.p90_us));
  rtt.Set("p99_us", Json::Num(estimate.p99_us));

  Json heavy = Json::Array();
  for (const SketchTelemetry::HeavyHitter& hh : telemetry.HeavyHitters()) {
    Json row = Json::Object();
    row.Set("src", Json::UInt(hh.flow.src));
    row.Set("src_port", Json::UInt(hh.flow.src_port));
    row.Set("dst", Json::UInt(hh.flow.dst));
    row.Set("dst_port", Json::UInt(hh.flow.dst_port));
    row.Set("estimated_bytes", Json::UInt(hh.estimated_bytes));
    row.Set("rate_bps",
            Json::Num(telemetry.EstimateRateBps(hh.flow, now)));
    heavy.Push(std::move(row));
  }

  Json doc = Json::Object();
  doc.Set("config", std::move(config_json));
  doc.Set("totals", std::move(totals));
  doc.Set("sites", std::move(sites));
  doc.Set("rtt_estimate", std::move(rtt));
  doc.Set("heavy_hitters", std::move(heavy));
  doc.Set("heavy_rate_bps", Json::Num(estimate.heavy_rate_bps));
  return doc;
}

}  // namespace ecnsharp
