// Scheme registry: builds the queue disc / AQM policy for each scheme the
// paper compares (§5.1 "Schemes Compared"), with the paper's parameter
// defaults for the 10G / 3x-RTT-variation testbed (§5.2).
#ifndef ECNSHARP_HARNESS_SCHEMES_H_
#define ECNSHARP_HARNESS_SCHEMES_H_

#include <cstdint>
#include <memory>
#include <string>

#include "aqm/codel.h"
#include "aqm/pie.h"
#include "buffer/buffer_policy.h"
#include "core/ecn_sharp.h"
#include "net/queue_disc.h"
#include "sim/time.h"

namespace ecnsharp {

enum class Scheme {
  kDctcpRedTail,    // instantaneous queue-length marking, K from p90 RTT
  kDctcpRedAvg,     // instantaneous queue-length marking, K from avg RTT
  kCodel,           // persistent-congestion-only marking
  kTcn,             // instantaneous sojourn marking
  kEcnSharp,        // the paper's contribution
  kEcnSharpTofino,  // ECN# via the emulated Tofino pipeline (§4)
  kDropTail,        // no ECN at all
  kPie,             // PIE (persistent-congestion PI controller, §6)
  // Ablations of ECN#'s two conditions (§3.2/§3.3):
  kEcnSharpInstOnly,  // instantaneous sojourn rule only (persistent off)
  kEcnSharpPstOnly,   // persistent rule only (instantaneous off)
};

inline constexpr Scheme kAllSchemes[] = {
    Scheme::kDctcpRedTail,     Scheme::kDctcpRedAvg,
    Scheme::kCodel,            Scheme::kTcn,
    Scheme::kEcnSharp,         Scheme::kEcnSharpTofino,
    Scheme::kDropTail,         Scheme::kPie,
    Scheme::kEcnSharpInstOnly, Scheme::kEcnSharpPstOnly,
};

const char* SchemeName(Scheme scheme);

struct SchemeParams {
  // DCTCP-RED thresholds (testbed values: 250 KB for p90 RTT, 80 KB for
  // average RTT at 10 Gbps with RTTs in [70, 210] us).
  std::uint64_t red_tail_threshold_bytes = 250'000;
  std::uint64_t red_avg_threshold_bytes = 80'000;
  // CoDel: interval ~ worst-case RTT, target ~ average-RTT sojourn budget.
  CodelConfig codel{Time::FromMicroseconds(85), Time::FromMicroseconds(200)};
  // TCN threshold (§5.4 packet-scheduler experiment uses 150 us).
  Time tcn_threshold = Time::FromMicroseconds(150);
  // PIE: target ~ the persistent-queue budget, fast datacenter updates.
  PieConfig pie{Time::FromMicroseconds(20), Time::FromMicroseconds(100),
                0.125, 1.25, 3000};
  // ECN# rule-of-thumb values for the same testbed (§5.2).
  EcnSharpConfig ecn_sharp{Time::FromMicroseconds(200),
                           Time::FromMicroseconds(85),
                           Time::FromMicroseconds(200)};
  // Egress buffer per switch port.
  std::uint64_t buffer_bytes = 600ull * 1500;
};

// Parameter set for the large-scale simulation environment (§5.3-5.4):
// base RTTs in [80, 240] us (average ~137 us, p90 ~220 us), so
//   DCTCP-RED-Tail K = C * p90RTT = 275 KB, DCTCP-RED-AVG K = 171 KB,
//   CoDel/ECN# interval ~ worst-case RTT (240 us), persistent target 10 us,
//   ECN# ins_target = p90 RTT sojourn (220 us).
SchemeParams SimulationSchemeParams();

// Builds the AQM policy alone (for use inside DWRR classes etc.).
// Returns nullptr for kDropTail.
std::unique_ptr<AqmPolicy> MakeAqm(Scheme scheme, const SchemeParams& params);

// Builds a single-FIFO queue disc running the scheme. With a non-null
// `pool`, the disc registers one queue with the shared-buffer policy and
// draws admission from it instead of the static per-port buffer.
std::unique_ptr<QueueDisc> MakeFifoDisc(Scheme scheme,
                                        const SchemeParams& params,
                                        BufferPolicy* pool = nullptr);

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_SCHEMES_H_
