// JSON serialization of experiment configurations and results.
//
// Feeds the runner's structured exporter (results/<sweep>.json): every field
// that determines a run's outcome is captured, so a JSON record plus the
// binary version is enough to reproduce a data point. Wall-clock quantities
// are deliberately excluded — dumps must be byte-identical across repeat
// runs and across --jobs settings.
#ifndef ECNSHARP_HARNESS_CONFIG_JSON_H_
#define ECNSHARP_HARNESS_CONFIG_JSON_H_

#include <string>

#include "dynamics/scenario.h"
#include "harness/experiment.h"
#include "harness/json.h"

namespace ecnsharp {

// Name of a workload CDF pointer: "websearch", "datamining" or "custom".
const char* WorkloadName(const EmpiricalCdf* workload);

Json ToJson(const SchemeParams& params);
Json ToJson(const TcpConfig& tcp);
Json ToJson(const BufferPolicyConfig& policy);

// Scenario scripts round-trip through JSON: ToJson emits the canonical form
// and the two readers accept it back (plus defaults for omitted fields).
// Script shape: {"seed": 7, "actions": [{"kind": "link_down", "at_us":
// 50000, "target": -1, "drop_queued": true, ...}, ...]}.
Json ToJson(const ScenarioAction& action);
Json ToJson(const ScenarioScript& script);
// Returns false (with a message in `*error` when non-null) on an unknown
// kind, a malformed document shape, or out-of-range numbers.
bool ScenarioScriptFromJson(const Json& json, ScenarioScript* out,
                            std::string* error = nullptr);
// Convenience: Json::Parse + ScenarioScriptFromJson.
bool ParseScenarioScript(const std::string& text, ScenarioScript* out,
                         std::string* error = nullptr);

Json ToJson(const DumbbellExperimentConfig& config);
Json ToJson(const LeafSpineExperimentConfig& config);
Json ToJson(const FatTreeExperimentConfig& config);
Json ToJson(const InterDcExperimentConfig& config);
Json ToJson(const IncastExperimentConfig& config);

Json ToJson(const FctSummary& summary);
Json ToJson(const QueueDiscStats& stats);
Json ToJson(const ExperimentResult& result);
// Includes the queue trace (time/packets pairs) when present.
Json ToJson(const IncastResult& result);

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_CONFIG_JSON_H_
