#include "harness/table.h"

#include <algorithm>
#include <cstdio>

namespace ecnsharp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "" : "  ",
                  static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) sep += "  ";
    sep += std::string(widths[c], '-');
  }
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtUs(double microseconds) {
  char buf[64];
  if (microseconds >= 10000.0) {
    std::snprintf(buf, sizeof buf, "%.1fms", microseconds / 1000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fus", microseconds);
  }
  return buf;
}

void PrintBanner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace ecnsharp
