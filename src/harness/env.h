// Environment-variable overrides for bench scale knobs.
#ifndef ECNSHARP_HARNESS_ENV_H_
#define ECNSHARP_HARNESS_ENV_H_

#include <cstdint>
#include <string>

namespace ecnsharp {

// ECNSHARP_FLOWS, ECNSHARP_SEED, ECNSHARP_FULL...
std::int64_t EnvInt(const std::string& name, std::int64_t fallback);
double EnvDouble(const std::string& name, double fallback);
bool EnvFlag(const std::string& name);

// Standard bench scale: `fallback` flows normally, `full_scale` when
// ECNSHARP_FULL=1, always overridable via ECNSHARP_FLOWS.
std::size_t BenchFlowCount(std::size_t fallback, std::size_t full_scale);
std::uint64_t BenchSeed();

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_ENV_H_
