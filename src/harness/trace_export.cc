#include "harness/trace_export.h"

#include <cstdio>

#include "dynamics/scenario.h"

namespace ecnsharp {

namespace {

Json FlowToJson(const FlowKey& flow) {
  return Json::Object()
      .Set("src", Json::UInt(flow.src))
      .Set("src_port", Json::UInt(flow.src_port))
      .Set("dst", Json::UInt(flow.dst))
      .Set("dst_port", Json::UInt(flow.dst_port));
}

bool IsFlowEvent(TraceEventKind kind) {
  return kind != TraceEventKind::kScenario;
}

Json EventToJson(const TraceEvent& event) {
  Json out = Json::Object()
                 .Set("at_ns", Json::Int(event.at.ns()))
                 .Set("kind", Json::Str(TraceEventKindName(event.kind)));
  if (event.site != kNoTraceSite) {
    out.Set("site", Json::UInt(event.site));
  }
  if (IsFlowEvent(event.kind)) {
    out.Set("flow", FlowToJson(event.flow));
  }
  switch (event.kind) {
    case TraceEventKind::kEnqueue:
      out.Set("seq", Json::UInt(event.a));
      out.Set("depth_pkts", Json::UInt(event.b));
      break;
    case TraceEventKind::kDequeue:
      out.Set("seq", Json::UInt(event.a));
      out.Set("sojourn_ns", Json::UInt(event.b));
      break;
    case TraceEventKind::kTransmit:
    case TraceEventKind::kMark:
      out.Set("seq", Json::UInt(event.a));
      out.Set("bytes", Json::UInt(event.b));
      break;
    case TraceEventKind::kDrop:
      out.Set("reason", Json::Str(DropReasonName(event.reason)));
      out.Set("seq", Json::UInt(event.a));
      out.Set("bytes", Json::UInt(event.b));
      break;
    case TraceEventKind::kCwnd:
      out.Set("cwnd_bytes", Json::UInt(event.a));
      out.Set("ssthresh_bytes", Json::UInt(event.b));
      break;
    case TraceEventKind::kRttSample:
      out.Set("sample_ns", Json::UInt(event.a));
      break;
    case TraceEventKind::kRetransmit:
      out.Set("seq", Json::UInt(event.a));
      break;
    case TraceEventKind::kRto:
      out.Set("consecutive", Json::UInt(event.a));
      break;
    case TraceEventKind::kScenario:
      out.Set("action", Json::Str(ScenarioActionKindName(
                            static_cast<ScenarioActionKind>(event.a))));
      out.Set("target", Json::Int(static_cast<std::int64_t>(event.b)));
      break;
  }
  return out;
}

Json SiteCountersToJson(const TraceSiteCounters& counters) {
  Json drops = Json::Object();
  for (std::size_t r = 0; r < kDropReasons; ++r) {
    drops.Set(DropReasonName(static_cast<DropReason>(r)),
              Json::UInt(counters.drops[r]));
  }
  return Json::Object()
      .Set("enqueued", Json::UInt(counters.enqueued))
      .Set("dequeued", Json::UInt(counters.dequeued))
      .Set("transmitted", Json::UInt(counters.transmitted))
      .Set("marks", Json::UInt(counters.marks))
      .Set("purged", Json::UInt(counters.purged))
      .Set("dropped_total", Json::UInt(counters.DroppedTotal()))
      .Set("drops", std::move(drops));
}

}  // namespace

Json TraceToJson(const TraceRecorder& trace) {
  const TraceConfig& config = trace.config();
  Json doc = Json::Object();
  doc.Set("schema_version", Json::Int(1));
  doc.Set("config", Json::Object()
                        .Set("ring_capacity", Json::UInt(config.ring_capacity))
                        .Set("queue_series", Json::Bool(config.queue_series))
                        .Set("flow_series", Json::Bool(config.flow_series))
                        .Set("max_series_points",
                             Json::UInt(config.max_series_points)));

  Json kinds = Json::Object();
  for (std::size_t k = 0; k < kTraceEventKinds; ++k) {
    kinds.Set(TraceEventKindName(static_cast<TraceEventKind>(k)),
              Json::UInt(trace.kind_count(static_cast<TraceEventKind>(k))));
  }
  doc.Set("totals",
          Json::Object()
              .Set("events", Json::UInt(trace.total_events()))
              .Set("overwritten", Json::UInt(trace.overwritten()))
              .Set("suppressed_points", Json::UInt(trace.suppressed_points()))
              .Set("kinds", std::move(kinds)));

  Json sites = Json::Array();
  for (std::size_t s = 0; s < trace.site_count(); ++s) {
    const auto site = static_cast<std::uint16_t>(s);
    Json entry = Json::Object()
                     .Set("site", Json::UInt(site))
                     .Set("label", Json::Str(trace.site_label(site)))
                     .Set("counters",
                          SiteCountersToJson(trace.site_counters(site)));
    if (config.queue_series) {
      Json depth = Json::Array();
      for (const TraceRecorder::DepthSample& sample :
           trace.depth_series(site)) {
        depth.Push(Json::Array()
                       .Push(Json::Int(sample.at.ns()))
                       .Push(Json::UInt(sample.packets))
                       .Push(Json::UInt(sample.bytes)));
      }
      entry.Set("depth", std::move(depth));
    }
    sites.Push(std::move(entry));
  }
  doc.Set("sites", std::move(sites));

  if (config.flow_series) {
    Json flows = Json::Array();
    for (const auto& [key, series] : trace.flows()) {
      Json cwnd = Json::Array();
      for (const TraceRecorder::CwndSample& sample : series.cwnd) {
        cwnd.Push(Json::Array()
                      .Push(Json::Int(sample.at.ns()))
                      .Push(Json::Num(sample.cwnd_bytes))
                      .Push(Json::Num(sample.ssthresh_bytes)));
      }
      Json rtt = Json::Array();
      for (const TraceRecorder::RttSamplePoint& sample : series.rtt) {
        rtt.Push(Json::Array()
                     .Push(Json::Int(sample.at.ns()))
                     .Push(Json::Int(sample.sample.ns())));
      }
      flows.Push(Json::Object()
                     .Set("flow", FlowToJson(key))
                     .Set("retransmits", Json::UInt(series.retransmits))
                     .Set("rtos", Json::UInt(series.rtos))
                     .Set("cwnd", std::move(cwnd))
                     .Set("rtt", std::move(rtt)));
    }
    doc.Set("flows", std::move(flows));
  }

  Json events = Json::Array();
  for (const TraceEvent& event : trace.Events()) {
    events.Push(EventToJson(event));
  }
  doc.Set("events", std::move(events));
  return doc;
}

std::string TraceToCsv(const TraceRecorder& trace) {
  std::string out = "at_ns,kind,site,reason,src,src_port,dst,dst_port,a,b\n";
  char buf[192];
  for (const TraceEvent& event : trace.Events()) {
    std::string site;
    if (event.site != kNoTraceSite) site = std::to_string(event.site);
    const char* reason =
        event.kind == TraceEventKind::kDrop ? DropReasonName(event.reason) : "";
    std::snprintf(buf, sizeof buf,
                  "%lld,%s,%s,%s,%u,%u,%u,%u,%llu,%llu\n",
                  static_cast<long long>(event.at.ns()),
                  TraceEventKindName(event.kind), site.c_str(), reason,
                  event.flow.src, event.flow.src_port, event.flow.dst,
                  event.flow.dst_port,
                  static_cast<unsigned long long>(event.a),
                  static_cast<unsigned long long>(event.b));
    out += buf;
  }
  return out;
}

}  // namespace ecnsharp
