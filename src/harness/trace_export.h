// Serialization of a TraceRecorder into the harness JSON model and CSV.
//
// Both renderings are deterministic: Json preserves insertion order and
// prints shortest-round-trip numbers, sites appear in registration order,
// flows in FlowKeyLess order, and the event ring oldest-first — so a trace
// of a fixed-seed run is byte-identical across runs and --jobs values.
// Writing files is the caller's job (the CLI and benches go through
// runner::WriteJsonFile); this layer only builds strings.
#ifndef ECNSHARP_HARNESS_TRACE_EXPORT_H_
#define ECNSHARP_HARNESS_TRACE_EXPORT_H_

#include <string>

#include "harness/json.h"
#include "trace/trace_recorder.h"

namespace ecnsharp {

// Full trace document: config, totals, per-site counters + depth series,
// per-flow transport series, and the retained event ring.
Json TraceToJson(const TraceRecorder& trace);

// Flat event table: one row per retained ring event with the header
//   at_ns,kind,site,reason,src,src_port,dst,dst_port,a,b
// (site and reason empty when not applicable).
std::string TraceToCsv(const TraceRecorder& trace);

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_TRACE_EXPORT_H_
