// Serialization of a SketchTelemetry snapshot into the harness JSON model.
//
// Deterministic like the trace export: sites appear in registration order,
// heavy hitters in estimated-bytes order (key-hash tie-break), and numbers
// render with shortest-round-trip formatting — so the export of a fixed-seed
// run is byte-identical across runs and --jobs values. `now` is the query
// time for the windowed views (rates, RTT quantiles), normally the
// simulation end time.
#ifndef ECNSHARP_HARNESS_SKETCH_EXPORT_H_
#define ECNSHARP_HARNESS_SKETCH_EXPORT_H_

#include "harness/json.h"
#include "sim/time.h"
#include "sketch/telemetry.h"

namespace ecnsharp {

// Full telemetry document: config + memory, per-site counters and queue
// EWMAs, the RTT estimate (quantiles + admission counters), and the
// heavy-hitter table with rate estimates.
Json SketchToJson(const SketchTelemetry& telemetry, Time now);

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_SKETCH_EXPORT_H_
