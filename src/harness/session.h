// ExperimentSession: the shared glue every experiment runner is built from.
//
// A session owns the simulator plus everything the three runners
// (RunDumbbell / RunLeafSpine / RunIncast) previously wired by hand, built
// generically against the Topology interface:
//
//   * per-host RTT-extra assignment (quantile or sampled, §2.3 / §5.3),
//   * the open-loop TrafficGenerator (Poisson arrivals over SampleFlowPair),
//   * a QueueMonitor on every bottleneck queue,
//   * ScenarioEngine hooks (port targeting via ResolvePort, RTT shifts,
//     incast bursts toward IncastTarget, ECN# re-estimation from the
//     HostBaseRtt distribution),
//   * the sliced run loop with burst-flow bookkeeping, and
//   * the uniform ExperimentResult fill.
//
// Runners therefore reduce to: build a SessionConfig, build a Topology,
// Bind, optionally schedule extra traffic by hand, Run, Result. Any new
// Topology gets dynamics, monitoring, and uniform metrics for free.
#ifndef ECNSHARP_HARNESS_SESSION_H_
#define ECNSHARP_HARNESS_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "dynamics/scenario.h"
#include "dynamics/scenario_engine.h"
#include "harness/experiment.h"
#include "net/packet_tracer.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sketch/sketch_config.h"
#include "stats/fct_collector.h"
#include "stats/queue_monitor.h"
#include "topo/rtt_variation.h"
#include "topo/topology.h"
#include "trace/trace_config.h"
#include "trace/transport_tracer.h"
#include "workload/empirical_cdf.h"
#include "workload/traffic_generator.h"

namespace ecnsharp {

class TraceRecorder;
class SketchTelemetry;

struct ExperimentSessionConfig {
  // Open-loop background workload; null runs no generator (the incast
  // experiment schedules all of its traffic by hand).
  const EmpiricalCdf* workload = nullptr;
  double load = 0.5;
  std::size_t flows = 0;
  std::uint64_t seed = 1;

  // How Bind() assigns per-host extra delays. kQuantiles is deterministic
  // (testbed-style netem per sender); kPerHostSample consumes one rng draw
  // per host, in host order, before the generator forks its stream.
  enum class RttAssignment { kNone, kQuantiles, kPerHostSample };
  RttAssignment rtt_assignment = RttAssignment::kNone;
  Time max_rtt_extra = Time::Zero();
  RttProfile rtt_profile = RttProfile::kTestbed;

  // Queue occupancy sampling of every bottleneck (zero disables — no
  // monitors are instantiated at all). The window defaults to the whole
  // run; monitor_until == 0 means max_sim_time.
  Time queue_sample_period = Time::Zero();
  Time monitor_from = Time::Zero();
  Time monitor_until = Time::Zero();

  // Safety cap on simulated time.
  Time max_sim_time = Time::Seconds(120);

  // Optional mid-run network dynamics (empty = static network).
  ScenarioScript scenario;

  // Optional flight-recorder tracing: when enabled, Bind() creates a
  // TraceRecorder, taps every bottleneck port, attaches transport tracing
  // to every host stack, and records scenario actions.
  TraceConfig trace;

  // Optional sketch telemetry: when enabled, Bind() creates one
  // SketchTelemetry and taps the same bottleneck ports and host stacks
  // (tee'd with the flight recorder when both are on).
  SketchConfig sketch;

  // Which measurement source ECN# re-estimation actions read. kSketch
  // requires sketch.enabled; otherwise the action falls back to the oracle.
  EcnEstimator estimator = EcnEstimator::kOracle;

  // Fraction of generator flows assigned to CUBIC (seeded Bernoulli per
  // flow). Zero keeps the default-CC rng sequence untouched, and Result()
  // only fills the per-controller splits when it is positive.
  double cc_mix = 0.0;
};

class ExperimentSession {
 public:
  explicit ExperimentSession(ExperimentSessionConfig config);

  Simulator& sim() { return sim_; }
  FctCollector& collector() { return collector_; }
  QueueMonitorSet& monitors() { return monitors_; }
  ScenarioEngine* engine() { return engine_.get(); }
  // Null unless config.trace.enabled and Bind() has run.
  std::shared_ptr<const TraceRecorder> trace() const { return recorder_; }
  // Null unless config.sketch.enabled and Bind() has run.
  std::shared_ptr<const SketchTelemetry> sketch() const { return telemetry_; }

  // Wires the session to a topology: RTT extras, generator, monitors,
  // scenario hooks. Call exactly once, before Run().
  void Bind(Topology& topo);

  // Starts the generator (if any) and runs in 10 ms slices until the
  // workload has drained, every scheduled scenario occurrence has fired,
  // every burst flow has completed, and `extra_pending` (if given) returns
  // false — or the max_sim_time safety cap trips.
  void Run(std::function<bool()> extra_pending = nullptr);

  // Uniform metrics fill. Queue-occupancy fields are only populated when
  // sampling was enabled, dynamics counters only when a scenario ran.
  ExperimentResult Result();

 private:
  ExperimentSessionConfig config_;
  Simulator sim_;
  Rng rng_;
  FctCollector collector_;
  QueueMonitorSet monitors_;
  std::unique_ptr<TrafficGenerator> generator_;
  std::unique_ptr<ScenarioEngine> engine_;
  // Owned here, shared into results; taps installed on topology ports must
  // not outlive the recorder, so the session must outlive the topology
  // (declaration order in the runners guarantees this).
  std::shared_ptr<TraceRecorder> recorder_;
  std::shared_ptr<SketchTelemetry> telemetry_;
  // Tee glue when recorder and telemetry share a tracer slot; deque/optional
  // for stable addresses, same lifetime rules as the recorder taps.
  std::deque<TeeTracer> tee_taps_;
  std::optional<TeeTransportTracer> tee_transport_;
  Topology* topo_ = nullptr;
  // Scenario incast-burst bookkeeping: burst flows complete into the same
  // collector as the workload's, and Run() waits for them.
  std::size_t burst_started_ = 0;
  std::size_t burst_completed_ = 0;
  std::size_t next_burst_sender_ = 0;
};

// Re-derives ECN# thresholds on every bottleneck of `topo` from the hosts'
// *current* base-RTT distribution — the operator response to a known RTT
// shift (§3.4's rule-of-thumb applied to fresh measurements). Queues not
// running ECN# are left untouched.
void ReestimateEcnSharp(Topology& topo);

// Same re-derivation, but from sketch state only (what a real switch could
// measure): the windowed base-RTT sketch's p90/mean as of `now`. A no-op if
// the sketch window holds no admitted samples — the previous configuration
// is the best available estimate then.
void ReestimateEcnSharpFromSketch(Topology& topo,
                                  const SketchTelemetry& telemetry, Time now);

}  // namespace ecnsharp

#endif  // ECNSHARP_HARNESS_SESSION_H_
