// ECN# with probabilistic instantaneous marking (§3.5).
//
// Rate-based transports like DCQCN need a marking *probability* that ramps
// between two thresholds (Kmin/Kmax) rather than DCTCP's cut-off marking.
// The paper sketches the extension: replace the cut-off instantaneous rule
// with a probabilistic ramp and keep the persistent-congestion marking
// unchanged (it is already probabilistic in nature). This class implements
// that sketch with sojourn-time thresholds:
//
//   p(sojourn) = 0                         for sojourn <= t_min
//              = p_max*(sojourn-t_min)/(t_max-t_min)  in between
//              = 1                         for sojourn >= t_max
//
// OR persistent marking per Algorithm 1 (delegated to EcnSharpAqm with the
// instantaneous rule disabled).
#ifndef ECNSHARP_CORE_ECN_SHARP_PROB_H_
#define ECNSHARP_CORE_ECN_SHARP_PROB_H_

#include <string>

#include "core/ecn_sharp.h"
#include "sim/random.h"

namespace ecnsharp {

struct EcnSharpProbConfig {
  Time t_min = Time::FromMicroseconds(40);
  Time t_max = Time::FromMicroseconds(200);
  double p_max = 0.2;  // probability at t_max (above: always mark)
  Time pst_target = Time::FromMicroseconds(10);
  Time pst_interval = Time::FromMicroseconds(240);
};

class EcnSharpProbabilisticAqm : public AqmPolicy {
 public:
  EcnSharpProbabilisticAqm(const EcnSharpProbConfig& config,
                           std::uint64_t seed)
      : config_(config),
        rng_(seed),
        persistent_(DisabledInstantaneous(config)) {}

  void OnDequeue(Packet& pkt, const QueueSnapshot& snapshot, Time now,
                 Time sojourn) override {
    // Persistent part first (state must advance on every departure).
    persistent_.OnDequeue(pkt, snapshot, now, sojourn);
    if (pkt.IsCeMarked()) return;
    // Probabilistic instantaneous ramp.
    if (sojourn <= config_.t_min) return;
    if (sojourn >= config_.t_max) {
      pkt.MarkCe();
      return;
    }
    const double p = config_.p_max * ((sojourn - config_.t_min) /
                                      (config_.t_max - config_.t_min));
    if (rng_.Uniform() < p) pkt.MarkCe();
  }

  std::string name() const override { return "ecn-sharp-prob"; }
  const EcnSharpAqm& persistent() const { return persistent_; }

 private:
  static EcnSharpConfig DisabledInstantaneous(
      const EcnSharpProbConfig& config) {
    EcnSharpConfig aqm;
    aqm.ins_target = Time::Max();  // never fires; ramp replaces it
    aqm.pst_target = config.pst_target;
    aqm.pst_interval = config.pst_interval;
    return aqm;
  }

  EcnSharpProbConfig config_;
  Rng rng_;
  EcnSharpAqm persistent_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_CORE_ECN_SHARP_PROB_H_
