// ECN# ("ECN-sharp") — the paper's contribution (§3).
//
// ECN# is an AQM that marks a departing packet when EITHER of two conditions
// holds:
//
//  1. Instantaneous congestion: the packet's sojourn time reaches
//     `ins_target` (inclusive — both comparisons against a target use >=,
//     like Algorithm 1), a threshold derived from a HIGH-percentile base RTT via
//     Equation (2) (T = lambda * RTT). This preserves DCTCP-RED/TCN's
//     throughput and burst tolerance.
//
//  2. Persistent congestion (Algorithm 1): the sojourn time has stayed above
//     `pst_target` for at least one `pst_interval`. ECN# then marks ONE
//     packet, schedules the next mark one interval later, and shortens the
//     interval as pst_interval/sqrt(marking_count) while the standing queue
//     persists. This conservatively drains the queues that flows with small
//     base RTTs build under a tail-RTT-sized instantaneous threshold —
//     queues that add latency but contribute nothing to throughput.
//
// The sojourn-time signal (rather than queue length) keeps ECN# correct
// under any packet scheduler (§3.2); attach one EcnSharpAqm instance per
// scheduler class.
#ifndef ECNSHARP_CORE_ECN_SHARP_H_
#define ECNSHARP_CORE_ECN_SHARP_H_

#include <cstdint>
#include <string>

#include "core/persistent_marker.h"
#include "net/chip_hot_state.h"
#include "net/queue_disc.h"
#include "sim/time.h"

namespace ecnsharp {

struct EcnSharpConfig {
  // Instantaneous sojourn marking threshold (Equation (2) with a high-
  // percentile RTT, e.g. the 90th).
  Time ins_target = Time::FromMicroseconds(200);
  // Persistent-queueing target the sojourn time is compared against.
  Time pst_target = Time::FromMicroseconds(85);
  // Observation window before persistent queueing is confirmed, and the
  // base cadence of conservative marking. Recommended ~ one worst-case RTT.
  Time pst_interval = Time::FromMicroseconds(200);
};

// Rule-of-thumb parameter derivation (§3.4): ins_target from the high-
// percentile RTT, pst_interval ~ the high-percentile RTT, pst_target >=
// lambda * average RTT. `lambda` is the transport's ECN gain (1.0 for
// classic ECN TCP, ~0.17 for DCTCP in theory).
EcnSharpConfig RuleOfThumbConfig(Time rtt_high_percentile, Time rtt_average,
                                 double lambda);

class EcnSharpAqm : public AqmPolicy {
 public:
  explicit EcnSharpAqm(const EcnSharpConfig& config)
      : config_(config), marker_(config.pst_interval) {}

  void OnDequeue(Packet& pkt, const QueueSnapshot& snapshot, Time now,
                 Time sojourn) override;

  std::string name() const override { return "ecn-sharp"; }
  const EcnSharpConfig& config() const { return config_; }

  // Moves Algorithm 1's mutable fields into the chip's SoA hot block.
  void BindChipHotState(ChipHotBlock& block) override {
    marker_.BindState(block.Emplace<PersistentMarkerState>());
  }

  // Swaps in freshly derived thresholds mid-run — the re-estimation path for
  // a live RTT distribution shift (dynamics scripts call this through
  // ScenarioEngine). The persistent state machine restarts; the cumulative
  // mark counters are preserved.
  void Reconfigure(const EcnSharpConfig& config);

  // Observable state, exposed for tests and for the Tofino-pipeline
  // equivalence checks.
  bool marking_state() const { return marker_.marking_state(); }
  std::uint32_t marking_count() const { return marker_.marking_count(); }
  Time marking_next() const { return marker_.marking_next(); }
  Time first_above_time() const { return marker_.first_above_time(); }
  std::uint64_t instantaneous_marks() const { return instantaneous_marks_; }
  std::uint64_t persistent_marks() const { return persistent_marks_; }

 private:
  EcnSharpConfig config_;
  PersistentMarker marker_;  // Algorithm 1 over the sojourn-time signal
  std::uint64_t instantaneous_marks_ = 0;
  std::uint64_t persistent_marks_ = 0;
};

// ECN# over the queue-length signal (§3.2's other option): instantaneous
// marking against K = lambda * C * RTT bytes at enqueue, and Algorithm 1
// driven by "queue length >= pst_target_bytes". Queue-length mode is only
// correct for single-queue ports (a class's capacity under a scheduler
// varies), which is exactly why the paper's implementation uses sojourn
// time; this variant exists for that comparison.
struct EcnSharpQlenConfig {
  std::uint64_t ins_target_bytes = 250'000;
  std::uint64_t pst_target_bytes = 12'500;
  Time pst_interval = Time::FromMicroseconds(200);
};

class EcnSharpQlenAqm : public AqmPolicy {
 public:
  explicit EcnSharpQlenAqm(const EcnSharpQlenConfig& config)
      : config_(config), marker_(config.pst_interval) {}

  bool AllowEnqueue(Packet& pkt, const QueueSnapshot& snapshot,
                    Time now) override {
    const std::uint64_t bytes = snapshot.bytes + pkt.size_bytes;
    const bool persistent =
        marker_.ShouldMark(bytes >= config_.pst_target_bytes, now);
    const bool instantaneous = bytes >= config_.ins_target_bytes;
    if (instantaneous || persistent) pkt.MarkCe();
    return true;
  }

  std::string name() const override { return "ecn-sharp-qlen"; }
  const PersistentMarker& marker() const { return marker_; }

  void BindChipHotState(ChipHotBlock& block) override {
    marker_.BindState(block.Emplace<PersistentMarkerState>());
  }

 private:
  EcnSharpQlenConfig config_;
  PersistentMarker marker_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_CORE_ECN_SHARP_H_
