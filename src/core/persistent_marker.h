// The persistent-congestion state machine of Algorithm 1, factored out of
// the sojourn-time AQM so it can run over EITHER congestion signal —
// "by nature, ECN# works with both queue length and sojourn time" (§3.2).
//
// Feed it one observation per departing packet (is the signal at/above the
// persistent target?) and it answers whether that packet should be marked,
// implementing detection (one full interval above target) and conservative
// marking (one packet per interval, shrinking as interval/sqrt(count)).
#ifndef ECNSHARP_CORE_PERSISTENT_MARKER_H_
#define ECNSHARP_CORE_PERSISTENT_MARKER_H_

#include <cmath>
#include <cstdint>

#include "sim/time.h"

namespace ecnsharp {

class PersistentMarker {
 public:
  explicit PersistentMarker(Time pst_interval)
      : pst_interval_(pst_interval) {}

  // Algorithm 1, ShouldPersistentMark: must be called for every departure
  // so the state machine advances.
  bool ShouldMark(bool above_target, Time now) {
    const bool detected = Detect(above_target, now);
    if (marking_state_) {
      if (!detected) {
        marking_state_ = false;
        return false;
      }
      if (now > marking_next_) {
        ++marking_count_;
        marking_next_ +=
            pst_interval_ *
            (1.0 / std::sqrt(static_cast<double>(marking_count_)));
        return true;
      }
      return false;
    }
    if (detected) {
      marking_state_ = true;
      marking_count_ = 1;
      marking_next_ = now + pst_interval_;
      return true;
    }
    return false;
  }

  // Changes the marking cadence in place (ECN# re-derivation after an RTT
  // distribution shift). The detection/marking state machine is reset: a new
  // interval means any in-progress observation window is no longer
  // comparable.
  void set_pst_interval(Time pst_interval) {
    pst_interval_ = pst_interval;
    marking_state_ = false;
    marking_count_ = 0;
    marking_next_ = Time::Zero();
    first_above_time_ = Time::Zero();
  }

  bool marking_state() const { return marking_state_; }
  std::uint32_t marking_count() const { return marking_count_; }
  Time marking_next() const { return marking_next_; }
  Time first_above_time() const { return first_above_time_; }
  Time pst_interval() const { return pst_interval_; }

 private:
  // Algorithm 1, IsPersistentQueueBuildups.
  bool Detect(bool above_target, Time now) {
    if (!above_target) {
      first_above_time_ = Time::Zero();
      return false;
    }
    if (first_above_time_.IsZero()) {
      first_above_time_ = now;
      return false;
    }
    return now > first_above_time_ + pst_interval_;
  }

  Time pst_interval_;
  bool marking_state_ = false;
  std::uint32_t marking_count_ = 0;
  Time marking_next_ = Time::Zero();
  Time first_above_time_ = Time::Zero();
};

}  // namespace ecnsharp

#endif  // ECNSHARP_CORE_PERSISTENT_MARKER_H_
