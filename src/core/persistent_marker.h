// The persistent-congestion state machine of Algorithm 1, factored out of
// the sojourn-time AQM so it can run over EITHER congestion signal —
// "by nature, ECN# works with both queue length and sojourn time" (§3.2).
//
// Feed it one observation per departing packet (is the signal at/above the
// persistent target?) and it answers whether that packet should be marked,
// implementing detection (one full interval above target) and conservative
// marking (one packet per interval, shrinking as interval/sqrt(count)).
//
// The mutable per-queue fields live in a PersistentMarkerState POD reached
// through a pointer: local to the marker by default, repointable into a
// switch chip's hot-state block (net/chip_hot_state.h) so every queue's
// marking state sits in the chip's dense SoA region.
#ifndef ECNSHARP_CORE_PERSISTENT_MARKER_H_
#define ECNSHARP_CORE_PERSISTENT_MARKER_H_

#include <cmath>
#include <cstdint>

#include "sim/time.h"

namespace ecnsharp {

// Algorithm 1's mutable state. Plain data; value-initialized = idle.
struct PersistentMarkerState {
  bool marking_state = false;
  std::uint32_t marking_count = 0;
  Time marking_next = Time::Zero();
  Time first_above_time = Time::Zero();
};

class PersistentMarker {
 public:
  explicit PersistentMarker(Time pst_interval)
      : pst_interval_(pst_interval) {}

  // Copies carry the state's current values but are always self-bound —
  // a copy never aliases the source's (possibly chip-owned) state row.
  PersistentMarker(const PersistentMarker& other)
      : pst_interval_(other.pst_interval_), local_(*other.state_) {}
  PersistentMarker& operator=(const PersistentMarker& other) {
    pst_interval_ = other.pst_interval_;
    *state_ = *other.state_;
    return *this;
  }

  // Repoints the state into externally owned storage (a chip hot block row),
  // carrying the current values over. `s` must outlive the marker.
  void BindState(PersistentMarkerState* s) {
    *s = *state_;
    state_ = s;
  }

  // Algorithm 1, ShouldPersistentMark: must be called for every departure
  // so the state machine advances.
  bool ShouldMark(bool above_target, Time now) {
    PersistentMarkerState& st = *state_;
    const bool detected = Detect(above_target, now);
    if (st.marking_state) {
      if (!detected) {
        st.marking_state = false;
        return false;
      }
      if (now > st.marking_next) {
        ++st.marking_count;
        st.marking_next +=
            pst_interval_ *
            (1.0 / std::sqrt(static_cast<double>(st.marking_count)));
        return true;
      }
      return false;
    }
    if (detected) {
      st.marking_state = true;
      st.marking_count = 1;
      st.marking_next = now + pst_interval_;
      return true;
    }
    return false;
  }

  // Changes the marking cadence in place (ECN# re-derivation after an RTT
  // distribution shift). The detection/marking state machine is reset: a new
  // interval means any in-progress observation window is no longer
  // comparable.
  void set_pst_interval(Time pst_interval) {
    pst_interval_ = pst_interval;
    *state_ = PersistentMarkerState{};
  }

  bool marking_state() const { return state_->marking_state; }
  std::uint32_t marking_count() const { return state_->marking_count; }
  Time marking_next() const { return state_->marking_next; }
  Time first_above_time() const { return state_->first_above_time; }
  Time pst_interval() const { return pst_interval_; }

 private:
  // Algorithm 1, IsPersistentQueueBuildups.
  bool Detect(bool above_target, Time now) {
    PersistentMarkerState& st = *state_;
    if (!above_target) {
      st.first_above_time = Time::Zero();
      return false;
    }
    if (st.first_above_time.IsZero()) {
      st.first_above_time = now;
      return false;
    }
    return now > st.first_above_time + pst_interval_;
  }

  Time pst_interval_;
  PersistentMarkerState local_;
  PersistentMarkerState* state_ = &local_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_CORE_PERSISTENT_MARKER_H_
