// The paper's threshold equations (§2.1, §3.2).
#ifndef ECNSHARP_CORE_EQUATIONS_H_
#define ECNSHARP_CORE_EQUATIONS_H_

#include <cstdint>

#include "sim/data_rate.h"
#include "sim/time.h"

namespace ecnsharp {

// Equation (1): ideal instantaneous queue-length marking threshold,
// K = lambda * C * RTT (bytes). `lambda` is the congestion-control ECN gain:
// 1.0 for classic ECN TCP (halves the window per mark), ~0.17 for DCTCP.
inline std::uint64_t IdealMarkingThresholdBytes(double lambda, DataRate c,
                                                Time rtt) {
  return static_cast<std::uint64_t>(lambda * static_cast<double>(c.bps()) *
                                    rtt.ToSeconds() / 8.0);
}

// Equation (2): the equivalent sojourn-time threshold, T = K / C =
// lambda * RTT. Independent of capacity, which is what makes sojourn-time
// AQMs compose with packet schedulers.
inline Time SojournMarkingThreshold(double lambda, Time rtt) {
  return rtt * lambda;
}

}  // namespace ecnsharp

#endif  // ECNSHARP_CORE_EQUATIONS_H_
