#include "core/ecn_sharp.h"

#include <algorithm>
#include <cmath>

#include "core/equations.h"

namespace ecnsharp {

EcnSharpConfig RuleOfThumbConfig(Time rtt_high_percentile, Time rtt_average,
                                 double lambda) {
  EcnSharpConfig cfg;
  cfg.ins_target = SojournMarkingThreshold(lambda, rtt_high_percentile);
  cfg.pst_interval = rtt_high_percentile;
  cfg.pst_target = rtt_average * lambda;
  return cfg;
}

void EcnSharpAqm::Reconfigure(const EcnSharpConfig& config) {
  config_ = config;
  marker_.set_pst_interval(config.pst_interval);
}

void EcnSharpAqm::OnDequeue(Packet& pkt, const QueueSnapshot& /*snapshot*/,
                            Time now, Time sojourn) {
  // The persistent-state machine must advance on every departure, so
  // evaluate it unconditionally before OR-ing the two conditions.
  const bool persistent =
      marker_.ShouldMark(sojourn >= config_.pst_target, now);
  // Marking is inclusive at the target, matching Algorithm 1's persistent
  // comparison and the Tofino pipeline's ternary range (src/tofino).
  const bool instantaneous = sojourn >= config_.ins_target;
  if (instantaneous) ++instantaneous_marks_;
  if (persistent && !instantaneous) ++persistent_marks_;
  if (instantaneous || persistent) pkt.MarkCe();
}

}  // namespace ecnsharp
