// The three concrete shared-buffer admission policies.
//
// - StaticSplitPolicy: each queue owns a fixed slice; no sharing. The
//   classic per-port split every topology used before this subsystem.
// - DynamicThresholdPolicy: Choudhury & Hahne DT — a queue may grow while
//   queue_bytes < alpha * (total - used), with an optional per-priority
//   alpha vector so e.g. a latency class can be held to a shallower share.
// - HeadroomDtPolicy: DT over the shared region plus a reserved per-queue
//   headroom, so a cold queue can always accept a burst even when a hot
//   loss-based flow has pushed pool occupancy to the DT equilibrium.
#ifndef ECNSHARP_BUFFER_POLICIES_H_
#define ECNSHARP_BUFFER_POLICIES_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "buffer/buffer_policy.h"

namespace ecnsharp {

class StaticSplitPolicy : public BufferPolicy {
 public:
  // Every registered queue owns `per_queue_bytes`; the pool total stays a
  // hard cap on top (relevant when more queues register than total/share).
  StaticSplitPolicy(std::uint64_t total_bytes, std::uint64_t per_queue_bytes)
      : BufferPolicy(total_bytes), per_queue_bytes_(per_queue_bytes) {}

  std::uint64_t LimitBytes(std::size_t /*queue*/) const override {
    return per_queue_bytes_;
  }
  const char* name() const override { return "static"; }
  std::uint64_t per_queue_bytes() const { return per_queue_bytes_; }

 protected:
  bool Admit(const QueueState& queue,
             std::uint32_t packet_bytes) const override {
    return queue.bytes + packet_bytes <= per_queue_bytes_;
  }

 private:
  std::uint64_t per_queue_bytes_;
};

class DynamicThresholdPolicy : public BufferPolicy {
 public:
  // `priority_alpha[p]` overrides `alpha` for queues registered with
  // priority p; priorities past the end of the vector fall back to the last
  // entry, and an empty vector means every queue uses `alpha`.
  DynamicThresholdPolicy(std::uint64_t total_bytes, double alpha,
                         std::vector<double> priority_alpha = {})
      : BufferPolicy(total_bytes),
        default_alpha_(alpha),
        priority_alpha_(std::move(priority_alpha)) {}

  std::uint64_t LimitBytes(std::size_t queue) const override {
    return DtLimit(queues().at(queue).priority);
  }
  const char* name() const override { return "dt"; }
  double default_alpha() const { return default_alpha_; }

  double AlphaFor(std::uint8_t priority) const {
    if (priority_alpha_.empty()) return default_alpha_;
    const std::size_t index =
        std::min<std::size_t>(priority, priority_alpha_.size() - 1);
    return priority_alpha_[index];
  }

 protected:
  bool Admit(const QueueState& queue,
             std::uint32_t packet_bytes) const override {
    return queue.bytes + packet_bytes <= DtLimit(queue.priority);
  }

  std::uint64_t DtLimit(std::uint8_t priority) const {
    return static_cast<std::uint64_t>(AlphaFor(priority) *
                                      static_cast<double>(free_bytes()));
  }

 private:
  double default_alpha_;
  std::vector<double> priority_alpha_;
};

class HeadroomDtPolicy : public DynamicThresholdPolicy {
 public:
  HeadroomDtPolicy(std::uint64_t total_bytes, double alpha,
                   std::uint64_t headroom_bytes,
                   std::vector<double> priority_alpha = {})
      : DynamicThresholdPolicy(total_bytes, alpha, std::move(priority_alpha)),
        headroom_bytes_(headroom_bytes) {}

  // Reports the guaranteed slice plus the current DT share of the region
  // above the summed headrooms.
  std::uint64_t LimitBytes(std::size_t queue) const override {
    const QueueState& state = queues().at(queue);
    return headroom_bytes_ + SharedLimit(state.priority);
  }
  const char* name() const override { return "dt-headroom"; }
  std::uint64_t headroom_bytes() const { return headroom_bytes_; }

 protected:
  bool Admit(const QueueState& queue,
             std::uint32_t packet_bytes) const override {
    // Within the guaranteed slice: always admitted (the base class still
    // enforces the hard pool total).
    if (queue.bytes + packet_bytes <= headroom_bytes_) return true;
    // Above it: DT over the shared region. Bytes that straddle the headroom
    // boundary count fully against the shared share — conservative, and it
    // keeps the limit monotone in occupancy.
    const std::uint64_t queue_shared =
        queue.bytes > headroom_bytes_ ? queue.bytes - headroom_bytes_ : 0;
    return queue_shared + packet_bytes <= SharedLimit(queue.priority);
  }

 private:
  std::uint64_t SharedLimit(std::uint8_t priority) const {
    const std::uint64_t reserved = headroom_bytes_ * queue_count();
    if (reserved >= total_bytes()) return 0;
    const std::uint64_t shared_total = total_bytes() - reserved;
    std::uint64_t shared_used = 0;
    for (const QueueState& state : queues()) {
      shared_used +=
          state.bytes > headroom_bytes_ ? state.bytes - headroom_bytes_ : 0;
    }
    const std::uint64_t shared_free =
        shared_total - std::min(shared_used, shared_total);
    return static_cast<std::uint64_t>(AlphaFor(priority) *
                                      static_cast<double>(shared_free));
  }

  std::uint64_t headroom_bytes_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_BUFFER_POLICIES_H_
