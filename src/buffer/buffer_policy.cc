#include "buffer/buffer_policy.h"

#include <string>

#include "sim/logging.h"

namespace ecnsharp {

BufferPolicy::BufferPolicy(std::uint64_t total_bytes)
    : total_bytes_(total_bytes) {}

std::size_t BufferPolicy::RegisterQueue(std::uint8_t priority) {
  QueueState state;
  state.priority = priority;
  queues_.push_back(state);
  return queues_.size() - 1;
}

bool BufferPolicy::TryReserve(std::size_t queue, std::uint32_t packet_bytes) {
  QueueState& state = queues_.at(queue);
  if (used_bytes_ + packet_bytes > total_bytes_) return false;
  if (!Admit(state, packet_bytes)) return false;
  used_bytes_ += packet_bytes;
  state.bytes += packet_bytes;
  return true;
}

void BufferPolicy::Release(std::size_t queue, std::uint32_t packet_bytes) {
  QueueState& state = queues_.at(queue);
  if (state.bytes < packet_bytes) {
    FatalError("buffer policy release underflow: queue " +
               std::to_string(queue) + " holds " +
               std::to_string(state.bytes) + " bytes, released " +
               std::to_string(packet_bytes));
  }
  state.bytes -= packet_bytes;
  SubUsed(packet_bytes);
}

void BufferPolicy::SubUsed(std::uint32_t packet_bytes) {
  if (used_bytes_ < packet_bytes) {
    FatalError("shared buffer release underflow: pool holds " +
               std::to_string(used_bytes_) + " bytes, released " +
               std::to_string(packet_bytes));
  }
  used_bytes_ -= packet_bytes;
}

std::uint64_t BufferPolicy::queue_bytes(std::size_t queue) const {
  return queues_.at(queue).bytes;
}

std::uint8_t BufferPolicy::queue_priority(std::size_t queue) const {
  return queues_.at(queue).priority;
}

}  // namespace ecnsharp
