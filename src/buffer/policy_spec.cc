#include "buffer/policy_spec.h"

#include <string>

#include "buffer/policies.h"
#include "sim/logging.h"

namespace ecnsharp {

namespace {
// One full-sized packet (buffer/ sits below net/, so no net/packet.h here).
constexpr std::uint64_t kDefaultHeadroomBytes = 1500;
}  // namespace

const char* BufferPolicyKindName(BufferPolicyKind kind) {
  switch (kind) {
    case BufferPolicyKind::kNone:
      return "none";
    case BufferPolicyKind::kStatic:
      return "static";
    case BufferPolicyKind::kDynamicThreshold:
      return "dt";
    case BufferPolicyKind::kDtHeadroom:
      return "dt-headroom";
  }
  return "?";
}

std::optional<BufferPolicyKind> ParseBufferPolicyKind(std::string_view name) {
  if (name == "none") return BufferPolicyKind::kNone;
  if (name == "static") return BufferPolicyKind::kStatic;
  if (name == "dt") return BufferPolicyKind::kDynamicThreshold;
  if (name == "dt-headroom") return BufferPolicyKind::kDtHeadroom;
  return std::nullopt;
}

std::unique_ptr<BufferPolicy> MakeBufferPolicy(const BufferPolicyConfig& config,
                                               std::size_t queue_count,
                                               std::uint64_t per_queue_fallback) {
  if (config.kind == BufferPolicyKind::kNone) return nullptr;
  const std::uint64_t total =
      config.total_bytes != 0
          ? config.total_bytes
          : per_queue_fallback * static_cast<std::uint64_t>(queue_count);
  if (total == 0) {
    FatalConfigError("buffer policy needs a non-zero pool (total_bytes or "
                     "per-port fallback)");
  }
  if (config.alpha <= 0.0) {
    FatalConfigError("buffer policy alpha must be > 0, got " +
                     std::to_string(config.alpha));
  }
  for (double alpha : config.priority_alpha) {
    if (alpha <= 0.0) {
      FatalConfigError("buffer policy per-priority alpha must be > 0, got " +
                       std::to_string(alpha));
    }
  }
  switch (config.kind) {
    case BufferPolicyKind::kStatic: {
      const std::uint64_t share =
          queue_count != 0 ? total / queue_count : total;
      return std::make_unique<StaticSplitPolicy>(total, share);
    }
    case BufferPolicyKind::kDynamicThreshold:
      return std::make_unique<DynamicThresholdPolicy>(total, config.alpha,
                                                      config.priority_alpha);
    case BufferPolicyKind::kDtHeadroom: {
      const std::uint64_t headroom = config.headroom_bytes != 0
                                         ? config.headroom_bytes
                                         : kDefaultHeadroomBytes;
      return std::make_unique<HeadroomDtPolicy>(total, config.alpha, headroom,
                                                config.priority_alpha);
    }
    case BufferPolicyKind::kNone:
      break;
  }
  return nullptr;
}

}  // namespace ecnsharp
