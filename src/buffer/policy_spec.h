// Configuration surface for shared-buffer policies: the kind/parameters
// struct carried on topology and experiment configs, name<->enum mapping for
// the CLI and JSON export, and the factory that builds a policy for one
// switch chip.
#ifndef ECNSHARP_BUFFER_POLICY_SPEC_H_
#define ECNSHARP_BUFFER_POLICY_SPEC_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "buffer/buffer_policy.h"

namespace ecnsharp {

// kNone keeps the legacy statically buffered ports (no pool at all) — the
// default, byte-identical to runs predating this subsystem.
enum class BufferPolicyKind { kNone, kStatic, kDynamicThreshold, kDtHeadroom };

struct BufferPolicyConfig {
  BufferPolicyKind kind = BufferPolicyKind::kNone;
  // Pool size per switch chip. 0 = queue_count * the topology's legacy
  // per-port buffer, i.e. the same silicon rearranged, not extra memory.
  std::uint64_t total_bytes = 0;
  double alpha = 1.0;
  // Per-priority alpha overrides (see DynamicThresholdPolicy::AlphaFor).
  std::vector<double> priority_alpha;
  // Guaranteed per-queue slice for kDtHeadroom; 0 = one full packet.
  std::uint64_t headroom_bytes = 0;
};

const char* BufferPolicyKindName(BufferPolicyKind kind);
// Accepts the CLI spellings {none, static, dt, dt-headroom}; nullopt on
// anything else.
std::optional<BufferPolicyKind> ParseBufferPolicyKind(std::string_view name);

// Builds the policy for one switch with `queue_count` egress queues.
// `per_queue_fallback` is the topology's legacy per-port buffer, used when
// config.total_bytes == 0 (and as the static split's slice size). Returns
// nullptr for kNone. Fails fast (exit 2) on non-positive alpha or a zero
// pool.
std::unique_ptr<BufferPolicy> MakeBufferPolicy(const BufferPolicyConfig& config,
                                               std::size_t queue_count,
                                               std::uint64_t per_queue_fallback);

}  // namespace ecnsharp

#endif  // ECNSHARP_BUFFER_POLICY_SPEC_H_
