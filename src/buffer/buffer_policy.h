// Pluggable shared-buffer admission policies.
//
// Real switching chips share one packet buffer across all egress queues of a
// chip, and the admission policy — static per-queue split, Dynamic Threshold
// (Choudhury & Hahne), or DT with reserved headroom — decides how loss-based
// and ECN-based congestion controllers split that buffer under contention.
// A BufferPolicy owns the accounting for one chip: queue discs register one
// logical queue per FIFO/class, then reserve on enqueue and release on
// dequeue/purge/AQM-veto. The base class is the single source of truth for
// both pool-level and per-queue byte counts; concrete policies only answer
// the admission question, so accounting invariants hold for every policy.
#ifndef ECNSHARP_BUFFER_BUFFER_POLICY_H_
#define ECNSHARP_BUFFER_BUFFER_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecnsharp {

class BufferPolicy {
 public:
  virtual ~BufferPolicy() = default;

  BufferPolicy(const BufferPolicy&) = delete;
  BufferPolicy& operator=(const BufferPolicy&) = delete;

  // Registers one queue drawing from this pool and returns its id. `priority`
  // selects per-priority parameters (e.g. the DT alpha) where the policy has
  // them; policies without per-priority state ignore it.
  std::size_t RegisterQueue(std::uint8_t priority);

  // Admission test for `queue` wanting to add `packet_bytes`. On success the
  // bytes are reserved against both the pool and the queue.
  bool TryReserve(std::size_t queue, std::uint32_t packet_bytes);

  // Returns bytes previously reserved by `queue`. Releasing more than the
  // queue (or the pool) holds is an accounting bug — fails fast with exit 2.
  void Release(std::size_t queue, std::uint32_t packet_bytes);

  // Current admission limit for `queue`: the most bytes it could hold right
  // now (policies with occupancy-dependent limits recompute per call).
  virtual std::uint64_t LimitBytes(std::size_t queue) const = 0;

  virtual const char* name() const = 0;

  std::uint64_t used_bytes() const { return used_bytes_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::size_t queue_count() const { return queues_.size(); }
  std::uint64_t queue_bytes(std::size_t queue) const;
  std::uint8_t queue_priority(std::size_t queue) const;

 protected:
  struct QueueState {
    std::uint8_t priority = 0;
    std::uint64_t bytes = 0;
  };

  explicit BufferPolicy(std::uint64_t total_bytes);

  // Policy-specific admission decision. The base TryReserve has already
  // enforced the hard pool cap (`used + packet <= total`).
  virtual bool Admit(const QueueState& queue,
                     std::uint32_t packet_bytes) const = 0;

  const std::vector<QueueState>& queues() const { return queues_; }
  std::uint64_t free_bytes() const { return total_bytes_ - used_bytes_; }

  // Pool-level accounting for legacy callers that track their own per-queue
  // bytes (SharedBufferPool's anonymous-queue interface). SubUsed carries the
  // same fail-fast underflow guard as Release.
  void AddUsed(std::uint32_t packet_bytes) { used_bytes_ += packet_bytes; }
  void SubUsed(std::uint32_t packet_bytes);

 private:
  std::uint64_t total_bytes_;
  std::uint64_t used_bytes_ = 0;
  std::vector<QueueState> queues_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_BUFFER_BUFFER_POLICY_H_
