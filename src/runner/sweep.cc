#include "runner/sweep.h"

#include "harness/env.h"

namespace ecnsharp::runner {

std::size_t DefaultJobs() {
  const std::int64_t jobs = EnvInt("ECNSHARP_JOBS", 1);
  return jobs < 1 ? 1 : static_cast<std::size_t>(jobs);
}

std::vector<JobResult> RunJobs(const std::vector<JobSpec>& specs,
                               const SweepOptions& options) {
  std::size_t jobs = options.jobs == 0 ? DefaultJobs() : options.jobs;
  if (jobs > specs.size()) jobs = specs.empty() ? 1 : specs.size();

  std::vector<std::optional<JobResult>> slots(specs.size());
  ProgressReporter progress(
      options.label, specs.size(),
      options.progress && jobs > 1 && specs.size() > 1);
  {
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      pool.Submit([&specs, &slots, &progress, i] {
        JobResult result = RunJob(specs[i], i);
        progress.JobDone(result.name, result.wall_seconds);
        slots[i] = std::move(result);
      });
    }
    pool.Wait();
  }

  std::vector<JobResult> results;
  results.reserve(specs.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace ecnsharp::runner
