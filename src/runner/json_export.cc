#include "runner/json_export.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "harness/config_json.h"
#include "harness/env.h"

namespace ecnsharp::runner {

Json SweepToJson(const std::string& sweep_name,
                 const std::vector<JobSpec>& specs,
                 const std::vector<JobResult>& results) {
  Json jobs = Json::Array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& result = results[i];
    Json entry = Json::Object();
    entry.Set("name", Json::Str(result.name));
    if (i < specs.size()) {
      entry.Set("config",
                std::visit([](const auto& config) { return ToJson(config); },
                           specs[i].config));
    }
    entry.Set("result",
              std::visit([](const auto& r) { return ToJson(r); },
                         result.result));
    jobs.Push(std::move(entry));
  }
  return Json::Object()
      .Set("schema_version", Json::Int(1))
      .Set("sweep", Json::Str(sweep_name))
      .Set("jobs", std::move(jobs));
}

bool WriteJsonFile(const std::string& path, const Json& doc) {
  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) return false;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << doc.Dump();
  return static_cast<bool>(out);
}

bool WriteSweepJson(const std::string& path, const std::string& sweep_name,
                    const std::vector<JobSpec>& specs,
                    const std::vector<JobResult>& results) {
  return WriteJsonFile(path, SweepToJson(sweep_name, specs, results));
}

std::string ExportSweep(const std::string& sweep_name,
                        const std::vector<JobSpec>& specs,
                        const std::vector<JobResult>& results) {
  if (EnvFlag("ECNSHARP_NO_JSON")) return "";
  const char* dir_env = std::getenv("ECNSHARP_RESULTS_DIR");
  const std::string dir =
      (dir_env == nullptr || *dir_env == '\0') ? "results" : dir_env;
  const std::string path = dir + "/" + sweep_name + ".json";
  if (!WriteSweepJson(path, sweep_name, specs, results)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return "";
  }
  return path;
}

}  // namespace ecnsharp::runner
