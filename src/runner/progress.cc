#include "runner/progress.h"

#include <cstdio>
#include <utility>

namespace ecnsharp::runner {

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   bool enabled)
    : label_(std::move(label)), total_(total), enabled_(enabled) {}

void ProgressReporter::JobDone(const std::string& name, double wall_seconds) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // Crude but serviceable ETA: completed jobs predict the remaining ones.
  // With heterogeneous job sizes it converges as the sweep progresses.
  const double eta =
      done_ == 0 ? 0.0
                 : elapsed / static_cast<double>(done_) *
                       static_cast<double>(total_ - done_);
  std::fprintf(stderr, "[%s] %zu/%zu jobs done (%s, %.1fs), ETA ~%.0fs\n",
               label_.c_str(), done_, total_, name.c_str(), wall_seconds,
               eta);
  std::fflush(stderr);
}

}  // namespace ecnsharp::runner
