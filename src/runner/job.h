// JobSpec/JobResult: one simulation run as a schedulable unit of work.
//
// A JobSpec is a named, fully-specified experiment configuration for one of
// the five experiment families (dumbbell, leaf-spine, fat-tree, inter-DC
// composed, incast).
// Each job
// carries its own seed inside the config, so a job's result depends only on
// its spec — never on which worker thread ran it or in what order. That is
// the property that makes sweeps embarrassingly parallel and lets the
// collector promise byte-identical output for any --jobs value.
#ifndef ECNSHARP_RUNNER_JOB_H_
#define ECNSHARP_RUNNER_JOB_H_

#include <cstddef>
#include <string>
#include <variant>

#include "harness/experiment.h"

namespace ecnsharp::runner {

struct JobSpec {
  // Stable identifier within a sweep; keys the JSON export.
  std::string name;
  std::variant<DumbbellExperimentConfig, LeafSpineExperimentConfig,
               FatTreeExperimentConfig, InterDcExperimentConfig,
               IncastExperimentConfig>
      config;
};

struct JobResult {
  std::size_t index = 0;  // position of the spec in the submitted list
  std::string name;
  std::variant<ExperimentResult, IncastResult> result;
  // Wall-clock seconds the job took (progress/ETA only; never exported).
  double wall_seconds = 0.0;
};

// Runs the experiment described by `spec` synchronously on the calling
// thread and returns its result (with `index` echoed back).
JobResult RunJob(const JobSpec& spec, std::size_t index);

// Typed accessors: dumbbell, leaf-spine, fat-tree and inter-DC jobs yield an
// ExperimentResult, incast jobs an IncastResult. Calling the wrong one aborts (programming
// error — the caller built the spec and knows its family).
const ExperimentResult& FctResult(const JobResult& result);
const IncastResult& IncastResultOf(const JobResult& result);

}  // namespace ecnsharp::runner

#endif  // ECNSHARP_RUNNER_JOB_H_
