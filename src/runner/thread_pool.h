// Fixed-size worker pool for running independent simulation jobs.
//
// Deliberately minimal: a mutex/condvar task queue drained by N
// std::jthread workers, no work stealing, no priorities. Simulation jobs
// are seconds long, so queue contention is irrelevant — what matters is
// that submission order is stable and Wait() gives a clean barrier for the
// ordered result collector built on top (see sweep.h).
#ifndef ECNSHARP_RUNNER_THREAD_POOL_H_
#define ECNSHARP_RUNNER_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecnsharp::runner {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  // Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw; exceptions escaping a task
  // terminate the process (same contract as std::thread).
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished executing.
  void Wait();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace ecnsharp::runner

#endif  // ECNSHARP_RUNNER_THREAD_POOL_H_
