#include "runner/job.h"

#include <chrono>

namespace ecnsharp::runner {

JobResult RunJob(const JobSpec& spec, std::size_t index) {
  JobResult result;
  result.index = index;
  result.name = spec.name;
  const auto start = std::chrono::steady_clock::now();
  result.result = std::visit(
      [](const auto& config)
          -> std::variant<ExperimentResult, IncastResult> {
        using Config = std::decay_t<decltype(config)>;
        if constexpr (std::is_same_v<Config, DumbbellExperimentConfig>) {
          return RunDumbbell(config);
        } else if constexpr (std::is_same_v<Config,
                                            LeafSpineExperimentConfig>) {
          return RunLeafSpine(config);
        } else if constexpr (std::is_same_v<Config, FatTreeExperimentConfig>) {
          return RunFatTree(config);
        } else if constexpr (std::is_same_v<Config, InterDcExperimentConfig>) {
          return RunInterDc(config);
        } else {
          return RunIncast(config);
        }
      },
      spec.config);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

const ExperimentResult& FctResult(const JobResult& result) {
  return std::get<ExperimentResult>(result.result);
}

const IncastResult& IncastResultOf(const JobResult& result) {
  return std::get<IncastResult>(result.result);
}

}  // namespace ecnsharp::runner
