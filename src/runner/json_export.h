// Structured JSON export of sweep results.
//
// Every sweep run through bench_common's RunSweep (or the CLI's --sweep)
// lands in results/<sweep>.json next to the human-readable tables, so
// plotting/regression tooling never has to scrape stdout. Schema (version
// 1):
//
//   {
//     "schema_version": 1,
//     "sweep": "<name>",
//     "jobs": [
//       { "name": "<job name>",
//         "config": { topology, scheme, workload, load, seed, ..., params },
//         "result": { FCT summaries / incast metrics, queue stats } },
//       ...
//     ]
//   }
//
// Config and result field sets are defined in harness/config_json.h. Dumps
// contain no wall-clock data: repeating a sweep with any --jobs value
// yields a byte-identical file.
#ifndef ECNSHARP_RUNNER_JSON_EXPORT_H_
#define ECNSHARP_RUNNER_JSON_EXPORT_H_

#include <string>
#include <vector>

#include "harness/json.h"
#include "runner/job.h"

namespace ecnsharp::runner {

// Writes any JSON document to `path`, creating parent directories. Returns
// false on I/O error. Used by perf benches (BENCH_core.json) as well as the
// sweep exporters below.
bool WriteJsonFile(const std::string& path, const Json& doc);

// Builds the schema-version-1 document for a completed sweep. `specs` and
// `results` must be parallel arrays (as produced by RunJobs).
Json SweepToJson(const std::string& sweep_name,
                 const std::vector<JobSpec>& specs,
                 const std::vector<JobResult>& results);

// Writes the document to `path`, creating parent directories. Returns false
// on I/O error.
bool WriteSweepJson(const std::string& path, const std::string& sweep_name,
                    const std::vector<JobSpec>& specs,
                    const std::vector<JobResult>& results);

// Convenience used by the benches: writes <dir>/<sweep_name>.json where
// <dir> is ECNSHARP_RESULTS_DIR (default "results"). Setting
// ECNSHARP_NO_JSON=1 disables the export. Returns the path written, or an
// empty string when disabled or on error (a warning goes to stderr on
// error).
std::string ExportSweep(const std::string& sweep_name,
                        const std::vector<JobSpec>& specs,
                        const std::vector<JobResult>& results);

}  // namespace ecnsharp::runner

#endif  // ECNSHARP_RUNNER_JSON_EXPORT_H_
