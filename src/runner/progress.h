// Thread-safe sweep progress reporting on stderr.
//
// Progress goes to stderr on purpose: stdout carries the figure tables,
// which must stay byte-identical regardless of --jobs, while stderr timing
// naturally varies run to run.
#ifndef ECNSHARP_RUNNER_PROGRESS_H_
#define ECNSHARP_RUNNER_PROGRESS_H_

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace ecnsharp::runner {

class ProgressReporter {
 public:
  // `label` prefixes every line; `total` is the job count; `enabled` false
  // silences all output (used when a sweep is trivially small or the caller
  // wants quiet runs).
  ProgressReporter(std::string label, std::size_t total, bool enabled);

  // Records one finished job and prints "label: done/total jobs (name, Xs),
  // ETA ~Ys". Safe to call concurrently from worker threads.
  void JobDone(const std::string& name, double wall_seconds);

 private:
  const std::string label_;
  const std::size_t total_;
  const bool enabled_;
  std::mutex mu_;
  std::size_t done_ = 0;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace ecnsharp::runner

#endif  // ECNSHARP_RUNNER_PROGRESS_H_
