// Parallel sweep execution with an ordered result collector.
//
// RunJobs() fans a list of JobSpecs out over a fixed ThreadPool and returns
// results ordered by submission index, so downstream table/JSON code is
// oblivious to scheduling: `--jobs=1` and `--jobs=8` produce byte-identical
// output. ParallelMap() is the same machinery for experiments that do not
// fit the JobSpec families (custom simulator setups like the DWRR or DCQCN
// benches) — any index-addressable function of `i` with a copyable result.
#ifndef ECNSHARP_RUNNER_SWEEP_H_
#define ECNSHARP_RUNNER_SWEEP_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runner/job.h"
#include "runner/progress.h"
#include "runner/thread_pool.h"

namespace ecnsharp::runner {

struct SweepOptions {
  // Worker threads; 0 means "use DefaultJobs()".
  std::size_t jobs = 0;
  // Progress lines on stderr (suppressed automatically for 1-job sweeps).
  bool progress = true;
  // Label used in progress lines.
  std::string label = "sweep";
};

// Worker-count default: ECNSHARP_JOBS when set (clamped to >= 1), else 1.
// Sequential by default keeps single-run benches free of thread overhead
// and makes parallelism an explicit opt-in.
std::size_t DefaultJobs();

// Executes every spec and returns results in spec order.
std::vector<JobResult> RunJobs(const std::vector<JobSpec>& specs,
                               const SweepOptions& options = {});

// Runs fn(0..count-1) across `jobs` workers and returns results in index
// order. `fn` must be safe to call concurrently from multiple threads —
// true for any self-contained Simulator experiment.
template <typename Fn>
auto ParallelMap(std::size_t count, Fn fn, SweepOptions options = {})
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::size_t jobs = options.jobs == 0 ? DefaultJobs() : options.jobs;
  if (jobs > count) jobs = count == 0 ? 1 : count;
  std::vector<std::optional<Result>> slots(count);
  ProgressReporter progress(options.label, count,
                            options.progress && jobs > 1 && count > 1);
  {
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < count; ++i) {
      pool.Submit([&slots, &fn, &progress, i] {
        slots[i].emplace(fn(i));
        progress.JobDone(std::to_string(i), 0.0);
      });
    }
    pool.Wait();
  }
  std::vector<Result> results;
  results.reserve(count);
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace ecnsharp::runner

#endif  // ECNSHARP_RUNNER_SWEEP_H_
