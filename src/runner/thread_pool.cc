#include "runner/thread_pool.h"

#include <utility>

namespace ecnsharp::runner {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  // std::jthread joins on destruction; workers drain the queue first so a
  // pool can be destroyed right after submitting fire-and-forget work.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ecnsharp::runner
