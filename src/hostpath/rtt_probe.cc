#include "hostpath/rtt_probe.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "net/delay_line.h"
#include "net/host.h"
#include "net/switch_node.h"
#include "net/packet_pool.h"
#include "sched/fifo_queue_disc.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/percentile.h"

namespace ecnsharp {

namespace {

constexpr std::uint32_t kRequestBytes = 100;

// Issues sequential request/response RPCs and records RTT samples.
class RpcClient : public PacketSink {
 public:
  RpcClient(Host& host, std::uint32_t server, std::size_t requests)
      : host_(host), server_(server), remaining_(requests) {}

  // A no-op when zero requests were asked for — SendRequest must never run
  // with remaining_ == 0 or the counter would wrap and the ping-pong would
  // never terminate.
  void Start() {
    if (remaining_ > 0) SendRequest();
  }

  void HandlePacket(std::unique_ptr<Packet> /*response*/) override {
    rtts_us_.push_back((host_.sim().Now() - sent_at_).ToMicroseconds());
    if (remaining_ > 0) SendRequest();
  }

  const std::vector<double>& rtts_us() const { return rtts_us_; }

 private:
  void SendRequest() {
    --remaining_;
    sent_at_ = host_.sim().Now();
    auto pkt = NewPacket();
    pkt->flow = FlowKey{host_.address(), server_, 1000, 80};
    pkt->size_bytes = kRequestBytes;
    pkt->sent_time = sent_at_;
    host_.SendPacket(std::move(pkt));
  }

  Host& host_;
  std::uint32_t server_;
  std::size_t remaining_;
  Time sent_at_ = Time::Zero();
  std::vector<double> rtts_us_;
};

// Reflects every request back to its sender.
class RpcServer : public PacketSink {
 public:
  explicit RpcServer(Host& host) : host_(host) {}

  void HandlePacket(std::unique_ptr<Packet> request) override {
    auto response = NewPacket();
    response->flow = request->flow.Reversed();
    response->size_bytes = kRequestBytes;
    host_.SendPacket(std::move(response));
  }

 private:
  Host& host_;
};

// Builds a chain of stochastic DelayLines ending at `sink`; returns the head.
PacketSink& BuildChain(Simulator& sim, const std::vector<StageSpec>& stages,
                       PacketSink& sink, Rng& seed_source,
                       std::vector<std::unique_ptr<DelayLine>>& storage) {
  PacketSink* next = &sink;
  // Build back-to-front so each stage forwards to the next.
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    const StageSpec spec = *it;
    auto rng = std::make_shared<Rng>(seed_source.Fork());
    storage.push_back(std::make_unique<DelayLine>(
        sim, *next, [spec, rng]() -> Time {
          if (spec.mean_us <= 0.0) return Time::Zero();
          return Time::FromMicroseconds(
              rng->LogNormal(spec.mean_us, spec.std_us));
        }));
    next = storage.back().get();
  }
  return *next;
}

}  // namespace

std::vector<RttCaseSpec> Table1Cases() {
  // Per-direction stage parameters. The stack and hypervisor process both
  // directions (half of their RTT contribution each way); the SLB only the
  // inbound request (LVS direct-server-return). "load" models the extra
  // service time of a busy server stack.
  const StageSpec stack{"stack", 19.65, 8.6};
  const StageSpec slb{"slb", 24.6, 13.6};
  const StageSpec hyper{"hypervisor", 15.0, 8.0};
  const StageSpec load{"load", 3.15, 2.0};

  return {
      {"stack", {stack}, {stack}},
      {"stack+slb", {stack, slb}, {stack}},
      {"stack+hypervisor", {stack, hyper}, {stack, hyper}},
      {"stack+slb+hypervisor", {stack, slb, hyper}, {stack, hyper}},
      {"stack(load)+slb+hypervisor",
       {stack, load, slb, hyper},
       {stack, load, hyper}},
  };
}

const char* RttProbeStatusName(RttProbeStatus status) {
  switch (status) {
    case RttProbeStatus::kOk:
      return "ok";
    case RttProbeStatus::kNoSamples:
      return "no-samples";
    case RttProbeStatus::kInvalidSpec:
      return "invalid-spec";
  }
  return "?";
}

RttStats ComputeRttStats(std::vector<double> rtts_us) {
  const SampleSummary s = SummarizeSamples(std::move(rtts_us));
  RttStats stats;
  stats.status = s.count == 0 ? RttProbeStatus::kNoSamples : RttProbeStatus::kOk;
  stats.samples = s.count;
  stats.mean_us = s.mean;
  stats.std_us = s.stddev;
  stats.p90_us = s.p90;
  stats.p99_us = s.p99;
  stats.p90_rank = NearestRank(s.count, 90.0);
  stats.p99_rank = NearestRank(s.count, 99.0);
  return stats;
}

RttStats RunRttProbe(const RttCaseSpec& spec, std::size_t requests,
                     std::uint64_t seed) {
  // Reject malformed stage parameters up front: a negative mean or standard
  // deviation would feed NaNs into the log-normal sampler.
  for (const auto* dir : {&spec.request_stages, &spec.response_stages}) {
    for (const StageSpec& stage : *dir) {
      if (stage.mean_us < 0.0 || stage.std_us < 0.0) {
        RttStats stats;
        stats.status = RttProbeStatus::kInvalidSpec;
        return stats;
      }
    }
  }

  Simulator sim;
  Rng rng(seed);

  // 100G links, sub-microsecond wire path: processing dominates, as in the
  // paper's testbed.
  const DataRate rate = DataRate::GigabitsPerSecond(100);
  const Time wire_delay = Time::Nanoseconds(200);
  const auto make_queue = [] {
    return std::make_unique<FifoQueueDisc>(16ull * 1024 * 1024, nullptr);
  };

  SwitchNode sw(sim, "probe-switch");
  Host client(sim, 0);
  Host server(sim, 1);

  for (Host* host : {&client, &server}) {
    auto nic = std::make_unique<EgressPort>(sim, rate, wire_delay,
                                            make_queue());
    nic->ConnectTo(sw);
    host->AttachNic(std::move(nic));
  }

  // Delivery chains: switch egress -> processing stages -> host.
  std::vector<std::unique_ptr<DelayLine>> stages;
  PacketSink& to_server = BuildChain(sim, spec.request_stages, server, rng,
                                     stages);
  PacketSink& to_client = BuildChain(sim, spec.response_stages, client, rng,
                                     stages);

  auto server_port = std::make_unique<EgressPort>(sim, rate, wire_delay,
                                                  make_queue());
  server_port->ConnectTo(to_server);
  sw.AddRoute(server.address(), sw.AddPort(std::move(server_port)));

  auto client_port = std::make_unique<EgressPort>(sim, rate, wire_delay,
                                                  make_queue());
  client_port->ConnectTo(to_client);
  sw.AddRoute(client.address(), sw.AddPort(std::move(client_port)));

  RpcClient rpc_client(client, server.address(), requests);
  RpcServer rpc_server(server);
  client.SetProtocolHandler(rpc_client);
  server.SetProtocolHandler(rpc_server);

  rpc_client.Start();
  sim.Run();

  return ComputeRttStats(rpc_client.rtts_us());
}

}  // namespace ecnsharp
