// §2.2 reproduction: RTT variation caused by host-path processing
// components.
//
// The paper measures request/response RTTs between two hosts while inserting
// processing components (layer-4 software load balancer, hypervisor, loaded
// network stack) on the path. We model each component as a stochastic
// DelayLine stage (log-normal service time calibrated to the per-component
// deltas of Table 1) and run a 1-byte RPC ping-pong through the full
// simulator data path (hosts, 100G links, switch).
//
// The SLB stage sits only on the request path: like the paper's LVS setup,
// responses return directly to the client (direct server return).
#ifndef ECNSHARP_HOSTPATH_RTT_PROBE_H_
#define ECNSHARP_HOSTPATH_RTT_PROBE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ecnsharp {

// A variable-latency processing component, log-normal with the given mean
// and standard deviation (microseconds).
struct StageSpec {
  std::string name;
  double mean_us = 0.0;
  double std_us = 0.0;
};

struct RttCaseSpec {
  std::string name;
  std::vector<StageSpec> request_stages;   // client -> server direction
  std::vector<StageSpec> response_stages;  // server -> client direction
};

// The five component combinations of Table 1 / Fig. 1, calibrated so each
// component's marginal contribution matches the paper's deltas:
// stack ~39 us RTT, +SLB ~25 us, +hypervisor ~30 us, +load ~6 us.
std::vector<RttCaseSpec> Table1Cases();

// Degenerate-input reporting: every RttStats carries a status instead of
// silently producing garbage (or, with requests == 0, underflowing a
// counter and looping forever, which is what the unguarded client used to
// do).
enum class RttProbeStatus : std::uint8_t {
  kOk,
  kNoSamples,    // zero requests, or no responses arrived
  kInvalidSpec,  // a stage with negative mean/std delay
};

const char* RttProbeStatusName(RttProbeStatus status);

struct RttStats {
  RttProbeStatus status = RttProbeStatus::kNoSamples;
  std::size_t samples = 0;
  double mean_us = 0.0;
  double std_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  // The 1-based order statistics p90_us/p99_us refer to (nearest-rank:
  // clamp(ceil(p/100 * samples), 1, samples); 0 with no samples). Lets a
  // consumer compare percentiles like-for-like against an estimator whose
  // quantiles come from a different sample count — e.g. the sketch-based
  // estimator, which reports its own window sample count.
  std::size_t p90_rank = 0;
  std::size_t p99_rank = 0;
};

// Summarizes raw RTT samples (microseconds). Empty input yields zeroed
// stats with status kNoSamples. The ECN# re-estimation path uses this to
// re-derive thresholds from a fresh sample set mid-run.
RttStats ComputeRttStats(std::vector<double> rtts_us);

// Runs `requests` sequential 1-byte RPCs through the simulated path and
// returns the RTT statistics (a new request is issued when the previous
// response arrives, as in the paper's ApacheBench methodology).
RttStats RunRttProbe(const RttCaseSpec& spec, std::size_t requests,
                     std::uint64_t seed);

}  // namespace ecnsharp

#endif  // ECNSHARP_HOSTPATH_RTT_PROBE_H_
