#include "topo/rtt_variation.h"

#include <algorithm>

namespace ecnsharp {

namespace {
struct MixtureSpec {
  double low_weight;  // probability of the fast-path component
  double low_mean;    // fractions of the extra-delay range
  double low_std;
  double high_mean;
  double high_std;
};

// Calibrated so that over the paper's [70, 210] us testbed range the
// average RTT lands near ~86 us and the 90th percentile near ~200 us —
// reproducing the paper's threshold pair (DCTCP-RED-AVG ~80-100 KB,
// DCTCP-RED-Tail ~250 KB at 10 Gbps).
constexpr MixtureSpec kTestbedSpec{0.85, 0.02, 0.02, 0.95, 0.04};
constexpr MixtureSpec kLeafSpineSpec{0.78, 0.20, 0.12, 0.90, 0.06};

const MixtureSpec& SpecFor(RttProfile profile) {
  return profile == RttProfile::kTestbed ? kTestbedSpec : kLeafSpineSpec;
}

double SampleFraction(Rng& rng, const MixtureSpec& spec) {
  double f = 0.0;
  if (rng.Uniform() < spec.low_weight) {
    f = rng.Normal(spec.low_mean, spec.low_std);
  } else {
    f = rng.Normal(spec.high_mean, spec.high_std);
  }
  return std::clamp(f, 0.0, 1.0);
}

// Sorted empirical fractions of each mixture from a large fixed-seed draw.
const std::vector<double>& MixtureFractions(RttProfile profile) {
  static const std::vector<double> testbed = [] {
    constexpr std::size_t kDraws = 20000;
    Rng rng(0xECE5);
    std::vector<double> out;
    out.reserve(kDraws);
    for (std::size_t i = 0; i < kDraws; ++i) {
      out.push_back(SampleFraction(rng, kTestbedSpec));
    }
    std::sort(out.begin(), out.end());
    return out;
  }();
  static const std::vector<double> leaf_spine = [] {
    constexpr std::size_t kDraws = 20000;
    Rng rng(0xECE5);
    std::vector<double> out;
    out.reserve(kDraws);
    for (std::size_t i = 0; i < kDraws; ++i) {
      out.push_back(SampleFraction(rng, kLeafSpineSpec));
    }
    std::sort(out.begin(), out.end());
    return out;
  }();
  return profile == RttProfile::kTestbed ? testbed : leaf_spine;
}
}  // namespace

Time SampleRttExtra(Rng& rng, Time max_extra, RttProfile profile) {
  return max_extra * SampleFraction(rng, SpecFor(profile));
}

std::vector<Time> RttExtraQuantiles(std::size_t n, Time max_extra,
                                    RttProfile profile) {
  const std::vector<double>& fractions = MixtureFractions(profile);
  std::vector<Time> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const auto idx = static_cast<std::size_t>(p * fractions.size());
    out.push_back(max_extra * fractions[std::min(idx, fractions.size() - 1)]);
  }
  return out;
}

Time RttExtraMean(Time max_extra, RttProfile profile) {
  const std::vector<double>& fractions = MixtureFractions(profile);
  double sum = 0.0;
  for (const double f : fractions) sum += f;
  return max_extra * (sum / static_cast<double>(fractions.size()));
}

Time RttExtraPercentile(Time max_extra, double p, RttProfile profile) {
  const std::vector<double>& fractions = MixtureFractions(profile);
  const auto idx = static_cast<std::size_t>(p / 100.0 * fractions.size());
  return max_extra * fractions[std::min(idx, fractions.size() - 1)];
}

}  // namespace ecnsharp
