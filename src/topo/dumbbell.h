// Dumbbell (N senders -> 1 switch -> 1 receiver) — the paper's testbed shape
// (§5.2): 8 servers on one Tofino switch, 7 senders and 1 receiver, with the
// AQM under test on the bottleneck egress port toward the receiver.
#ifndef ECNSHARP_TOPO_DUMBBELL_H_
#define ECNSHARP_TOPO_DUMBBELL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "buffer/policy_spec.h"
#include "net/host.h"
#include "net/switch_node.h"
#include "sim/data_rate.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "transport/tcp_stack.h"

namespace ecnsharp {

struct DumbbellConfig {
  std::size_t senders = 7;
  DataRate rate = DataRate::GigabitsPerSecond(10);
  // Nominal base RTT without netem extras; per-link propagation delay is
  // base_rtt/4 (two hops each way), so the actual base RTT is this plus
  // ~2.5 us of serialization and forwarding.
  Time base_rtt = Time::FromMicroseconds(70);
  // Switch egress buffer per port.
  std::uint64_t buffer_bytes = 600ull * kFullPacketBytes;
  // Host NIC queue (never the intended bottleneck).
  std::uint64_t host_buffer_bytes = 64ull * 1024 * 1024;
  TcpConfig tcp;
  // Optional shared-buffer policy for the switch: all switch egress ports
  // (senders' ACK path included) draw from one pool instead of static
  // per-port buffers. kNone keeps the legacy static split byte-identically.
  BufferPolicyConfig buffer_policy;
};

class Dumbbell : public Topology {
 public:
  // `bottleneck_disc` is installed on the switch port toward the receiver
  // (the queue every figure of the paper instruments). The ports toward
  // senders (ACK path) are plain drop-tail. This form predates buffer
  // policies and requires buffer_policy.kind == kNone.
  Dumbbell(Simulator& sim, const DumbbellConfig& config,
           std::unique_ptr<QueueDisc> bottleneck_disc);

  // Buffer-policy-aware form: `make_disc` builds the bottleneck disc, given
  // the switch's shared pool (null when no policy is configured, in which
  // case behaviour is identical to the legacy form).
  Dumbbell(Simulator& sim, const DumbbellConfig& config,
           const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
               make_disc);

  std::size_t sender_count() const { return config_.senders; }
  Host& sender_host(std::size_t i) { return *hosts_.at(i); }
  TcpStack& sender_stack(std::size_t i) { return *stacks_.at(i); }
  Host& receiver_host() { return *hosts_.back(); }
  TcpStack& receiver_stack() { return *stacks_.back(); }
  std::uint32_t receiver_address() const;
  SwitchNode& switch_node() { return *switch_; }
  EgressPort& bottleneck_port() { return *bottleneck_port_; }

  // Installs per-sender netem extras (inflating each sender's base RTT).
  void SetSenderExtraDelays(const std::vector<Time>& extras);

  // --- Topology interface: the senders are the flow-originating hosts. ---
  std::size_t host_count() const override { return config_.senders; }
  Host& host(std::size_t i) override { return sender_host(i); }
  TcpStack& stack(std::size_t i) override { return sender_stack(i); }
  Time HostBaseRtt(std::size_t i) const override {
    return config_.base_rtt + hosts_.at(i)->extra_egress_delay();
  }
  DataRate ReferenceCapacity() const override { return config_.rate; }
  std::pair<TcpStack*, std::uint32_t> SampleFlowPair(Rng& rng) override;
  std::uint32_t IncastTarget() const override { return receiver_address(); }
  TcpStack& IncastSender(std::size_t k) override {
    return sender_stack(k % config_.senders);
  }
  // Target ids: -1 = bottleneck (receiver-facing switch port),
  // 0..senders-1 = that sender's NIC.
  EgressPort* ResolvePort(int target) override;
  std::size_t bottleneck_count() const override { return 1; }
  EgressPort& bottleneck(std::size_t i) override;
  std::uint64_t TotalLinkDownDrops() const override;
  std::size_t buffer_pool_count() const override { return pool_ ? 1 : 0; }
  BufferPolicy* buffer_pool(std::size_t i) override {
    return i == 0 ? pool_.get() : nullptr;
  }

 private:
  void Build(const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
                 make_disc);

  Simulator& sim_;
  DumbbellConfig config_;
  std::unique_ptr<BufferPolicy> pool_;  // null when no policy configured
  std::unique_ptr<SwitchNode> switch_;
  std::vector<std::unique_ptr<Host>> hosts_;   // senders..., receiver
  std::vector<std::unique_ptr<TcpStack>> stacks_;
  EgressPort* bottleneck_port_ = nullptr;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TOPO_DUMBBELL_H_
