#include "topo/topology.h"

namespace ecnsharp {

void Topology::AppendRttSamplesUs(std::vector<double>& rtts_us) const {
  for (std::size_t i = 0; i < host_count(); ++i) {
    rtts_us.push_back(HostBaseRtt(i).ToMicroseconds());
  }
}

std::string Topology::DescribePortTargets() const {
  return "-1 = primary bottleneck, 0.." + std::to_string(host_count() - 1) +
         " = host NICs";
}

QueueDiscStats Topology::TotalBottleneckStats() {
  QueueDiscStats total;
  for (std::size_t i = 0; i < bottleneck_count(); ++i) {
    const QueueDiscStats& stats = bottleneck(i).queue_disc().stats();
    total.enqueued += stats.enqueued;
    total.dequeued += stats.dequeued;
    total.dropped_overflow += stats.dropped_overflow;
    total.dropped_aqm += stats.dropped_aqm;
    total.purged += stats.purged;
    total.ce_marked += stats.ce_marked;
  }
  return total;
}

}  // namespace ecnsharp
