#include "topo/fat_tree.h"

#include <cassert>
#include <string>
#include <utility>

#include "net/lane_bridge.h"
#include "sched/fifo_queue_disc.h"
#include "sim/lane_executor.h"
#include "sim/logging.h"

namespace ecnsharp {

FatTree::FatTree(Simulator& sim, const FatTreeConfig& config,
                 std::function<std::unique_ptr<QueueDisc>()> make_disc)
    : sim_(sim), config_(config) {
  assert(make_disc != nullptr);
  if (config_.buffer_policy.kind != BufferPolicyKind::kNone) {
    FatalConfigError(
        "fat-tree with a buffer policy requires the pool-aware disc factory "
        "constructor");
  }
  Build([&make_disc](BufferPolicy*) { return make_disc(); });
}

FatTree::FatTree(
    Simulator& sim, const FatTreeConfig& config,
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>& make_disc)
    : sim_(sim), config_(config) {
  assert(make_disc != nullptr);
  Build(make_disc);
}

FatTree::FatTree(
    LaneSet& lanes, const FatTreeConfig& config,
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>& make_disc)
    : sim_(lanes.lane(0)), lanes_(&lanes), config_(config) {
  assert(make_disc != nullptr);
  Build(make_disc);
}

std::size_t FatTree::LaneOfLocality(std::uint32_t locality) const {
  return lanes_ == nullptr ? 0 : locality % lanes_->size();
}

Simulator& FatTree::PodSim(std::size_t pod) {
  return lanes_ == nullptr
             ? sim_
             : lanes_->lane(LaneOfLocality(LocalityOfPod(pod)));
}

Simulator& FatTree::CoreSim() {
  return lanes_ == nullptr ? sim_ : lanes_->lane(0);
}

void FatTree::Build(
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
        make_disc) {
  if (config_.k < 4 || config_.k % 2 != 0) {
    FatalConfigError("fat-tree k must be even and >= 4, got k=" +
                     std::to_string(config_.k));
  }
  const std::size_t half_k = config_.k / 2;
  const std::size_t pods = config_.k;
  const std::size_t host_count = hosts_per_pod() * pods;

  for (std::size_t g = 0; g < pods * half_k; ++g) {
    const std::size_t pod = g / half_k;
    edges_.push_back(std::make_unique<SwitchNode>(
        PodSim(pod), "edge" + std::to_string(g), /*ecmp_salt=*/0x10000 + g));
    edges_.back()->set_locality_id(LocalityOfPod(pod));
    aggs_.push_back(std::make_unique<SwitchNode>(
        PodSim(pod), "agg" + std::to_string(g), /*ecmp_salt=*/0x20000 + g));
    aggs_.back()->set_locality_id(LocalityOfPod(pod));
  }
  for (std::size_t c = 0; c < half_k * half_k; ++c) {
    cores_.push_back(std::make_unique<SwitchNode>(
        CoreSim(), "core" + std::to_string(c), /*ecmp_salt=*/0x30000 + c));
    cores_.back()->set_locality_id(0);
  }

  // One shared-buffer pool per switch chip: every switch carries k egress
  // queues (edge/agg: k/2 down + k/2 up; core: one per pod).
  if (config_.buffer_policy.kind != BufferPolicyKind::kNone) {
    const std::size_t chips =
        edges_.size() + aggs_.size() + cores_.size();
    pools_.reserve(chips);
    for (std::size_t i = 0; i < chips; ++i) {
      pools_.push_back(MakeBufferPolicy(config_.buffer_policy, config_.k,
                                        config_.buffer_bytes));
    }
  }

  // Hosts and access links. Host h is slot h % (k/2) of global edge
  // h / (k/2); sequential hosts fill an edge, then the next edge, so each
  // edge's k/2 host down ports land in slot order (ports 0..k/2-1).
  for (std::size_t h = 0; h < host_count; ++h) {
    Simulator& pod_sim = PodSim(PodOfHost(h));
    auto host = std::make_unique<Host>(
        pod_sim, config_.base_address + static_cast<std::uint32_t>(h));
    host->set_locality_id(LocalityOfPod(PodOfHost(h)));
    SwitchNode& edge = *edges_[EdgeOfHost(h)];

    auto nic = std::make_unique<EgressPort>(
        pod_sim, config_.rate, config_.host_link_delay,
        std::make_unique<FifoQueueDisc>(config_.host_buffer_bytes, nullptr));
    nic->ConnectTo(edge);
    host->AttachNic(std::move(nic));

    auto down = std::make_unique<EgressPort>(
        pod_sim, config_.rate, config_.host_link_delay,
        make_disc(EdgePool(EdgeOfHost(h))));
    down->ConnectTo(*host);
    EgressPort& down_ref = edge.AddPort(std::move(down));
    edge.AddRoute(host->address(), down_ref);

    stacks_.push_back(std::make_unique<TcpStack>(*host, config_.tcp));
    hosts_.push_back(std::move(host));
  }

  // Edge <-> aggregation inside each pod (edge ports k/2..k-1 are uplinks,
  // agg ports 0..k/2-1 are edge down ports). Non-local traffic leaves an
  // edge via the ECMP default route over all k/2 aggs; an agg routes each
  // edge's contiguous host block down and defaults the rest to the cores.
  for (std::size_t p = 0; p < pods; ++p) {
    for (std::size_t e = 0; e < half_k; ++e) {
      SwitchNode& edge = *edges_[p * half_k + e];
      const auto block_lo =
          config_.base_address +
          static_cast<std::uint32_t>((p * half_k + e) * half_k);
      const auto block_hi = static_cast<std::uint32_t>(block_lo + half_k - 1);
      for (std::size_t a = 0; a < half_k; ++a) {
        SwitchNode& agg = *aggs_[p * half_k + a];

        auto up = std::make_unique<EgressPort>(
            PodSim(p), config_.rate, config_.fabric_link_delay,
            make_disc(EdgePool(p * half_k + e)));
        up->ConnectTo(agg);
        edge.AddDefaultRoute(edge.AddPort(std::move(up)));
      }
      for (std::size_t a = 0; a < half_k; ++a) {
        SwitchNode& agg = *aggs_[p * half_k + a];
        auto down = std::make_unique<EgressPort>(
            PodSim(p), config_.rate, config_.fabric_link_delay,
            make_disc(AggPool(p * half_k + a)));
        down->ConnectTo(edge);
        agg.AddRouteRange(block_lo, block_hi, agg.AddPort(std::move(down)));
      }
    }
  }

  // Aggregation <-> core (agg ports k/2..k-1 are core uplinks; core c of
  // group a = c / (k/2) links to aggregation switch a of every pod, one
  // port per pod in pod order). A core routes each pod's host block down.
  for (std::size_t p = 0; p < pods; ++p) {
    const auto pod_lo = config_.base_address +
                        static_cast<std::uint32_t>(p * hosts_per_pod());
    const auto pod_hi =
        static_cast<std::uint32_t>(pod_lo + hosts_per_pod() - 1);
    const std::size_t pod_lane = LaneOfLocality(LocalityOfPod(p));
    const bool cross_lane = lanes_ != nullptr && pod_lane != 0;
    for (std::size_t a = 0; a < half_k; ++a) {
      SwitchNode& agg = *aggs_[p * half_k + a];
      for (std::size_t j = 0; j < half_k; ++j) {
        SwitchNode& core = *cores_[a * half_k + j];

        // When the pod executes on a different lane than the core tier, the
        // link's serialization stays on the sender's lane but propagation
        // moves into the LaneSet mailbox: the port gets zero delay and a
        // bridge re-applies fabric_link_delay when posting to the peer lane.
        auto up = std::make_unique<EgressPort>(
            PodSim(p), config_.rate,
            cross_lane ? Time::Zero() : config_.fabric_link_delay,
            make_disc(AggPool(p * half_k + a)));
        if (cross_lane) {
          bridges_.push_back(std::make_unique<LaneBridgeSink>(
              *lanes_, pod_lane, /*to=*/0, config_.fabric_link_delay, core));
          up->ConnectTo(*bridges_.back());
        } else {
          up->ConnectTo(core);
        }
        agg.AddDefaultRoute(agg.AddPort(std::move(up)));

        auto down = std::make_unique<EgressPort>(
            CoreSim(), config_.rate,
            cross_lane ? Time::Zero() : config_.fabric_link_delay,
            make_disc(CorePool(a * half_k + j)));
        if (cross_lane) {
          bridges_.push_back(std::make_unique<LaneBridgeSink>(
              *lanes_, /*from=*/0, pod_lane, config_.fabric_link_delay, agg));
          down->ConnectTo(*bridges_.back());
        } else {
          down->ConnectTo(agg);
        }
        core.AddRouteRange(pod_lo, pod_hi, core.AddPort(std::move(down)));
      }
    }
  }
}

Time FatTree::HostBaseRtt(std::size_t i) const {
  const Time one_way =
      config_.host_link_delay * 2 + config_.fabric_link_delay * 4;
  return one_way * 2 + hosts_.at(i)->extra_egress_delay();
}

DataRate FatTree::ReferenceCapacity() const {
  return DataRate::BitsPerSecond(
      config_.rate.bps() * static_cast<std::int64_t>(hosts_.size()));
}

std::pair<TcpStack*, std::uint32_t> FatTree::SampleFlowPair(Rng& rng) {
  const std::size_t n = hosts_.size();
  if (n < 2) {
    FatalConfigError("fat-tree SampleFlowPair needs >= 2 hosts, have " +
                     std::to_string(n));
  }
  const std::size_t src = rng.UniformInt(n);
  std::size_t dst = rng.UniformInt(n - 1);
  if (dst >= src) ++dst;
  return std::make_pair(stacks_[src].get(),
                        config_.base_address + static_cast<std::uint32_t>(dst));
}

std::uint32_t FatTree::IncastTarget() const { return hosts_[0]->address(); }

TcpStack& FatTree::IncastSender(std::size_t k) {
  if (hosts_.size() < 2) {
    FatalConfigError("fat-tree incast needs >= 2 hosts, have " +
                     std::to_string(hosts_.size()));
  }
  return *stacks_[1 + k % (hosts_.size() - 1)];
}

EgressPort* FatTree::ResolvePort(int target) {
  if (target < 0) return &edges_[0]->port(hosts_per_edge());
  std::size_t id = static_cast<std::size_t>(target);
  if (id < hosts_.size()) return &hosts_[id]->nic();
  id -= hosts_.size();
  if (id < bottleneck_count()) return &bottleneck(id);
  return nullptr;
}

std::string FatTree::DescribePortTargets() const {
  const std::size_t hosts = hosts_.size();
  return "-1 = edge0 first uplink (primary bottleneck), 0.." +
         std::to_string(hosts - 1) + " = host NICs, " +
         std::to_string(hosts) + ".." +
         std::to_string(hosts + bottleneck_count() - 1) +
         " = switch egress ports (edges, then aggs, then cores, in port "
         "order)";
}

std::size_t FatTree::bottleneck_count() const {
  // Every switch egress port: k ports per edge/agg switch (k/2 down + k/2
  // up), k per core (one per pod) — 5k^3/4 in total.
  std::size_t total = 0;
  for (const auto& sw : edges_) total += sw->port_count();
  for (const auto& sw : aggs_) total += sw->port_count();
  for (const auto& sw : cores_) total += sw->port_count();
  return total;
}

EgressPort& FatTree::bottleneck(std::size_t i) {
  for (const auto* tier : {&edges_, &aggs_, &cores_}) {
    for (const auto& sw : *tier) {
      if (i < sw->port_count()) return sw->port(i);
      i -= sw->port_count();
    }
  }
  assert(false && "bottleneck index out of range");
  return edges_[0]->port(0);
}

std::uint64_t FatTree::TotalLinkDownDrops() const {
  std::uint64_t total = 0;
  for (const auto& host : hosts_) {
    total += host->nic().counters().dropped_link_down;
  }
  for (const auto* tier : {&edges_, &aggs_, &cores_}) {
    for (const auto& sw : *tier) {
      for (std::size_t p = 0; p < sw->port_count(); ++p) {
        total += sw->port(p).counters().dropped_link_down;
      }
    }
  }
  return total;
}

}  // namespace ecnsharp
