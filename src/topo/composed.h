// ComposedTopology: two datacenter fabrics joined over a high-RTT border.
//
// The inter-DC regime is ECN#'s hardest RTT-variation instance: microsecond
// intra-DC flows share switch queues with millisecond WAN flows, so an
// instantaneous threshold sized for the tail RTT lets ms-RTT flows build
// standing queues that double or triple short-flow FCTs, while a threshold
// sized for the fabric RTT starves the WAN flows. Each side of the composed
// fabric is an unmodified LeafSpine or FatTree (per-side configs, disjoint
// host address ranges); a per-side border gateway switch attaches to every
// top-tier switch (spines / cores) and the two gateways connect over
// `border_links` point-to-point links carrying `border_rtt` of extra
// round-trip propagation, optionally oversubscribed (border aggregate below
// either side's bisection).
//
// Address plan (the seam's routing stays O(1) per switch):
//   side A hosts: [base_a, base_a + nA)   (base_a = 0 by default)
//   side B hosts: [base_b, base_b + nB)   (base_b = base_a + nA when
//                                          auto_address, validated disjoint
//                                          otherwise)
// Remote traffic routes on the peer's contiguous block: leaves/cores add one
// range route over their uplinks, top-tier switches range-route the block to
// their gateway attach port, and each gateway ECMPs the block over the
// border links. Everything below the top tier is untouched — fat-tree edges
// and aggs reach the border through their existing default routes.
//
// Unified target-id space (ResolvePort / scenarios / tracing / sketching):
//   -1                      first border link's egress on gateway A
//   0 .. n-1                host NICs, side A then side B (n = nA + nB)
//   n .. n+bA-1             side A bottlenecks (its own flattening order,
//                           now including the gateway attach uplinks added
//                           to its top-tier switches)
//   n+bA .. n+bA+bB-1       side B bottlenecks
//   then                    gateway A ports (attach downs, then border
//                           links), then gateway B ports
//
// Border ports carry a base-RTT annotation (EgressPort::base_rtt_hint) equal
// to the full inter-DC path RTT, and AppendRttSamplesUs mixes
// `inter_rtt_fraction` worth of inter-DC samples into the re-estimation
// population, so both the oracle and the sketch-driven ECN# re-estimators
// see the WAN paths.
#ifndef ECNSHARP_TOPO_COMPOSED_H_
#define ECNSHARP_TOPO_COMPOSED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "buffer/policy_spec.h"
#include "net/switch_node.h"
#include "sim/data_rate.h"
#include "sim/simulator.h"
#include "topo/fat_tree.h"
#include "topo/leaf_spine.h"
#include "topo/topology.h"

namespace ecnsharp {

// One side of the composed fabric: an unmodified LeafSpine or FatTree.
struct ComposedSideConfig {
  enum class Kind { kLeafSpine, kFatTree };
  Kind kind = Kind::kLeafSpine;
  LeafSpineConfig leaf_spine;
  FatTreeConfig fat_tree;
};

struct ComposedConfig {
  ComposedSideConfig side_a;
  ComposedSideConfig side_b;

  // Inter-DC span: `border_links` parallel links between the two gateways,
  // each at `border_rate`, each adding `border_rtt` of round-trip
  // propagation over the intra-fabric path. border_links must be >= 1 and
  // border_rtt must lie in [0, 10s] (both validated with exit 2).
  std::size_t border_links = 1;
  DataRate border_rate = DataRate::GigabitsPerSecond(10);
  Time border_rtt = Time::Zero();
  // Propagation of each gateway<->top-tier attach hop (usually negligible
  // against border_rtt; kept separate so the zero-extra-RTT reduction-parity
  // configuration exists).
  Time attach_delay = Time::Zero();

  // When true (default), side B's base_address is overridden to sit
  // immediately after side A's block. When false, the configured
  // base_addresses are used verbatim and validated disjoint (exit 2 on
  // overlap).
  bool auto_address = true;

  // Optional shared-buffer policy for the two gateway chips (each pools its
  // attach-down ports and border links); the sides keep their own configs.
  BufferPolicyConfig buffer_policy;
  std::uint64_t buffer_bytes = 600ull * kFullPacketBytes;

  // Weight of inter-DC path samples in the re-estimation RTT population:
  // AppendRttSamplesUs appends round(inter_rtt_fraction * host_count) extra
  // samples at the inter-DC RTT on top of the per-host intra samples.
  double inter_rtt_fraction = 0.25;
};

class ComposedTopology : public Topology {
 public:
  // Legacy form: static per-port buffers everywhere; exits 2 if any of the
  // three chips' configs ask for a buffer policy.
  ComposedTopology(Simulator& sim, const ComposedConfig& config,
                   std::function<std::unique_ptr<QueueDisc>()> make_disc);
  // Pool-aware form: `make_disc` receives the owning chip's pool — each
  // side's switch pools for its own ports, the gateway pools for attach-down
  // and border ports, and null for the attach uplinks added into the sides'
  // top-tier switches (so a side's per-chip pool accounting is identical to
  // its standalone build).
  ComposedTopology(Simulator& sim, const ComposedConfig& config,
                   const std::function<std::unique_ptr<QueueDisc>(
                       BufferPolicy*)>& make_disc);

  // --- Composition accessors (tests, benches) ----------------------------
  Topology& side(std::size_t s) { return *side_[s]; }
  std::size_t side_host_count(std::size_t s) const { return side_hosts_[s]; }
  std::uint32_t side_base_address(std::size_t s) const {
    return side_base_[s];
  }
  SwitchNode& gateway(std::size_t s) { return *gateways_[s]; }
  std::size_t border_link_count() const { return border_[0].size(); }
  EgressPort& border_port(std::size_t s, std::size_t j) {
    return *border_[s].at(j);
  }
  std::size_t attach_count(std::size_t s) const {
    return attach_down_[s].size();
  }
  // Extra round-trip an inter-DC path carries over the intra-fabric path:
  // border_rtt plus the four attach hops.
  Time InterExtraRtt() const;
  // Full base RTT of the longest inter-DC path (worst side's intra RTT plus
  // the border extra) — the border ports' base_rtt_hint.
  Time InterBaseRtt() const;

  // --- Split traffic-matrix sampling -------------------------------------
  // Intra-DC pair confined to side `s` (two rng draws, like the sides).
  std::pair<TcpStack*, std::uint32_t> SampleIntraPair(std::size_t s, Rng& rng);
  // Inter-DC pair: uniform source side, uniform source host, uniform
  // destination host on the peer side (three rng draws).
  std::pair<TcpStack*, std::uint32_t> SampleInterPair(Rng& rng);

  // --- Topology interface ------------------------------------------------
  std::size_t host_count() const override {
    return side_hosts_[0] + side_hosts_[1];
  }
  Host& host(std::size_t i) override;
  TcpStack& stack(std::size_t i) override;
  // Intra-fabric base RTT of the owning side (inter-DC paths additionally
  // carry InterExtraRtt; AppendRttSamplesUs represents them).
  Time HostBaseRtt(std::size_t i) const override;
  void AppendRttSamplesUs(std::vector<double>& rtts_us) const override;
  // Sum of both sides' aggregate access capacity.
  DataRate ReferenceCapacity() const override;
  // Uniform over all ordered host pairs fabric-wide (two rng draws) — the
  // natural mixed matrix when no split is requested.
  std::pair<TcpStack*, std::uint32_t> SampleFlowPair(Rng& rng) override;
  // Bursts converge on side A's host 0 from all remaining hosts fabric-wide.
  std::uint32_t IncastTarget() const override;
  TcpStack& IncastSender(std::size_t k) override;
  EgressPort* ResolvePort(int target) override;
  std::string DescribePortTargets() const override;
  std::size_t bottleneck_count() const override;
  EgressPort& bottleneck(std::size_t i) override;
  std::uint64_t TotalLinkDownDrops() const override;
  // Pools: side A's, then side B's, then the two gateway pools.
  std::size_t buffer_pool_count() const override;
  BufferPolicy* buffer_pool(std::size_t i) override;

 private:
  void Build(const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
                 make_disc);
  void BuildSide(std::size_t s,
                 const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
                     make_disc);
  void AttachSide(std::size_t s,
                  const std::function<std::unique_ptr<QueueDisc>(
                      BufferPolicy*)>& make_disc);
  BufferPolicy* GatewayPool(std::size_t s) {
    return gw_pools_.empty() ? nullptr : gw_pools_[s].get();
  }
  const ComposedSideConfig& side_config(std::size_t s) const {
    return s == 0 ? config_.side_a : config_.side_b;
  }
  // (local stack index, global destination address) for a global host index.
  std::uint32_t GlobalAddress(std::size_t i) const;

  Simulator& sim_;
  ComposedConfig config_;
  std::unique_ptr<LeafSpine> leaf_spine_[2];
  std::unique_ptr<FatTree> fat_tree_[2];
  Topology* side_[2] = {nullptr, nullptr};
  std::size_t side_hosts_[2] = {0, 0};
  std::uint32_t side_base_[2] = {0, 0};
  std::vector<std::unique_ptr<BufferPolicy>> gw_pools_;  // gwA, gwB
  std::unique_ptr<SwitchNode> gateways_[2];
  std::vector<EgressPort*> attach_down_[2];  // gateway -> top tier
  std::vector<EgressPort*> border_[2];       // gateway -> peer gateway
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TOPO_COMPOSED_H_
