#include "topo/dumbbell.h"

#include <cassert>
#include <string>
#include <utility>

#include "sched/fifo_queue_disc.h"
#include "sim/logging.h"

namespace ecnsharp {

Dumbbell::Dumbbell(Simulator& sim, const DumbbellConfig& config,
                   std::unique_ptr<QueueDisc> bottleneck_disc)
    : sim_(sim), config_(config) {
  if (config_.buffer_policy.kind != BufferPolicyKind::kNone) {
    FatalConfigError(
        "dumbbell with a buffer policy requires the pool-aware disc factory "
        "constructor");
  }
  Build([&bottleneck_disc](BufferPolicy*) { return std::move(bottleneck_disc); });
}

Dumbbell::Dumbbell(
    Simulator& sim, const DumbbellConfig& config,
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>& make_disc)
    : sim_(sim), config_(config) {
  Build(make_disc);
}

void Dumbbell::Build(
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>& make_disc) {
  // Not an assert: a 0-sender dumbbell would make SampleFlowPair's
  // UniformInt(0) draw and IncastSender's k % 0 undefined in release
  // builds, where asserts compile out.
  if (config_.senders < 1) {
    FatalConfigError("dumbbell needs >= 1 sender, got senders=" +
                     std::to_string(config_.senders));
  }
  // One pool per switch chip: every switch egress port registers a queue.
  pool_ = MakeBufferPolicy(config_.buffer_policy,
                           /*queue_count=*/config_.senders + 1,
                           /*per_queue_fallback=*/config_.buffer_bytes);
  switch_ = std::make_unique<SwitchNode>(sim_, "tor", /*ecmp_salt=*/1);
  const Time link_delay = config_.base_rtt / 4;
  const std::size_t total_hosts = config_.senders + 1;

  for (std::size_t i = 0; i < total_hosts; ++i) {
    auto host = std::make_unique<Host>(sim_, static_cast<std::uint32_t>(i));
    // Host NIC toward the switch: large drop-tail.
    auto nic = std::make_unique<EgressPort>(
        sim_, config_.rate, link_delay,
        std::make_unique<FifoQueueDisc>(config_.host_buffer_bytes, nullptr));
    nic->ConnectTo(*switch_);
    host->AttachNic(std::move(nic));

    // Switch port toward this host: the AQM under test for the receiver,
    // drop-tail for senders (carries mostly ACKs).
    const bool is_receiver = (i == total_hosts - 1);
    std::unique_ptr<QueueDisc> disc;
    if (is_receiver) {
      disc = make_disc(pool_.get());
    } else if (pool_ != nullptr) {
      disc = std::make_unique<FifoQueueDisc>(*pool_, nullptr);
    } else {
      disc = std::make_unique<FifoQueueDisc>(config_.buffer_bytes, nullptr);
    }
    auto port = std::make_unique<EgressPort>(sim_, config_.rate, link_delay,
                                             std::move(disc));
    port->ConnectTo(*host);
    EgressPort& port_ref = switch_->AddPort(std::move(port));
    switch_->AddRoute(host->address(), port_ref);
    if (is_receiver) bottleneck_port_ = &port_ref;

    stacks_.push_back(std::make_unique<TcpStack>(*host, config_.tcp));
    hosts_.push_back(std::move(host));
  }
}

std::uint32_t Dumbbell::receiver_address() const {
  return hosts_.back()->address();
}

void Dumbbell::SetSenderExtraDelays(const std::vector<Time>& extras) {
  assert(extras.size() == config_.senders);
  for (std::size_t i = 0; i < extras.size(); ++i) {
    hosts_[i]->set_extra_egress_delay(extras[i]);
  }
}

std::pair<TcpStack*, std::uint32_t> Dumbbell::SampleFlowPair(Rng& rng) {
  const std::size_t sender = rng.UniformInt(config_.senders);
  return std::make_pair(&sender_stack(sender), receiver_address());
}

EgressPort* Dumbbell::ResolvePort(int target) {
  if (target < 0) return bottleneck_port_;
  if (static_cast<std::size_t>(target) < config_.senders) {
    return &hosts_[static_cast<std::size_t>(target)]->nic();
  }
  return nullptr;
}

EgressPort& Dumbbell::bottleneck(std::size_t i) {
  assert(i == 0);
  (void)i;
  return *bottleneck_port_;
}

std::uint64_t Dumbbell::TotalLinkDownDrops() const {
  std::uint64_t total = bottleneck_port_->counters().dropped_link_down;
  for (std::size_t i = 0; i < config_.senders; ++i) {
    total += hosts_[i]->nic().counters().dropped_link_down;
  }
  return total;
}

}  // namespace ecnsharp
