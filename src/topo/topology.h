// Topology: the composable-experiment interface every concrete topology
// (Dumbbell, LeafSpine, ...) implements.
//
// The experiment layer (harness/session.h) is written entirely against this
// interface: it wires the open-loop TrafficGenerator through
// SampleFlowPair/ReferenceCapacity, installs RTT extras on the enumerated
// hosts, points a QueueMonitor at every bottleneck, resolves scenario-script
// port ids through ResolvePort, launches incast bursts at IncastTarget, and
// re-derives ECN# thresholds from the HostBaseRtt distribution. Adding a
// topology therefore makes dynamics, monitoring, and the uniform
// ExperimentResult metrics available on it for free — see
// docs/extending.md ("Adding a topology").
#ifndef ECNSHARP_TOPO_TOPOLOGY_H_
#define ECNSHARP_TOPO_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/egress_port.h"
#include "net/host.h"
#include "net/queue_disc.h"
#include "sim/data_rate.h"
#include "sim/random.h"
#include "sim/time.h"
#include "transport/tcp_stack.h"

namespace ecnsharp {

class BufferPolicy;

class Topology {
 public:
  virtual ~Topology() = default;

  // --- Flow-originating hosts -------------------------------------------
  // Hosts that can source traffic (the dumbbell excludes its receiver).
  virtual std::size_t host_count() const = 0;
  virtual Host& host(std::size_t i) = 0;
  virtual TcpStack& stack(std::size_t i) = 0;
  // Base RTT of host i's flows, including its current netem-style extra
  // delay — the quantity ECN# re-estimation feeds into the §3.4
  // rule-of-thumb.
  virtual Time HostBaseRtt(std::size_t i) const = 0;
  // Appends the base-RTT population (in microseconds) ECN# re-estimation
  // derives its thresholds from. The default is one sample per host; a
  // topology whose traffic matrix includes paths longer than any single
  // host's fabric path (e.g. the inter-DC border of topo/composed.h)
  // overrides this to represent those paths in the distribution.
  virtual void AppendRttSamplesUs(std::vector<double>& rtts_us) const;

  // --- Open-loop workload wiring ----------------------------------------
  // Capacity a load factor refers to: the bottleneck rate for a dumbbell,
  // the aggregate access-link rate for a fabric.
  virtual DataRate ReferenceCapacity() const = 0;
  // Draws one (sending stack, destination address) pair. Implementations
  // must consume a fixed number of rng draws per call so runs stay
  // seed-deterministic.
  virtual std::pair<TcpStack*, std::uint32_t> SampleFlowPair(Rng& rng) = 0;

  // --- Incast bursts (scenario kIncastBurst) ----------------------------
  // Address burst flows converge on, and the k-th burst sender (k counts
  // monotonically across bursts; implementations typically round-robin).
  virtual std::uint32_t IncastTarget() const = 0;
  virtual TcpStack& IncastSender(std::size_t k) = 0;

  // --- Scenario port targeting ------------------------------------------
  // Resolves a ScenarioAction target id to a port, or null for unknown ids
  // (the action is then ignored). Convention shared by all topologies:
  // -1 is the primary bottleneck, 0..host_count-1 are host NICs; ids from
  // host_count upward are topology-defined (the leaf-spine exposes every
  // switch egress port — see leaf_spine.h).
  virtual EgressPort* ResolvePort(int target) = 0;
  // One-line description of the valid target-id space, used in the
  // fail-fast diagnostic when a scenario names a target ResolvePort cannot
  // resolve. Override to document topology-specific port ids.
  virtual std::string DescribePortTargets() const;

  // --- Instrumented (AQM-under-test) queues -----------------------------
  // The queues experiments monitor and whose drop/mark totals the result
  // reports: the single receiver-facing port for a dumbbell, every switch
  // egress port for a fabric.
  virtual std::size_t bottleneck_count() const = 0;
  virtual EgressPort& bottleneck(std::size_t i) = 0;

  // --- Shared-buffer pools ----------------------------------------------
  // Buffer policies owned by the topology (one per switch chip when a
  // policy is configured); none for statically buffered topologies. Exposed
  // so tests can check accounting invariants and benches can report
  // occupancy.
  virtual std::size_t buffer_pool_count() const { return 0; }
  virtual BufferPolicy* buffer_pool(std::size_t /*i*/) { return nullptr; }

  // --- Accounting --------------------------------------------------------
  // Sum of QueueDiscStats over the bottleneck set (total drop/mark
  // accounting for the result's `bottleneck` field).
  QueueDiscStats TotalBottleneckStats();
  // Packets that arrived at any downed port, across every port of the
  // topology (including host NICs).
  virtual std::uint64_t TotalLinkDownDrops() const = 0;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TOPO_TOPOLOGY_H_
