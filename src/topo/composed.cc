#include "topo/composed.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <utility>

#include "sim/logging.h"

namespace ecnsharp {

namespace {

// Longest round-trip an interdc span may add. Far beyond any WAN (a
// geostationary double hop is ~1.1s); anything larger is a unit mistake
// (e.g. nanoseconds passed as microseconds) and would overflow the
// experiment's time budget, so fail fast instead of hanging.
constexpr std::int64_t kMaxBorderRttSeconds = 10;

std::size_t SideHostCount(const ComposedSideConfig& side) {
  switch (side.kind) {
    case ComposedSideConfig::Kind::kLeafSpine:
      return side.leaf_spine.leaves * side.leaf_spine.hosts_per_leaf;
    case ComposedSideConfig::Kind::kFatTree:
      return side.fat_tree.k * side.fat_tree.k * side.fat_tree.k / 4;
  }
  return 0;
}

std::size_t SideAttachCount(const ComposedSideConfig& side) {
  switch (side.kind) {
    case ComposedSideConfig::Kind::kLeafSpine:
      return side.leaf_spine.spines;
    case ComposedSideConfig::Kind::kFatTree:
      return (side.fat_tree.k / 2) * (side.fat_tree.k / 2);
  }
  return 0;
}

Time SideIntraRtt(const ComposedSideConfig& side) {
  if (side.kind == ComposedSideConfig::Kind::kLeafSpine) {
    return (side.leaf_spine.host_link_delay * 2 +
            side.leaf_spine.spine_link_delay * 2) *
           2;
  }
  return (side.fat_tree.host_link_delay * 2 +
          side.fat_tree.fabric_link_delay * 4) *
         2;
}

bool SideHasBufferPolicy(const ComposedSideConfig& side) {
  return side.kind == ComposedSideConfig::Kind::kLeafSpine
             ? side.leaf_spine.buffer_policy.kind != BufferPolicyKind::kNone
             : side.fat_tree.buffer_policy.kind != BufferPolicyKind::kNone;
}

}  // namespace

ComposedTopology::ComposedTopology(
    Simulator& sim, const ComposedConfig& config,
    std::function<std::unique_ptr<QueueDisc>()> make_disc)
    : sim_(sim), config_(config) {
  assert(make_disc != nullptr);
  if (config_.buffer_policy.kind != BufferPolicyKind::kNone ||
      SideHasBufferPolicy(config_.side_a) ||
      SideHasBufferPolicy(config_.side_b)) {
    FatalConfigError(
        "composed topology with a buffer policy requires the pool-aware "
        "disc factory constructor");
  }
  Build([&make_disc](BufferPolicy*) { return make_disc(); });
}

ComposedTopology::ComposedTopology(
    Simulator& sim, const ComposedConfig& config,
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>& make_disc)
    : sim_(sim), config_(config) {
  assert(make_disc != nullptr);
  Build(make_disc);
}

void ComposedTopology::Build(
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
        make_disc) {
  if (config_.border_links < 1) {
    FatalConfigError(
        "composed topology needs >= 1 border link, got border_links=" +
        std::to_string(config_.border_links) + "; valid range [1, inf)");
  }
  if (config_.border_rate.bps() <= 0) {
    FatalConfigError("composed border rate must be positive, got " +
                     std::to_string(config_.border_rate.bps()) + " bps");
  }
  if (config_.border_rtt < Time::Zero() ||
      config_.border_rtt > Time::Seconds(kMaxBorderRttSeconds)) {
    FatalConfigError(
        "composed border RTT out of range: got " +
        std::to_string(config_.border_rtt.ToMicroseconds()) +
        " us; valid range [0us, " +
        std::to_string(kMaxBorderRttSeconds * 1'000'000) +
        " us] (larger values are almost certainly a unit mistake)");
  }
  if (config_.attach_delay < Time::Zero()) {
    FatalConfigError("composed attach delay must be >= 0, got " +
                     std::to_string(config_.attach_delay.ToMicroseconds()) +
                     " us");
  }
  if (config_.inter_rtt_fraction < 0.0 || config_.inter_rtt_fraction > 1.0) {
    FatalConfigError(
        "composed inter_rtt_fraction out of range: got " +
        std::to_string(config_.inter_rtt_fraction) + "; valid range [0, 1]");
  }

  side_hosts_[0] = SideHostCount(config_.side_a);
  side_hosts_[1] = SideHostCount(config_.side_b);
  if (config_.auto_address) {
    config_.side_b.leaf_spine.base_address =
        config_.side_b.fat_tree.base_address =
            config_.side_a.leaf_spine.base_address +
            static_cast<std::uint32_t>(side_hosts_[0]);
    if (config_.side_a.kind == ComposedSideConfig::Kind::kFatTree) {
      config_.side_b.leaf_spine.base_address =
          config_.side_b.fat_tree.base_address =
              config_.side_a.fat_tree.base_address +
              static_cast<std::uint32_t>(side_hosts_[0]);
    }
  }
  for (std::size_t s = 0; s < 2; ++s) {
    const ComposedSideConfig& sc = side_config(s);
    side_base_[s] = sc.kind == ComposedSideConfig::Kind::kLeafSpine
                        ? sc.leaf_spine.base_address
                        : sc.fat_tree.base_address;
  }
  // Disjointness of the two address blocks (checked in 64-bit so a block
  // ending at the top of the 32-bit space cannot wrap).
  const std::uint64_t a_lo = side_base_[0];
  const std::uint64_t a_hi = a_lo + side_hosts_[0] - 1;
  const std::uint64_t b_lo = side_base_[1];
  const std::uint64_t b_hi = b_lo + side_hosts_[1] - 1;
  if (a_hi > UINT32_MAX || b_hi > UINT32_MAX) {
    FatalConfigError("composed host address range overflows 32 bits");
  }
  if (a_lo <= b_hi && b_lo <= a_hi) {
    FatalConfigError(
        "composed sides have overlapping host address ranges: side A [" +
        std::to_string(a_lo) + ", " + std::to_string(a_hi) + "], side B [" +
        std::to_string(b_lo) + ", " + std::to_string(b_hi) +
        "]; the target-id spaces must be disjoint (set auto_address or move "
        "base_address)");
  }

  // Gateway chips. One optional shared-buffer pool each, covering the
  // attach-down ports plus the border links.
  if (config_.buffer_policy.kind != BufferPolicyKind::kNone) {
    for (std::size_t s = 0; s < 2; ++s) {
      gw_pools_.push_back(MakeBufferPolicy(
          config_.buffer_policy,
          SideAttachCount(side_config(s)) + config_.border_links,
          config_.buffer_bytes));
    }
  }
  for (std::size_t s = 0; s < 2; ++s) {
    gateways_[s] = std::make_unique<SwitchNode>(
        sim_, s == 0 ? "gwA" : "gwB", /*ecmp_salt=*/0x40000 + s);
    gateways_[s]->set_locality_id(0);
  }

  BuildSide(0, make_disc);
  BuildSide(1, make_disc);
  AttachSide(0, make_disc);
  AttachSide(1, make_disc);

  // Border links: gateway-to-gateway, half the border RTT of propagation in
  // each direction, ECMP over all parallel links, annotated with the full
  // inter-DC path base RTT for the sketch.
  const Time border_one_way = config_.border_rtt * 0.5;
  for (std::size_t j = 0; j < config_.border_links; ++j) {
    for (std::size_t s = 0; s < 2; ++s) {
      const std::size_t peer = 1 - s;
      auto port = std::make_unique<EgressPort>(
          sim_, config_.border_rate, border_one_way,
          make_disc(GatewayPool(s)));
      port->ConnectTo(*gateways_[peer]);
      EgressPort& ref = gateways_[s]->AddPort(std::move(port));
      ref.set_base_rtt_hint(InterBaseRtt());
      gateways_[s]->AddRouteRange(
          static_cast<std::uint32_t>(side_base_[peer]),
          static_cast<std::uint32_t>(side_base_[peer] + side_hosts_[peer] - 1),
          ref);
      border_[s].push_back(&ref);
    }
  }
}

void ComposedTopology::BuildSide(
    std::size_t s,
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
        make_disc) {
  const ComposedSideConfig& sc = side_config(s);
  switch (sc.kind) {
    case ComposedSideConfig::Kind::kLeafSpine:
      leaf_spine_[s] =
          std::make_unique<LeafSpine>(sim_, sc.leaf_spine, make_disc);
      side_[s] = leaf_spine_[s].get();
      break;
    case ComposedSideConfig::Kind::kFatTree:
      fat_tree_[s] = std::make_unique<FatTree>(sim_, sc.fat_tree, make_disc);
      side_[s] = fat_tree_[s].get();
      break;
  }
}

void ComposedTopology::AttachSide(
    std::size_t s,
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
        make_disc) {
  const ComposedSideConfig& sc = side_config(s);
  const std::size_t peer = 1 - s;
  const auto remote_lo = static_cast<std::uint32_t>(side_base_[peer]);
  const auto remote_hi =
      static_cast<std::uint32_t>(side_base_[peer] + side_hosts_[peer] - 1);
  const auto local_lo = static_cast<std::uint32_t>(side_base_[s]);
  const auto local_hi =
      static_cast<std::uint32_t>(side_base_[s] + side_hosts_[s] - 1);
  SwitchNode& gw = *gateways_[s];

  // Attach one gateway uplink to every top-tier switch (spines / cores) and
  // one gateway down port back. The uplink lives in the side's switch but
  // deliberately takes no side buffer pool — the side's per-chip pool
  // accounting must match its standalone build exactly (the reduction-parity
  // contract). Remote traffic reaches the top tier through a range route
  // over the existing uplink ECMP sets (leaf-spine) or the default up-routes
  // (fat-tree edges/aggs).
  if (sc.kind == ComposedSideConfig::Kind::kLeafSpine) {
    LeafSpine& ls = *leaf_spine_[s];
    const LeafSpineConfig& cfg = sc.leaf_spine;
    for (std::size_t l = 0; l < ls.leaf_count(); ++l) {
      for (std::size_t sp = 0; sp < ls.spine_count(); ++sp) {
        ls.leaf(l).AddRouteRange(remote_lo, remote_hi,
                                 ls.leaf(l).port(cfg.hosts_per_leaf + sp));
      }
    }
    for (std::size_t sp = 0; sp < ls.spine_count(); ++sp) {
      SwitchNode& spine = ls.spine(sp);
      auto up = std::make_unique<EgressPort>(
          sim_, cfg.rate, config_.attach_delay, make_disc(nullptr));
      up->ConnectTo(gw);
      EgressPort& up_ref = spine.AddPort(std::move(up));
      spine.AddRouteRange(remote_lo, remote_hi, up_ref);

      auto down = std::make_unique<EgressPort>(
          sim_, cfg.rate, config_.attach_delay, make_disc(GatewayPool(s)));
      down->ConnectTo(spine);
      EgressPort& down_ref = gw.AddPort(std::move(down));
      gw.AddRouteRange(local_lo, local_hi, down_ref);
      attach_down_[s].push_back(&down_ref);
    }
  } else {
    FatTree& ft = *fat_tree_[s];
    const FatTreeConfig& cfg = sc.fat_tree;
    for (std::size_t c = 0; c < ft.core_count(); ++c) {
      SwitchNode& core = ft.core(c);
      auto up = std::make_unique<EgressPort>(
          sim_, cfg.rate, config_.attach_delay, make_disc(nullptr));
      up->ConnectTo(gw);
      EgressPort& up_ref = core.AddPort(std::move(up));
      core.AddRouteRange(remote_lo, remote_hi, up_ref);

      auto down = std::make_unique<EgressPort>(
          sim_, cfg.rate, config_.attach_delay, make_disc(GatewayPool(s)));
      down->ConnectTo(core);
      EgressPort& down_ref = gw.AddPort(std::move(down));
      gw.AddRouteRange(local_lo, local_hi, down_ref);
      attach_down_[s].push_back(&down_ref);
    }
  }
}

Time ComposedTopology::InterExtraRtt() const {
  return config_.border_rtt + config_.attach_delay * 4;
}

Time ComposedTopology::InterBaseRtt() const {
  return InterExtraRtt() +
         std::max(SideIntraRtt(config_.side_a), SideIntraRtt(config_.side_b));
}

std::pair<TcpStack*, std::uint32_t> ComposedTopology::SampleIntraPair(
    std::size_t s, Rng& rng) {
  return side_[s]->SampleFlowPair(rng);
}

std::pair<TcpStack*, std::uint32_t> ComposedTopology::SampleInterPair(
    Rng& rng) {
  const std::size_t s = rng.UniformInt(2);
  const std::size_t peer = 1 - s;
  const std::size_t src = rng.UniformInt(side_hosts_[s]);
  const std::size_t dst = rng.UniformInt(side_hosts_[peer]);
  return std::make_pair(
      &side_[s]->stack(src),
      static_cast<std::uint32_t>(side_base_[peer] + dst));
}

Host& ComposedTopology::host(std::size_t i) {
  return i < side_hosts_[0] ? side_[0]->host(i)
                            : side_[1]->host(i - side_hosts_[0]);
}

TcpStack& ComposedTopology::stack(std::size_t i) {
  return i < side_hosts_[0] ? side_[0]->stack(i)
                            : side_[1]->stack(i - side_hosts_[0]);
}

Time ComposedTopology::HostBaseRtt(std::size_t i) const {
  return i < side_hosts_[0] ? side_[0]->HostBaseRtt(i)
                            : side_[1]->HostBaseRtt(i - side_hosts_[0]);
}

void ComposedTopology::AppendRttSamplesUs(
    std::vector<double>& rtts_us) const {
  const std::size_t n = host_count();
  for (std::size_t i = 0; i < n; ++i) {
    rtts_us.push_back(HostBaseRtt(i).ToMicroseconds());
  }
  // Represent the inter-DC paths: a configurable fraction of extra samples
  // at (intra path + border extra), cycling over hosts so per-host extra
  // delays stay represented on the WAN side of the distribution too.
  const auto extra = static_cast<std::size_t>(
      std::llround(config_.inter_rtt_fraction * static_cast<double>(n)));
  const double extra_us = InterExtraRtt().ToMicroseconds();
  for (std::size_t j = 0; j < extra; ++j) {
    rtts_us.push_back(HostBaseRtt(j % n).ToMicroseconds() + extra_us);
  }
}

DataRate ComposedTopology::ReferenceCapacity() const {
  return DataRate::BitsPerSecond(side_[0]->ReferenceCapacity().bps() +
                                 side_[1]->ReferenceCapacity().bps());
}

std::uint32_t ComposedTopology::GlobalAddress(std::size_t i) const {
  return i < side_hosts_[0]
             ? static_cast<std::uint32_t>(side_base_[0] + i)
             : static_cast<std::uint32_t>(side_base_[1] +
                                          (i - side_hosts_[0]));
}

std::pair<TcpStack*, std::uint32_t> ComposedTopology::SampleFlowPair(
    Rng& rng) {
  const std::size_t n = host_count();
  if (n < 2) {
    FatalConfigError("composed SampleFlowPair needs >= 2 hosts, have " +
                     std::to_string(n));
  }
  const std::size_t src = rng.UniformInt(n);
  std::size_t dst = rng.UniformInt(n - 1);
  if (dst >= src) ++dst;
  return std::make_pair(&stack(src), GlobalAddress(dst));
}

std::uint32_t ComposedTopology::IncastTarget() const {
  return side_[0]->IncastTarget();
}

TcpStack& ComposedTopology::IncastSender(std::size_t k) {
  if (host_count() < 2) {
    FatalConfigError("composed incast needs >= 2 hosts, have " +
                     std::to_string(host_count()));
  }
  return stack(1 + k % (host_count() - 1));
}

EgressPort* ComposedTopology::ResolvePort(int target) {
  if (target < 0) return border_[0].empty() ? nullptr : border_[0][0];
  std::size_t id = static_cast<std::size_t>(target);
  if (id < host_count()) return &host(id).nic();
  id -= host_count();
  if (id < bottleneck_count()) return &bottleneck(id);
  return nullptr;
}

std::string ComposedTopology::DescribePortTargets() const {
  const std::size_t n = host_count();
  const std::size_t b_a = side_[0]->bottleneck_count();
  const std::size_t b_b = side_[1]->bottleneck_count();
  const std::size_t gw_a = gateways_[0]->port_count();
  const std::size_t gw_b = gateways_[1]->port_count();
  return "-1 = first border link (gateway A egress), 0.." +
         std::to_string(n - 1) + " = host NICs (side A then side B), " +
         std::to_string(n) + ".." + std::to_string(n + b_a - 1) +
         " = side A switch egress ports, " + std::to_string(n + b_a) + ".." +
         std::to_string(n + b_a + b_b - 1) + " = side B switch egress ports, " +
         std::to_string(n + b_a + b_b) + ".." +
         std::to_string(n + b_a + b_b + gw_a - 1) +
         " = gateway A ports (attach downs then border links), " +
         std::to_string(n + b_a + b_b + gw_a) + ".." +
         std::to_string(n + b_a + b_b + gw_a + gw_b - 1) +
         " = gateway B ports";
}

std::size_t ComposedTopology::bottleneck_count() const {
  return side_[0]->bottleneck_count() + side_[1]->bottleneck_count() +
         gateways_[0]->port_count() + gateways_[1]->port_count();
}

EgressPort& ComposedTopology::bottleneck(std::size_t i) {
  if (i < side_[0]->bottleneck_count()) return side_[0]->bottleneck(i);
  i -= side_[0]->bottleneck_count();
  if (i < side_[1]->bottleneck_count()) return side_[1]->bottleneck(i);
  i -= side_[1]->bottleneck_count();
  if (i < gateways_[0]->port_count()) return gateways_[0]->port(i);
  i -= gateways_[0]->port_count();
  if (i < gateways_[1]->port_count()) return gateways_[1]->port(i);
  assert(false && "bottleneck index out of range");
  return gateways_[0]->port(0);
}

std::uint64_t ComposedTopology::TotalLinkDownDrops() const {
  std::uint64_t total =
      side_[0]->TotalLinkDownDrops() + side_[1]->TotalLinkDownDrops();
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t p = 0; p < gateways_[s]->port_count(); ++p) {
      total += gateways_[s]->port(p).counters().dropped_link_down;
    }
  }
  return total;
}

std::size_t ComposedTopology::buffer_pool_count() const {
  return side_[0]->buffer_pool_count() + side_[1]->buffer_pool_count() +
         gw_pools_.size();
}

BufferPolicy* ComposedTopology::buffer_pool(std::size_t i) {
  if (i < side_[0]->buffer_pool_count()) return side_[0]->buffer_pool(i);
  i -= side_[0]->buffer_pool_count();
  if (i < side_[1]->buffer_pool_count()) return side_[1]->buffer_pool(i);
  i -= side_[1]->buffer_pool_count();
  return i < gw_pools_.size() ? gw_pools_[i].get() : nullptr;
}

}  // namespace ecnsharp
