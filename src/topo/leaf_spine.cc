#include "topo/leaf_spine.h"

#include <cassert>
#include <string>
#include <utility>

#include "sched/fifo_queue_disc.h"
#include "sim/logging.h"

namespace ecnsharp {

LeafSpine::LeafSpine(Simulator& sim, const LeafSpineConfig& config,
                     std::function<std::unique_ptr<QueueDisc>()> make_disc)
    : sim_(sim), config_(config) {
  assert(make_disc != nullptr);
  if (config_.buffer_policy.kind != BufferPolicyKind::kNone) {
    FatalConfigError(
        "leaf-spine with a buffer policy requires the pool-aware disc "
        "factory constructor");
  }
  Build([&make_disc](BufferPolicy*) { return make_disc(); });
}

LeafSpine::LeafSpine(
    Simulator& sim, const LeafSpineConfig& config,
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>& make_disc)
    : sim_(sim), config_(config) {
  assert(make_disc != nullptr);
  Build(make_disc);
}

void LeafSpine::Build(
    const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>& make_disc) {
  if (config_.spines < 1 || config_.leaves < 1 ||
      config_.hosts_per_leaf < 1) {
    FatalConfigError("leaf-spine dimensions must all be >= 1, got spines=" +
                     std::to_string(config_.spines) + " leaves=" +
                     std::to_string(config_.leaves) + " hosts_per_leaf=" +
                     std::to_string(config_.hosts_per_leaf));
  }
  const std::size_t host_count = config_.leaves * config_.hosts_per_leaf;

  if (config_.buffer_policy.kind != BufferPolicyKind::kNone) {
    // One pool per switch chip. A leaf has hosts_per_leaf down ports plus
    // `spines` uplinks; a spine has one down port per leaf.
    for (std::size_t l = 0; l < config_.leaves; ++l) {
      pools_.push_back(MakeBufferPolicy(
          config_.buffer_policy, config_.hosts_per_leaf + config_.spines,
          config_.buffer_bytes));
    }
    for (std::size_t s = 0; s < config_.spines; ++s) {
      pools_.push_back(MakeBufferPolicy(config_.buffer_policy, config_.leaves,
                                        config_.buffer_bytes));
    }
  }

  // Locality annotations: leaf l and its hosts form locality 1 + l; the
  // spine tier is the shared locality 0 (mirrors the fat-tree pod scheme).
  for (std::size_t l = 0; l < config_.leaves; ++l) {
    leaves_.push_back(std::make_unique<SwitchNode>(
        sim_, "leaf" + std::to_string(l), /*ecmp_salt=*/0x1000 + l));
    leaves_.back()->set_locality_id(static_cast<std::uint32_t>(1 + l));
  }
  for (std::size_t s = 0; s < config_.spines; ++s) {
    spines_.push_back(std::make_unique<SwitchNode>(
        sim_, "spine" + std::to_string(s), /*ecmp_salt=*/0x2000 + s));
    spines_.back()->set_locality_id(0);
  }

  // Hosts and access links. Addresses start at base_address (nonzero only
  // inside a composed topology).
  for (std::size_t h = 0; h < host_count; ++h) {
    auto host = std::make_unique<Host>(
        sim_, config_.base_address + static_cast<std::uint32_t>(h));
    host->set_locality_id(static_cast<std::uint32_t>(1 + LeafOfHost(h)));
    SwitchNode& leaf = *leaves_[LeafOfHost(h)];

    auto nic = std::make_unique<EgressPort>(
        sim_, config_.rate, config_.host_link_delay,
        std::make_unique<FifoQueueDisc>(config_.host_buffer_bytes, nullptr));
    nic->ConnectTo(leaf);
    host->AttachNic(std::move(nic));

    auto down = std::make_unique<EgressPort>(
        sim_, config_.rate, config_.host_link_delay,
        make_disc(LeafPool(LeafOfHost(h))));
    down->ConnectTo(*host);
    EgressPort& down_ref = leaf.AddPort(std::move(down));
    leaf.AddRoute(host->address(), down_ref);

    stacks_.push_back(std::make_unique<TcpStack>(*host, config_.tcp));
    hosts_.push_back(std::move(host));
  }

  // Leaf <-> spine fabric.
  for (std::size_t l = 0; l < config_.leaves; ++l) {
    SwitchNode& leaf = *leaves_[l];
    for (std::size_t s = 0; s < config_.spines; ++s) {
      SwitchNode& spine = *spines_[s];

      auto up = std::make_unique<EgressPort>(
          sim_, config_.rate, config_.spine_link_delay,
          make_disc(LeafPool(l)));
      up->ConnectTo(spine);
      EgressPort& up_ref = leaf.AddPort(std::move(up));

      auto down = std::make_unique<EgressPort>(
          sim_, config_.rate, config_.spine_link_delay,
          make_disc(SpinePool(s)));
      down->ConnectTo(leaf);
      EgressPort& down_ref = spine.AddPort(std::move(down));

      // Spine routes to every host under this leaf via the down port.
      for (std::size_t h = 0; h < config_.hosts_per_leaf; ++h) {
        const auto addr =
            config_.base_address +
            static_cast<std::uint32_t>(l * config_.hosts_per_leaf + h);
        spine.AddRoute(addr, down_ref);
      }
      // Leaf routes to every non-local host via all uplinks (ECMP).
      for (std::size_t h = 0; h < host_count; ++h) {
        if (LeafOfHost(h) == l) continue;
        leaf.AddRoute(config_.base_address + static_cast<std::uint32_t>(h),
                      up_ref);
      }
    }
  }
}

Time LeafSpine::HostBaseRtt(std::size_t i) const {
  const Time one_way =
      config_.host_link_delay * 2 + config_.spine_link_delay * 2;
  return one_way * 2 + hosts_.at(i)->extra_egress_delay();
}

DataRate LeafSpine::ReferenceCapacity() const {
  return DataRate::BitsPerSecond(
      config_.rate.bps() * static_cast<std::int64_t>(hosts_.size()));
}

std::pair<TcpStack*, std::uint32_t> LeafSpine::SampleFlowPair(Rng& rng) {
  const std::size_t n = hosts_.size();
  // A 1-host fabric is constructible (loopback-ish probes) but cannot form
  // a (src, dst != src) pair — the UniformInt(n - 1) draw below would be
  // degenerate. Fail fast instead of sampling garbage.
  if (n < 2) {
    FatalConfigError("leaf-spine SampleFlowPair needs >= 2 hosts, have " +
                     std::to_string(n));
  }
  const std::size_t src = rng.UniformInt(n);
  std::size_t dst = rng.UniformInt(n - 1);
  if (dst >= src) ++dst;
  return std::make_pair(stacks_[src].get(),
                        config_.base_address + static_cast<std::uint32_t>(dst));
}

std::uint32_t LeafSpine::IncastTarget() const { return hosts_[0]->address(); }

TcpStack& LeafSpine::IncastSender(std::size_t k) {
  // With a single host the modulus below would be zero (UB); the burst has
  // no sender distinct from its target anyway.
  if (hosts_.size() < 2) {
    FatalConfigError("leaf-spine incast needs >= 2 hosts, have " +
                     std::to_string(hosts_.size()));
  }
  return *stacks_[1 + k % (hosts_.size() - 1)];
}

EgressPort* LeafSpine::ResolvePort(int target) {
  if (target < 0) return &leaves_[0]->port(config_.hosts_per_leaf);
  std::size_t id = static_cast<std::size_t>(target);
  if (id < hosts_.size()) return &hosts_[id]->nic();
  id -= hosts_.size();
  if (id < bottleneck_count()) return &bottleneck(id);
  return nullptr;
}

std::string LeafSpine::DescribePortTargets() const {
  const std::size_t hosts = hosts_.size();
  return "-1 = leaf0 first uplink (primary bottleneck), 0.." +
         std::to_string(hosts - 1) + " = host NICs, " + std::to_string(hosts) +
         ".." + std::to_string(hosts + bottleneck_count() - 1) +
         " = switch egress ports (leaves then spines, in port order)";
}

std::size_t LeafSpine::bottleneck_count() const {
  std::size_t total = 0;
  for (const auto& sw : leaves_) total += sw->port_count();
  for (const auto& sw : spines_) total += sw->port_count();
  return total;
}

EgressPort& LeafSpine::bottleneck(std::size_t i) {
  for (const auto& sw : leaves_) {
    if (i < sw->port_count()) return sw->port(i);
    i -= sw->port_count();
  }
  for (const auto& sw : spines_) {
    if (i < sw->port_count()) return sw->port(i);
    i -= sw->port_count();
  }
  assert(false && "bottleneck index out of range");
  return leaves_[0]->port(0);
}

std::uint64_t LeafSpine::TotalLinkDownDrops() const {
  std::uint64_t total = 0;
  for (const auto& host : hosts_) {
    total += host->nic().counters().dropped_link_down;
  }
  const auto add = [&total](const std::vector<std::unique_ptr<SwitchNode>>&
                                switches) {
    for (const auto& sw : switches) {
      for (std::size_t p = 0; p < sw->port_count(); ++p) {
        total += sw->port(p).counters().dropped_link_down;
      }
    }
  };
  add(leaves_);
  add(spines_);
  return total;
}

}  // namespace ecnsharp
