#include "topo/leaf_spine.h"

#include <cassert>
#include <utility>

#include "sched/fifo_queue_disc.h"

namespace ecnsharp {

LeafSpine::LeafSpine(Simulator& sim, const LeafSpineConfig& config,
                     std::function<std::unique_ptr<QueueDisc>()> make_disc)
    : sim_(sim), config_(config) {
  assert(make_disc != nullptr);
  const std::size_t host_count = config_.leaves * config_.hosts_per_leaf;

  for (std::size_t l = 0; l < config_.leaves; ++l) {
    leaves_.push_back(std::make_unique<SwitchNode>(
        sim_, "leaf" + std::to_string(l), /*ecmp_salt=*/0x1000 + l));
  }
  for (std::size_t s = 0; s < config_.spines; ++s) {
    spines_.push_back(std::make_unique<SwitchNode>(
        sim_, "spine" + std::to_string(s), /*ecmp_salt=*/0x2000 + s));
  }

  // Hosts and access links.
  for (std::size_t h = 0; h < host_count; ++h) {
    auto host = std::make_unique<Host>(sim_, static_cast<std::uint32_t>(h));
    SwitchNode& leaf = *leaves_[LeafOfHost(h)];

    auto nic = std::make_unique<EgressPort>(
        sim_, config_.rate, config_.host_link_delay,
        std::make_unique<FifoQueueDisc>(config_.host_buffer_bytes, nullptr));
    nic->ConnectTo(leaf);
    host->AttachNic(std::move(nic));

    auto down = std::make_unique<EgressPort>(
        sim_, config_.rate, config_.host_link_delay, make_disc());
    down->ConnectTo(*host);
    EgressPort& down_ref = leaf.AddPort(std::move(down));
    leaf.AddRoute(host->address(), down_ref);

    stacks_.push_back(std::make_unique<TcpStack>(*host, config_.tcp));
    hosts_.push_back(std::move(host));
  }

  // Leaf <-> spine fabric.
  for (std::size_t l = 0; l < config_.leaves; ++l) {
    SwitchNode& leaf = *leaves_[l];
    for (std::size_t s = 0; s < config_.spines; ++s) {
      SwitchNode& spine = *spines_[s];

      auto up = std::make_unique<EgressPort>(
          sim_, config_.rate, config_.spine_link_delay, make_disc());
      up->ConnectTo(spine);
      EgressPort& up_ref = leaf.AddPort(std::move(up));

      auto down = std::make_unique<EgressPort>(
          sim_, config_.rate, config_.spine_link_delay, make_disc());
      down->ConnectTo(leaf);
      EgressPort& down_ref = spine.AddPort(std::move(down));

      // Spine routes to every host under this leaf via the down port.
      for (std::size_t h = 0; h < config_.hosts_per_leaf; ++h) {
        const auto addr =
            static_cast<std::uint32_t>(l * config_.hosts_per_leaf + h);
        spine.AddRoute(addr, down_ref);
      }
      // Leaf routes to every non-local host via all uplinks (ECMP).
      for (std::size_t h = 0; h < host_count; ++h) {
        if (LeafOfHost(h) == l) continue;
        leaf.AddRoute(static_cast<std::uint32_t>(h), up_ref);
      }
    }
  }
}

std::uint64_t LeafSpine::TotalOverflowDrops() const {
  std::uint64_t total = 0;
  const auto add = [&total](const std::vector<std::unique_ptr<SwitchNode>>&
                                switches) {
    for (const auto& sw : switches) {
      for (std::size_t p = 0; p < sw->port_count(); ++p) {
        total += sw->port(p).queue_disc().stats().dropped_overflow;
      }
    }
  };
  add(leaves_);
  add(spines_);
  return total;
}

std::uint64_t LeafSpine::TotalCeMarks() const {
  std::uint64_t total = 0;
  const auto add = [&total](const std::vector<std::unique_ptr<SwitchNode>>&
                                switches) {
    for (const auto& sw : switches) {
      for (std::size_t p = 0; p < sw->port_count(); ++p) {
        total += sw->port(p).queue_disc().stats().ce_marked;
      }
    }
  };
  add(leaves_);
  add(spines_);
  return total;
}

}  // namespace ecnsharp
