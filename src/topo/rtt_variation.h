// Base-RTT variation model.
//
// §2.2 measures base RTTs whose distribution is long-tailed and effectively
// bimodal: most flows stay on the fast path (network stack only), a minority
// traverse extra processing components (SLB, hypervisor) and land near the
// top of the range. We model the per-host extra one-way delay as a clamped
// two-component Normal mixture over the extra-delay range, in two
// calibrations:
//
//  * kTestbed — the Fig. 1 shape used for the testbed experiments (§2.3,
//    §5.2): bottom-heavy, ~80% of hosts near the fast path. Over a
//    [70, 210] us RTT range this puts the average RTT near ~100 us while
//    the 90th percentile sits near ~180 us, mirroring how far apart the
//    paper's "AVG" and "Tail" thresholds are (80 KB vs 250 KB).
//
//  * kLeafSpine — the §5.3 simulation calibration: over [80, 240] us it
//    yields mean ~137 us and p90 ~220 us, the values quoted in the paper.
#ifndef ECNSHARP_TOPO_RTT_VARIATION_H_
#define ECNSHARP_TOPO_RTT_VARIATION_H_

#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace ecnsharp {

enum class RttProfile { kTestbed, kLeafSpine };

// One draw of the extra one-way delay, in [0, max_extra].
Time SampleRttExtra(Rng& rng, Time max_extra,
                    RttProfile profile = RttProfile::kLeafSpine);

// Deterministic assignment for small sender counts: returns `n` extras that
// follow the mixture's quantiles (evenly spaced in probability), so a 7-host
// testbed reliably contains both small- and large-RTT senders regardless of
// seed — mirroring how the paper configures netem per sender from the
// Fig. 1 distribution.
std::vector<Time> RttExtraQuantiles(std::size_t n, Time max_extra,
                                    RttProfile profile = RttProfile::kTestbed);

// Statistics of the mixture, for deriving "average-RTT" and "p90-RTT"
// marking thresholds the way an operator with PingMesh data would (§2.3).
Time RttExtraMean(Time max_extra,
                  RttProfile profile = RttProfile::kTestbed);
Time RttExtraPercentile(Time max_extra, double p,
                        RttProfile profile = RttProfile::kTestbed);

}  // namespace ecnsharp

#endif  // ECNSHARP_TOPO_RTT_VARIATION_H_
