// Leaf-spine datacenter fabric with per-flow ECMP — the paper's large-scale
// simulation topology (§5.3): 8 spine switches, 8 leaf switches, 16 hosts
// per leaf, all links 10 Gbps (2:1 oversubscription at the leaves).
#ifndef ECNSHARP_TOPO_LEAF_SPINE_H_
#define ECNSHARP_TOPO_LEAF_SPINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "buffer/policy_spec.h"
#include "net/host.h"
#include "net/switch_node.h"
#include "sim/data_rate.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "transport/tcp_stack.h"

namespace ecnsharp {

struct LeafSpineConfig {
  std::size_t spines = 8;
  std::size_t leaves = 8;
  std::size_t hosts_per_leaf = 16;
  // First host address. Standalone fabrics keep 0; a composed topology
  // (topo/composed.h) offsets the second side so the two address spaces are
  // disjoint and border switches can route on contiguous ranges.
  std::uint32_t base_address = 0;
  DataRate rate = DataRate::GigabitsPerSecond(10);
  // Propagation per host<->leaf hop and per leaf<->spine hop. With 10 us
  // each, the cross-rack base RTT is ~80 us (the §5.3 minimum).
  Time host_link_delay = Time::FromMicroseconds(10);
  Time spine_link_delay = Time::FromMicroseconds(10);
  std::uint64_t buffer_bytes = 600ull * kFullPacketBytes;
  std::uint64_t host_buffer_bytes = 64ull * 1024 * 1024;
  TcpConfig tcp;
  // Optional shared-buffer policy, one pool per switch chip (every leaf and
  // every spine). kNone keeps the legacy static per-port buffers.
  BufferPolicyConfig buffer_policy;
};

class LeafSpine : public Topology {
 public:
  // `make_disc` builds the queue disc for every switch egress port (the AQM
  // under test runs fabric-wide, as in the paper's simulations). This form
  // predates buffer policies and requires buffer_policy.kind == kNone.
  LeafSpine(Simulator& sim, const LeafSpineConfig& config,
            std::function<std::unique_ptr<QueueDisc>()> make_disc);

  // Buffer-policy-aware form: `make_disc` receives the owning switch's
  // shared pool (null when no policy is configured, in which case behaviour
  // is identical to the legacy form).
  LeafSpine(Simulator& sim, const LeafSpineConfig& config,
            const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
                make_disc);

  SwitchNode& leaf(std::size_t i) { return *leaves_.at(i); }
  SwitchNode& spine(std::size_t i) { return *spines_.at(i); }
  std::size_t leaf_count() const { return leaves_.size(); }
  std::size_t spine_count() const { return spines_.size(); }

  std::size_t LeafOfHost(std::size_t host_index) const {
    return host_index / config_.hosts_per_leaf;
  }

  // --- Topology interface: every host can originate flows. ---------------
  std::size_t host_count() const override { return hosts_.size(); }
  Host& host(std::size_t i) override { return *hosts_.at(i); }
  TcpStack& stack(std::size_t i) override { return *stacks_.at(i); }
  // Cross-rack base RTT (two host hops + two fabric hops each way) plus the
  // host's current extra delay.
  Time HostBaseRtt(std::size_t i) const override;
  // Load is defined per host access link; the aggregate arrival rate scales
  // with the number of hosts.
  DataRate ReferenceCapacity() const override;
  // Uniform random src, uniform random dst != src (two draws per call).
  std::pair<TcpStack*, std::uint32_t> SampleFlowPair(Rng& rng) override;
  // Bursts converge on host 0 from the remaining hosts, round-robin.
  std::uint32_t IncastTarget() const override;
  TcpStack& IncastSender(std::size_t k) override;
  // Target ids: -1 = leaf 0's first uplink (the canonical fabric
  // bottleneck), 0..host_count-1 = host NICs, host_count.. = every switch
  // egress port flattened leaf-by-leaf then spine-by-spine in port order
  // (each leaf: hosts_per_leaf down ports, then `spines` up ports; each
  // spine: one down port per leaf, in leaf order).
  EgressPort* ResolvePort(int target) override;
  std::string DescribePortTargets() const override;
  // Every switch egress port is instrumented — the AQM runs fabric-wide.
  std::size_t bottleneck_count() const override;
  EgressPort& bottleneck(std::size_t i) override;
  std::uint64_t TotalLinkDownDrops() const override;
  // Pools in switch order: leaves then spines (empty when no policy).
  std::size_t buffer_pool_count() const override { return pools_.size(); }
  BufferPolicy* buffer_pool(std::size_t i) override {
    return i < pools_.size() ? pools_[i].get() : nullptr;
  }

 private:
  void Build(const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
                 make_disc);
  BufferPolicy* LeafPool(std::size_t l) {
    return pools_.empty() ? nullptr : pools_[l].get();
  }
  BufferPolicy* SpinePool(std::size_t s) {
    return pools_.empty() ? nullptr : pools_[config_.leaves + s].get();
  }

  Simulator& sim_;
  LeafSpineConfig config_;
  std::vector<std::unique_ptr<BufferPolicy>> pools_;  // leaves, then spines
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<TcpStack>> stacks_;
  std::vector<std::unique_ptr<SwitchNode>> leaves_;
  std::vector<std::unique_ptr<SwitchNode>> spines_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TOPO_LEAF_SPINE_H_
