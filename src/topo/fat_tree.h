// Three-tier k-ary fat-tree (Al-Fares et al.) with per-flow ECMP — the
// multi-tier fabric of the paper's large-scale ns-3 regime pushed to
// thousands of hosts.
//
// A k-ary fat-tree has k pods, each with k/2 edge and k/2 aggregation
// switches, plus (k/2)^2 core switches; every edge switch serves k/2 hosts,
// so the fabric carries k^3/4 hosts total (k=8 -> 128, k=16 -> 1024,
// k=32 -> 8192) at full bisection bandwidth. Host addresses are sequential
// and pod-major: host h lives in pod h / (k^2/4), under edge switch
// (h / (k/2)) % (k/2). That contiguity is what lets aggregation and core
// switches route on address *ranges* (one block per edge subnet / pod)
// instead of per-host entries, keeping route memory O(k) per switch.
//
// Up-paths use per-switch-salted ECMP: an edge switch spreads non-local
// flows over its k/2 aggregation uplinks (a default route), an aggregation
// switch spreads inter-pod flows over its k/2 core uplinks, giving the full
// (k/2)^2 equal-cost core paths per host pair. Down-paths are deterministic
// (range routes). All links run at the same rate, so the fabric is
// non-blocking and the access links are the steady-state bottleneck, but
// every switch egress port carries the AQM under test and is exposed as a
// bottleneck/scenario target — scenarios and fabric-wide ECN# re-estimation
// run unchanged.
#ifndef ECNSHARP_TOPO_FAT_TREE_H_
#define ECNSHARP_TOPO_FAT_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "buffer/policy_spec.h"
#include "net/host.h"
#include "net/switch_node.h"
#include "sim/data_rate.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "transport/tcp_stack.h"

namespace ecnsharp {

class LaneSet;

struct FatTreeConfig {
  // Fat-tree arity: k pods of k/2 edge + k/2 aggregation switches. Must be
  // even and >= 4 (validated with exit 2).
  std::size_t k = 8;
  // First host address. Standalone fabrics keep 0; a composed topology
  // (topo/composed.h) offsets the second side so the two address spaces are
  // disjoint and border switches can route on contiguous ranges.
  std::uint32_t base_address = 0;
  DataRate rate = DataRate::GigabitsPerSecond(10);
  // Propagation per host<->edge hop and per switch<->switch hop. With 10 us
  // each, the inter-pod base RTT is 4*10 + 8*10 = 120 us.
  Time host_link_delay = Time::FromMicroseconds(10);
  Time fabric_link_delay = Time::FromMicroseconds(10);
  std::uint64_t buffer_bytes = 600ull * kFullPacketBytes;
  std::uint64_t host_buffer_bytes = 64ull * 1024 * 1024;
  TcpConfig tcp;
  // Optional shared-buffer policy, one pool per switch chip (every edge,
  // aggregation, and core switch shares one pool across its k egress
  // queues). kNone (default) keeps static per-port buffers.
  BufferPolicyConfig buffer_policy;
};

class FatTree : public Topology {
 public:
  // `make_disc` builds the queue disc for every switch egress port (the AQM
  // under test runs fabric-wide). This legacy form keeps static per-port
  // buffers and exits 2 if `config.buffer_policy` asks for a pool.
  FatTree(Simulator& sim, const FatTreeConfig& config,
          std::function<std::unique_ptr<QueueDisc>()> make_disc);
  // Pool-aware form: `make_disc` receives the owning switch chip's buffer
  // pool (null when `config.buffer_policy.kind` is kNone) and must register
  // the disc's queue(s) with it.
  FatTree(Simulator& sim, const FatTreeConfig& config,
          const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
              make_disc);
  // Locality-sharded form for the relaxed-lanes executor: pod p's hosts,
  // edge and aggregation switches are built on lane
  // LaneOfLocality(1 + p) = (1 + p) % lanes.size(), core switches on lane
  // 0, and every agg<->core link whose endpoints land on different lanes is
  // bridged through the LaneSet mailboxes with the full fabric_link_delay
  // (which must therefore be >= the executor's round window). The Topology
  // interface still works for construction-time wiring, but scenario /
  // trace / sketch hooks must not be used — the relaxed runner rejects them.
  FatTree(LaneSet& lanes, const FatTreeConfig& config,
          const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
              make_disc);

  std::size_t k() const { return config_.k; }
  std::size_t pod_count() const { return config_.k; }
  std::size_t hosts_per_edge() const { return config_.k / 2; }
  std::size_t hosts_per_pod() const { return (config_.k * config_.k) / 4; }
  std::size_t PodOfHost(std::size_t host_index) const {
    return host_index / hosts_per_pod();
  }
  std::size_t EdgeOfHost(std::size_t host_index) const {
    return host_index / hosts_per_edge();  // global edge index
  }

  // Logical locality ids (annotated on every node): pod p is locality
  // 1 + p, the core tier is locality 0. In a lane-sharded build locality
  // `l` executes on lane l % lane_count.
  std::uint32_t LocalityOfPod(std::size_t pod) const {
    return static_cast<std::uint32_t>(1 + pod);
  }
  std::size_t LaneOfLocality(std::uint32_t locality) const;
  std::size_t LaneOfHost(std::size_t host_index) const {
    return LaneOfLocality(LocalityOfPod(PodOfHost(host_index)));
  }
  bool lane_sharded() const { return lanes_ != nullptr; }

  // Global switch indices: edges and aggs are pod-major (pod p holds edges
  // [p*k/2, (p+1)*k/2)), cores are indexed a*(k/2)+j where core group `a`
  // connects to aggregation switch `a` of every pod.
  SwitchNode& edge(std::size_t i) { return *edges_.at(i); }
  SwitchNode& agg(std::size_t i) { return *aggs_.at(i); }
  SwitchNode& core(std::size_t i) { return *cores_.at(i); }
  std::size_t edge_count() const { return edges_.size(); }
  std::size_t agg_count() const { return aggs_.size(); }
  std::size_t core_count() const { return cores_.size(); }

  // --- Topology interface: every host can originate flows. ---------------
  std::size_t host_count() const override { return hosts_.size(); }
  Host& host(std::size_t i) override { return *hosts_.at(i); }
  TcpStack& stack(std::size_t i) override { return *stacks_.at(i); }
  // Inter-pod base RTT (two host hops + four fabric hops each way) plus the
  // host's current extra delay — the worst-case path, which is what the
  // rule-of-thumb must cover under ECMP path diversity.
  Time HostBaseRtt(std::size_t i) const override;
  // Load is defined per host access link; the aggregate arrival rate scales
  // with the number of hosts.
  DataRate ReferenceCapacity() const override;
  // Uniform random src, uniform random dst != src (two draws per call).
  // Uniform pairs give the natural inter/intra-pod mix: a fraction
  // (k-1)/k of pairs cross pods, 1/k stay inside one.
  std::pair<TcpStack*, std::uint32_t> SampleFlowPair(Rng& rng) override;
  // Bursts converge on host 0 from the remaining hosts, round-robin.
  std::uint32_t IncastTarget() const override;
  TcpStack& IncastSender(std::size_t k) override;
  // Target ids: -1 = edge 0's first uplink (the canonical fabric
  // bottleneck), 0..host_count-1 = host NICs, host_count.. = every switch
  // egress port flattened edge-by-edge, then agg-by-agg, then core-by-core
  // in port order (each edge: k/2 host down ports then k/2 uplinks; each
  // agg: k/2 edge down ports then k/2 core uplinks; each core: k pod down
  // ports).
  EgressPort* ResolvePort(int target) override;
  std::string DescribePortTargets() const override;
  // Every switch egress port is instrumented — the AQM runs fabric-wide.
  std::size_t bottleneck_count() const override;
  EgressPort& bottleneck(std::size_t i) override;
  std::uint64_t TotalLinkDownDrops() const override;
  // Pools in edge, agg, core order (matching the switch index spaces);
  // empty when no buffer policy is configured.
  std::size_t buffer_pool_count() const override { return pools_.size(); }
  BufferPolicy* buffer_pool(std::size_t i) override {
    return pools_.at(i).get();
  }

 private:
  void Build(const std::function<std::unique_ptr<QueueDisc>(BufferPolicy*)>&
                 make_disc);
  BufferPolicy* EdgePool(std::size_t e) {
    return pools_.empty() ? nullptr : pools_[e].get();
  }
  BufferPolicy* AggPool(std::size_t a) {
    return pools_.empty() ? nullptr : pools_[edges_.size() + a].get();
  }
  BufferPolicy* CorePool(std::size_t c) {
    return pools_.empty() ? nullptr
                          : pools_[edges_.size() + aggs_.size() + c].get();
  }

  // The simulator a pod-p node lives on: `sim_` in single-simulator builds,
  // the pod's lane in lane-sharded ones. CoreSim() is lane 0 / `sim_`.
  Simulator& PodSim(std::size_t pod);
  Simulator& CoreSim();

  Simulator& sim_;
  LaneSet* lanes_ = nullptr;
  FatTreeConfig config_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<TcpStack>> stacks_;
  std::vector<std::unique_ptr<SwitchNode>> edges_;
  std::vector<std::unique_ptr<SwitchNode>> aggs_;
  std::vector<std::unique_ptr<SwitchNode>> cores_;
  std::vector<std::unique_ptr<BufferPolicy>> pools_;
  // Receiving ends of cross-lane links (lane-sharded builds only).
  std::vector<std::unique_ptr<PacketSink>> bridges_;
};

}  // namespace ecnsharp

#endif  // ECNSHARP_TOPO_FAT_TREE_H_
